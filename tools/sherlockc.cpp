// sherlockc — the Sherlock command-line compiler driver.
//
// Compiles kernels written in the Sherlock kernel language (see
// src/frontend/parser.h for the grammar) down to CIM instructions and
// optionally simulates them:
//
//   sherlockc kernel.sk                      # print CIM assembly
//   sherlockc --emit dot kernel.sk           # DAG in graphviz format
//   sherlockc --emit stats kernel.sk         # mapping statistics
//   sherlockc --emit sim kernel.sk           # simulate (random inputs)
//   sherlockc --target 1024 --tech stt --strategy naive kernel.sk
//   sherlockc --mra 4 --nand kernel.sk       # MRA merging + NAND lowering
//   sherlockc --jobs 8 a.sk b.sk c.sk        # batch-compile in parallel
//
// With multiple input files the outputs are printed in command-line
// order, each under a `# ==> file <==` banner, regardless of which job
// finishes first; --jobs bounds the worker count (default: the
// SHERLOCK_THREADS / hardware default).
#include <atomic>
#include <csignal>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "device/faultmap.h"
#include "frontend/lowering.h"
#include "serve/protocol.h"
#include "serve/service.h"
#include "serve/socket.h"
#include "ir/analysis.h"
#include "ir/dot.h"
#include "ir/serialize.h"
#include "mapping/compiler.h"
#include "mapping/program_analysis.h"
#include "sim/simulator.h"
#include "support/failpoint.h"
#include "support/parallel.h"
#include "support/trace.h"
#include "verify/verifier.h"
#include "transforms/nand_lowering.h"
#include "transforms/passes.h"
#include "transforms/substitution.h"

using namespace sherlock;

namespace {

struct Options {
  std::vector<std::string> inputFiles;
  std::string emit = "asm";  // asm | dot | dag | stats | sim | faultmap
  int targetDim = 512;
  std::string grid;      // --grid RxC: multi-array mesh (empty = flat)
  double hopCost = -1;   // --hop-cost: per-hop bus latency ns (<0 = default)
  std::string tech = "reram";
  std::string strategy = "opt";
  int mra = 2;
  double fraction = 1.0;
  bool nandLower = false;
  bool aggressive = false;  // -O: inverter folding pipeline
  bool verify = false;      // --verify: static program verification
  int jobs = 0;             // 0: SHERLOCK_THREADS / hardware default
  // Fault tolerance: a positive density generates a persistent fault map
  // (stuck cells at the given density plus weak cells at half of it),
  // placement avoids it, and --emit sim honors it.
  double faultDensity = 0.0;
  int faultSeed = 1;
  int spareRows = 0;   // per-column spare rows reserved for repair
  bool guarded = false;  // --emit sim: guarded Monte-Carlo execution
  // Compile-service daemon mode (src/serve): a long-running process
  // accepting kernels over the newline-delimited batch protocol, with a
  // content-addressed LRU compile cache and single-flight dedup. The
  // flags above become the daemon-wide request defaults.
  bool serve = false;       // --serve: daemon on stdin/stdout
  std::string socketPath;   // --socket: serve on a unix socket instead
  int cacheSize = 256;      // --cache-size: LRU capacity (0 disables)
  std::string metricsOut;   // --metrics-out: JSON metrics on shutdown
  // Resilience knobs (Issue 10): deadlines, backpressure bounds,
  // graceful-drain grace, crash-safe cache persistence, and the
  // deterministic fault-injection harness.
  double defaultDeadlineMs = 0;   // --default-deadline-ms (0 = none)
  int maxInflight = 0;            // --max-inflight (0 = --jobs/default)
  int maxQueue = 1024;            // --max-queue admission bound
  int maxRequestBytes = 4 << 20;  // --max-request-bytes
  int retryAfterMs = 25;          // --retry-after-ms BUSY hint
  double drainDeadlineMs = 2000;  // --drain-deadline-ms
  std::string cachePersist;       // --cache-persist snapshot path
  std::string failpoints;         // --failpoints spec (overrides env)
  int failpointSeed = 1;          // --failpoint-seed
  // Observability: --trace-out enables the process-wide span tracer and
  // writes a Chrome trace_event JSON (Perfetto / chrome://tracing) when
  // the batch — or the serve session — finishes. Set
  // SHERLOCK_TRACE_DETERMINISTIC=1 for byte-stable virtual-clock traces.
  std::string traceOut;
};

[[noreturn]] void usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0
      << " [options] <kernel.sk> [more.sk ...]\n"
         "  --emit asm|dot|dag|stats|sim|faultmap\n"
         "                             output kind (default asm)\n"
         "  --target <N>               square array dimension (default 512)\n"
         "  --grid <RxC>               arrange R*C arrays in an RxC mesh;\n"
         "                             cross-array movement costs the\n"
         "                             Manhattan hop distance (default:\n"
         "                             single array)\n"
         "  --hop-cost <ns>            inter-array bus latency per hop\n"
         "                             (default 10)\n"
         "  --tech reram|stt|pcm       NVM technology (default reram)\n"
         "  --strategy opt|naive       mapping algorithm (default opt)\n"
         "  --mra <k>                  max activated rows; k > 2 enables\n"
         "                             node substitution (default 2)\n"
         "  --fraction <f>             substitution budget in [0,1]\n"
         "  --nand                     lower XOR/OR to NAND form first\n"
         "  --verify                   statically verify the compiled\n"
         "                             program (ISA/array rules + DAG\n"
         "                             equivalence) and report violations\n"
         "  --jobs <N>                 compile input files with N parallel\n"
         "                             workers (default: SHERLOCK_THREADS\n"
         "                             or hardware concurrency)\n"
         "  --fault-density <f>        persistent cell-fault density: f\n"
         "                             stuck + f/2 weak cells; placement\n"
         "                             avoids them (default 0 = perfect)\n"
         "  --fault-seed <N>           fault map generation seed\n"
         "  --spare-rows <N>           spare rows per column reserved as\n"
         "                             repair targets (default 0)\n"
         "  --guarded                  with --emit sim: Monte-Carlo fault\n"
         "                             injection with guarded\n"
         "                             detect-and-retry execution\n"
         "  -O                         aggressive DAG optimization\n"
         "                             (inverter folding / De Morgan)\n"
         "  --serve                    compile-service daemon: accept\n"
         "                             kernels over the newline-delimited\n"
         "                             batch protocol on stdin (see\n"
         "                             src/serve/protocol.h) with a\n"
         "                             content-addressed LRU compile\n"
         "                             cache; other flags become the\n"
         "                             request defaults\n"
         "  --socket <path>            with --serve: listen on a unix\n"
         "                             socket instead of stdin\n"
         "  --cache-size <N>           cached programs held by the\n"
         "                             daemon's LRU (default 256;\n"
         "                             0 disables caching)\n"
         "  --metrics-out <path>       write the unified metrics JSON\n"
         "                             (counters/gauges/histograms)\n"
         "                             there on daemon shutdown\n"
         "  --default-deadline-ms <ms> daemon-wide per-request deadline;\n"
         "                             requests override with\n"
         "                             deadline-ms= (default 0 = none)\n"
         "  --max-inflight <N>         concurrent compiles before\n"
         "                             requests queue (default: --jobs)\n"
         "  --max-queue <N>            queued requests beyond which new\n"
         "                             ones are shed with BUSY\n"
         "                             (default 1024)\n"
         "  --max-request-bytes <N>    cap on one request's body; larger\n"
         "                             requests answer\n"
         "                             code=request_too_large\n"
         "                             (default 4194304)\n"
         "  --retry-after-ms <N>       backoff hint carried by BUSY\n"
         "                             responses (default 25)\n"
         "  --drain-deadline-ms <ms>   grace for in-flight requests when\n"
         "                             SIGTERM/SIGINT drains the daemon\n"
         "                             (default 2000)\n"
         "  --cache-persist <path>     crash-safe cache snapshot: warm\n"
         "                             the cache from <path> on startup\n"
         "                             (corrupt entries dropped, never\n"
         "                             fatal) and atomically rewrite it\n"
         "                             whenever a flush added entries\n"
         "  --failpoints <spec>        deterministic fault injection,\n"
         "                             e.g. parse:0.1,compile:err,\n"
         "                             io:delay50ms (overrides the\n"
         "                             SHERLOCK_FAILPOINTS env var)\n"
         "  --failpoint-seed <N>       seed for probabilistic failpoints\n"
         "                             (default 1)\n"
         "  --trace-out <path>         record spans across the compile\n"
         "                             pipeline (and daemon requests)\n"
         "                             and write Chrome trace_event JSON\n"
         "                             there on exit; load in Perfetto\n"
         "                             or chrome://tracing\n";
  std::exit(2);
}

Options parseArgs(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (++i >= argc) usage(argv[0]);
      return argv[i];
    };
    auto nextInt = [&]() -> int {
      std::string v = next();
      try {
        size_t pos = 0;
        int parsed = std::stoi(v, &pos);
        if (pos == v.size()) return parsed;
      } catch (const std::exception&) {
      }
      std::cerr << "sherlockc: error: " << arg << " expects an integer, got '"
                << v << "'\n";
      usage(argv[0]);
    };
    auto nextDouble = [&]() -> double {
      std::string v = next();
      try {
        size_t pos = 0;
        double parsed = std::stod(v, &pos);
        if (pos == v.size()) return parsed;
      } catch (const std::exception&) {
      }
      std::cerr << "sherlockc: error: " << arg << " expects a number, got '"
                << v << "'\n";
      usage(argv[0]);
    };
    if (arg == "--emit") o.emit = next();
    else if (arg == "--target") o.targetDim = nextInt();
    else if (arg == "--grid") o.grid = next();
    else if (arg == "--hop-cost") o.hopCost = nextDouble();
    else if (arg == "--tech") o.tech = next();
    else if (arg == "--strategy") o.strategy = next();
    else if (arg == "--mra") o.mra = nextInt();
    else if (arg == "--fraction") o.fraction = nextDouble();
    else if (arg == "--jobs") o.jobs = nextInt();
    else if (arg == "--fault-density") o.faultDensity = nextDouble();
    else if (arg == "--fault-seed") o.faultSeed = nextInt();
    else if (arg == "--spare-rows") o.spareRows = nextInt();
    else if (arg == "--guarded") o.guarded = true;
    else if (arg == "--nand") o.nandLower = true;
    else if (arg == "--verify") o.verify = true;
    else if (arg == "-O") o.aggressive = true;
    else if (arg == "--serve") o.serve = true;
    else if (arg == "--socket") o.socketPath = next();
    else if (arg == "--cache-size") o.cacheSize = nextInt();
    else if (arg == "--metrics-out") o.metricsOut = next();
    else if (arg == "--default-deadline-ms") o.defaultDeadlineMs = nextDouble();
    else if (arg == "--max-inflight") o.maxInflight = nextInt();
    else if (arg == "--max-queue") o.maxQueue = nextInt();
    else if (arg == "--max-request-bytes") o.maxRequestBytes = nextInt();
    else if (arg == "--retry-after-ms") o.retryAfterMs = nextInt();
    else if (arg == "--drain-deadline-ms") o.drainDeadlineMs = nextDouble();
    else if (arg == "--cache-persist") o.cachePersist = next();
    else if (arg == "--failpoints") o.failpoints = next();
    else if (arg == "--failpoint-seed") o.failpointSeed = nextInt();
    else if (arg == "--trace-out") o.traceOut = next();
    else if (arg == "--help" || arg == "-h") usage(argv[0]);
    else if (!arg.empty() && arg[0] == '-') usage(argv[0]);
    else o.inputFiles.push_back(arg);
  }
  if (o.inputFiles.empty() && !o.serve) usage(argv[0]);
  return o;
}

device::TechnologyParams techFor(const std::string& name) {
  if (name == "reram") return device::TechnologyParams::reRam();
  if (name == "stt") return device::TechnologyParams::sttMram();
  if (name == "pcm") return device::TechnologyParams::pcm();
  throw Error(strCat("unknown technology '", name, "'"));
}

/// Compiles one kernel file and returns the emitted text. Throws Error
/// on any failure; thread-safe (no shared mutable state).
std::string processFile(const std::string& inputFile, const Options& opts) {
  std::ifstream in(inputFile);
  if (!in) throw Error(strCat("cannot open ", inputFile));
  std::stringstream source;
  source << in.rdbuf();

  ir::Graph g = transforms::canonicalize(
      frontend::compileKernel(source.str()));
  if (opts.aggressive) g = transforms::optimize(g);
  if (opts.nandLower)
    g = transforms::canonicalize(transforms::lowerToNand(g));

  transforms::SubstitutionStats substitution;
  if (opts.mra > 2) {
    transforms::SubstitutionOptions sopt;
    sopt.maxOperands = opts.mra;
    sopt.fraction = opts.fraction;
    auto sub = transforms::substituteNodes(g, sopt);
    g = std::move(sub.graph);
    substitution = sub.stats;
  }

  std::ostringstream out;
  if (opts.emit == "dot") {
    out << ir::toDot(g, "kernel");
    return out.str();
  }
  if (opts.emit == "dag") {
    out << ir::graphToText(g);
    return out.str();
  }

  isa::TargetSpec target = isa::TargetSpec::square(
      opts.targetDim, techFor(opts.tech), opts.mra);
  if (!opts.grid.empty())
    target = target.withGrid(arraymodel::GridConfig::parse(opts.grid));
  if (opts.hopCost >= 0) target.grid.hopLatencyNs = opts.hopCost;

  std::optional<device::FaultMap> faultMap;
  if (opts.faultDensity > 0.0) {
    device::FaultMapOptions fo;
    fo.seed = static_cast<uint64_t>(opts.faultSeed);
    fo.stuckDensity = opts.faultDensity;
    fo.weakDensity = opts.faultDensity * 0.5;
    faultMap = device::FaultMap::generate(target.numArrays, target.rows(),
                                          target.cols(), fo);
  }
  if (opts.emit == "faultmap") {
    out << (faultMap ? *faultMap
                     : device::FaultMap(target.numArrays, target.rows(),
                                        target.cols()))
               .toText();
    return out.str();
  }

  mapping::CompileOptions copts;
  copts.strategy = opts.strategy == "naive" ? mapping::Strategy::Naive
                                            : mapping::Strategy::Optimized;
  copts.faults.map = faultMap ? &*faultMap : nullptr;
  copts.faults.spareRows = opts.spareRows;
  // With --verify we run the verifier ourselves (full report below)
  // instead of the facade's first-violation throw.
  if (opts.verify) copts.verify = false;
  mapping::CompileResult compiled;
  try {
    compiled = mapping::compile(g, target, copts);
  } catch (const MappingError& e) {
    if (!copts.faults.active()) throw;
    throw Error(strCat(
        "fault-aware placement failed: ", e.what(), "\n  fault map: seed ",
        opts.faultSeed, ", ", faultMap ? faultMap->stuckCellCount() : 0,
        " stuck + ", faultMap ? faultMap->weakCellCount() : 0,
        " weak cells (density ", opts.faultDensity, "), ", opts.spareRows,
        " spare rows per column\n  hint: raise --spare-rows, lower "
        "--fault-density, or enlarge --target"));
  }

  if (opts.verify) {
    verify::VerifyOptions vopts;
    vopts.faultMap = copts.faults.map;
    verify::VerifyResult vr =
        verify::verifyProgram(g, target, compiled.program, vopts);
    if (!vr.ok())
      throw Error(strCat("verification failed (", vr.violations.size(),
                         " violation", vr.violations.size() == 1 ? "" : "s",
                         "):\n", vr.summary()));
    out << "# verify: ok (" << vr.checkedInstructions
        << " instructions checked)\n";
  }

  if (opts.emit == "asm") {
    out << "# sherlockc: " << inputFile << " -> " << target.tech.name << " "
        << opts.targetDim << "x" << opts.targetDim << ", " << opts.strategy
        << " mapping\n"
        << isa::toAssembly(compiled.program.instructions);
    return out.str();
  }
  if (opts.emit == "stats") {
    const auto& s = compiled.program.stats;
    out << "DAG:            " << g.opCount() << " ops, " << g.valueCount()
        << " values, critical path " << ir::criticalPathLength(g) << "\n";
    if (opts.mra > 2)
      out << "substitution:   " << substitution.applied << "/"
          << substitution.candidates << " merges, " << substitution.wideOps
          << " wide ops\n";
    out << "instructions:   " << compiled.program.instructions.size()
        << " (host writes " << s.hostWrites << ", CIM reads " << s.cimReads
        << ", plain reads " << s.plainReads << ", spills " << s.spillWrites
        << ", shifts " << s.shifts << ", moves " << s.moves << ", xfers "
        << s.xfers << ")\n"
        << "merged:         " << s.mergedInstructions
        << ", chained operands: " << s.chainedOperands << "\n"
        << "columns used:   " << compiled.program.usedColumns
        << ", peak live cells: " << compiled.program.peakLiveCells << "\n";
    if (copts.faults.active())
      out << "fault repair:   " << s.spareRowAllocations
          << " spare-row allocations ("
          << (faultMap ? faultMap->stuckCellCount() : 0) << " stuck + "
          << (faultMap ? faultMap->weakCellCount() : 0)
          << " weak cells avoided)\n";
    if (copts.strategy == mapping::Strategy::Optimized) {
      out << "clusters:       " << compiled.clustering.clusters.size()
          << " (cross edges " << compiled.clustering.crossClusterEdges
          << ")\n";
      const auto& p = compiled.partition;
      if (target.grid.configured())
        out << "grid:           " << target.grid.toString()
            << (p.singleArray
                    ? " (kernel fits one array)"
                    : strCat(" (", p.transfers.size(), " transfers, cut ",
                             p.cutEdges, " edges / ", p.weightedCutHops,
                             " hop-weighted; makespan ",
                             p.overlappedMakespanNs, " ns overlapped vs ",
                             p.serializedMakespanNs, " ns serialized)"))
            << "\n";
    }
    out << "\n" << mapping::analyzeProgram(compiled.program).toString();
    return out.str();
  }
  if (opts.emit == "sim") {
    sim::SimOptions sopts;
    sopts.faultMap = faultMap ? &*faultMap : nullptr;
    if (opts.guarded) {
      sopts.guardedExecution = true;
      sopts.injectFaults = true;
      sopts.faultSeed = static_cast<uint64_t>(opts.faultSeed);
    }
    auto result = sim::simulate(g, target, compiled.program, sopts);
    out << "latency:  " << result.latencyNs / 1000.0 << " us ("
        << result.stallNs / 1000.0 << " us stalled)\n"
        << "energy:   " << result.energyPj / 1e6 << " uJ\n"
        << "P_app:    " << result.pApp << " over " << result.cimColumnOps
        << " CIM column-ops\n"
        << "verified: " << (result.verified ? "yes" : "no") << "\n";
    if (target.grid.configured())
      out << "bus:      " << result.xferCount << " xfers, "
          << result.moveCount << " moves; " << result.busBusyNs / 1000.0
          << " us busy, " << result.busWaitNs / 1000.0 << " us queued\n";
    if (sopts.faultMap || opts.guarded)
      out << "faults:   " << result.guardedOps << " guarded ops, "
          << result.retriedOps << " retries, " << result.degradedOps
          << " degraded, " << result.stuckCellReads
          << " stuck-cell reads, "
          << compiled.program.stats.spareRowAllocations
          << " spare-row repairs\n";
    return out.str();
  }
  throw Error(strCat("unknown --emit kind '", opts.emit, "'"));
}

/// Graceful-drain flag: SIGTERM/SIGINT flip it; the serve loop and the
/// socket accept loop poll it (their blocking syscalls see EINTR — the
/// handlers are installed without SA_RESTART on purpose).
std::atomic<bool> gStopRequested{false};

void onStopSignal(int) { gStopRequested.store(true); }

void installStopHandlers() {
  struct sigaction sa{};
  sa.sa_handler = onStopSignal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // no SA_RESTART: blocked accept/read must wake up
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
}

/// Daemon mode: run the compile service until EOF/QUIT/SHUTDOWN/signal,
/// then dump metrics (stderr always; --metrics-out additionally as
/// JSON) and persist the cache snapshot if --cache-persist is set.
int runServe(const Options& opts) {
  serve::ServiceOptions sopts;
  sopts.cacheCapacity =
      opts.cacheSize < 0 ? 0 : static_cast<size_t>(opts.cacheSize);
  serve::CompileService service(sopts);

  // Fault injection: an explicit --failpoints spec wins; otherwise the
  // SHERLOCK_FAILPOINTS environment variable (if set) applies.
  try {
    if (!opts.failpoints.empty())
      failpoint::FailPoints::instance().configure(
          opts.failpoints, static_cast<uint64_t>(opts.failpointSeed));
    else
      failpoint::FailPoints::instance().configureFromEnv();
  } catch (const Error& e) {
    std::cerr << "sherlockc: bad failpoint spec: " << e.what() << "\n";
    return 2;
  }

  if (!opts.cachePersist.empty()) {
    serve::PersistResult warm = service.loadCache(opts.cachePersist);
    if (warm.entries || warm.dropped)
      std::cerr << "sherlockc: cache snapshot " << opts.cachePersist
                << ": " << warm.entries << " entries warmed, "
                << warm.dropped << " dropped\n";
  }

  installStopHandlers();

  serve::ServeLoopOptions lopts;
  lopts.threads = opts.jobs;
  lopts.maxInflight = opts.maxInflight;
  lopts.maxQueue =
      opts.maxQueue < 0 ? 0 : static_cast<size_t>(opts.maxQueue);
  lopts.maxRequestBytes = opts.maxRequestBytes < 1
                              ? 1
                              : static_cast<size_t>(opts.maxRequestBytes);
  lopts.retryAfterMs = opts.retryAfterMs;
  lopts.drainDeadlineMs = opts.drainDeadlineMs;
  lopts.cachePersistPath = opts.cachePersist;
  lopts.stop = &gStopRequested;
  lopts.defaults.deadlineMs = opts.defaultDeadlineMs;
  lopts.defaults.targetDim = opts.targetDim;
  lopts.defaults.tech = opts.tech;
  lopts.defaults.strategy = opts.strategy;
  lopts.defaults.mra = opts.mra;
  lopts.defaults.fraction = opts.fraction;
  lopts.defaults.grid = opts.grid;
  lopts.defaults.hopCost = opts.hopCost;
  lopts.defaults.faultDensity = opts.faultDensity;
  lopts.defaults.faultSeed = static_cast<uint64_t>(opts.faultSeed);
  lopts.defaults.spareRows = opts.spareRows;
  lopts.defaults.nandLower = opts.nandLower;
  lopts.defaults.aggressive = opts.aggressive;

  try {
    if (!opts.socketPath.empty()) {
      std::cerr << "sherlockc: serving on " << opts.socketPath << "\n";
      serve::runUnixSocketServer(opts.socketPath, service, lopts);
    } else {
      serve::runServeLoop(std::cin, std::cout, service, lopts);
    }
  } catch (const Error& e) {
    std::cerr << "sherlockc: serve error: " << e.what() << "\n";
    return 1;
  }

  // Final snapshot: catches entries added by the last flush and the
  // drain path (flush-time persistence already covered steady state).
  if (!opts.cachePersist.empty() && service.cacheDirty())
    service.saveCache(opts.cachePersist);

  serve::ServiceStats stats = service.stats();
  std::cerr << "sherlockc: served " << stats.counters.requests
            << " requests (" << stats.counters.hits << " hits, "
            << stats.counters.misses << " compiles, "
            << stats.counters.coalesced << " coalesced, "
            << stats.counters.errors << " errors, "
            << stats.counters.evictions << " evictions; hit rate "
            << stats.counters.hitRate() << ")\n";
  if (failpoint::FailPoints::instance().enabled())
    for (const auto& [name, count] :
         failpoint::FailPoints::instance().allTriggers())
      std::cerr << "sherlockc: failpoint " << name << ": " << count
                << " triggers\n";
  if (!opts.metricsOut.empty()) {
    std::ofstream out(opts.metricsOut);
    if (!out) {
      std::cerr << "sherlockc: cannot write " << opts.metricsOut << "\n";
      return 1;
    }
    out << service.metricsJson();
  }
  if (!opts.traceOut.empty())
    trace::Tracer::instance().writeJson(opts.traceOut);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts = parseArgs(argc, argv);
  if (!opts.traceOut.empty()) trace::Tracer::instance().enable();
  if (opts.serve) return runServe(opts);

  struct FileResult {
    std::string text;
    std::string error;
  };

  ThreadPool pool(opts.jobs);
  std::vector<FileResult> results =
      parallelMap(pool, opts.inputFiles, [&](const std::string& file) {
        // Each input file is one logical trace track, keyed by its
        // command-line position — the trace is identical whatever pool
        // thread (and --jobs value) ends up compiling it.
        trace::ScopedTrack track(
            static_cast<uint32_t>(&file - opts.inputFiles.data()) + 1,
            file);
        trace::Span span("batch", "compile_file");
        FileResult r;
        try {
          r.text = processFile(file, opts);
        } catch (const Error& e) {
          r.error = e.what();
        }
        return r;
      });

  if (!opts.traceOut.empty())
    trace::Tracer::instance().writeJson(opts.traceOut);

  bool failed = false;
  for (size_t i = 0; i < results.size(); ++i) {
    if (opts.inputFiles.size() > 1)
      std::cout << "# ==> " << opts.inputFiles[i] << " <==\n";
    if (!results[i].error.empty()) {
      std::cerr << "sherlockc: error: " << opts.inputFiles[i] << ": "
                << results[i].error << "\n";
      failed = true;
      continue;
    }
    std::cout << results[i].text;
    if (opts.inputFiles.size() > 1 && i + 1 < results.size())
      std::cout << "\n";
  }
  return failed ? 1 : 0;
}
