// sherlockc — the Sherlock command-line compiler driver.
//
// Compiles a kernel written in the Sherlock kernel language (see
// src/frontend/parser.h for the grammar) down to CIM instructions and
// optionally simulates it:
//
//   sherlockc kernel.sk                      # print CIM assembly
//   sherlockc --emit dot kernel.sk           # DAG in graphviz format
//   sherlockc --emit stats kernel.sk         # mapping statistics
//   sherlockc --emit sim kernel.sk           # simulate (random inputs)
//   sherlockc --target 1024 --tech stt --strategy naive kernel.sk
//   sherlockc --mra 4 --nand kernel.sk       # MRA merging + NAND lowering
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "frontend/lowering.h"
#include "ir/analysis.h"
#include "ir/dot.h"
#include "ir/serialize.h"
#include "mapping/compiler.h"
#include "mapping/program_analysis.h"
#include "sim/simulator.h"
#include "transforms/nand_lowering.h"
#include "transforms/passes.h"
#include "transforms/substitution.h"

using namespace sherlock;

namespace {

struct Options {
  std::string inputFile;
  std::string emit = "asm";  // asm | dot | dag | stats | sim
  int targetDim = 512;
  std::string tech = "reram";
  std::string strategy = "opt";
  int mra = 2;
  double fraction = 1.0;
  bool nandLower = false;
  bool aggressive = false;  // -O: inverter folding pipeline
};

[[noreturn]] void usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0
      << " [options] <kernel.sk>\n"
         "  --emit asm|dot|dag|stats|sim  output kind (default asm)\n"
         "  --target <N>               square array dimension (default 512)\n"
         "  --tech reram|stt|pcm       NVM technology (default reram)\n"
         "  --strategy opt|naive       mapping algorithm (default opt)\n"
         "  --mra <k>                  max activated rows; k > 2 enables\n"
         "                             node substitution (default 2)\n"
         "  --fraction <f>             substitution budget in [0,1]\n"
         "  --nand                     lower XOR/OR to NAND form first\n"
         "  -O                         aggressive DAG optimization\n"
         "                             (inverter folding / De Morgan)\n";
  std::exit(2);
}

Options parseArgs(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (++i >= argc) usage(argv[0]);
      return argv[i];
    };
    if (arg == "--emit") o.emit = next();
    else if (arg == "--target") o.targetDim = std::stoi(next());
    else if (arg == "--tech") o.tech = next();
    else if (arg == "--strategy") o.strategy = next();
    else if (arg == "--mra") o.mra = std::stoi(next());
    else if (arg == "--fraction") o.fraction = std::stod(next());
    else if (arg == "--nand") o.nandLower = true;
    else if (arg == "-O") o.aggressive = true;
    else if (arg == "--help" || arg == "-h") usage(argv[0]);
    else if (!arg.empty() && arg[0] == '-') usage(argv[0]);
    else if (o.inputFile.empty()) o.inputFile = arg;
    else usage(argv[0]);
  }
  if (o.inputFile.empty()) usage(argv[0]);
  return o;
}

device::TechnologyParams techFor(const std::string& name) {
  if (name == "reram") return device::TechnologyParams::reRam();
  if (name == "stt") return device::TechnologyParams::sttMram();
  if (name == "pcm") return device::TechnologyParams::pcm();
  throw Error(strCat("unknown technology '", name, "'"));
}

}  // namespace

int main(int argc, char** argv) {
  Options opts = parseArgs(argc, argv);
  try {
    std::ifstream in(opts.inputFile);
    if (!in) throw Error(strCat("cannot open ", opts.inputFile));
    std::stringstream source;
    source << in.rdbuf();

    ir::Graph g = transforms::canonicalize(
        frontend::compileKernel(source.str()));
    if (opts.aggressive) g = transforms::optimize(g);
    if (opts.nandLower)
      g = transforms::canonicalize(transforms::lowerToNand(g));

    transforms::SubstitutionStats substitution;
    if (opts.mra > 2) {
      transforms::SubstitutionOptions sopt;
      sopt.maxOperands = opts.mra;
      sopt.fraction = opts.fraction;
      auto sub = transforms::substituteNodes(g, sopt);
      g = std::move(sub.graph);
      substitution = sub.stats;
    }

    if (opts.emit == "dot") {
      std::cout << ir::toDot(g, "kernel");
      return 0;
    }
    if (opts.emit == "dag") {
      std::cout << ir::graphToText(g);
      return 0;
    }

    isa::TargetSpec target = isa::TargetSpec::square(
        opts.targetDim, techFor(opts.tech), opts.mra);
    mapping::CompileOptions copts;
    copts.strategy = opts.strategy == "naive" ? mapping::Strategy::Naive
                                              : mapping::Strategy::Optimized;
    auto compiled = mapping::compile(g, target, copts);

    if (opts.emit == "asm") {
      std::cout << "# sherlockc: " << opts.inputFile << " -> "
                << target.tech.name << " " << opts.targetDim << "x"
                << opts.targetDim << ", " << opts.strategy << " mapping\n"
                << isa::toAssembly(compiled.program.instructions);
      return 0;
    }
    if (opts.emit == "stats") {
      const auto& s = compiled.program.stats;
      std::cout << "DAG:            " << g.opCount() << " ops, "
                << g.valueCount() << " values, critical path "
                << ir::criticalPathLength(g) << "\n";
      if (opts.mra > 2)
        std::cout << "substitution:   " << substitution.applied << "/"
                  << substitution.candidates << " merges, "
                  << substitution.wideOps << " wide ops\n";
      std::cout << "instructions:   "
                << compiled.program.instructions.size() << " (host writes "
                << s.hostWrites << ", CIM reads " << s.cimReads
                << ", plain reads " << s.plainReads << ", spills "
                << s.spillWrites << ", shifts " << s.shifts << ", moves "
                << s.moves << ")\n"
                << "merged:         " << s.mergedInstructions
                << ", chained operands: " << s.chainedOperands << "\n"
                << "columns used:   " << compiled.program.usedColumns
                << ", peak live cells: " << compiled.program.peakLiveCells
                << "\n";
      if (copts.strategy == mapping::Strategy::Optimized)
        std::cout << "clusters:       "
                  << compiled.clustering.clusters.size()
                  << " (cross edges "
                  << compiled.clustering.crossClusterEdges << ")\n";
      std::cout << "\n"
                << mapping::analyzeProgram(compiled.program).toString();
      return 0;
    }
    if (opts.emit == "sim") {
      auto result = sim::simulate(g, target, compiled.program);
      std::cout << "latency:  " << result.latencyNs / 1000.0 << " us ("
                << result.stallNs / 1000.0 << " us stalled)\n"
                << "energy:   " << result.energyPj / 1e6 << " uJ\n"
                << "P_app:    " << result.pApp << " over "
                << result.cimColumnOps << " CIM column-ops\n"
                << "verified: " << (result.verified ? "yes" : "no")
                << "\n";
      return 0;
    }
    usage(argv[0]);
  } catch (const Error& e) {
    std::cerr << "sherlockc: error: " << e.what() << "\n";
    return 1;
  }
}
