// sherlockc — the Sherlock command-line compiler driver.
//
// Compiles kernels written in the Sherlock kernel language (see
// src/frontend/parser.h for the grammar) down to CIM instructions and
// optionally simulates them:
//
//   sherlockc kernel.sk                      # print CIM assembly
//   sherlockc --emit dot kernel.sk           # DAG in graphviz format
//   sherlockc --emit stats kernel.sk         # mapping statistics
//   sherlockc --emit sim kernel.sk           # simulate (random inputs)
//   sherlockc --target 1024 --tech stt --strategy naive kernel.sk
//   sherlockc --mra 4 --nand kernel.sk       # MRA merging + NAND lowering
//   sherlockc --jobs 8 a.sk b.sk c.sk        # batch-compile in parallel
//
// With multiple input files the outputs are printed in command-line
// order, each under a `# ==> file <==` banner, regardless of which job
// finishes first; --jobs bounds the worker count (default: the
// SHERLOCK_THREADS / hardware default).
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "frontend/lowering.h"
#include "ir/analysis.h"
#include "ir/dot.h"
#include "ir/serialize.h"
#include "mapping/compiler.h"
#include "mapping/program_analysis.h"
#include "sim/simulator.h"
#include "support/parallel.h"
#include "verify/verifier.h"
#include "transforms/nand_lowering.h"
#include "transforms/passes.h"
#include "transforms/substitution.h"

using namespace sherlock;

namespace {

struct Options {
  std::vector<std::string> inputFiles;
  std::string emit = "asm";  // asm | dot | dag | stats | sim
  int targetDim = 512;
  std::string tech = "reram";
  std::string strategy = "opt";
  int mra = 2;
  double fraction = 1.0;
  bool nandLower = false;
  bool aggressive = false;  // -O: inverter folding pipeline
  bool verify = false;      // --verify: static program verification
  int jobs = 0;             // 0: SHERLOCK_THREADS / hardware default
};

[[noreturn]] void usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0
      << " [options] <kernel.sk> [more.sk ...]\n"
         "  --emit asm|dot|dag|stats|sim  output kind (default asm)\n"
         "  --target <N>               square array dimension (default 512)\n"
         "  --tech reram|stt|pcm       NVM technology (default reram)\n"
         "  --strategy opt|naive       mapping algorithm (default opt)\n"
         "  --mra <k>                  max activated rows; k > 2 enables\n"
         "                             node substitution (default 2)\n"
         "  --fraction <f>             substitution budget in [0,1]\n"
         "  --nand                     lower XOR/OR to NAND form first\n"
         "  --verify                   statically verify the compiled\n"
         "                             program (ISA/array rules + DAG\n"
         "                             equivalence) and report violations\n"
         "  --jobs <N>                 compile input files with N parallel\n"
         "                             workers (default: SHERLOCK_THREADS\n"
         "                             or hardware concurrency)\n"
         "  -O                         aggressive DAG optimization\n"
         "                             (inverter folding / De Morgan)\n";
  std::exit(2);
}

Options parseArgs(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (++i >= argc) usage(argv[0]);
      return argv[i];
    };
    auto nextInt = [&]() -> int {
      std::string v = next();
      try {
        size_t pos = 0;
        int parsed = std::stoi(v, &pos);
        if (pos == v.size()) return parsed;
      } catch (const std::exception&) {
      }
      std::cerr << "sherlockc: error: " << arg << " expects an integer, got '"
                << v << "'\n";
      usage(argv[0]);
    };
    auto nextDouble = [&]() -> double {
      std::string v = next();
      try {
        size_t pos = 0;
        double parsed = std::stod(v, &pos);
        if (pos == v.size()) return parsed;
      } catch (const std::exception&) {
      }
      std::cerr << "sherlockc: error: " << arg << " expects a number, got '"
                << v << "'\n";
      usage(argv[0]);
    };
    if (arg == "--emit") o.emit = next();
    else if (arg == "--target") o.targetDim = nextInt();
    else if (arg == "--tech") o.tech = next();
    else if (arg == "--strategy") o.strategy = next();
    else if (arg == "--mra") o.mra = nextInt();
    else if (arg == "--fraction") o.fraction = nextDouble();
    else if (arg == "--jobs") o.jobs = nextInt();
    else if (arg == "--nand") o.nandLower = true;
    else if (arg == "--verify") o.verify = true;
    else if (arg == "-O") o.aggressive = true;
    else if (arg == "--help" || arg == "-h") usage(argv[0]);
    else if (!arg.empty() && arg[0] == '-') usage(argv[0]);
    else o.inputFiles.push_back(arg);
  }
  if (o.inputFiles.empty()) usage(argv[0]);
  return o;
}

device::TechnologyParams techFor(const std::string& name) {
  if (name == "reram") return device::TechnologyParams::reRam();
  if (name == "stt") return device::TechnologyParams::sttMram();
  if (name == "pcm") return device::TechnologyParams::pcm();
  throw Error(strCat("unknown technology '", name, "'"));
}

/// Compiles one kernel file and returns the emitted text. Throws Error
/// on any failure; thread-safe (no shared mutable state).
std::string processFile(const std::string& inputFile, const Options& opts) {
  std::ifstream in(inputFile);
  if (!in) throw Error(strCat("cannot open ", inputFile));
  std::stringstream source;
  source << in.rdbuf();

  ir::Graph g = transforms::canonicalize(
      frontend::compileKernel(source.str()));
  if (opts.aggressive) g = transforms::optimize(g);
  if (opts.nandLower)
    g = transforms::canonicalize(transforms::lowerToNand(g));

  transforms::SubstitutionStats substitution;
  if (opts.mra > 2) {
    transforms::SubstitutionOptions sopt;
    sopt.maxOperands = opts.mra;
    sopt.fraction = opts.fraction;
    auto sub = transforms::substituteNodes(g, sopt);
    g = std::move(sub.graph);
    substitution = sub.stats;
  }

  std::ostringstream out;
  if (opts.emit == "dot") {
    out << ir::toDot(g, "kernel");
    return out.str();
  }
  if (opts.emit == "dag") {
    out << ir::graphToText(g);
    return out.str();
  }

  isa::TargetSpec target = isa::TargetSpec::square(
      opts.targetDim, techFor(opts.tech), opts.mra);
  mapping::CompileOptions copts;
  copts.strategy = opts.strategy == "naive" ? mapping::Strategy::Naive
                                            : mapping::Strategy::Optimized;
  // With --verify we run the verifier ourselves (full report below)
  // instead of the facade's first-violation throw.
  if (opts.verify) copts.verify = false;
  auto compiled = mapping::compile(g, target, copts);

  if (opts.verify) {
    verify::VerifyResult vr =
        verify::verifyProgram(g, target, compiled.program);
    if (!vr.ok())
      throw Error(strCat("verification failed (", vr.violations.size(),
                         " violation", vr.violations.size() == 1 ? "" : "s",
                         "):\n", vr.summary()));
    out << "# verify: ok (" << vr.checkedInstructions
        << " instructions checked)\n";
  }

  if (opts.emit == "asm") {
    out << "# sherlockc: " << inputFile << " -> " << target.tech.name << " "
        << opts.targetDim << "x" << opts.targetDim << ", " << opts.strategy
        << " mapping\n"
        << isa::toAssembly(compiled.program.instructions);
    return out.str();
  }
  if (opts.emit == "stats") {
    const auto& s = compiled.program.stats;
    out << "DAG:            " << g.opCount() << " ops, " << g.valueCount()
        << " values, critical path " << ir::criticalPathLength(g) << "\n";
    if (opts.mra > 2)
      out << "substitution:   " << substitution.applied << "/"
          << substitution.candidates << " merges, " << substitution.wideOps
          << " wide ops\n";
    out << "instructions:   " << compiled.program.instructions.size()
        << " (host writes " << s.hostWrites << ", CIM reads " << s.cimReads
        << ", plain reads " << s.plainReads << ", spills " << s.spillWrites
        << ", shifts " << s.shifts << ", moves " << s.moves << ")\n"
        << "merged:         " << s.mergedInstructions
        << ", chained operands: " << s.chainedOperands << "\n"
        << "columns used:   " << compiled.program.usedColumns
        << ", peak live cells: " << compiled.program.peakLiveCells << "\n";
    if (copts.strategy == mapping::Strategy::Optimized)
      out << "clusters:       " << compiled.clustering.clusters.size()
          << " (cross edges " << compiled.clustering.crossClusterEdges
          << ")\n";
    out << "\n" << mapping::analyzeProgram(compiled.program).toString();
    return out.str();
  }
  if (opts.emit == "sim") {
    auto result = sim::simulate(g, target, compiled.program);
    out << "latency:  " << result.latencyNs / 1000.0 << " us ("
        << result.stallNs / 1000.0 << " us stalled)\n"
        << "energy:   " << result.energyPj / 1e6 << " uJ\n"
        << "P_app:    " << result.pApp << " over " << result.cimColumnOps
        << " CIM column-ops\n"
        << "verified: " << (result.verified ? "yes" : "no") << "\n";
    return out.str();
  }
  throw Error(strCat("unknown --emit kind '", opts.emit, "'"));
}

}  // namespace

int main(int argc, char** argv) {
  Options opts = parseArgs(argc, argv);

  struct FileResult {
    std::string text;
    std::string error;
  };

  ThreadPool pool(opts.jobs);
  std::vector<FileResult> results =
      parallelMap(pool, opts.inputFiles, [&](const std::string& file) {
        FileResult r;
        try {
          r.text = processFile(file, opts);
        } catch (const Error& e) {
          r.error = e.what();
        }
        return r;
      });

  bool failed = false;
  for (size_t i = 0; i < results.size(); ++i) {
    if (opts.inputFiles.size() > 1)
      std::cout << "# ==> " << opts.inputFiles[i] << " <==\n";
    if (!results[i].error.empty()) {
      std::cerr << "sherlockc: error: " << opts.inputFiles[i] << ": "
                << results[i].error << "\n";
      failed = true;
      continue;
    }
    std::cout << results[i].text;
    if (opts.inputFiles.size() > 1 && i + 1 < results.size())
      std::cout << "\n";
  }
  return failed ? 1 : 0;
}
