// Compile-service throughput bench (BENCH_8.json): replays a
// zipf-distributed stream of fuzz-generated kernels against the
// content-addressed LRU compile cache at several capacities, reporting
// throughput, hit rate, and hit/cold latency percentiles, and verifying
// that every cached response is byte-identical to a cold compile of the
// same request.
//
// Determinism contract for the CI gate: the kernel set, the zipf
// request stream, and therefore the hit/miss sequence of the *serial*
// replays are pure functions of the seeds below, so their hit rates are
// byte-stable run over run and compare_bench.py gates them against the
// checked-in BENCH_8.json. The concurrent replay runs at full cache
// capacity, where the compile count (= distinct kernels) — and hence
// the hit rate — stays deterministic even under racing batches.
// Wall-clock metrics (throughput, latency percentiles) vary by machine
// and are reported, not gated; the machine-independent acceptance
// criterion checked here is the hit-vs-cold latency ratio.
//
// Exit status: 0 only if every response matched its cold reference
// byte-for-byte AND the serial full-cache replay served hits >= 10x
// faster than cold compiles (p50).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/json.h"
#include "ir/serialize.h"
#include "serve/service.h"
#include "support/parallel.h"
#include "support/rng.h"
#include "support/table.h"
#include "tests/dag_fuzz.h"
#include "workloads/random_dag.h"

using namespace sherlock;
using namespace sherlock::bench;

namespace {

constexpr int kKernels = 64;
constexpr int kRequests = 1200;
constexpr double kZipfS = 1.1;
constexpr int kTargetDim = 256;
constexpr uint64_t kStreamSeed = 0x5eedf00d;

/// The request stream: kernel index per request, zipf-ranked with a
/// seeded rank->kernel permutation so popularity is not correlated with
/// generation order.
std::vector<int> zipfStream(int kernels, int requests, double s,
                            uint64_t seed) {
  std::vector<double> cumulative(static_cast<size_t>(kernels));
  double total = 0;
  for (int rank = 0; rank < kernels; ++rank) {
    total += 1.0 / std::pow(static_cast<double>(rank + 1), s);
    cumulative[static_cast<size_t>(rank)] = total;
  }
  Rng rng(seed);
  std::vector<int> permutation(static_cast<size_t>(kernels));
  for (int i = 0; i < kernels; ++i) permutation[static_cast<size_t>(i)] = i;
  for (int i = kernels - 1; i > 0; --i)
    std::swap(permutation[static_cast<size_t>(i)],
              permutation[rng.below(static_cast<uint64_t>(i + 1))]);
  std::vector<int> stream;
  stream.reserve(static_cast<size_t>(requests));
  for (int r = 0; r < requests; ++r) {
    double u = rng.uniform() * total;
    int rank = static_cast<int>(
        std::lower_bound(cumulative.begin(), cumulative.end(), u) -
        cumulative.begin());
    if (rank >= kernels) rank = kernels - 1;
    stream.push_back(permutation[static_cast<size_t>(rank)]);
  }
  return stream;
}

struct ReplayResult {
  serve::ServiceStats stats;
  double wallSeconds = 0;
  uint64_t mismatches = 0;
};

/// Replays the stream against a fresh service. batchSize 0 = serial;
/// otherwise requests are fanned out on `pool` in fixed batches (the
/// order *within* a batch is scheduler-chosen, batches stay ordered).
ReplayResult replay(const std::vector<std::string>& kernels,
                    const std::vector<int>& stream,
                    const std::vector<std::string>& reference,
                    size_t cacheCapacity, size_t batchSize,
                    ThreadPool* pool) {
  serve::ServiceOptions options;
  options.cacheCapacity = cacheCapacity;
  serve::CompileService service(options);
  serve::RequestOptions request;
  request.targetDim = kTargetDim;
  request.mra = 4;  // fuzz DAGs carry ops up to arity 4

  ReplayResult result;
  auto t0 = std::chrono::steady_clock::now();
  auto handleOne = [&](int kernel) -> uint64_t {
    serve::CompileResponse response =
        service.handle(kernels[static_cast<size_t>(kernel)], request);
    if (!response.ok) {
      std::cerr << "request failed: " << response.payload;
      return 1;
    }
    return response.payload == reference[static_cast<size_t>(kernel)] ? 0
                                                                      : 1;
  };
  if (batchSize == 0) {
    for (int kernel : stream) result.mismatches += handleOne(kernel);
  } else {
    for (size_t start = 0; start < stream.size(); start += batchSize) {
      size_t n = std::min(batchSize, stream.size() - start);
      std::vector<uint64_t> bad(n, 0);
      pool->parallelFor(static_cast<int64_t>(n), [&](int64_t i) {
        bad[static_cast<size_t>(i)] =
            handleOne(stream[start + static_cast<size_t>(i)]);
      });
      for (uint64_t b : bad) result.mismatches += b;
    }
  }
  result.wallSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  result.stats = service.stats();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  std::string jsonPath;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) jsonPath = argv[++i];
  }

  // Kernel corpus: the differential-fuzz DAG sampler, serialized to the
  // protocol's dag format. The service canonicalizes internally.
  std::vector<std::string> kernels;
  kernels.reserve(kKernels);
  for (int k = 0; k < kKernels; ++k)
    kernels.push_back(ir::graphToText(workloads::buildRandomDag(
        testing::sampleDagSpec(static_cast<uint64_t>(k + 1)))));
  std::vector<int> stream =
      zipfStream(kKernels, kRequests, kZipfS, kStreamSeed);

  // Cold references: a cache-disabled service compiles each kernel
  // once; every replay response must match these bytes exactly.
  std::vector<std::string> reference(static_cast<size_t>(kKernels));
  {
    serve::ServiceOptions options;
    options.cacheCapacity = 0;
    serve::CompileService cold(options);
    serve::RequestOptions request;
    request.targetDim = kTargetDim;
    request.mra = 4;  // fuzz DAGs carry ops up to arity 4
    for (int k = 0; k < kKernels; ++k) {
      serve::CompileResponse response =
          cold.handle(kernels[static_cast<size_t>(k)], request);
      if (!response.ok) {
        std::cerr << "cold reference compile failed: " << response.payload;
        return 1;
      }
      reference[static_cast<size_t>(k)] = response.payload;
    }
  }

  struct Point {
    size_t capacity;
    size_t batch;  // 0 = serial
  };
  const Point points[] = {{4, 0}, {16, 0}, {64, 0}, {64, 32}};
  // Fixed pool size: the concurrent point must exercise concurrency
  // even on single-core runners, and its hit rate stays deterministic
  // because the cache holds the full kernel set (no evictions).
  ThreadPool pool(4);

  Table table(strCat("Compile service — ", kRequests,
                     " zipf(s=", kZipfS, ") requests over ", kKernels,
                     " kernels, dim ", kTargetDim));
  table.setHeader({"cache", "mode", "hit rate", "compiles", "evictions",
                   "req/s", "hit p50 us", "hit p99 us", "cold p50 us",
                   "cold p99 us", "p50 speedup"});

  Json configs = Json::array();
  bool ok = true;
  double gatedSpeedup = 0;
  for (const Point& point : points) {
    ReplayResult r = replay(kernels, stream, reference, point.capacity,
                            point.batch, &pool);
    if (r.mismatches != 0) {
      std::cerr << "FAIL: " << r.mismatches
                << " responses differed from their cold-compile "
                   "reference (cache "
                << point.capacity << ")\n";
      ok = false;
    }
    const serve::ServiceStats& s = r.stats;
    double speedup = s.hitP50Us > 0 ? s.coldP50Us / s.hitP50Us : 0;
    bool serialFull = point.batch == 0 && point.capacity >= kKernels;
    if (serialFull) gatedSpeedup = speedup;
    double rps = static_cast<double>(kRequests) / r.wallSeconds;
    std::string mode = point.batch == 0
                           ? "serial"
                           : strCat("batch=", point.batch, " x",
                                    pool.threadCount(), " threads");
    table.addRow({std::to_string(point.capacity), mode,
                  Table::num(s.counters.hitRate(), 3),
                  std::to_string(s.counters.misses),
                  std::to_string(s.counters.evictions), Table::num(rps, 0),
                  Table::num(s.hitP50Us, 1), Table::num(s.hitP99Us, 1),
                  Table::num(s.coldP50Us, 1), Table::num(s.coldP99Us, 1),
                  Table::num(speedup, 1)});

    Json c = Json::object();
    c.set("workload", point.batch == 0 ? "zipf-serial" : "zipf-concurrent")
        .set("tech", "reram")
        .set("array_dim", kTargetDim)
        .set("cache_size", static_cast<long>(point.capacity))
        .set("requests", kRequests)
        .set("kernels", kKernels)
        .set("zipf_s", kZipfS)
        // Deterministic (gated): the serial hit/miss sequence is a pure
        // function of the seeds; the concurrent point runs at full
        // capacity where compiles == kernels regardless of order.
        .set("hit_rate", s.counters.hitRate())
        .set("compiles", static_cast<long>(s.counters.misses))
        .set("coalesced", static_cast<long>(s.counters.coalesced))
        .set("evictions", static_cast<long>(s.counters.evictions))
        // Machine-dependent (reported, not gated).
        .set("throughput_rps", rps)
        .set("hit_p50_us", s.hitP50Us)
        .set("hit_p99_us", s.hitP99Us)
        .set("cold_p50_us", s.coldP50Us)
        .set("cold_p99_us", s.coldP99Us)
        .set("hit_speedup_p50", speedup);
    configs.push(std::move(c));
  }
  table.print(std::cout);

  std::cout << "\nCached responses byte-identical to cold compiles: "
            << (ok ? "yes" : "NO") << "\n"
            << "Serial full-cache hit speedup (cold p50 / hit p50): "
            << gatedSpeedup << "x (gate: >= 10x)\n";
  if (gatedSpeedup < 10.0) {
    std::cerr << "FAIL: cache-hit latency not >= 10x lower than cold "
                 "compile latency\n";
    ok = false;
  }

  if (!jsonPath.empty()) {
    Json root = Json::object();
    root.set("schema_version", kBenchSchemaVersion)
        .set("pr", 8)
        .set("title",
             "Compile-service daemon with content-addressed kernel cache")
        .set("benchmark",
             strCat("bench_compile_service: ", kRequests, " zipf(s=",
                    kZipfS, ") requests over ", kKernels,
                    " fuzz kernels, LRU capacities 4/16/64, dim ",
                    kTargetDim))
        .set("metric",
             "hit_rate per (cache_size, mode) config (deterministic, "
             "gated); latency/throughput are wall-clock (reported)")
        .set("byte_identical", ok)
        .set("hit_speedup_p50", gatedSpeedup)
        .set("configs", std::move(configs));
    std::ofstream out(jsonPath);
    out << root.dump();
    std::cout << "\nWrote JSON to " << jsonPath << "\n";
  }
  return ok ? 0 : 1;
}
