// Fault-tolerance evaluation: yield and overhead of fault-aware
// placement + guarded execution on persistently faulty arrays.
//
// Grid: paper workload x technology x stuck-cell density x spare-row
// budget x execution mode, several fault-map seeds per point. Every
// trial compiles against its own deterministic fault map (placement
// avoids stuck/weak cells, repairs collisions into spare rows) and runs
// with Monte-Carlo decision-failure injection; weak cells inflate the
// injected P_DF. Reported per point:
//
//   yield     — fraction of trials whose 64 output lanes all match the
//               reference evaluator,
//   retries   — guarded re-sense rounds per trial (detect-and-retry),
//   degraded  — ops that exhausted the retry budget and split to
//               single-row reads,
//   repairs   — placements served from the spare-row region,
//   latency   — overhead vs the fault-free unguarded baseline.
//
// The unguarded rows are the contrast: same faulty arrays, no check
// reads — on STT-MRAM (XOR P_DF ~1e-4 per lane-op) corruption slips
// through, while guarding pushes the residual rate to ~P_DF^2.
//
// Seeding contract: trial t of a grid point uses
// faultSeed = deriveSeed(kBaseSeed, point * kTrials + t) — pure function
// of the flattened index, so the table is byte-identical for any
// SHERLOCK_THREADS value (see bench/sweep.h).
#include <chrono>
#include <fstream>
#include <iostream>

#include "bench/json.h"
#include "bench/sweep.h"
#include "support/parallel.h"
#include "support/table.h"

using namespace sherlock;
using namespace sherlock::bench;

int main(int argc, char** argv) {
  std::string jsonPath;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--json" && i + 1 < argc)
      jsonPath = argv[++i];
  }
  auto wallStart = std::chrono::steady_clock::now();

  constexpr int kDim = 512;
  constexpr int kTrials = 3;
  constexpr uint64_t kBaseSeed = 0xfa'017'2024ULL;
  const double kDensities[] = {0.01, 0.02};
  const int kSpares[] = {0, 16};
  const bool kGuarded[] = {false, true};
  const device::Technology kTechs[] = {device::Technology::ReRam,
                                       device::Technology::SttMram};

  // Fault-free unguarded baselines (latency denominator), one per
  // workload x technology, followed by the faulty grid.
  std::vector<SweepJob> jobs;
  for (const char* w : kWorkloads)
    for (device::Technology tech : kTechs) {
      RunConfig cfg;
      cfg.tech = tech;
      cfg.arrayDim = kDim;
      jobs.push_back({w, cfg});
    }
  const size_t gridStart = jobs.size();

  size_t point = 0;
  for (const char* w : kWorkloads)
    for (device::Technology tech : kTechs)
      for (double density : kDensities)
        for (int spares : kSpares)
          for (bool guarded : kGuarded) {
            for (int t = 0; t < kTrials; ++t) {
              RunConfig cfg;
              cfg.tech = tech;
              cfg.arrayDim = kDim;
              cfg.faultStuckDensity = density;
              cfg.faultWeakDensity = density * 0.5;
              cfg.faultSeed = deriveSeed(
                  kBaseSeed, point * kTrials + static_cast<size_t>(t));
              cfg.spareRows = spares;
              cfg.injectFaults = true;
              cfg.guarded = guarded;
              jobs.push_back({w, cfg});
            }
            ++point;
          }

  // Corrupted lanes are expected on the unguarded rows; yield reports
  // them instead of aborting the sweep.
  std::vector<RunResult> results = runSweep(jobs, /*requireVerified=*/false);

  std::map<std::pair<std::string, device::Technology>, double> baseline;
  for (size_t i = 0; i < gridStart; ++i)
    baseline[{jobs[i].workload, jobs[i].config.tech}] =
        results[i].sim.latencyNs;

  Table t(strCat("Fault tolerance: yield and overhead under persistent "
                 "cell faults (", kDim, "x", kDim, " arrays, ", kTrials,
                 " fault maps per point)"));
  t.setHeader({"workload", "tech", "density", "spares", "mode", "yield",
               "retries", "degraded", "stuck reads", "repairs",
               "latency ovh"});
  Json rows = Json::array();
  size_t job = gridStart;
  for (const char* w : kWorkloads)
    for (device::Technology tech : kTechs)
      for (double density : kDensities)
        for (int spares : kSpares)
          for (bool guarded : kGuarded) {
            int clean = 0;
            long retries = 0, degraded = 0, stuckReads = 0, repairs = 0;
            double latency = 0;
            for (int tr = 0; tr < kTrials; ++tr) {
              const RunResult& r = results[job++];
              if (r.sim.corruptedLanes() == 0) ++clean;
              retries += r.sim.retriedOps;
              degraded += r.sim.degradedOps;
              stuckReads += r.sim.stuckCellReads;
              repairs += r.stats.spareRowAllocations;
              latency += r.sim.latencyNs;
            }
            double base = baseline.at({w, tech});
            double overhead = latency / kTrials / base - 1.0;
            t.addRow({w, device::technologyName(tech),
                      Table::num(density, 3), std::to_string(spares),
                      guarded ? "guarded" : "unguarded",
                      Table::num(static_cast<double>(clean) / kTrials, 2),
                      Table::num(static_cast<double>(retries) / kTrials, 1),
                      Table::num(static_cast<double>(degraded) / kTrials, 1),
                      Table::num(
                          static_cast<double>(stuckReads) / kTrials, 0),
                      Table::num(static_cast<double>(repairs) / kTrials, 1),
                      strCat(Table::num(overhead * 100.0, 1), "%")});
            rows.push(
                Json::object()
                    .set("workload", w)
                    .set("tech", device::technologyName(tech))
                    .set("stuck_density", density)
                    .set("spare_rows", spares)
                    .set("guarded", guarded)
                    .set("yield", static_cast<double>(clean) / kTrials)
                    .set("retries_per_trial",
                         static_cast<double>(retries) / kTrials)
                    .set("degraded_per_trial",
                         static_cast<double>(degraded) / kTrials)
                    .set("stuck_reads_per_trial",
                         static_cast<double>(stuckReads) / kTrials)
                    .set("repairs_per_trial",
                         static_cast<double>(repairs) / kTrials)
                    .set("latency_overhead", overhead));
          }
  t.print(std::cout);

  // Spare-row repair utilization. At paper-scale arrays and realistic
  // densities placement sidesteps every fault without touching the
  // spare region (the all-zero repairs column above), so this compact
  // second grid shrinks the array and raises the density until column
  // main regions actually exhaust: naive mapping packs columns to their
  // exact usable capacity, so codegen temporaries spill into spares.
  constexpr int kSmallDim = 64;
  const double kPressureDensities[] = {0.3, 0.5};
  const int kPressureSpares[] = {8, 16};

  std::vector<SweepJob> pjobs;
  {
    RunConfig cfg;
    cfg.arrayDim = kSmallDim;
    cfg.strategy = mapping::Strategy::Naive;
    pjobs.push_back({kWorkloads[0], cfg});
  }
  size_t ppoint = 0;
  for (double density : kPressureDensities)
    for (int spares : kPressureSpares)
      for (int tr = 0; tr < kTrials; ++tr, ++ppoint) {
        RunConfig cfg;
        cfg.arrayDim = kSmallDim;
        cfg.strategy = mapping::Strategy::Naive;
        cfg.faultStuckDensity = density;
        cfg.faultWeakDensity = density * 0.5;
        cfg.faultSeed = deriveSeed(kBaseSeed ^ 0xba11ad, ppoint);
        cfg.spareRows = spares;
        cfg.injectFaults = true;
        pjobs.push_back({kWorkloads[0], cfg});
      }
  std::vector<RunResult> presults = runSweep(pjobs, /*requireVerified=*/true);

  Table p(strCat("Spare-row repair under pressure (", kWorkloads[0],
                 ", naive mapping, ", kSmallDim, "x", kSmallDim,
                 " arrays)"));
  p.setHeader({"density", "spares", "yield", "repairs", "latency ovh"});
  size_t pjob = 1;
  for (double density : kPressureDensities)
    for (int spares : kPressureSpares) {
      int clean = 0;
      long repairs = 0;
      double latency = 0;
      for (int tr = 0; tr < kTrials; ++tr) {
        const RunResult& r = presults[pjob++];
        if (r.sim.corruptedLanes() == 0) ++clean;
        repairs += r.stats.spareRowAllocations;
        latency += r.sim.latencyNs;
      }
      p.addRow({Table::num(density, 2), std::to_string(spares),
                Table::num(static_cast<double>(clean) / kTrials, 2),
                Table::num(static_cast<double>(repairs) / kTrials, 1),
                strCat(Table::num((latency / kTrials /
                                   presults[0].sim.latencyNs - 1.0) * 100.0,
                                  1),
                       "%")});
    }
  p.print(std::cout);

  std::cout << "\nExpected: guarded rows hold yield at (or near) 1.0 where "
               "unguarded STT-MRAM rows lose lanes; retries concentrate on "
               "weak-cell ops; repairs appear once faults or density "
               "pressure exhaust a column's main region; latency overhead "
               "stays small because only high-P_DF ops are guarded.\n";

  if (!jsonPath.empty()) {
    double wallSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wallStart)
            .count();
    Json doc = Json::object()
                   .set("schema_version", kBenchSchemaVersion)
                   .set("bench", "bench_fault_tolerance")
                   .set("array_dim", kDim)
                   .set("trials_per_point", kTrials)
                   .set("wall_seconds", wallSeconds)
                   .set("points", std::move(rows));
    std::ofstream out(jsonPath);
    out << doc.dump();
    std::cout << "\nWrote JSON to " << jsonPath << "\n";
  }
  return 0;
}
