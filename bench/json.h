// Minimal JSON emitter for the benchmark harnesses: enough to write the
// machine-readable artifacts CI uploads (flat objects, arrays of objects,
// numbers, strings, booleans) without pulling in a dependency. Numbers
// are written with max_digits10 so doubles round-trip.
#pragma once

#include <cmath>
#include <iomanip>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

namespace sherlock::bench {

/// Version of the BENCH_*.json artifact schema. Every emitter stamps
/// this as "schema_version"; scripts/compare_bench.py refuses to gate a
/// run against a baseline from a different version (artifacts without
/// the field are treated as version 1). Bump when renaming/removing
/// fields the gates read — additive fields do not need a bump, but this
/// v2 bump marks the introduction of the field itself plus the per-link
/// occupancy arrays in BENCH_7.
inline constexpr int kBenchSchemaVersion = 2;

/// Build-once JSON value tree. Construction order is preserved for
/// object keys so emitted artifacts diff cleanly run-over-run.
class Json {
 public:
  static Json object() { return Json(Kind::Object); }
  static Json array() { return Json(Kind::Array); }
  static Json str(std::string s) {
    Json j(Kind::String);
    j.string_ = std::move(s);
    return j;
  }
  static Json num(double v) {
    Json j(Kind::Number);
    j.number_ = v;
    return j;
  }
  static Json num(long v) { return num(static_cast<double>(v)); }
  static Json num(int v) { return num(static_cast<double>(v)); }
  static Json boolean(bool b) {
    Json j(Kind::Bool);
    j.bool_ = b;
    return j;
  }

  Json& set(const std::string& key, Json value) {
    keys_.push_back(key);
    values_.push_back(std::move(value));
    return *this;
  }
  Json& set(const std::string& key, const std::string& v) {
    return set(key, str(v));
  }
  Json& set(const std::string& key, const char* v) { return set(key, str(v)); }
  Json& set(const std::string& key, double v) { return set(key, num(v)); }
  Json& set(const std::string& key, long v) { return set(key, num(v)); }
  Json& set(const std::string& key, int v) { return set(key, num(v)); }
  Json& set(const std::string& key, bool v) { return set(key, boolean(v)); }

  Json& push(Json value) {
    values_.push_back(std::move(value));
    return *this;
  }

  std::string dump(int indent = 2) const {
    std::ostringstream out;
    write(out, indent, 0);
    out << "\n";
    return out.str();
  }

 private:
  enum class Kind { Object, Array, String, Number, Bool };
  explicit Json(Kind k) : kind_(k) {}

  static void writeString(std::ostream& out, const std::string& s) {
    out << '"';
    for (char c : s) {
      switch (c) {
        case '"': out << "\\\""; break;
        case '\\': out << "\\\\"; break;
        case '\n': out << "\\n"; break;
        case '\t': out << "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            out << "\\u" << std::hex << std::setw(4) << std::setfill('0')
                << static_cast<int>(c) << std::dec << std::setfill(' ');
          } else {
            out << c;
          }
      }
    }
    out << '"';
  }

  void write(std::ostream& out, int indent, int depth) const {
    const std::string pad(static_cast<size_t>(indent) * (depth + 1), ' ');
    const std::string close(static_cast<size_t>(indent) * depth, ' ');
    switch (kind_) {
      case Kind::String:
        writeString(out, string_);
        break;
      case Kind::Bool:
        out << (bool_ ? "true" : "false");
        break;
      case Kind::Number:
        if (!std::isfinite(number_)) {
          out << "null";  // JSON has no inf/nan
        } else if (number_ == std::floor(number_) &&
                   std::abs(number_) < 1e15) {
          out << static_cast<long long>(number_);
        } else {
          out << std::setprecision(
                     std::numeric_limits<double>::max_digits10)
              << number_;
        }
        break;
      case Kind::Object: {
        if (keys_.empty()) {
          out << "{}";
          break;
        }
        out << "{\n";
        for (size_t i = 0; i < keys_.size(); ++i) {
          out << pad;
          writeString(out, keys_[i]);
          out << ": ";
          values_[i].write(out, indent, depth + 1);
          out << (i + 1 < keys_.size() ? ",\n" : "\n");
        }
        out << close << "}";
        break;
      }
      case Kind::Array: {
        if (values_.empty()) {
          out << "[]";
          break;
        }
        out << "[\n";
        for (size_t i = 0; i < values_.size(); ++i) {
          out << pad;
          values_[i].write(out, indent, depth + 1);
          out << (i + 1 < values_.size() ? ",\n" : "\n");
        }
        out << close << "]";
        break;
      }
    }
  }

  Kind kind_;
  std::string string_;
  double number_ = 0;
  bool bool_ = false;
  std::vector<std::string> keys_;
  std::vector<Json> values_;
};

}  // namespace sherlock::bench
