// Multi-array scaling evaluation: what a mesh of small arrays buys over
// one monolithic array of the same total cell count.
//
// Grid: workload (AES-128, 16-bit BitWeaving predicate) x mesh size
// (1x1, 1x2, 2x2) at an equal silicon budget — the 1x1 monolith has
// dimension D, an RxC mesh uses arrays of ~D/sqrt(R*C). Smaller arrays
// sense faster (shorter bitlines/wordlines, narrower decoders), but the
// kernel no longer fits one array of the mesh: the partitioner shards
// its clusters and codegen stitches the cut edges with modeled XFERs
// (source sense + Manhattan hop latency on the shared bus + posted
// destination write). Reported per point: instructions, xfers, bus
// occupancy, simulated latency and energy, the partitioner's overlapped
// vs serialized makespan estimate, and the latency speedup over the
// same workload's 1x1 run.
//
// --json <path> writes the machine-readable artifact CI uploads
// (BENCH_7.json); --dim <N> overrides the 1x1 base dimension and
// --workload filters (exploration only).
#include <algorithm>
#include <cmath>
#include <fstream>
#include <iostream>
#include <map>

#include "bench/json.h"
#include "bench/sweep.h"
#include "support/table.h"

using namespace sherlock;
using namespace sherlock::bench;

namespace {

struct GridPoint {
  const char* name;
  int rows;
  int cols;
};

constexpr GridPoint kGrids[] = {{"1x1", 1, 1}, {"1x2", 1, 2}, {"2x2", 2, 2}};

// Per-workload base dimension D of the 1x1 monolith, sized so the
// kernel's clusters exceed one mesh array's columns at D/2 (the 2x2
// genuinely shards) while still fitting the monolith.
int baseDimFor(const std::string& workload, int override_) {
  if (override_ > 0) return override_;
  return workload == "AES" ? 320 : 192;
}

// Equal-silicon array dimension for an RxC mesh: D / sqrt(R*C),
// rounded (R*C is 1, 2, or 4 here).
int meshDim(int baseDim, int gridCells) {
  return static_cast<int>(
      std::lround(baseDim / std::sqrt(static_cast<double>(gridCells))));
}

}  // namespace

int main(int argc, char** argv) {
  std::string jsonPath;
  std::string only;
  int dimOverride = 0;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) jsonPath = argv[++i];
    else if (arg == "--dim" && i + 1 < argc) dimOverride = std::stoi(argv[++i]);
    else if (arg == "--workload" && i + 1 < argc) only = argv[++i];
  }

  std::vector<const char*> kWl = {"Bitweaving", "AES"};
  if (!only.empty()) kWl = {only.c_str()};

  std::vector<SweepJob> jobs;
  for (const char* w : kWl)
    for (const GridPoint& gp : kGrids) {
      RunConfig cfg;
      cfg.arrayDim =
          meshDim(baseDimFor(w, dimOverride), gp.rows * gp.cols);
      cfg.grid.rows = gp.rows;
      cfg.grid.cols = gp.cols;
      jobs.push_back({w, cfg});
    }
  std::vector<RunResult> results = runSweep(jobs);

  Table table("Multi-array scaling (ReRAM, optimized mapping)");
  table.setHeader({"workload", "dim", "grid", "instr", "xfers", "moves",
                   "bus us", "stall us", "links", "latency us",
                   "energy uJ", "overlap/serial", "speedup"});
  Json configs = Json::array();
  std::map<std::string, double> baseline;  // workload -> 1x1 latency
  for (size_t i = 0; i < jobs.size(); ++i) {
    const SweepJob& j = jobs[i];
    const RunResult& r = results[i];
    std::string grid = strCat(j.config.grid.rows, "x", j.config.grid.cols);
    if (grid == "1x1") baseline[j.workload] = r.sim.latencyNs;
    double speedup = baseline[j.workload] / r.sim.latencyNs;
    double overlapRatio =
        r.partition.serializedMakespanNs > 0
            ? r.partition.overlappedMakespanNs / r.partition.serializedMakespanNs
            : 1.0;
    // Per-directed-link occupancy: which mesh links the bus time went
    // to. max_link_busy_ns >> busBusyNs / active_links flags a hot link.
    double maxLinkBusyNs = 0;
    Json links = Json::array();
    for (const auto& ls : r.sim.linkStats) {
      maxLinkBusyNs = std::max(maxLinkBusyNs, ls.busyNs);
      links.push(Json::object()
                     .set("from", ls.fromArray)
                     .set("to", ls.toArray)
                     .set("busy_ns", ls.busyNs)
                     .set("transfers", ls.transfers));
    }
    table.addRow({j.workload, std::to_string(j.config.arrayDim), grid,
                  std::to_string(r.instructionCount),
                  std::to_string(r.sim.xferCount),
                  std::to_string(r.sim.moveCount),
                  Table::num(r.sim.busBusyNs / 1000.0),
                  Table::num(r.sim.stallNs / 1000.0),
                  std::to_string(r.sim.linkStats.size()),
                  Table::num(r.sim.latencyUs()), Table::num(r.sim.energyUj()),
                  Table::num(overlapRatio), Table::num(speedup)});
    Json c = Json::object();
    c.set("workload", j.workload)
        .set("grid", grid)
        .set("tech", "reram")
        .set("array_dim", j.config.arrayDim)
        .set("instructions", static_cast<long>(r.instructionCount))
        .set("xfers", r.sim.xferCount)
        .set("moves", r.sim.moveCount)
        .set("bus_busy_ns", r.sim.busBusyNs)
        .set("bus_wait_ns", r.sim.busWaitNs)
        .set("active_links", static_cast<long>(r.sim.linkStats.size()))
        .set("max_link_busy_ns", maxLinkBusyNs)
        .set("links", std::move(links))
        .set("latency_ns", r.sim.latencyNs)
        .set("energy_pj", r.sim.energyPj)
        .set("overlapped_makespan_ns", r.partition.overlappedMakespanNs)
        .set("serialized_makespan_ns", r.partition.serializedMakespanNs)
        .set("single_array_fallback", r.partition.singleArray)
        .set("speedup_vs_1x1", speedup)
        .set("verified", r.sim.verified);
    configs.push(std::move(c));
  }
  table.print(std::cout);

  bool win = true;
  for (const char* w : kWl) {
    double lat1x1 = 0, lat2x2 = 0;
    for (size_t i = 0; i < jobs.size(); ++i) {
      if (jobs[i].workload != w) continue;
      std::string grid =
          strCat(jobs[i].config.grid.rows, "x", jobs[i].config.grid.cols);
      if (grid == "1x1") lat1x1 = results[i].sim.latencyNs;
      if (grid == "2x2") lat2x2 = results[i].sim.latencyNs;
    }
    std::cout << w << ": 2x2 vs 1x1 latency " << lat2x2 / 1000.0 << " vs "
              << lat1x1 / 1000.0 << " us ("
              << (lat2x2 < lat1x1 ? "faster" : "NOT faster") << ")\n";
    win = win && lat2x2 < lat1x1;
  }

  if (!jsonPath.empty()) {
    Json root = Json::object();
    root.set("schema_version", kBenchSchemaVersion)
        .set("pr", 7)
        .set("title", "Multi-array sharding & inter-array scheduling")
        .set("benchmark",
             "bench_multi_array: AES-128 + 16-bit BitWeaving across "
             "1x1/1x2/2x2 meshes, modeled XFER costs (10 ns/hop)")
        .set("metric", "simulated latency_ns per (workload, grid) config")
        .set("grid_beats_single_array", win)
        .set("configs", std::move(configs));
    std::ofstream out(jsonPath);
    out << root.dump();
    std::cout << "\nWrote JSON to " << jsonPath << "\n";
  }
  return win ? 0 : 1;
}
