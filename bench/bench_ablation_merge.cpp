// Ablation A2: contribution of the optimized flow's code-generation
// features — cross-cluster instruction merging (Sec. 3.3.3), lazy
// write-back with row-buffer operand chaining, and the clustering
// refinement pass — each toggled off individually against the full
// optimized configuration.
#include <iostream>

#include "bench/common.h"
#include "support/table.h"

using namespace sherlock;
using namespace sherlock::bench;

namespace {

struct Variant {
  const char* name;
  bool merge;
  bool eager;       // eager write-back (disables chaining)
  bool chaining;    // target's row-buffer chaining
  int refinePasses;
  mapping::CodegenOptions::WaveOrder waveOrder =
      mapping::CodegenOptions::WaveOrder::BLevel;
};

}  // namespace

int main() {
  const Variant variants[] = {
      {"full opt", true, false, true, 2},
      {"no instruction merging", false, false, true, 2},
      {"eager write-back (no chaining)", true, true, true, 2},
      {"no buffer chaining", true, false, false, 2},
      {"no refinement", true, false, true, 0},
      {"t-level (ASAP) waves", true, false, true, 2,
       mapping::CodegenOptions::WaveOrder::TLevel},
  };

  Table t("Ablation A2 — optimized-flow features (512x512 ReRAM)");
  t.setHeader({"Benchmark", "variant", "instructions", "spill writes",
               "chained", "merged", "latency (us)", "energy (uJ)"});
  for (const char* workload : kWorkloads) {
    ir::Graph g = makeWorkload(workload);
    for (const Variant& v : variants) {
      isa::TargetSpec target = isa::TargetSpec::square(
          512, device::TechnologyParams::reRam(), 2);
      target.bufferChaining = v.chaining;
      mapping::CompileOptions copts;
      copts.strategy = mapping::Strategy::Optimized;
      copts.mergeInstructions = v.merge;
      copts.eagerWriteback = v.eager;
      copts.optimizer.refinePasses = v.refinePasses;
      copts.waveOrder = v.waveOrder;
      auto compiled = mapping::compile(g, target, copts);
      auto r = sim::simulate(g, target, compiled.program);
      if (!r.verified) throw Error("verification failed");
      t.addRow({workload, v.name,
                std::to_string(compiled.program.instructions.size()),
                std::to_string(compiled.program.stats.spillWrites),
                std::to_string(compiled.program.stats.chainedOperands),
                std::to_string(compiled.program.stats.mergedInstructions),
                Table::num(r.latencyUs(), 2),
                Table::num(r.energyUj(), 2)});
    }
    t.addSeparator();
  }
  t.print(std::cout);
  return 0;
}
