// Ablation A2: contribution of the optimized flow's code-generation
// features — cross-cluster instruction merging (Sec. 3.3.3), lazy
// write-back with row-buffer operand chaining, and the clustering
// refinement pass — each toggled off individually against the full
// optimized configuration. The (workload x variant) grid runs
// concurrently; rows print in grid order.
#include <iostream>
#include <map>

#include "bench/common.h"
#include "support/parallel.h"
#include "support/table.h"

using namespace sherlock;
using namespace sherlock::bench;

namespace {

struct Variant {
  const char* name;
  bool merge;
  bool eager;       // eager write-back (disables chaining)
  bool chaining;    // target's row-buffer chaining
  int refinePasses;
  mapping::CodegenOptions::WaveOrder waveOrder =
      mapping::CodegenOptions::WaveOrder::BLevel;
};

struct Cell {
  const char* workload;
  const Variant* variant;
};

}  // namespace

int main() {
  const Variant variants[] = {
      {"full opt", true, false, true, 2},
      {"no instruction merging", false, false, true, 2},
      {"eager write-back (no chaining)", true, true, true, 2},
      {"no buffer chaining", true, false, false, 2},
      {"no refinement", true, false, true, 0},
      {"t-level (ASAP) waves", true, false, true, 2,
       mapping::CodegenOptions::WaveOrder::TLevel},
  };

  std::vector<Cell> grid;
  for (const char* workload : kWorkloads)
    for (const Variant& v : variants) grid.push_back({workload, &v});

  // Workload graphs are shared read-only across the grid.
  std::map<std::string, ir::Graph> graphs;
  for (const char* workload : kWorkloads)
    graphs.emplace(workload, makeWorkload(workload));

  auto rows = parallelMap(grid, [&](const Cell& cell) {
    const Variant& v = *cell.variant;
    const ir::Graph& g = graphs.at(cell.workload);
    isa::TargetSpec target =
        isa::TargetSpec::square(512, device::TechnologyParams::reRam(), 2);
    target.bufferChaining = v.chaining;
    mapping::CompileOptions copts;
    copts.strategy = mapping::Strategy::Optimized;
    copts.mergeInstructions = v.merge;
    copts.eagerWriteback = v.eager;
    copts.optimizer.refinePasses = v.refinePasses;
    copts.waveOrder = v.waveOrder;
    auto compiled = mapping::compile(g, target, copts);
    auto r = sim::simulate(g, target, compiled.program);
    if (!r.verified)
      throw Error(strCat("verification failed: ", cell.workload, " / ",
                         v.name));
    return std::vector<std::string>{
        cell.workload, v.name,
        std::to_string(compiled.program.instructions.size()),
        std::to_string(compiled.program.stats.spillWrites),
        std::to_string(compiled.program.stats.chainedOperands),
        std::to_string(compiled.program.stats.mergedInstructions),
        Table::num(r.latencyUs(), 2), Table::num(r.energyUj(), 2)};
  });

  Table t("Ablation A2 — optimized-flow features (512x512 ReRAM)");
  t.setHeader({"Benchmark", "variant", "instructions", "spill writes",
               "chained", "merged", "latency (us)", "energy (uJ)"});
  for (size_t i = 0; i < rows.size(); ++i) {
    t.addRow(rows[i]);
    if ((i + 1) % std::size(variants) == 0) t.addSeparator();
  }
  t.print(std::cout);
  return 0;
}
