// Micro-benchmarks (google-benchmark): compile-time scalability of the
// Sherlock pipeline stages — b-level analysis, clustering, both mappers
// and full compilation — on random DAGs of growing size.
#include <benchmark/benchmark.h>

#include "ir/analysis.h"
#include "mapping/compiler.h"
#include "transforms/passes.h"
#include "transforms/substitution.h"
#include "workloads/random_dag.h"

using namespace sherlock;

namespace {

ir::Graph dagOfSize(int ops) {
  workloads::RandomDagSpec spec;
  spec.inputs = std::max(8, ops / 16);
  spec.ops = ops;
  spec.maxArity = 3;
  spec.locality = 0.4;
  spec.seed = 1234;
  return workloads::buildRandomDag(spec);
}

isa::TargetSpec targetFor(const ir::Graph& g) {
  // Generous target so every size fits.
  isa::TargetSpec t =
      isa::TargetSpec::square(512, device::TechnologyParams::reRam(), 3);
  t.numArrays = 1 + static_cast<int>(g.valueCount()) / (512 * 400);
  return t;
}

void BM_BLevels(benchmark::State& state) {
  ir::Graph g = dagOfSize(static_cast<int>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(ir::bLevels(g));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_BLevels)->Range(256, 16384)->Complexity();

void BM_Canonicalize(benchmark::State& state) {
  ir::Graph g = dagOfSize(static_cast<int>(state.range(0)));
  for (auto _ : state)
    benchmark::DoNotOptimize(transforms::canonicalize(g));
}
BENCHMARK(BM_Canonicalize)->Range(256, 16384);

void BM_Substitution(benchmark::State& state) {
  ir::Graph g = transforms::canonicalize(
      dagOfSize(static_cast<int>(state.range(0))));
  transforms::SubstitutionOptions opt;
  opt.maxOperands = 4;
  for (auto _ : state)
    benchmark::DoNotOptimize(transforms::substituteNodes(g, opt));
}
BENCHMARK(BM_Substitution)->Range(256, 16384);

void BM_MapNaive(benchmark::State& state) {
  ir::Graph g = transforms::canonicalize(
      dagOfSize(static_cast<int>(state.range(0))));
  isa::TargetSpec t = targetFor(g);
  for (auto _ : state)
    benchmark::DoNotOptimize(mapping::mapNaive(g, t));
}
BENCHMARK(BM_MapNaive)->Range(256, 16384);

void BM_MapOptimized(benchmark::State& state) {
  ir::Graph g = transforms::canonicalize(
      dagOfSize(static_cast<int>(state.range(0))));
  isa::TargetSpec t = targetFor(g);
  for (auto _ : state)
    benchmark::DoNotOptimize(mapping::mapOptimized(g, t));
}
BENCHMARK(BM_MapOptimized)->Range(256, 16384);

void BM_CompileOptimizedEndToEnd(benchmark::State& state) {
  ir::Graph g = transforms::canonicalize(
      dagOfSize(static_cast<int>(state.range(0))));
  isa::TargetSpec t = targetFor(g);
  for (auto _ : state)
    benchmark::DoNotOptimize(mapping::compile(g, t));
}
BENCHMARK(BM_CompileOptimizedEndToEnd)->Range(256, 4096);

}  // namespace

BENCHMARK_MAIN();
