// Reproduces paper Fig. 7: energy-delay product (EDP) of the optimized
// CIM configurations versus the CPU baseline, across array sizes
// (128..1024, with the Table 1 data-width pairing) and technologies.
// Values are the EDP *gain* (CPU EDP / CIM EDP) — the paper reports up to
// three orders of magnitude. All 24 CIM configurations run concurrently;
// the per-technology geomean row uses the epsilon-floored geomeanSafe so
// a degenerate EDP cannot abort the table.
#include <iostream>
#include <map>

#include "bench/sweep.h"
#include "support/stats.h"
#include "support/table.h"

using namespace sherlock;
using namespace sherlock::bench;

int main() {
  const int dims[] = {128, 256, 512, 1024};

  std::vector<SweepJob> jobs;
  for (const char* workload : kWorkloads)
    for (auto tech : {device::Technology::ReRam, device::Technology::SttMram})
      for (int dim : dims) {
        RunConfig cfg;
        cfg.tech = tech;
        cfg.arrayDim = dim;
        cfg.strategy = mapping::Strategy::Optimized;
        jobs.push_back({workload, cfg});
      }
  std::vector<RunResult> results = runSweep(jobs);

  Table t("Fig. 7 — EDP gain over CPU (CPU EDP / CIM EDP, opt mapping)");
  t.setHeader({"Benchmark", "Tech", "N=128", "N=256", "N=512", "N=1024"});
  // Per-technology gain collections for the geomean summary row.
  std::map<device::Technology, std::vector<double>> gainsByTech;
  size_t idx = 0;
  for (const char* workload : kWorkloads) {
    ir::Graph g = makeWorkload(workload);
    // The CPU processes the same bulk data.
    cpu::CpuResult cpuRes = cpu::estimateCpu(g, kBulkBits);
    for (auto tech :
         {device::Technology::ReRam, device::Technology::SttMram}) {
      std::vector<std::string> row{workload, technologyName(tech)};
      for (size_t d = 0; d < std::size(dims); ++d) {
        const RunResult& r = results[idx++];
        double gain = cpuRes.edp() / r.sim.edp();
        gainsByTech[tech].push_back(gain);
        row.push_back(Table::num(gain, 1));
      }
      t.addRow(row);
    }
    t.addSeparator();
  }
  for (auto tech : {device::Technology::ReRam, device::Technology::SttMram})
    t.addRow({"geomean", technologyName(tech),
              Table::num(geomeanSafe(gainsByTech[tech]), 1), "", "", ""});
  t.print(std::cout);

  std::cout << "\nExpected shape: gains of two to three-plus orders of "
               "magnitude over the CPU; STT-MRAM roughly an order of "
               "magnitude ahead of ReRAM (cheaper writes); distinct "
               "per-benchmark and per-size profiles.\n";
  return 0;
}
