// Reproduces paper Fig. 7: energy-delay product (EDP) of the optimized
// CIM configurations versus the CPU baseline, across array sizes
// (128..1024, with the Table 1 data-width pairing) and technologies.
// Values are the EDP *gain* (CPU EDP / CIM EDP) — the paper reports up to
// three orders of magnitude. All 24 CIM configurations run concurrently;
// the per-technology geomean row uses the epsilon-floored geomeanSafe so
// a degenerate EDP cannot abort the table.
#include <fstream>
#include <iostream>
#include <map>

#include "bench/json.h"
#include "bench/sweep.h"
#include "support/stats.h"
#include "support/table.h"

using namespace sherlock;
using namespace sherlock::bench;

int main(int argc, char** argv) {
  std::string jsonPath;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) jsonPath = argv[++i];
  }
  const int dims[] = {128, 256, 512, 1024};

  std::vector<SweepJob> jobs;
  for (const char* workload : kWorkloads)
    for (auto tech : {device::Technology::ReRam, device::Technology::SttMram})
      for (int dim : dims) {
        RunConfig cfg;
        cfg.tech = tech;
        cfg.arrayDim = dim;
        cfg.strategy = mapping::Strategy::Optimized;
        jobs.push_back({workload, cfg});
      }
  std::vector<RunResult> results = runSweep(jobs);

  Table t("Fig. 7 — EDP gain over CPU (CPU EDP / CIM EDP, opt mapping)");
  t.setHeader({"Benchmark", "Tech", "N=128", "N=256", "N=512", "N=1024"});
  // Per-technology gain collections for the geomean summary row.
  std::map<device::Technology, std::vector<double>> gainsByTech;
  Json configs = Json::array();
  size_t idx = 0;
  for (const char* workload : kWorkloads) {
    ir::Graph g = makeWorkload(workload);
    // The CPU processes the same bulk data.
    cpu::CpuResult cpuRes = cpu::estimateCpu(g, kBulkBits);
    for (auto tech :
         {device::Technology::ReRam, device::Technology::SttMram}) {
      std::vector<std::string> row{workload, technologyName(tech)};
      for (size_t d = 0; d < std::size(dims); ++d) {
        const RunResult& r = results[idx++];
        double gain = cpuRes.edp() / r.sim.edp();
        gainsByTech[tech].push_back(gain);
        row.push_back(Table::num(gain, 1));
        Json c = Json::object();
        c.set("workload", workload)
            .set("tech", technologyName(tech))
            .set("array_dim", dims[d])
            .set("strategy", "opt")
            .set("latency_ns", r.sim.latencyNs)
            .set("energy_pj", r.sim.energyPj)
            .set("edp_gain_vs_cpu", gain);
        configs.push(std::move(c));
      }
      t.addRow(row);
    }
    t.addSeparator();
  }
  for (auto tech : {device::Technology::ReRam, device::Technology::SttMram})
    t.addRow({"geomean", technologyName(tech),
              Table::num(geomeanSafe(gainsByTech[tech]), 1), "", "", ""});
  t.print(std::cout);

  std::cout << "\nExpected shape: gains of two to three-plus orders of "
               "magnitude over the CPU; STT-MRAM roughly an order of "
               "magnitude ahead of ReRAM (cheaper writes); distinct "
               "per-benchmark and per-size profiles.\n";

  if (!jsonPath.empty()) {
    Json root = Json::object();
    root.set("schema_version", kBenchSchemaVersion)
        .set("pr", 8)
        .set("title", "Fig. 7 reproduction")
        .set("benchmark",
             "bench_fig7: EDP gain over CPU across array sizes and "
             "technologies (opt mapping)")
        .set("metric",
             "analytic latency_ns / energy_pj / edp_gain_vs_cpu per "
             "(workload, tech, array_dim) config (deterministic)")
        .set("configs", std::move(configs));
    std::ofstream out(jsonPath);
    out << root.dump();
    std::cout << "\nWrote JSON to " << jsonPath << "\n";
  }
  return 0;
}
