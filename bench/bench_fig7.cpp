// Reproduces paper Fig. 7: energy-delay product (EDP) of the optimized
// CIM configurations versus the CPU baseline, across array sizes
// (128..1024, with the Table 1 data-width pairing) and technologies.
// Values are the EDP *gain* (CPU EDP / CIM EDP) — the paper reports up to
// three orders of magnitude.
#include <iostream>

#include "bench/common.h"
#include "support/table.h"

using namespace sherlock;
using namespace sherlock::bench;

int main() {
  Table t("Fig. 7 — EDP gain over CPU (CPU EDP / CIM EDP, opt mapping)");
  t.setHeader({"Benchmark", "Tech", "N=128", "N=256", "N=512", "N=1024"});

  for (const char* workload : kWorkloads) {
    ir::Graph g = makeWorkload(workload);
    for (auto tech :
         {device::Technology::ReRam, device::Technology::SttMram}) {
      std::vector<std::string> row{workload, technologyName(tech)};
      for (int dim : {128, 256, 512, 1024}) {
        // The CPU processes the same bulk data.
        cpu::CpuResult cpuRes = cpu::estimateCpu(g, kBulkBits);
        RunConfig cfg;
        cfg.tech = tech;
        cfg.arrayDim = dim;
        cfg.strategy = mapping::Strategy::Optimized;
        RunResult r = runPipeline(g, cfg);
        if (!r.sim.verified) throw Error("verification failed");
        row.push_back(Table::num(cpuRes.edp() / r.sim.edp(), 1));
      }
      t.addRow(row);
    }
    t.addSeparator();
  }
  t.print(std::cout);

  std::cout << "\nExpected shape: gains of two to three-plus orders of "
               "magnitude over the CPU; STT-MRAM roughly an order of "
               "magnitude ahead of ReRAM (cheaper writes); distinct "
               "per-benchmark and per-size profiles.\n";
  return 0;
}
