// Declarative sweep harness for the benchmark drivers.
//
// A bench expresses its evaluation as a flat list of SweepJob entries
// (workload name + RunConfig) built in the exact order its tables will
// consume them, then calls runSweep() once: every compile + simulate job
// executes concurrently on the shared thread pool and the results come
// back in input order. Because each job is a pure function of its config
// (all RNG use inside the pipeline is seeded per job, never shared),
// output tables are byte-identical for any SHERLOCK_THREADS value.
#pragma once

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "bench/common.h"
#include "support/parallel.h"

namespace sherlock::bench {

/// One sweep entry: which workload to run and how to run it.
struct SweepJob {
  std::string workload;
  RunConfig config;
};

/// Short human-readable label for error messages.
inline std::string configLabel(const std::string& workload,
                               const RunConfig& cfg) {
  return strCat(workload, " ", device::technologyName(cfg.tech), " ",
                cfg.arrayDim, "x", cfg.arrayDim,
                cfg.strategy == mapping::Strategy::Optimized ? " opt" : " naive",
                " mra", cfg.mra);
}

/// Runs every job's pipeline concurrently and returns the results in
/// input order. Each distinct workload graph is built once and shared
/// read-only by all jobs that reference it. When `requireVerified` is
/// set (the default), a job whose simulation fails functional
/// verification aborts the sweep with an Error naming the configuration.
inline std::vector<RunResult> runSweep(const std::vector<SweepJob>& jobs,
                                       bool requireVerified = true) {
  std::vector<std::string> names;
  for (const SweepJob& j : jobs)
    if (std::find(names.begin(), names.end(), j.workload) == names.end())
      names.push_back(j.workload);
  std::vector<ir::Graph> built =
      parallelMap(names, [](const std::string& n) { return makeWorkload(n); });
  std::map<std::string, const ir::Graph*> graphs;
  for (size_t i = 0; i < names.size(); ++i)
    graphs.emplace(names[i], &built[i]);

  return parallelMap(jobs, [&](const SweepJob& j) {
    RunResult r = runPipeline(*graphs.at(j.workload), j.config);
    if (requireVerified && !r.sim.verified)
      throw Error(strCat("verification failed: ",
                         configLabel(j.workload, j.config)));
    return r;
  });
}

}  // namespace sherlock::bench
