// Ablation A1: sensitivity of the Eq. 1 clustering score
//   score(d, C) = beta * |C| + alpha * sum rho(d, q)
// to its constants. Sweeps alpha (dependency affinity) and beta (size
// penalty) and reports crossing dependencies and simulated latency for
// the optimized mapping, justifying the defaults (alpha = 1, beta = -0.5).
// The (workload x alpha x beta) grid runs concurrently in grid order.
#include <iostream>
#include <map>

#include "bench/common.h"
#include "mapping/clustering.h"
#include "support/parallel.h"
#include "support/table.h"

using namespace sherlock;
using namespace sherlock::bench;

namespace {

struct Cell {
  const char* workload;
  double alpha;
  double beta;
};

}  // namespace

int main() {
  const char* workloads[] = {"Bitweaving", "Sobel"};
  const double alphas[] = {0.0, 0.5, 1.0, 2.0};
  const double betas[] = {-2.0, -0.5, 0.0, 0.5};

  std::vector<Cell> grid;
  for (const char* workload : workloads)
    for (double alpha : alphas)
      for (double beta : betas) grid.push_back({workload, alpha, beta});

  std::map<std::string, ir::Graph> graphs;
  for (const char* workload : workloads)
    graphs.emplace(workload, makeWorkload(workload));

  auto rows = parallelMap(grid, [&](const Cell& cell) {
    const ir::Graph& g = graphs.at(cell.workload);
    isa::TargetSpec target =
        isa::TargetSpec::square(512, device::TechnologyParams::reRam(), 2);
    mapping::CompileOptions copts;
    copts.strategy = mapping::Strategy::Optimized;
    copts.optimizer.alpha = cell.alpha;
    copts.optimizer.beta = cell.beta;
    auto compiled = mapping::compile(g, target, copts);
    auto r = sim::simulate(g, target, compiled.program);
    if (!r.verified)
      throw Error(strCat("verification failed: ", cell.workload, " alpha=",
                         cell.alpha, " beta=", cell.beta));
    return std::vector<std::string>{
        cell.workload, Table::num(cell.alpha, 1), Table::num(cell.beta, 1),
        std::to_string(compiled.clustering.clusters.size()),
        std::to_string(compiled.clustering.crossClusterEdges),
        std::to_string(compiled.program.instructions.size()),
        Table::num(r.latencyUs(), 2)};
  });

  Table t("Ablation A1 — Eq. 1 constants (opt mapping, 512x512 ReRAM)");
  t.setHeader({"Benchmark", "alpha", "beta", "clusters", "cross edges",
               "instructions", "latency (us)"});
  const size_t perWorkload = std::size(alphas) * std::size(betas);
  for (size_t i = 0; i < rows.size(); ++i) {
    t.addRow(rows[i]);
    if ((i + 1) % perWorkload == 0) t.addSeparator();
  }
  t.print(std::cout);
  return 0;
}
