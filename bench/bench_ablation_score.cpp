// Ablation A1: sensitivity of the Eq. 1 clustering score
//   score(d, C) = beta * |C| + alpha * sum rho(d, q)
// to its constants. Sweeps alpha (dependency affinity) and beta (size
// penalty) and reports crossing dependencies and simulated latency for
// the optimized mapping, justifying the defaults (alpha = 1, beta = -0.5).
#include <iostream>

#include "bench/common.h"
#include "mapping/clustering.h"
#include "support/table.h"

using namespace sherlock;
using namespace sherlock::bench;

int main() {
  Table t("Ablation A1 — Eq. 1 constants (opt mapping, 512x512 ReRAM)");
  t.setHeader({"Benchmark", "alpha", "beta", "clusters", "cross edges",
               "instructions", "latency (us)"});
  for (const char* workload : {"Bitweaving", "Sobel"}) {
    ir::Graph g = makeWorkload(workload);
    isa::TargetSpec target =
        isa::TargetSpec::square(512, device::TechnologyParams::reRam(), 2);
    for (double alpha : {0.0, 0.5, 1.0, 2.0}) {
      for (double beta : {-2.0, -0.5, 0.0, 0.5}) {
        mapping::CompileOptions copts;
        copts.strategy = mapping::Strategy::Optimized;
        copts.optimizer.alpha = alpha;
        copts.optimizer.beta = beta;
        auto compiled = mapping::compile(g, target, copts);
        auto r = sim::simulate(g, target, compiled.program);
        if (!r.verified) throw Error("verification failed");
        t.addRow({workload, Table::num(alpha, 1), Table::num(beta, 1),
                  std::to_string(compiled.clustering.clusters.size()),
                  std::to_string(compiled.clustering.crossClusterEdges),
                  std::to_string(compiled.program.instructions.size()),
                  Table::num(r.latencyUs(), 2)});
      }
    }
    t.addSeparator();
  }
  t.print(std::cout);
  return 0;
}
