// Extension beyond the paper's two evaluated technologies: a Table-1-style
// survey of the modeled NVM technologies (ReRAM, STT-MRAM, and PCM) —
// array-level latency/energy/area from the NVSim-stand-in model, the
// sensing reliability at the usual activation counts, and the optimized
// mapping's end-to-end results per technology on each workload (run
// concurrently through the sweep harness).
#include <iostream>

#include "bench/sweep.h"
#include "device/reliability.h"
#include "support/table.h"

using namespace sherlock;
using namespace sherlock::bench;

int main() {
  const device::Technology techs[] = {device::Technology::ReRam,
                                      device::Technology::SttMram,
                                      device::Technology::Pcm};

  Table dev("Technology survey — array-level characteristics (512x512)");
  dev.setHeader({"Tech", "HRS/LRS", "read (ns)", "write (ns)",
                 "read (pJ/cell)", "write (pJ/cell)", "cell area (F^2)",
                 "slice area (mm^2)", "P_DF AND@2", "P_DF XOR@2"});
  for (auto tech : techs) {
    auto p = device::TechnologyParams::forTechnology(tech);
    arraymodel::ArrayCostModel m(arraymodel::ArrayGeometry::square(512), p);
    dev.addRow(
        {p.name, Table::num(p.resistanceRatio(), 1),
         Table::num(m.readLatencyNs(), 2),
         Table::num(m.writeCompletionNs(), 1),
         Table::num(p.readEnergyPj, 2), Table::num(p.writeEnergyPj, 2),
         Table::num(p.cellAreaF2, 0),
         Table::num(m.cellAreaMm2() + m.peripheryAreaMm2(), 4),
         Table::sci(device::decisionFailureProbability(
                        p, device::SenseKind::And, 2),
                    1),
         Table::sci(device::decisionFailureProbability(
                        p, device::SenseKind::Xor, 2),
                    1)});
  }
  dev.print(std::cout);
  std::cout << '\n';

  std::vector<SweepJob> jobs;
  for (const char* workload : kWorkloads)
    for (auto tech : techs) {
      RunConfig cfg;
      cfg.tech = tech;
      cfg.arrayDim = 512;
      cfg.strategy = mapping::Strategy::Optimized;
      jobs.push_back({workload, cfg});
    }
  // The survey intentionally reports unverified configurations too, so
  // runSweep must not abort on them.
  std::vector<RunResult> results = runSweep(jobs, /*requireVerified=*/false);

  Table app("Optimized mapping per technology (512x512, MRA = 2)");
  app.setHeader({"Benchmark", "Tech", "latency (us)", "energy (uJ)",
                 "P_app", "verified"});
  size_t idx = 0;
  for (const char* workload : kWorkloads) {
    for (auto tech : techs) {
      const RunResult& r = results[idx++];
      app.addRow({workload, technologyName(tech),
                  Table::num(r.sim.latencyUs(), 2),
                  Table::num(r.sim.energyUj(), 2),
                  Table::sci(r.sim.pApp, 2),
                  r.sim.verified ? "yes" : "NO"});
    }
    app.addSeparator();
  }
  app.print(std::cout);

  std::cout << "\nExpected shape: PCM sits between ReRAM and STT-MRAM on "
               "reliability knobs (wide gap but high variability), has the "
               "slowest and most expensive writes, and the densest cells "
               "after crossbar ReRAM.\n";
  return 0;
}
