// Monte-Carlo validation of the analytic reliability model: runs the
// Bitweaving kernel with fault injection (every scouting column-op flips
// each bulk lane with its decision-failure probability) and compares the
// observed end-to-end output corruption rate against the analytic
// P_app = 1 - prod(1 - P_DF_i).
//
// The analytic P_app is a union bound over *operation* failures; injected
// faults can be logically masked downstream (a flipped operand ANDed with
// zero leaves no trace), so the observed rate is expected at or below the
// analytic value while staying the same order of magnitude.
//
// Seeding contract: trial `run` of config `c` uses
//   faultSeed = deriveSeed(kBaseSeed, c * kRuns + run)
// — a pure function of the trial index via splitmix64, never a shared RNG
// stream. Trials are therefore statistically independent AND the results
// are bit-identical under any execution order; the (config x trial) grid
// is flattened into one parallelMap over the shared thread pool.
#include <bit>
#include <iostream>

#include "bench/common.h"
#include "support/parallel.h"
#include "support/table.h"

using namespace sherlock;
using namespace sherlock::bench;

namespace {

struct Config {
  const char* name;
  device::Technology tech;
  bool lowered;
  int mra;
};

struct Prepared {
  ir::Graph graph;
  isa::TargetSpec target;
  mapping::Program program;
  double analyticPApp = 0;
};

struct TrialResult {
  int corrupted = 0;
  long injected = 0;
};

}  // namespace

int main() {
  constexpr int kRuns = 80;  // x64 lanes = 5120 Monte-Carlo samples
  constexpr uint64_t kBaseSeed = 0x5ee'd10c'2024ULL;

  const std::vector<Config> configs = {
      {"STT-MRAM native ops, mra2", device::Technology::SttMram, false, 2},
      {"STT-MRAM NAND-lowered, mra2", device::Technology::SttMram, true, 2},
      {"STT-MRAM NAND-lowered, mra4", device::Technology::SttMram, true, 4},
      {"ReRAM native ops, mra4", device::Technology::ReRam, false, 4}};

  // Phase 1: compile each configuration (and its fault-free analytic
  // run) concurrently.
  std::vector<Prepared> prepared =
      parallelMap(configs, [](const Config& c) {
        ir::Graph base = makeWorkload("Bitweaving");
        ir::Graph working =
            c.lowered
                ? transforms::canonicalize(transforms::lowerToNand(base))
                : std::move(base);
        if (c.mra > 2) {
          transforms::SubstitutionOptions sopt;
          sopt.maxOperands = c.mra;
          working = transforms::substituteNodes(working, sopt).graph;
        }
        isa::TargetSpec target = isa::TargetSpec::square(
            512, device::TechnologyParams::forTechnology(c.tech), c.mra);
        auto compiled = mapping::compile(working, target);
        Prepared p{std::move(working), target,
                   std::move(compiled.program), 0.0};
        p.analyticPApp = sim::simulate(p.graph, p.target, p.program).pApp;
        return p;
      });

  // Phase 2: one flat trial grid — configs x kRuns jobs, each with its
  // counter-derived fault seed.
  std::vector<size_t> trials(configs.size() * kRuns);
  for (size_t i = 0; i < trials.size(); ++i) trials[i] = i;
  std::vector<TrialResult> outcomes =
      parallelMap(trials, [&](size_t trial) {
        const Prepared& p = prepared[trial / kRuns];
        sim::SimOptions opts;
        opts.injectFaults = true;
        opts.faultSeed = deriveSeed(kBaseSeed, trial);
        // The program was already statically verified by the fault-free
        // analytic run; skip re-verifying it on every trial.
        opts.staticVerify = false;
        auto r = sim::simulate(p.graph, p.target, p.program, opts);
        return TrialResult{std::popcount(r.corruptedOutputLanes),
                           r.injectedFaults};
      });

  Table t("Reliability model vs Monte-Carlo fault injection (Bitweaving)");
  t.setHeader({"config", "analytic P_app", "observed corruption",
               "avg injected faults/run", "MC samples"});
  for (size_t c = 0; c < configs.size(); ++c) {
    long corrupted = 0, injected = 0;
    for (int run = 0; run < kRuns; ++run) {
      const TrialResult& tr = outcomes[c * kRuns + static_cast<size_t>(run)];
      corrupted += tr.corrupted;
      injected += tr.injected;
    }
    double observed = static_cast<double>(corrupted) / (64.0 * kRuns);
    t.addRow({configs[c].name, Table::sci(prepared[c].analyticPApp, 2),
              Table::sci(observed, 2),
              Table::num(static_cast<double>(injected) / kRuns, 2),
              std::to_string(64 * kRuns)});
  }
  t.print(std::cout);

  std::cout << "\nExpected: observed corruption at or below the analytic "
               "P_app (logic masking) but within the same order of "
               "magnitude when P_app is large enough to sample.\n";
  return 0;
}
