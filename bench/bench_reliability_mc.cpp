// Monte-Carlo validation of the analytic reliability model: runs the
// Bitweaving kernel with fault injection (every scouting column-op flips
// each bulk lane with its decision-failure probability) and compares the
// observed end-to-end output corruption rate against the analytic
// P_app = 1 - prod(1 - P_DF_i).
//
// The analytic P_app is a union bound over *operation* failures; injected
// faults can be logically masked downstream (a flipped operand ANDed with
// zero leaves no trace), so the observed rate is expected at or below the
// analytic value while staying the same order of magnitude.
#include <bit>
#include <iostream>

#include "bench/common.h"
#include "support/table.h"

using namespace sherlock;
using namespace sherlock::bench;

int main() {
  constexpr int kRuns = 80;  // x64 lanes = 5120 Monte-Carlo samples

  Table t("Reliability model vs Monte-Carlo fault injection (Bitweaving)");
  t.setHeader({"config", "analytic P_app", "observed corruption",
               "avg injected faults/run", "MC samples"});

  struct Config {
    const char* name;
    device::Technology tech;
    bool lowered;
    int mra;
  };
  for (const Config& c :
       {Config{"STT-MRAM native ops, mra2", device::Technology::SttMram,
               false, 2},
        Config{"STT-MRAM NAND-lowered, mra2", device::Technology::SttMram,
               true, 2},
        Config{"STT-MRAM NAND-lowered, mra4", device::Technology::SttMram,
               true, 4},
        Config{"ReRAM native ops, mra4", device::Technology::ReRam, false,
               4}}) {
    ir::Graph base = makeWorkload("Bitweaving");
    ir::Graph working =
        c.lowered ? transforms::canonicalize(transforms::lowerToNand(base))
                  : std::move(base);
    if (c.mra > 2) {
      transforms::SubstitutionOptions sopt;
      sopt.maxOperands = c.mra;
      working = transforms::substituteNodes(working, sopt).graph;
    }

    isa::TargetSpec target = isa::TargetSpec::square(
        512, device::TechnologyParams::forTechnology(c.tech), c.mra);
    auto compiled = mapping::compile(working, target);

    // Fault-free analytic run.
    auto clean = sim::simulate(working, target, compiled.program);

    long corrupted = 0, injected = 0;
    for (int run = 0; run < kRuns; ++run) {
      sim::SimOptions opts;
      opts.injectFaults = true;
      opts.faultSeed = 1000 + static_cast<uint64_t>(run);
      auto r = sim::simulate(working, target, compiled.program, opts);
      corrupted += std::popcount(r.corruptedOutputLanes);
      injected += r.injectedFaults;
    }
    double observed =
        static_cast<double>(corrupted) / (64.0 * kRuns);
    t.addRow({c.name, Table::sci(clean.pApp, 2), Table::sci(observed, 2),
              Table::num(static_cast<double>(injected) / kRuns, 2),
              std::to_string(64 * kRuns)});
  }
  t.print(std::cout);

  std::cout << "\nExpected: observed corruption at or below the analytic "
               "P_app (logic masking) but within the same order of "
               "magnitude when P_app is large enough to sample.\n";
  return 0;
}
