// Monte-Carlo validation of the analytic reliability model: runs the
// Bitweaving kernel with fault injection (every scouting column-op flips
// each bulk lane with its decision-failure probability) and compares the
// observed end-to-end output corruption rate against the analytic
// P_app = 1 - prod(1 - P_DF_i).
//
// The analytic P_app is a union bound over *operation* failures; injected
// faults can be logically masked downstream (a flipped operand ANDed with
// zero leaves no trace), so the observed rate is expected at or below the
// analytic value while staying the same order of magnitude.
//
// Sampling layout: each trial simulates 64 * kLaneWords lockstep bulk
// lanes in one packed run, so kRuns trials yield the same Monte-Carlo
// sample count as the old one-word harness at 1/kLaneWords of the
// simulations (amortizing instruction dispatch, and injection draws scale
// with flips, not lanes — see support/rng.h sampleBernoulliBits).
//
// Seeding contract: trial `run` of config `c` uses
//   faultSeed = deriveSeed(kBaseSeed, c * kRuns + run)
// — a pure function of the trial index via splitmix64, never a shared RNG
// stream. Trials are therefore statistically independent AND the results
// are bit-identical under any execution order; the (config x trial) grid
// is flattened into one parallelMap over the shared thread pool.
//
// `--json <path>` additionally writes a machine-readable artifact with
// the per-config rates and the wall-clock of the Monte-Carlo phase.
#include <chrono>
#include <fstream>
#include <iostream>

#include "bench/common.h"
#include "bench/json.h"
#include "support/parallel.h"
#include "support/table.h"

using namespace sherlock;
using namespace sherlock::bench;

namespace {

struct Config {
  const char* name;
  device::Technology tech;
  bool lowered;
  int mra;
};

struct Prepared {
  ir::Graph graph;
  isa::TargetSpec target;
  mapping::Program program;
  double analyticPApp = 0;
};

struct TrialResult {
  int corrupted = 0;
  long injected = 0;
};

}  // namespace

int main(int argc, char** argv) {
  std::string jsonPath;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--json" && i + 1 < argc)
      jsonPath = argv[++i];
  }

  constexpr int kLaneWords = 40;  // 2560 lanes per packed trial
  constexpr int kRuns = 2;        // x2560 lanes = 5120 Monte-Carlo samples
  constexpr int kSamplesPerTrial = 64 * kLaneWords;
  constexpr uint64_t kBaseSeed = 0x5ee'd10c'2024ULL;

  const std::vector<Config> configs = {
      {"STT-MRAM native ops, mra2", device::Technology::SttMram, false, 2},
      {"STT-MRAM NAND-lowered, mra2", device::Technology::SttMram, true, 2},
      {"STT-MRAM NAND-lowered, mra4", device::Technology::SttMram, true, 4},
      {"ReRAM native ops, mra4", device::Technology::ReRam, false, 4}};

  // Phase 1: compile each configuration (and its fault-free analytic
  // run) concurrently.
  std::vector<Prepared> prepared =
      parallelMap(configs, [](const Config& c) {
        ir::Graph base = makeWorkload("Bitweaving");
        ir::Graph working =
            c.lowered
                ? transforms::canonicalize(transforms::lowerToNand(base))
                : std::move(base);
        if (c.mra > 2) {
          transforms::SubstitutionOptions sopt;
          sopt.maxOperands = c.mra;
          working = transforms::substituteNodes(working, sopt).graph;
        }
        isa::TargetSpec target = isa::TargetSpec::square(
            512, device::TechnologyParams::forTechnology(c.tech), c.mra);
        auto compiled = mapping::compile(working, target);
        Prepared p{std::move(working), target,
                   std::move(compiled.program), 0.0};
        p.analyticPApp = sim::simulate(p.graph, p.target, p.program).pApp;
        return p;
      });

  // Phase 2: one flat trial grid — configs x kRuns jobs, each with its
  // counter-derived fault seed. Timed as the benchmark's figure of merit.
  std::vector<size_t> trials(configs.size() * kRuns);
  for (size_t i = 0; i < trials.size(); ++i) trials[i] = i;
  auto mcStart = std::chrono::steady_clock::now();
  std::vector<TrialResult> outcomes =
      parallelMap(trials, [&](size_t trial) {
        const Prepared& p = prepared[trial / kRuns];
        sim::SimOptions opts;
        opts.laneWords = kLaneWords;
        opts.injectFaults = true;
        opts.faultSeed = deriveSeed(kBaseSeed, trial);
        // The program was already statically verified by the fault-free
        // analytic run; skip re-verifying it on every trial.
        opts.staticVerify = false;
        auto r = sim::simulate(p.graph, p.target, p.program, opts);
        return TrialResult{static_cast<int>(r.corruptedLanes()),
                           r.injectedFaults};
      });
  double mcSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    mcStart)
          .count();

  Table t("Reliability model vs Monte-Carlo fault injection (Bitweaving)");
  t.setHeader({"config", "analytic P_app", "observed corruption",
               "avg injected faults/run", "MC samples"});
  Json rows = Json::array();
  for (size_t c = 0; c < configs.size(); ++c) {
    long corrupted = 0, injected = 0;
    for (int run = 0; run < kRuns; ++run) {
      const TrialResult& tr = outcomes[c * kRuns + static_cast<size_t>(run)];
      corrupted += tr.corrupted;
      injected += tr.injected;
    }
    double observed = static_cast<double>(corrupted) /
                      (static_cast<double>(kSamplesPerTrial) * kRuns);
    t.addRow({configs[c].name, Table::sci(prepared[c].analyticPApp, 2),
              Table::sci(observed, 2),
              Table::num(static_cast<double>(injected) / kRuns, 2),
              std::to_string(kSamplesPerTrial * kRuns)});
    rows.push(Json::object()
                  .set("config", configs[c].name)
                  .set("analytic_p_app", prepared[c].analyticPApp)
                  .set("observed_corruption", observed)
                  .set("corrupted_lanes", corrupted)
                  .set("injected_faults_per_run",
                       static_cast<double>(injected) / kRuns)
                  .set("mc_samples", kSamplesPerTrial * kRuns));
  }
  t.print(std::cout);

  std::cout << "\nMonte-Carlo phase: " << mcSeconds << " s for "
            << trials.size() << " packed trials ("
            << kSamplesPerTrial * kRuns << " samples per config, "
            << kLaneWords << " lane words)\n";
  std::cout << "\nExpected: observed corruption at or below the analytic "
               "P_app (logic masking) but within the same order of "
               "magnitude when P_app is large enough to sample.\n";

  if (!jsonPath.empty()) {
    Json doc = Json::object()
                   .set("schema_version", kBenchSchemaVersion)
                   .set("bench", "bench_reliability_mc")
                   .set("workload", "Bitweaving")
                   .set("lane_words", kLaneWords)
                   .set("runs_per_config", kRuns)
                   .set("mc_samples_per_config", kSamplesPerTrial * kRuns)
                   .set("mc_wall_seconds", mcSeconds)
                   .set("configs", std::move(rows));
    std::ofstream out(jsonPath);
    out << doc.dump();
    std::cout << "\nWrote JSON to " << jsonPath << "\n";
  }
  return 0;
}
