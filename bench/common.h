// Shared helpers for the benchmark harnesses: canonical workload
// instances, target construction, and a one-call pipeline runner that
// compiles and simulates a configuration and returns everything the
// tables need.
//
// Concurrency contract: runPipeline is a pure function of (graph,
// config) — it never mutates the input graph or any global state, and
// all stochastic behavior inside the pipeline is seeded from the config.
// Multiple runPipeline calls may therefore execute concurrently on a
// shared const graph; bench/sweep.h builds the parallel sweep harness on
// exactly this guarantee.
#pragma once

#include <optional>
#include <string>

#include "cpu/cpu_model.h"
#include "device/faultmap.h"
#include "ir/analysis.h"
#include "mapping/compiler.h"
#include "sim/simulator.h"
#include "transforms/nand_lowering.h"
#include "transforms/passes.h"
#include "transforms/substitution.h"
#include "workloads/aes.h"
#include "workloads/bitweaving.h"
#include "workloads/sobel.h"

namespace sherlock::bench {

/// The evaluation instances (Sec. 4): a 32-segment BETWEEN scan, a
/// 16-window Sobel strip, and full AES-128.
inline ir::Graph makeWorkload(const std::string& name) {
  if (name == "Bitweaving") {
    workloads::BitweavingSpec s;
    s.bits = 16;
    s.segments = 32;
    return transforms::canonicalize(workloads::buildBitweaving(s));
  }
  if (name == "Sobel") {
    workloads::SobelSpec s;
    s.width = 16;
    return transforms::canonicalize(workloads::buildSobel(s));
  }
  if (name == "AES") {
    return transforms::canonicalize(workloads::buildAes({10}));
  }
  throw Error(strCat("unknown workload ", name));
}

inline const char* kWorkloads[] = {"Bitweaving", "Sobel", "AES"};

struct RunConfig {
  device::Technology tech = device::Technology::ReRam;
  int arrayDim = 1024;
  mapping::Strategy strategy = mapping::Strategy::Optimized;
  /// Maximum operands per op; > 2 applies the Sec. 3.3.3 node
  /// substitution before mapping.
  int mra = 2;
  /// Fraction of merge opportunities when mra > 2 (Fig. 6 knob).
  double mraFraction = 1.0;
  /// Lower XOR/OR to NAND form first (STT-MRAM reliable flow, Fig. 6b).
  bool nandLowered = false;

  /// Fault tolerance (bench_fault_tolerance): a positive stuck density
  /// generates a persistent fault map (seeded by faultSeed) that
  /// placement avoids and the simulator honors; spareRows reserves the
  /// repair region; guarded turns on Monte-Carlo injection with
  /// detect-and-retry execution. Defaults keep every other bench on the
  /// perfect-array path.
  double faultStuckDensity = 0.0;
  double faultWeakDensity = 0.0;
  uint64_t faultSeed = 1;
  int spareRows = 0;
  /// Monte-Carlo decision-failure injection (without guarding: the
  /// unprotected baseline the yield table contrasts against).
  bool injectFaults = false;
  bool guarded = false;

  /// Packed lane words per cell (64 * laneWords bulk lanes per run);
  /// Monte-Carlo harnesses trade trial count against this at equal
  /// sample count.
  int laneWords = 1;

  /// Multi-array mesh (bench_multi_array): R x C arrays of arrayDim^2
  /// cells each, cross-array movement priced at the Manhattan hop
  /// distance. Unconfigured = the flat single-bus target.
  arraymodel::GridConfig grid{};
  /// Columns the optimizer may occupy per array (0 = all).
  int maxColumnsPerArray = 0;
};

struct RunResult {
  sim::SimResult sim;
  mapping::CodegenStats stats;
  size_t instructionCount = 0;
  size_t opCount = 0;
  transforms::SubstitutionStats substitution;
  /// Cluster-to-array sharding (optimized strategy; singleArray=true
  /// whenever the kernel fit one array).
  mapping::PartitionResult partition;
};

/// Bulk width of the evaluated workloads (bits of every logical operand).
/// This is a property of the data, so it stays constant across array
/// sizes: a smaller array simply needs more lockstepped slices.
inline constexpr int kBulkBits = 4096;

inline RunResult runPipeline(const ir::Graph& canonical,
                             const RunConfig& cfg) {
  isa::TargetSpec target = isa::TargetSpec::square(
      cfg.arrayDim, device::TechnologyParams::forTechnology(cfg.tech),
      cfg.mra);
  target.geometry.dataWidthBits = kBulkBits;
  if (cfg.grid.configured()) target = target.withGrid(cfg.grid);

  ir::Graph working = cfg.nandLowered
                          ? transforms::canonicalize(
                                transforms::lowerToNand(canonical))
                          : ir::Graph{};
  const ir::Graph* base = cfg.nandLowered ? &working : &canonical;

  RunResult out;
  ir::Graph merged;
  const ir::Graph* final = base;
  if (cfg.mra > 2) {
    transforms::SubstitutionOptions sopt;
    sopt.maxOperands = cfg.mra;
    sopt.fraction = cfg.mraFraction;
    sopt.order = cfg.strategy == mapping::Strategy::Optimized
                     ? transforms::MergeOrder::ByAffinity
                     : transforms::MergeOrder::ByPriority;
    auto sub = transforms::substituteNodes(*base, sopt);
    merged = std::move(sub.graph);
    out.substitution = sub.stats;
    final = &merged;
  }

  std::optional<device::FaultMap> faultMap;
  if (cfg.faultStuckDensity > 0.0 || cfg.faultWeakDensity > 0.0) {
    device::FaultMapOptions fo;
    fo.seed = cfg.faultSeed;
    fo.stuckDensity = cfg.faultStuckDensity;
    fo.weakDensity = cfg.faultWeakDensity;
    faultMap = device::FaultMap::generate(target.numArrays, target.rows(),
                                          target.cols(), fo);
  }

  mapping::CompileOptions copts;
  copts.strategy = cfg.strategy;
  copts.faults.map = faultMap ? &*faultMap : nullptr;
  copts.faults.spareRows = cfg.spareRows;
  copts.optimizer.maxColumnsPerArray = cfg.maxColumnsPerArray;
  auto compiled = mapping::compile(*final, target, copts);
  sim::SimOptions sopts;
  sopts.laneWords = cfg.laneWords;
  sopts.faultMap = copts.faults.map;
  sopts.guardedExecution = cfg.guarded;
  sopts.injectFaults = cfg.injectFaults || cfg.guarded;
  sopts.faultSeed = cfg.faultSeed;
  out.sim = sim::simulate(*final, target, compiled.program, sopts);
  out.stats = compiled.program.stats;
  out.instructionCount = compiled.program.instructions.size();
  out.opCount = final->opCount();
  out.partition = compiled.partition;
  return out;
}

}  // namespace sherlock::bench
