// Reproduces paper Table 2: energy consumption and latency across memory
// sizes (1024, 512), technologies (ReRAM, STT-MRAM), mapping algorithms
// (naive, opt) and multi-row-activation configurations (MRA = 2 vs >= 2).
//
// The paper's absolute numbers come from SPICE + NVSim + gem5 on the
// authors' configurations; this harness reproduces the SHAPE of the table
// on our analytic models (opt beats naive; MRA >= 2 helps the naive flow
// ~1.3x; smaller arrays are slower; the write-heavy AES kernel is
// technology-sensitive while the scan kernels are less so).
//
// All 48 configurations are compiled and simulated concurrently through
// the sweep harness; the job list is built in table order, so the output
// is identical for any SHERLOCK_THREADS value.
#include <fstream>
#include <iostream>
#include <map>

#include "bench/json.h"
#include "bench/sweep.h"
#include "support/stats.h"
#include "support/table.h"

using namespace sherlock;
using namespace sherlock::bench;

namespace {

struct Key {
  device::Technology tech;
  std::string workload;
  mapping::Strategy strategy;
  int dim;
  int mra;
  auto operator<=>(const Key&) const = default;
};

}  // namespace

int main(int argc, char** argv) {
  std::string jsonPath;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) jsonPath = argv[++i];
  }
  // Enumerate every configuration once, in deterministic order.
  std::vector<SweepJob> jobs;
  std::vector<Key> keys;
  for (auto tech : {device::Technology::ReRam, device::Technology::SttMram})
    for (const char* workload : kWorkloads)
      for (auto strategy :
           {mapping::Strategy::Naive, mapping::Strategy::Optimized})
        for (int dim : {1024, 512})
          for (int mra : {2, 4}) {
            RunConfig cfg;
            cfg.tech = tech;
            cfg.arrayDim = dim;
            cfg.strategy = strategy;
            cfg.mra = mra;
            jobs.push_back({workload, cfg});
            keys.push_back(Key{tech, workload, strategy, dim, mra});
          }

  std::vector<RunResult> swept = runSweep(jobs);
  std::map<Key, RunResult> results;
  for (size_t i = 0; i < keys.size(); ++i)
    results.emplace(keys[i], std::move(swept[i]));

  Table table(
      "Table 2 — latency and energy across sizes, technologies, mappings");
  table.setHeader({"Tech", "Benchmark", "metric", "naive 1024 mra2",
                   "naive 1024 mra>2", "naive 512 mra2", "naive 512 mra>2",
                   "opt 1024 mra2", "opt 1024 mra>2", "opt 512 mra2",
                   "opt 512 mra>2"});
  for (auto tech : {device::Technology::ReRam, device::Technology::SttMram})
    for (const char* workload : kWorkloads) {
      std::vector<std::string> latRow{technologyName(tech), workload,
                                      "Latency (us)"};
      std::vector<std::string> enRow{"", "", "Energy (uJ)"};
      for (auto strategy :
           {mapping::Strategy::Naive, mapping::Strategy::Optimized})
        for (int dim : {1024, 512})
          for (int mra : {2, 4}) {
            const RunResult& r =
                results.at(Key{tech, workload, strategy, dim, mra});
            latRow.push_back(Table::num(r.sim.latencyUs(), 2));
            enRow.push_back(Table::num(r.sim.energyUj(), 2));
          }
      table.addRow(latRow);
      table.addRow(enRow);
      if (workload != std::string(kWorkloads[2])) continue;
      table.addSeparator();
    }
  table.print(std::cout);

  Table summary("Table 2 summary — opt vs naive gains (at MRA = 2)");
  summary.setHeader({"Tech", "Benchmark", "latency gain 1024",
                     "latency gain 512", "energy gain 1024",
                     "energy gain 512", "naive mra>2 speedup"});
  // Per-column gain ratios for the geomean rows. geomeanSafe floors
  // degenerate (zero) ratios instead of throwing, so one pathological
  // configuration cannot abort the whole table.
  std::vector<std::vector<double>> gains(5);
  for (auto tech : {device::Technology::ReRam, device::Technology::SttMram})
    for (const char* workload : kWorkloads) {
      auto lat = [&](mapping::Strategy s, int dim, int mra) {
        return results.at(Key{tech, workload, s, dim, mra}).sim.latencyUs();
      };
      auto en = [&](mapping::Strategy s, int dim, int mra) {
        return results.at(Key{tech, workload, s, dim, mra}).sim.energyUj();
      };
      using enum mapping::Strategy;
      const double cols[5] = {
          lat(Naive, 1024, 2) / lat(Optimized, 1024, 2),
          lat(Naive, 512, 2) / lat(Optimized, 512, 2),
          en(Naive, 1024, 2) / en(Optimized, 1024, 2),
          en(Naive, 512, 2) / en(Optimized, 512, 2),
          lat(Naive, 1024, 2) / lat(Naive, 1024, 4)};
      for (int i = 0; i < 5; ++i) gains[i].push_back(cols[i]);
      summary.addRow({technologyName(tech), workload, Table::num(cols[0], 2),
                      Table::num(cols[1], 2), Table::num(cols[2], 2),
                      Table::num(cols[3], 2), Table::num(cols[4], 2)});
    }
  summary.addSeparator();
  summary.addRow({"geomean", "(all)", Table::num(geomeanSafe(gains[0]), 2),
                  Table::num(geomeanSafe(gains[1]), 2),
                  Table::num(geomeanSafe(gains[2]), 2),
                  Table::num(geomeanSafe(gains[3]), 2),
                  Table::num(geomeanSafe(gains[4]), 2)});
  summary.print(std::cout);

  if (!jsonPath.empty()) {
    // One config per table cell; the analytic latency/energy values are
    // deterministic, so compare_bench.py gates them against the
    // checked-in BENCH_table2.json baseline.
    Json configs = Json::array();
    for (size_t i = 0; i < keys.size(); ++i) {
      const Key& k = keys[i];
      const RunResult& r = results.at(k);
      Json c = Json::object();
      c.set("workload", k.workload)
          .set("tech", technologyName(k.tech))
          .set("array_dim", k.dim)
          .set("strategy",
               k.strategy == mapping::Strategy::Naive ? "naive" : "opt")
          .set("mra", k.mra)
          .set("latency_ns", r.sim.latencyNs)
          .set("energy_pj", r.sim.energyPj);
      configs.push(std::move(c));
    }
    Json root = Json::object();
    root.set("schema_version", kBenchSchemaVersion)
        .set("pr", 8)
        .set("title", "Table 2 reproduction")
        .set("benchmark",
             "bench_table2: latency/energy across technologies, sizes, "
             "mappings, MRA")
        .set("metric",
             "analytic latency_ns and energy_pj per (workload, tech, "
             "array_dim, strategy, mra) config (deterministic)")
        .set("configs", std::move(configs));
    std::ofstream out(jsonPath);
    out << root.dump();
    std::cout << "\nWrote JSON to " << jsonPath << "\n";
  }
  return 0;
}
