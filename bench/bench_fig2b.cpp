// Reproduces paper Fig. 2(b): exacerbation of decision failure as more
// rows are activated during a scouting read. The paper plots the
// STT-MRAM resistance distributions for 2 vs 4 activated rows; we print
// the resulting decision-failure probability P_DF per sensing class and
// technology as the activated-row count grows. Each technology's row
// group is computed concurrently (the shared-pool no-op case when
// SHERLOCK_THREADS=1).
#include <iostream>
#include <vector>

#include "device/reliability.h"
#include "device/technology.h"
#include "support/parallel.h"
#include "support/table.h"

using namespace sherlock;
using namespace sherlock::device;

int main() {
  const std::vector<Technology> techs = {Technology::SttMram,
                                         Technology::ReRam, Technology::Pcm};

  auto groups = parallelMap(techs, [](Technology tech) {
    TechnologyParams p = TechnologyParams::forTechnology(tech);
    std::vector<std::vector<std::string>> rows;
    for (auto [kind, name] :
         {std::pair{SenseKind::And, "AND/NAND"},
          std::pair{SenseKind::Or, "OR/NOR"},
          std::pair{SenseKind::Xor, "XOR/XNOR"}}) {
      std::vector<std::string> row{p.name, name};
      for (int r = 2; r <= p.maxActivatedRows; ++r)
        row.push_back(Table::sci(decisionFailureProbability(p, kind, r), 2));
      rows.push_back(std::move(row));
    }
    rows.push_back(
        {p.name, "plain read",
         Table::sci(decisionFailureProbability(p, SenseKind::PlainRead, 1),
                    2)});
    return rows;
  });

  Table t("Fig. 2(b) — decision-failure probability vs activated rows");
  t.setHeader({"Tech", "sense op", "r=2", "r=3", "r=4", "r=5", "r=6",
               "r=7", "r=8"});
  for (const auto& rows : groups) {
    for (const auto& row : rows) t.addRow(row);
    t.addSeparator();
  }
  t.print(std::cout);

  std::cout << "\nExpected shape: P_DF grows with activated rows; "
               "XOR > OR > AND at equal rows; STT-MRAM (TMR 150%) is orders "
               "of magnitude less reliable than ReRAM/PCM, motivating the "
               "NAND-based lowering of Fig. 6(b).\n";
  return 0;
}
