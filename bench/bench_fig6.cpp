// Reproduces paper Fig. 6: reliability of the Bitweaving kernel as the
// allowed share of multi-row activations (> 2 operands) grows — the
// latency / P_app trade-off curve, for
//   (a) ReRAM with native scouting ops, and
//   (b) STT-MRAM with the NAND-based implementation of XOR and OR.
// Each series sweeps the node-substitution budget (the fraction of merge
// opportunities applied); the annotation column is the resulting share of
// operations with more than two operands, as annotated on the paper's
// data points. The naive flow picks merges statically (near-linear
// curve); the optimized flow's choices interact with mapping and
// instruction merging (irregular curve, better P_app at equal latency).
//
// Both figures' 20 configurations run concurrently through one sweep.
#include <iostream>

#include "bench/sweep.h"
#include "support/table.h"

using namespace sherlock;
using namespace sherlock::bench;

int main() {
  const std::tuple<device::Technology, bool, const char*> figures[] = {
      {device::Technology::ReRam, false,
       "Fig. 6(a) — ReRAM, native scouting ops"},
      {device::Technology::SttMram, true,
       "Fig. 6(b) — STT-MRAM, NAND-based XOR/OR"}};
  const double fractions[] = {0.0, 0.25, 0.5, 0.75, 1.0};

  std::vector<SweepJob> jobs;
  for (auto [tech, lowered, title] : figures)
    for (auto strategy :
         {mapping::Strategy::Naive, mapping::Strategy::Optimized})
      for (double fraction : fractions) {
        RunConfig cfg;
        cfg.tech = tech;
        cfg.arrayDim = 512;
        cfg.strategy = strategy;
        cfg.mra = fraction == 0.0 ? 2 : 4;
        cfg.mraFraction = fraction;
        cfg.nandLowered = lowered;
        jobs.push_back({"Bitweaving", cfg});
      }
  std::vector<RunResult> results = runSweep(jobs);

  size_t idx = 0;
  for (auto [tech, lowered, title] : figures) {
    Table t(title);
    t.setHeader({"mapping", "merge budget", "MRA>2 ops", "latency (us)",
                 "P_app", "CIM ops"});
    for (auto strategy :
         {mapping::Strategy::Naive, mapping::Strategy::Optimized}) {
      for (double fraction : fractions) {
        const RunResult& r = results[idx++];
        t.addRow({strategy == mapping::Strategy::Naive ? "naive" : "opt",
                  Table::num(100 * fraction, 0) + "%",
                  Table::num(100 * r.substitution.wideFraction(), 1) + "%",
                  Table::num(r.sim.latencyUs(), 2),
                  Table::sci(r.sim.pApp, 2),
                  std::to_string(r.sim.cimColumnOps)});
      }
      t.addSeparator();
    }
    t.print(std::cout);
    std::cout << '\n';
  }

  std::cout << "Expected shape: latency falls and P_app rises with the MRA "
               "budget; ReRAM stays highly reliable (P_app well below "
               "1e-4-ish) while STT-MRAM, even NAND-lowered, trades "
               "noticeably more reliability; the optimized mapping reaches "
               "lower latency at comparable P_app.\n";
  return 0;
}
