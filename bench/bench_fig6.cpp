// Reproduces paper Fig. 6: reliability of the Bitweaving kernel as the
// allowed share of multi-row activations (> 2 operands) grows — the
// latency / P_app trade-off curve, for
//   (a) ReRAM with native scouting ops, and
//   (b) STT-MRAM with the NAND-based implementation of XOR and OR.
// Each series sweeps the node-substitution budget (the fraction of merge
// opportunities applied); the annotation column is the resulting share of
// operations with more than two operands, as annotated on the paper's
// data points. The naive flow picks merges statically (near-linear
// curve); the optimized flow's choices interact with mapping and
// instruction merging (irregular curve, better P_app at equal latency).
#include <iostream>

#include "bench/common.h"
#include "support/table.h"

using namespace sherlock;
using namespace sherlock::bench;

int main() {
  ir::Graph g = makeWorkload("Bitweaving");

  for (auto [tech, lowered, title] :
       {std::tuple{device::Technology::ReRam, false,
                   "Fig. 6(a) — ReRAM, native scouting ops"},
        std::tuple{device::Technology::SttMram, true,
                   "Fig. 6(b) — STT-MRAM, NAND-based XOR/OR"}}) {
    Table t(title);
    t.setHeader({"mapping", "merge budget", "MRA>2 ops", "latency (us)",
                 "P_app", "CIM ops"});
    for (auto strategy :
         {mapping::Strategy::Naive, mapping::Strategy::Optimized}) {
      for (double fraction : {0.0, 0.25, 0.5, 0.75, 1.0}) {
        RunConfig cfg;
        cfg.tech = tech;
        cfg.arrayDim = 512;
        cfg.strategy = strategy;
        cfg.mra = fraction == 0.0 ? 2 : 4;
        cfg.mraFraction = fraction;
        cfg.nandLowered = lowered;
        RunResult r = runPipeline(g, cfg);
        if (!r.sim.verified) throw Error("verification failed");
        t.addRow({strategy == mapping::Strategy::Naive ? "naive" : "opt",
                  Table::num(100 * fraction, 0) + "%",
                  Table::num(100 * r.substitution.wideFraction(), 1) + "%",
                  Table::num(r.sim.latencyUs(), 2),
                  Table::sci(r.sim.pApp, 2),
                  std::to_string(r.sim.cimColumnOps)});
      }
      t.addSeparator();
    }
    t.print(std::cout);
    std::cout << '\n';
  }

  std::cout << "Expected shape: latency falls and P_app rises with the MRA "
               "budget; ReRAM stays highly reliable (P_app well below "
               "1e-4-ish) while STT-MRAM, even NAND-lowered, trades "
               "noticeably more reliability; the optimized mapping reaches "
               "lower latency at comparable P_app.\n";
  return 0;
}
