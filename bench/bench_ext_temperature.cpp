// Extension: operating-temperature sensitivity of the reliability model.
// The paper characterizes its cells at 27 C (Table 1); this bench derates
// the resistance-distribution sigmas with temperature and shows how the
// application failure probability of the Bitweaving kernel responds.
#include <iostream>

#include "bench/common.h"
#include "device/reliability.h"
#include "support/table.h"

using namespace sherlock;
using namespace sherlock::bench;

int main() {
  const double temps[] = {-20.0, 27.0, 85.0, 125.0};

  Table pdf("Decision failure vs temperature (2-row activation)");
  pdf.setHeader({"Tech", "sense op", "-20C", "27C", "85C", "125C"});
  for (auto tech :
       {device::Technology::ReRam, device::Technology::SttMram}) {
    auto nominal = device::TechnologyParams::forTechnology(tech);
    for (auto [kind, name] : {std::pair{device::SenseKind::And, "AND"},
                              std::pair{device::SenseKind::Xor, "XOR"}}) {
      std::vector<std::string> row{nominal.name, name};
      for (double t : temps)
        row.push_back(Table::sci(
            device::decisionFailureProbability(nominal.atTemperature(t),
                                               kind, 2),
            1));
      pdf.addRow(row);
    }
  }
  pdf.print(std::cout);
  std::cout << '\n';

  Table app("Bitweaving P_app vs temperature (512x512, opt mapping)");
  app.setHeader({"Tech", "-20C", "27C", "85C", "125C"});
  ir::Graph g = makeWorkload("Bitweaving");
  for (auto tech :
       {device::Technology::ReRam, device::Technology::SttMram}) {
    auto nominal = device::TechnologyParams::forTechnology(tech);
    std::vector<std::string> row{nominal.name};
    for (double t : temps) {
      isa::TargetSpec target =
          isa::TargetSpec::square(512, nominal.atTemperature(t), 2);
      auto compiled = mapping::compile(g, target);
      auto r = sim::simulate(g, target, compiled.program);
      if (!r.verified) throw Error("verification failed");
      row.push_back(Table::sci(r.pApp, 2));
    }
    app.addRow(row);
  }
  app.print(std::cout);

  std::cout << "\nExpected shape: monotone reliability degradation with "
               "temperature; STT-MRAM crosses into the error-tolerant-only "
               "regime well below automotive-grade 125C.\n";
  return 0;
}
