// Extension: operating-temperature sensitivity of the reliability model.
// The paper characterizes its cells at 27 C (Table 1); this bench derates
// the resistance-distribution sigmas with temperature and shows how the
// application failure probability of the Bitweaving kernel responds.
// The (technology x temperature) compile+simulate grid runs concurrently.
#include <iostream>

#include "bench/common.h"
#include "device/reliability.h"
#include "support/parallel.h"
#include "support/table.h"

using namespace sherlock;
using namespace sherlock::bench;

namespace {

struct Cell {
  device::Technology tech;
  double temperature;
};

}  // namespace

int main() {
  const double temps[] = {-20.0, 27.0, 85.0, 125.0};
  const device::Technology techs[] = {device::Technology::ReRam,
                                      device::Technology::SttMram};

  Table pdf("Decision failure vs temperature (2-row activation)");
  pdf.setHeader({"Tech", "sense op", "-20C", "27C", "85C", "125C"});
  for (auto tech : techs) {
    auto nominal = device::TechnologyParams::forTechnology(tech);
    for (auto [kind, name] : {std::pair{device::SenseKind::And, "AND"},
                              std::pair{device::SenseKind::Xor, "XOR"}}) {
      std::vector<std::string> row{nominal.name, name};
      for (double t : temps)
        row.push_back(Table::sci(
            device::decisionFailureProbability(nominal.atTemperature(t),
                                               kind, 2),
            1));
      pdf.addRow(row);
    }
  }
  pdf.print(std::cout);
  std::cout << '\n';

  std::vector<Cell> grid;
  for (auto tech : techs)
    for (double t : temps) grid.push_back({tech, t});

  ir::Graph g = makeWorkload("Bitweaving");
  auto pApps = parallelMap(grid, [&](const Cell& cell) {
    auto params = device::TechnologyParams::forTechnology(cell.tech)
                      .atTemperature(cell.temperature);
    isa::TargetSpec target = isa::TargetSpec::square(512, params, 2);
    auto compiled = mapping::compile(g, target);
    auto r = sim::simulate(g, target, compiled.program);
    if (!r.verified)
      throw Error(strCat("verification failed: ", params.name, " at ",
                         cell.temperature, "C"));
    return r.pApp;
  });

  Table app("Bitweaving P_app vs temperature (512x512, opt mapping)");
  app.setHeader({"Tech", "-20C", "27C", "85C", "125C"});
  size_t idx = 0;
  for (auto tech : techs) {
    std::vector<std::string> row{
        device::TechnologyParams::forTechnology(tech).name};
    for (size_t t = 0; t < std::size(temps); ++t)
      row.push_back(Table::sci(pApps[idx++], 2));
    app.addRow(row);
  }
  app.print(std::cout);

  std::cout << "\nExpected shape: monotone reliability degradation with "
               "temperature; STT-MRAM crosses into the error-tolerant-only "
               "regime well below automotive-grade 125C.\n";
  return 0;
}
