# Empty dependencies file for codegen_invariants_test.
# This may be replaced when dependencies are built.
