file(REMOVE_RECURSE
  "CMakeFiles/codegen_invariants_test.dir/codegen_invariants_test.cpp.o"
  "CMakeFiles/codegen_invariants_test.dir/codegen_invariants_test.cpp.o.d"
  "codegen_invariants_test"
  "codegen_invariants_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codegen_invariants_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
