
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/bitslice_test.cpp" "tests/CMakeFiles/bitslice_test.dir/bitslice_test.cpp.o" "gcc" "tests/CMakeFiles/bitslice_test.dir/bitslice_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/sherlock_support.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/sherlock_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/transforms/CMakeFiles/sherlock_transforms.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/sherlock_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/sherlock_device.dir/DependInfo.cmake"
  "/root/repo/build/src/arraymodel/CMakeFiles/sherlock_arraymodel.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/sherlock_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/mapping/CMakeFiles/sherlock_mapping.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sherlock_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/sherlock_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/sherlock_workloads.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
