file(REMOVE_RECURSE
  "CMakeFiles/bitslice_test.dir/bitslice_test.cpp.o"
  "CMakeFiles/bitslice_test.dir/bitslice_test.cpp.o.d"
  "bitslice_test"
  "bitslice_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bitslice_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
