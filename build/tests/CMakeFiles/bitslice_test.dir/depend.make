# Empty dependencies file for bitslice_test.
# This may be replaced when dependencies are built.
