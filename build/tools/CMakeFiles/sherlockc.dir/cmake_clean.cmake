file(REMOVE_RECURSE
  "CMakeFiles/sherlockc.dir/sherlockc.cpp.o"
  "CMakeFiles/sherlockc.dir/sherlockc.cpp.o.d"
  "sherlockc"
  "sherlockc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sherlockc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
