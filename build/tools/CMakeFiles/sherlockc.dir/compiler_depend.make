# Empty compiler generated dependencies file for sherlockc.
# This may be replaced when dependencies are built.
