file(REMOVE_RECURSE
  "CMakeFiles/sherlock_arraymodel.dir/array_model.cpp.o"
  "CMakeFiles/sherlock_arraymodel.dir/array_model.cpp.o.d"
  "libsherlock_arraymodel.a"
  "libsherlock_arraymodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sherlock_arraymodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
