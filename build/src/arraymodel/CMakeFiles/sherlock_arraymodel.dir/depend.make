# Empty dependencies file for sherlock_arraymodel.
# This may be replaced when dependencies are built.
