file(REMOVE_RECURSE
  "libsherlock_arraymodel.a"
)
