file(REMOVE_RECURSE
  "libsherlock_frontend.a"
)
