# Empty dependencies file for sherlock_frontend.
# This may be replaced when dependencies are built.
