file(REMOVE_RECURSE
  "CMakeFiles/sherlock_frontend.dir/lexer.cpp.o"
  "CMakeFiles/sherlock_frontend.dir/lexer.cpp.o.d"
  "CMakeFiles/sherlock_frontend.dir/lowering.cpp.o"
  "CMakeFiles/sherlock_frontend.dir/lowering.cpp.o.d"
  "CMakeFiles/sherlock_frontend.dir/parser.cpp.o"
  "CMakeFiles/sherlock_frontend.dir/parser.cpp.o.d"
  "libsherlock_frontend.a"
  "libsherlock_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sherlock_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
