file(REMOVE_RECURSE
  "CMakeFiles/sherlock_workloads.dir/aes.cpp.o"
  "CMakeFiles/sherlock_workloads.dir/aes.cpp.o.d"
  "CMakeFiles/sherlock_workloads.dir/aes_math.cpp.o"
  "CMakeFiles/sherlock_workloads.dir/aes_math.cpp.o.d"
  "CMakeFiles/sherlock_workloads.dir/bitslice_builder.cpp.o"
  "CMakeFiles/sherlock_workloads.dir/bitslice_builder.cpp.o.d"
  "CMakeFiles/sherlock_workloads.dir/bitweaving.cpp.o"
  "CMakeFiles/sherlock_workloads.dir/bitweaving.cpp.o.d"
  "CMakeFiles/sherlock_workloads.dir/random_dag.cpp.o"
  "CMakeFiles/sherlock_workloads.dir/random_dag.cpp.o.d"
  "CMakeFiles/sherlock_workloads.dir/sobel.cpp.o"
  "CMakeFiles/sherlock_workloads.dir/sobel.cpp.o.d"
  "libsherlock_workloads.a"
  "libsherlock_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sherlock_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
