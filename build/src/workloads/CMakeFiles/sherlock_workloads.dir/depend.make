# Empty dependencies file for sherlock_workloads.
# This may be replaced when dependencies are built.
