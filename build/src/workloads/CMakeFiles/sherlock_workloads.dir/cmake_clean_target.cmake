file(REMOVE_RECURSE
  "libsherlock_workloads.a"
)
