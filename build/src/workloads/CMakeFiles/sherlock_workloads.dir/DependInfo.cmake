
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/aes.cpp" "src/workloads/CMakeFiles/sherlock_workloads.dir/aes.cpp.o" "gcc" "src/workloads/CMakeFiles/sherlock_workloads.dir/aes.cpp.o.d"
  "/root/repo/src/workloads/aes_math.cpp" "src/workloads/CMakeFiles/sherlock_workloads.dir/aes_math.cpp.o" "gcc" "src/workloads/CMakeFiles/sherlock_workloads.dir/aes_math.cpp.o.d"
  "/root/repo/src/workloads/bitslice_builder.cpp" "src/workloads/CMakeFiles/sherlock_workloads.dir/bitslice_builder.cpp.o" "gcc" "src/workloads/CMakeFiles/sherlock_workloads.dir/bitslice_builder.cpp.o.d"
  "/root/repo/src/workloads/bitweaving.cpp" "src/workloads/CMakeFiles/sherlock_workloads.dir/bitweaving.cpp.o" "gcc" "src/workloads/CMakeFiles/sherlock_workloads.dir/bitweaving.cpp.o.d"
  "/root/repo/src/workloads/random_dag.cpp" "src/workloads/CMakeFiles/sherlock_workloads.dir/random_dag.cpp.o" "gcc" "src/workloads/CMakeFiles/sherlock_workloads.dir/random_dag.cpp.o.d"
  "/root/repo/src/workloads/sobel.cpp" "src/workloads/CMakeFiles/sherlock_workloads.dir/sobel.cpp.o" "gcc" "src/workloads/CMakeFiles/sherlock_workloads.dir/sobel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/sherlock_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/sherlock_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
