file(REMOVE_RECURSE
  "CMakeFiles/sherlock_cpu.dir/cpu_model.cpp.o"
  "CMakeFiles/sherlock_cpu.dir/cpu_model.cpp.o.d"
  "libsherlock_cpu.a"
  "libsherlock_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sherlock_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
