# Empty dependencies file for sherlock_cpu.
# This may be replaced when dependencies are built.
