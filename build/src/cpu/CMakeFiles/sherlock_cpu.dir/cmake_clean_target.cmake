file(REMOVE_RECURSE
  "libsherlock_cpu.a"
)
