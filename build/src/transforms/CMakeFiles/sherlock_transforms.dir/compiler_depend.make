# Empty compiler generated dependencies file for sherlock_transforms.
# This may be replaced when dependencies are built.
