
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transforms/nand_lowering.cpp" "src/transforms/CMakeFiles/sherlock_transforms.dir/nand_lowering.cpp.o" "gcc" "src/transforms/CMakeFiles/sherlock_transforms.dir/nand_lowering.cpp.o.d"
  "/root/repo/src/transforms/passes.cpp" "src/transforms/CMakeFiles/sherlock_transforms.dir/passes.cpp.o" "gcc" "src/transforms/CMakeFiles/sherlock_transforms.dir/passes.cpp.o.d"
  "/root/repo/src/transforms/rewriter.cpp" "src/transforms/CMakeFiles/sherlock_transforms.dir/rewriter.cpp.o" "gcc" "src/transforms/CMakeFiles/sherlock_transforms.dir/rewriter.cpp.o.d"
  "/root/repo/src/transforms/substitution.cpp" "src/transforms/CMakeFiles/sherlock_transforms.dir/substitution.cpp.o" "gcc" "src/transforms/CMakeFiles/sherlock_transforms.dir/substitution.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/sherlock_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/sherlock_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
