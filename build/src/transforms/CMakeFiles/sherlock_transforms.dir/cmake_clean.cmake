file(REMOVE_RECURSE
  "CMakeFiles/sherlock_transforms.dir/nand_lowering.cpp.o"
  "CMakeFiles/sherlock_transforms.dir/nand_lowering.cpp.o.d"
  "CMakeFiles/sherlock_transforms.dir/passes.cpp.o"
  "CMakeFiles/sherlock_transforms.dir/passes.cpp.o.d"
  "CMakeFiles/sherlock_transforms.dir/rewriter.cpp.o"
  "CMakeFiles/sherlock_transforms.dir/rewriter.cpp.o.d"
  "CMakeFiles/sherlock_transforms.dir/substitution.cpp.o"
  "CMakeFiles/sherlock_transforms.dir/substitution.cpp.o.d"
  "libsherlock_transforms.a"
  "libsherlock_transforms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sherlock_transforms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
