file(REMOVE_RECURSE
  "libsherlock_transforms.a"
)
