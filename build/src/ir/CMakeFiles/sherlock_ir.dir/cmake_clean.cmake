file(REMOVE_RECURSE
  "CMakeFiles/sherlock_ir.dir/analysis.cpp.o"
  "CMakeFiles/sherlock_ir.dir/analysis.cpp.o.d"
  "CMakeFiles/sherlock_ir.dir/dot.cpp.o"
  "CMakeFiles/sherlock_ir.dir/dot.cpp.o.d"
  "CMakeFiles/sherlock_ir.dir/evaluator.cpp.o"
  "CMakeFiles/sherlock_ir.dir/evaluator.cpp.o.d"
  "CMakeFiles/sherlock_ir.dir/graph.cpp.o"
  "CMakeFiles/sherlock_ir.dir/graph.cpp.o.d"
  "CMakeFiles/sherlock_ir.dir/ops.cpp.o"
  "CMakeFiles/sherlock_ir.dir/ops.cpp.o.d"
  "CMakeFiles/sherlock_ir.dir/serialize.cpp.o"
  "CMakeFiles/sherlock_ir.dir/serialize.cpp.o.d"
  "libsherlock_ir.a"
  "libsherlock_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sherlock_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
