file(REMOVE_RECURSE
  "libsherlock_ir.a"
)
