# Empty compiler generated dependencies file for sherlock_ir.
# This may be replaced when dependencies are built.
