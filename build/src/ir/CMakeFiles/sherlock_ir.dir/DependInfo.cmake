
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/analysis.cpp" "src/ir/CMakeFiles/sherlock_ir.dir/analysis.cpp.o" "gcc" "src/ir/CMakeFiles/sherlock_ir.dir/analysis.cpp.o.d"
  "/root/repo/src/ir/dot.cpp" "src/ir/CMakeFiles/sherlock_ir.dir/dot.cpp.o" "gcc" "src/ir/CMakeFiles/sherlock_ir.dir/dot.cpp.o.d"
  "/root/repo/src/ir/evaluator.cpp" "src/ir/CMakeFiles/sherlock_ir.dir/evaluator.cpp.o" "gcc" "src/ir/CMakeFiles/sherlock_ir.dir/evaluator.cpp.o.d"
  "/root/repo/src/ir/graph.cpp" "src/ir/CMakeFiles/sherlock_ir.dir/graph.cpp.o" "gcc" "src/ir/CMakeFiles/sherlock_ir.dir/graph.cpp.o.d"
  "/root/repo/src/ir/ops.cpp" "src/ir/CMakeFiles/sherlock_ir.dir/ops.cpp.o" "gcc" "src/ir/CMakeFiles/sherlock_ir.dir/ops.cpp.o.d"
  "/root/repo/src/ir/serialize.cpp" "src/ir/CMakeFiles/sherlock_ir.dir/serialize.cpp.o" "gcc" "src/ir/CMakeFiles/sherlock_ir.dir/serialize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/sherlock_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
