file(REMOVE_RECURSE
  "libsherlock_sim.a"
)
