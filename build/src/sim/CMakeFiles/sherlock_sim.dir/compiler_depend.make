# Empty compiler generated dependencies file for sherlock_sim.
# This may be replaced when dependencies are built.
