file(REMOVE_RECURSE
  "CMakeFiles/sherlock_sim.dir/simulator.cpp.o"
  "CMakeFiles/sherlock_sim.dir/simulator.cpp.o.d"
  "libsherlock_sim.a"
  "libsherlock_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sherlock_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
