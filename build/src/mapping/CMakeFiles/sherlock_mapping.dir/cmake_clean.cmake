file(REMOVE_RECURSE
  "CMakeFiles/sherlock_mapping.dir/clustering.cpp.o"
  "CMakeFiles/sherlock_mapping.dir/clustering.cpp.o.d"
  "CMakeFiles/sherlock_mapping.dir/codegen.cpp.o"
  "CMakeFiles/sherlock_mapping.dir/codegen.cpp.o.d"
  "CMakeFiles/sherlock_mapping.dir/layout.cpp.o"
  "CMakeFiles/sherlock_mapping.dir/layout.cpp.o.d"
  "CMakeFiles/sherlock_mapping.dir/naive_mapper.cpp.o"
  "CMakeFiles/sherlock_mapping.dir/naive_mapper.cpp.o.d"
  "CMakeFiles/sherlock_mapping.dir/opt_mapper.cpp.o"
  "CMakeFiles/sherlock_mapping.dir/opt_mapper.cpp.o.d"
  "CMakeFiles/sherlock_mapping.dir/program_analysis.cpp.o"
  "CMakeFiles/sherlock_mapping.dir/program_analysis.cpp.o.d"
  "libsherlock_mapping.a"
  "libsherlock_mapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sherlock_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
