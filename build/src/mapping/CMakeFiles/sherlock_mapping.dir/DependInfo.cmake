
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mapping/clustering.cpp" "src/mapping/CMakeFiles/sherlock_mapping.dir/clustering.cpp.o" "gcc" "src/mapping/CMakeFiles/sherlock_mapping.dir/clustering.cpp.o.d"
  "/root/repo/src/mapping/codegen.cpp" "src/mapping/CMakeFiles/sherlock_mapping.dir/codegen.cpp.o" "gcc" "src/mapping/CMakeFiles/sherlock_mapping.dir/codegen.cpp.o.d"
  "/root/repo/src/mapping/layout.cpp" "src/mapping/CMakeFiles/sherlock_mapping.dir/layout.cpp.o" "gcc" "src/mapping/CMakeFiles/sherlock_mapping.dir/layout.cpp.o.d"
  "/root/repo/src/mapping/naive_mapper.cpp" "src/mapping/CMakeFiles/sherlock_mapping.dir/naive_mapper.cpp.o" "gcc" "src/mapping/CMakeFiles/sherlock_mapping.dir/naive_mapper.cpp.o.d"
  "/root/repo/src/mapping/opt_mapper.cpp" "src/mapping/CMakeFiles/sherlock_mapping.dir/opt_mapper.cpp.o" "gcc" "src/mapping/CMakeFiles/sherlock_mapping.dir/opt_mapper.cpp.o.d"
  "/root/repo/src/mapping/program_analysis.cpp" "src/mapping/CMakeFiles/sherlock_mapping.dir/program_analysis.cpp.o" "gcc" "src/mapping/CMakeFiles/sherlock_mapping.dir/program_analysis.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/sherlock_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/sherlock_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/arraymodel/CMakeFiles/sherlock_arraymodel.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/sherlock_device.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/sherlock_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
