# Empty dependencies file for sherlock_mapping.
# This may be replaced when dependencies are built.
