file(REMOVE_RECURSE
  "libsherlock_mapping.a"
)
