
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/device/reliability.cpp" "src/device/CMakeFiles/sherlock_device.dir/reliability.cpp.o" "gcc" "src/device/CMakeFiles/sherlock_device.dir/reliability.cpp.o.d"
  "/root/repo/src/device/technology.cpp" "src/device/CMakeFiles/sherlock_device.dir/technology.cpp.o" "gcc" "src/device/CMakeFiles/sherlock_device.dir/technology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/sherlock_support.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/sherlock_ir.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
