file(REMOVE_RECURSE
  "libsherlock_device.a"
)
