file(REMOVE_RECURSE
  "CMakeFiles/sherlock_device.dir/reliability.cpp.o"
  "CMakeFiles/sherlock_device.dir/reliability.cpp.o.d"
  "CMakeFiles/sherlock_device.dir/technology.cpp.o"
  "CMakeFiles/sherlock_device.dir/technology.cpp.o.d"
  "libsherlock_device.a"
  "libsherlock_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sherlock_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
