# Empty dependencies file for sherlock_device.
# This may be replaced when dependencies are built.
