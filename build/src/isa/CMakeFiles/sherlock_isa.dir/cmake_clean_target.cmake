file(REMOVE_RECURSE
  "libsherlock_isa.a"
)
