# Empty compiler generated dependencies file for sherlock_isa.
# This may be replaced when dependencies are built.
