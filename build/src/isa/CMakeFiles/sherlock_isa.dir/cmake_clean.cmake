file(REMOVE_RECURSE
  "CMakeFiles/sherlock_isa.dir/instruction.cpp.o"
  "CMakeFiles/sherlock_isa.dir/instruction.cpp.o.d"
  "libsherlock_isa.a"
  "libsherlock_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sherlock_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
