file(REMOVE_RECURSE
  "libsherlock_support.a"
)
