# Empty compiler generated dependencies file for sherlock_support.
# This may be replaced when dependencies are built.
