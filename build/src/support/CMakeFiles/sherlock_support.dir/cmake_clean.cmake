file(REMOVE_RECURSE
  "CMakeFiles/sherlock_support.dir/bitvector.cpp.o"
  "CMakeFiles/sherlock_support.dir/bitvector.cpp.o.d"
  "CMakeFiles/sherlock_support.dir/stats.cpp.o"
  "CMakeFiles/sherlock_support.dir/stats.cpp.o.d"
  "CMakeFiles/sherlock_support.dir/table.cpp.o"
  "CMakeFiles/sherlock_support.dir/table.cpp.o.d"
  "libsherlock_support.a"
  "libsherlock_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sherlock_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
