file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_mapper.dir/bench_micro_mapper.cpp.o"
  "CMakeFiles/bench_micro_mapper.dir/bench_micro_mapper.cpp.o.d"
  "bench_micro_mapper"
  "bench_micro_mapper.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_mapper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
