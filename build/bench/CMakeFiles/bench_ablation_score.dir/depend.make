# Empty dependencies file for bench_ablation_score.
# This may be replaced when dependencies are built.
