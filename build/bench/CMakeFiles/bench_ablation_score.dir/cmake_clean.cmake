file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_score.dir/bench_ablation_score.cpp.o"
  "CMakeFiles/bench_ablation_score.dir/bench_ablation_score.cpp.o.d"
  "bench_ablation_score"
  "bench_ablation_score.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_score.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
