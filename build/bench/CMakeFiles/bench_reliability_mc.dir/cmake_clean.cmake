file(REMOVE_RECURSE
  "CMakeFiles/bench_reliability_mc.dir/bench_reliability_mc.cpp.o"
  "CMakeFiles/bench_reliability_mc.dir/bench_reliability_mc.cpp.o.d"
  "bench_reliability_mc"
  "bench_reliability_mc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_reliability_mc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
