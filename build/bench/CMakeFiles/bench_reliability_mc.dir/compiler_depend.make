# Empty compiler generated dependencies file for bench_reliability_mc.
# This may be replaced when dependencies are built.
