# Empty compiler generated dependencies file for bench_ext_tech_survey.
# This may be replaced when dependencies are built.
