file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_tech_survey.dir/bench_ext_tech_survey.cpp.o"
  "CMakeFiles/bench_ext_tech_survey.dir/bench_ext_tech_survey.cpp.o.d"
  "bench_ext_tech_survey"
  "bench_ext_tech_survey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_tech_survey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
