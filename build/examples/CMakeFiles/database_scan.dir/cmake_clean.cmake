file(REMOVE_RECURSE
  "CMakeFiles/database_scan.dir/database_scan.cpp.o"
  "CMakeFiles/database_scan.dir/database_scan.cpp.o.d"
  "database_scan"
  "database_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/database_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
