file(REMOVE_RECURSE
  "CMakeFiles/aes_encrypt.dir/aes_encrypt.cpp.o"
  "CMakeFiles/aes_encrypt.dir/aes_encrypt.cpp.o.d"
  "aes_encrypt"
  "aes_encrypt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aes_encrypt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
