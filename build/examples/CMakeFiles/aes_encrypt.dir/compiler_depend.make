# Empty compiler generated dependencies file for aes_encrypt.
# This may be replaced when dependencies are built.
