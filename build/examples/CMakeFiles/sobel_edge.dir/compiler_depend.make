# Empty compiler generated dependencies file for sobel_edge.
# This may be replaced when dependencies are built.
