file(REMOVE_RECURSE
  "CMakeFiles/sobel_edge.dir/sobel_edge.cpp.o"
  "CMakeFiles/sobel_edge.dir/sobel_edge.cpp.o.d"
  "sobel_edge"
  "sobel_edge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sobel_edge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
