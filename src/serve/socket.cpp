#include "serve/socket.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <istream>
#include <ostream>
#include <thread>

#include "support/diagnostics.h"
#include "support/failpoint.h"

namespace sherlock::serve {

namespace {

/// The "io" failpoint models a vanished peer, not an exception: a
/// trigger at a read/write site surfaces as EOF / write failure — the
/// same thing a real disconnect produces — so injection exercises the
/// daemon's actual recovery path.
bool ioFaultInjected() {
  try {
    failpoint::check("io");
  } catch (const failpoint::InjectedFault&) {
    return true;
  }
  return false;
}

}  // namespace

FdStreamBuf::FdStreamBuf(int fd, const std::atomic<bool>* stop)
    : fd_(fd), stop_(stop) {
  setg(inBuf_, inBuf_, inBuf_);
  setp(outBuf_, outBuf_ + sizeof(outBuf_));
}

FdStreamBuf::int_type FdStreamBuf::underflow() {
  if (gptr() < egptr()) return traits_type::to_int_type(*gptr());
  if (ioFaultInjected()) return traits_type::eof();
  ssize_t n;
  for (;;) {
    n = ::read(fd_, inBuf_, sizeof(inBuf_));
    if (n >= 0 || errno != EINTR) break;
    // A drain signal lands here as EINTR: end the session instead of
    // waiting out a client that may never speak again.
    if (stopRequested()) return traits_type::eof();
  }
  if (n <= 0) return traits_type::eof();
  setg(inBuf_, inBuf_, inBuf_ + n);
  return traits_type::to_int_type(*gptr());
}

bool FdStreamBuf::flushBuffer() {
  if (pbase() < pptr() && ioFaultInjected()) return false;
  const char* p = pbase();
  while (p < pptr()) {
    ssize_t n = ::write(fd_, p, static_cast<size_t>(pptr() - p));
    if (n < 0) {
      if (errno == EINTR && !stopRequested()) continue;
      return false;
    }
    p += n;
  }
  setp(outBuf_, outBuf_ + sizeof(outBuf_));
  return true;
}

FdStreamBuf::int_type FdStreamBuf::overflow(int_type ch) {
  if (!flushBuffer()) return traits_type::eof();
  if (!traits_type::eq_int_type(ch, traits_type::eof())) {
    *pptr() = traits_type::to_char_type(ch);
    pbump(1);
  }
  return traits_type::not_eof(ch);
}

int FdStreamBuf::sync() { return flushBuffer() ? 0 : -1; }

ServeLoopResult serveFd(int fd, CompileService& service,
                        const ServeLoopOptions& options) {
  FdStreamBuf inBuf(fd, options.stop), outBuf(fd, options.stop);
  std::istream in(&inBuf);
  std::ostream out(&outBuf);
  ServeLoopResult result;
  try {
    result = runServeLoop(in, out, service, options);
  } catch (const std::exception&) {
    // A session must never take the server down; whatever happened
    // (a streambuf-level injection, an unexpected protocol condition)
    // ends this connection only.
  }
  out.flush();
  return result;
}

uint64_t runUnixSocketServer(const std::string& path,
                             CompileService& service,
                             const ServeLoopOptions& options) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  checkArg(path.size() < sizeof(addr.sun_path),
           strCat("socket path too long: ", path));
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  // A client that vanishes mid-response turns our next write into
  // EPIPE; the default SIGPIPE disposition would kill the daemon
  // instead of letting FdStreamBuf see the error and end the session.
  ::signal(SIGPIPE, SIG_IGN);

  int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listener < 0)
    throw Error(strCat("socket(): ", std::strerror(errno)));
  ::unlink(path.c_str());
  if (::bind(listener, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    int err = errno;
    ::close(listener);
    throw Error(strCat("bind(", path, "): ", std::strerror(err)));
  }
  if (::listen(listener, 8) != 0) {
    int err = errno;
    ::close(listener);
    ::unlink(path.c_str());
    throw Error(strCat("listen(", path, "): ", std::strerror(err)));
  }

  auto stopRequested = [&] {
    return options.stop &&
           options.stop->load(std::memory_order_relaxed);
  };

  uint64_t sessions = 0;
  bool shutdown = false;
  while (!shutdown && !stopRequested()) {
    int conn = ::accept(listener, nullptr, nullptr);
    if (conn < 0) {
      int err = errno;
      if (err == EINTR) continue;  // signal — loop re-checks stop
      // Transient per-connection failures (peer reset before accept,
      // fd pressure) must not kill a long-running daemon; back off a
      // beat on fd exhaustion so retrying isn't a spin.
      if (err == ECONNABORTED || err == EAGAIN || err == EWOULDBLOCK ||
          err == EPROTO)
        continue;
      if (err == EMFILE || err == ENFILE) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        continue;
      }
      break;
    }
    ++sessions;
    shutdown = serveFd(conn, service, options).shutdown;
    ::close(conn);
  }
  ::close(listener);
  ::unlink(path.c_str());
  return sessions;
}

}  // namespace sherlock::serve
