#include "serve/socket.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <istream>
#include <ostream>

#include "support/diagnostics.h"

namespace sherlock::serve {

FdStreamBuf::FdStreamBuf(int fd) : fd_(fd) {
  setg(inBuf_, inBuf_, inBuf_);
  setp(outBuf_, outBuf_ + sizeof(outBuf_));
}

FdStreamBuf::int_type FdStreamBuf::underflow() {
  if (gptr() < egptr()) return traits_type::to_int_type(*gptr());
  ssize_t n;
  do {
    n = ::read(fd_, inBuf_, sizeof(inBuf_));
  } while (n < 0 && errno == EINTR);
  if (n <= 0) return traits_type::eof();
  setg(inBuf_, inBuf_, inBuf_ + n);
  return traits_type::to_int_type(*gptr());
}

bool FdStreamBuf::flushBuffer() {
  const char* p = pbase();
  while (p < pptr()) {
    ssize_t n = ::write(fd_, p, static_cast<size_t>(pptr() - p));
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += n;
  }
  setp(outBuf_, outBuf_ + sizeof(outBuf_));
  return true;
}

FdStreamBuf::int_type FdStreamBuf::overflow(int_type ch) {
  if (!flushBuffer()) return traits_type::eof();
  if (!traits_type::eq_int_type(ch, traits_type::eof())) {
    *pptr() = traits_type::to_char_type(ch);
    pbump(1);
  }
  return traits_type::not_eof(ch);
}

int FdStreamBuf::sync() { return flushBuffer() ? 0 : -1; }

ServeLoopResult serveFd(int fd, CompileService& service,
                        const ServeLoopOptions& options) {
  FdStreamBuf inBuf(fd), outBuf(fd);
  std::istream in(&inBuf);
  std::ostream out(&outBuf);
  ServeLoopResult result = runServeLoop(in, out, service, options);
  out.flush();
  return result;
}

uint64_t runUnixSocketServer(const std::string& path,
                             CompileService& service,
                             const ServeLoopOptions& options) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  checkArg(path.size() < sizeof(addr.sun_path),
           strCat("socket path too long: ", path));
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listener < 0)
    throw Error(strCat("socket(): ", std::strerror(errno)));
  ::unlink(path.c_str());
  if (::bind(listener, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    int err = errno;
    ::close(listener);
    throw Error(strCat("bind(", path, "): ", std::strerror(err)));
  }
  if (::listen(listener, 8) != 0) {
    int err = errno;
    ::close(listener);
    ::unlink(path.c_str());
    throw Error(strCat("listen(", path, "): ", std::strerror(err)));
  }

  uint64_t sessions = 0;
  bool shutdown = false;
  while (!shutdown) {
    int conn;
    do {
      conn = ::accept(listener, nullptr, nullptr);
    } while (conn < 0 && errno == EINTR);
    if (conn < 0) break;
    ++sessions;
    shutdown = serveFd(conn, service, options).shutdown;
    ::close(conn);
  }
  ::close(listener);
  ::unlink(path.c_str());
  return sessions;
}

}  // namespace sherlock::serve
