#include "serve/executor.h"

#include <csignal>

#include "support/parallel.h"

namespace sherlock::serve {

RequestExecutor::RequestExecutor(int workers, size_t maxQueue) {
  size_t n = workers > 0
                 ? static_cast<size_t>(workers)
                 : static_cast<size_t>(ThreadPool::defaultThreads());
  if (n == 0) n = 1;
  maxOutstanding_ = n + maxQueue;
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i)
    workers_.emplace_back([this] { workerLoop(); });
}

RequestExecutor::~RequestExecutor() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  workReady_.notify_all();
  for (std::thread& w : workers_) w.join();
}

bool RequestExecutor::trySubmit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return false;
    if (queue_.size() + running_ >= maxOutstanding_) return false;
    queue_.push_back(std::move(task));
  }
  workReady_.notify_one();
  return true;
}

size_t RequestExecutor::queueDepth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

size_t RequestExecutor::inflight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_;
}

size_t RequestExecutor::outstanding() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size() + running_;
}

void RequestExecutor::workerLoop() {
  // Keep drain signals (SIGTERM/SIGINT) away from workers: delivery
  // must land on the protocol thread, whose blocking read is the thing
  // that needs the EINTR wake-up.
  sigset_t mask;
  sigemptyset(&mask);
  sigaddset(&mask, SIGTERM);
  sigaddset(&mask, SIGINT);
  pthread_sigmask(SIG_BLOCK, &mask, nullptr);

  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    workReady_.wait(lock,
                    [this] { return shutdown_ || !queue_.empty(); });
    // Drain remaining work even on shutdown: every admitted task's
    // future is awaited by the serve loop, so dropping one would hang
    // the final flush.
    if (queue_.empty()) {
      if (shutdown_) return;
      continue;
    }
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    ++running_;
    lock.unlock();
    task();
    lock.lock();
    --running_;
  }
}

}  // namespace sherlock::serve
