// Newline-delimited batch protocol for the compile service, spoken over
// stdin/stdout (`sherlockc --serve`) or a unix-domain socket
// (`--socket PATH`). Line-oriented and human-typable:
//
//   REQ <id> [key=value ...]     start a request; options override the
//                                daemon defaults for this request only:
//                                lang=dag|kernel emit=asm|stats
//                                target=<N> tech=reram|stt|pcm
//                                strategy=opt|naive mra=<k>
//                                fraction=<f> grid=<RxC> hop-cost=<ns>
//                                fault-density=<f> fault-seed=<N>
//                                spare-rows=<N> nand=0|1 opt=0|1
//                                deadline-ms=<ms> (0 = no deadline)
//   <kernel lines ...>           the kernel body (sherlock-dag text or
//                                kernel-language source, per lang=)
//   END                          finish the request
//   FLUSH                        wait for the pending batch and write
//                                the responses
//   STATS                        flush, then emit the unified
//                                MetricsRegistry snapshot (counters,
//                                gauges, latency histograms)
//   TRACE                        flush, then emit the recorded Chrome
//                                trace_event JSON (requires the tracer
//                                to be enabled, e.g. sherlockc --serve
//                                --trace-out; empty trace otherwise)
//   QUIT                         flush, respond, close this session
//   SHUTDOWN                     like QUIT, but also stops a socket
//                                server's accept loop
//
// Blank lines and lines starting with '#' between requests are ignored.
// Responses:
//
//   RESP <id> ok hit=<0|1> direct=<0|1> coalesced=<0|1> bytes=<N>
//        key=<cache key> compile_us=<f> total_us=<f>  (one line)
//   <exactly N payload bytes>
//   RESP <id> error code=<code> bytes=<N>
//   <exactly N message bytes>
//   BUSY <id> retry_after_ms=<N>                       (load shed)
//   STATS-RESP bytes=<N>
//   <exactly N JSON bytes>
//   TRACE-RESP bytes=<N>
//   <exactly N JSON bytes>
//
// hit=1 direct=0 marks a canonical-level hit: the source bytes were new
// (parse + canonicalize ran) but the canonical fingerprint matched a
// cached program — the signature of a renamed/reformatted variant.
//
// Payload bytes are a per-request binding header ("# inputs: a->i0 ...")
// followed by the cached program body; identical requests receive
// byte-identical payloads whether served cold or from cache (the CI
// smoke step asserts exactly this). The `hit`/`coalesced` flags and the
// timing fields are diagnostics — they vary run to run and are excluded
// from such comparisons.
//
// Resilience semantics (serve/executor.h, support/cancel.h):
//
//  * Requests dispatch to the bounded executor as soon as END arrives;
//    the protocol loop keeps reading while compiles run. RESP records
//    are still written in request order at each flush point (FLUSH /
//    STATS / TRACE / QUIT / maxBatch / EOF).
//  * Admission is bounded by maxInflight concurrent compiles plus
//    maxQueue waiting requests. Beyond that the request is shed: a
//    `BUSY <id> retry_after_ms=<N>` line is written (and flushed)
//    immediately — out of band with RESP ordering, by design — and the
//    request is never queued. Clients back off and retry
//    (scripts/serve_client.py implements exponential backoff+jitter).
//  * deadline-ms= (or the daemon-wide --default-deadline-ms) arms a
//    CancelToken at admission; expiry anywhere between compile phases
//    answers `RESP <id> error code=deadline_exceeded`.
//  * Error responses carry a machine-readable code=: bad_option,
//    truncated, request_too_large, deadline_exceeded, injected_fault,
//    or compile_error.
//  * Request bodies and protocol lines are capped at maxRequestBytes;
//    oversized requests are consumed (bounded, never buffered whole)
//    and answered with code=request_too_large.
//  * When `stop` flips (SIGTERM/SIGINT in sherlockc), the loop stops
//    reading, tightens every in-flight request's deadline to
//    drainDeadlineMs, writes what completes, and returns — so metrics,
//    traces, and the cache snapshot still flush on a signal.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>

#include "serve/service.h"

namespace sherlock::serve {

struct ServeLoopOptions {
  /// Daemon-wide request defaults (from sherlockc's flags); per-request
  /// key=value pairs overlay these (including deadlineMs).
  RequestOptions defaults;
  /// Pending responses that trigger an automatic flush.
  size_t maxBatch = 64;
  /// Thread-pool parallelism for compiles (0 = SHERLOCK_THREADS /
  /// hardware default; 1 = one worker).
  int threads = 0;
  /// Concurrent compiles admitted before requests start queueing
  /// (0 = `threads`). This is the executor's worker count.
  int maxInflight = 0;
  /// Requests allowed to wait for a worker; beyond maxInflight +
  /// maxQueue outstanding, new requests are shed with BUSY.
  size_t maxQueue = 1024;
  /// Hard cap on one request's body (and any single protocol line).
  size_t maxRequestBytes = 4u << 20;
  /// retry_after_ms hint carried by BUSY responses.
  int retryAfterMs = 25;
  /// Grace given to in-flight requests when `stop` flips before their
  /// deadlines are tightened to now + drainDeadlineMs.
  double drainDeadlineMs = 2000;
  /// When set, the canonical cache is snapshotted here (atomically)
  /// after any flush that added entries, and on session end.
  std::string cachePersistPath;
  /// Graceful-drain signal (e.g. SIGTERM): polled between protocol
  /// lines and by the socket layer's blocking reads.
  const std::atomic<bool>* stop = nullptr;
};

struct ServeLoopResult {
  uint64_t requests = 0;  ///< responses written (including errors)
  uint64_t shed = 0;      ///< requests answered BUSY
  /// The session ended with SHUTDOWN (socket servers stop accepting).
  bool shutdown = false;
};

/// Runs one protocol session until QUIT/SHUTDOWN/EOF/stop. Protocol-
/// level problems (bad options, truncated or oversized requests) are
/// reported as per-request error responses or PROTOCOL-ERROR lines;
/// the loop itself only exits on end of session.
ServeLoopResult runServeLoop(std::istream& in, std::ostream& out,
                             CompileService& service,
                             const ServeLoopOptions& options);

}  // namespace sherlock::serve
