// Newline-delimited batch protocol for the compile service, spoken over
// stdin/stdout (`sherlockc --serve`) or a unix-domain socket
// (`--socket PATH`). Line-oriented and human-typable:
//
//   REQ <id> [key=value ...]     start a request; options override the
//                                daemon defaults for this request only:
//                                lang=dag|kernel emit=asm|stats
//                                target=<N> tech=reram|stt|pcm
//                                strategy=opt|naive mra=<k>
//                                fraction=<f> grid=<RxC> hop-cost=<ns>
//                                fault-density=<f> fault-seed=<N>
//                                spare-rows=<N> nand=0|1 opt=0|1
//   <kernel lines ...>           the kernel body (sherlock-dag text or
//                                kernel-language source, per lang=)
//   END                          finish the request
//   FLUSH                        compile the pending batch now and
//                                write the responses
//   STATS                        flush, then emit the unified
//                                MetricsRegistry snapshot (counters,
//                                gauges, latency histograms)
//   TRACE                        flush, then emit the recorded Chrome
//                                trace_event JSON (requires the tracer
//                                to be enabled, e.g. sherlockc --serve
//                                --trace-out; empty trace otherwise)
//   QUIT                         flush, respond, close this session
//   SHUTDOWN                     like QUIT, but also stops a socket
//                                server's accept loop
//
// Blank lines and lines starting with '#' between requests are ignored.
// Requests also auto-flush when maxBatch accumulate. Each batch is
// compiled concurrently on the shared PR-1 thread pool; responses are
// written in request order regardless of completion order:
//
//   RESP <id> ok hit=<0|1> direct=<0|1> coalesced=<0|1> bytes=<N>
//        key=<cache key> compile_us=<f> total_us=<f>  (one line)
//   <exactly N payload bytes>
//   RESP <id> error bytes=<N>
//   <exactly N message bytes>
//   STATS-RESP bytes=<N>
//   <exactly N JSON bytes>
//   TRACE-RESP bytes=<N>
//   <exactly N JSON bytes>
//
// hit=1 direct=0 marks a canonical-level hit: the source bytes were new
// (parse + canonicalize ran) but the canonical fingerprint matched a
// cached program — the signature of a renamed/reformatted variant.
//
// Payload bytes are a per-request binding header ("# inputs: a->i0 ...")
// followed by the cached program body; identical requests receive
// byte-identical payloads whether served cold or from cache (the CI
// smoke step asserts exactly this). The `hit`/`coalesced` flags and the
// timing fields are diagnostics — they vary run to run and are excluded
// from such comparisons.
#pragma once

#include <cstdint>
#include <iosfwd>

#include "serve/service.h"

namespace sherlock::serve {

struct ServeLoopOptions {
  /// Daemon-wide request defaults (from sherlockc's flags); per-request
  /// key=value pairs overlay these.
  RequestOptions defaults;
  /// Pending requests that trigger an automatic flush.
  size_t maxBatch = 64;
  /// Thread-pool parallelism for batch compiles (0 = SHERLOCK_THREADS /
  /// hardware default; 1 = serial).
  int threads = 0;
};

struct ServeLoopResult {
  uint64_t requests = 0;
  /// The session ended with SHUTDOWN (socket servers stop accepting).
  bool shutdown = false;
};

/// Runs one protocol session until QUIT/SHUTDOWN/EOF. Protocol-level
/// problems (bad options, truncated request) are reported as per-request
/// error responses or PROTOCOL-ERROR lines; the loop itself only exits
/// on end of session.
ServeLoopResult runServeLoop(std::istream& in, std::ostream& out,
                             CompileService& service,
                             const ServeLoopOptions& options);

}  // namespace sherlock::serve
