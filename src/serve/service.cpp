#include "serve/service.h"

#include <chrono>
#include <optional>
#include <sstream>

#include "device/faultmap.h"
#include "frontend/lowering.h"
#include "ir/analysis.h"
#include "ir/canonical.h"
#include "ir/serialize.h"
#include "mapping/compiler.h"
#include "mapping/program_analysis.h"
#include "serve/persist.h"
#include "support/diagnostics.h"
#include "support/failpoint.h"
#include "support/trace.h"
#include "transforms/nand_lowering.h"
#include "transforms/passes.h"
#include "transforms/substitution.h"

namespace sherlock::serve {

namespace {

using Clock = std::chrono::steady_clock;

double usSince(Clock::time_point start) {
  return std::chrono::duration<double, std::micro>(Clock::now() - start)
      .count();
}

device::TechnologyParams techFor(const std::string& name) {
  if (name == "reram") return device::TechnologyParams::reRam();
  if (name == "stt") return device::TechnologyParams::sttMram();
  if (name == "pcm") return device::TechnologyParams::pcm();
  throw Error(strCat("unknown technology '", name, "'"));
}

}  // namespace

/// A parsed-and-canonicalized request, ready to compile. The body is a
/// pure function of (graph, options) — exactly what the cache key
/// encodes — so cached and cold responses are byte-identical.
struct CanonicalRequest {
  const ir::Graph& graph;
  const RequestOptions& options;
};

namespace {

/// The option fields the emitted bytes depend on, pipe-delimited.
std::string optionsKey(const RequestOptions& o) {
  return strCat("emit=", o.emit, "|strategy=", o.strategy,
                "|dim=", o.targetDim, "|mra=", o.mra,
                "|frac=", o.fraction, "|tech=", o.tech,
                "|grid=", o.grid.empty() ? "-" : o.grid,
                "|hop=", o.hopCost, "|fd=", o.faultDensity,
                "|fseed=", o.faultSeed, "|spare=", o.spareRows,
                "|nand=", o.nandLower ? 1 : 0,
                "|O=", o.aggressive ? 1 : 0);
}

}  // namespace

std::string CompileService::cacheKey(const std::string& fingerprint,
                                     const RequestOptions& o) {
  // `lang` is deliberately absent: a DAG and a kernel-language source
  // lowering to the same canonical graph get the same program.
  return strCat(fingerprint, "|", optionsKey(o));
}

std::string CompileService::directKey(const std::string& source,
                                      const RequestOptions& o) {
  // Unlike the canonical key, `lang` matters here: the same bytes parse
  // to different graphs under different frontends.
  return strCat("lang=", o.lang, "|", optionsKey(o), "\n", source);
}

CompileService::CompileService(ServiceOptions options)
    : options_(std::move(options)),
      direct_(options_.cacheCapacity),
      cache_(options_.cacheCapacity) {
  // Pre-register the resilience counters and gauges at zero so every
  // metrics dump carries them (dashboards and the chaos harness read
  // them unconditionally).
  for (const char* name :
       {"serve.requests", "serve.hits", "serve.misses", "serve.errors",
        "serve.shed", "serve.deadline_exceeded",
        "serve.injected_faults"})
    metrics_.add(name, 0);
  metrics_.setGauge("serve.inflight", 0);
  metrics_.setGauge("serve.queue_depth", 0);
}

std::string CompileService::compileBody(
    const CanonicalRequest& request) const {
  failpoint::check("compile");
  const RequestOptions& o = request.options;
  checkArg(o.emit == "asm" || o.emit == "stats",
           strCat("unknown emit kind '", o.emit, "'"));
  checkArg(o.strategy == "opt" || o.strategy == "naive",
           strCat("unknown strategy '", o.strategy, "'"));

  isa::TargetSpec target =
      isa::TargetSpec::square(o.targetDim, techFor(o.tech), o.mra);
  if (!o.grid.empty())
    target = target.withGrid(arraymodel::GridConfig::parse(o.grid));
  if (o.hopCost >= 0) target.grid.hopLatencyNs = o.hopCost;

  const ir::Graph* graph = &request.graph;
  ir::Graph substituted;
  transforms::SubstitutionStats substitution;
  if (o.mra > 2) {
    transforms::SubstitutionOptions sopt;
    sopt.maxOperands = o.mra;
    sopt.fraction = o.fraction;
    auto sub = transforms::substituteNodes(request.graph, sopt);
    substituted = std::move(sub.graph);
    substitution = sub.stats;
    graph = &substituted;
  }

  std::optional<device::FaultMap> faultMap;
  if (o.faultDensity > 0.0) {
    device::FaultMapOptions fo;
    fo.seed = o.faultSeed;
    fo.stuckDensity = o.faultDensity;
    fo.weakDensity = o.faultDensity * 0.5;
    faultMap = device::FaultMap::generate(target.numArrays, target.rows(),
                                          target.cols(), fo);
  }

  mapping::CompileOptions copts;
  copts.strategy = o.strategy == "naive" ? mapping::Strategy::Naive
                                         : mapping::Strategy::Optimized;
  copts.faults.map = faultMap ? &*faultMap : nullptr;
  copts.faults.spareRows = o.spareRows;
  mapping::CompileResult compiled = mapping::compile(*graph, target, copts);

  std::ostringstream out;
  out << "# sherlock-serve " << target.tech.name << " " << o.targetDim
      << "x" << o.targetDim << " " << o.strategy
      << (o.grid.empty() ? "" : strCat(" grid=", o.grid)) << "\n";
  if (o.emit == "asm") {
    out << isa::toAssembly(compiled.program.instructions);
    return out.str();
  }
  const auto& s = compiled.program.stats;
  out << "DAG:          " << graph->opCount() << " ops, "
      << graph->valueCount() << " values, critical path "
      << ir::criticalPathLength(*graph) << "\n";
  if (o.mra > 2)
    out << "substitution: " << substitution.applied << "/"
        << substitution.candidates << " merges, " << substitution.wideOps
        << " wide ops\n";
  out << "instructions: " << compiled.program.instructions.size()
      << " (host writes " << s.hostWrites << ", CIM reads " << s.cimReads
      << ", plain reads " << s.plainReads << ", spills " << s.spillWrites
      << ", shifts " << s.shifts << ", moves " << s.moves << ", xfers "
      << s.xfers << ")\n"
      << "columns used: " << compiled.program.usedColumns
      << ", peak live cells: " << compiled.program.peakLiveCells << "\n"
      << mapping::analyzeProgram(compiled.program).toString();
  return out.str();
}

CompileResponse CompileService::handle(const std::string& source,
                                       const RequestOptions& options,
                                       const CancelToken* cancel) {
  Clock::time_point t0 = Clock::now();
  CompileResponse resp;
  metrics_.add("serve.requests");
  try {
    // A request whose deadline expired while it sat in the admission
    // queue is answered without doing any work at all.
    if (cancel) cancel->checkpoint("admission");
    std::string memoKey = directKey(source, options);
    {
      trace::Span span("serve", "direct_probe");
      std::lock_guard<std::mutex> lock(mu_);
      // Direct mode: an exact repeat of a completed request skips parse
      // and canonicalization and returns the pinned payload verbatim.
      if (DirectEntry* memo = direct_.get(memoKey)) {
        resp.ok = true;
        resp.cacheHit = true;
        resp.direct = true;
        resp.key = memo->key;
        resp.payload = *memo->payload;
        resp.totalUs = usSince(t0);
        metrics_.add("serve.hits");
        metrics_.add("serve.direct_hits");
        metrics_.observe("serve.hit_us", resp.totalUs);
        if (trace::Tracer::instance().enabled())
          trace::Tracer::instance().instant("serve", "direct_hit");
        return resp;
      }
    }
    ir::Graph g;
    {
      trace::Span span("serve", "parse");
      failpoint::check("parse");
      if (options.lang == "kernel") {
        g = frontend::compileKernel(source);
      } else if (options.lang == "dag") {
        g = ir::graphFromText(source);
      } else {
        throw Error(strCat("unknown lang '", options.lang, "'"));
      }
    }
    if (cancel) cancel->checkpoint("parse");
    std::optional<ir::CanonicalForm> canonicalOpt;
    {
      trace::Span span("serve", "canonicalize");
      failpoint::check("canonicalize");
      g = transforms::canonicalize(g);
      if (options.aggressive) g = transforms::optimize(g);
      if (options.nandLower)
        g = transforms::canonicalize(transforms::lowerToNand(g));
      canonicalOpt.emplace(ir::canonicalForm(g));
    }
    if (cancel) cancel->checkpoint("canonicalize");
    ir::CanonicalForm& canonical = *canonicalOpt;
    resp.key = cacheKey(canonical.fingerprint(), options);

    // Per-request binding header: the cached body names inputs by
    // canonical position; this line maps the caller's names onto them.
    std::ostringstream header;
    header << "# key " << resp.key << "\n# inputs:";
    for (size_t k = 0; k < canonical.inputNames.size(); ++k)
      header << " " << canonical.inputNames[k] << "->i" << k;
    header << "\n";

    std::shared_ptr<const std::string> body;
    bool isBuilder = false;
    std::promise<std::shared_ptr<const std::string>> promise;
    std::shared_future<std::shared_ptr<const std::string>> pending;
    {
      trace::Span span("serve", "lookup");
      std::lock_guard<std::mutex> lock(mu_);
      if (std::shared_ptr<const std::string>* hit = cache_.get(resp.key)) {
        body = *hit;
        metrics_.add("serve.hits");
        resp.cacheHit = true;
        if (trace::Tracer::instance().enabled())
          trace::Tracer::instance().instant("serve", "canonical_hit");
      } else if (auto it = inflight_.find(resp.key);
                 it != inflight_.end()) {
        pending = it->second.future;
      } else {
        isBuilder = true;
        pending = promise.get_future().share();
        inflight_.emplace(resp.key, Inflight{pending});
      }
    }

    if (isBuilder) {
      if (options_.onColdCompile) options_.onColdCompile(resp.key);
      Clock::time_point c0 = Clock::now();
      try {
        if (cancel) cancel->checkpoint("compile");
        trace::Span span("serve", "compile");
        body = std::make_shared<const std::string>(
            compileBody(CanonicalRequest{canonical.graph, options}));
        resp.compileUs = usSince(c0);
      } catch (...) {
        // Errors are not cached: release the key so a corrected retry
        // (or a different fault map) compiles fresh, and wake waiters
        // with the failure.
        {
          std::lock_guard<std::mutex> lock(mu_);
          inflight_.erase(resp.key);
        }
        promise.set_exception(std::current_exception());
        throw;
      }
      {
        std::lock_guard<std::mutex> lock(mu_);
        cache_.put(resp.key, body);
        ++cacheGeneration_;
        inflight_.erase(resp.key);
      }
      metrics_.add("serve.misses");
      metrics_.observe("serve.cold_us", resp.compileUs);
      promise.set_value(body);
    } else if (!resp.cacheHit) {
      trace::Span span("serve", "singleflight_wait");
      // A deadline-carrying waiter bounds its wait instead of riding a
      // slow builder past its own deadline.
      if (cancel && cancel->hasDeadline() &&
          pending.wait_until(cancel->deadline()) ==
              std::future_status::timeout)
        throw DeadlineExceeded("singleflight_wait");
      body = pending.get();  // rethrows the builder's failure
      metrics_.add("serve.coalesced");
      resp.coalesced = true;
    }

    auto full =
        std::make_shared<const std::string>(header.str() + *body);
    resp.payload = *full;
    resp.ok = true;
    resp.totalUs = usSince(t0);
    {
      std::lock_guard<std::mutex> lock(mu_);
      direct_.put(memoKey, DirectEntry{std::move(full), resp.key});
    }
    if (resp.cacheHit) metrics_.observe("serve.hit_us", resp.totalUs);
  } catch (const DeadlineExceeded& e) {
    resp.ok = false;
    resp.code = "deadline_exceeded";
    resp.payload = strCat("error: ", e.what(), "\n");
    resp.totalUs = usSince(t0);
    metrics_.add("serve.errors");
    metrics_.add("serve.deadline_exceeded");
  } catch (const failpoint::InjectedFault& e) {
    resp.ok = false;
    resp.code = "injected_fault";
    resp.payload = strCat("error: ", e.what(), "\n");
    resp.totalUs = usSince(t0);
    metrics_.add("serve.errors");
    metrics_.add("serve.injected_faults");
  } catch (const std::exception& e) {
    resp.ok = false;
    resp.code = "compile_error";
    resp.payload = strCat("error: ", e.what(), "\n");
    resp.totalUs = usSince(t0);
    metrics_.add("serve.errors");
  }
  return resp;
}

void CompileService::noteShed() { metrics_.add("serve.shed"); }

void CompileService::setLoadGauges(size_t inflight, size_t queueDepth) {
  metrics_.setGauge("serve.inflight", static_cast<double>(inflight));
  metrics_.setGauge("serve.queue_depth",
                    static_cast<double>(queueDepth));
}

PersistResult CompileService::saveCache(const std::string& path) {
  // Snapshot the entries under the lock, write the file outside it (a
  // multi-megabyte fsync must not stall request lookups).
  std::vector<std::pair<std::string, std::string>> entries;
  uint64_t generation;
  {
    std::lock_guard<std::mutex> lock(mu_);
    generation = cacheGeneration_;
    std::vector<std::string> keys = cache_.keysMruToLru();
    entries.reserve(keys.size());
    // LRU first: reloading in file order then rebuilds the same
    // recency, with the MRU entry inserted last.
    for (auto it = keys.rbegin(); it != keys.rend(); ++it) {
      const std::shared_ptr<const std::string>* body = cache_.peek(*it);
      if (body) entries.emplace_back(*it, **body);
    }
  }
  SnapshotStats stats = saveCacheSnapshot(path, entries);
  PersistResult result;
  result.ok = stats.ok;
  result.entries = stats.written;
  if (stats.ok) {
    std::lock_guard<std::mutex> lock(mu_);
    persistedGeneration_ = generation;
    metrics_.add("serve.persist_saved", stats.written);
  } else {
    metrics_.add("serve.persist_errors");
  }
  return result;
}

PersistResult CompileService::loadCache(const std::string& path) {
  SnapshotStats stats = loadCacheSnapshot(
      path, [this](std::string key, std::string body) {
        std::lock_guard<std::mutex> lock(mu_);
        cache_.put(std::move(key),
                   std::make_shared<const std::string>(std::move(body)));
      });
  PersistResult result;
  result.ok = stats.ok;
  result.entries = stats.loaded;
  result.dropped = stats.dropped;
  metrics_.add("serve.persist_loaded", stats.loaded);
  metrics_.add("serve.persist_dropped", stats.dropped);
  std::lock_guard<std::mutex> lock(mu_);
  // Warm entries count as already persisted; only new compiles dirty
  // the cache again.
  persistedGeneration_ = cacheGeneration_;
  return result;
}

bool CompileService::cacheDirty() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cacheGeneration_ != persistedGeneration_;
}

void CompileService::recordQueueWait(double us) {
  metrics_.observe("serve.queue_wait_us", us);
}

void CompileService::publishGaugesLocked() const {
  uint64_t hits = metrics_.counterValue("serve.hits");
  uint64_t misses = metrics_.counterValue("serve.misses");
  uint64_t coalesced = metrics_.counterValue("serve.coalesced");
  uint64_t served = hits + misses + coalesced;
  metrics_.setGauge("serve.hit_rate",
                    served == 0 ? 0.0
                                : static_cast<double>(hits + coalesced) /
                                      static_cast<double>(served));
  metrics_.setGauge("serve.cache_size",
                    static_cast<double>(cache_.size()));
  metrics_.setGauge("serve.cache_capacity",
                    static_cast<double>(cache_.capacity()));
  metrics_.setGauge("serve.evictions",
                    static_cast<double>(cache_.evictions()));
}

std::string CompileService::metricsJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  publishGaugesLocked();
  return metrics_.toJson();
}

ServiceStats CompileService::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ServiceStats s;
  s.counters.requests = metrics_.counterValue("serve.requests");
  s.counters.hits = metrics_.counterValue("serve.hits");
  s.counters.directHits = metrics_.counterValue("serve.direct_hits");
  s.counters.misses = metrics_.counterValue("serve.misses");
  s.counters.coalesced = metrics_.counterValue("serve.coalesced");
  s.counters.errors = metrics_.counterValue("serve.errors");
  s.counters.evictions = cache_.evictions();
  s.cacheSize = cache_.size();
  s.cacheCapacity = cache_.capacity();
  MetricsRegistry::HistogramSnapshot hit = metrics_.histogram("serve.hit_us");
  MetricsRegistry::HistogramSnapshot cold =
      metrics_.histogram("serve.cold_us");
  s.hitP50Us = hit.p50;
  s.hitP99Us = hit.p99;
  s.hitMeanUs = hit.mean;
  s.coldP50Us = cold.p50;
  s.coldP99Us = cold.p99;
  s.coldMeanUs = cold.mean;
  return s;
}

std::string ServiceStats::toJson() const {
  std::ostringstream out;
  out << "{\n"
      << "  \"requests\": " << counters.requests << ",\n"
      << "  \"hits\": " << counters.hits << ",\n"
      << "  \"direct_hits\": " << counters.directHits << ",\n"
      << "  \"misses\": " << counters.misses << ",\n"
      << "  \"coalesced\": " << counters.coalesced << ",\n"
      << "  \"errors\": " << counters.errors << ",\n"
      << "  \"evictions\": " << counters.evictions << ",\n"
      << "  \"hit_rate\": " << counters.hitRate() << ",\n"
      << "  \"cache_size\": " << cacheSize << ",\n"
      << "  \"cache_capacity\": " << cacheCapacity << ",\n"
      << "  \"hit_p50_us\": " << hitP50Us << ",\n"
      << "  \"hit_p99_us\": " << hitP99Us << ",\n"
      << "  \"hit_mean_us\": " << hitMeanUs << ",\n"
      << "  \"cold_p50_us\": " << coldP50Us << ",\n"
      << "  \"cold_p99_us\": " << coldP99Us << ",\n"
      << "  \"cold_mean_us\": " << coldMeanUs << "\n"
      << "}\n";
  return out.str();
}

}  // namespace sherlock::serve
