#include "serve/service.h"

#include <chrono>
#include <optional>
#include <sstream>

#include "device/faultmap.h"
#include "frontend/lowering.h"
#include "ir/analysis.h"
#include "ir/canonical.h"
#include "ir/serialize.h"
#include "mapping/compiler.h"
#include "mapping/program_analysis.h"
#include "support/diagnostics.h"
#include "transforms/nand_lowering.h"
#include "transforms/passes.h"
#include "transforms/substitution.h"

namespace sherlock::serve {

namespace {

using Clock = std::chrono::steady_clock;

double usSince(Clock::time_point start) {
  return std::chrono::duration<double, std::micro>(Clock::now() - start)
      .count();
}

device::TechnologyParams techFor(const std::string& name) {
  if (name == "reram") return device::TechnologyParams::reRam();
  if (name == "stt") return device::TechnologyParams::sttMram();
  if (name == "pcm") return device::TechnologyParams::pcm();
  throw Error(strCat("unknown technology '", name, "'"));
}

}  // namespace

/// A parsed-and-canonicalized request, ready to compile. The body is a
/// pure function of (graph, options) — exactly what the cache key
/// encodes — so cached and cold responses are byte-identical.
struct CanonicalRequest {
  const ir::Graph& graph;
  const RequestOptions& options;
};

namespace {

/// The option fields the emitted bytes depend on, pipe-delimited.
std::string optionsKey(const RequestOptions& o) {
  return strCat("emit=", o.emit, "|strategy=", o.strategy,
                "|dim=", o.targetDim, "|mra=", o.mra,
                "|frac=", o.fraction, "|tech=", o.tech,
                "|grid=", o.grid.empty() ? "-" : o.grid,
                "|hop=", o.hopCost, "|fd=", o.faultDensity,
                "|fseed=", o.faultSeed, "|spare=", o.spareRows,
                "|nand=", o.nandLower ? 1 : 0,
                "|O=", o.aggressive ? 1 : 0);
}

}  // namespace

std::string CompileService::cacheKey(const std::string& fingerprint,
                                     const RequestOptions& o) {
  // `lang` is deliberately absent: a DAG and a kernel-language source
  // lowering to the same canonical graph get the same program.
  return strCat(fingerprint, "|", optionsKey(o));
}

std::string CompileService::directKey(const std::string& source,
                                      const RequestOptions& o) {
  // Unlike the canonical key, `lang` matters here: the same bytes parse
  // to different graphs under different frontends.
  return strCat("lang=", o.lang, "|", optionsKey(o), "\n", source);
}

CompileService::CompileService(ServiceOptions options)
    : options_(std::move(options)),
      direct_(options_.cacheCapacity),
      cache_(options_.cacheCapacity) {}

std::string CompileService::compileBody(
    const CanonicalRequest& request) const {
  const RequestOptions& o = request.options;
  checkArg(o.emit == "asm" || o.emit == "stats",
           strCat("unknown emit kind '", o.emit, "'"));
  checkArg(o.strategy == "opt" || o.strategy == "naive",
           strCat("unknown strategy '", o.strategy, "'"));

  isa::TargetSpec target =
      isa::TargetSpec::square(o.targetDim, techFor(o.tech), o.mra);
  if (!o.grid.empty())
    target = target.withGrid(arraymodel::GridConfig::parse(o.grid));
  if (o.hopCost >= 0) target.grid.hopLatencyNs = o.hopCost;

  const ir::Graph* graph = &request.graph;
  ir::Graph substituted;
  transforms::SubstitutionStats substitution;
  if (o.mra > 2) {
    transforms::SubstitutionOptions sopt;
    sopt.maxOperands = o.mra;
    sopt.fraction = o.fraction;
    auto sub = transforms::substituteNodes(request.graph, sopt);
    substituted = std::move(sub.graph);
    substitution = sub.stats;
    graph = &substituted;
  }

  std::optional<device::FaultMap> faultMap;
  if (o.faultDensity > 0.0) {
    device::FaultMapOptions fo;
    fo.seed = o.faultSeed;
    fo.stuckDensity = o.faultDensity;
    fo.weakDensity = o.faultDensity * 0.5;
    faultMap = device::FaultMap::generate(target.numArrays, target.rows(),
                                          target.cols(), fo);
  }

  mapping::CompileOptions copts;
  copts.strategy = o.strategy == "naive" ? mapping::Strategy::Naive
                                         : mapping::Strategy::Optimized;
  copts.faults.map = faultMap ? &*faultMap : nullptr;
  copts.faults.spareRows = o.spareRows;
  mapping::CompileResult compiled = mapping::compile(*graph, target, copts);

  std::ostringstream out;
  out << "# sherlock-serve " << target.tech.name << " " << o.targetDim
      << "x" << o.targetDim << " " << o.strategy
      << (o.grid.empty() ? "" : strCat(" grid=", o.grid)) << "\n";
  if (o.emit == "asm") {
    out << isa::toAssembly(compiled.program.instructions);
    return out.str();
  }
  const auto& s = compiled.program.stats;
  out << "DAG:          " << graph->opCount() << " ops, "
      << graph->valueCount() << " values, critical path "
      << ir::criticalPathLength(*graph) << "\n";
  if (o.mra > 2)
    out << "substitution: " << substitution.applied << "/"
        << substitution.candidates << " merges, " << substitution.wideOps
        << " wide ops\n";
  out << "instructions: " << compiled.program.instructions.size()
      << " (host writes " << s.hostWrites << ", CIM reads " << s.cimReads
      << ", plain reads " << s.plainReads << ", spills " << s.spillWrites
      << ", shifts " << s.shifts << ", moves " << s.moves << ", xfers "
      << s.xfers << ")\n"
      << "columns used: " << compiled.program.usedColumns
      << ", peak live cells: " << compiled.program.peakLiveCells << "\n"
      << mapping::analyzeProgram(compiled.program).toString();
  return out.str();
}

CompileResponse CompileService::handle(const std::string& source,
                                       const RequestOptions& options) {
  Clock::time_point t0 = Clock::now();
  CompileResponse resp;
  std::string memoKey = directKey(source, options);
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.requests;
    // Direct mode: an exact repeat of a completed request skips parse
    // and canonicalization and returns the pinned payload verbatim.
    if (DirectEntry* memo = direct_.get(memoKey)) {
      ++counters_.hits;
      ++counters_.directHits;
      resp.ok = true;
      resp.cacheHit = true;
      resp.direct = true;
      resp.key = memo->key;
      resp.payload = *memo->payload;
      resp.totalUs = usSince(t0);
      hitUs_.record(resp.totalUs);
      return resp;
    }
  }
  try {
    ir::Graph g;
    if (options.lang == "kernel") {
      g = frontend::compileKernel(source);
    } else if (options.lang == "dag") {
      g = ir::graphFromText(source);
    } else {
      throw Error(strCat("unknown lang '", options.lang, "'"));
    }
    g = transforms::canonicalize(g);
    if (options.aggressive) g = transforms::optimize(g);
    if (options.nandLower)
      g = transforms::canonicalize(transforms::lowerToNand(g));
    ir::CanonicalForm canonical = ir::canonicalForm(g);
    resp.key = cacheKey(canonical.fingerprint(), options);

    // Per-request binding header: the cached body names inputs by
    // canonical position; this line maps the caller's names onto them.
    std::ostringstream header;
    header << "# key " << resp.key << "\n# inputs:";
    for (size_t k = 0; k < canonical.inputNames.size(); ++k)
      header << " " << canonical.inputNames[k] << "->i" << k;
    header << "\n";

    std::shared_ptr<const std::string> body;
    bool isBuilder = false;
    std::promise<std::shared_ptr<const std::string>> promise;
    std::shared_future<std::shared_ptr<const std::string>> pending;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (std::shared_ptr<const std::string>* hit = cache_.get(resp.key)) {
        body = *hit;
        ++counters_.hits;
        resp.cacheHit = true;
      } else if (auto it = inflight_.find(resp.key);
                 it != inflight_.end()) {
        pending = it->second.future;
      } else {
        isBuilder = true;
        pending = promise.get_future().share();
        inflight_.emplace(resp.key, Inflight{pending});
      }
    }

    if (isBuilder) {
      if (options_.onColdCompile) options_.onColdCompile(resp.key);
      Clock::time_point c0 = Clock::now();
      try {
        body = std::make_shared<const std::string>(
            compileBody(CanonicalRequest{canonical.graph, options}));
        resp.compileUs = usSince(c0);
      } catch (...) {
        // Errors are not cached: release the key so a corrected retry
        // (or a different fault map) compiles fresh, and wake waiters
        // with the failure.
        {
          std::lock_guard<std::mutex> lock(mu_);
          inflight_.erase(resp.key);
        }
        promise.set_exception(std::current_exception());
        throw;
      }
      {
        std::lock_guard<std::mutex> lock(mu_);
        cache_.put(resp.key, body);
        counters_.evictions = cache_.evictions();
        ++counters_.misses;
        inflight_.erase(resp.key);
        coldUs_.record(resp.compileUs);
      }
      promise.set_value(body);
    } else if (!resp.cacheHit) {
      body = pending.get();  // rethrows the builder's failure
      std::lock_guard<std::mutex> lock(mu_);
      ++counters_.coalesced;
      resp.coalesced = true;
    }

    auto full =
        std::make_shared<const std::string>(header.str() + *body);
    resp.payload = *full;
    resp.ok = true;
    resp.totalUs = usSince(t0);
    {
      std::lock_guard<std::mutex> lock(mu_);
      direct_.put(memoKey, DirectEntry{std::move(full), resp.key});
      if (resp.cacheHit) hitUs_.record(resp.totalUs);
    }
  } catch (const std::exception& e) {
    resp.ok = false;
    resp.payload = strCat("error: ", e.what(), "\n");
    resp.totalUs = usSince(t0);
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.errors;
  }
  return resp;
}

ServiceStats CompileService::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ServiceStats s;
  s.counters = counters_;
  s.cacheSize = cache_.size();
  s.cacheCapacity = cache_.capacity();
  s.hitP50Us = hitUs_.percentile(50);
  s.hitP99Us = hitUs_.percentile(99);
  s.hitMeanUs = hitUs_.mean();
  s.coldP50Us = coldUs_.percentile(50);
  s.coldP99Us = coldUs_.percentile(99);
  s.coldMeanUs = coldUs_.mean();
  return s;
}

std::string ServiceStats::toJson() const {
  std::ostringstream out;
  out << "{\n"
      << "  \"requests\": " << counters.requests << ",\n"
      << "  \"hits\": " << counters.hits << ",\n"
      << "  \"direct_hits\": " << counters.directHits << ",\n"
      << "  \"misses\": " << counters.misses << ",\n"
      << "  \"coalesced\": " << counters.coalesced << ",\n"
      << "  \"errors\": " << counters.errors << ",\n"
      << "  \"evictions\": " << counters.evictions << ",\n"
      << "  \"hit_rate\": " << counters.hitRate() << ",\n"
      << "  \"cache_size\": " << cacheSize << ",\n"
      << "  \"cache_capacity\": " << cacheCapacity << ",\n"
      << "  \"hit_p50_us\": " << hitP50Us << ",\n"
      << "  \"hit_p99_us\": " << hitP99Us << ",\n"
      << "  \"hit_mean_us\": " << hitMeanUs << ",\n"
      << "  \"cold_p50_us\": " << coldP50Us << ",\n"
      << "  \"cold_p99_us\": " << coldP99Us << ",\n"
      << "  \"cold_mean_us\": " << coldMeanUs << "\n"
      << "}\n";
  return out.str();
}

}  // namespace sherlock::serve
