// Crash-safe persistence for the compile service's canonical program
// cache: a checksummed, versioned, length-framed snapshot written
// atomically (temp file + rename) so a daemon killed at any instant
// leaves either the previous snapshot or the new one — never a torn
// file — and a restarted daemon serves warm canonical hits.
//
// Format (text framing, byte-counted payloads, like the serve
// protocol):
//
//   sherlock-cache v<V> entries=<N>
//   ENTRY key=<K> body=<B> sum=<16 hex>     (N times)
//   <K key bytes>\n
//   <B body bytes>\n
//   END sum=<16 hex>
//
// Per-entry `sum` is FNV-1a 64 over key + body; the trailing END sum
// chains every entry sum, so truncation and reordering are detected as
// well as flipped bytes. Loading is defensive end to end: a version
// mismatch drops the whole snapshot (stale canonicalization schema), a
// corrupt entry is dropped and loading continues, broken framing drops
// the remainder — all counted, never thrown. A missing file is simply
// zero entries (first boot).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace sherlock::serve {

/// Bump when the snapshot framing or the cache-key/canonicalization
/// schema changes incompatibly; old snapshots are then dropped whole.
inline constexpr int kCacheSnapshotVersion = 1;

struct SnapshotStats {
  size_t written = 0;  ///< entries in the snapshot just saved
  size_t loaded = 0;   ///< entries accepted on load
  size_t dropped = 0;  ///< entries rejected (corrupt/stale/truncated)
  bool ok = true;      ///< I/O-level success (false: nothing durable)
};

/// Writes `entries` (key, body) to `path` atomically. Never throws:
/// I/O failures come back as ok=false.
SnapshotStats saveCacheSnapshot(
    const std::string& path,
    const std::vector<std::pair<std::string, std::string>>& entries);

/// Streams every entry that validates out of the snapshot at `path`
/// into `sink`, in file order. Never throws; corrupt or stale content
/// is dropped and counted.
SnapshotStats loadCacheSnapshot(
    const std::string& path,
    const std::function<void(std::string key, std::string body)>& sink);

}  // namespace sherlock::serve
