// Unix-domain socket transport for the compile service: a minimal
// accept loop that speaks the serve protocol (serve/protocol.h) over
// AF_UNIX stream connections, plus the fd-backed streambuf it (and the
// socketpair-based tests) use to run the loop over raw descriptors.
//
// Scope: connections are served one at a time — concurrency lives
// *inside* a session (requests dispatch eagerly to the bounded
// executor), which is the throughput path that matters for a compile
// cache; a client that wants parallel streams opens its batches in one
// session. A session ending in SHUTDOWN stops the accept loop;
// QUIT/EOF just closes that connection.
//
// Resilience: the accept loop survives transient accept() failures
// (EINTR, ECONNABORTED, fd exhaustion) and sessions that die mid-
// request — a client disconnecting after REQ but before END yields one
// truncated-request response into a dead socket, not a daemon crash —
// and honors the drain flag: a signal interrupting accept() or an
// in-session read ends that wait instead of being retried. The "io"
// failpoint (support/failpoint.h) injects connection drops at the
// read/write level: a triggered point reads as EOF / a failed write,
// exactly what a vanished client looks like.
#pragma once

#include <atomic>
#include <streambuf>
#include <string>

#include "serve/protocol.h"

namespace sherlock::serve {

/// Bidirectional streambuf over a file descriptor (socket or pipe).
/// Does not own the descriptor. With `stop`, an EINTR'd read/write
/// checks the flag and reports EOF/failure instead of retrying, so a
/// drain signal ends a session blocked on a quiet client.
class FdStreamBuf : public std::streambuf {
 public:
  explicit FdStreamBuf(int fd, const std::atomic<bool>* stop = nullptr);

 protected:
  int_type underflow() override;
  int_type overflow(int_type ch) override;
  int sync() override;

 private:
  bool flushBuffer();
  bool stopRequested() const {
    return stop_ && stop_->load(std::memory_order_relaxed);
  }

  int fd_;
  const std::atomic<bool>* stop_;
  char inBuf_[4096];
  char outBuf_[4096];
};

/// Runs one protocol session over an open descriptor (used per accepted
/// connection and by the socketpair tests). Never throws for
/// session-level problems: a connection dying mid-protocol ends the
/// session, not the server.
ServeLoopResult serveFd(int fd, CompileService& service,
                        const ServeLoopOptions& options);

/// Binds `path` (unlinking any stale socket first), accepts connections
/// until a session issues SHUTDOWN or `options.stop` flips, and serves
/// each with serveFd. Returns the number of sessions served; throws
/// Error only for setup failures (bind/listen) — accept-time errors are
/// retried or ride out the affected connection.
uint64_t runUnixSocketServer(const std::string& path,
                             CompileService& service,
                             const ServeLoopOptions& options);

}  // namespace sherlock::serve
