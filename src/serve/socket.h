// Unix-domain socket transport for the compile service: a minimal
// accept loop that speaks the serve protocol (serve/protocol.h) over
// AF_UNIX stream connections, plus the fd-backed streambuf it (and the
// socketpair-based tests) use to run the loop over raw descriptors.
//
// Scope: connections are served one at a time — concurrency lives
// *inside* a session (batches fan out on the thread pool), which is the
// throughput path that matters for a compile cache; a client that wants
// parallel streams opens its batches in one session. A session ending
// in SHUTDOWN stops the accept loop; QUIT/EOF just closes that
// connection.
#pragma once

#include <streambuf>
#include <string>

#include "serve/protocol.h"

namespace sherlock::serve {

/// Bidirectional streambuf over a file descriptor (socket or pipe).
/// Does not own the descriptor.
class FdStreamBuf : public std::streambuf {
 public:
  explicit FdStreamBuf(int fd);

 protected:
  int_type underflow() override;
  int_type overflow(int_type ch) override;
  int sync() override;

 private:
  bool flushBuffer();

  int fd_;
  char inBuf_[4096];
  char outBuf_[4096];
};

/// Runs one protocol session over an open descriptor (used per accepted
/// connection and by the socketpair tests).
ServeLoopResult serveFd(int fd, CompileService& service,
                        const ServeLoopOptions& options);

/// Binds `path` (unlinking any stale socket first), accepts connections
/// until a session issues SHUTDOWN, and serves each with serveFd.
/// Returns the number of sessions served; throws Error on socket
/// failures.
uint64_t runUnixSocketServer(const std::string& path,
                             CompileService& service,
                             const ServeLoopOptions& options);

}  // namespace sherlock::serve
