#include "serve/protocol.h"

#include <chrono>
#include <future>
#include <istream>
#include <memory>
#include <ostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "serve/executor.h"
#include "support/cancel.h"
#include "support/diagnostics.h"
#include "support/trace.h"

namespace sherlock::serve {

namespace {

using Clock = std::chrono::steady_clock;

/// One admitted request. Either it failed before dispatch (error/code
/// carry the diagnostic and the response is synthesized at flush) or it
/// was handed to the executor and `future` yields its response.
struct PendingRequest {
  std::string id;
  std::string error;  ///< pre-dispatch failure (empty = dispatched)
  std::string code;   ///< machine code for `error`
  /// Deadline/cancel handle shared with the executor task, kept here so
  /// a draining session can tighten every in-flight deadline at once.
  std::shared_ptr<CancelToken> cancel;
  std::future<CompileResponse> future;
};

long parseLong(const std::string& key, const std::string& value) {
  try {
    size_t pos = 0;
    long parsed = std::stol(value, &pos);
    if (pos == value.size()) return parsed;
  } catch (const std::exception&) {
  }
  throw Error(strCat("option ", key, " expects an integer, got '", value,
                     "'"));
}

double parseDouble(const std::string& key, const std::string& value) {
  try {
    size_t pos = 0;
    double parsed = std::stod(value, &pos);
    if (pos == value.size()) return parsed;
  } catch (const std::exception&) {
  }
  throw Error(strCat("option ", key, " expects a number, got '", value,
                     "'"));
}

/// Applies one key=value pair onto the request options. Throws Error on
/// unknown keys or malformed values so a typo'd request fails loudly
/// instead of silently compiling with defaults.
void applyOption(RequestOptions& o, const std::string& key,
                 const std::string& value) {
  if (key == "lang") o.lang = value;
  else if (key == "emit") o.emit = value;
  else if (key == "target") o.targetDim = static_cast<int>(parseLong(key, value));
  else if (key == "tech") o.tech = value;
  else if (key == "strategy") o.strategy = value;
  else if (key == "mra") o.mra = static_cast<int>(parseLong(key, value));
  else if (key == "fraction") o.fraction = parseDouble(key, value);
  else if (key == "grid") o.grid = value;
  else if (key == "hop-cost") o.hopCost = parseDouble(key, value);
  else if (key == "fault-density") o.faultDensity = parseDouble(key, value);
  else if (key == "fault-seed")
    o.faultSeed = static_cast<uint64_t>(parseLong(key, value));
  else if (key == "spare-rows")
    o.spareRows = static_cast<int>(parseLong(key, value));
  else if (key == "nand") o.nandLower = parseLong(key, value) != 0;
  else if (key == "opt") o.aggressive = parseLong(key, value) != 0;
  else if (key == "deadline-ms") {
    o.deadlineMs = parseDouble(key, value);
    checkArg(o.deadlineMs >= 0, "deadline-ms must be >= 0");
  } else throw Error(strCat("unknown option '", key, "'"));
}

void writeResponse(std::ostream& out, const std::string& id,
                   const CompileResponse& response) {
  if (response.ok) {
    out << "RESP " << id << " ok hit=" << (response.cacheHit ? 1 : 0)
        << " direct=" << (response.direct ? 1 : 0)
        << " coalesced=" << (response.coalesced ? 1 : 0)
        << " bytes=" << response.payload.size() << " key=" << response.key
        << " compile_us=" << response.compileUs
        << " total_us=" << response.totalUs << "\n";
  } else {
    out << "RESP " << id << " error code="
        << (response.code.empty() ? "compile_error" : response.code)
        << " bytes=" << response.payload.size() << "\n";
  }
  out << response.payload;
}

/// Reads one '\n'-terminated line (the newline is consumed, not
/// stored). Bytes beyond `cap` are discarded, not buffered — a hostile
/// or corrupt client can't balloon the daemon's memory — and `overLimit`
/// reports that the line was cut. Returns false only at EOF with
/// nothing consumed.
bool boundedGetline(std::istream& in, std::string& line, size_t cap,
                    bool& overLimit) {
  line.clear();
  overLimit = false;
  std::streambuf* buf = in.rdbuf();
  bool any = false;
  for (;;) {
    int c = buf->sbumpc();
    if (c == std::char_traits<char>::eof()) {
      if (!any) in.setstate(std::ios::eofbit | std::ios::failbit);
      return any;
    }
    any = true;
    if (c == '\n') return true;
    if (line.size() < cap)
      line.push_back(static_cast<char>(c));
    else
      overLimit = true;
  }
}

}  // namespace

ServeLoopResult runServeLoop(std::istream& in, std::ostream& out,
                             CompileService& service,
                             const ServeLoopOptions& options) {
  ServeLoopResult result;
  int workers =
      options.maxInflight > 0 ? options.maxInflight : options.threads;
  RequestExecutor executor(workers, options.maxQueue);
  std::vector<PendingRequest> pending;
  // Sequential per-session trace track ids, assigned while the REQ is
  // parsed (single-threaded), so the trace of one request is identical
  // whatever executor thread later compiles it.
  uint32_t nextTrack = 1;

  auto stopRequested = [&] {
    return options.stop &&
           options.stop->load(std::memory_order_relaxed);
  };
  auto publishLoad = [&] {
    service.setLoadGauges(executor.inflight(), executor.queueDepth());
  };
  auto persistIfDirty = [&] {
    if (!options.cachePersistPath.empty() && service.cacheDirty())
      service.saveCache(options.cachePersistPath);
  };

  // Waits out every pending response and writes them in request order.
  auto flush = [&] {
    for (PendingRequest& request : pending) {
      CompileResponse response;
      if (!request.error.empty()) {
        response.ok = false;
        response.code = request.code;
        response.payload = strCat("error: ", request.error, "\n");
      } else {
        response = request.future.get();
      }
      writeResponse(out, request.id, response);
    }
    result.requests += pending.size();
    pending.clear();
    publishLoad();
    persistIfDirty();
    out.flush();
  };

  std::string line;
  bool overLimit = false;
  while (!stopRequested() &&
         boundedGetline(in, line, options.maxRequestBytes, overLimit)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    std::istringstream ls(line);
    std::string directive;
    if (!(ls >> directive)) continue;
    if (directive[0] == '#') continue;

    if (directive == "REQ") {
      PendingRequest request;
      RequestOptions reqOptions = options.defaults;
      if (!(ls >> request.id)) {
        out << "PROTOCOL-ERROR REQ needs an id\n";
        out.flush();
        continue;
      }
      if (overLimit) {
        request.error = strCat("request line exceeds ",
                               options.maxRequestBytes, " bytes");
        request.code = "request_too_large";
      }
      std::string pair;
      while (ls >> pair) {
        size_t eq = pair.find('=');
        try {
          checkArg(eq != std::string::npos && eq > 0,
                   strCat("malformed option '", pair, "'"));
          applyOption(reqOptions, pair.substr(0, eq),
                      pair.substr(eq + 1));
        } catch (const Error& e) {
          if (request.error.empty()) {
            request.error = e.what();
            request.code = "bad_option";
          }
        }
      }
      // Body lines verbatim until END, with the body (not just single
      // lines) held to maxRequestBytes: an oversized body keeps being
      // consumed — so the protocol stream stays in sync — but no longer
      // buffered. EOF before END is a truncated request: report it
      // instead of compiling a half kernel.
      bool terminated = false;
      bool tooLarge = false;
      std::string body;
      while (boundedGetline(in, line, options.maxRequestBytes,
                            overLimit)) {
        if (!line.empty() && line.back() == '\r') line.pop_back();
        if (line == "END") {
          terminated = true;
          break;
        }
        if (overLimit ||
            body.size() + line.size() + 1 > options.maxRequestBytes) {
          tooLarge = true;
          continue;
        }
        body += line;
        body += '\n';
      }
      if (request.error.empty()) {
        if (tooLarge) {
          request.error = strCat("request body exceeds ",
                                 options.maxRequestBytes, " bytes");
          request.code = "request_too_large";
        } else if (!terminated) {
          request.error = "truncated request: EOF before END";
          request.code = "truncated";
        }
      }

      if (request.error.empty()) {
        // Dispatch now — the loop keeps reading while this compiles —
        // or shed immediately if the executor is saturated. The BUSY
        // line jumps the RESP ordering on purpose: a client throttling
        // on it needs the signal now, not after the batch drains.
        request.cancel = std::make_shared<CancelToken>();
        if (reqOptions.deadlineMs > 0)
          request.cancel->tightenAfterMs(reqOptions.deadlineMs);
        auto promise = std::make_shared<std::promise<CompileResponse>>();
        request.future = promise->get_future();
        uint32_t track = nextTrack++;
        auto task = [&service, promise, cancel = request.cancel, track,
                     id = request.id, source = std::move(body),
                     reqOptions, enqueued = Clock::now()] {
          trace::ScopedTrack scopedTrack(track, strCat("req ", id));
          double waitUs = std::chrono::duration<double, std::micro>(
                              Clock::now() - enqueued)
                              .count();
          service.recordQueueWait(waitUs);
          // Wall-clock values would break the deterministic clock's
          // byte-stability guarantee, so they stay out of the args.
          std::string args;
          if (!trace::Tracer::instance().deterministic())
            args = strCat("\"queue_wait_us\": ", waitUs);
          trace::Span span("serve", "request", std::move(args));
          promise->set_value(
              service.handle(source, reqOptions, cancel.get()));
        };
        if (!executor.trySubmit(std::move(task))) {
          out << "BUSY " << request.id
              << " retry_after_ms=" << options.retryAfterMs << "\n";
          out.flush();
          service.noteShed();
          publishLoad();
          ++result.shed;
          continue;
        }
        publishLoad();
      }
      pending.push_back(std::move(request));
      if (pending.size() >= options.maxBatch) flush();
    } else if (directive == "FLUSH") {
      flush();
    } else if (directive == "STATS") {
      flush();
      std::string json = service.metricsJson();
      out << "STATS-RESP bytes=" << json.size() << "\n" << json;
      out.flush();
    } else if (directive == "TRACE") {
      flush();
      std::string json = trace::Tracer::instance().exportJson();
      out << "TRACE-RESP bytes=" << json.size() << "\n" << json;
      out.flush();
    } else if (directive == "QUIT") {
      flush();
      return result;
    } else if (directive == "SHUTDOWN") {
      flush();
      result.shutdown = true;
      return result;
    } else {
      out << "PROTOCOL-ERROR unknown directive '" << directive << "'\n";
      out.flush();
    }
  }

  // EOF or a drain signal. Give whatever is still in flight a bounded
  // grace — tightening each token to now + drainDeadlineMs turns a
  // stuck compile into a deadline_exceeded response instead of a hung
  // shutdown — then write everything out.
  if (stopRequested()) {
    for (PendingRequest& request : pending)
      if (request.cancel) request.cancel->tightenAfterMs(options.drainDeadlineMs);
  }
  flush();
  return result;
}

}  // namespace sherlock::serve
