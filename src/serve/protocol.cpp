#include "serve/protocol.h"

#include <chrono>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "support/diagnostics.h"
#include "support/parallel.h"
#include "support/trace.h"

namespace sherlock::serve {

namespace {

using Clock = std::chrono::steady_clock;

/// One queued request: either ready to compile or already failed at
/// option parsing (error carries the diagnostic).
struct PendingRequest {
  std::string id;
  RequestOptions options;
  std::string source;
  std::string error;
  /// Logical trace track (assigned sequentially at REQ-parse time so
  /// deterministic traces are independent of pool scheduling).
  uint32_t track = 0;
  /// When the REQ finished parsing — queue wait is measured from here
  /// to the moment a pool thread picks the request up.
  Clock::time_point enqueued;
};

long parseLong(const std::string& key, const std::string& value) {
  try {
    size_t pos = 0;
    long parsed = std::stol(value, &pos);
    if (pos == value.size()) return parsed;
  } catch (const std::exception&) {
  }
  throw Error(strCat("option ", key, " expects an integer, got '", value,
                     "'"));
}

double parseDouble(const std::string& key, const std::string& value) {
  try {
    size_t pos = 0;
    double parsed = std::stod(value, &pos);
    if (pos == value.size()) return parsed;
  } catch (const std::exception&) {
  }
  throw Error(strCat("option ", key, " expects a number, got '", value,
                     "'"));
}

/// Applies one key=value pair onto the request options. Throws Error on
/// unknown keys or malformed values so a typo'd request fails loudly
/// instead of silently compiling with defaults.
void applyOption(RequestOptions& o, const std::string& key,
                 const std::string& value) {
  if (key == "lang") o.lang = value;
  else if (key == "emit") o.emit = value;
  else if (key == "target") o.targetDim = static_cast<int>(parseLong(key, value));
  else if (key == "tech") o.tech = value;
  else if (key == "strategy") o.strategy = value;
  else if (key == "mra") o.mra = static_cast<int>(parseLong(key, value));
  else if (key == "fraction") o.fraction = parseDouble(key, value);
  else if (key == "grid") o.grid = value;
  else if (key == "hop-cost") o.hopCost = parseDouble(key, value);
  else if (key == "fault-density") o.faultDensity = parseDouble(key, value);
  else if (key == "fault-seed")
    o.faultSeed = static_cast<uint64_t>(parseLong(key, value));
  else if (key == "spare-rows")
    o.spareRows = static_cast<int>(parseLong(key, value));
  else if (key == "nand") o.nandLower = parseLong(key, value) != 0;
  else if (key == "opt") o.aggressive = parseLong(key, value) != 0;
  else throw Error(strCat("unknown option '", key, "'"));
}

void writeResponse(std::ostream& out, const std::string& id,
                   const CompileResponse& response) {
  if (response.ok) {
    out << "RESP " << id << " ok hit=" << (response.cacheHit ? 1 : 0)
        << " direct=" << (response.direct ? 1 : 0)
        << " coalesced=" << (response.coalesced ? 1 : 0)
        << " bytes=" << response.payload.size() << " key=" << response.key
        << " compile_us=" << response.compileUs
        << " total_us=" << response.totalUs << "\n";
  } else {
    out << "RESP " << id << " error bytes=" << response.payload.size()
        << "\n";
  }
  out << response.payload;
}

}  // namespace

ServeLoopResult runServeLoop(std::istream& in, std::ostream& out,
                             CompileService& service,
                             const ServeLoopOptions& options) {
  ServeLoopResult result;
  ThreadPool pool(options.threads);
  std::vector<PendingRequest> pending;
  // Sequential per-session trace track ids, assigned while the REQ is
  // parsed (single-threaded), so the trace of one request is identical
  // whatever pool thread later compiles it.
  uint32_t nextTrack = 1;

  auto flush = [&] {
    if (!pending.empty()) {
      std::vector<CompileResponse> responses =
          parallelMap(pool, pending, [&](const PendingRequest& request) {
            trace::ScopedTrack track(request.track,
                                     strCat("req ", request.id));
            double waitUs = std::chrono::duration<double, std::micro>(
                                Clock::now() - request.enqueued)
                                .count();
            service.recordQueueWait(waitUs);
            // Wall-clock values would break the deterministic clock's
            // byte-stability guarantee, so they stay out of the args.
            std::string args;
            if (!trace::Tracer::instance().deterministic())
              args = strCat("\"queue_wait_us\": ", waitUs);
            trace::Span span("serve", "request", std::move(args));
            if (!request.error.empty()) {
              CompileResponse r;
              r.ok = false;
              r.payload = strCat("error: ", request.error, "\n");
              return r;
            }
            return service.handle(request.source, request.options);
          });
      for (size_t i = 0; i < pending.size(); ++i)
        writeResponse(out, pending[i].id, responses[i]);
      result.requests += pending.size();
      pending.clear();
    }
    out.flush();
  };

  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    std::istringstream ls(line);
    std::string directive;
    if (!(ls >> directive)) continue;
    if (directive[0] == '#') continue;

    if (directive == "REQ") {
      PendingRequest request;
      request.options = options.defaults;
      if (!(ls >> request.id)) {
        out << "PROTOCOL-ERROR REQ needs an id\n";
        continue;
      }
      std::string pair;
      while (ls >> pair) {
        size_t eq = pair.find('=');
        try {
          checkArg(eq != std::string::npos && eq > 0,
                   strCat("malformed option '", pair, "'"));
          applyOption(request.options, pair.substr(0, eq),
                      pair.substr(eq + 1));
        } catch (const Error& e) {
          if (request.error.empty()) request.error = e.what();
        }
      }
      // Body lines verbatim until END. EOF before END is a truncated
      // request: report it instead of compiling a half kernel.
      bool terminated = false;
      std::string body;
      while (std::getline(in, line)) {
        if (!line.empty() && line.back() == '\r') line.pop_back();
        if (line == "END") {
          terminated = true;
          break;
        }
        body += line;
        body += '\n';
      }
      if (!terminated && request.error.empty())
        request.error = "truncated request: EOF before END";
      request.source = std::move(body);
      request.track = nextTrack++;
      request.enqueued = Clock::now();
      pending.push_back(std::move(request));
      if (pending.size() >= options.maxBatch) flush();
    } else if (directive == "FLUSH") {
      flush();
    } else if (directive == "STATS") {
      flush();
      std::string json = service.metricsJson();
      out << "STATS-RESP bytes=" << json.size() << "\n" << json;
      out.flush();
    } else if (directive == "TRACE") {
      flush();
      std::string json = trace::Tracer::instance().exportJson();
      out << "TRACE-RESP bytes=" << json.size() << "\n" << json;
      out.flush();
    } else if (directive == "QUIT") {
      flush();
      return result;
    } else if (directive == "SHUTDOWN") {
      flush();
      result.shutdown = true;
      return result;
    } else {
      out << "PROTOCOL-ERROR unknown directive '" << directive << "'\n";
      out.flush();
    }
  }
  flush();
  return result;
}

}  // namespace sherlock::serve
