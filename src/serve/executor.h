// Bounded request executor for the serve loop: a small worker pool fed
// by an explicitly bounded FIFO, giving the daemon real backpressure.
//
// Unlike support/parallel.h's ThreadPool (batch-oriented parallelFor,
// caller participates, no queue), serving needs individually submitted
// tasks with admission control: the protocol loop stays free to read,
// shed, and answer while compiles run, and a request that can't be
// admitted is rejected *now* (the loop answers BUSY within
// milliseconds) instead of queueing unboundedly.
//
// Admission rule: a task is admitted while fewer than
// `workers + maxQueue` tasks are outstanding (queued or running) —
// i.e. up to `workers` compiles in flight plus `maxQueue` waiting.
// trySubmit() returns false beyond that; the caller load-sheds.
//
// The destructor drains: queued tasks still run (their futures are
// awaited by the serve loop's final flush) and workers are joined.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sherlock::serve {

class RequestExecutor {
 public:
  /// `workers` <= 0 selects the SHERLOCK_THREADS / hardware default.
  RequestExecutor(int workers, size_t maxQueue);
  ~RequestExecutor();

  RequestExecutor(const RequestExecutor&) = delete;
  RequestExecutor& operator=(const RequestExecutor&) = delete;

  /// Enqueues `task` unless the admission bound is hit; false = shed
  /// (the task was not accepted and will never run). Tasks must not
  /// throw — report failures through their own channel.
  bool trySubmit(std::function<void()> task);

  size_t workerCount() const { return workers_.size(); }
  /// Tasks waiting for a worker right now.
  size_t queueDepth() const;
  /// Tasks executing right now.
  size_t inflight() const;
  /// queueDepth + inflight.
  size_t outstanding() const;

 private:
  void workerLoop();

  mutable std::mutex mu_;
  std::condition_variable workReady_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  size_t maxOutstanding_;
  size_t running_ = 0;
  bool shutdown_ = false;
};

}  // namespace sherlock::serve
