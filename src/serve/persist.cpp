#include "serve/persist.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "support/diagnostics.h"
#include "support/failpoint.h"

namespace sherlock::serve {

namespace {

uint64_t fnv1a(const std::string& s,
               uint64_t h = 1469598103934665603ULL) {
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

std::string hex64(uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

uint64_t entrySum(const std::string& key, const std::string& body) {
  return fnv1a(body, fnv1a(key));
}

/// Writes the whole buffer to an O_CREAT temp file, fsyncs, and renames
/// over `path` — the atomicity that makes a mid-write kill harmless.
bool writeAtomically(const std::string& path, const std::string& data) {
  std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  const char* p = data.data();
  size_t left = data.size();
  while (left > 0) {
    ssize_t n = ::write(fd, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ::unlink(tmp.c_str());
      return false;
    }
    p += n;
    left -= static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0 || ::close(fd) != 0) {
    ::unlink(tmp.c_str());
    return false;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace

SnapshotStats saveCacheSnapshot(
    const std::string& path,
    const std::vector<std::pair<std::string, std::string>>& entries) {
  SnapshotStats stats;
  try {
    failpoint::check("persist");
    std::ostringstream out;
    out << "sherlock-cache v" << kCacheSnapshotVersion
        << " entries=" << entries.size() << "\n";
    uint64_t chain = 1469598103934665603ULL;
    for (const auto& [key, body] : entries) {
      uint64_t sum = entrySum(key, body);
      chain = fnv1a(hex64(sum), chain);
      out << "ENTRY key=" << key.size() << " body=" << body.size()
          << " sum=" << hex64(sum) << "\n"
          << key << "\n"
          << body << "\n";
    }
    out << "END sum=" << hex64(chain) << "\n";
    stats.ok = writeAtomically(path, out.str());
    stats.written = stats.ok ? entries.size() : 0;
  } catch (const std::exception&) {
    stats.ok = false;
  }
  return stats;
}

SnapshotStats loadCacheSnapshot(
    const std::string& path,
    const std::function<void(std::string key, std::string body)>& sink) {
  SnapshotStats stats;
  try {
    failpoint::check("persist");
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      // Missing snapshot is a cold first boot, not an error.
      stats.ok = false;
      return stats;
    }

    std::string header;
    if (!std::getline(in, header)) return stats;
    std::istringstream hs(header);
    std::string magic, version;
    size_t declared = 0;
    hs >> magic >> version;
    std::string entriesField;
    hs >> entriesField;
    if (magic != "sherlock-cache" ||
        version != strCat("v", kCacheSnapshotVersion) ||
        entriesField.rfind("entries=", 0) != 0) {
      // Unknown or stale snapshot schema: drop it whole.
      stats.dropped = 1;
      return stats;
    }
    try {
      declared = std::stoul(entriesField.substr(8));
    } catch (const std::exception&) {
      stats.dropped = 1;
      return stats;
    }

    uint64_t chain = 1469598103934665603ULL;
    size_t seen = 0;
    for (; seen < declared; ++seen) {
      std::string entryLine;
      if (!std::getline(in, entryLine)) break;  // truncated
      size_t keyBytes = 0, bodyBytes = 0;
      std::string sumHex;
      {
        std::istringstream es(entryLine);
        std::string tag, keyField, bodyField, sumField;
        es >> tag >> keyField >> bodyField >> sumField;
        if (tag != "ENTRY" || keyField.rfind("key=", 0) != 0 ||
            bodyField.rfind("body=", 0) != 0 ||
            sumField.rfind("sum=", 0) != 0)
          break;  // framing broken: can't resync reliably
        try {
          keyBytes = std::stoul(keyField.substr(4));
          bodyBytes = std::stoul(bodyField.substr(5));
        } catch (const std::exception&) {
          break;
        }
        sumHex = sumField.substr(4);
      }
      std::string key(keyBytes, '\0'), body(bodyBytes, '\0');
      if (!in.read(key.data(), static_cast<std::streamsize>(keyBytes)) ||
          in.get() != '\n' ||
          !in.read(body.data(),
                   static_cast<std::streamsize>(bodyBytes)) ||
          in.get() != '\n')
        break;  // truncated mid-entry
      uint64_t sum = entrySum(key, body);
      chain = fnv1a(sumHex, chain);
      if (hex64(sum) != sumHex) {
        ++stats.dropped;  // flipped bytes: drop this entry, keep going
        continue;
      }
      sink(std::move(key), std::move(body));
      ++stats.loaded;
    }
    stats.dropped += declared - seen;

    std::string trailer;
    if (!std::getline(in, trailer) ||
        trailer != strCat("END sum=", hex64(chain))) {
      // The chain disagrees (reordered/foreign entries slipped the
      // per-entry sums, or the trailer is gone). Entries already
      // validated individually stay loaded; just flag the mismatch.
      if (stats.dropped == 0 && seen == declared) ++stats.dropped;
    }
  } catch (const std::exception&) {
    stats.ok = false;
  }
  return stats;
}

}  // namespace sherlock::serve
