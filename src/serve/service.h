// Long-running compile service: a content-addressed, bounded-LRU
// compile cache with single-flight deduplication, the ROADMAP "never
// compile the same kernel twice" subsystem.
//
// A request carries a kernel (sherlock-dag text or kernel-language
// source) plus per-request compile options. The service canonicalizes
// the DAG (constant fold + CSE + dead-node elimination, then the
// isomorphism-invariant renumbering of ir/canonical.h) and keys the
// cache on
//
//   (canonical DAG fingerprint, mapping strategy, array dim, MRA,
//    technology, grid + hop cost, fault policy, NAND lowering,
//    aggressive-opt flag, emit kind)
//
// — everything the emitted program bytes depend on. The cached body is
// compiled from the *canonical* graph, so every member of an
// equivalence class (alpha-renamed, renumbered, operand-commuted
// variants) receives byte-identical program text; a per-request binding
// header maps the caller's input names onto the canonical "i<k>" names.
//
// The cache is two-level, after ccache's direct/preprocessor split: a
// "direct mode" LRU memo keyed on the exact source bytes + options
// serves byte-identical repeats without re-parsing or re-canonicalizing
// (the dominant cost of a canonical-level hit), and the canonical cache
// behind it catches renamed/renumbered/commuted variants. Both levels
// share the configured capacity; a memo entry pins its payload, so a
// direct hit stays byte-correct even if the canonical entry behind it
// was evicted.
//
// Concurrency: handle() is safe to call from any number of threads
// (the serve loop fans batches out on the PR-1 thread pool). Lookups
// take one short mutex; compiles run outside it. Two in-flight requests
// for the same key compile once: the second waits on the first's
// shared_future (single-flight), counted as `coalesced` in the metrics.
#pragma once

#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "support/cancel.h"
#include "support/lru_cache.h"
#include "support/metrics.h"

namespace sherlock::serve {

/// Per-request compile options; defaults mirror sherlockc's. The serve
/// loop overlays protocol key=value pairs onto the daemon-wide defaults.
struct RequestOptions {
  std::string lang = "dag";  ///< "dag" (ir/serialize) | "kernel" (.sk)
  std::string emit = "asm";  ///< "asm" | "stats"
  int targetDim = 512;
  std::string tech = "reram";
  std::string strategy = "opt";
  int mra = 2;
  double fraction = 1.0;   ///< substitution budget when mra > 2
  std::string grid;        ///< "RxC" mesh; empty = single array
  double hopCost = -1;     ///< per-hop bus latency ns; <0 = default
  double faultDensity = 0; ///< stuck density (+ density/2 weak)
  uint64_t faultSeed = 1;
  int spareRows = 0;
  bool nandLower = false;
  bool aggressive = false;  ///< -O inverter-folding pipeline
  /// Per-request deadline in milliseconds, measured from protocol
  /// admission; 0 disables. A control knob, not a compile input: it is
  /// deliberately excluded from both cache keys.
  double deadlineMs = 0;
};

struct ServiceOptions {
  /// LRU capacity in cached programs; 0 disables caching (every
  /// request cold-compiles — the bench's baseline mode).
  size_t cacheCapacity = 256;
  /// Test hook: invoked after a cold compile is chosen but before it
  /// runs, outside the service lock. Lets tests hold the first compile
  /// in flight while piling up coalescing requests.
  std::function<void(const std::string& key)> onColdCompile;
};

struct CompileResponse {
  bool ok = false;
  bool cacheHit = false;    ///< served straight from the LRU
  bool direct = false;      ///< exact-source memo hit (implies cacheHit)
  bool coalesced = false;   ///< waited on an identical in-flight compile
  std::string payload;      ///< binding header + program text, or error
  std::string key;          ///< full cache key (fingerprint + config)
  /// Machine-readable failure class when !ok: "deadline_exceeded",
  /// "injected_fault", or "compile_error". The protocol layer adds its
  /// own codes ("request_too_large", "truncated", "bad_option").
  std::string code;
  double totalUs = 0;       ///< wall-clock of handle()
  double compileUs = 0;     ///< cold-compile portion (0 on hit)
};

/// Snapshot of the service counters + latency percentiles, rebuilt from
/// the MetricsRegistry for struct-typed consumers (tests, benches).
struct ServiceStats {
  CacheCounters counters;
  size_t cacheSize = 0;
  size_t cacheCapacity = 0;
  double hitP50Us = 0, hitP99Us = 0;
  double coldP50Us = 0, coldP99Us = 0;
  double hitMeanUs = 0, coldMeanUs = 0;

  /// Legacy flat JSON object. The serve protocol's STATS verb and
  /// sherlockc --metrics-out emit CompileService::metricsJson() (the
  /// unified MetricsRegistry schema) instead.
  std::string toJson() const;
};

/// Counts accepted/rejected entries of a cache snapshot operation.
struct PersistResult {
  size_t entries = 0;  ///< written (save) or accepted (load)
  size_t dropped = 0;  ///< rejected as corrupt/stale on load
  bool ok = true;      ///< I/O-level success
};

class CompileService {
 public:
  explicit CompileService(ServiceOptions options = {});

  /// Compiles (or serves from cache) one kernel. Never throws: failures
  /// come back as ok=false with the diagnostic in payload and the
  /// failure class in code. `cancel` (optional) is checkpointed between
  /// phases — admission, post-parse, post-canonicalize, pre-compile and
  /// while waiting on a coalesced compile — so an expired deadline
  /// aborts the request cooperatively with code "deadline_exceeded".
  CompileResponse handle(const std::string& source,
                         const RequestOptions& options,
                         const CancelToken* cancel = nullptr);

  ServiceStats stats() const;

  /// Load-shed accounting: the serve loop reports each BUSY rejection
  /// ("serve.shed" counter) and the executor's current load
  /// ("serve.inflight" / "serve.queue_depth" gauges).
  void noteShed();
  void setLoadGauges(size_t inflight, size_t queueDepth);

  /// Cache persistence (serve/persist.h): saveCache snapshots the
  /// canonical program cache (LRU→MRU order, so a reload rebuilds the
  /// same recency) atomically; loadCache warms it entry by entry,
  /// dropping anything corrupt or stale. Counters:
  /// serve.persist_saved/_loaded/_dropped/_errors.
  PersistResult saveCache(const std::string& path);
  PersistResult loadCache(const std::string& path);

  /// True when the canonical cache changed since the last saveCache()
  /// or loadCache() — the serve loop persists only then.
  bool cacheDirty() const;

  /// Records how long a request sat queued before handle() ran (the
  /// serve loop measures REQ-parse to dispatch) into the
  /// "serve.queue_wait_us" histogram.
  void recordQueueWait(double us);

  /// Unified MetricsRegistry JSON (counters "serve.*", gauges, and the
  /// hit/cold/queue-wait histograms) — the STATS verb response and the
  /// sherlockc --serve --metrics-out artifact.
  std::string metricsJson() const;

  /// The cache key handle() would use, exposed for key tests.
  static std::string cacheKey(const std::string& fingerprint,
                              const RequestOptions& options);

  /// The direct-mode memo key for an exact source + options pair.
  static std::string directKey(const std::string& source,
                               const RequestOptions& options);

 private:
  struct Inflight {
    std::shared_future<std::shared_ptr<const std::string>> future;
  };

  /// A completed response pinned by the direct-mode memo: the full
  /// payload (binding header + body) plus the canonical cache key it
  /// resolved to.
  struct DirectEntry {
    std::shared_ptr<const std::string> payload;
    std::string key;
  };

  /// Compiles the canonical graph into the cacheable body text.
  std::string compileBody(const struct CanonicalRequest& request) const;

  /// Publishes the derived gauges (hit rate, cache occupancy) into the
  /// registry; callers hold mu_.
  void publishGaugesLocked() const;

  ServiceOptions options_;
  mutable std::mutex mu_;
  LruCache<std::string, DirectEntry> direct_;
  LruCache<std::string, std::shared_ptr<const std::string>> cache_;
  std::unordered_map<std::string, Inflight> inflight_;
  /// Bumped on every canonical-cache insert; cacheDirty() compares it
  /// against the generation last persisted.
  uint64_t cacheGeneration_ = 0;
  uint64_t persistedGeneration_ = 0;
  /// Single store for every service counter/gauge/histogram; thread-safe
  /// on its own lock (safe to touch with or without mu_ held).
  mutable MetricsRegistry metrics_;
};

}  // namespace sherlock::serve
