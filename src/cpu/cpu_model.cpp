#include "cpu/cpu_model.h"

#include <algorithm>

#include "support/diagnostics.h"

namespace sherlock::cpu {

CpuResult estimateCpu(const ir::Graph& g, int bulkBits,
                      const CpuParams& params) {
  checkArg(bulkBits > 0, "bulkBits must be positive");

  CpuResult r;
  long wordsPerValue = (bulkBits + 63) / 64;

  // Count word-level operations and memory accesses (one load per operand
  // occurrence, one store per produced value).
  long loads = 0, stores = 0, aluOps = 0;
  for (ir::NodeId i = g.firstId(); i < g.endId(); ++i) {
    const ir::Node& n = g.node(i);
    if (!n.isOp()) continue;
    loads += static_cast<long>(n.operands.size()) * wordsPerValue;
    stores += wordsPerValue;
    // A k-operand bitwise op takes k-1 two-input word ops (plus the final
    // negation for inverted forms, folded into the same count).
    aluOps +=
        std::max<long>(1, static_cast<long>(n.operands.size()) - 1) *
        wordsPerValue;
  }
  r.wordOps = aluOps;
  r.workingSetBytes =
      static_cast<long>(g.valueCount()) * (bulkBits / 8);

  // Memory-level distribution of loads by working-set residency.
  double l1Frac, l2Frac, dramFrac;
  if (r.workingSetBytes <= params.l1Bytes) {
    l1Frac = 1.0;
    l2Frac = dramFrac = 0.0;
  } else if (r.workingSetBytes <= params.l2Bytes) {
    l1Frac = static_cast<double>(params.l1Bytes) / r.workingSetBytes;
    l2Frac = 1.0 - l1Frac;
    dramFrac = 0.0;
  } else {
    l1Frac = static_cast<double>(params.l1Bytes) / r.workingSetBytes;
    l2Frac = static_cast<double>(params.l2Bytes - params.l1Bytes) /
             r.workingSetBytes;
    dramFrac = 1.0 - l1Frac - l2Frac;
  }

  double cycleNs = 1.0 / params.clockGhz;
  // In-order core: every instruction occupies at least one issue cycle;
  // loads additionally pay their memory level's latency. Cache lines hold
  // 8 words, so the level penalty amortizes over 8 sequential accesses.
  double loadPenaltyNs =
      (l1Frac * params.l1LatencyCycles * cycleNs +
       (l2Frac * params.l2LatencyCycles * cycleNs +
        dramFrac * params.dramLatencyNs) /
           8.0);
  long issueSlots = loads + stores + aluOps;
  r.latencyNs = issueSlots * cycleNs + loads * loadPenaltyNs;

  double cycles = r.latencyNs / cycleNs;
  double lineAccesses = static_cast<double>(loads + stores) / 8.0;
  r.energyPj = cycles * params.coreEnergyPerCyclePj +
               lineAccesses * (l2Frac + dramFrac) *
                   params.l2EnergyPerAccessPj +
               lineAccesses * dramFrac * params.dramEnergyPerAccessPj;
  return r;
}

}  // namespace sherlock::cpu
