// CPU baseline cost model (gem5 stand-in) for the Fig. 7 energy-delay
// comparison. Models the paper's Table 1 system: in-order x86 at 1 GHz
// with 64 KiB L1D (2 cycles), 256 KiB L2 (20 cycles) and DRAM behind it.
//
// A bulk-bitwise DAG executed on the CPU processes each operation as
// ceil(W/64) 64-bit word operations (SIMD-free in-order core), each
// costing a load per operand, the ALU op, and a store. The memory level
// feeding the loads follows from the kernel's working set (live values x
// W/8 bytes) relative to the cache capacities.
#pragma once

#include "ir/graph.h"

namespace sherlock::cpu {

struct CpuParams {
  double clockGhz = 1.0;
  // Latencies in cycles (Table 1), DRAM in ns.
  int l1LatencyCycles = 2;
  int l2LatencyCycles = 20;
  double dramLatencyNs = 80.0;
  long l1Bytes = 64 * 1024;
  long l2Bytes = 256 * 1024;
  // Energy.
  double coreEnergyPerCyclePj = 40.0;   // in-order core incl. L1
  double l2EnergyPerAccessPj = 100.0;   // per 64 B line
  double dramEnergyPerAccessPj = 2000.0;
};

struct CpuResult {
  double latencyNs = 0;
  double energyPj = 0;
  long wordOps = 0;
  long workingSetBytes = 0;

  double latencyUs() const { return latencyNs * 1e-3; }
  double energyUj() const { return energyPj * 1e-6; }
  /// Energy-delay product in uJ * us (same unit as sim::SimResult::edp).
  double edp() const { return energyUj() * latencyUs(); }
};

/// Estimates latency/energy of evaluating `g` on bulk operands of
/// `bulkBits` width with the given CPU parameters.
CpuResult estimateCpu(const ir::Graph& g, int bulkBits,
                      const CpuParams& params = {});

}  // namespace sherlock::cpu
