// CIM system simulator (gem5 stand-in).
//
// Runs a compiled Program at two levels simultaneously:
//
//  * Functional: bit-accurate execution of every instruction on modeled
//    cell arrays and row buffers. Each cell holds `laneWords` packed
//    64-bit words, simulating 64 * laneWords lockstep bulk lanes per
//    column-op — one host word instruction per lane-word instead of one
//    per bit. Graph outputs are compared against the IR reference
//    evaluator — any mapper/codegen bug surfaces as a verification
//    failure. Reads of never-written cells or invalid buffer slots throw.
//
//  * Timing/energy/reliability: an in-order 1 GHz core dispatches one
//    instruction per cycle; reads occupy the array for the sensing
//    latency; writes are POSTED — they return after issue and complete in
//    the background, but a later read activating a row with a pending
//    write stalls until the programming finishes (read-after-write
//    exposure: this is what makes write-heavy DAGs technology-sensitive
//    while well-interleaved ones hide the write latency). Energy uses the
//    array cost model; every scouting column-op accumulates its
//    decision-failure probability into P_app = 1 - prod(1 - P_DFi).
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "arraymodel/array_model.h"
#include "device/faultmap.h"
#include "ir/graph.h"
#include "isa/target.h"
#include "mapping/program.h"

namespace sherlock::sim {

struct SimOptions {
  /// Packed lane-word count W: every cell/buffer value is W contiguous
  /// 64-bit words, so one run simulates 64 * W lockstep bulk lanes (the
  /// paper's 512–4096 bulk dimension at W = 8..64). Monte-Carlo harnesses
  /// trade trial count against W at equal sample count.
  int laneWords = 1;

  /// Bulk input words by input name (64-bit slice, lane word 0). Missing
  /// inputs — and lane words >= 1 of inputs not listed in `wideInputs` —
  /// get deterministic pseudo-random words derived from `inputSeed` (see
  /// defaultInputWord).
  std::map<std::string, uint64_t> inputs;

  /// Full lane-width input values: exactly `laneWords` packed words per
  /// named input. Takes precedence over `inputs` for every lane word.
  std::map<std::string, std::vector<uint64_t>> wideInputs;

  uint64_t inputSeed = 0x5eed;

  /// Compare output cells against the reference evaluator.
  bool verify = true;

  /// Statically verify the program (src/verify structural rules) before
  /// executing it: malformed streams fail with a VerificationError that
  /// pins the instruction index and violated rule instead of surfacing as
  /// a mid-execution SimulationError. Disable for hot loops that run one
  /// already-verified program many times (e.g. Monte-Carlo trials).
  bool staticVerify = true;

  /// Record per-read stall events (instruction index, stall ns, distance
  /// in instructions from the blocking write) for analysis.
  bool traceStalls = false;

  /// Monte-Carlo fault injection: every scouting column-op independently
  /// flips its result bit in each bulk lane with its decision-failure
  /// probability P_DF. Used to validate the analytic P_app model
  /// (bench_reliability_mc). Output verification then REPORTS mismatching
  /// lanes in SimResult::corruptedLaneWords instead of throwing.
  bool injectFaults = false;
  uint64_t faultSeed = 1;

  /// Persistent cell-fault model (device/faultmap.h). Stuck cells read as
  /// their pinned bit and ignore writes; weak cells multiply the P_DF of
  /// every scouting op sensing them (injection and the analytic P_app
  /// both see the inflated value); with a positive row write budget,
  /// rows wear out mid-run and convert to stuck-at-LRS. Output
  /// verification REPORTS mismatches in corruptedLaneWords instead of
  /// throwing, like injectFaults. Dimensions must match the target.
  const device::FaultMap* faultMap = nullptr;

  /// Guarded detect-and-retry execution: every scouting column-op whose
  /// effective P_DF exceeds `guardPdfThreshold` is duplicated as a check
  /// read; on mismatch the op is re-sensed up to `retryBudget` times
  /// (lockstep across the instruction's columns, with full latency and
  /// energy accounting). When the budget is exhausted the op degrades
  /// gracefully: it is split into single-row plain reads (MRA 1, the
  /// lowest-risk sensing mode) combined digitally in the row-buffer
  /// logic. Ops whose effective P_DF exceeds `degradePdfThreshold` skip
  /// the risky sense and degrade immediately: a check-read pair only
  /// detects a failure when the two samples disagree, so its residual
  /// undetected-error rate is ~P_DF^2 per lane — acceptable at 1e-4
  /// (STT-MRAM XOR at 2 rows) but not at the ~3e-3 of 3-row senses.
  /// Counters land in SimResult::{guarded,retried,degraded}Ops.
  bool guardedExecution = false;
  double guardPdfThreshold = 1e-9;
  double degradePdfThreshold = 1e-3;
  int retryBudget = 3;
};

struct StallEvent {
  size_t instructionIndex = 0;
  double stallNs = 0;
  long writeDistance = 0;  ///< instructions since the blocking write
};

struct SimResult {
  double latencyNs = 0;
  double energyPj = 0;
  /// Portion of latency spent stalled on read-after-write exposure.
  double stallNs = 0;

  /// Application failure probability (paper Sec. 4.2).
  double pApp = 0;
  /// Scouting column-operations executed (the N of the P_app product).
  long cimColumnOps = 0;

  long instructionCount = 0;
  long readCount = 0;
  long writeCount = 0;
  long shiftCount = 0;
  long moveCount = 0;
  long xferCount = 0;

  /// Inter-array bus occupancy accounting. busBusyNs is the total time
  /// the shared bus spent carrying bits (hop latency x hops, summed over
  /// every move/xfer); busWaitNs is the time transfers spent queued
  /// behind earlier traffic before the bus freed up.
  double busBusyNs = 0;
  double busWaitNs = 0;

  /// Per-opcode-class attribution: foreground time (dispatch + stalls +
  /// execution advance of `now`) and energy accumulated by each
  /// instruction class. Indexed by OpClass; latencies sum to latencyNs
  /// and energies to energyPj (xfer background completion is charged to
  /// the issuing xfer).
  enum OpClass : int {
    OpCimRead = 0,
    OpPlainRead,
    OpWrite,
    OpShift,
    OpMove,
    OpXfer,
    kOpClassCount,
  };
  struct OpcodeRollup {
    long count = 0;
    double latencyNs = 0;
    double energyPj = 0;
  };
  std::array<OpcodeRollup, kOpClassCount> opcodeRollups{};

  /// Mesh per-directed-link occupancy (configured grids only): one
  /// entry per link that carried at least one hop, in link-index order.
  /// Explains *where* bus time went on a mesh — a single saturated link
  /// with everything else idle reads very differently from uniform load.
  struct LinkStats {
    int fromArray = 0;
    int toArray = 0;
    double busyNs = 0;   ///< time this link spent carrying bits
    long transfers = 0;  ///< hop claims routed through this link
  };
  std::vector<LinkStats> linkStats;

  /// Outcome of the output comparison (options.verify): true iff every
  /// output lane matched the reference evaluator. Under injectFaults or a
  /// fault map, mismatches are recorded in corruptedLaneWords and
  /// verified reports whether any lane was actually corrupted.
  bool verified = false;

  /// Populated when SimOptions::traceStalls is set.
  std::vector<StallEvent> stallEvents;

  /// Fault injection only: number of injected bit flips, and the bulk
  /// lanes whose final outputs differ from the fault-free reference —
  /// one packed bitmask word per lane word (size laneWords; lane
  /// 64 * w + b corresponds to bit b of word w).
  long injectedFaults = 0;
  std::vector<uint64_t> corruptedLaneWords;

  /// Total corrupted lanes (popcount over corruptedLaneWords).
  long corruptedLanes() const;

  /// Fault-tolerant execution counters (faultMap / guardedExecution).
  long guardedOps = 0;      ///< column-ops that ran with a check read
  long retriedOps = 0;      ///< retry rounds after a value/check mismatch
  long degradedOps = 0;     ///< ops split to single-row reads (MRA 1)
  long stuckCellReads = 0;  ///< sensed bits forced by stuck-at cells
  long wornRows = 0;        ///< rows that exceeded the write budget

  double latencyUs() const { return latencyNs * 1e-3; }
  double energyUj() const { return energyPj * 1e-6; }
  /// Energy-delay product in uJ * us.
  double edp() const { return energyUj() * latencyUs(); }
};

/// Executes `program` (compiled from `g`) on the target. Throws
/// SimulationError on malformed programs; if options.verify is set, a
/// functional mismatch against the reference evaluator also throws.
SimResult simulate(const ir::Graph& g, const isa::TargetSpec& target,
                   const mapping::Program& program,
                   const SimOptions& options = {});

/// Human-readable name of a SimResult::OpClass index ("cim_read",
/// "plain_read", "write", "shift", "move", "xfer").
const char* opClassName(int opClass);

/// Deterministic input word for lane word `wordIndex` of a named input
/// (shared by the simulator and tests so both sides agree on unspecified
/// inputs). Word 0 reproduces the historical single-word synthesis; the
/// words of one input are consecutive draws of one name-and-seed-keyed
/// stream, so all 64 * laneWords lanes carry independent data.
uint64_t defaultInputWord(const std::string& name, uint64_t seed,
                          int wordIndex = 0);

}  // namespace sherlock::sim
