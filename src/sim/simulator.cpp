#include "sim/simulator.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <memory>
#include <optional>
#include <vector>

#include "device/reliability.h"
#include "ir/evaluator.h"
#include "support/diagnostics.h"
#include "support/rng.h"
#include "support/trace.h"
#include "verify/verifier.h"

namespace sherlock::sim {

using ir::NodeId;
using isa::InstKind;
using isa::Instruction;

namespace {

constexpr double kBufferOpLatencyNs = 0.5;   // rowless row-buffer logic

/// Functional state of one array: cells + row buffer, W packed 64-bit
/// lane words per cell position (64 * W bulk slices simulated at once).
/// Everything lives in flat contiguous uint64_t arrays — including the
/// written/valid bookkeeping, which previously sat in std::vector<bool>
/// bitmaps whose proxy references defeat autovectorization of the copy
/// and combine loops.
struct ArrayState {
  ArrayState(int rows, int cols, int laneWords)
      : rows_(rows),
        cols_(cols),
        W_(static_cast<size_t>(laneWords)),
        cells(static_cast<size_t>(rows) * cols * W_, 0),
        cellWritten((static_cast<size_t>(rows) * cols + 63) / 64, 0),
        buffer(static_cast<size_t>(cols) * W_, 0),
        bufferValid((static_cast<size_t>(cols) + 63) / 64, 0),
        writeReadyNs(static_cast<size_t>(rows) * cols, 0.0),
        writeIndex(static_cast<size_t>(rows) * cols, -1) {}

  size_t cellIndex(int row, int col) const {
    return static_cast<size_t>(row) * cols_ + col;
  }
  uint64_t* cellWords(size_t ci) { return cells.data() + ci * W_; }
  const uint64_t* cellWords(size_t ci) const {
    return cells.data() + ci * W_;
  }
  uint64_t* bufferWords(int col) {
    return buffer.data() + static_cast<size_t>(col) * W_;
  }
  bool written(size_t ci) const {
    return (cellWritten[ci >> 6] >> (ci & 63)) & 1;
  }
  void markWritten(size_t ci) {
    cellWritten[ci >> 6] |= uint64_t{1} << (ci & 63);
  }
  bool bufferIsValid(int col) const {
    return (bufferValid[static_cast<size_t>(col) >> 6] >> (col & 63)) & 1;
  }

  int rows_;
  int cols_;
  size_t W_;
  std::vector<uint64_t> cells;        ///< rows * cols * W lane words
  std::vector<uint64_t> cellWritten;  ///< packed bitmap over cell positions
  std::vector<uint64_t> buffer;       ///< cols * W lane words
  std::vector<uint64_t> bufferValid;  ///< packed bitmap over columns
  /// Completion time of the last posted write per cell (the memory
  /// controller performs read-around-write: a read stalls only on the
  /// cells it actually senses).
  std::vector<double> writeReadyNs;
  /// Instruction index of the last posted write per cell (stall tracing).
  std::vector<long> writeIndex;
};

/// Precomputed packed fault masks of one array: one bit per column,
/// `colWords` words per row. The read loop tests a bit here instead of
/// calling back into the fault map (cell-index math plus a fault-byte
/// switch) for every (row, column) pair it senses.
struct FaultMasks {
  FaultMasks(const device::FaultMap& map, int arrayId, int rows, int cols)
      : colWords_((static_cast<size_t>(cols) + 63) / 64),
        stuck(static_cast<size_t>(rows) * colWords_, 0),
        stuckHrs(static_cast<size_t>(rows) * colWords_, 0),
        weak(static_cast<size_t>(rows) * colWords_, 0) {
    for (int r = 0; r < rows; ++r) refreshRow(map, arrayId, r);
  }

  /// Re-derives one row's masks from the map (endurance wear-out converts
  /// rows to stuck mid-run).
  void refreshRow(const device::FaultMap& map, int arrayId, int row) {
    size_t off = static_cast<size_t>(row) * colWords_;
    map.packRowMasks(arrayId, row, &stuck[off], &stuckHrs[off], &weak[off]);
  }

  bool isStuck(int row, int col) const { return test(stuck, row, col); }
  bool stuckReadsOne(int row, int col) const {
    return test(stuckHrs, row, col);
  }
  bool isWeak(int row, int col) const { return test(weak, row, col); }

 private:
  bool test(const std::vector<uint64_t>& v, int row, int col) const {
    return (v[static_cast<size_t>(row) * colWords_ + (col >> 6)] >>
            (col & 63)) &
           1;
  }

  size_t colWords_;
  std::vector<uint64_t> stuck;
  std::vector<uint64_t> stuckHrs;
  std::vector<uint64_t> weak;
};

}  // namespace

long SimResult::corruptedLanes() const {
  long n = 0;
  for (uint64_t w : corruptedLaneWords) n += std::popcount(w);
  return n;
}

const char* opClassName(int opClass) {
  switch (opClass) {
    case SimResult::OpCimRead: return "cim_read";
    case SimResult::OpPlainRead: return "plain_read";
    case SimResult::OpWrite: return "write";
    case SimResult::OpShift: return "shift";
    case SimResult::OpMove: return "move";
    case SimResult::OpXfer: return "xfer";
    default: return "unknown";
  }
}

uint64_t defaultInputWord(const std::string& name, uint64_t seed,
                          int wordIndex) {
  checkArg(wordIndex >= 0, "wordIndex must be >= 0");
  uint64_t h = seed ^ 0xcbf29ce484222325ULL;
  for (unsigned char c : name) h = (h ^ c) * 0x100000001b3ULL;
  Rng rng(h);
  uint64_t w = rng();
  for (int i = 0; i < wordIndex; ++i) w = rng();
  return w;
}

SimResult simulate(const ir::Graph& g, const isa::TargetSpec& target,
                   const mapping::Program& program,
                   const SimOptions& options) {
  trace::Span simSpan("sim", "simulate");
  checkArg(options.laneWords >= 1 && options.laneWords <= 4096,
           "laneWords must be in [1, 4096]");
  const size_t W = static_cast<size_t>(options.laneWords);

  if (options.staticVerify) {
    // Structural rules only: the functional run below compares outputs
    // against the reference evaluator on concrete inputs, which subsumes
    // the symbolic equivalence check. The fault map is deliberately NOT
    // passed here: simulating a program on a map it was not compiled
    // against is a supported experiment (the mismatch surfaces as
    // corruption), not a static error.
    verify::VerifyOptions vopts;
    vopts.checkEquivalence = false;
    verify::checkProgram(g, target, program, vopts);
  }

  if (options.faultMap)
    checkArg(options.faultMap->numArrays() == target.numArrays &&
                 options.faultMap->rows() == target.rows() &&
                 options.faultMap->cols() == target.cols(),
             "fault map dimensions do not match the simulation target");
  // Endurance wear-out mutates the map (rows convert to stuck past the
  // write budget), so wear runs work on a private copy; the caller's map
  // is never modified by simulation.
  std::optional<device::FaultMap> wearMap;
  if (options.faultMap && options.faultMap->options().rowWriteBudget > 0)
    wearMap = *options.faultMap;
  device::FaultMap* mutableMap = wearMap ? &*wearMap : nullptr;
  const device::FaultMap* fmap = wearMap ? &*wearMap : options.faultMap;
  // Each weak cell sensed by an op multiplies its P_DF (clamped to the
  // discrimination bound 0.5, the same ceiling the device model uses).
  auto inflatePdf = [&](double pdf, int weakCells) -> double {
    if (weakCells <= 0 || pdf <= 0.0) return pdf;
    return std::min(
        0.5, pdf * std::pow(fmap->options().weakPdfMultiplier, weakCells));
  };

  arraymodel::ArrayCostModel cost(target.geometry, target.tech);
  const int rows = target.rows();
  const int cols = target.cols();

  // Arrays materialize lazily — programs rarely touch more than a few.
  std::vector<std::unique_ptr<ArrayState>> arrays(
      static_cast<size_t>(target.numArrays));
  auto arrayAt = [&](int a) -> ArrayState& {
    auto& slot = arrays[static_cast<size_t>(a)];
    if (!slot)
      slot = std::make_unique<ArrayState>(rows, cols,
                                          static_cast<int>(W));
    return *slot;
  };
  // Packed per-row fault masks, precomputed per touched array so the read
  // loop tests bits instead of re-querying the map per sensed cell.
  std::vector<std::unique_ptr<FaultMasks>> faultMasks(
      static_cast<size_t>(target.numArrays));
  auto masksAt = [&](int a) -> FaultMasks& {
    auto& slot = faultMasks[static_cast<size_t>(a)];
    if (!slot) slot = std::make_unique<FaultMasks>(*fmap, a, rows, cols);
    return *slot;
  };

  // Resolve leaf values once per node: named inputs from options (or
  // deterministic pseudo-random words), constants to all-zeros/all-ones.
  std::map<NodeId, std::vector<uint64_t>> leafCache;
  auto leafWords = [&](NodeId id) -> const uint64_t* {
    auto cached = leafCache.find(id);
    if (cached != leafCache.end()) return cached->second.data();
    const ir::Node& n = g.node(id);
    std::vector<uint64_t> v(W, 0);
    if (n.isConst()) {
      if (n.constValue) v.assign(W, ~uint64_t{0});
    } else {
      checkArg(n.isInput(), strCat("host write of non-leaf node ", id));
      auto wide = options.wideInputs.find(n.name);
      if (wide != options.wideInputs.end()) {
        checkArg(wide->second.size() == W,
                 strCat("wide input '", n.name, "' has ",
                        wide->second.size(), " words, expected ", W));
        v = wide->second;
      } else {
        // Consecutive draws of one name-keyed stream (defaultInputWord's
        // contract), with the scalar map overriding lane word 0.
        uint64_t h = options.inputSeed ^ 0xcbf29ce484222325ULL;
        for (unsigned char c : n.name) h = (h ^ c) * 0x100000001b3ULL;
        Rng rng(h);
        for (size_t w = 0; w < W; ++w) v[w] = rng();
        auto it = options.inputs.find(n.name);
        if (it != options.inputs.end()) v[0] = it->second;
      }
    }
    return leafCache.emplace(id, std::move(v)).first->second.data();
  };

  SimResult result;
  result.corruptedLaneWords.assign(W, 0);
  device::AppFailureAccumulator failures;
  std::map<std::pair<device::SenseKind, int>, double> pdfCache;
  auto pdfOf = [&](device::SenseKind kind, int r) {
    auto key = std::make_pair(kind, r);
    auto it = pdfCache.find(key);
    if (it == pdfCache.end())
      it = pdfCache
               .emplace(key,
                        device::decisionFailureProbability(target.tech, kind,
                                                           r))
               .first;
    return it->second;
  };

  double now = 0.0;
  // Interconnect occupancy. A move occupies the fabric synchronously; an
  // xfer hands the sensed bit to the transfer engine and the fabric leg
  // plus destination write complete in the background, so compute on the
  // issuing array overlaps with the movement.
  //
  // Without a configured grid every transfer serializes through one flat
  // bus (busFreeNs). A configured mesh instead has one directed link per
  // neighbor pair; transfers follow XY routes and claim each link for one
  // hop slot, so traffic on disjoint links proceeds in parallel and only
  // genuinely shared links queue.
  double busFreeNs = 0.0;
  std::vector<double> linkFreeNs;
  // Per-directed-link occupancy rollup (SimResult::linkStats), kept in
  // flat arrays parallel to linkFreeNs so claim() stays branch-free.
  std::vector<double> linkBusyNs;
  std::vector<long> linkTransfers;
  if (target.grid.configured()) {
    linkFreeNs.assign(static_cast<size_t>(target.grid.cells()) * 4, 0.0);
    linkBusyNs.assign(linkFreeNs.size(), 0.0);
    linkTransfers.assign(linkFreeNs.size(), 0);
  }
  // Per-hop transfer cost; the GridConfig defaults reproduce the
  // pre-grid flat bus (10 ns / 0.5 pJ-per-bit, one hop per transfer).
  const double hopLatencyNs = target.grid.hopLatencyNs;
  const double hopEnergyPj =
      target.grid.hopEnergyPerBitPj * target.geometry.dataWidthBits;
  // Routes one buffered bit from srcArray to dstArray, first requested at
  // readyNs. Returns {injectionNs, arrivalNs} and charges busWait/busBusy.
  auto routeBit = [&](int srcArray, int dstArray,
                      double readyNs) -> std::pair<double, double> {
    const int meshCells = target.grid.cells();
    if (!target.grid.configured() || srcArray >= meshCells ||
        dstArray >= meshCells || srcArray < 0 || dstArray < 0) {
      int hops = target.hopsBetween(srcArray, dstArray);
      double start = std::max(readyNs, busFreeNs);
      double end = start + hops * hopLatencyNs;
      busFreeNs = end;
      result.busWaitNs += start - readyNs;
      result.busBusyNs += hops * hopLatencyNs;
      return {start, end};
    }
    if (srcArray == dstArray) return {readyNs, readyNs};
    // XY route: column direction first, then row direction. Directed
    // links are keyed (array, direction); the bit holds each link for
    // one hop slot as it cuts through.
    const int C = target.grid.cols;
    int r = srcArray / C, c = srcArray % C;
    const int r2 = dstArray / C, c2 = dstArray % C;
    double t = readyNs, start = -1.0;
    auto claim = [&](int dir) {
      size_t link = (static_cast<size_t>(r) * C + c) * 4 + dir;
      double s = std::max(t, linkFreeNs[link]);
      if (start < 0.0) start = s;
      result.busWaitNs += s - t;
      t = s + hopLatencyNs;
      linkFreeNs[link] = t;
      result.busBusyNs += hopLatencyNs;
      linkBusyNs[link] += hopLatencyNs;
      linkTransfers[link]++;
    };
    while (c != c2) {
      claim(c2 > c ? 0 : 1);
      c += c2 > c ? 1 : -1;
    }
    while (r != r2) {
      claim(r2 > r ? 2 : 3);
      r += r2 > r ? 1 : -1;
    }
    return {start, t};
  };
  Rng faultRng(options.faultSeed);
  // Monte-Carlo fault injection: toggles each of the 64 * W lanes
  // independently with probability p, via batched geometric gap sampling
  // (one draw per flip instead of one per lane — see sampleBernoulliBits).
  auto inject = [&](uint64_t* words, double p) {
    if (!options.injectFaults) return;
    result.injectedFaults += sampleBernoulliBits(faultRng, p, words, W);
  };

  // Scratch reused across instructions (no allocation in the hot loop).
  std::vector<uint64_t> newBits;              // columns * W result words
  std::vector<uint64_t> truth(W), check(W);   // per-column sense scratch
  std::vector<uint64_t> splitWords;           // degrade: per-row samples
  std::vector<uint64_t> shiftBuf, shiftValid; // rotate scratch
  std::vector<int> weakPerCol;
  std::vector<uint8_t> plainStuck;            // plain read of a stuck cell
  std::vector<const uint64_t*> opPtrs, splitPtrs;
  std::vector<uint8_t> opStuck;
  const std::vector<uint64_t> onesW(W, ~uint64_t{0});
  const std::vector<uint64_t> zerosW(W, 0);

  trace::Tracer& tracer = trace::Tracer::instance();
  for (size_t idx = 0; idx < program.instructions.size(); ++idx) {
    const Instruction& inst = program.instructions[idx];
    isa::validateInstruction(inst, target.numArrays, rows, cols);
    ArrayState& arr = arrayAt(inst.arrayId);
    const FaultMasks* fm = fmap ? &masksAt(inst.arrayId) : nullptr;

    // Per-opcode-class attribution: everything this instruction adds to
    // `now` (dispatch, stalls, execution) and to the energy total is
    // charged to its class rollup after the switch.
    const double instStartNs = now;
    const double instStartPj = result.energyPj;
    int opClass;
    switch (inst.kind) {
      case InstKind::Read:
        opClass = inst.colOps.empty() ? SimResult::OpPlainRead
                                      : SimResult::OpCimRead;
        break;
      case InstKind::Write: opClass = SimResult::OpWrite; break;
      case InstKind::Shift: opClass = SimResult::OpShift; break;
      case InstKind::Move: opClass = SimResult::OpMove; break;
      default: opClass = SimResult::OpXfer; break;
    }

    now += cost.dispatchLatencyNs();
    result.energyPj += cost.dispatchEnergyPj();
    result.instructionCount++;

    switch (inst.kind) {
      case InstKind::Read: {
        result.readCount++;
        // Stall until pending writes to the sensed cells complete
        // (read-around-write for everything else).
        double ready = now;
        long blockingWrite = -1;
        for (int r : inst.rows)
          for (int col : inst.columns) {
            size_t ci = arr.cellIndex(r, col);
            if (arr.writeReadyNs[ci] > ready) {
              ready = arr.writeReadyNs[ci];
              blockingWrite = arr.writeIndex[ci];
            }
          }
        if (ready > now && options.traceStalls)
          result.stallEvents.push_back(
              {idx, ready - now,
               static_cast<long>(idx) - blockingWrite});
        result.stallNs += ready - now;
        now = ready;

        if (inst.rows.empty()) {
          now += kBufferOpLatencyNs;
          result.energyPj +=
              0.005 * target.geometry.dataWidthBits *
              static_cast<double>(inst.columns.size());
        } else {
          now += cost.readLatencyNs();
          result.energyPj += cost.readEnergyPj(
              static_cast<int>(inst.rows.size()),
              static_cast<int>(inst.columns.size()));
        }

        // Functional: compute all columns against the pre-read buffer,
        // then commit.
        const size_t nCols = inst.columns.size();
        newBits.assign(nCols * W, 0);
        // Weak cells sensed per column (fault map only) inflate P_DF.
        weakPerCol.assign(nCols, 0);
        plainStuck.assign(inst.colOps.empty() ? nCols : 0, 0);
        // Guarded execution: the controller re-senses the instruction in
        // lockstep until every guarded column's value and check read
        // agree, so latency/energy pay for the deepest column's senses.
        int maxSenses = 1;
        int degradedCols = 0;
        // One detect-and-retry loop shared by the scouting and plain-read
        // paths (previously duplicated, letting the bookkeeping drift):
        // `value` holds the first sampled read; value/check pairs are
        // re-sensed from `truth` until they agree or the retry budget is
        // exhausted, with the guard/retry counters and the instruction's
        // lockstep sense depth updated here. Returns false when the
        // budget ran out with the pair still disagreeing — the caller
        // picks the fallback (degrade for scouting ops; plain reads are
        // already at MRA 1, so their last sample stands).
        auto guardedSample = [&](const uint64_t* truthW, double effPdf,
                                 uint64_t* value) -> bool {
          result.guardedOps++;
          std::copy_n(truthW, W, check.data());
          inject(check.data(), effPdf);
          int senses = 2;
          int tries = 0;
          bool agree = std::equal(value, value + W, check.data());
          while (!agree && tries < options.retryBudget) {
            ++tries;
            result.retriedOps++;
            if (tracer.enabled())
              tracer.instant("sim", "guarded_retry",
                             strCat("\"instruction\": ", idx,
                                    ", \"try\": ", tries));
            std::copy_n(truthW, W, value);
            inject(value, effPdf);
            std::copy_n(truthW, W, check.data());
            inject(check.data(), effPdf);
            senses += 2;
            agree = std::equal(value, value + W, check.data());
          }
          maxSenses = std::max(maxSenses, senses);
          return agree;
        };
        for (size_t i = 0; i < nCols; ++i) {
          int c = inst.columns[i];
          opPtrs.clear();
          opStuck.clear();
          for (int r : inst.rows) {
            if (fm && fm->isStuck(r, c)) {
              // Persistent fault: the sensed bit is physically pinned
              // regardless of what (if anything) was programmed.
              opPtrs.push_back(fm->stuckReadsOne(r, c) ? onesW.data()
                                                       : zerosW.data());
              opStuck.push_back(1);
              result.stuckCellReads++;
              continue;
            }
            size_t ci = arr.cellIndex(r, c);
            if (!arr.written(ci))
              throw SimulationError(
                  strCat("instruction ", idx, ": read of unwritten cell (",
                         inst.arrayId, ",", r, ",", c, ")"));
            opPtrs.push_back(arr.cellWords(ci));
            opStuck.push_back(0);
            if (fm && fm->isWeak(r, c)) ++weakPerCol[i];
          }
          uint64_t* out = newBits.data() + i * W;
          if (inst.colOps.empty()) {
            // Plain read: load the single cell into the buffer.
            checkArg(opPtrs.size() == 1, "plain read takes one row");
            std::copy_n(opPtrs[0], W, out);
            plainStuck[i] = opStuck[0];
          } else {
            if (inst.chainsBuffer[i]) {
              if (!arr.bufferIsValid(c))
                throw SimulationError(
                    strCat("instruction ", idx,
                           ": chained read of invalid buffer column ", c,
                           " of array ", inst.arrayId));
              opPtrs.push_back(arr.bufferWords(c));
            }
            ir::evalOpWide(inst.colOps[i], opPtrs.data(), opPtrs.size(), W,
                           truth.data());
            // Reliability accounting: r activated rows per column op.
            int activated = static_cast<int>(inst.rows.size());
            double pdf = 0.0;
            if (activated >= 2)
              pdf = pdfOf(device::senseKindOf(inst.colOps[i]), activated);
            else if (activated == 1)
              pdf = pdfOf(device::SenseKind::PlainRead, 1);
            double effPdf = inflatePdf(pdf, weakPerCol[i]);
            // P_app stays the analytic per-sense failure model (weak
            // inflation included, guarding excluded): it is the unguarded
            // reference guarded runs are compared against.
            failures.add(effPdf);
            result.cimColumnOps++;
            // Degrade: replace the scouting sense by single-row plain
            // reads (MRA 1, the widest sense margin) combined digitally
            // in the row-buffer logic — slower but near-failure-free.
            // Operands sensed from stuck cells are exempt from injection:
            // their read-out is physically pinned, so no sense margin —
            // however degraded — can flip it.
            auto degradeSense = [&](uint64_t* dst) {
              result.degradedOps++;
              ++degradedCols;
              if (tracer.enabled())
                tracer.instant("sim", "degrade",
                               strCat("\"instruction\": ", idx,
                                      ", \"column\": ", c));
              double pPlain = pdfOf(device::SenseKind::PlainRead, 1);
              size_t nOps = inst.rows.size();
              splitWords.resize(nOps * W);
              splitPtrs.clear();
              for (size_t oi = 0; oi < nOps; ++oi) {
                uint64_t* s = splitWords.data() + oi * W;
                std::copy_n(opPtrs[oi], W, s);
                if (!opStuck[oi]) {
                  int r = inst.rows[oi];
                  double pr = (fm && fm->isWeak(r, c))
                                  ? inflatePdf(pPlain, 1)
                                  : pPlain;
                  inject(s, pr);
                }
                splitPtrs.push_back(s);
              }
              if (inst.chainsBuffer[i])
                splitPtrs.push_back(opPtrs.back());  // digital, fault-free
              ir::evalOpWide(inst.colOps[i], splitPtrs.data(),
                             splitPtrs.size(), W, dst);
            };
            if (options.guardedExecution &&
                effPdf > options.degradePdfThreshold) {
              // Too risky to sense at full MRA at all: a check-read pair
              // misses failures where both samples flip the same lane
              // (~P_DF^2 per lane), which stops being negligible here.
              result.guardedOps++;
              degradeSense(out);
            } else {
              std::copy_n(truth.data(), W, out);
              inject(out, effPdf);
              if (options.guardedExecution &&
                  effPdf > options.guardPdfThreshold) {
                // Guard: duplicate the scouting op as a check read; retry
                // while the two samples disagree, up to the budget.
                // Budget exhausted on persistent disagreement: fall back
                // to the degraded sense as well.
                if (!guardedSample(truth.data(), effPdf, out))
                  degradeSense(out);
              }
            }
          }
        }
        if (inst.colOps.empty()) {
          double pdf = pdfOf(device::SenseKind::PlainRead, 1);
          for (size_t i = 0; i < nCols; ++i) {
            double effPdf = inflatePdf(pdf, weakPerCol[i]);
            failures.add(effPdf);
            // A stuck cell senses its pinned state regardless of margin:
            // nothing to inject and nothing to guard.
            if (plainStuck[i]) continue;
            uint64_t* value = newBits.data() + i * W;
            std::copy_n(value, W, truth.data());
            inject(value, effPdf);
            if (options.guardedExecution &&
                effPdf > options.guardPdfThreshold) {
              // Plain reads above the threshold get the same check-read
              // guard as scouting ops. There is no lower sensing mode to
              // degrade to (MRA is already 1), so after an exhausted
              // budget the last sample stands (residual ~P_DF^2).
              guardedSample(truth.data(), effPdf, value);
            }
          }
        }
        // Guarded-execution timing: extra lockstep senses re-activate the
        // full row set; a degraded instruction additionally replays each
        // activated row as a single-row read and combines in the buffer.
        if (maxSenses > 1) {
          double extra = maxSenses - 1;
          now += extra * cost.readLatencyNs();
          result.energyPj +=
              extra * cost.readEnergyPj(
                          static_cast<int>(inst.rows.size()),
                          static_cast<int>(inst.columns.size()));
        }
        if (degradedCols > 0) {
          now += static_cast<double>(inst.rows.size()) *
                     cost.readLatencyNs() +
                 kBufferOpLatencyNs;
          result.energyPj += static_cast<double>(inst.rows.size()) *
                             cost.readEnergyPj(1, degradedCols);
        }
        for (size_t i = 0; i < nCols; ++i) {
          int c = inst.columns[i];
          std::copy_n(newBits.data() + i * W, W, arr.bufferWords(c));
          arr.bufferValid[static_cast<size_t>(c) >> 6] |=
              uint64_t{1} << (c & 63);
        }
        break;
      }

      case InstKind::Write: {
        result.writeCount++;
        int row = inst.rows[0];
        if (mutableMap) {
          // Endurance: one programming pulse on the row; crossing the
          // budget converts its cells to stuck-at-LRS inside noteRowWrite,
          // so later reads of the row return the pinned state. The
          // precomputed masks for the row are refreshed at the moment of
          // conversion.
          long count = mutableMap->noteRowWrite(inst.arrayId, row);
          if (count == mutableMap->options().rowWriteBudget + 1) {
            result.wornRows++;
            if (tracer.enabled())
              tracer.instant("sim", "wear_out",
                             strCat("\"instruction\": ", idx,
                                    ", \"array\": ", inst.arrayId,
                                    ", \"row\": ", row));
            auto& slot = faultMasks[static_cast<size_t>(inst.arrayId)];
            if (slot) slot->refreshRow(*fmap, inst.arrayId, row);
          }
        }
        const FaultMasks* wfm = fmap ? &masksAt(inst.arrayId) : nullptr;
        auto hostIt = program.hostWriteValues.find(idx);
        for (size_t i = 0; i < inst.columns.size(); ++i) {
          int c = inst.columns[i];
          size_t ci = arr.cellIndex(row, c);
          uint64_t* dst = arr.cellWords(ci);
          if (hostIt != program.hostWriteValues.end()) {
            std::copy_n(leafWords(hostIt->second[i]), W, dst);
          } else {
            if (!arr.bufferIsValid(c))
              throw SimulationError(
                  strCat("instruction ", idx,
                         ": write from invalid buffer column ", c,
                         " of array ", inst.arrayId));
            std::copy_n(arr.bufferWords(c), W, dst);
          }
          if (wfm && wfm->isStuck(row, c)) {
            // Programming a stuck cell has no effect: it keeps its pinned
            // value (reads force it; mark written so they do not throw).
            const uint64_t* pinned =
                wfm->stuckReadsOne(row, c) ? onesW.data() : zerosW.data();
            std::copy_n(pinned, W, dst);
          }
          arr.markWritten(ci);
        }
        // Posted write: issue cost now, programming completes later.
        for (int col : inst.columns) {
          size_t ci = arr.cellIndex(row, col);
          arr.writeReadyNs[ci] = now + cost.writeCompletionNs();
          arr.writeIndex[ci] = static_cast<long>(idx);
        }
        now += cost.writeIssueLatencyNs();
        result.energyPj +=
            cost.writeEnergyPj(static_cast<int>(inst.columns.size()));
        break;
      }

      case InstKind::Shift: {
        result.shiftCount++;
        int d = inst.shiftDistance % cols;
        if (inst.shiftDirection == isa::ShiftDirection::Right)
          d = (cols - d) % cols;
        // Rotate left by d: bits at column c move to (c + d) % cols.
        shiftBuf.assign(arr.buffer.size(), 0);
        shiftValid.assign(arr.bufferValid.size(), 0);
        for (int c = 0; c < cols; ++c) {
          int dst = (c + d) % cols;
          std::copy_n(arr.bufferWords(c), W,
                      shiftBuf.data() + static_cast<size_t>(dst) * W);
          if (arr.bufferIsValid(c))
            shiftValid[static_cast<size_t>(dst) >> 6] |=
                uint64_t{1} << (dst & 63);
        }
        arr.buffer.swap(shiftBuf);
        arr.bufferValid.swap(shiftValid);
        now += cost.shiftLatencyNs(inst.shiftDistance);
        result.energyPj += cost.shiftEnergyPj(inst.shiftDistance);
        break;
      }

      case InstKind::Move: {
        result.moveCount++;
        ArrayState& dst = arrayAt(inst.dstArray);
        int srcCol = inst.columns[0];
        if (!arr.bufferIsValid(srcCol))
          throw SimulationError(strCat("instruction ", idx,
                                       ": move from invalid buffer column ",
                                       srcCol, " of array ", inst.arrayId));
        std::copy_n(arr.bufferWords(srcCol), W, dst.bufferWords(inst.dstCol));
        dst.bufferValid[static_cast<size_t>(inst.dstCol) >> 6] |=
            uint64_t{1} << (inst.dstCol & 63);
        // A move is synchronous (the destination buffer bit is consumed
        // by the very next instructions), so the issuing controller
        // queues behind any in-flight transfer on the links it needs.
        int hops = target.hopsBetween(inst.arrayId, inst.dstArray);
        now = routeBit(inst.arrayId, inst.dstArray, now).second;
        result.energyPj += hops * hopEnergyPj;
        break;
      }

      case InstKind::Xfer: {
        result.xferCount++;
        int srcCol = inst.columns[0];
        int srcRow = inst.rows[0];
        size_t srcCi = arr.cellIndex(srcRow, srcCol);

        // RAW exposure: the transfer engine senses the source cell, so a
        // pending posted write to it must complete first.
        double ready = std::max(now, arr.writeReadyNs[srcCi]);
        if (ready > now && options.traceStalls)
          result.stallEvents.push_back(
              {idx, ready - now,
               static_cast<long>(idx) - arr.writeIndex[srcCi]});
        result.stallNs += ready - now;
        now = ready;

        // Source sense: a single-row plain read by the transfer engine.
        bool srcStuck = fm && fm->isStuck(srcRow, srcCol);
        if (srcStuck) {
          const uint64_t* pinned = fm->stuckReadsOne(srcRow, srcCol)
                                       ? onesW.data()
                                       : zerosW.data();
          std::copy_n(pinned, W, truth.data());
          result.stuckCellReads++;
        } else {
          if (!arr.written(srcCi))
            throw SimulationError(
                strCat("instruction ", idx, ": transfer of unwritten cell (",
                       inst.arrayId, ",", srcRow, ",", srcCol, ")"));
          std::copy_n(arr.cellWords(srcCi), W, truth.data());
        }
        newBits.assign(W, 0);
        uint64_t* value = newBits.data();
        std::copy_n(truth.data(), W, value);
        double pdf = pdfOf(device::SenseKind::PlainRead, 1);
        double effPdf =
            inflatePdf(pdf, (fm && fm->isWeak(srcRow, srcCol)) ? 1 : 0);
        failures.add(effPdf);
        int senses = 1;
        if (!srcStuck) {
          inject(value, effPdf);
          if (options.guardedExecution && effPdf > options.guardPdfThreshold) {
            // Same check-read guard as a plain read: re-sense until the
            // value/check pair agrees or the budget runs out (MRA is
            // already 1, so the last sample stands after exhaustion).
            result.guardedOps++;
            std::copy_n(truth.data(), W, check.data());
            inject(check.data(), effPdf);
            senses = 2;
            int tries = 0;
            while (!std::equal(value, value + W, check.data()) &&
                   tries < options.retryBudget) {
              ++tries;
              result.retriedOps++;
              if (tracer.enabled())
                tracer.instant("sim", "guarded_retry",
                               strCat("\"instruction\": ", idx,
                                      ", \"try\": ", tries));
              std::copy_n(truth.data(), W, value);
              inject(value, effPdf);
              std::copy_n(truth.data(), W, check.data());
              inject(check.data(), effPdf);
              senses += 2;
            }
          }
        }
        now += senses * cost.readLatencyNs();
        result.energyPj += senses * cost.readEnergyPj(1, 1);

        // Fabric leg: the engine queues for the links on its XY route and
        // carries the bit hop by hop. The issuing controller does NOT
        // wait — compute overlaps with the movement; only a later
        // consumer of the destination cell (or a transfer sharing a
        // link) can stall on it.
        int hops = target.hopsBetween(inst.arrayId, inst.dstArray);
        double busEnd = routeBit(inst.arrayId, inst.dstArray, now).second;
        result.energyPj += hops * hopEnergyPj;

        // Destination write: posted, completing after the bus delivers.
        ArrayState& dst = arrayAt(inst.dstArray);
        if (mutableMap) {
          long count = mutableMap->noteRowWrite(inst.dstArray, inst.dstRow);
          if (count == mutableMap->options().rowWriteBudget + 1) {
            result.wornRows++;
            if (tracer.enabled())
              tracer.instant("sim", "wear_out",
                             strCat("\"instruction\": ", idx,
                                    ", \"array\": ", inst.dstArray,
                                    ", \"row\": ", inst.dstRow));
            auto& slot = faultMasks[static_cast<size_t>(inst.dstArray)];
            if (slot) slot->refreshRow(*fmap, inst.dstArray, inst.dstRow);
          }
        }
        size_t dstCi = dst.cellIndex(inst.dstRow, inst.dstCol);
        std::copy_n(value, W, dst.cellWords(dstCi));
        if (fmap) {
          const FaultMasks& dfm = masksAt(inst.dstArray);
          if (dfm.isStuck(inst.dstRow, inst.dstCol)) {
            const uint64_t* pinned = dfm.stuckReadsOne(inst.dstRow,
                                                       inst.dstCol)
                                         ? onesW.data()
                                         : zerosW.data();
            std::copy_n(pinned, W, dst.cellWords(dstCi));
          }
        }
        dst.markWritten(dstCi);
        dst.writeReadyNs[dstCi] = busEnd + cost.writeCompletionNs();
        dst.writeIndex[dstCi] = static_cast<long>(idx);
        result.energyPj += cost.writeEnergyPj(1);
        break;
      }
    }

    SimResult::OpcodeRollup& roll =
        result.opcodeRollups[static_cast<size_t>(opClass)];
    roll.count++;
    roll.latencyNs += now - instStartNs;
    roll.energyPj += result.energyPj - instStartPj;

    // Periodic time series (every 256 instructions) so long runs plot
    // latency/energy progression without per-instruction event volume.
    if (tracer.enabled() && (idx & 255) == 0) {
      tracer.counter("sim", "sim_latency_ns", now);
      tracer.counter("sim", "sim_energy_pj", result.energyPj);
    }
  }

  if (!linkTransfers.empty()) {
    const int C = target.grid.cols;
    for (size_t link = 0; link < linkTransfers.size(); ++link) {
      if (linkTransfers[link] == 0) continue;
      const int cell = static_cast<int>(link / 4);
      const int dir = static_cast<int>(link % 4);
      int r2 = cell / C, c2 = cell % C;
      // Link direction encoding mirrors routeBit's claim(): 0 = +col,
      // 1 = -col, 2 = +row, 3 = -row.
      if (dir == 0) ++c2;
      else if (dir == 1) --c2;
      else if (dir == 2) ++r2;
      else --r2;
      result.linkStats.push_back(
          {cell, r2 * C + c2, linkBusyNs[link], linkTransfers[link]});
    }
  }

  result.latencyNs = now;
  result.pApp = failures.probability();

  if (options.verify) {
    std::map<std::string, std::vector<uint64_t>> inputWords;
    for (NodeId i = g.firstId(); i < g.endId(); ++i) {
      const ir::Node& n = g.node(i);
      if (n.isInput()) {
        const uint64_t* v = leafWords(i);
        inputWords[n.name].assign(v, v + W);
      }
    }
    auto reference =
        ir::evaluateAllWordsPacked(g, inputWords, static_cast<int>(W));
    for (NodeId out : g.outputs()) {
      auto it = program.outputCells.find(out);
      if (it == program.outputCells.end())
        throw SimulationError(
            strCat("output ", out, " has no recorded cell"));
      const mapping::CellAddress& cell = it->second;
      const ArrayState& arr2 = arrayAt(cell.arrayId);
      size_t ci = arr2.cellIndex(cell.row, cell.col);
      const uint64_t* actual = arr2.cellWords(ci);
      bool written = arr2.written(ci);
      if (fmap && fmap->isStuck(cell.arrayId, cell.row, cell.col)) {
        // A stuck output cell holds its pinned value no matter what the
        // program did (including wear-out mid-run).
        actual = fmap->stuckBit(cell.arrayId, cell.row, cell.col)
                     ? onesW.data()
                     : zerosW.data();
        written = true;
      }
      if (!written)
        throw SimulationError(
            strCat("output ", out, " cell (array ", cell.arrayId, ", row ",
                   cell.row, ", col ", cell.col, ") never written"));
      const uint64_t* ref = reference.data() + static_cast<size_t>(out) * W;
      for (size_t w = 0; w < W; ++w) {
        uint64_t diff = actual[w] ^ ref[w];
        if (diff == 0) continue;
        if (options.injectFaults || fmap) {
          // Injected decision failures and persistent faults legitimately
          // corrupt lanes; record them instead of failing verification.
          result.corruptedLaneWords[w] |= diff;
        } else {
          throw SimulationError(strCat(
              "output ", out, " mismatch at cell (array ", cell.arrayId,
              ", row ", cell.row, ", col ", cell.col, "), lane word ", w,
              ", written by instruction ", arr2.writeIndex[ci],
              ": array holds ", actual[w], " but reference is ", ref[w]));
        }
      }
    }
    // The actual comparison outcome: clean injection/fault runs report
    // verified=true instead of being pessimistically marked false.
    result.verified = result.corruptedLanes() == 0;
  }

  return result;
}

}  // namespace sherlock::sim
