#include "sim/simulator.h"

#include <algorithm>
#include <bit>
#include <memory>
#include <vector>

#include "device/reliability.h"
#include "ir/evaluator.h"
#include "support/diagnostics.h"
#include "support/rng.h"
#include "verify/verifier.h"

namespace sherlock::sim {

using ir::NodeId;
using isa::InstKind;
using isa::Instruction;

namespace {

constexpr double kBufferOpLatencyNs = 0.5;   // rowless row-buffer logic
constexpr double kBusLatencyNs = 10.0;       // inter-array transfer
constexpr double kBusEnergyPerBitPj = 0.5;

/// Functional state of one array: cells + row buffer, one 64-bit word per
/// bit position (64 bulk slices simulated at once).
struct ArrayState {
  ArrayState(int rows, int cols)
      : rows_(rows),
        cols_(cols),
        cells(static_cast<size_t>(rows) * cols, 0),
        cellWritten(static_cast<size_t>(rows) * cols, false),
        buffer(static_cast<size_t>(cols), 0),
        bufferValid(static_cast<size_t>(cols), false),
        writeReadyNs(static_cast<size_t>(rows) * cols, 0.0),
        writeIndex(static_cast<size_t>(rows) * cols, -1) {}

  size_t cellIndex(int row, int col) const {
    return static_cast<size_t>(row) * cols_ + col;
  }

  int rows_;
  int cols_;
  std::vector<uint64_t> cells;
  std::vector<bool> cellWritten;
  std::vector<uint64_t> buffer;
  std::vector<bool> bufferValid;
  /// Completion time of the last posted write per cell (the memory
  /// controller performs read-around-write: a read stalls only on the
  /// cells it actually senses).
  std::vector<double> writeReadyNs;
  /// Instruction index of the last posted write per cell (stall tracing).
  std::vector<long> writeIndex;
};

}  // namespace

uint64_t defaultInputWord(const std::string& name, uint64_t seed) {
  uint64_t h = seed ^ 0xcbf29ce484222325ULL;
  for (unsigned char c : name) h = (h ^ c) * 0x100000001b3ULL;
  Rng rng(h);
  return rng();
}

SimResult simulate(const ir::Graph& g, const isa::TargetSpec& target,
                   const mapping::Program& program,
                   const SimOptions& options) {
  if (options.staticVerify) {
    // Structural rules only: the functional run below compares outputs
    // against the reference evaluator on concrete inputs, which subsumes
    // the symbolic equivalence check.
    verify::VerifyOptions vopts;
    vopts.checkEquivalence = false;
    verify::checkProgram(g, target, program, vopts);
  }

  arraymodel::ArrayCostModel cost(target.geometry, target.tech);
  const int rows = target.rows();
  const int cols = target.cols();

  // Arrays materialize lazily — programs rarely touch more than a few.
  std::vector<std::unique_ptr<ArrayState>> arrays(
      static_cast<size_t>(target.numArrays));
  auto arrayAt = [&](int a) -> ArrayState& {
    auto& slot = arrays[static_cast<size_t>(a)];
    if (!slot) slot = std::make_unique<ArrayState>(rows, cols);
    return *slot;
  };

  // Resolve leaf values: named inputs from options (or deterministic
  // pseudo-random words), constants to all-zeros / all-ones.
  auto leafWord = [&](NodeId id) -> uint64_t {
    const ir::Node& n = g.node(id);
    if (n.isConst()) return n.constValue ? ~uint64_t{0} : 0;
    checkArg(n.isInput(), strCat("host write of non-leaf node ", id));
    auto it = options.inputs.find(n.name);
    if (it != options.inputs.end()) return it->second;
    return defaultInputWord(n.name, options.inputSeed);
  };

  SimResult result;
  device::AppFailureAccumulator failures;
  std::map<std::pair<device::SenseKind, int>, double> pdfCache;
  auto pdfOf = [&](device::SenseKind kind, int r) {
    auto key = std::make_pair(kind, r);
    auto it = pdfCache.find(key);
    if (it == pdfCache.end())
      it = pdfCache
               .emplace(key,
                        device::decisionFailureProbability(target.tech, kind,
                                                           r))
               .first;
    return it->second;
  };

  double now = 0.0;
  Rng faultRng(options.faultSeed);
  // Per-lane fault sampling: each of the 64 simulated bulk lanes flips
  // independently with the op's decision-failure probability.
  auto sampleFaultMask = [&](double p) -> uint64_t {
    if (p <= 0.0) return 0;
    uint64_t mask = 0;
    for (int lane = 0; lane < 64; ++lane)
      if (faultRng.uniform() < p) mask |= uint64_t{1} << lane;
    return mask;
  };

  for (size_t idx = 0; idx < program.instructions.size(); ++idx) {
    const Instruction& inst = program.instructions[idx];
    isa::validateInstruction(inst, target.numArrays, rows, cols);
    ArrayState& arr = arrayAt(inst.arrayId);

    now += cost.dispatchLatencyNs();
    result.energyPj += cost.dispatchEnergyPj();
    result.instructionCount++;

    switch (inst.kind) {
      case InstKind::Read: {
        result.readCount++;
        // Stall until pending writes to the sensed cells complete
        // (read-around-write for everything else).
        double ready = now;
        long blockingWrite = -1;
        for (int r : inst.rows)
          for (int col : inst.columns) {
            size_t ci = arr.cellIndex(r, col);
            if (arr.writeReadyNs[ci] > ready) {
              ready = arr.writeReadyNs[ci];
              blockingWrite = arr.writeIndex[ci];
            }
          }
        if (ready > now && options.traceStalls)
          result.stallEvents.push_back(
              {idx, ready - now,
               static_cast<long>(idx) - blockingWrite});
        result.stallNs += ready - now;
        now = ready;

        if (inst.rows.empty()) {
          now += kBufferOpLatencyNs;
          result.energyPj +=
              0.005 * target.geometry.dataWidthBits *
              static_cast<double>(inst.columns.size());
        } else {
          now += cost.readLatencyNs();
          result.energyPj += cost.readEnergyPj(
              static_cast<int>(inst.rows.size()),
              static_cast<int>(inst.columns.size()));
        }

        // Functional: compute all columns against the pre-read buffer,
        // then commit.
        std::vector<uint64_t> newBits(inst.columns.size());
        for (size_t i = 0; i < inst.columns.size(); ++i) {
          int c = inst.columns[i];
          std::vector<uint64_t> operands;
          operands.reserve(inst.rows.size() + 1);
          for (int r : inst.rows) {
            size_t ci = arr.cellIndex(r, c);
            if (!arr.cellWritten[ci])
              throw SimulationError(
                  strCat("instruction ", idx, ": read of unwritten cell (",
                         inst.arrayId, ",", r, ",", c, ")"));
            operands.push_back(arr.cells[ci]);
          }
          if (inst.colOps.empty()) {
            // Plain read: load the single cell into the buffer.
            checkArg(operands.size() == 1, "plain read takes one row");
            newBits[i] = operands[0];
          } else {
            if (inst.chainsBuffer[i]) {
              if (!arr.bufferValid[static_cast<size_t>(c)])
                throw SimulationError(
                    strCat("instruction ", idx,
                           ": chained read of invalid buffer column ", c,
                           " of array ", inst.arrayId));
              operands.push_back(arr.buffer[static_cast<size_t>(c)]);
            }
            newBits[i] = ir::evalOp(inst.colOps[i], operands);
            // Reliability accounting: r activated rows per column op.
            int activated = static_cast<int>(inst.rows.size());
            double pdf = 0.0;
            if (activated >= 2)
              pdf = pdfOf(device::senseKindOf(inst.colOps[i]), activated);
            else if (activated == 1)
              pdf = pdfOf(device::SenseKind::PlainRead, 1);
            failures.add(pdf);
            if (options.injectFaults) {
              uint64_t flips = sampleFaultMask(pdf);
              if (flips) {
                newBits[i] ^= flips;
                result.injectedFaults +=
                    static_cast<long>(std::popcount(flips));
              }
            }
            result.cimColumnOps++;
          }
        }
        if (inst.colOps.empty()) {
          double pdf = pdfOf(device::SenseKind::PlainRead, 1);
          for (size_t i = 0; i < inst.columns.size(); ++i) {
            failures.add(pdf);
            if (options.injectFaults) {
              uint64_t flips = sampleFaultMask(pdf);
              if (flips) {
                newBits[i] ^= flips;
                result.injectedFaults +=
                    static_cast<long>(std::popcount(flips));
              }
            }
          }
        }
        for (size_t i = 0; i < inst.columns.size(); ++i) {
          arr.buffer[static_cast<size_t>(inst.columns[i])] = newBits[i];
          arr.bufferValid[static_cast<size_t>(inst.columns[i])] = true;
        }
        break;
      }

      case InstKind::Write: {
        result.writeCount++;
        int row = inst.rows[0];
        auto hostIt = program.hostWriteValues.find(idx);
        for (size_t i = 0; i < inst.columns.size(); ++i) {
          int c = inst.columns[i];
          uint64_t word;
          if (hostIt != program.hostWriteValues.end()) {
            word = leafWord(hostIt->second[i]);
          } else {
            if (!arr.bufferValid[static_cast<size_t>(c)])
              throw SimulationError(
                  strCat("instruction ", idx,
                         ": write from invalid buffer column ", c,
                         " of array ", inst.arrayId));
            word = arr.buffer[static_cast<size_t>(c)];
          }
          size_t ci = arr.cellIndex(row, c);
          arr.cells[ci] = word;
          arr.cellWritten[ci] = true;
        }
        // Posted write: issue cost now, programming completes later.
        for (int col : inst.columns) {
          size_t ci = arr.cellIndex(row, col);
          arr.writeReadyNs[ci] = now + cost.writeCompletionNs();
          arr.writeIndex[ci] = static_cast<long>(idx);
        }
        now += cost.writeIssueLatencyNs();
        result.energyPj +=
            cost.writeEnergyPj(static_cast<int>(inst.columns.size()));
        break;
      }

      case InstKind::Shift: {
        result.shiftCount++;
        int d = inst.shiftDistance % cols;
        if (inst.shiftDirection == isa::ShiftDirection::Right)
          d = (cols - d) % cols;
        // Rotate left by d: bit at column c moves to (c + d) % cols.
        std::vector<uint64_t> nb(arr.buffer.size());
        std::vector<bool> nv(arr.bufferValid.size());
        for (int c = 0; c < cols; ++c) {
          int dst = (c + d) % cols;
          nb[static_cast<size_t>(dst)] = arr.buffer[static_cast<size_t>(c)];
          nv[static_cast<size_t>(dst)] =
              arr.bufferValid[static_cast<size_t>(c)];
        }
        arr.buffer = std::move(nb);
        arr.bufferValid = std::move(nv);
        now += cost.shiftLatencyNs(inst.shiftDistance);
        result.energyPj += cost.shiftEnergyPj(inst.shiftDistance);
        break;
      }

      case InstKind::Move: {
        result.moveCount++;
        ArrayState& dst = arrayAt(inst.moveDstArray);
        int srcCol = inst.columns[0];
        if (!arr.bufferValid[static_cast<size_t>(srcCol)])
          throw SimulationError(strCat("instruction ", idx,
                                       ": move from invalid buffer column ",
                                       srcCol, " of array ", inst.arrayId));
        dst.buffer[static_cast<size_t>(inst.moveDstCol)] =
            arr.buffer[static_cast<size_t>(srcCol)];
        dst.bufferValid[static_cast<size_t>(inst.moveDstCol)] = true;
        now += kBusLatencyNs;
        result.energyPj +=
            kBusEnergyPerBitPj * target.geometry.dataWidthBits;
        break;
      }
    }
  }

  result.latencyNs = now;
  result.pApp = failures.probability();

  if (options.verify) {
    std::map<std::string, uint64_t> inputWords;
    for (NodeId i = g.firstId(); i < g.endId(); ++i) {
      const ir::Node& n = g.node(i);
      if (n.isInput()) inputWords[n.name] = leafWord(i);
    }
    auto reference = ir::evaluateAllWords(g, inputWords);
    for (NodeId out : g.outputs()) {
      auto it = program.outputCells.find(out);
      if (it == program.outputCells.end())
        throw SimulationError(
            strCat("output ", out, " has no recorded cell"));
      const mapping::CellAddress& cell = it->second;
      const ArrayState& arr2 = arrayAt(cell.arrayId);
      size_t ci = arr2.cellIndex(cell.row, cell.col);
      if (!arr2.cellWritten[ci])
        throw SimulationError(
            strCat("output ", out, " cell (array ", cell.arrayId, ", row ",
                   cell.row, ", col ", cell.col, ") never written"));
      uint64_t diff = arr2.cells[ci] ^ reference[static_cast<size_t>(out)];
      if (diff != 0) {
        if (options.injectFaults) {
          // Injected decision failures legitimately corrupt lanes; record
          // them instead of failing verification.
          result.corruptedOutputLanes |= diff;
        } else {
          throw SimulationError(strCat(
              "output ", out, " mismatch at cell (array ", cell.arrayId,
              ", row ", cell.row, ", col ", cell.col, "), written by "
              "instruction ", arr2.writeIndex[ci], ": array holds ",
              arr2.cells[ci], " but reference is ",
              reference[static_cast<size_t>(out)]));
        }
      }
    }
    result.verified = !options.injectFaults;
  }

  return result;
}

}  // namespace sherlock::sim
