#include "sim/simulator.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <memory>
#include <optional>
#include <vector>

#include "device/reliability.h"
#include "ir/evaluator.h"
#include "support/diagnostics.h"
#include "support/rng.h"
#include "verify/verifier.h"

namespace sherlock::sim {

using ir::NodeId;
using isa::InstKind;
using isa::Instruction;

namespace {

constexpr double kBufferOpLatencyNs = 0.5;   // rowless row-buffer logic
constexpr double kBusLatencyNs = 10.0;       // inter-array transfer
constexpr double kBusEnergyPerBitPj = 0.5;

/// Functional state of one array: cells + row buffer, one 64-bit word per
/// bit position (64 bulk slices simulated at once).
struct ArrayState {
  ArrayState(int rows, int cols)
      : rows_(rows),
        cols_(cols),
        cells(static_cast<size_t>(rows) * cols, 0),
        cellWritten(static_cast<size_t>(rows) * cols, false),
        buffer(static_cast<size_t>(cols), 0),
        bufferValid(static_cast<size_t>(cols), false),
        writeReadyNs(static_cast<size_t>(rows) * cols, 0.0),
        writeIndex(static_cast<size_t>(rows) * cols, -1) {}

  size_t cellIndex(int row, int col) const {
    return static_cast<size_t>(row) * cols_ + col;
  }

  int rows_;
  int cols_;
  std::vector<uint64_t> cells;
  std::vector<bool> cellWritten;
  std::vector<uint64_t> buffer;
  std::vector<bool> bufferValid;
  /// Completion time of the last posted write per cell (the memory
  /// controller performs read-around-write: a read stalls only on the
  /// cells it actually senses).
  std::vector<double> writeReadyNs;
  /// Instruction index of the last posted write per cell (stall tracing).
  std::vector<long> writeIndex;
};

}  // namespace

uint64_t defaultInputWord(const std::string& name, uint64_t seed) {
  uint64_t h = seed ^ 0xcbf29ce484222325ULL;
  for (unsigned char c : name) h = (h ^ c) * 0x100000001b3ULL;
  Rng rng(h);
  return rng();
}

SimResult simulate(const ir::Graph& g, const isa::TargetSpec& target,
                   const mapping::Program& program,
                   const SimOptions& options) {
  if (options.staticVerify) {
    // Structural rules only: the functional run below compares outputs
    // against the reference evaluator on concrete inputs, which subsumes
    // the symbolic equivalence check. The fault map is deliberately NOT
    // passed here: simulating a program on a map it was not compiled
    // against is a supported experiment (the mismatch surfaces as
    // corruption), not a static error.
    verify::VerifyOptions vopts;
    vopts.checkEquivalence = false;
    verify::checkProgram(g, target, program, vopts);
  }

  if (options.faultMap)
    checkArg(options.faultMap->numArrays() == target.numArrays &&
                 options.faultMap->rows() == target.rows() &&
                 options.faultMap->cols() == target.cols(),
             "fault map dimensions do not match the simulation target");
  // Endurance wear-out mutates the map (rows convert to stuck past the
  // write budget), so wear runs work on a private copy; the caller's map
  // is never modified by simulation.
  std::optional<device::FaultMap> wearMap;
  if (options.faultMap && options.faultMap->options().rowWriteBudget > 0)
    wearMap = *options.faultMap;
  device::FaultMap* mutableMap = wearMap ? &*wearMap : nullptr;
  const device::FaultMap* fmap = wearMap ? &*wearMap : options.faultMap;
  auto stuckWord = [&](int a, int r, int c) -> uint64_t {
    return fmap->stuckBit(a, r, c) ? ~uint64_t{0} : uint64_t{0};
  };
  // Each weak cell sensed by an op multiplies its P_DF (clamped to the
  // discrimination bound 0.5, the same ceiling the device model uses).
  auto inflatePdf = [&](double pdf, int weakCells) -> double {
    if (weakCells <= 0 || pdf <= 0.0) return pdf;
    return std::min(
        0.5, pdf * std::pow(fmap->options().weakPdfMultiplier, weakCells));
  };

  arraymodel::ArrayCostModel cost(target.geometry, target.tech);
  const int rows = target.rows();
  const int cols = target.cols();

  // Arrays materialize lazily — programs rarely touch more than a few.
  std::vector<std::unique_ptr<ArrayState>> arrays(
      static_cast<size_t>(target.numArrays));
  auto arrayAt = [&](int a) -> ArrayState& {
    auto& slot = arrays[static_cast<size_t>(a)];
    if (!slot) slot = std::make_unique<ArrayState>(rows, cols);
    return *slot;
  };

  // Resolve leaf values: named inputs from options (or deterministic
  // pseudo-random words), constants to all-zeros / all-ones.
  auto leafWord = [&](NodeId id) -> uint64_t {
    const ir::Node& n = g.node(id);
    if (n.isConst()) return n.constValue ? ~uint64_t{0} : 0;
    checkArg(n.isInput(), strCat("host write of non-leaf node ", id));
    auto it = options.inputs.find(n.name);
    if (it != options.inputs.end()) return it->second;
    return defaultInputWord(n.name, options.inputSeed);
  };

  SimResult result;
  device::AppFailureAccumulator failures;
  std::map<std::pair<device::SenseKind, int>, double> pdfCache;
  auto pdfOf = [&](device::SenseKind kind, int r) {
    auto key = std::make_pair(kind, r);
    auto it = pdfCache.find(key);
    if (it == pdfCache.end())
      it = pdfCache
               .emplace(key,
                        device::decisionFailureProbability(target.tech, kind,
                                                           r))
               .first;
    return it->second;
  };

  double now = 0.0;
  Rng faultRng(options.faultSeed);
  // Per-lane fault sampling: each of the 64 simulated bulk lanes flips
  // independently with the op's decision-failure probability.
  auto sampleFaultMask = [&](double p) -> uint64_t {
    if (p <= 0.0) return 0;
    uint64_t mask = 0;
    for (int lane = 0; lane < 64; ++lane)
      if (faultRng.uniform() < p) mask |= uint64_t{1} << lane;
    return mask;
  };

  for (size_t idx = 0; idx < program.instructions.size(); ++idx) {
    const Instruction& inst = program.instructions[idx];
    isa::validateInstruction(inst, target.numArrays, rows, cols);
    ArrayState& arr = arrayAt(inst.arrayId);

    now += cost.dispatchLatencyNs();
    result.energyPj += cost.dispatchEnergyPj();
    result.instructionCount++;

    switch (inst.kind) {
      case InstKind::Read: {
        result.readCount++;
        // Stall until pending writes to the sensed cells complete
        // (read-around-write for everything else).
        double ready = now;
        long blockingWrite = -1;
        for (int r : inst.rows)
          for (int col : inst.columns) {
            size_t ci = arr.cellIndex(r, col);
            if (arr.writeReadyNs[ci] > ready) {
              ready = arr.writeReadyNs[ci];
              blockingWrite = arr.writeIndex[ci];
            }
          }
        if (ready > now && options.traceStalls)
          result.stallEvents.push_back(
              {idx, ready - now,
               static_cast<long>(idx) - blockingWrite});
        result.stallNs += ready - now;
        now = ready;

        if (inst.rows.empty()) {
          now += kBufferOpLatencyNs;
          result.energyPj +=
              0.005 * target.geometry.dataWidthBits *
              static_cast<double>(inst.columns.size());
        } else {
          now += cost.readLatencyNs();
          result.energyPj += cost.readEnergyPj(
              static_cast<int>(inst.rows.size()),
              static_cast<int>(inst.columns.size()));
        }

        // Functional: compute all columns against the pre-read buffer,
        // then commit.
        std::vector<uint64_t> newBits(inst.columns.size());
        // Weak cells sensed per column (fault map only) inflate P_DF.
        std::vector<int> weakPerCol(inst.columns.size(), 0);
        // Guarded execution: the controller re-senses the instruction in
        // lockstep until every guarded column's value and check read
        // agree, so latency/energy pay for the deepest column's senses.
        int maxSenses = 1;
        int degradedCols = 0;
        auto inject = [&](uint64_t word, double p) -> uint64_t {
          if (!options.injectFaults) return word;
          uint64_t flips = sampleFaultMask(p);
          if (flips) {
            word ^= flips;
            result.injectedFaults += static_cast<long>(std::popcount(flips));
          }
          return word;
        };
        for (size_t i = 0; i < inst.columns.size(); ++i) {
          int c = inst.columns[i];
          std::vector<uint64_t> operands;
          operands.reserve(inst.rows.size() + 1);
          for (int r : inst.rows) {
            size_t ci = arr.cellIndex(r, c);
            if (fmap && fmap->isStuck(inst.arrayId, r, c)) {
              // Persistent fault: the sensed bit is physically pinned
              // regardless of what (if anything) was programmed.
              operands.push_back(stuckWord(inst.arrayId, r, c));
              result.stuckCellReads++;
              continue;
            }
            if (!arr.cellWritten[ci])
              throw SimulationError(
                  strCat("instruction ", idx, ": read of unwritten cell (",
                         inst.arrayId, ",", r, ",", c, ")"));
            operands.push_back(arr.cells[ci]);
            if (fmap && fmap->isWeak(inst.arrayId, r, c)) ++weakPerCol[i];
          }
          if (inst.colOps.empty()) {
            // Plain read: load the single cell into the buffer.
            checkArg(operands.size() == 1, "plain read takes one row");
            newBits[i] = operands[0];
          } else {
            if (inst.chainsBuffer[i]) {
              if (!arr.bufferValid[static_cast<size_t>(c)])
                throw SimulationError(
                    strCat("instruction ", idx,
                           ": chained read of invalid buffer column ", c,
                           " of array ", inst.arrayId));
              operands.push_back(arr.buffer[static_cast<size_t>(c)]);
            }
            uint64_t trueWord = ir::evalOp(inst.colOps[i], operands);
            // Reliability accounting: r activated rows per column op.
            int activated = static_cast<int>(inst.rows.size());
            double pdf = 0.0;
            if (activated >= 2)
              pdf = pdfOf(device::senseKindOf(inst.colOps[i]), activated);
            else if (activated == 1)
              pdf = pdfOf(device::SenseKind::PlainRead, 1);
            double effPdf = inflatePdf(pdf, weakPerCol[i]);
            // P_app stays the analytic per-sense failure model (weak
            // inflation included, guarding excluded): it is the unguarded
            // reference guarded runs are compared against.
            failures.add(effPdf);
            result.cimColumnOps++;
            // Degrade: replace the scouting sense by single-row plain
            // reads (MRA 1, the widest sense margin) combined digitally
            // in the row-buffer logic — slower but near-failure-free.
            auto degradeSense = [&]() -> uint64_t {
              result.degradedOps++;
              ++degradedCols;
              double pPlain = pdfOf(device::SenseKind::PlainRead, 1);
              std::vector<uint64_t> split;
              split.reserve(operands.size());
              for (size_t oi = 0; oi < inst.rows.size(); ++oi) {
                int r = inst.rows[oi];
                double pr = (fmap && fmap->isWeak(inst.arrayId, r, c))
                                ? inflatePdf(pPlain, 1)
                                : pPlain;
                split.push_back(inject(operands[oi], pr));
              }
              if (inst.chainsBuffer[i])
                split.push_back(operands.back());  // digital, fault-free
              return ir::evalOp(inst.colOps[i], split);
            };
            uint64_t value;
            if (options.guardedExecution &&
                effPdf > options.degradePdfThreshold) {
              // Too risky to sense at full MRA at all: a check-read pair
              // misses failures where both samples flip the same lane
              // (~P_DF^2 per lane), which stops being negligible here.
              result.guardedOps++;
              value = degradeSense();
            } else {
              value = inject(trueWord, effPdf);
              if (options.guardedExecution &&
                  effPdf > options.guardPdfThreshold) {
                // Guard: duplicate the scouting op as a check read; retry
                // while the two samples disagree, up to the budget.
                result.guardedOps++;
                uint64_t check = inject(trueWord, effPdf);
                int senses = 2;
                int tries = 0;
                while (value != check && tries < options.retryBudget) {
                  ++tries;
                  result.retriedOps++;
                  value = inject(trueWord, effPdf);
                  check = inject(trueWord, effPdf);
                  senses += 2;
                }
                maxSenses = std::max(maxSenses, senses);
                // Budget exhausted on persistent disagreement: fall back
                // to the degraded sense as well.
                if (value != check) value = degradeSense();
              }
            }
            newBits[i] = value;
          }
        }
        if (inst.colOps.empty()) {
          double pdf = pdfOf(device::SenseKind::PlainRead, 1);
          for (size_t i = 0; i < inst.columns.size(); ++i) {
            double effPdf = inflatePdf(pdf, weakPerCol[i]);
            failures.add(effPdf);
            uint64_t truth = newBits[i];
            uint64_t value = inject(truth, effPdf);
            if (options.guardedExecution &&
                effPdf > options.guardPdfThreshold) {
              // Plain reads above the threshold get the same check-read
              // guard as scouting ops. There is no lower sensing mode to
              // degrade to (MRA is already 1), so after an exhausted
              // budget the last sample stands (residual ~P_DF^2).
              result.guardedOps++;
              uint64_t check = inject(truth, effPdf);
              int senses = 2;
              int tries = 0;
              while (value != check && tries < options.retryBudget) {
                ++tries;
                result.retriedOps++;
                value = inject(truth, effPdf);
                check = inject(truth, effPdf);
                senses += 2;
              }
              maxSenses = std::max(maxSenses, senses);
            }
            newBits[i] = value;
          }
        }
        // Guarded-execution timing: extra lockstep senses re-activate the
        // full row set; a degraded instruction additionally replays each
        // activated row as a single-row read and combines in the buffer.
        if (maxSenses > 1) {
          double extra = maxSenses - 1;
          now += extra * cost.readLatencyNs();
          result.energyPj +=
              extra * cost.readEnergyPj(
                          static_cast<int>(inst.rows.size()),
                          static_cast<int>(inst.columns.size()));
        }
        if (degradedCols > 0) {
          now += static_cast<double>(inst.rows.size()) *
                     cost.readLatencyNs() +
                 kBufferOpLatencyNs;
          result.energyPj += static_cast<double>(inst.rows.size()) *
                             cost.readEnergyPj(1, degradedCols);
        }
        for (size_t i = 0; i < inst.columns.size(); ++i) {
          arr.buffer[static_cast<size_t>(inst.columns[i])] = newBits[i];
          arr.bufferValid[static_cast<size_t>(inst.columns[i])] = true;
        }
        break;
      }

      case InstKind::Write: {
        result.writeCount++;
        int row = inst.rows[0];
        if (mutableMap) {
          // Endurance: one programming pulse on the row; crossing the
          // budget converts its cells to stuck-at-LRS inside noteRowWrite,
          // so later reads of the row return the pinned state.
          long count = mutableMap->noteRowWrite(inst.arrayId, row);
          if (count == mutableMap->options().rowWriteBudget + 1)
            result.wornRows++;
        }
        auto hostIt = program.hostWriteValues.find(idx);
        for (size_t i = 0; i < inst.columns.size(); ++i) {
          int c = inst.columns[i];
          uint64_t word;
          if (hostIt != program.hostWriteValues.end()) {
            word = leafWord(hostIt->second[i]);
          } else {
            if (!arr.bufferValid[static_cast<size_t>(c)])
              throw SimulationError(
                  strCat("instruction ", idx,
                         ": write from invalid buffer column ", c,
                         " of array ", inst.arrayId));
            word = arr.buffer[static_cast<size_t>(c)];
          }
          size_t ci = arr.cellIndex(row, c);
          if (fmap && fmap->isStuck(inst.arrayId, row, c))
            // Programming a stuck cell has no effect: it keeps its pinned
            // value (reads force it; mark written so they do not throw).
            word = stuckWord(inst.arrayId, row, c);
          arr.cells[ci] = word;
          arr.cellWritten[ci] = true;
        }
        // Posted write: issue cost now, programming completes later.
        for (int col : inst.columns) {
          size_t ci = arr.cellIndex(row, col);
          arr.writeReadyNs[ci] = now + cost.writeCompletionNs();
          arr.writeIndex[ci] = static_cast<long>(idx);
        }
        now += cost.writeIssueLatencyNs();
        result.energyPj +=
            cost.writeEnergyPj(static_cast<int>(inst.columns.size()));
        break;
      }

      case InstKind::Shift: {
        result.shiftCount++;
        int d = inst.shiftDistance % cols;
        if (inst.shiftDirection == isa::ShiftDirection::Right)
          d = (cols - d) % cols;
        // Rotate left by d: bit at column c moves to (c + d) % cols.
        std::vector<uint64_t> nb(arr.buffer.size());
        std::vector<bool> nv(arr.bufferValid.size());
        for (int c = 0; c < cols; ++c) {
          int dst = (c + d) % cols;
          nb[static_cast<size_t>(dst)] = arr.buffer[static_cast<size_t>(c)];
          nv[static_cast<size_t>(dst)] =
              arr.bufferValid[static_cast<size_t>(c)];
        }
        arr.buffer = std::move(nb);
        arr.bufferValid = std::move(nv);
        now += cost.shiftLatencyNs(inst.shiftDistance);
        result.energyPj += cost.shiftEnergyPj(inst.shiftDistance);
        break;
      }

      case InstKind::Move: {
        result.moveCount++;
        ArrayState& dst = arrayAt(inst.moveDstArray);
        int srcCol = inst.columns[0];
        if (!arr.bufferValid[static_cast<size_t>(srcCol)])
          throw SimulationError(strCat("instruction ", idx,
                                       ": move from invalid buffer column ",
                                       srcCol, " of array ", inst.arrayId));
        dst.buffer[static_cast<size_t>(inst.moveDstCol)] =
            arr.buffer[static_cast<size_t>(srcCol)];
        dst.bufferValid[static_cast<size_t>(inst.moveDstCol)] = true;
        now += kBusLatencyNs;
        result.energyPj +=
            kBusEnergyPerBitPj * target.geometry.dataWidthBits;
        break;
      }
    }
  }

  result.latencyNs = now;
  result.pApp = failures.probability();

  if (options.verify) {
    std::map<std::string, uint64_t> inputWords;
    for (NodeId i = g.firstId(); i < g.endId(); ++i) {
      const ir::Node& n = g.node(i);
      if (n.isInput()) inputWords[n.name] = leafWord(i);
    }
    auto reference = ir::evaluateAllWords(g, inputWords);
    for (NodeId out : g.outputs()) {
      auto it = program.outputCells.find(out);
      if (it == program.outputCells.end())
        throw SimulationError(
            strCat("output ", out, " has no recorded cell"));
      const mapping::CellAddress& cell = it->second;
      const ArrayState& arr2 = arrayAt(cell.arrayId);
      size_t ci = arr2.cellIndex(cell.row, cell.col);
      uint64_t actual = arr2.cells[ci];
      bool written = arr2.cellWritten[ci];
      if (fmap && fmap->isStuck(cell.arrayId, cell.row, cell.col)) {
        // A stuck output cell holds its pinned value no matter what the
        // program did (including wear-out mid-run).
        actual = stuckWord(cell.arrayId, cell.row, cell.col);
        written = true;
      }
      if (!written)
        throw SimulationError(
            strCat("output ", out, " cell (array ", cell.arrayId, ", row ",
                   cell.row, ", col ", cell.col, ") never written"));
      uint64_t diff = actual ^ reference[static_cast<size_t>(out)];
      if (diff != 0) {
        if (options.injectFaults || fmap) {
          // Injected decision failures and persistent faults legitimately
          // corrupt lanes; record them instead of failing verification.
          result.corruptedOutputLanes |= diff;
        } else {
          throw SimulationError(strCat(
              "output ", out, " mismatch at cell (array ", cell.arrayId,
              ", row ", cell.row, ", col ", cell.col, "), written by "
              "instruction ", arr2.writeIndex[ci], ": array holds ",
              arr2.cells[ci], " but reference is ",
              reference[static_cast<size_t>(out)]));
        }
      }
    }
    // The actual comparison outcome: clean injection/fault runs report
    // verified=true instead of being pessimistically marked false.
    result.verified = result.corruptedOutputLanes == 0;
  }

  return result;
}

}  // namespace sherlock::sim
