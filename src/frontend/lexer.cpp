#include "frontend/lexer.h"

#include <cctype>

#include "support/diagnostics.h"
#include "support/trace.h"

namespace sherlock::frontend {

std::string tokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::Identifier: return "identifier";
    case TokenKind::Number: return "number";
    case TokenKind::KwInput: return "'input'";
    case TokenKind::KwOutput: return "'output'";
    case TokenKind::KwBit: return "'bit'";
    case TokenKind::KwFor: return "'for'";
    case TokenKind::LParen: return "'('";
    case TokenKind::RParen: return "')'";
    case TokenKind::LBrace: return "'{'";
    case TokenKind::RBrace: return "'}'";
    case TokenKind::LBracket: return "'['";
    case TokenKind::RBracket: return "']'";
    case TokenKind::Semicolon: return "';'";
    case TokenKind::Comma: return "','";
    case TokenKind::Assign: return "'='";
    case TokenKind::Amp: return "'&'";
    case TokenKind::Pipe: return "'|'";
    case TokenKind::Caret: return "'^'";
    case TokenKind::Tilde: return "'~'";
    case TokenKind::Plus: return "'+'";
    case TokenKind::Minus: return "'-'";
    case TokenKind::Star: return "'*'";
    case TokenKind::Less: return "'<'";
    case TokenKind::LessEq: return "'<='";
    case TokenKind::Greater: return "'>'";
    case TokenKind::GreaterEq: return "'>='";
    case TokenKind::EndOfFile: return "end of input";
  }
  return "?";
}

std::vector<Token> tokenize(const std::string& source) {
  trace::Span span("frontend", "lex");
  std::vector<Token> tokens;
  int line = 1, column = 1;
  size_t i = 0;

  auto advance = [&](size_t n = 1) {
    for (size_t k = 0; k < n && i < source.size(); ++k, ++i) {
      if (source[i] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
    }
  };
  auto push = [&](TokenKind kind, std::string text, int64_t value = 0) {
    Token t;
    t.kind = kind;
    t.text = std::move(text);
    t.value = value;
    t.line = line;
    t.column = column;
    tokens.push_back(std::move(t));
  };

  while (i < source.size()) {
    char c = source[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      advance();
      continue;
    }
    if (c == '/' && i + 1 < source.size() && source[i + 1] == '/') {
      while (i < source.size() && source[i] != '\n') advance();
      continue;
    }
    if (c == '/' && i + 1 < source.size() && source[i + 1] == '*') {
      advance(2);
      while (i + 1 < source.size() &&
             !(source[i] == '*' && source[i + 1] == '/'))
        advance();
      if (i + 1 >= source.size())
        throw ParseError("unterminated block comment", line, column);
      advance(2);
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::string word;
      int startLine = line, startCol = column;
      while (i < source.size() &&
             (std::isalnum(static_cast<unsigned char>(source[i])) ||
              source[i] == '_')) {
        word.push_back(source[i]);
        advance();
      }
      Token t;
      t.text = word;
      t.line = startLine;
      t.column = startCol;
      if (word == "input")
        t.kind = TokenKind::KwInput;
      else if (word == "output")
        t.kind = TokenKind::KwOutput;
      else if (word == "bit")
        t.kind = TokenKind::KwBit;
      else if (word == "for")
        t.kind = TokenKind::KwFor;
      else
        t.kind = TokenKind::Identifier;
      tokens.push_back(std::move(t));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::string digits;
      int startLine = line, startCol = column;
      while (i < source.size() &&
             std::isdigit(static_cast<unsigned char>(source[i]))) {
        digits.push_back(source[i]);
        advance();
      }
      Token t;
      t.kind = TokenKind::Number;
      t.text = digits;
      try {
        t.value = std::stoll(digits);
      } catch (const std::out_of_range&) {
        throw ParseError(strCat("integer literal '", digits,
                                "' out of range"),
                         startLine, startCol);
      }
      t.line = startLine;
      t.column = startCol;
      tokens.push_back(std::move(t));
      continue;
    }
    switch (c) {
      case '(': push(TokenKind::LParen, "("); break;
      case ')': push(TokenKind::RParen, ")"); break;
      case '{': push(TokenKind::LBrace, "{"); break;
      case '}': push(TokenKind::RBrace, "}"); break;
      case '[': push(TokenKind::LBracket, "["); break;
      case ']': push(TokenKind::RBracket, "]"); break;
      case ';': push(TokenKind::Semicolon, ";"); break;
      case ',': push(TokenKind::Comma, ","); break;
      case '&': push(TokenKind::Amp, "&"); break;
      case '|': push(TokenKind::Pipe, "|"); break;
      case '^': push(TokenKind::Caret, "^"); break;
      case '~': push(TokenKind::Tilde, "~"); break;
      case '+': push(TokenKind::Plus, "+"); break;
      case '-': push(TokenKind::Minus, "-"); break;
      case '*': push(TokenKind::Star, "*"); break;
      case '<':
        if (i + 1 < source.size() && source[i + 1] == '=') {
          push(TokenKind::LessEq, "<=");
          advance();
        } else {
          push(TokenKind::Less, "<");
        }
        break;
      case '>':
        if (i + 1 < source.size() && source[i + 1] == '=') {
          push(TokenKind::GreaterEq, ">=");
          advance();
        } else {
          push(TokenKind::Greater, ">");
        }
        break;
      case '=': push(TokenKind::Assign, "="); break;
      default:
        throw ParseError(strCat("unexpected character '", c, "'"), line,
                         column);
    }
    advance();
  }
  push(TokenKind::EndOfFile, "");
  return tokens;
}

}  // namespace sherlock::frontend
