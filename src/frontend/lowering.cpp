#include "frontend/lowering.h"

#include <map>
#include <vector>

#include "frontend/parser.h"
#include "support/diagnostics.h"
#include "support/trace.h"

namespace sherlock::frontend {

namespace {

constexpr long kMaxLoopIterations = 1 << 20;

struct Symbol {
  bool isArray = false;
  bool isOutput = false;
  std::vector<ir::NodeId> slots;  // size 1 for scalars
};

class Lowering {
 public:
  ir::Graph run(const std::vector<Stmt>& program) {
    for (const Stmt& s : program) execute(s);
    finalizeOutputs();
    return std::move(g_);
  }

 private:
  [[noreturn]] void fail(const std::string& msg, int line, int column) {
    throw ParseError(msg, line, column);
  }

  // ---------------------------------------------------------- integers
  bool isLoopVar(const std::string& name) const {
    return loopVars_.contains(name);
  }

  int64_t evalInt(const Expr& e) {
    switch (e.kind) {
      case Expr::Kind::Number: return e.number;
      case Expr::Kind::Ref: {
        if (e.index)
          fail("array element used in integer context", e.line, e.column);
        auto it = loopVars_.find(e.name);
        if (it == loopVars_.end())
          fail(strCat("'", e.name, "' is not a loop variable"), e.line,
               e.column);
        return it->second;
      }
      case Expr::Kind::Neg: return -evalInt(*e.lhs);
      case Expr::Kind::Add: return evalInt(*e.lhs) + evalInt(*e.rhs);
      case Expr::Kind::Sub: return evalInt(*e.lhs) - evalInt(*e.rhs);
      case Expr::Kind::Mul: return evalInt(*e.lhs) * evalInt(*e.rhs);
      case Expr::Kind::Lt: return evalInt(*e.lhs) < evalInt(*e.rhs);
      case Expr::Kind::Le: return evalInt(*e.lhs) <= evalInt(*e.rhs);
      case Expr::Kind::Gt: return evalInt(*e.lhs) > evalInt(*e.rhs);
      case Expr::Kind::Ge: return evalInt(*e.lhs) >= evalInt(*e.rhs);
      default:
        fail("bit operator in integer context", e.line, e.column);
    }
  }

  // -------------------------------------------------------------- bits
  ir::NodeId constBit(bool v) {
    ir::NodeId& slot = constBit_[v];
    if (slot == ir::kInvalidNode) slot = g_.addConst(v);
    return slot;
  }

  ir::NodeId lowerBit(const Expr& e) {
    switch (e.kind) {
      case Expr::Kind::Number:
        if (e.number != 0 && e.number != 1)
          fail(strCat("bit constant must be 0 or 1, got ", e.number),
               e.line, e.column);
        return constBit(e.number == 1);
      case Expr::Kind::Ref: {
        auto it = symbols_.find(e.name);
        if (it == symbols_.end())
          fail(strCat("undeclared variable '", e.name, "'"), e.line,
               e.column);
        Symbol& sym = it->second;
        size_t idx = 0;
        if (sym.isArray) {
          if (!e.index)
            fail(strCat("array '", e.name, "' used without index"), e.line,
                 e.column);
          int64_t i = evalInt(*e.index);
          if (i < 0 || static_cast<size_t>(i) >= sym.slots.size())
            fail(strCat("index ", i, " out of bounds for '", e.name, "[",
                        sym.slots.size(), "]'"),
                 e.line, e.column);
          idx = static_cast<size_t>(i);
        } else if (e.index) {
          fail(strCat("scalar '", e.name, "' used with index"), e.line,
               e.column);
        }
        ir::NodeId v = sym.slots[idx];
        if (v == ir::kInvalidNode)
          fail(strCat("'", e.name, "' used before assignment"), e.line,
               e.column);
        return v;
      }
      case Expr::Kind::Not:
        return g_.addOp(ir::OpKind::Not, {lowerBit(*e.lhs)});
      case Expr::Kind::And:
        return g_.addOp(ir::OpKind::And,
                        {lowerBit(*e.lhs), lowerBit(*e.rhs)});
      case Expr::Kind::Or:
        return g_.addOp(ir::OpKind::Or,
                        {lowerBit(*e.lhs), lowerBit(*e.rhs)});
      case Expr::Kind::Xor:
        return g_.addOp(ir::OpKind::Xor,
                        {lowerBit(*e.lhs), lowerBit(*e.rhs)});
      default:
        fail("integer operator in bit context", e.line, e.column);
    }
  }

  // --------------------------------------------------------- execution
  Symbol& declare(const Stmt& s) {
    if (symbols_.contains(s.name) || loopVars_.contains(s.name))
      fail(strCat("redeclaration of '", s.name, "'"), s.line, s.column);
    Symbol sym;
    sym.isArray = s.arraySize >= 0;
    sym.slots.assign(sym.isArray ? static_cast<size_t>(s.arraySize) : 1,
                     ir::kInvalidNode);
    return symbols_.emplace(s.name, std::move(sym)).first->second;
  }

  void execute(const Stmt& s) {
    switch (s.kind) {
      case Stmt::Kind::DeclInput: {
        Symbol& sym = declare(s);
        if (sym.isArray) {
          for (size_t i = 0; i < sym.slots.size(); ++i)
            sym.slots[i] = g_.addInput(strCat(s.name, ".", i));
        } else {
          sym.slots[0] = g_.addInput(s.name);
        }
        break;
      }
      case Stmt::Kind::DeclOutput: {
        Symbol& sym = declare(s);
        sym.isOutput = true;
        outputOrder_.push_back(s.name);
        break;
      }
      case Stmt::Kind::DeclBit: {
        Symbol& sym = declare(s);
        if (s.value) {
          if (sym.isArray)
            fail("array declarations cannot have initializers", s.line,
                 s.column);
          sym.slots[0] = lowerBit(*s.value);
        }
        break;
      }
      case Stmt::Kind::Assign: {
        auto it = symbols_.find(s.name);
        if (it == symbols_.end())
          fail(strCat("assignment to undeclared variable '", s.name, "'"),
               s.line, s.column);
        Symbol& sym = it->second;
        size_t idx = 0;
        if (sym.isArray) {
          if (!s.index)
            fail(strCat("array '", s.name, "' assigned without index"),
                 s.line, s.column);
          int64_t i = evalInt(*s.index);
          if (i < 0 || static_cast<size_t>(i) >= sym.slots.size())
            fail(strCat("index ", i, " out of bounds for '", s.name, "'"),
                 s.line, s.column);
          idx = static_cast<size_t>(i);
        } else if (s.index) {
          fail(strCat("scalar '", s.name, "' assigned with index"), s.line,
               s.column);
        }
        sym.slots[idx] = lowerBit(*s.value);
        break;
      }
      case Stmt::Kind::For: {
        if (symbols_.contains(s.name))
          fail(strCat("loop variable '", s.name,
                      "' shadows a bit variable"),
               s.line, s.column);
        if (s.forStepVar != s.name)
          fail(strCat("loop step must update '", s.name, "'"), s.line,
               s.column);
        bool shadow = loopVars_.contains(s.name);
        int64_t saved = shadow ? loopVars_[s.name] : 0;
        loopVars_[s.name] = evalInt(*s.forInit);
        long guard = 0;
        while (evalInt(*s.forCond)) {
          if (++guard > kMaxLoopIterations)
            fail("loop exceeds the unrolling limit", s.line, s.column);
          for (const Stmt& inner : s.body) execute(inner);
          loopVars_[s.name] = evalInt(*s.forStep);
        }
        if (shadow)
          loopVars_[s.name] = saved;
        else
          loopVars_.erase(s.name);
        break;
      }
    }
  }

  void finalizeOutputs() {
    for (const std::string& name : outputOrder_) {
      const Symbol& sym = symbols_.at(name);
      for (size_t i = 0; i < sym.slots.size(); ++i) {
        if (sym.slots[i] == ir::kInvalidNode)
          throw ParseError(
              strCat("output '", name, "' element ", i, " never assigned"),
              0, 0);
        g_.markOutput(sym.slots[i]);
      }
    }
  }

  ir::Graph g_;
  std::map<std::string, Symbol> symbols_;
  std::map<std::string, int64_t> loopVars_;
  std::vector<std::string> outputOrder_;
  ir::NodeId constBit_[2] = {ir::kInvalidNode, ir::kInvalidNode};
};

}  // namespace

ir::Graph compileKernel(const std::string& source) {
  std::vector<Stmt> program = parseProgram(source);
  trace::Span span("frontend", "lower");
  return Lowering().run(program);
}

}  // namespace sherlock::frontend
