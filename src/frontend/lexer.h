// Lexer for the Sherlock kernel language — a C-like notation for bulk
// bitwise kernels (the role pycparser plays in the paper's flow). See
// parser.h for the grammar.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sherlock::frontend {

enum class TokenKind {
  Identifier,
  Number,
  KwInput,
  KwOutput,
  KwBit,
  KwFor,
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Semicolon,
  Comma,
  Assign,     // =
  Amp,        // &
  Pipe,       // |
  Caret,      // ^
  Tilde,      // ~
  Plus,
  Minus,
  Star,
  Less,       // <
  LessEq,     // <=
  Greater,    // >
  GreaterEq,  // >=
  EndOfFile,
};

struct Token {
  TokenKind kind = TokenKind::EndOfFile;
  std::string text;
  int64_t value = 0;  ///< for Number
  int line = 1;
  int column = 1;
};

/// Tokenizes `source`; throws ParseError on invalid characters. Supports
/// // line comments and /* block comments */.
std::vector<Token> tokenize(const std::string& source);

/// Token kind name for diagnostics.
std::string tokenKindName(TokenKind kind);

}  // namespace sherlock::frontend
