// Lowering from the kernel-language AST to the DAG IR: unrolls constant
// loops, evaluates integer expressions (array indices, loop headers) at
// compile time, and expands bit expressions into DAG op nodes — producing
// exactly the DFG the mapping algorithms consume (paper Fig. 1's
// "DFG generation" stage).
#pragma once

#include <string>

#include "ir/graph.h"

namespace sherlock::frontend {

/// Compiles kernel source into a DAG. Input declarations become named
/// Input nodes ("name" for scalars, "name.<i>" for array elements);
/// `output` symbols must be fully assigned and become graph outputs.
/// Throws ParseError on syntax or semantic errors.
ir::Graph compileKernel(const std::string& source);

}  // namespace sherlock::frontend
