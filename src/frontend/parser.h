// Parser for the Sherlock kernel language.
//
// Grammar (C-like; the front-end stands in for the paper's pycparser):
//
//   program   := item*
//   item      := 'input'  name dims? ';'
//              | 'output' name dims? ';'
//              | 'bit'    name dims? ('=' expr)? ';'
//              | stmt
//   stmt      := lvalue '=' expr ';'
//              | 'for' '(' name '=' expr ';' expr ';' name '=' expr ')'
//                '{' stmt* '}'
//   lvalue    := name ('[' expr ']')?
//   dims      := '[' number ']'
//
// Expressions use C precedence restricted to the kernel domain:
//   primary := number | name ('[' expr ']')? | '(' expr ')'
//   unary   := ('~' | '-') unary | primary
//   mul     := unary ('*' unary)*
//   add     := mul (('+'|'-') mul)*
//   rel     := add (('<'|'<='|'>'|'>=') add)?
//   band    := rel ('&' rel)*
//   bxor    := band ('^' band)*
//   bor     := bxor ('|' bxor)*
//
// Bit expressions (& | ^ ~, bit constants 0/1) and integer expressions
// (+ - *, loop variables, relationals) share this grammar; the lowering
// pass type-checks usage by context (array indices and loop headers are
// integers, assignments to bit variables are bits).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "frontend/lexer.h"

namespace sherlock::frontend {

struct Expr {
  enum class Kind {
    Number,
    Ref,    // name, possibly with index
    Not,    // ~a  (bit)
    Neg,    // -a  (integer)
    And,
    Or,
    Xor,
    Add,
    Sub,
    Mul,
    Lt,
    Le,
    Gt,
    Ge,
  };

  Kind kind = Kind::Number;
  int64_t number = 0;
  std::string name;
  std::unique_ptr<Expr> lhs;
  std::unique_ptr<Expr> rhs;
  std::unique_ptr<Expr> index;  ///< for indexed Ref
  int line = 0;
  int column = 0;
};

struct Stmt {
  enum class Kind { DeclInput, DeclOutput, DeclBit, Assign, For };

  Kind kind = Kind::Assign;
  // Declarations and assignment target.
  std::string name;
  int arraySize = -1;  ///< -1 = scalar
  std::unique_ptr<Expr> index;  ///< assignment target index
  std::unique_ptr<Expr> value;  ///< initializer / RHS
  // For loops.
  std::unique_ptr<Expr> forInit;
  std::unique_ptr<Expr> forCond;
  std::string forStepVar;
  std::unique_ptr<Expr> forStep;
  std::vector<Stmt> body;
  int line = 0;
  int column = 0;
};

/// Parses a kernel source into a statement list. Throws ParseError.
std::vector<Stmt> parseProgram(const std::string& source);

}  // namespace sherlock::frontend
