#include "frontend/parser.h"

#include "support/diagnostics.h"
#include "support/trace.h"

namespace sherlock::frontend {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  std::vector<Stmt> parse() {
    std::vector<Stmt> items;
    while (!at(TokenKind::EndOfFile)) items.push_back(parseItem());
    return items;
  }

 private:
  /// Recursive-descent depth cap: adversarial inputs (deeply nested
  /// parentheses, '~' chains, nested for loops) must fail with a
  /// ParseError, not exhaust the stack.
  static constexpr int kMaxDepth = 256;
  /// Cap on one operator chain (a & b & c & ...): the chain parses
  /// iteratively but produces a left-leaning tree that downstream
  /// recursion (lowering, destruction) walks depth-first.
  static constexpr int kMaxChainLength = 8192;

  struct DepthGuard {
    DepthGuard(Parser& p, const Token& where) : p_(p) {
      if (++p_.depth_ > kMaxDepth)
        throw ParseError(strCat("nesting deeper than ", kMaxDepth,
                                " levels"),
                         where.line, where.column);
    }
    ~DepthGuard() { --p_.depth_; }
    Parser& p_;
  };

  int depth_ = 0;

  const Token& peek() const { return tokens_[pos_]; }
  bool at(TokenKind kind) const { return peek().kind == kind; }

  Token consume() { return tokens_[pos_++]; }

  Token expect(TokenKind kind) {
    if (!at(kind))
      throw ParseError(strCat("expected ", tokenKindName(kind), ", found ",
                              tokenKindName(peek().kind), " '", peek().text,
                              "'"),
                       peek().line, peek().column);
    return consume();
  }

  std::unique_ptr<Expr> makeExpr(Expr::Kind kind, const Token& at) {
    auto e = std::make_unique<Expr>();
    e->kind = kind;
    e->line = at.line;
    e->column = at.column;
    return e;
  }

  // ------------------------------------------------------- expressions
  std::unique_ptr<Expr> parsePrimary() {
    if (at(TokenKind::Number)) {
      Token t = consume();
      auto e = makeExpr(Expr::Kind::Number, t);
      e->number = t.value;
      return e;
    }
    if (at(TokenKind::Identifier)) {
      Token t = consume();
      auto e = makeExpr(Expr::Kind::Ref, t);
      e->name = t.text;
      if (at(TokenKind::LBracket)) {
        consume();
        e->index = parseExpr();
        expect(TokenKind::RBracket);
      }
      return e;
    }
    if (at(TokenKind::LParen)) {
      consume();
      auto e = parseExpr();
      expect(TokenKind::RParen);
      return e;
    }
    throw ParseError(strCat("expected expression, found ",
                            tokenKindName(peek().kind)),
                     peek().line, peek().column);
  }

  std::unique_ptr<Expr> parseUnary() {
    DepthGuard guard(*this, peek());
    if (at(TokenKind::Tilde) || at(TokenKind::Minus)) {
      Token t = consume();
      auto e = makeExpr(
          t.kind == TokenKind::Tilde ? Expr::Kind::Not : Expr::Kind::Neg, t);
      e->lhs = parseUnary();
      return e;
    }
    return parsePrimary();
  }

  std::unique_ptr<Expr> parseBinaryChain(
      std::unique_ptr<Expr> (Parser::*next)(),
      std::initializer_list<std::pair<TokenKind, Expr::Kind>> table) {
    auto lhs = (this->*next)();
    int length = 0;
    for (;;) {
      bool matched = false;
      for (const auto& [tok, kind] : table) {
        if (!at(tok)) continue;
        Token t = consume();
        if (++length > kMaxChainLength)
          throw ParseError(strCat("operator chain longer than ",
                                  kMaxChainLength, " terms"),
                           t.line, t.column);
        auto e = makeExpr(kind, t);
        e->lhs = std::move(lhs);
        e->rhs = (this->*next)();
        lhs = std::move(e);
        matched = true;
        break;
      }
      if (!matched) return lhs;
    }
  }

  std::unique_ptr<Expr> parseMul() {
    return parseBinaryChain(&Parser::parseUnary,
                            {{TokenKind::Star, Expr::Kind::Mul}});
  }
  std::unique_ptr<Expr> parseAdd() {
    return parseBinaryChain(&Parser::parseMul,
                            {{TokenKind::Plus, Expr::Kind::Add},
                             {TokenKind::Minus, Expr::Kind::Sub}});
  }
  std::unique_ptr<Expr> parseRel() {
    auto lhs = parseAdd();
    for (const auto& [tok, kind] :
         std::initializer_list<std::pair<TokenKind, Expr::Kind>>{
             {TokenKind::Less, Expr::Kind::Lt},
             {TokenKind::LessEq, Expr::Kind::Le},
             {TokenKind::Greater, Expr::Kind::Gt},
             {TokenKind::GreaterEq, Expr::Kind::Ge}}) {
      if (at(tok)) {
        Token t = consume();
        auto e = makeExpr(kind, t);
        e->lhs = std::move(lhs);
        e->rhs = parseAdd();
        return e;
      }
    }
    return lhs;
  }
  std::unique_ptr<Expr> parseBand() {
    return parseBinaryChain(&Parser::parseRel,
                            {{TokenKind::Amp, Expr::Kind::And}});
  }
  std::unique_ptr<Expr> parseBxor() {
    return parseBinaryChain(&Parser::parseBand,
                            {{TokenKind::Caret, Expr::Kind::Xor}});
  }
  std::unique_ptr<Expr> parseExpr() {
    return parseBinaryChain(&Parser::parseBxor,
                            {{TokenKind::Pipe, Expr::Kind::Or}});
  }

  // --------------------------------------------------------- statements
  Stmt parseDecl(Stmt::Kind kind) {
    Token kw = consume();  // input/output/bit keyword
    Stmt s;
    s.kind = kind;
    s.line = kw.line;
    s.column = kw.column;
    s.name = expect(TokenKind::Identifier).text;
    if (at(TokenKind::LBracket)) {
      consume();
      Token n = expect(TokenKind::Number);
      if (n.value <= 0)
        throw ParseError(strCat("array size must be positive, got ",
                                n.text),
                         n.line, n.column);
      constexpr int64_t kMaxArraySize = 1 << 20;
      if (n.value > kMaxArraySize)
        throw ParseError(strCat("array size ", n.text, " exceeds the ",
                                kMaxArraySize, " limit"),
                         n.line, n.column);
      s.arraySize = static_cast<int>(n.value);
      expect(TokenKind::RBracket);
    }
    if (kind == Stmt::Kind::DeclBit && at(TokenKind::Assign)) {
      consume();
      s.value = parseExpr();
    }
    expect(TokenKind::Semicolon);
    return s;
  }

  Stmt parseFor() {
    Token kw = expect(TokenKind::KwFor);
    Stmt s;
    s.kind = Stmt::Kind::For;
    s.line = kw.line;
    s.column = kw.column;
    expect(TokenKind::LParen);
    s.name = expect(TokenKind::Identifier).text;
    expect(TokenKind::Assign);
    s.forInit = parseExpr();
    expect(TokenKind::Semicolon);
    s.forCond = parseExpr();
    expect(TokenKind::Semicolon);
    s.forStepVar = expect(TokenKind::Identifier).text;
    expect(TokenKind::Assign);
    s.forStep = parseExpr();
    expect(TokenKind::RParen);
    expect(TokenKind::LBrace);
    while (!at(TokenKind::RBrace)) s.body.push_back(parseStmt());
    expect(TokenKind::RBrace);
    return s;
  }

  Stmt parseAssign() {
    Token id = expect(TokenKind::Identifier);
    Stmt s;
    s.kind = Stmt::Kind::Assign;
    s.line = id.line;
    s.column = id.column;
    s.name = id.text;
    if (at(TokenKind::LBracket)) {
      consume();
      s.index = parseExpr();
      expect(TokenKind::RBracket);
    }
    expect(TokenKind::Assign);
    s.value = parseExpr();
    expect(TokenKind::Semicolon);
    return s;
  }

  Stmt parseStmt() {
    DepthGuard guard(*this, peek());
    if (at(TokenKind::KwFor)) return parseFor();
    if (at(TokenKind::KwBit)) return parseDecl(Stmt::Kind::DeclBit);
    return parseAssign();
  }

  Stmt parseItem() {
    switch (peek().kind) {
      case TokenKind::KwInput: return parseDecl(Stmt::Kind::DeclInput);
      case TokenKind::KwOutput: return parseDecl(Stmt::Kind::DeclOutput);
      case TokenKind::KwBit: return parseDecl(Stmt::Kind::DeclBit);
      case TokenKind::KwFor: return parseFor();
      default: return parseAssign();
    }
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

std::vector<Stmt> parseProgram(const std::string& source) {
  trace::Span span("frontend", "parse");
  return Parser(tokenize(source)).parse();
}

}  // namespace sherlock::frontend
