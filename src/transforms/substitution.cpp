#include "transforms/substitution.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include "ir/analysis.h"
#include "support/trace.h"
#include "transforms/rewriter.h"

namespace sherlock::transforms {

using ir::Graph;
using ir::Node;
using ir::NodeId;
using ir::OpKind;

namespace {

/// Base associative operation of an op kind (And for Nand, etc.).
OpKind baseOf(OpKind op) {
  switch (op) {
    case OpKind::Nand: return OpKind::And;
    case OpKind::Nor: return OpKind::Or;
    case OpKind::Xnor: return OpKind::Xor;
    default: return op;
  }
}

bool isInverted(OpKind op) {
  return op == OpKind::Nand || op == OpKind::Nor || op == OpKind::Xnor;
}

/// Disjoint-set over op nodes tracking the effective operand count of each
/// merged component. The representative is always the absorbing (consumer)
/// side, i.e. the node that survives in the rewritten graph.
class MergeForest {
 public:
  explicit MergeForest(const Graph& g)
      : parent_(g.numNodes()), size_(g.numNodes(), 0) {
    for (NodeId i = g.firstId(); i < g.endId(); ++i) {
      parent_[static_cast<size_t>(i)] = i;
      const Node& n = g.node(i);
      if (n.isOp()) size_[static_cast<size_t>(i)] =
          static_cast<int>(n.operands.size());
    }
  }

  NodeId find(NodeId x) const {
    while (parent_[static_cast<size_t>(x)] != x)
      x = parent_[static_cast<size_t>(x)];
    return x;
  }

  int effectiveSize(NodeId x) const { return size_[static_cast<size_t>(find(x))]; }

  /// Absorbs producer `p` (a component root) into consumer `c`'s component.
  void absorb(NodeId p, NodeId c) {
    NodeId rootC = find(c);
    NodeId rootP = find(p);
    SHERLOCK_ASSERT(rootP == p, "producer must be its component root");
    SHERLOCK_ASSERT(rootC != rootP, "merge would form a cycle");
    parent_[static_cast<size_t>(rootP)] = rootC;
    // The edge p->c is replaced by p's operands.
    size_[static_cast<size_t>(rootC)] +=
        size_[static_cast<size_t>(rootP)] - 1;
  }

  bool isAbsorbed(NodeId x) const {
    return parent_[static_cast<size_t>(x)] != x;
  }

 private:
  std::vector<NodeId> parent_;
  std::vector<int> size_;
};

/// Number of times `operand` appears in `node`'s operand list.
int occurrenceCount(const Node& node, NodeId operand) {
  return static_cast<int>(
      std::count(node.operands.begin(), node.operands.end(), operand));
}

struct Candidate {
  NodeId producer;  ///< the node to be absorbed
  NodeId consumer;  ///< its unique user
};

}  // namespace

SubstitutionResult substituteNodes(const Graph& g,
                                   const SubstitutionOptions& options) {
  trace::Span span("transforms", "substitution");
  checkArg(options.maxOperands >= 2, "maxOperands must be >= 2");
  checkArg(options.fraction >= 0.0 && options.fraction <= 1.0,
           "fraction must be in [0, 1]");

  auto levels = ir::bLevels(g);
  std::vector<bool> isOutput(g.numNodes(), false);
  for (NodeId out : g.outputs()) isOutput[static_cast<size_t>(out)] = true;

  // Enumerate merge opportunities: single-use associative producers feeding
  // a same-base consumer.
  std::vector<Candidate> candidates;
  for (NodeId p = g.firstId(); p < g.endId(); ++p) {
    const Node& prod = g.node(p);
    if (!prod.isOp() || !ir::isSubstitutable(prod.op)) continue;
    if (isOutput[static_cast<size_t>(p)]) continue;
    if (prod.users.size() != 1) continue;
    NodeId c = prod.users[0];
    const Node& cons = g.node(c);
    if (baseOf(cons.op) != prod.op) continue;
    if (occurrenceCount(cons, p) != 1) continue;
    candidates.push_back({p, c});
  }

  // Deterministic application order (the Fig. 6 flow knob).
  std::stable_sort(
      candidates.begin(), candidates.end(),
      [&](const Candidate& a, const Candidate& b) {
        auto keyOf = [&](const Candidate& x) {
          int lp = levels[static_cast<size_t>(x.producer)];
          int lc = levels[static_cast<size_t>(x.consumer)];
          return options.order == MergeOrder::ByPriority ? lp : lp - lc;
        };
        int ka = keyOf(a), kb = keyOf(b);
        if (ka != kb) return ka > kb;
        return a.producer < b.producer;
      });

  size_t allowed = static_cast<size_t>(
      std::llround(options.fraction * static_cast<double>(candidates.size())));

  MergeForest forest(g);
  SubstitutionStats stats;
  stats.candidates = candidates.size();
  for (const Candidate& cand : candidates) {
    if (stats.applied >= allowed) break;
    int merged = forest.effectiveSize(cand.consumer) +
                 forest.effectiveSize(cand.producer) - 1;
    if (merged > options.maxOperands) continue;
    forest.absorb(cand.producer, cand.consumer);
    stats.applied++;
  }

  // Rebuild: every surviving op node splices in the operand lists of the
  // producers absorbed into its component.
  Rewriter rw(g);
  Graph& dest = rw.dest();
  NodeId constId[2] = {ir::kInvalidNode, ir::kInvalidNode};
  auto getConst = [&](bool v) {
    if (constId[v] == ir::kInvalidNode) constId[v] = dest.addConst(v);
    return constId[v];
  };

  for (NodeId i = g.firstId(); i < g.endId(); ++i) {
    const Node& n = g.node(i);
    if (!n.isOp()) {
      rw.cloneNode(i);
      continue;
    }
    if (forest.isAbsorbed(i)) continue;  // spliced into its consumer
    if (ir::isUnary(n.op)) {
      // Unary ops never participate in merging; copy verbatim.
      rw.cloneNode(i);
      continue;
    }

    // Flatten the component rooted at i in source-operand order.
    std::vector<NodeId> flat;
    std::vector<NodeId> stack(n.operands.rbegin(), n.operands.rend());
    while (!stack.empty()) {
      NodeId o = stack.back();
      stack.pop_back();
      if (g.node(o).isOp() && forest.isAbsorbed(o) &&
          forest.find(o) == i) {
        const auto& inner = g.node(o).operands;
        stack.insert(stack.end(), inner.rbegin(), inner.rend());
      } else {
        flat.push_back(rw.lookup(o));
      }
    }

    OpKind base = baseOf(n.op);
    bool inverted = isInverted(n.op);
    // Duplicate handling keeps the semantics exact: And/Or are idempotent,
    // Xor cancels pairs.
    std::map<NodeId, int> mult;
    std::vector<NodeId> unique;
    for (NodeId o : flat)
      if (mult[o]++ == 0) unique.push_back(o);
    std::vector<NodeId> finalOps;
    for (NodeId o : unique) {
      int m = mult[o];
      bool keep = (base == OpKind::Xor) ? (m % 2 == 1) : true;
      if (keep) finalOps.push_back(o);
    }

    NodeId result;
    if (finalOps.empty()) {
      // Only possible for Xor with full cancellation.
      result = getConst(inverted);
    } else if (finalOps.size() == 1) {
      result = inverted ? dest.addOp(OpKind::Not, {finalOps[0]})
                        : finalOps[0];
    } else {
      result = dest.addOp(n.op, std::move(finalOps), n.name);
    }
    rw.mapTo(i, result);
  }
  rw.carryOutputs();

  SubstitutionResult res{std::move(rw).take(), stats};
  for (NodeId i = res.graph.firstId(); i < res.graph.endId(); ++i) {
    const Node& n = res.graph.node(i);
    if (!n.isOp()) continue;
    res.stats.totalOps++;
    if (n.operands.size() > 2) res.stats.wideOps++;
  }
  return res;
}

}  // namespace sherlock::transforms
