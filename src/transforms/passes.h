// Standard cleanup passes over the DAG IR: dead-node elimination, common
// subexpression elimination, and constant folding. All passes are
// functional (input graph is untouched) and preserve the bulk-bitwise
// semantics of the marked outputs.
#pragma once

#include "ir/graph.h"

namespace sherlock::transforms {

/// Removes every node that no marked output transitively depends on.
/// Inputs are always kept (they define the external interface).
ir::Graph eliminateDeadNodes(const ir::Graph& g);

/// Merges structurally identical op nodes (same kind and operand multiset
/// for commutative ops; same operand sequence otherwise).
ir::Graph eliminateCommonSubexpressions(const ir::Graph& g);

/// Folds operations whose operands are all constants, and simplifies
/// identities with all-zeros / all-ones constants (x & 0 = 0, x | 0 = x,
/// x ^ 0 = x, x & 1 = x, x | 1 = 1, x ^ 1 = ~x, ...).
ir::Graph foldConstants(const ir::Graph& g);

/// Convenience pipeline: fold, CSE, then DCE.
ir::Graph canonicalize(const ir::Graph& g);

/// Inverter folding: absorbs NOT nodes into the native inverted scouting
/// ops and applies De Morgan rewrites, shrinking the instruction count on
/// NOT-heavy front-end output. Rules (all exact):
///   NOT(x) where x is a single-use logic op  ->  the inverted-kind op
///   AND/OR/NAND/NOR whose operands are all NOTs  ->  De Morgan dual
///   XOR/XNOR strip NOT operands pairwise (parity absorbed in the kind)
ir::Graph foldInverters(const ir::Graph& g);

/// The full optimization pipeline: canonicalize, fold inverters, and
/// canonicalize again (inverter folding exposes new CSE opportunities).
ir::Graph optimize(const ir::Graph& g);

}  // namespace sherlock::transforms
