// Node substitution (paper Sec. 3.3.3): when an associative op node's
// output is used exactly once, by an op with the same base operation, the
// two nodes can be replaced by a single node with the union of their
// operands. On scouting-logic hardware the merged node executes as ONE
// multi-row activation (MRA): fewer instructions and lower latency, but a
// smaller sense margin and hence higher decision-failure probability.
//
// The `fraction` knob bounds how many merge opportunities are applied; it
// is the sweep variable of the paper's Fig. 6 reliability/latency
// trade-off study.
#pragma once

#include <cstddef>

#include "ir/graph.h"

namespace sherlock::transforms {

/// Order in which merge opportunities are considered.
enum class MergeOrder {
  /// Descending producer b-level (deepest chains first). This choice is
  /// independent of mapping decisions — the flow used with the naive
  /// mapper, which yields the paper's near-linear Fig. 6 curve.
  ByPriority,
  /// Descending critical-path impact (producer-minus-consumer priority
  /// gap), the choice coupled to the optimized mapper's clustering
  /// heuristics; interacts with instruction merging and yields the
  /// irregular Fig. 6 curve.
  ByAffinity,
};

struct SubstitutionOptions {
  /// Maximum operands of a merged node = maximum simultaneously activated
  /// rows the target supports.
  int maxOperands = 4;
  /// Fraction of merge opportunities to apply, in [0, 1]. 0 keeps the
  /// original 2-operand DAG; 1 merges everything that fits maxOperands.
  double fraction = 1.0;
  MergeOrder order = MergeOrder::ByPriority;
};

struct SubstitutionStats {
  size_t candidates = 0;    ///< merge opportunities found
  size_t applied = 0;       ///< merges actually performed
  size_t totalOps = 0;      ///< op nodes in the resulting graph
  size_t wideOps = 0;       ///< resulting ops with > 2 operands
  /// Fraction of resulting ops using MRA with > 2 operands (the number
  /// annotated on the paper's Fig. 6 data points).
  double wideFraction() const {
    return totalOps == 0 ? 0.0
                         : static_cast<double>(wideOps) /
                               static_cast<double>(totalOps);
  }
};

struct SubstitutionResult {
  ir::Graph graph;
  SubstitutionStats stats;
};

/// Applies node substitution to `g` under `options`. Exact semantics are
/// preserved: And/Or absorb duplicate operands idempotently and Xor cancels
/// operand pairs during flattening.
SubstitutionResult substituteNodes(const ir::Graph& g,
                                   const SubstitutionOptions& options);

}  // namespace sherlock::transforms
