// Utility for building a new Graph from an existing one while remapping
// node ids. All transform passes are functional: they return a fresh graph
// and never mutate their input.
#pragma once

#include <vector>

#include "ir/graph.h"

namespace sherlock::transforms {

/// Incrementally clones nodes of a source graph into a destination graph.
/// Passes decide per node whether to copy it verbatim (`cloneNode`) or to
/// emit replacement nodes and record the mapping (`mapTo`).
class Rewriter {
 public:
  explicit Rewriter(const ir::Graph& source) noexcept
      : source_(source), mapping_(source.numNodes(), ir::kInvalidNode) {}

  /// Copies `id` (with operands remapped) into the destination graph and
  /// records the mapping. Operands must already be mapped.
  ir::NodeId cloneNode(ir::NodeId id);

  /// Records that source node `id` is represented by destination node
  /// `replacement` without copying anything.
  void mapTo(ir::NodeId id, ir::NodeId replacement);

  /// Destination id for a source id; throws if the node was skipped.
  ir::NodeId lookup(ir::NodeId id) const;

  /// True if the source node has a destination mapping.
  bool isMapped(ir::NodeId id) const {
    return mapping_[static_cast<size_t>(id)] != ir::kInvalidNode;
  }

  /// Marks the destination images of the source graph's outputs.
  void carryOutputs();

  ir::Graph& dest() { return dest_; }
  const ir::Graph& source() const { return source_; }

  /// Finalizes and returns the destination graph.
  ir::Graph take() && { return std::move(dest_); }

 private:
  const ir::Graph& source_;
  ir::Graph dest_;
  std::vector<ir::NodeId> mapping_;
};

}  // namespace sherlock::transforms
