#include "transforms/rewriter.h"

namespace sherlock::transforms {

using ir::Node;
using ir::NodeId;

NodeId Rewriter::cloneNode(NodeId id) {
  const Node& n = source_.node(id);
  NodeId copy = ir::kInvalidNode;
  switch (n.kind) {
    case Node::Kind::Input:
      copy = dest_.addInput(n.name);
      break;
    case Node::Kind::Const:
      copy = dest_.addConst(n.constValue);
      break;
    case Node::Kind::Op: {
      std::vector<NodeId> ops;
      ops.reserve(n.operands.size());
      for (NodeId o : n.operands) ops.push_back(lookup(o));
      copy = dest_.addOp(n.op, std::move(ops), n.name);
      break;
    }
  }
  mapping_[static_cast<size_t>(id)] = copy;
  return copy;
}

void Rewriter::mapTo(NodeId id, NodeId replacement) {
  SHERLOCK_ASSERT(replacement >= 0 && replacement < dest_.endId(),
                  "replacement id ", replacement, " not in destination");
  mapping_[static_cast<size_t>(id)] = replacement;
}

NodeId Rewriter::lookup(NodeId id) const {
  SHERLOCK_ASSERT(id >= 0 && static_cast<size_t>(id) < mapping_.size(),
                  "source id ", id, " out of range");
  NodeId m = mapping_[static_cast<size_t>(id)];
  SHERLOCK_ASSERT(m != ir::kInvalidNode, "source node ", id,
                  " has no destination mapping");
  return m;
}

void Rewriter::carryOutputs() {
  for (NodeId out : source_.outputs()) dest_.markOutput(lookup(out));
}

}  // namespace sherlock::transforms
