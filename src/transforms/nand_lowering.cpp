#include "transforms/nand_lowering.h"

#include <vector>

#include "support/trace.h"
#include "transforms/rewriter.h"

namespace sherlock::transforms {

using ir::Graph;
using ir::Node;
using ir::NodeId;
using ir::OpKind;

namespace {

/// Emits the 2-input XOR NAND network; returns {xor, and2} where and2 is
/// the inner NAND pair usable for the XNOR variant.
NodeId emitXor2(Graph& dest, NodeId a, NodeId b, bool inverted) {
  NodeId t = dest.addOp(OpKind::Nand, {a, b});
  NodeId u = dest.addOp(OpKind::Nand, {a, t});
  NodeId v = dest.addOp(OpKind::Nand, {b, t});
  return dest.addOp(inverted ? OpKind::And : OpKind::Nand, {u, v});
}

/// Lowers a k-input XOR (or XNOR when `inverted`) via a balanced tree of
/// 2-input lowered XORs.
NodeId emitXorTree(Graph& dest, std::vector<NodeId> xs, bool inverted) {
  SHERLOCK_ASSERT(xs.size() >= 2, "xor tree needs >= 2 operands");
  while (xs.size() > 2) {
    std::vector<NodeId> next;
    for (size_t i = 0; i + 1 < xs.size(); i += 2)
      next.push_back(emitXor2(dest, xs[i], xs[i + 1], /*inverted=*/false));
    if (xs.size() % 2 == 1) next.push_back(xs.back());
    xs = std::move(next);
  }
  return emitXor2(dest, xs[0], xs[1], inverted);
}

}  // namespace

Graph lowerToNand(const Graph& g) {
  trace::Span span("transforms", "nand_lowering");
  Rewriter rw(g);
  Graph& dest = rw.dest();

  auto emitNot = [&](NodeId x) {
    const Node& n = dest.node(x);
    if (n.isOp() && n.op == OpKind::Not) return n.operands[0];
    return dest.addOp(OpKind::Not, {x});
  };

  for (NodeId i = g.firstId(); i < g.endId(); ++i) {
    const Node& n = g.node(i);
    if (!n.isOp()) {
      rw.cloneNode(i);
      continue;
    }
    std::vector<NodeId> ops;
    ops.reserve(n.operands.size());
    for (NodeId o : n.operands) ops.push_back(rw.lookup(o));

    switch (n.op) {
      case OpKind::And:
      case OpKind::Nand:
      case OpKind::Not:
      case OpKind::Copy:
        rw.cloneNode(i);
        break;
      case OpKind::Or:
      case OpKind::Nor: {
        std::vector<NodeId> inverted;
        inverted.reserve(ops.size());
        for (NodeId o : ops) inverted.push_back(emitNot(o));
        OpKind k = n.op == OpKind::Or ? OpKind::Nand : OpKind::And;
        rw.mapTo(i, dest.addOp(k, std::move(inverted), n.name));
        break;
      }
      case OpKind::Xor:
      case OpKind::Xnor:
        rw.mapTo(i, emitXorTree(dest, std::move(ops),
                                n.op == OpKind::Xnor));
        break;
    }
  }
  rw.carryOutputs();
  return std::move(rw).take();
}

bool isNandOnly(const Graph& g) {
  for (NodeId i = g.firstId(); i < g.endId(); ++i) {
    const Node& n = g.node(i);
    if (!n.isOp()) continue;
    switch (n.op) {
      case OpKind::And:
      case OpKind::Nand:
      case OpKind::Not:
      case OpKind::Copy:
        break;
      default:
        return false;
    }
  }
  return true;
}

}  // namespace sherlock::transforms
