#include "transforms/passes.h"

#include <algorithm>
#include <map>
#include <optional>
#include <tuple>
#include <vector>

#include "support/trace.h"
#include "transforms/rewriter.h"

namespace sherlock::transforms {

using ir::Graph;
using ir::Node;
using ir::NodeId;
using ir::OpKind;

Graph eliminateDeadNodes(const Graph& g) {
  trace::Span span("transforms", "dce");
  std::vector<bool> live(g.numNodes(), false);
  std::vector<NodeId> stack(g.outputs().begin(), g.outputs().end());
  while (!stack.empty()) {
    NodeId id = stack.back();
    stack.pop_back();
    if (live[static_cast<size_t>(id)]) continue;
    live[static_cast<size_t>(id)] = true;
    for (NodeId o : g.node(id).operands) stack.push_back(o);
  }

  Rewriter rw(g);
  for (NodeId i = g.firstId(); i < g.endId(); ++i) {
    const Node& n = g.node(i);
    if (n.isInput() || live[static_cast<size_t>(i)]) rw.cloneNode(i);
  }
  rw.carryOutputs();
  return std::move(rw).take();
}

namespace {

/// Structural key identifying an op node up to commutativity.
using CseKey = std::tuple<OpKind, std::vector<NodeId>>;

CseKey makeKey(OpKind op, std::vector<NodeId> operands) {
  if (!ir::isUnary(op)) std::sort(operands.begin(), operands.end());
  return {op, std::move(operands)};
}

}  // namespace

Graph eliminateCommonSubexpressions(const Graph& g) {
  trace::Span span("transforms", "cse");
  Rewriter rw(g);
  std::map<CseKey, NodeId> seen;
  for (NodeId i = g.firstId(); i < g.endId(); ++i) {
    const Node& n = g.node(i);
    if (!n.isOp()) {
      rw.cloneNode(i);
      continue;
    }
    std::vector<NodeId> mapped;
    mapped.reserve(n.operands.size());
    for (NodeId o : n.operands) mapped.push_back(rw.lookup(o));
    CseKey key = makeKey(n.op, mapped);
    auto it = seen.find(key);
    if (it != seen.end()) {
      rw.mapTo(i, it->second);
    } else {
      NodeId copy = rw.cloneNode(i);
      seen.emplace(std::move(key), copy);
    }
  }
  rw.carryOutputs();
  return std::move(rw).take();
}

namespace {

/// Base (non-inverted) op and whether the node inverts its base result.
std::pair<OpKind, bool> splitInversion(OpKind op) {
  switch (op) {
    case OpKind::Nand: return {OpKind::And, true};
    case OpKind::Nor: return {OpKind::Or, true};
    case OpKind::Xnor: return {OpKind::Xor, true};
    default: return {op, false};
  }
}

}  // namespace

Graph foldConstants(const Graph& g) {
  trace::Span span("transforms", "fold_constants");
  Rewriter rw(g);
  Graph& dest = rw.dest();

  // Lazily created shared constants in the destination graph.
  NodeId constId[2] = {ir::kInvalidNode, ir::kInvalidNode};
  auto getConst = [&](bool v) {
    if (constId[v] == ir::kInvalidNode) constId[v] = dest.addConst(v);
    return constId[v];
  };
  auto destConst = [&](NodeId id, bool& value) {
    const Node& n = dest.node(id);
    if (!n.isConst()) return false;
    value = n.constValue;
    return true;
  };
  // Emits NOT(x), collapsing double negation.
  auto emitNot = [&](NodeId x) {
    const Node& n = dest.node(x);
    if (n.isOp() && n.op == OpKind::Not) return n.operands[0];
    bool v;
    if (destConst(x, v)) return getConst(!v);
    return dest.addOp(OpKind::Not, {x});
  };

  for (NodeId i = g.firstId(); i < g.endId(); ++i) {
    const Node& n = g.node(i);
    if (!n.isOp()) {
      rw.cloneNode(i);
      continue;
    }
    std::vector<NodeId> mapped;
    mapped.reserve(n.operands.size());
    for (NodeId o : n.operands) mapped.push_back(rw.lookup(o));

    if (n.op == OpKind::Copy) {
      rw.mapTo(i, mapped[0]);
      continue;
    }
    if (n.op == OpKind::Not) {
      rw.mapTo(i, emitNot(mapped[0]));
      continue;
    }

    auto [base, inverted] = splitInversion(n.op);
    // Partition operands into a constant accumulator and the rest, folding
    // duplicate operands: And/Or are idempotent, Xor cancels pairs.
    bool haveConst = false;
    bool acc = (base == OpKind::And);  // identity element
    std::vector<NodeId> rest;
    bool changed = false;
    for (NodeId m : mapped) {
      bool v;
      if (destConst(m, v)) {
        haveConst = true;
        changed = true;
        switch (base) {
          case OpKind::And: acc = acc && v; break;
          case OpKind::Or: acc = acc || v; break;
          case OpKind::Xor: acc = acc != v; break;
          default: throw InternalError("foldConstants: bad base op");
        }
      } else {
        auto dup = std::find(rest.begin(), rest.end(), m);
        if (dup == rest.end()) {
          rest.push_back(m);
        } else {
          changed = true;
          if (base == OpKind::Xor) rest.erase(dup);  // x ^ x = 0
          // And/Or: idempotent, simply drop the duplicate.
        }
      }
    }
    if (!changed) {
      // Nothing to fold; keep the op (including native inverted forms).
      rw.mapTo(i, dest.addOp(n.op, mapped, n.name));
      continue;
    }
    if (rest.empty() && !haveConst) {
      // Full Xor cancellation without any constant operand.
      rw.mapTo(i, getConst(inverted));
      continue;
    }

    NodeId result;
    bool absorbing = (base == OpKind::And && !acc) ||
                     (base == OpKind::Or && acc);
    if (absorbing || rest.empty()) {
      // Absorbing element dominates, or all operands were constant; either
      // way the accumulated constant is the base result.
      result = getConst(inverted ? !acc : acc);
    } else {
      // Identity constants vanish; an odd XOR constant contributes one
      // inversion, which cancels against an inverted op kind (e.g.
      // XNOR(x, 1) == NOT(x ^ 1) == x).
      bool negate = inverted != (base == OpKind::Xor && acc);
      NodeId core = rest.size() == 1 ? rest[0]
                                     : dest.addOp(base, rest, n.name);
      result = negate ? emitNot(core) : core;
    }
    rw.mapTo(i, result);
  }
  rw.carryOutputs();
  return eliminateDeadNodes(std::move(rw).take());
}

Graph canonicalize(const Graph& g) {
  trace::Span span("transforms", "canonicalize");
  // CSE can reveal new folding opportunities (merged operands become
  // duplicates), so fold runs on both sides of it.
  return eliminateDeadNodes(
      foldConstants(eliminateCommonSubexpressions(foldConstants(g))));
}

namespace {

/// The op kind computing the complement of `op`, if any.
std::optional<OpKind> invertedKind(OpKind op) {
  switch (op) {
    case OpKind::And: return OpKind::Nand;
    case OpKind::Nand: return OpKind::And;
    case OpKind::Or: return OpKind::Nor;
    case OpKind::Nor: return OpKind::Or;
    case OpKind::Xor: return OpKind::Xnor;
    case OpKind::Xnor: return OpKind::Xor;
    default: return std::nullopt;
  }
}

/// De Morgan dual: f(NOT x1, .., NOT xk) == dual(x1, .., xk).
std::optional<OpKind> deMorganDual(OpKind op) {
  switch (op) {
    case OpKind::And: return OpKind::Nor;
    case OpKind::Or: return OpKind::Nand;
    case OpKind::Nand: return OpKind::Or;
    case OpKind::Nor: return OpKind::And;
    default: return std::nullopt;
  }
}

}  // namespace

Graph foldInverters(const Graph& g) {
  trace::Span span("transforms", "fold_inverters");
  Rewriter rw(g);
  Graph& dest = rw.dest();

  for (NodeId i = g.firstId(); i < g.endId(); ++i) {
    const Node& n = g.node(i);
    if (!n.isOp()) {
      rw.cloneNode(i);
      continue;
    }

    if (n.op == OpKind::Not) {
      NodeId m = rw.lookup(n.operands[0]);
      const Node& md = dest.node(m);
      // NOT(NOT(x)) -> x.
      if (md.isOp() && md.op == OpKind::Not) {
        rw.mapTo(i, md.operands[0]);
        continue;
      }
      // NOT over a single-use logic op becomes the inverted-kind op. The
      // single-use gate (on the source) avoids duplicating shared logic;
      // the rewrite itself must use the destination node's actual kind
      // (earlier rules may already have flipped it).
      const Node& src = g.node(n.operands[0]);
      if (src.isOp() && src.users.size() == 1 && md.isOp()) {
        if (auto inv = invertedKind(md.op)) {
          rw.mapTo(i, dest.addOp(*inv, md.operands, md.name));
          continue;
        }
      }
      rw.cloneNode(i);
      continue;
    }

    std::vector<NodeId> mapped;
    mapped.reserve(n.operands.size());
    for (NodeId o : n.operands) mapped.push_back(rw.lookup(o));

    auto strippedOf = [&](NodeId m) -> std::optional<NodeId> {
      const Node& md = dest.node(m);
      if (md.isOp() && md.op == OpKind::Not) return md.operands[0];
      return std::nullopt;
    };

    if (n.op == OpKind::Xor || n.op == OpKind::Xnor) {
      // Strip NOT operands; each strip flips the parity.
      bool flip = n.op == OpKind::Xnor;
      std::vector<NodeId> ops;
      for (NodeId m : mapped) {
        if (auto inner = strippedOf(m)) {
          ops.push_back(*inner);
          flip = !flip;
        } else {
          ops.push_back(m);
        }
      }
      rw.mapTo(i, dest.addOp(flip ? OpKind::Xnor : OpKind::Xor,
                             std::move(ops), n.name));
      continue;
    }

    if (auto dual = deMorganDual(n.op)) {
      bool allNots = true;
      std::vector<NodeId> stripped;
      for (NodeId m : mapped) {
        auto inner = strippedOf(m);
        if (!inner) {
          allNots = false;
          break;
        }
        stripped.push_back(*inner);
      }
      if (allNots) {
        rw.mapTo(i, dest.addOp(*dual, std::move(stripped), n.name));
        continue;
      }
    }

    rw.mapTo(i, dest.addOp(n.op, std::move(mapped), n.name));
  }
  rw.carryOutputs();
  return eliminateDeadNodes(std::move(rw).take());
}

Graph optimize(const Graph& g) {
  trace::Span span("transforms", "optimize");
  return canonicalize(foldInverters(canonicalize(g)));
}

}  // namespace sherlock::transforms
