// NAND-based lowering for low-TMR technologies (paper Sec. 4.2): on
// STT-MRAM the scouting-logic sense margins of OR and especially XOR are
// too small to be usable, so these ops are re-expressed using AND/NAND/NOT,
// whose margins remain adequate. ReRAM keeps the native ops.
//
// Rewrites applied (all exact, multi-operand aware):
//   OR(x1..xk)   -> NAND(NOT x1, ..., NOT xk)
//   NOR(x1..xk)  -> AND(NOT x1, ..., NOT xk)
//   XOR(a, b)    -> NAND(NAND(a, t), NAND(b, t)) with t = NAND(a, b)
//   XNOR(a, b)   -> AND(NAND(a, t), NAND(b, t))  with t = NAND(a, b)
//   multi-operand XOR/XNOR are decomposed into a balanced binary tree
//   first, then each 2-input XOR is lowered.
#pragma once

#include "ir/graph.h"

namespace sherlock::transforms {

/// Returns a graph computing the same outputs using only And, Nand, Not and
/// Copy operations.
ir::Graph lowerToNand(const ir::Graph& g);

/// True if the graph contains only And/Nand/Not/Copy ops.
bool isNandOnly(const ir::Graph& g);

}  // namespace sherlock::transforms
