// Static program verifier: checks a compiled mapping::Program
// instruction-by-instruction against the target's ISA and array
// constraints WITHOUT executing it, and (optionally) proves the program
// structurally equivalent to its source DAG by symbolic value numbering.
//
// The verifier is the correctness net under the mappers: the simulator
// only detects a miscompile when the corrupted value happens to reach an
// output under the chosen inputs, while the rules below reject illegal
// programs outright and pin the failure to one instruction.
//
// Rules checked (paper Sec. 2.1 / 3, Fig. 4 semantics):
//  * AddressBounds     — array ids, rows, columns, move targets in range.
//  * InstructionShape  — sorted/unique column & row lists, parallel
//                        colOps/chainsBuffer vectors, one destination row
//                        per write, one activated row per plain read,
//                        rowless reads chain every column, shift distances
//                        in [1, cols).  All column-ops of one instruction
//                        share the activated row set by construction (a
//                        single rows list per instruction); the shape rule
//                        enforces that encoding.
//  * MraExceeded       — a CIM read activates at most mraLimit() rows.
//  * PerColumnOps      — without per-column multiplexers, every sensed
//                        column of an instruction performs the same op.
//  * BufferChaining    — "+B" operands only when the target supports
//                        row-buffer operand chaining.
//  * OperandArity      — unary ops (NOT/COPY) sense exactly one bit,
//                        multi-operand ops at least two.
//  * ReadBeforeWrite   — every sensed cell was written earlier.
//  * BufferLiveness    — every consumed row-buffer bit (chained read,
//                        buffered write, move source, shifted buffer) was
//                        produced by a prior read.
//  * HostWriteMetadata — hostWriteValues entries reference write
//                        instructions and leaf (input/const) nodes, one
//                        per written column.
//  * OutputPlacement   — every graph output has a recorded, in-bounds,
//                        written cell.
//  * FaultAvoidance    — with a fault map, no read senses, no write
//                        targets and no transfer endpoint touches a
//                        stuck-at cell (fault-aware placement must have
//                        routed around every persistent defect).
//  * TransferLegality  — an XFER crosses arrays (same-array transfers
//                        are shift/write territory), both endpoints sit
//                        inside the configured mesh (out-of-grid arrays
//                        are bus-unreachable), and the destination row is
//                        not in the spare-reserved repair region (see
//                        VerifyOptions::spareRows).
//  * ValueEquivalence  — symbolic execution assigns every cell/buffer bit
//                        a hash-consed value number; each output cell's
//                        number must equal the number of its DAG node.
//                        This is what catches two live values mapped to
//                        one cell, clobbered spills and misaligned shifts:
//                        any such bug makes an output hold the wrong
//                        symbolic value regardless of concrete inputs.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "device/faultmap.h"
#include "ir/graph.h"
#include "isa/target.h"
#include "mapping/program.h"

namespace sherlock::verify {

enum class Rule {
  AddressBounds,
  InstructionShape,
  MraExceeded,
  PerColumnOps,
  BufferChaining,
  OperandArity,
  ReadBeforeWrite,
  BufferLiveness,
  HostWriteMetadata,
  OutputPlacement,
  FaultAvoidance,
  TransferLegality,
  ValueEquivalence,
};

/// Stable rule name ("read-before-write", ...) used in diagnostics.
const char* ruleName(Rule rule);

/// One verification failure, anchored to an instruction (and cell, when
/// the rule concerns one) so regressions are directly actionable.
struct Violation {
  static constexpr size_t kNoInstruction = static_cast<size_t>(-1);

  Rule rule = Rule::InstructionShape;
  /// Index into Program::instructions, or kNoInstruction for program-level
  /// violations (metadata, outputs).
  size_t instructionIndex = kNoInstruction;
  /// Cell/buffer coordinates when the rule concerns one; -1 otherwise.
  int arrayId = -1;
  int row = -1;
  int col = -1;
  std::string message;

  /// "instruction 12: read-before-write: ..." rendering.
  std::string toString() const;
};

struct VerifyOptions {
  /// Run the symbolic value-numbering equivalence check against the DAG
  /// (skipped automatically when structural rules already failed).
  bool checkEquivalence = true;
  /// Stop collecting after this many violations.
  size_t maxViolations = 16;
  /// With a fault map, enforce FaultAvoidance: the program must not sense
  /// or program any stuck-at cell. Dimensions must match the target.
  const device::FaultMap* faultMap = nullptr;
  /// Rows reserved per column for spare-row repair (mapping::FaultPolicy).
  /// When positive, TransferLegality rejects any XFER whose destination
  /// row lands in the reserved region [rows - spareRows, rows): the
  /// transfer engine programs cells directly, bypassing the repair
  /// remapping that regular writes go through.
  int spareRows = 0;
};

struct VerifyResult {
  std::vector<Violation> violations;
  long checkedInstructions = 0;

  bool ok() const { return violations.empty(); }
  /// Multi-line report of every violation (empty string when ok).
  std::string summary() const;
};

/// Verifies `program` (compiled from `g`) against `target`. Never throws
/// on an illegal program — violations are returned for inspection.
VerifyResult verifyProgram(const ir::Graph& g, const isa::TargetSpec& target,
                           const mapping::Program& program,
                           const VerifyOptions& options = {});

/// Throwing wrapper: raises VerificationError carrying the first
/// violation's rule and instruction index (message lists every violation).
void checkProgram(const ir::Graph& g, const isa::TargetSpec& target,
                  const mapping::Program& program,
                  const VerifyOptions& options = {});

/// Checks only the per-instruction rules (bounds, shape, MRA, per-column
/// op and chaining legality) of a single instruction against the target —
/// no cross-instruction dataflow. Returns the first violation, if any.
/// Exposed for property tests that validate instruction streams produced
/// outside a full Program (e.g. clustering invariants).
std::optional<Violation> checkInstructionRules(const isa::Instruction& inst,
                                               const isa::TargetSpec& target,
                                               size_t index = 0);

/// Default for "verify every compiled program" wiring (mapping::compile):
/// the SHERLOCK_VERIFY environment variable ("0" disables, anything else
/// enables) wins; otherwise on in debug builds, off in release (opt-in).
/// The test suite sets SHERLOCK_VERIFY=1 via ctest, so every test
/// compilation is verified regardless of build type.
bool verifyCompiledByDefault();

}  // namespace sherlock::verify
