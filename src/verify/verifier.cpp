#include "verify/verifier.h"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <memory>
#include <sstream>
#include <utility>

#include "support/diagnostics.h"

namespace sherlock::verify {

using ir::NodeId;
using ir::OpKind;
using isa::InstKind;
using isa::Instruction;

const char* ruleName(Rule rule) {
  switch (rule) {
    case Rule::AddressBounds: return "address-bounds";
    case Rule::InstructionShape: return "instruction-shape";
    case Rule::MraExceeded: return "mra-exceeded";
    case Rule::PerColumnOps: return "per-column-ops";
    case Rule::BufferChaining: return "buffer-chaining";
    case Rule::OperandArity: return "operand-arity";
    case Rule::ReadBeforeWrite: return "read-before-write";
    case Rule::BufferLiveness: return "buffer-liveness";
    case Rule::HostWriteMetadata: return "host-write-metadata";
    case Rule::OutputPlacement: return "output-placement";
    case Rule::FaultAvoidance: return "fault-avoidance";
    case Rule::TransferLegality: return "transfer-legality";
    case Rule::ValueEquivalence: return "value-equivalence";
  }
  return "unknown";
}

std::string Violation::toString() const {
  std::ostringstream os;
  if (instructionIndex != kNoInstruction)
    os << "instruction " << instructionIndex << ": ";
  os << ruleName(rule) << ": " << message;
  return os.str();
}

std::string VerifyResult::summary() const {
  std::string out;
  for (const Violation& v : violations) {
    out += v.toString();
    out += '\n';
  }
  return out;
}

namespace {

/// Hash-consed symbolic values. Two expressions receive the same id iff
/// they are equal under the scouting-logic algebra restricted to the
/// rewrites the mappers perform: operand order/duplication normalization
/// of the associative-commutative ops, the Copy/Not degenerations of
/// collapsed binary ops, and NAND/NOR/XNOR as negated AND/OR/XOR.
class ValueTable {
 public:
  ValueTable() {
    constFalse_ = fresh();
    constTrue_ = fresh();
    negation_[constFalse_] = constTrue_;
    negation_[constTrue_] = constFalse_;
  }

  int leafConst(bool value) { return value ? constTrue_ : constFalse_; }

  int leafInput(const std::string& name) {
    auto [it, inserted] = inputs_.try_emplace(name, 0);
    if (inserted) it->second = fresh();
    return it->second;
  }

  /// A value of unknown provenance (used to keep verification going after
  /// a dataflow violation without cascading mismatches).
  int opaque() { return fresh(); }

  /// Canonicalized application of `op` over operand value numbers.
  /// Returns -1 if the arity is invalid for the op (reported separately).
  int apply(OpKind op, std::vector<int> operands) {
    switch (op) {
      case OpKind::Copy:
        return operands.size() == 1 ? operands[0] : -1;
      case OpKind::Not:
        return operands.size() == 1 ? negate(operands[0]) : -1;
      case OpKind::And:
      case OpKind::Or:
      case OpKind::Nand:
      case OpKind::Nor: {
        if (operands.empty()) return -1;
        std::sort(operands.begin(), operands.end());
        operands.erase(std::unique(operands.begin(), operands.end()),
                       operands.end());
        bool isOr = op == OpKind::Or || op == OpKind::Nor;
        int base = operands.size() == 1
                       ? operands[0]
                       : cons(isOr ? Tag::Or : Tag::And, operands);
        bool negated = op == OpKind::Nand || op == OpKind::Nor;
        return negated ? negate(base) : base;
      }
      case OpKind::Xor:
      case OpKind::Xnor: {
        // Parity: duplicate operands cancel pairwise.
        std::sort(operands.begin(), operands.end());
        std::vector<int> kept;
        for (size_t i = 0; i < operands.size();) {
          if (i + 1 < operands.size() && operands[i] == operands[i + 1]) {
            i += 2;
          } else {
            kept.push_back(operands[i]);
            ++i;
          }
        }
        int base = kept.empty() ? constFalse_
                   : kept.size() == 1 ? kept[0]
                                      : cons(Tag::Xor, kept);
        return op == OpKind::Xnor ? negate(base) : base;
      }
    }
    return -1;
  }

 private:
  enum class Tag { And, Or, Xor };

  int fresh() { return next_++; }

  int cons(Tag tag, const std::vector<int>& operands) {
    std::vector<int> key;
    key.reserve(operands.size() + 1);
    key.push_back(static_cast<int>(tag));
    key.insert(key.end(), operands.begin(), operands.end());
    auto [it, inserted] = exprs_.try_emplace(std::move(key), 0);
    if (inserted) it->second = fresh();
    return it->second;
  }

  /// NOT via a bidirectional link, so Not(Not(x)) == x by construction.
  int negate(int v) {
    auto it = negation_.find(v);
    if (it != negation_.end()) return it->second;
    int n = fresh();
    negation_[v] = n;
    negation_[n] = v;
    return n;
  }

  int next_ = 0;
  int constFalse_ = -1;
  int constTrue_ = -1;
  std::map<std::string, int> inputs_;
  std::map<std::vector<int>, int> exprs_;
  std::map<int, int> negation_;
};

/// Symbolic state of one array: a value number per cell and per
/// row-buffer slot; -1 = unwritten cell / invalid buffer bit.
struct ArraySym {
  ArraySym(int rows, int cols)
      : cells(static_cast<size_t>(rows) * cols, -1),
        buffer(static_cast<size_t>(cols), -1) {}
  std::vector<int> cells;
  std::vector<int> buffer;
};

class Verifier {
 public:
  Verifier(const ir::Graph& g, const isa::TargetSpec& target,
           const mapping::Program& program, const VerifyOptions& options)
      : g_(g), target_(target), prog_(program), options_(options) {}

  VerifyResult run() {
    checkHostWriteTable();
    for (size_t idx = 0; idx < prog_.instructions.size() && !full(); ++idx) {
      const Instruction& inst = prog_.instructions[idx];
      result_.checkedInstructions++;
      if (auto v = checkInstructionRules(inst, target_, idx)) {
        report(*v);
        continue;  // malformed shape: skip the dataflow interpretation
      }
      interpret(idx, inst);
    }
    if (!full()) checkOutputs();
    return std::move(result_);
  }

 private:
  bool full() const {
    return result_.violations.size() >= options_.maxViolations;
  }

  void report(Violation v) {
    if (!full()) result_.violations.push_back(std::move(v));
  }

  void report(Rule rule, size_t idx, int arrayId, int row, int col,
              std::string message) {
    Violation v;
    v.rule = rule;
    v.instructionIndex = idx;
    v.arrayId = arrayId;
    v.row = row;
    v.col = col;
    v.message = std::move(message);
    report(std::move(v));
  }

  ArraySym& arrayAt(int a) {
    auto& slot = arrays_[static_cast<size_t>(a)];
    if (!slot)
      slot = std::make_unique<ArraySym>(target_.rows(), target_.cols());
    return *slot;
  }

  size_t cellIndex(int row, int col) const {
    return static_cast<size_t>(row) * target_.cols() + col;
  }

  /// Value number of a leaf node, shared with the graph-side evaluation.
  int leafVn(NodeId id) {
    const ir::Node& n = g_.node(id);
    return n.isConst() ? values_.leafConst(n.constValue)
                       : values_.leafInput(n.name);
  }

  // ------------------------------------------------- program-level checks
  void checkHostWriteTable() {
    for (const auto& [idx, leaves] : prog_.hostWriteValues) {
      if (idx >= prog_.instructions.size()) {
        report(Rule::HostWriteMetadata, Violation::kNoInstruction, -1, -1, -1,
               strCat("hostWriteValues references instruction ", idx,
                      " of a ", prog_.instructions.size(),
                      "-instruction program"));
        continue;
      }
      const Instruction& inst = prog_.instructions[idx];
      if (inst.kind != InstKind::Write) {
        report(Rule::HostWriteMetadata, idx, inst.arrayId, -1, -1,
               "hostWriteValues entry on a non-write instruction");
        continue;
      }
      if (leaves.size() != inst.columns.size()) {
        report(Rule::HostWriteMetadata, idx, inst.arrayId, -1, -1,
               strCat("host write carries ", leaves.size(), " values for ",
                      inst.columns.size(), " columns"));
        continue;
      }
      for (NodeId leaf : leaves) {
        if (leaf < g_.firstId() || leaf >= g_.endId()) {
          report(Rule::HostWriteMetadata, idx, inst.arrayId, -1, -1,
                 strCat("host write of out-of-range node ", leaf));
        } else if (g_.node(leaf).isOp()) {
          report(Rule::HostWriteMetadata, idx, inst.arrayId, -1, -1,
                 strCat("host write of non-leaf node ", leaf));
        }
      }
    }
  }

  // --------------------------------------------- dataflow interpretation
  void interpret(size_t idx, const Instruction& inst) {
    checkFaultAvoidance(idx, inst);
    ArraySym& arr = arrayAt(inst.arrayId);
    switch (inst.kind) {
      case InstKind::Read: interpretRead(idx, inst, arr); break;
      case InstKind::Write: interpretWrite(idx, inst, arr); break;
      case InstKind::Shift: interpretShift(idx, inst, arr); break;
      case InstKind::Move: interpretMove(idx, inst, arr); break;
      case InstKind::Xfer: interpretXfer(idx, inst, arr); break;
    }
  }

  /// FaultAvoidance: no sensed or programmed cell may be stuck-at. Weak
  /// cells are legal at run time (guarded execution absorbs them); stuck
  /// cells are not — their value is physically fixed.
  void checkFaultAvoidance(size_t idx, const Instruction& inst) {
    const device::FaultMap* fm = options_.faultMap;
    if (!fm) return;
    if (inst.kind == InstKind::Xfer) {
      // Both endpoint cells must be fault-free: the source is sensed,
      // the destination programmed, and neither goes through the guarded
      // row-buffer path that could absorb a pinned bit.
      if (fm->isStuck(inst.arrayId, inst.rows[0], inst.columns[0]))
        report(Rule::FaultAvoidance, idx, inst.arrayId, inst.rows[0],
               inst.columns[0],
               strCat("transfer senses stuck-at-",
                      fm->stuckBit(inst.arrayId, inst.rows[0],
                                   inst.columns[0])
                          ? "HRS"
                          : "LRS",
                      " source cell (array ", inst.arrayId, ", row ",
                      inst.rows[0], ", col ", inst.columns[0], ")"));
      if (fm->isStuck(inst.dstArray, inst.dstRow, inst.dstCol))
        report(Rule::FaultAvoidance, idx, inst.dstArray, inst.dstRow,
               inst.dstCol,
               strCat("transfer targets stuck-at-",
                      fm->stuckBit(inst.dstArray, inst.dstRow, inst.dstCol)
                          ? "HRS"
                          : "LRS",
                      " destination cell (array ", inst.dstArray, ", row ",
                      inst.dstRow, ", col ", inst.dstCol, ")"));
      return;
    }
    if (inst.kind != InstKind::Read && inst.kind != InstKind::Write) return;
    for (int c : inst.columns) {
      for (int r : inst.rows) {
        if (!fm->isStuck(inst.arrayId, r, c)) continue;
        report(Rule::FaultAvoidance, idx, inst.arrayId, r, c,
               strCat(inst.kind == InstKind::Read ? "read senses"
                                                  : "write targets",
                      " stuck-at-",
                      fm->stuckBit(inst.arrayId, r, c) ? "HRS" : "LRS",
                      " cell (array ", inst.arrayId, ", row ", r, ", col ",
                      c, ")"));
        if (full()) return;
      }
    }
  }

  void interpretRead(size_t idx, const Instruction& inst, ArraySym& arr) {
    // Phase 1: evaluate every column against the pre-read state (chained
    // bits see the buffer as it was before this instruction commits).
    std::vector<int> newBits(inst.columns.size(), -1);
    for (size_t i = 0; i < inst.columns.size(); ++i) {
      int c = inst.columns[i];
      std::vector<int> operands;
      operands.reserve(inst.rows.size() + 1);
      bool bad = false;
      for (int r : inst.rows) {
        int vn = arr.cells[cellIndex(r, c)];
        if (vn < 0) {
          report(Rule::ReadBeforeWrite, idx, inst.arrayId, r, c,
                 strCat("read of unwritten cell (array ", inst.arrayId,
                        ", row ", r, ", col ", c, ")"));
          bad = true;
        }
        operands.push_back(vn);
      }
      if (inst.colOps.empty()) {
        newBits[i] = bad ? values_.opaque() : operands[0];
        continue;
      }
      if (inst.chainsBuffer[i]) {
        int vn = arr.buffer[static_cast<size_t>(c)];
        if (vn < 0) {
          report(Rule::BufferLiveness, idx, inst.arrayId, -1, c,
                 strCat("chained read of invalid buffer column ", c,
                        " (no prior read produced it)"));
          bad = true;
        }
        operands.push_back(vn);
      }
      newBits[i] =
          bad ? values_.opaque() : values_.apply(inst.colOps[i], operands);
      if (newBits[i] < 0) {
        // Arity mismatch already reported by the rule check; keep going.
        newBits[i] = values_.opaque();
      }
      if (full()) return;
    }
    // Phase 2: commit the sensed bits to the row buffer.
    for (size_t i = 0; i < inst.columns.size(); ++i)
      arr.buffer[static_cast<size_t>(inst.columns[i])] = newBits[i];
  }

  void interpretWrite(size_t idx, const Instruction& inst, ArraySym& arr) {
    int row = inst.rows[0];
    auto hostIt = prog_.hostWriteValues.find(idx);
    bool host = hostIt != prog_.hostWriteValues.end() &&
                hostIt->second.size() == inst.columns.size();
    for (size_t i = 0; i < inst.columns.size(); ++i) {
      int c = inst.columns[i];
      int vn;
      if (host) {
        NodeId leaf = hostIt->second[i];
        vn = (leaf >= g_.firstId() && leaf < g_.endId() &&
              !g_.node(leaf).isOp())
                 ? leafVn(leaf)
                 : values_.opaque();
      } else {
        vn = arr.buffer[static_cast<size_t>(c)];
        if (vn < 0) {
          report(Rule::BufferLiveness, idx, inst.arrayId, row, c,
                 strCat("write from invalid buffer column ", c,
                        " (no prior read produced it)"));
          vn = values_.opaque();
        }
      }
      arr.cells[cellIndex(row, c)] = vn;
    }
  }

  void interpretShift(size_t idx, const Instruction& inst, ArraySym& arr) {
    int cols = target_.cols();
    bool anyValid =
        std::any_of(arr.buffer.begin(), arr.buffer.end(),
                    [](int vn) { return vn >= 0; });
    if (!anyValid)
      report(Rule::BufferLiveness, idx, inst.arrayId, -1, -1,
             "shift of an empty row buffer moves no live bit");
    int d = inst.shiftDistance % cols;
    if (inst.shiftDirection == isa::ShiftDirection::Right) d = (cols - d) % cols;
    std::vector<int> rotated(arr.buffer.size(), -1);
    for (int c = 0; c < cols; ++c)
      rotated[static_cast<size_t>((c + d) % cols)] =
          arr.buffer[static_cast<size_t>(c)];
    arr.buffer = std::move(rotated);
  }

  void interpretMove(size_t idx, const Instruction& inst, ArraySym& arr) {
    int srcCol = inst.columns[0];
    int vn = arr.buffer[static_cast<size_t>(srcCol)];
    if (vn < 0) {
      report(Rule::BufferLiveness, idx, inst.arrayId, -1, srcCol,
             strCat("move from invalid buffer column ", srcCol,
                    " (no prior read produced it)"));
      vn = values_.opaque();
    }
    arrayAt(inst.dstArray).buffer[static_cast<size_t>(inst.dstCol)] = vn;
  }

  /// Xfer: cell-to-cell across arrays. The symbolic value number crosses
  /// the array boundary with the bit, which is what lets the
  /// ValueEquivalence proof follow outputs through arbitrary transfer
  /// chains. Row buffers are untouched on both sides.
  void interpretXfer(size_t idx, const Instruction& inst, ArraySym& arr) {
    if (options_.spareRows > 0 &&
        inst.dstRow >= target_.rows() - options_.spareRows) {
      report(Rule::TransferLegality, idx, inst.dstArray, inst.dstRow,
             inst.dstCol,
             strCat("transfer into spare-reserved row ", inst.dstRow,
                    " of array ", inst.dstArray, " (repair region is rows [",
                    target_.rows() - options_.spareRows, ", ",
                    target_.rows(), "))"));
    }
    int srcRow = inst.rows[0], srcCol = inst.columns[0];
    int vn = arr.cells[cellIndex(srcRow, srcCol)];
    if (vn < 0) {
      report(Rule::ReadBeforeWrite, idx, inst.arrayId, srcRow, srcCol,
             strCat("transfer of unwritten cell (array ", inst.arrayId,
                    ", row ", srcRow, ", col ", srcCol, ")"));
      vn = values_.opaque();
    }
    arrayAt(inst.dstArray).cells[cellIndex(inst.dstRow, inst.dstCol)] = vn;
  }

  // -------------------------------------------------------- output checks
  void checkOutputs() {
    // The equivalence comparison is only meaningful on a structurally
    // clean program; after violations the symbolic state holds opaque
    // placeholders that would produce noise mismatches.
    bool equivalence =
        options_.checkEquivalence && result_.violations.empty();
    std::vector<int> graphVn;
    if (equivalence) graphVn = evaluateGraph();

    for (NodeId out : g_.outputs()) {
      if (full()) return;
      auto it = prog_.outputCells.find(out);
      if (it == prog_.outputCells.end()) {
        report(Rule::OutputPlacement, Violation::kNoInstruction, -1, -1, -1,
               strCat("output ", out, " has no recorded cell"));
        continue;
      }
      const mapping::CellAddress& cell = it->second;
      if (cell.arrayId < 0 || cell.arrayId >= target_.numArrays ||
          cell.row < 0 || cell.row >= target_.rows() || cell.col < 0 ||
          cell.col >= target_.cols()) {
        report(Rule::OutputPlacement, Violation::kNoInstruction,
               cell.arrayId, cell.row, cell.col,
               strCat("output ", out, " cell (array ", cell.arrayId,
                      ", row ", cell.row, ", col ", cell.col,
                      ") is out of bounds"));
        continue;
      }
      int vn = arrayAt(cell.arrayId).cells[cellIndex(cell.row, cell.col)];
      if (vn < 0) {
        report(Rule::OutputPlacement, Violation::kNoInstruction,
               cell.arrayId, cell.row, cell.col,
               strCat("output ", out, " cell (array ", cell.arrayId,
                      ", row ", cell.row, ", col ", cell.col,
                      ") was never written"));
        continue;
      }
      if (equivalence && vn != graphVn[static_cast<size_t>(out)]) {
        report(Rule::ValueEquivalence, Violation::kNoInstruction,
               cell.arrayId, cell.row, cell.col,
               strCat("output ", out, " cell (array ", cell.arrayId,
                      ", row ", cell.row, ", col ", cell.col,
                      ") holds a different symbolic value than the DAG "
                      "computes"));
      }
    }
  }

  /// Canonical value number of every graph node, via the same table the
  /// program interpretation uses (ids are topologically ordered).
  std::vector<int> evaluateGraph() {
    std::vector<int> vn(g_.numNodes(), -1);
    for (NodeId i = g_.firstId(); i < g_.endId(); ++i) {
      const ir::Node& n = g_.node(i);
      if (!n.isOp()) {
        vn[static_cast<size_t>(i)] = leafVn(i);
        continue;
      }
      std::vector<int> operands;
      operands.reserve(n.operands.size());
      for (NodeId o : n.operands)
        operands.push_back(vn[static_cast<size_t>(o)]);
      int v = values_.apply(n.op, operands);
      vn[static_cast<size_t>(i)] = v < 0 ? values_.opaque() : v;
    }
    return vn;
  }

  const ir::Graph& g_;
  const isa::TargetSpec& target_;
  const mapping::Program& prog_;
  VerifyOptions options_;

  VerifyResult result_;
  ValueTable values_;
  std::map<int, std::unique_ptr<ArraySym>> arrays_;
};

Violation makeRuleViolation(Rule rule, size_t idx, const Instruction& inst,
                            std::string message) {
  Violation v;
  v.rule = rule;
  v.instructionIndex = idx;
  v.arrayId = inst.arrayId;
  v.message = std::move(message);
  return v;
}

}  // namespace

std::optional<Violation> checkInstructionRules(const Instruction& inst,
                                               const isa::TargetSpec& target,
                                               size_t index) {
  const int rows = target.rows();
  const int cols = target.cols();
  auto bounds = [&](std::string message) {
    return makeRuleViolation(Rule::AddressBounds, index, inst,
                             std::move(message));
  };
  auto shape = [&](std::string message) {
    return makeRuleViolation(Rule::InstructionShape, index, inst,
                             std::move(message));
  };

  if (inst.arrayId < 0 || inst.arrayId >= target.numArrays)
    return bounds(strCat("array id ", inst.arrayId, " outside [0, ",
                         target.numArrays, ")"));

  if (inst.kind == InstKind::Shift) {
    if (inst.shiftDistance < 1 || inst.shiftDistance >= cols)
      return shape(strCat("shift distance ", inst.shiftDistance,
                          " outside [1, ", cols, ")"));
    return std::nullopt;
  }

  if (inst.kind == InstKind::Move) {
    if (inst.columns.size() != 1)
      return shape(strCat("move takes one source column, got ",
                          inst.columns.size()));
    if (inst.columns[0] < 0 || inst.columns[0] >= cols)
      return bounds(strCat("move source column ", inst.columns[0],
                           " outside [0, ", cols, ")"));
    if (inst.dstArray < 0 || inst.dstArray >= target.numArrays)
      return bounds(strCat("move destination array ", inst.dstArray,
                           " outside [0, ", target.numArrays, ")"));
    if (inst.dstCol < 0 || inst.dstCol >= cols)
      return bounds(strCat("move destination column ", inst.dstCol,
                           " outside [0, ", cols, ")"));
    return std::nullopt;
  }

  if (inst.kind == InstKind::Xfer) {
    if (inst.columns.size() != 1)
      return shape(strCat("xfer takes one source column, got ",
                          inst.columns.size()));
    if (inst.rows.size() != 1)
      return shape(strCat("xfer takes one source row, got ",
                          inst.rows.size()));
    if (!inst.colOps.empty()) return shape("xfer carries column ops");
    if (inst.columns[0] < 0 || inst.columns[0] >= cols)
      return bounds(strCat("xfer source column ", inst.columns[0],
                           " outside [0, ", cols, ")"));
    if (inst.rows[0] < 0 || inst.rows[0] >= rows)
      return bounds(strCat("xfer source row ", inst.rows[0], " outside [0, ",
                           rows, ")"));
    if (inst.dstArray < 0 || inst.dstArray >= target.numArrays)
      return bounds(strCat("xfer destination array ", inst.dstArray,
                           " outside [0, ", target.numArrays, ")"));
    if (inst.dstCol < 0 || inst.dstCol >= cols)
      return bounds(strCat("xfer destination column ", inst.dstCol,
                           " outside [0, ", cols, ")"));
    if (inst.dstRow < 0 || inst.dstRow >= rows)
      return bounds(strCat("xfer destination row ", inst.dstRow,
                           " outside [0, ", rows, ")"));
    if (inst.dstArray == inst.arrayId) {
      Violation v = makeRuleViolation(
          Rule::TransferLegality, index, inst,
          strCat("transfer within array ", inst.arrayId,
                 "; same-array movement is shift/write territory"));
      v.col = inst.dstCol;
      v.row = inst.dstRow;
      return v;
    }
    if (target.grid.configured()) {
      int mesh = target.grid.cells();
      int outside = inst.arrayId >= mesh  ? inst.arrayId
                    : inst.dstArray >= mesh ? inst.dstArray
                                            : -1;
      if (outside >= 0) {
        Violation v = makeRuleViolation(
            Rule::TransferLegality, index, inst,
            strCat("transfer touches array ", outside, " outside the ",
                   target.grid.toString(), " mesh (arrays [0, ", mesh,
                   ") are bus-reachable)"));
        v.arrayId = outside;
        return v;
      }
    }
    return std::nullopt;
  }

  // Read / Write.
  if (inst.columns.empty()) return shape("read/write addresses no column");
  for (int c : inst.columns)
    if (c < 0 || c >= cols)
      return bounds(strCat("column ", c, " outside [0, ", cols, ")"));
  for (int r : inst.rows)
    if (r < 0 || r >= rows)
      return bounds(strCat("row ", r, " outside [0, ", rows, ")"));
  if (!std::is_sorted(inst.columns.begin(), inst.columns.end()) ||
      std::adjacent_find(inst.columns.begin(), inst.columns.end()) !=
          inst.columns.end())
    return shape("columns must be ascending and unique");
  if (!std::is_sorted(inst.rows.begin(), inst.rows.end()) ||
      std::adjacent_find(inst.rows.begin(), inst.rows.end()) !=
          inst.rows.end())
    return shape("rows must be ascending and unique");

  if (inst.kind == InstKind::Write) {
    if (inst.rows.size() != 1)
      return shape(strCat("write takes exactly one destination row, got ",
                          inst.rows.size()));
    if (!inst.colOps.empty()) return shape("write carries column ops");
    return std::nullopt;
  }

  // Read.
  if (inst.colOps.empty()) {
    if (inst.rows.size() != 1)
      return shape(strCat("plain read activates exactly one row, got ",
                          inst.rows.size()));
    if (!inst.chainsBuffer.empty())
      return shape("plain read carries chain flags");
    return std::nullopt;
  }

  // CIM read: every sensed column shares the single activated row set by
  // encoding; the op/chain vectors must parallel the column list.
  if (inst.colOps.size() != inst.columns.size())
    return shape(strCat(inst.colOps.size(), " ops for ",
                        inst.columns.size(), " columns"));
  if (inst.chainsBuffer.size() != inst.colOps.size())
    return shape(strCat(inst.chainsBuffer.size(), " chain flags for ",
                        inst.colOps.size(), " ops"));

  if (static_cast<int>(inst.rows.size()) > target.mraLimit()) {
    Violation v = makeRuleViolation(
        Rule::MraExceeded, index, inst,
        strCat("CIM read activates ", inst.rows.size(),
               " rows, exceeding the MRA limit ", target.mraLimit(), " of ",
               target.tech.name));
    return v;
  }

  if (!target.perColumnOps)
    for (OpKind op : inst.colOps)
      if (op != inst.colOps.front())
        return makeRuleViolation(
            Rule::PerColumnOps, index, inst,
            "target lacks per-column op multiplexers but the instruction "
            "mixes operations");

  for (size_t i = 0; i < inst.colOps.size(); ++i) {
    bool chains = inst.chainsBuffer[i];
    if (chains && !target.bufferChaining)
      return makeRuleViolation(
          Rule::BufferChaining, index, inst,
          strCat("column ", inst.columns[i],
                 " chains the row buffer but the target does not support "
                 "operand chaining"));
    int operandBits = static_cast<int>(inst.rows.size()) + (chains ? 1 : 0);
    if (ir::isUnary(inst.colOps[i])) {
      if (operandBits != 1)
        return makeRuleViolation(
            Rule::OperandArity, index, inst,
            strCat(ir::opName(inst.colOps[i]), " on column ",
                   inst.columns[i], " senses ", operandBits,
                   " bits; unary ops take exactly one"));
    } else if (operandBits < 2) {
      return makeRuleViolation(
          Rule::OperandArity, index, inst,
          strCat(ir::opName(inst.colOps[i]), " on column ", inst.columns[i],
                 " senses ", operandBits, " bits; needs at least two"));
    }
    if (inst.rows.empty() && !chains)
      return makeRuleViolation(
          Rule::InstructionShape, index, inst,
          strCat("rowless read requires every column to chain; column ",
                 inst.columns[i], " does not"));
  }
  return std::nullopt;
}

VerifyResult verifyProgram(const ir::Graph& g, const isa::TargetSpec& target,
                           const mapping::Program& program,
                           const VerifyOptions& options) {
  if (options.faultMap)
    checkArg(options.faultMap->numArrays() == target.numArrays &&
                 options.faultMap->rows() == target.rows() &&
                 options.faultMap->cols() == target.cols(),
             "fault map dimensions do not match the verification target");
  return Verifier(g, target, program, options).run();
}

void checkProgram(const ir::Graph& g, const isa::TargetSpec& target,
                  const mapping::Program& program,
                  const VerifyOptions& options) {
  VerifyResult result = verifyProgram(g, target, program, options);
  if (result.ok()) return;
  const Violation& first = result.violations.front();
  long index = first.instructionIndex == Violation::kNoInstruction
                   ? VerificationError::kNoInstruction
                   : static_cast<long>(first.instructionIndex);
  throw VerificationError(
      strCat("program verification failed (", result.violations.size(),
             " violation", result.violations.size() == 1 ? "" : "s",
             "):\n", result.summary()),
      ruleName(first.rule), index);
}

bool verifyCompiledByDefault() {
  if (const char* env = std::getenv("SHERLOCK_VERIFY"))
    return env[0] != '0';
#ifdef NDEBUG
  return false;
#else
  return true;
#endif
}

}  // namespace sherlock::verify
