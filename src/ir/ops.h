// Bulk-bitwise operation kinds supported by scouting-logic CIM arrays and
// helpers for evaluating them on 64-bit slices of bulk operands.
#pragma once

#include <cstdint>
#include <span>
#include <string>

namespace sherlock::ir {

/// Logic operation performed column-wise by the CIM array (scouting logic
/// natively provides (N)AND / (N)OR / X(N)OR; NOT and COPY are realized by
/// row-buffer CMOS circuitry).
enum class OpKind {
  And,
  Or,
  Xor,
  Nand,
  Nor,
  Xnor,
  Not,   // single operand, row-buffer inverter
  Copy,  // single operand, row clone
};

/// Human-readable mnemonic ("AND", "XOR", ...).
std::string opName(OpKind op);

/// Parses a mnemonic produced by opName. Throws Error on unknown names.
OpKind opFromName(const std::string& name);

/// True for ops that take exactly one operand (Not, Copy).
bool isUnary(OpKind op);

/// True if the op can take more than two operands in a single multi-row
/// activation (associative & commutative scouting ops). Not/Copy cannot;
/// Xor/Xnor can (parity sensing), as can And/Or/Nand/Nor.
bool isMultiOperand(OpKind op);

/// The op f such that f(a, b, c, ...) == op(op(a, b), c) ... holds when
/// flattening a tree of identical ops into one multi-operand node.
/// For And/Or/Xor this is the op itself; Nand/Nor/Xnor are NOT
/// tree-flattenable (nand(nand(a,b),c) != nand(a,b,c)), so this returns
/// false via isSubstitutable.
bool isSubstitutable(OpKind op);

/// Evaluates `op` over `operands` (bit-parallel on 64-bit slices).
/// Multi-operand semantics: And/Nand = conjunction over all operands,
/// Or/Nor = disjunction, Xor/Xnor = parity. Unary ops require exactly one
/// operand.
uint64_t evalOp(OpKind op, std::span<const uint64_t> operands);

/// Packed-lane evaluation: applies `op` across `n` operand arrays of
/// `words` contiguous 64-bit words each (64 * words lockstep lanes),
/// writing the result into out[0 .. words). The inner loops run word-wise
/// over flat arrays so they autovectorize. `out` may alias operands[0]
/// but no other operand. Same arity rules as evalOp.
void evalOpWide(OpKind op, const uint64_t* const* operands, size_t n,
                size_t words, uint64_t* out);

}  // namespace sherlock::ir
