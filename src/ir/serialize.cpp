#include "ir/serialize.h"

#include <sstream>

#include "support/diagnostics.h"
#include "support/trace.h"

namespace sherlock::ir {

std::string graphToText(const Graph& g) {
  std::ostringstream os;
  os << "# sherlock-dag v1\n";
  for (NodeId i = g.firstId(); i < g.endId(); ++i) {
    const Node& n = g.node(i);
    switch (n.kind) {
      case Node::Kind::Input:
        os << "input " << n.name << "\n";
        break;
      case Node::Kind::Const:
        os << "const " << (n.constValue ? 1 : 0) << "\n";
        break;
      case Node::Kind::Op:
        os << "op " << opName(n.op);
        for (NodeId o : n.operands) os << ' ' << o;
        os << "\n";
        break;
    }
  }
  for (NodeId out : g.outputs()) os << "output " << out << "\n";
  return os.str();
}

Graph graphFromText(const std::string& text) {
  trace::Span span("ir", "parse_dag");
  Graph g;
  std::istringstream is(text);
  std::string line;
  int lineNo = 0;
  NodeId declared = 0;
  while (std::getline(is, line)) {
    ++lineNo;
    size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    std::string kind;
    if (!(ls >> kind)) continue;

    auto parseId = [&](const std::string& token) {
      size_t pos = 0;
      long id = std::stol(token, &pos);
      checkArg(pos == token.size(),
               strCat("line ", lineNo, ": bad node id '", token, "'"));
      checkArg(id >= 0 && id < declared,
               strCat("line ", lineNo, ": node id ", id,
                      " references an undeclared node"));
      return static_cast<NodeId>(id);
    };

    if (kind == "input") {
      std::string name;
      checkArg(static_cast<bool>(ls >> name),
               strCat("line ", lineNo, ": input needs a name"));
      g.addInput(name);
      ++declared;
    } else if (kind == "const") {
      int v = -1;
      checkArg(static_cast<bool>(ls >> v) && (v == 0 || v == 1),
               strCat("line ", lineNo, ": const needs 0 or 1"));
      g.addConst(v == 1);
      ++declared;
    } else if (kind == "op") {
      std::string mnemonic;
      checkArg(static_cast<bool>(ls >> mnemonic),
               strCat("line ", lineNo, ": op needs a mnemonic"));
      OpKind op = opFromName(mnemonic);
      std::vector<NodeId> operands;
      std::string tok;
      while (ls >> tok) operands.push_back(parseId(tok));
      g.addOp(op, std::move(operands));
      ++declared;
    } else if (kind == "output") {
      std::string tok;
      checkArg(static_cast<bool>(ls >> tok),
               strCat("line ", lineNo, ": output needs a node id"));
      g.markOutput(parseId(tok));
    } else {
      throw Error(strCat("line ", lineNo, ": unknown directive '", kind,
                         "'"));
    }
  }
  g.validate();
  return g;
}

}  // namespace sherlock::ir
