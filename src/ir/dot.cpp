#include "ir/dot.h"

#include <sstream>

#include "ir/analysis.h"

namespace sherlock::ir {

std::string toDot(const Graph& g, const std::string& graphName) {
  auto levels = bLevels(g);
  std::ostringstream os;
  os << "digraph " << graphName << " {\n";
  os << "  rankdir=TB;\n";
  for (NodeId i = g.firstId(); i < g.endId(); ++i) {
    const Node& n = g.node(i);
    os << "  n" << i << " [";
    if (n.isOp()) {
      os << "label=\"" << opName(n.op) << "\\nb=" <<
          levels[static_cast<size_t>(i)]
         << "\", shape=circle, style=filled, fillcolor=lightblue";
    } else {
      std::string label = n.name.empty() ? strCat("v", i) : n.name;
      os << "label=\"" << label
         << "\", shape=box, style=filled, fillcolor=orange";
    }
    os << "];\n";
  }
  for (NodeId i = g.firstId(); i < g.endId(); ++i) {
    const Node& n = g.node(i);
    for (NodeId o : n.operands) os << "  n" << o << " -> n" << i << ";\n";
  }
  for (NodeId out : g.outputs())
    os << "  n" << out << " [peripheries=2];\n";
  os << "}\n";
  return os.str();
}

}  // namespace sherlock::ir
