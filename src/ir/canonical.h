// Canonical DAG form and content hashing for the compile-service cache.
//
// Two DAGs that differ only in node numbering, input names, or the
// operand order of commutative ops describe the same computation and
// must map to the same cache key. canonicalForm() renumbers the graph
// into an isomorphism-invariant order (Weisfeiler–Leman color
// refinement seeded with exact depth/height invariants, then a
// color-priority topological emission), renames inputs to positional
// names ("i0", "i1", ...) in canonical order, sorts the operand lists
// of commutative ops, and fingerprints the canonical serialization with
// a 128-bit hash.
//
// Guarantees:
//  * Soundness: equal canonical text implies the graphs are isomorphic
//    (the text is a faithful serialization), so a cache hit can never
//    return the program of a semantically different kernel — the only
//    residual risk is a 128-bit fingerprint collision.
//  * Completeness (practical): alpha-renamed, renumbered, and
//    commuted-operand variants of a DAG produce byte-identical
//    canonical text. Pathological automorphic graphs whose 64-bit
//    refinement colors collide may canonicalize differently, which
//    costs a spurious cache miss, never a wrong hit.
//
// Callers that want CSE/fold insensitivity (the compile service does)
// must run transforms::canonicalize() before hashing.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/graph.h"

namespace sherlock::ir {

struct CanonicalForm {
  /// The renumbered graph: nodes appear in canonical order, inputs are
  /// renamed "i<k>" by canonical position, commutative operand lists
  /// are sorted by canonical id, and the output list keeps its original
  /// order (output order is part of the kernel's interface).
  Graph graph;

  /// Original input name per canonical input index: inputNames[k] is
  /// the name the caller's graph used for canonical input "i<k>".
  /// Clients bind operands through this map when a cached program was
  /// compiled from a differently-named representative.
  std::vector<std::string> inputNames;

  /// 128-bit fingerprint of the canonical serialization.
  uint64_t hashHi = 0;
  uint64_t hashLo = 0;

  /// Hex rendering "hhhhhhhhhhhhhhhh.llllllllllllllll" used in cache
  /// keys and the serve protocol.
  std::string fingerprint() const;
};

/// Computes the canonical form. Cost is O(rounds * edges * log) with a
/// small bounded round count — microseconds on kernel-sized DAGs, far
/// below a compile.
CanonicalForm canonicalForm(const Graph& g);

/// Convenience: the low 64 fingerprint bits of canonicalForm(g).
uint64_t canonicalHash(const Graph& g);

}  // namespace sherlock::ir
