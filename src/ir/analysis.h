// Graph analyses used by the mappers: b-level priorities (Kwok & Ahmad),
// topological traversal, and size/shape statistics.
#pragma once

#include <vector>

#include "ir/graph.h"

namespace sherlock::ir {

/// Returns node ids in a valid topological order (producers first). Ids are
/// assigned topologically by construction, so this is simply 0..n-1; it
/// exists as an explicit named operation for readability and future graphs
/// with id reuse.
std::vector<NodeId> topologicalOrder(const Graph& g);

/// Computes the b-level of every node: the number of operation nodes on the
/// longest directed path from the node to any exit node, counting the node
/// itself when it is an operation. Operand (leaf) nodes and edges have zero
/// weight, matching the paper's DAG weighting. Leaf nodes inherit the
/// maximum b-level of their users.
std::vector<int> bLevels(const Graph& g);

/// Length of the critical path in operation nodes (max b-level).
int criticalPathLength(const Graph& g);

/// Op node ids sorted by descending b-level; ties broken by ascending node
/// id to keep the order deterministic (the order the mappers consume).
std::vector<NodeId> bLevelSortedOps(const Graph& g);

/// Returns, for every node, the number of op users (out-degree into ops).
std::vector<int> userCounts(const Graph& g);

/// Histogram of operand counts over op nodes: result[k] = #ops with k
/// operands (used by reliability accounting and the MRA sweeps).
std::vector<int> operandCountHistogram(const Graph& g);

/// Computes the t-level of every node: the number of operation nodes on
/// the longest directed path from any entry to the node, counting the
/// node itself when it is an operation (ASAP depth; the dual of bLevels).
std::vector<int> tLevels(const Graph& g);

/// Scheduling slack of every op node: criticalPathLength - tLevel -
/// bLevel + 1. Zero for nodes on a critical path; leaf (non-op) entries
/// are reported as -1.
std::vector<int> slack(const Graph& g);

/// Op nodes with zero slack, in id order: the critical path(s).
std::vector<NodeId> criticalPathOps(const Graph& g);

/// Number of op nodes per b-level (the wave widths the scheduler sees):
/// result[l] = #ops with b-level l (index 0 unused).
std::vector<int> levelWidths(const Graph& g);

}  // namespace sherlock::ir
