#include "ir/evaluator.h"

namespace sherlock::ir {

std::vector<BitVector> evaluateAll(const Graph& g,
                                   const InputValues& inputs) {
  size_t width = 0;
  for (const auto& [name, value] : inputs) {
    if (width == 0) width = value.size();
    checkArg(value.size() == width,
             strCat("input '", name, "' width ", value.size(),
                    " differs from ", width));
  }
  checkArg(width > 0 || g.inputCount() == 0, "no input values provided");
  if (width == 0) width = 1;  // constant-only graphs

  std::vector<BitVector> values(g.numNodes());
  for (NodeId i = g.firstId(); i < g.endId(); ++i) {
    const Node& n = g.node(i);
    switch (n.kind) {
      case Node::Kind::Input: {
        auto it = inputs.find(n.name);
        checkArg(it != inputs.end(),
                 strCat("missing value for input '", n.name, "'"));
        values[static_cast<size_t>(i)] = it->second;
        break;
      }
      case Node::Kind::Const:
        values[static_cast<size_t>(i)] = BitVector(width, n.constValue);
        break;
      case Node::Kind::Op: {
        const auto& ops = n.operands;
        BitVector acc = values[static_cast<size_t>(ops[0])];
        switch (n.op) {
          case OpKind::Not:
            acc = ~acc;
            break;
          case OpKind::Copy:
            break;
          case OpKind::And:
          case OpKind::Nand:
            for (size_t k = 1; k < ops.size(); ++k)
              acc &= values[static_cast<size_t>(ops[k])];
            if (n.op == OpKind::Nand) acc = ~acc;
            break;
          case OpKind::Or:
          case OpKind::Nor:
            for (size_t k = 1; k < ops.size(); ++k)
              acc |= values[static_cast<size_t>(ops[k])];
            if (n.op == OpKind::Nor) acc = ~acc;
            break;
          case OpKind::Xor:
          case OpKind::Xnor:
            for (size_t k = 1; k < ops.size(); ++k)
              acc ^= values[static_cast<size_t>(ops[k])];
            if (n.op == OpKind::Xnor) acc = ~acc;
            break;
        }
        values[static_cast<size_t>(i)] = std::move(acc);
        break;
      }
    }
  }
  return values;
}

std::vector<BitVector> evaluateOutputs(const Graph& g,
                                       const InputValues& inputs) {
  auto all = evaluateAll(g, inputs);
  std::vector<BitVector> outs;
  outs.reserve(g.outputs().size());
  for (NodeId id : g.outputs()) outs.push_back(all[static_cast<size_t>(id)]);
  return outs;
}

std::vector<uint64_t> evaluateAllWords(
    const Graph& g, const std::map<std::string, uint64_t>& inputs) {
  InputValues vals;
  for (const auto& [name, word] : inputs)
    vals.emplace(name, BitVector::fromUint64(word, 64));
  auto all = evaluateAll(g, vals);
  std::vector<uint64_t> words(all.size());
  for (size_t i = 0; i < all.size(); ++i) words[i] = all[i].toUint64();
  return words;
}

std::vector<uint64_t> evaluateAllWordsPacked(
    const Graph& g,
    const std::map<std::string, std::vector<uint64_t>>& inputs,
    int laneWords) {
  checkArg(laneWords >= 1, "laneWords must be >= 1");
  const size_t W = static_cast<size_t>(laneWords);
  std::vector<uint64_t> values(g.numNodes() * W, 0);
  std::vector<const uint64_t*> ptrs;
  for (NodeId i = g.firstId(); i < g.endId(); ++i) {
    const Node& n = g.node(i);
    uint64_t* out = values.data() + static_cast<size_t>(i) * W;
    switch (n.kind) {
      case Node::Kind::Input: {
        auto it = inputs.find(n.name);
        checkArg(it != inputs.end(),
                 strCat("missing value for input '", n.name, "'"));
        checkArg(it->second.size() == W,
                 strCat("input '", n.name, "' has ", it->second.size(),
                        " words, expected ", W));
        for (size_t w = 0; w < W; ++w) out[w] = it->second[w];
        break;
      }
      case Node::Kind::Const:
        if (n.constValue)
          for (size_t w = 0; w < W; ++w) out[w] = ~uint64_t{0};
        break;
      case Node::Kind::Op: {
        ptrs.clear();
        for (NodeId op : n.operands)
          ptrs.push_back(values.data() + static_cast<size_t>(op) * W);
        evalOpWide(n.op, ptrs.data(), ptrs.size(), W, out);
        break;
      }
    }
  }
  return values;
}

}  // namespace sherlock::ir
