// Data-flow graph (DAG) intermediate representation.
//
// Following the paper, the DAG has operand/intermediate values and
// operations. We use a unified node representation: every node *is* a
// value — Input and Const nodes are leaf operands, and each Op node
// represents one operation together with the intermediate value it
// produces. Operation nodes are unit-weighted for priority (b-level)
// computation; operand nodes and edges have zero weight.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/ops.h"
#include "support/diagnostics.h"

namespace sherlock::ir {

using NodeId = int32_t;
inline constexpr NodeId kInvalidNode = -1;

/// One DAG node. Plain data; owned and indexed by Graph.
struct Node {
  enum class Kind { Input, Const, Op };

  Kind kind = Kind::Input;
  OpKind op = OpKind::And;          ///< valid iff kind == Op
  std::vector<NodeId> operands;     ///< producers, in operand order
  std::vector<NodeId> users;        ///< consumer op nodes (deduplicated)
  std::string name;                 ///< input name / debug label
  bool constValue = false;          ///< valid iff kind == Const

  bool isOp() const { return kind == Kind::Op; }
  bool isInput() const { return kind == Kind::Input; }
  bool isConst() const { return kind == Kind::Const; }
};

/// A directed acyclic data-flow graph of bulk-bitwise operations.
///
/// Nodes are created append-only; operands must already exist when an op
/// node is added, which guarantees acyclicity by construction and makes
/// node ids a valid topological order.
class Graph {
 public:
  /// Adds a named external input operand.
  NodeId addInput(std::string name);

  /// Adds a constant operand (all-zeros or all-ones bulk value).
  NodeId addConst(bool value);

  /// Adds an operation node. Operand ids must be < the new node's id.
  /// Unary ops require exactly one operand; others at least two.
  NodeId addOp(OpKind op, std::vector<NodeId> operands,
               std::string name = "");

  /// Appends a node to the ordered output list (kept live by transforms).
  /// The list preserves position and multiplicity.
  void markOutput(NodeId id);

  const Node& node(NodeId id) const {
    SHERLOCK_ASSERT(id >= 0 && static_cast<size_t>(id) < nodes_.size(),
                    "node id ", id, " out of range");
    return nodes_[static_cast<size_t>(id)];
  }

  size_t numNodes() const { return nodes_.size(); }
  const std::vector<NodeId>& outputs() const { return outputs_; }

  /// Number of operation nodes.
  size_t opCount() const;
  /// Number of Input nodes.
  size_t inputCount() const;
  /// Total operand + intermediate values = all nodes (each node is a value).
  size_t valueCount() const { return nodes_.size(); }

  /// All node ids of Op kind, in id (topological) order.
  std::vector<NodeId> opNodes() const;
  /// All node ids of Input kind, in id order.
  std::vector<NodeId> inputNodes() const;

  /// Verifies structural invariants (operand ordering, arity, user lists,
  /// output validity). Throws IRError on violation.
  void validate() const;

  /// Ids are assigned contiguously, so iteration is by index.
  NodeId firstId() const { return 0; }
  NodeId endId() const { return static_cast<NodeId>(nodes_.size()); }

 private:
  NodeId append(Node node);

  std::vector<Node> nodes_;
  std::vector<NodeId> outputs_;
};

}  // namespace sherlock::ir
