// Graphviz DOT export of DAGs for debugging and documentation. Renders
// operand nodes and operation nodes in the paper's style (operands orange,
// operations blue, b-levels annotated).
#pragma once

#include <string>

#include "ir/graph.h"

namespace sherlock::ir {

/// Produces a DOT representation of the DAG. Operation nodes are annotated
/// with their b-level priority.
std::string toDot(const Graph& g, const std::string& graphName = "dag");

}  // namespace sherlock::ir
