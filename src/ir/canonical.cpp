#include "ir/canonical.h"

#include <algorithm>
#include <set>

#include "ir/serialize.h"
#include "support/parallel.h"
#include "support/trace.h"

namespace sherlock::ir {

namespace {

/// Order-sensitive accumulate of one value into a running color. The
/// callers feed values in a canonical (sorted) order, so the sequence
/// dependence is harmless and buys better mixing than xor-folding.
uint64_t mix(uint64_t h, uint64_t v) { return splitmix64(h ^ v); }

/// True for ops whose operand order is semantically irrelevant. Every
/// multi-operand scouting op (AND/OR/XOR and their inversions) is
/// symmetric; only the unary ops have a single fixed slot.
bool commutative(const Node& n) {
  return n.isOp() && !isUnary(n.op);
}

}  // namespace

CanonicalForm canonicalForm(const Graph& g) {
  trace::Span span("ir", "canonical_form");
  const size_t n = g.numNodes();
  std::vector<uint64_t> color(n), next(n);

  // Exact isomorphism-invariant seeds: depth (longest operand chain
  // below the node) and height (longest user chain above it). These
  // separate chain positions immediately, so the bounded refinement
  // below only has to resolve local symmetry, not propagate distance.
  std::vector<int> depth(n, 0), height(n, 0);
  for (NodeId id = g.firstId(); id < g.endId(); ++id)
    for (NodeId o : g.node(id).operands)
      depth[static_cast<size_t>(id)] =
          std::max(depth[static_cast<size_t>(id)],
                   depth[static_cast<size_t>(o)] + 1);
  for (NodeId id = g.endId(); id-- > g.firstId();)
    for (NodeId u : g.node(id).users)
      height[static_cast<size_t>(id)] =
          std::max(height[static_cast<size_t>(id)],
                   height[static_cast<size_t>(u)] + 1);

  // Output positions are part of the interface: the k-th output must
  // stay the k-th output, so fold each node's output indices into its
  // seed color.
  std::vector<uint64_t> outputSeed(n, 0x6f757470ULL);
  for (size_t k = 0; k < g.outputs().size(); ++k)
    outputSeed[static_cast<size_t>(g.outputs()[k])] =
        mix(outputSeed[static_cast<size_t>(g.outputs()[k])], k + 1);

  for (NodeId id = g.firstId(); id < g.endId(); ++id) {
    const Node& node = g.node(id);
    const size_t i = static_cast<size_t>(id);
    uint64_t h = 0x5348u;  // namespace tag
    switch (node.kind) {
      case Node::Kind::Input:
        h = mix(h, 0x11);  // names intentionally excluded (alpha-blind)
        break;
      case Node::Kind::Const:
        h = mix(mix(h, 0x22), node.constValue ? 1 : 0);
        break;
      case Node::Kind::Op:
        h = mix(mix(mix(h, 0x33), static_cast<uint64_t>(node.op)),
                node.operands.size());
        break;
    }
    h = mix(h, static_cast<uint64_t>(depth[i]));
    h = mix(h, static_cast<uint64_t>(height[i]));
    h = mix(h, outputSeed[i]);
    color[i] = h;
  }

  // Weisfeiler–Leman refinement over both edge directions. Operand and
  // user colors are sorted before folding, which is exactly what makes
  // the result commutation- and numbering-invariant. A handful of
  // rounds suffices because the depth/height seeds already encode
  // global position.
  int rounds = 8;
  for (size_t m = n; m > 1; m >>= 1) ++rounds;
  std::vector<uint64_t> scratch;
  for (int round = 0; round < rounds; ++round) {
    for (NodeId id = g.firstId(); id < g.endId(); ++id) {
      const Node& node = g.node(id);
      const size_t i = static_cast<size_t>(id);
      uint64_t h = mix(color[i], 0xa1);
      scratch.clear();
      for (NodeId o : node.operands)
        scratch.push_back(color[static_cast<size_t>(o)]);
      if (commutative(node)) std::sort(scratch.begin(), scratch.end());
      for (uint64_t c : scratch) h = mix(h, c);
      scratch.clear();
      for (NodeId u : node.users)
        scratch.push_back(color[static_cast<size_t>(u)]);
      std::sort(scratch.begin(), scratch.end());
      h = mix(h, 0xb2);
      for (uint64_t c : scratch) h = mix(h, c);
      next[i] = h;
    }
    color.swap(next);
  }

  // Canonical emission: Kahn's algorithm where the ready set is ordered
  // by (color, original id). For isomorphic inputs the colors are
  // id-independent, and genuinely automorphic twins share a color, so
  // either emission order serializes to the same bytes.
  // Readiness counts *distinct* producers: user lists are deduplicated,
  // so a node consumed twice by the same op must release it only once.
  std::vector<int> pendingOperands(n, 0);
  std::set<std::pair<uint64_t, NodeId>> ready;
  for (NodeId id = g.firstId(); id < g.endId(); ++id) {
    const Node& node = g.node(id);
    std::vector<NodeId> distinct = node.operands;
    std::sort(distinct.begin(), distinct.end());
    distinct.erase(std::unique(distinct.begin(), distinct.end()),
                   distinct.end());
    pendingOperands[static_cast<size_t>(id)] =
        static_cast<int>(distinct.size());
    if (distinct.empty())
      ready.emplace(color[static_cast<size_t>(id)], id);
  }

  CanonicalForm out;
  std::vector<NodeId> remap(n, kInvalidNode);
  size_t nextInput = 0;
  while (!ready.empty()) {
    NodeId id = ready.begin()->second;
    ready.erase(ready.begin());
    const Node& node = g.node(id);
    NodeId mapped = kInvalidNode;
    switch (node.kind) {
      case Node::Kind::Input:
        mapped = out.graph.addInput(strCat("i", nextInput++));
        out.inputNames.push_back(node.name);
        break;
      case Node::Kind::Const:
        mapped = out.graph.addConst(node.constValue);
        break;
      case Node::Kind::Op: {
        std::vector<NodeId> operands;
        operands.reserve(node.operands.size());
        for (NodeId o : node.operands)
          operands.push_back(remap[static_cast<size_t>(o)]);
        if (commutative(node))
          std::sort(operands.begin(), operands.end());
        mapped = out.graph.addOp(node.op, std::move(operands));
        break;
      }
    }
    remap[static_cast<size_t>(id)] = mapped;
    for (NodeId u : node.users)
      if (--pendingOperands[static_cast<size_t>(u)] == 0)
        ready.emplace(color[static_cast<size_t>(u)], u);
  }
  for (NodeId o : g.outputs())
    out.graph.markOutput(remap[static_cast<size_t>(o)]);
  out.graph.validate();

  // Two independent 64-bit streams over the canonical bytes: FNV-1a and
  // a splitmix chain. Keying the cache on the pair makes an accidental
  // cross-kernel collision a 2^-128 event.
  const std::string text = graphToText(out.graph);
  uint64_t lo = 14695981039346656037ULL;
  uint64_t hi = 0x53c5f3a8d1e4b2c7ULL;
  for (unsigned char c : text) {
    lo = (lo ^ c) * 1099511628211ULL;
    hi = splitmix64(hi ^ c);
  }
  out.hashLo = lo;
  out.hashHi = hi;
  return out;
}

std::string CanonicalForm::fingerprint() const {
  static const char* digits = "0123456789abcdef";
  std::string s(33, '.');
  for (int i = 0; i < 16; ++i) {
    s[static_cast<size_t>(i)] = digits[(hashHi >> (60 - 4 * i)) & 0xf];
    s[static_cast<size_t>(17 + i)] = digits[(hashLo >> (60 - 4 * i)) & 0xf];
  }
  return s;
}

uint64_t canonicalHash(const Graph& g) { return canonicalForm(g).hashLo; }

}  // namespace sherlock::ir
