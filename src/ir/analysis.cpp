#include "ir/analysis.h"

#include <algorithm>
#include <numeric>

namespace sherlock::ir {

std::vector<NodeId> topologicalOrder(const Graph& g) {
  std::vector<NodeId> order(g.numNodes());
  std::iota(order.begin(), order.end(), 0);
  return order;
}

std::vector<int> bLevels(const Graph& g) {
  std::vector<int> level(g.numNodes(), 0);
  // Users always have larger ids, so a reverse id scan sees all users of a
  // node before the node itself.
  for (NodeId i = g.endId(); i-- > g.firstId();) {
    const Node& n = g.node(i);
    int best = 0;
    for (NodeId u : n.users)
      best = std::max(best, level[static_cast<size_t>(u)]);
    level[static_cast<size_t>(i)] = best + (n.isOp() ? 1 : 0);
  }
  return level;
}

int criticalPathLength(const Graph& g) {
  auto levels = bLevels(g);
  int best = 0;
  for (int l : levels) best = std::max(best, l);
  return best;
}

std::vector<NodeId> bLevelSortedOps(const Graph& g) {
  auto levels = bLevels(g);
  std::vector<NodeId> ops = g.opNodes();
  std::stable_sort(ops.begin(), ops.end(), [&](NodeId a, NodeId b) {
    return levels[static_cast<size_t>(a)] > levels[static_cast<size_t>(b)];
  });
  return ops;
}

std::vector<int> userCounts(const Graph& g) {
  std::vector<int> counts(g.numNodes(), 0);
  for (NodeId i = g.firstId(); i < g.endId(); ++i)
    counts[static_cast<size_t>(i)] =
        static_cast<int>(g.node(i).users.size());
  return counts;
}

std::vector<int> tLevels(const Graph& g) {
  std::vector<int> level(g.numNodes(), 0);
  // Operands always have smaller ids, so a forward scan sees producers
  // before consumers.
  for (NodeId i = g.firstId(); i < g.endId(); ++i) {
    const Node& n = g.node(i);
    int best = 0;
    for (NodeId o : n.operands)
      best = std::max(best, level[static_cast<size_t>(o)]);
    level[static_cast<size_t>(i)] = best + (n.isOp() ? 1 : 0);
  }
  return level;
}

std::vector<int> slack(const Graph& g) {
  auto b = bLevels(g);
  auto t = tLevels(g);
  int cp = criticalPathLength(g);
  std::vector<int> s(g.numNodes(), -1);
  for (NodeId i = g.firstId(); i < g.endId(); ++i) {
    if (!g.node(i).isOp()) continue;
    s[static_cast<size_t>(i)] =
        cp - t[static_cast<size_t>(i)] - b[static_cast<size_t>(i)] + 1;
  }
  return s;
}

std::vector<NodeId> criticalPathOps(const Graph& g) {
  auto s = slack(g);
  std::vector<NodeId> critical;
  for (NodeId i = g.firstId(); i < g.endId(); ++i)
    if (g.node(i).isOp() && s[static_cast<size_t>(i)] == 0)
      critical.push_back(i);
  return critical;
}

std::vector<int> levelWidths(const Graph& g) {
  auto levels = bLevels(g);
  std::vector<int> widths;
  for (NodeId i = g.firstId(); i < g.endId(); ++i) {
    if (!g.node(i).isOp()) continue;
    size_t l = static_cast<size_t>(levels[static_cast<size_t>(i)]);
    if (widths.size() <= l) widths.resize(l + 1, 0);
    widths[l]++;
  }
  return widths;
}

std::vector<int> operandCountHistogram(const Graph& g) {
  std::vector<int> hist;
  for (NodeId i = g.firstId(); i < g.endId(); ++i) {
    const Node& n = g.node(i);
    if (!n.isOp()) continue;
    size_t k = n.operands.size();
    if (hist.size() <= k) hist.resize(k + 1, 0);
    hist[k]++;
  }
  return hist;
}

}  // namespace sherlock::ir
