#include "ir/ops.h"

#include "support/diagnostics.h"

namespace sherlock::ir {

std::string opName(OpKind op) {
  switch (op) {
    case OpKind::And: return "AND";
    case OpKind::Or: return "OR";
    case OpKind::Xor: return "XOR";
    case OpKind::Nand: return "NAND";
    case OpKind::Nor: return "NOR";
    case OpKind::Xnor: return "XNOR";
    case OpKind::Not: return "NOT";
    case OpKind::Copy: return "COPY";
  }
  throw InternalError("opName: invalid OpKind");
}

OpKind opFromName(const std::string& name) {
  if (name == "AND") return OpKind::And;
  if (name == "OR") return OpKind::Or;
  if (name == "XOR") return OpKind::Xor;
  if (name == "NAND") return OpKind::Nand;
  if (name == "NOR") return OpKind::Nor;
  if (name == "XNOR") return OpKind::Xnor;
  if (name == "NOT") return OpKind::Not;
  if (name == "COPY") return OpKind::Copy;
  throw Error(strCat("unknown operation mnemonic: ", name));
}

bool isUnary(OpKind op) { return op == OpKind::Not || op == OpKind::Copy; }

bool isMultiOperand(OpKind op) { return !isUnary(op); }

bool isSubstitutable(OpKind op) {
  // Only associative ops allow replacing op(op(a,b),c) by op(a,b,c).
  return op == OpKind::And || op == OpKind::Or || op == OpKind::Xor;
}

uint64_t evalOp(OpKind op, std::span<const uint64_t> operands) {
  if (isUnary(op)) {
    checkArg(operands.size() == 1,
             strCat(opName(op), " takes exactly one operand, got ",
                    operands.size()));
    return op == OpKind::Not ? ~operands[0] : operands[0];
  }
  checkArg(operands.size() >= 2,
           strCat(opName(op), " takes at least two operands, got ",
                  operands.size()));
  uint64_t acc = operands[0];
  for (size_t i = 1; i < operands.size(); ++i) {
    switch (op) {
      case OpKind::And:
      case OpKind::Nand: acc &= operands[i]; break;
      case OpKind::Or:
      case OpKind::Nor: acc |= operands[i]; break;
      case OpKind::Xor:
      case OpKind::Xnor: acc ^= operands[i]; break;
      default: throw InternalError("evalOp: unreachable");
    }
  }
  switch (op) {
    case OpKind::Nand:
    case OpKind::Nor:
    case OpKind::Xnor: return ~acc;
    default: return acc;
  }
}

void evalOpWide(OpKind op, const uint64_t* const* operands, size_t n,
                size_t words, uint64_t* out) {
  if (isUnary(op)) {
    checkArg(n == 1, strCat(opName(op), " takes exactly one operand, got ",
                            n));
    const uint64_t* a = operands[0];
    if (op == OpKind::Not)
      for (size_t w = 0; w < words; ++w) out[w] = ~a[w];
    else if (out != a)
      for (size_t w = 0; w < words; ++w) out[w] = a[w];
    return;
  }
  checkArg(n >= 2, strCat(opName(op), " takes at least two operands, got ",
                          n));
  const uint64_t* first = operands[0];
  if (out != first)
    for (size_t w = 0; w < words; ++w) out[w] = first[w];
  for (size_t i = 1; i < n; ++i) {
    const uint64_t* o = operands[i];
    switch (op) {
      case OpKind::And:
      case OpKind::Nand:
        for (size_t w = 0; w < words; ++w) out[w] &= o[w];
        break;
      case OpKind::Or:
      case OpKind::Nor:
        for (size_t w = 0; w < words; ++w) out[w] |= o[w];
        break;
      case OpKind::Xor:
      case OpKind::Xnor:
        for (size_t w = 0; w < words; ++w) out[w] ^= o[w];
        break;
      default:
        throw InternalError("evalOpWide: unreachable");
    }
  }
  switch (op) {
    case OpKind::Nand:
    case OpKind::Nor:
    case OpKind::Xnor:
      for (size_t w = 0; w < words; ++w) out[w] = ~out[w];
      break;
    default:
      break;
  }
}

}  // namespace sherlock::ir
