#include "ir/graph.h"

#include <algorithm>

namespace sherlock::ir {

NodeId Graph::append(Node node) {
  nodes_.push_back(std::move(node));
  return static_cast<NodeId>(nodes_.size() - 1);
}

NodeId Graph::addInput(std::string name) {
  Node n;
  n.kind = Node::Kind::Input;
  n.name = std::move(name);
  return append(std::move(n));
}

NodeId Graph::addConst(bool value) {
  Node n;
  n.kind = Node::Kind::Const;
  n.constValue = value;
  n.name = value ? "ones" : "zeros";
  return append(std::move(n));
}

NodeId Graph::addOp(OpKind op, std::vector<NodeId> operands,
                    std::string name) {
  NodeId id = static_cast<NodeId>(nodes_.size());
  if (isUnary(op))
    checkArg(operands.size() == 1,
             strCat(opName(op), " requires exactly one operand"));
  else
    checkArg(operands.size() >= 2,
             strCat(opName(op), " requires at least two operands"));
  for (NodeId o : operands)
    checkArg(o >= 0 && o < id,
             strCat("operand id ", o, " invalid for new node ", id));

  Node n;
  n.kind = Node::Kind::Op;
  n.op = op;
  n.operands = operands;
  n.name = std::move(name);
  NodeId result = append(std::move(n));

  // Register this op with each distinct producer.
  std::sort(operands.begin(), operands.end());
  operands.erase(std::unique(operands.begin(), operands.end()),
                 operands.end());
  for (NodeId o : operands)
    nodes_[static_cast<size_t>(o)].users.push_back(result);
  return result;
}

void Graph::markOutput(NodeId id) {
  checkArg(id >= 0 && static_cast<size_t>(id) < nodes_.size(),
           strCat("output id ", id, " out of range"));
  // Outputs are an ordered list and may repeat: rewrites can alias two
  // distinct outputs to one node, and consumers (e.g. bit-sliced state
  // unpacking) rely on position.
  outputs_.push_back(id);
}

size_t Graph::opCount() const {
  return static_cast<size_t>(
      std::count_if(nodes_.begin(), nodes_.end(),
                    [](const Node& n) { return n.isOp(); }));
}

size_t Graph::inputCount() const {
  return static_cast<size_t>(
      std::count_if(nodes_.begin(), nodes_.end(),
                    [](const Node& n) { return n.isInput(); }));
}

std::vector<NodeId> Graph::opNodes() const {
  std::vector<NodeId> ids;
  for (NodeId i = 0; i < endId(); ++i)
    if (nodes_[static_cast<size_t>(i)].isOp()) ids.push_back(i);
  return ids;
}

std::vector<NodeId> Graph::inputNodes() const {
  std::vector<NodeId> ids;
  for (NodeId i = 0; i < endId(); ++i)
    if (nodes_[static_cast<size_t>(i)].isInput()) ids.push_back(i);
  return ids;
}

void Graph::validate() const {
  for (NodeId i = 0; i < endId(); ++i) {
    const Node& n = nodes_[static_cast<size_t>(i)];
    if (n.isOp()) {
      if (isUnary(n.op) && n.operands.size() != 1)
        throw IRError(strCat("node ", i, ": ", opName(n.op),
                             " must have one operand"));
      if (!isUnary(n.op) && n.operands.size() < 2)
        throw IRError(strCat("node ", i, ": ", opName(n.op),
                             " must have >= 2 operands"));
      for (NodeId o : n.operands) {
        if (o < 0 || o >= i)
          throw IRError(strCat("node ", i, ": operand ", o,
                               " violates topological id order"));
        const Node& prod = nodes_[static_cast<size_t>(o)];
        if (std::find(prod.users.begin(), prod.users.end(), i) ==
            prod.users.end())
          throw IRError(
              strCat("node ", o, ": missing user entry for node ", i));
      }
    } else {
      if (!n.operands.empty())
        throw IRError(strCat("leaf node ", i, " has operands"));
    }
    for (NodeId u : n.users) {
      if (u <= i || u >= endId())
        throw IRError(strCat("node ", i, ": invalid user id ", u));
      const Node& user = nodes_[static_cast<size_t>(u)];
      if (!user.isOp() ||
          std::find(user.operands.begin(), user.operands.end(), i) ==
              user.operands.end())
        throw IRError(
            strCat("node ", i, ": stale user entry for node ", u));
    }
  }
  for (NodeId out : outputs_)
    if (out < 0 || out >= endId())
      throw IRError(strCat("invalid output id ", out));
}

}  // namespace sherlock::ir
