// Reference (bit-accurate) evaluator of a DAG on bulk operands. Serves as
// the functional ground truth the CIM simulator is checked against, and as
// the software model for the CPU baseline.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "ir/graph.h"
#include "support/bitvector.h"

namespace sherlock::ir {

/// Maps input names to their bulk values. All vectors must share one width.
using InputValues = std::map<std::string, BitVector>;

/// Evaluates every node of `g` on `inputs`, returning one BitVector per
/// node id. Throws Error if an input is missing or widths are inconsistent.
std::vector<BitVector> evaluateAll(const Graph& g, const InputValues& inputs);

/// Evaluates and returns only the marked outputs, in output order.
std::vector<BitVector> evaluateOutputs(const Graph& g,
                                       const InputValues& inputs);

/// Convenience: evaluates on 64-bit slices (width-64 bulk words).
std::vector<uint64_t> evaluateAllWords(
    const Graph& g, const std::map<std::string, uint64_t>& inputs);

/// Packed multi-word evaluation: every value is `laneWords` contiguous
/// 64-bit words (64 * laneWords lockstep lanes). Each input vector must
/// have exactly laneWords entries. Returns a node-major flat array:
/// word `w` of node `id` lives at [id * laneWords + w]. This is the
/// reference the packed simulator (SimOptions::laneWords) verifies
/// against; it runs on flat arrays so the combine loops autovectorize.
std::vector<uint64_t> evaluateAllWordsPacked(
    const Graph& g,
    const std::map<std::string, std::vector<uint64_t>>& inputs,
    int laneWords);

}  // namespace sherlock::ir
