// Reference (bit-accurate) evaluator of a DAG on bulk operands. Serves as
// the functional ground truth the CIM simulator is checked against, and as
// the software model for the CPU baseline.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "ir/graph.h"
#include "support/bitvector.h"

namespace sherlock::ir {

/// Maps input names to their bulk values. All vectors must share one width.
using InputValues = std::map<std::string, BitVector>;

/// Evaluates every node of `g` on `inputs`, returning one BitVector per
/// node id. Throws Error if an input is missing or widths are inconsistent.
std::vector<BitVector> evaluateAll(const Graph& g, const InputValues& inputs);

/// Evaluates and returns only the marked outputs, in output order.
std::vector<BitVector> evaluateOutputs(const Graph& g,
                                       const InputValues& inputs);

/// Convenience: evaluates on 64-bit slices (width-64 bulk words).
std::vector<uint64_t> evaluateAllWords(
    const Graph& g, const std::map<std::string, uint64_t>& inputs);

}  // namespace sherlock::ir
