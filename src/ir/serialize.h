// Plain-text DAG serialization, for persisting compiled kernels and
// exchanging DAGs with external tooling. Line-oriented format:
//
//   # sherlock-dag v1
//   input <name>
//   const <0|1>
//   op <MNEMONIC> <id> <id> ...
//   output <id>
//
// Node ids are implicit line-declaration indices (0-based); `output`
// lines may appear anywhere after the referenced node and repeat.
#pragma once

#include <string>

#include "ir/graph.h"

namespace sherlock::ir {

/// Serializes the graph (inverse of graphFromText).
std::string graphToText(const Graph& g);

/// Parses the serialized form; throws Error on malformed input.
Graph graphFromText(const std::string& text);

}  // namespace sherlock::ir
