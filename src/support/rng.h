// Deterministic pseudo-random number generation (xoshiro256**). All
// stochastic components of Sherlock (random tie-breaking in cluster
// assignment, random DAG generation, workload input synthesis) draw from
// this generator so that runs are reproducible from a seed.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

namespace sherlock {

/// xoshiro256** by Blackman & Vigna; small, fast and high quality.
/// Satisfies the UniformRandomBitGenerator requirements.
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    // splitmix64 seeding as recommended by the xoshiro authors.
    uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    uint64_t* s = state_;
    uint64_t result = rotl(s[1] * 5, 7) * 9;
    uint64_t t = s[1] << 17;
    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = rotl(s[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). `bound` must be positive.
  ///
  /// Lemire's nearly-divisionless rejection method: the naive modulo
  /// reduction over-weights the low residues whenever 2^64 is not a
  /// multiple of `bound`, with bias up to bound / 2^64 per value. The
  /// 128-bit multiply maps the raw draw onto [0, bound) and rejects only
  /// the (at most bound) draws landing in the uneven remainder strip, so
  /// the result is exactly uniform while almost every call still costs a
  /// single multiply.
  uint64_t below(uint64_t bound) {
    unsigned __int128 m =
        static_cast<unsigned __int128>((*this)()) * bound;
    auto lo = static_cast<uint64_t>(m);
    if (lo < bound) {
      uint64_t threshold = (0 - bound) % bound;  // (2^64 - bound) mod bound
      while (lo < threshold) {
        m = static_cast<unsigned __int128>((*this)()) * bound;
        lo = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t range(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(below(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// True with probability `p`.
  bool chance(double p) { return uniform() < p; }

 private:
  static uint64_t rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

/// Batched Bernoulli(p) bit sampling over `nWords` packed 64-bit words
/// (64 * nWords lanes): toggles each lane's bit independently with
/// probability `p` and returns the number of toggled bits.
///
/// Instead of drawing one uniform per lane, the gap to the next set lane
/// is drawn from the geometric distribution on {0, 1, ...},
///   gap = floor(log(u) / log(1 - p)),  u ~ U(0, 1),
/// which reproduces iid Bernoulli(p) lanes exactly (the gaps between
/// successes of a Bernoulli process are geometric) at a cost of one draw
/// plus one log per *set bit* — for the P_DF regime of the simulator
/// (p ~ 1e-4) that is one draw per call instead of 64 * nWords.
///
/// Consumes a deterministic, p-and-outcome-dependent number of draws from
/// `rng`; callers relying on reproducibility must derive a dedicated
/// stream per trial (see deriveSeed).
inline long sampleBernoulliBits(Rng& rng, double p, uint64_t* words,
                                size_t nWords) {
  if (p <= 0.0 || nWords == 0) return 0;
  const uint64_t lanes = static_cast<uint64_t>(nWords) * 64;
  if (p >= 1.0) {
    for (size_t w = 0; w < nWords; ++w) words[w] = ~words[w];
    return static_cast<long>(lanes);
  }
  const double logq = std::log1p(-p);  // log(1 - p) < 0
  long flips = 0;
  uint64_t lane = 0;
  while (true) {
    double u = rng.uniform();
    if (u <= 0.0) break;  // log(0) = -inf: the next success never arrives
    double gap = std::floor(std::log(u) / logq);
    // Compare in double before casting: the gap can exceed 2^63 when u is
    // tiny and p small.
    if (gap >= static_cast<double>(lanes - lane)) break;
    lane += static_cast<uint64_t>(gap);
    words[lane >> 6] ^= uint64_t{1} << (lane & 63);
    ++flips;
    if (++lane >= lanes) break;
  }
  return flips;
}

}  // namespace sherlock
