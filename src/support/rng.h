// Deterministic pseudo-random number generation (xoshiro256**). All
// stochastic components of Sherlock (random tie-breaking in cluster
// assignment, random DAG generation, workload input synthesis) draw from
// this generator so that runs are reproducible from a seed.
#pragma once

#include <cstdint>
#include <limits>

namespace sherlock {

/// xoshiro256** by Blackman & Vigna; small, fast and high quality.
/// Satisfies the UniformRandomBitGenerator requirements.
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    // splitmix64 seeding as recommended by the xoshiro authors.
    uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    uint64_t* s = state_;
    uint64_t result = rotl(s[1] * 5, 7) * 9;
    uint64_t t = s[1] << 17;
    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = rotl(s[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). `bound` must be positive.
  uint64_t below(uint64_t bound) { return (*this)() % bound; }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t range(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(below(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// True with probability `p`.
  bool chance(double p) { return uniform() < p; }

 private:
  static uint64_t rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

}  // namespace sherlock
