#include "support/stats.h"

#include <algorithm>
#include <cmath>

#include "support/diagnostics.h"

namespace sherlock {

double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double geomean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) {
    checkArg(x > 0.0, "geomean requires positive inputs");
    s += std::log(x);
  }
  return std::exp(s / static_cast<double>(xs.size()));
}

double geomeanSafe(const std::vector<double>& xs, double floor) {
  checkArg(floor > 0.0, "geomeanSafe floor must be positive");
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += std::log(std::max(x, floor));
  return std::exp(s / static_cast<double>(xs.size()));
}

double stddev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs.size() - 1));
}

double quantile(std::vector<double> xs, double q) {
  checkArg(!xs.empty(), "quantile of empty range");
  checkArg(q >= 0.0 && q <= 1.0, "quantile q must be in [0, 1]");
  std::sort(xs.begin(), xs.end());
  double pos = q * static_cast<double>(xs.size() - 1);
  size_t lo = static_cast<size_t>(pos);
  size_t hi = std::min(lo + 1, xs.size() - 1);
  double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double normalCdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

double normalTail(double x) { return 0.5 * std::erfc(x / std::sqrt(2.0)); }

}  // namespace sherlock
