#include "support/metrics.h"

#include <cmath>
#include <iomanip>
#include <limits>
#include <sstream>

namespace sherlock {

namespace {

/// Numbers in metrics dumps round-trip (max_digits10) but integral
/// values print bare so counters stay readable.
void writeNumber(std::ostream& out, double v) {
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      std::abs(v) < 1e15) {
    out << static_cast<long long>(v);
  } else {
    out << std::setprecision(std::numeric_limits<double>::max_digits10)
        << v;
  }
}

void writeKey(std::ostream& out, const std::string& key) {
  out << '"';
  for (char c : key) {
    if (c == '"' || c == '\\') out << '\\';
    out << c;
  }
  out << "\": ";
}

}  // namespace

void MetricsRegistry::add(const std::string& name, uint64_t delta) {
  std::lock_guard<std::mutex> lock(mu_);
  counters_[name] += delta;
}

void MetricsRegistry::setGauge(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  gauges_[name] = value;
}

void MetricsRegistry::observe(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  histograms_[name].record(value);
}

uint64_t MetricsRegistry::counterValue(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

double MetricsRegistry::gaugeValue(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

MetricsRegistry::HistogramSnapshot MetricsRegistry::histogram(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  HistogramSnapshot s;
  auto it = histograms_.find(name);
  if (it == histograms_.end()) return s;
  const PercentileTracker& t = it->second;
  s.count = t.count();
  s.mean = t.mean();
  s.min = t.min();
  s.max = t.max();
  s.p50 = t.percentile(50);
  s.p95 = t.percentile(95);
  s.p99 = t.percentile(99);
  return s;
}

std::string MetricsRegistry::toJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  out << "{\n  \"schema_version\": 1,\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters_) {
    out << (first ? "\n    " : ",\n    ");
    first = false;
    writeKey(out, name);
    out << value;
  }
  out << (first ? "}" : "\n  }") << ",\n  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges_) {
    out << (first ? "\n    " : ",\n    ");
    first = false;
    writeKey(out, name);
    writeNumber(out, value);
  }
  out << (first ? "}" : "\n  }") << ",\n  \"histograms\": {";
  first = true;
  for (const auto& [name, tracker] : histograms_) {
    out << (first ? "\n    " : ",\n    ");
    first = false;
    writeKey(out, name);
    out << "{\"count\": " << tracker.count() << ", \"mean\": ";
    writeNumber(out, tracker.mean());
    out << ", \"min\": ";
    writeNumber(out, tracker.min());
    out << ", \"max\": ";
    writeNumber(out, tracker.max());
    out << ", \"p50\": ";
    writeNumber(out, tracker.percentile(50));
    out << ", \"p95\": ";
    writeNumber(out, tracker.percentile(95));
    out << ", \"p99\": ";
    writeNumber(out, tracker.percentile(99));
    out << "}";
  }
  out << (first ? "}" : "\n  }") << "\n}\n";
  return out.str();
}

void MetricsRegistry::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

}  // namespace sherlock
