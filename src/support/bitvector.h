// A dynamically sized bit vector used to hold bulk operands (bit-sliced
// data) in workloads, the reference evaluator, and the functional simulator.
#pragma once

#include <cstdint>
#include <cstddef>
#include <string>
#include <vector>

#include "support/diagnostics.h"

namespace sherlock {

/// Fixed-length vector of bits with bitwise algebra. Bit index 0 is the
/// least significant bit of the first word.
class BitVector {
 public:
  BitVector() = default;

  /// Creates a vector of `size` bits, all cleared.
  explicit BitVector(size_t size) : size_(size), words_((size + 63) / 64, 0) {}

  /// Creates a vector of `size` bits with every bit set to `value`.
  BitVector(size_t size, bool value) : BitVector(size) {
    if (value) {
      for (auto& w : words_) w = ~uint64_t{0};
      clearPadding();
    }
  }

  /// Number of bits.
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  bool get(size_t i) const {
    SHERLOCK_ASSERT(i < size_, "bit index ", i, " out of range ", size_);
    return (words_[i / 64] >> (i % 64)) & 1;
  }

  void set(size_t i, bool value) {
    SHERLOCK_ASSERT(i < size_, "bit index ", i, " out of range ", size_);
    uint64_t mask = uint64_t{1} << (i % 64);
    if (value)
      words_[i / 64] |= mask;
    else
      words_[i / 64] &= ~mask;
  }

  /// Number of set bits.
  size_t popcount() const;

  /// True if any bit is set.
  bool any() const;

  /// True if all bits are set.
  bool all() const;

  BitVector operator&(const BitVector& o) const { return apply(o, And{}); }
  BitVector operator|(const BitVector& o) const { return apply(o, Or{}); }
  BitVector operator^(const BitVector& o) const { return apply(o, Xor{}); }
  BitVector operator~() const;

  BitVector& operator&=(const BitVector& o) { return applyInPlace(o, And{}); }
  BitVector& operator|=(const BitVector& o) { return applyInPlace(o, Or{}); }
  BitVector& operator^=(const BitVector& o) { return applyInPlace(o, Xor{}); }

  bool operator==(const BitVector& o) const {
    return size_ == o.size_ && words_ == o.words_;
  }
  bool operator!=(const BitVector& o) const { return !(*this == o); }

  /// Logical shift of the whole vector by `amount` positions toward higher
  /// indices (left) or lower indices (right); vacated bits are zero.
  BitVector shiftedLeft(size_t amount) const;
  BitVector shiftedRight(size_t amount) const;

  /// Returns bits [begin, begin+count) as a new vector.
  BitVector slice(size_t begin, size_t count) const;

  /// Renders as a string of '0'/'1', most significant (highest index) first.
  std::string toString() const;

  /// Parses a string of '0'/'1' characters, most significant first.
  static BitVector fromString(const std::string& text);

  /// Builds a vector from the low `size` bits of `value`.
  static BitVector fromUint64(uint64_t value, size_t size);

  /// Interprets the low min(size, 64) bits as an unsigned integer.
  uint64_t toUint64() const;

  // --- Packed word access (multi-word lane interop) ----------------------
  /// Number of 64-bit storage words (ceil(size / 64)).
  size_t wordCount() const { return words_.size(); }

  /// The i-th 64-bit storage word (bits [64i, 64i+64), padding zeroed).
  uint64_t word(size_t i) const {
    SHERLOCK_ASSERT(i < words_.size(), "word index ", i, " out of range ",
                    words_.size());
    return words_[i];
  }

  /// Builds a vector of `size` bits from packed words (low word first);
  /// `words` must hold at least ceil(size / 64) entries. Bits beyond
  /// `size` in the last word are discarded.
  static BitVector fromWords(const uint64_t* words, size_t size);

 private:
  struct And {
    uint64_t operator()(uint64_t a, uint64_t b) const { return a & b; }
  };
  struct Or {
    uint64_t operator()(uint64_t a, uint64_t b) const { return a | b; }
  };
  struct Xor {
    uint64_t operator()(uint64_t a, uint64_t b) const { return a ^ b; }
  };

  template <typename F>
  BitVector apply(const BitVector& o, F f) const {
    BitVector r(*this);
    r.applyInPlace(o, f);
    return r;
  }

  template <typename F>
  BitVector& applyInPlace(const BitVector& o, F f) {
    SHERLOCK_ASSERT(size_ == o.size_, "size mismatch: ", size_, " vs ",
                    o.size_);
    for (size_t i = 0; i < words_.size(); ++i)
      words_[i] = f(words_[i], o.words_[i]);
    return *this;
  }

  // Clears bits beyond size_ in the last word so equality and popcount are
  // well defined.
  void clearPadding() {
    if (size_ % 64 != 0 && !words_.empty())
      words_.back() &= (uint64_t{1} << (size_ % 64)) - 1;
  }

  size_t size_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace sherlock
