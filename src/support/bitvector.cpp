#include "support/bitvector.h"

#include <bit>

namespace sherlock {

size_t BitVector::popcount() const {
  size_t n = 0;
  for (uint64_t w : words_) n += static_cast<size_t>(std::popcount(w));
  return n;
}

bool BitVector::any() const {
  for (uint64_t w : words_)
    if (w != 0) return true;
  return false;
}

bool BitVector::all() const { return popcount() == size_; }

BitVector BitVector::operator~() const {
  BitVector r(*this);
  for (auto& w : r.words_) w = ~w;
  r.clearPadding();
  return r;
}

BitVector BitVector::shiftedLeft(size_t amount) const {
  BitVector r(size_);
  for (size_t i = amount; i < size_; ++i) r.set(i, get(i - amount));
  return r;
}

BitVector BitVector::shiftedRight(size_t amount) const {
  BitVector r(size_);
  for (size_t i = 0; i + amount < size_; ++i) r.set(i, get(i + amount));
  return r;
}

BitVector BitVector::slice(size_t begin, size_t count) const {
  SHERLOCK_ASSERT(begin + count <= size_, "slice [", begin, ", ",
                  begin + count, ") exceeds size ", size_);
  BitVector r(count);
  for (size_t i = 0; i < count; ++i) r.set(i, get(begin + i));
  return r;
}

std::string BitVector::toString() const {
  std::string s;
  s.reserve(size_);
  for (size_t i = size_; i-- > 0;) s.push_back(get(i) ? '1' : '0');
  return s;
}

BitVector BitVector::fromString(const std::string& text) {
  BitVector r(text.size());
  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[text.size() - 1 - i];
    checkArg(c == '0' || c == '1',
             strCat("invalid bit character '", c, "' in bit string"));
    r.set(i, c == '1');
  }
  return r;
}

BitVector BitVector::fromUint64(uint64_t value, size_t size) {
  BitVector r(size);
  for (size_t i = 0; i < size && i < 64; ++i) r.set(i, (value >> i) & 1);
  return r;
}

BitVector BitVector::fromWords(const uint64_t* words, size_t size) {
  BitVector r(size);
  for (size_t i = 0; i < r.words_.size(); ++i) r.words_[i] = words[i];
  r.clearPadding();
  return r;
}

uint64_t BitVector::toUint64() const {
  return words_.empty() ? 0
                        : (size_ >= 64 ? words_[0]
                                       : words_[0] & ((uint64_t{1} << size_) - 1));
}

}  // namespace sherlock
