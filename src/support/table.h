// ASCII table rendering for the benchmark harnesses. The bench binaries
// print paper-shaped tables (rows of Table 2, series of Fig. 6/7) so the
// reproduction can be compared to the paper at a glance.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace sherlock {

/// Column-aligned ASCII table with an optional title and header row.
class Table {
 public:
  explicit Table(std::string title = "") : title_(std::move(title)) {}

  /// Sets the header row; defines the column count.
  void setHeader(std::vector<std::string> header);

  /// Appends a data row. Rows shorter than the header are padded with "".
  void addRow(std::vector<std::string> row);

  /// Appends a horizontal separator line between rows.
  void addSeparator();

  /// Formats a double with `digits` significant decimal places.
  static std::string num(double value, int digits = 2);

  /// Formats a double in scientific notation (for probabilities).
  static std::string sci(double value, int digits = 2);

  void print(std::ostream& os) const;
  std::string toString() const;

 private:
  static constexpr const char* kSeparatorTag = "\x01--";

  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace sherlock
