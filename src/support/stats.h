// Small statistics helpers used by the benchmark harnesses and the
// reliability model.
#pragma once

#include <vector>

namespace sherlock {

/// Arithmetic mean. Returns 0 for an empty range.
double mean(const std::vector<double>& xs);

/// Geometric mean. All inputs must be strictly positive (throws Error
/// otherwise); returns 0 for empty input.
double geomean(const std::vector<double>& xs);

/// Geometric mean that tolerates zero and negative inputs by flooring
/// every element at `floor` (default 1e-12) before taking logs. Intended
/// for benchmark summary rows over measured ratios, where a degenerate
/// configuration (zero stall time, pApp == 0) would otherwise abort the
/// whole table; the floor biases such entries toward zero instead of
/// throwing. Returns 0 for empty input. `floor` must be positive.
double geomeanSafe(const std::vector<double>& xs, double floor = 1e-12);

/// Sample standard deviation (n-1 denominator). Returns 0 for n < 2.
double stddev(const std::vector<double>& xs);

/// Linear-interpolated quantile, q in [0, 1]. Input need not be sorted.
double quantile(std::vector<double> xs, double q);

/// Standard normal cumulative distribution function.
double normalCdf(double x);

/// Upper tail of the standard normal distribution, Q(x) = 1 - Phi(x).
/// Numerically accurate far into the tail (uses erfc).
double normalTail(double x);

}  // namespace sherlock
