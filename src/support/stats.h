// Small statistics helpers used by the benchmark harnesses and the
// reliability model.
#pragma once

#include <vector>

namespace sherlock {

/// Arithmetic mean. Returns 0 for an empty range.
double mean(const std::vector<double>& xs);

/// Geometric mean. All inputs must be positive; returns 0 for empty input.
double geomean(const std::vector<double>& xs);

/// Sample standard deviation (n-1 denominator). Returns 0 for n < 2.
double stddev(const std::vector<double>& xs);

/// Linear-interpolated quantile, q in [0, 1]. Input need not be sorted.
double quantile(std::vector<double> xs, double q);

/// Standard normal cumulative distribution function.
double normalCdf(double x);

/// Upper tail of the standard normal distribution, Q(x) = 1 - Phi(x).
/// Numerically accurate far into the tail (uses erfc).
double normalTail(double x);

}  // namespace sherlock
