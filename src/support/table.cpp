#include "support/table.h"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace sherlock {

void Table::setHeader(std::vector<std::string> header) {
  header_ = std::move(header);
}

void Table::addRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

void Table::addSeparator() { rows_.push_back({kSeparatorTag}); }

std::string Table::num(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

std::string Table::sci(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*e", digits, value);
  return buf;
}

void Table::print(std::ostream& os) const {
  size_t cols = header_.size();
  for (const auto& r : rows_)
    if (r.empty() || r[0] != kSeparatorTag) cols = std::max(cols, r.size());

  std::vector<size_t> width(cols, 0);
  auto widen = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i)
      width[i] = std::max(width[i], row[i].size());
  };
  if (!header_.empty()) widen(header_);
  for (const auto& r : rows_)
    if (r.empty() || r[0] != kSeparatorTag) widen(r);

  auto hline = [&] {
    os << '+';
    for (size_t i = 0; i < cols; ++i)
      os << std::string(width[i] + 2, '-') << '+';
    os << '\n';
  };
  auto emit = [&](const std::vector<std::string>& row) {
    os << '|';
    for (size_t i = 0; i < cols; ++i) {
      std::string cell = i < row.size() ? row[i] : "";
      os << ' ' << cell << std::string(width[i] - cell.size() + 1, ' ') << '|';
    }
    os << '\n';
  };

  if (!title_.empty()) os << "== " << title_ << " ==\n";
  hline();
  if (!header_.empty()) {
    emit(header_);
    hline();
  }
  for (const auto& r : rows_) {
    if (!r.empty() && r[0] == kSeparatorTag)
      hline();
    else
      emit(r);
  }
  hline();
}

std::string Table::toString() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

}  // namespace sherlock
