// Latency/percentile accounting primitives for the serving paths,
// following the per-op latency accounting idiom of the request-serving
// simulators (SNIPPETS 1–2: `Metrics` threaded through every op).
//
// PercentileTracker records raw samples and answers nearest-rank
// percentile queries; the sample streams here are request-scale
// (thousands to low millions), so keeping them resident is simpler and
// more faithful than a sketch. Not thread-safe — owners lock.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace sherlock {

class PercentileTracker {
 public:
  void record(double value) { samples_.push_back(value); }

  size_t count() const { return samples_.size(); }

  double mean() const {
    if (samples_.empty()) return 0.0;
    double sum = 0.0;
    for (double s : samples_) sum += s;
    return sum / static_cast<double>(samples_.size());
  }

  /// Nearest-rank percentile; q in [0, 100]. Returns 0 with no samples.
  double percentile(double q) const {
    if (samples_.empty()) return 0.0;
    std::vector<double> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    double rank = q / 100.0 * static_cast<double>(sorted.size() - 1);
    size_t idx = static_cast<size_t>(rank + 0.5);
    if (idx >= sorted.size()) idx = sorted.size() - 1;
    return sorted[idx];
  }

  void clear() { samples_.clear(); }

 private:
  std::vector<double> samples_;
};

/// Cache-outcome counters shared by cache-fronted services: every
/// request is exactly one of hit / miss (the request that performed the
/// compile) / coalesced (waited on an identical in-flight compile) /
/// error.
struct CacheCounters {
  uint64_t requests = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t coalesced = 0;
  uint64_t errors = 0;
  uint64_t evictions = 0;
  /// Subset of `hits` answered by the exact-source memo (direct mode),
  /// skipping parse + canonicalization entirely.
  uint64_t directHits = 0;

  double hitRate() const {
    uint64_t served = hits + misses + coalesced;
    return served == 0
               ? 0.0
               : static_cast<double>(hits + coalesced) /
                     static_cast<double>(served);
  }
};

}  // namespace sherlock
