// Unified metrics primitives for the serving and benchmark paths.
//
// PercentileTracker records raw samples and answers nearest-rank
// percentile queries; the sample streams here are request-scale
// (thousands to low millions), so keeping them resident is simpler and
// more faithful than a sketch. Queries sort lazily and cache the sorted
// state, so back-to-back p50/p95/p99 queries pay one sort, not three.
// Not thread-safe — owners lock.
//
// MetricsRegistry is the process/service-wide metrics store: named
// monotonic counters, gauges, and histograms (PercentileTracker-backed)
// behind one mutex, serialized to a single JSON schema:
//
//   {"schema_version": 1,
//    "counters":   {"serve.requests": 12, ...},
//    "gauges":     {"serve.hit_rate": 0.83, ...},
//    "histograms": {"serve.hit_us": {"count": ..., "mean": ...,
//                   "min": ..., "max": ..., "p50": ..., "p95": ...,
//                   "p99": ...}, ...}}
//
// Keys are emitted in sorted order so dumps diff cleanly. This is the
// artifact `sherlockc --serve --metrics-out` writes and the serve
// protocol's STATS verb returns; scripts/check_trace.py validates it
// in CI.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace sherlock {

class PercentileTracker {
 public:
  void record(double value) {
    samples_.push_back(value);
    sorted_ = false;
  }

  size_t count() const { return samples_.size(); }

  double mean() const {
    if (samples_.empty()) return 0.0;
    double sum = 0.0;
    for (double s : samples_) sum += s;
    return sum / static_cast<double>(samples_.size());
  }

  /// Nearest-rank percentile; q in [0, 100]. Returns 0 with no samples.
  double percentile(double q) const {
    if (samples_.empty()) return 0.0;
    ensureSorted();
    double rank = q / 100.0 * static_cast<double>(samples_.size() - 1);
    size_t idx = static_cast<size_t>(rank + 0.5);
    if (idx >= samples_.size()) idx = samples_.size() - 1;
    return samples_[idx];
  }

  double min() const { return percentile(0); }
  double max() const { return percentile(100); }

  void clear() {
    samples_.clear();
    sorted_ = true;
  }

 private:
  void ensureSorted() const {
    if (sorted_) return;
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }

  /// Sample arrival order is never observable, so queries sort the
  /// resident vector in place and cache that state until the next
  /// record() invalidates it.
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

/// Cache-outcome counters shared by cache-fronted services: every
/// request is exactly one of hit / miss (the request that performed the
/// compile) / coalesced (waited on an identical in-flight compile) /
/// error.
struct CacheCounters {
  uint64_t requests = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t coalesced = 0;
  uint64_t errors = 0;
  uint64_t evictions = 0;
  /// Subset of `hits` answered by the exact-source memo (direct mode),
  /// skipping parse + canonicalization entirely.
  uint64_t directHits = 0;

  double hitRate() const {
    uint64_t served = hits + misses + coalesced;
    return served == 0
               ? 0.0
               : static_cast<double>(hits + coalesced) /
                     static_cast<double>(served);
  }
};

class MetricsRegistry {
 public:
  /// Histogram summary as exported in the JSON schema.
  struct HistogramSnapshot {
    size_t count = 0;
    double mean = 0, min = 0, max = 0, p50 = 0, p95 = 0, p99 = 0;
  };

  /// Adds `delta` to a monotonic counter (created at 0 on first use).
  void add(const std::string& name, uint64_t delta = 1);

  /// Sets a gauge to `value` (last write wins).
  void setGauge(const std::string& name, double value);

  /// Records one histogram sample.
  void observe(const std::string& name, double value);

  uint64_t counterValue(const std::string& name) const;
  double gaugeValue(const std::string& name) const;
  HistogramSnapshot histogram(const std::string& name) const;

  /// The unified JSON schema documented above.
  std::string toJson() const;

  void clear();

  /// The process-wide shared registry.
  static MetricsRegistry& global();

 private:
  mutable std::mutex mu_;
  std::map<std::string, uint64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, PercentileTracker> histograms_;
};

}  // namespace sherlock
