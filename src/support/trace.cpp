#include "support/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "support/diagnostics.h"

namespace sherlock::trace {

namespace {

/// Implicit per-thread tracks live far above any explicit work-item id.
constexpr uint32_t kImplicitTrackBase = 1u << 30;

/// Per-thread buffer cap: a long-running daemon keeps at most this many
/// events per thread (further events are dropped and counted).
constexpr size_t kMaxEventsPerThread = 1u << 20;

double nowSteadyNs() {
  return std::chrono::duration<double, std::nano>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void appendEscaped(std::ostream& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out << "\\u" << std::hex << std::setw(4) << std::setfill('0')
              << static_cast<int>(c) << std::dec << std::setfill(' ');
        } else {
          out << c;
        }
    }
  }
}

/// Chrome-trace timestamps are microseconds. The deterministic virtual
/// clock counts ticks, emitted 1 tick = 1 us so traces stay integral.
void writeTs(std::ostream& out, double ts, bool deterministic) {
  if (deterministic) {
    out << static_cast<long long>(ts);
  } else {
    out << std::fixed << std::setprecision(3) << ts / 1000.0
        << std::defaultfloat;
  }
}

}  // namespace

struct Tracer::ThreadBuffer {
  std::mutex mu;
  std::vector<TraceEvent> events;  // guarded by mu
  uint32_t track;                  // current logical track (owner thread)
  uint64_t tick = 0;               // deterministic clock of this track
};

Tracer& Tracer::instance() {
  static Tracer* tracer = new Tracer();  // leaked: alive for exit paths
  return *tracer;
}

void Tracer::enable() {
  if (enabled()) return;
  const char* det = std::getenv("SHERLOCK_TRACE_DETERMINISTIC");
  deterministic_ = det != nullptr && det[0] == '1';
  startNs_ = nowSteadyNs();
  enabled_.store(true, std::memory_order_release);
}

void Tracer::disable() { enabled_.store(false, std::memory_order_release); }

Tracer::ThreadBuffer& Tracer::buffer() {
  thread_local ThreadBuffer* tls = nullptr;
  if (tls == nullptr) {
    auto owned = std::make_unique<ThreadBuffer>();
    tls = owned.get();
    std::lock_guard<std::mutex> lock(mu_);
    tls->track =
        kImplicitTrackBase + static_cast<uint32_t>(buffers_.size());
    buffers_.push_back(std::move(owned));
  }
  return *tls;
}

void Tracer::record(TraceEvent event) {
  ThreadBuffer& buf = buffer();
  std::lock_guard<std::mutex> lock(buf.mu);
  event.track = buf.track;
  event.ts = deterministic_ ? static_cast<double>(buf.tick++)
                            : nowSteadyNs() - startNs_;
  if (buf.events.size() >= kMaxEventsPerThread) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  buf.events.push_back(std::move(event));
}

void Tracer::begin(const char* category, std::string name,
                   std::string args) {
  if (!enabled()) return;
  TraceEvent e;
  e.phase = TraceEvent::Phase::Begin;
  e.category = category;
  e.name = std::move(name);
  e.args = std::move(args);
  record(std::move(e));
}

void Tracer::end() {
  if (!enabled()) return;
  TraceEvent e;
  e.phase = TraceEvent::Phase::End;
  record(std::move(e));
}

void Tracer::instant(const char* category, std::string name,
                     std::string args) {
  if (!enabled()) return;
  TraceEvent e;
  e.phase = TraceEvent::Phase::Instant;
  e.category = category;
  e.name = std::move(name);
  e.args = std::move(args);
  record(std::move(e));
}

void Tracer::counter(const char* category, std::string name,
                     double value) {
  if (!enabled()) return;
  TraceEvent e;
  e.phase = TraceEvent::Phase::Counter;
  e.category = category;
  e.name = std::move(name);
  e.value = value;
  record(std::move(e));
}

void Tracer::setTrackName(uint32_t track, const std::string& name) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& entry : trackNames_)
    if (entry.first == track) {
      entry.second = name;
      return;
    }
  trackNames_.emplace_back(track, name);
}

std::vector<TraceEvent> Tracer::snapshot() const {
  std::vector<TraceEvent> merged;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& buf : buffers_) {
      std::lock_guard<std::mutex> bufLock(buf->mu);
      merged.insert(merged.end(), buf->events.begin(), buf->events.end());
    }
  }
  // Deterministic traces order by (track, tick): ticks are unique per
  // track, so the merged stream is a pure function of per-track work.
  // Real traces order by timestamp; stable_sort keeps each thread's
  // emission order for equal stamps.
  if (deterministic_) {
    std::stable_sort(merged.begin(), merged.end(),
                     [](const TraceEvent& a, const TraceEvent& b) {
                       return a.track != b.track ? a.track < b.track
                                                 : a.ts < b.ts;
                     });
  } else {
    std::stable_sort(merged.begin(), merged.end(),
                     [](const TraceEvent& a, const TraceEvent& b) {
                       return a.ts < b.ts;
                     });
  }
  return merged;
}

std::string Tracer::exportJson() const {
  std::vector<TraceEvent> events = snapshot();
  std::vector<std::pair<uint32_t, std::string>> names;
  {
    std::lock_guard<std::mutex> lock(mu_);
    names = trackNames_;
  }
  std::sort(names.begin(), names.end());

  std::ostringstream out;
  out << "{\"displayTimeUnit\": \"ns\", \"traceEvents\": [";
  bool first = true;
  auto comma = [&] {
    out << (first ? "\n" : ",\n");
    first = false;
  };
  for (const auto& [track, name] : names) {
    comma();
    out << "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, "
           "\"tid\": "
        << track << ", \"args\": {\"name\": \"";
    appendEscaped(out, name);
    out << "\"}}";
  }
  for (const TraceEvent& e : events) {
    comma();
    out << "{\"ph\": \"";
    switch (e.phase) {
      case TraceEvent::Phase::Begin: out << 'B'; break;
      case TraceEvent::Phase::End: out << 'E'; break;
      case TraceEvent::Phase::Instant: out << 'i'; break;
      case TraceEvent::Phase::Counter: out << 'C'; break;
    }
    out << "\", \"pid\": 1, \"tid\": " << e.track << ", \"ts\": ";
    writeTs(out, e.ts, deterministic_);
    if (e.phase != TraceEvent::Phase::End) {
      out << ", \"name\": \"";
      appendEscaped(out, e.name);
      out << "\", \"cat\": \"";
      appendEscaped(out, e.category);
      out << "\"";
    }
    if (e.phase == TraceEvent::Phase::Instant) out << ", \"s\": \"t\"";
    if (e.phase == TraceEvent::Phase::Counter) {
      std::ostringstream v;
      v << std::setprecision(15) << e.value;
      out << ", \"args\": {\"value\": " << v.str() << "}";
    } else if (!e.args.empty()) {
      out << ", \"args\": {" << e.args << "}";
    }
    out << "}";
  }
  out << "\n]}\n";
  return out.str();
}

void Tracer::writeJson(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw Error(strCat("cannot write trace to ", path));
  out << exportJson();
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& buf : buffers_) {
    std::lock_guard<std::mutex> bufLock(buf->mu);
    buf->events.clear();
    buf->tick = 0;
  }
  trackNames_.clear();
  dropped_.store(0, std::memory_order_relaxed);
  startNs_ = nowSteadyNs();
}

ScopedTrack::ScopedTrack(uint32_t track, const std::string& name) {
  Tracer& t = Tracer::instance();
  if (!t.enabled()) return;
  active_ = true;
  Tracer::ThreadBuffer& buf = t.buffer();
  {
    std::lock_guard<std::mutex> lock(buf.mu);
    savedTrack_ = buf.track;
    savedTick_ = buf.tick;
    buf.track = track;
    buf.tick = 0;
  }
  if (!name.empty()) t.setTrackName(track, name);
}

ScopedTrack::~ScopedTrack() {
  if (!active_) return;
  Tracer& t = Tracer::instance();
  Tracer::ThreadBuffer& buf = t.buffer();
  std::lock_guard<std::mutex> lock(buf.mu);
  buf.track = savedTrack_;
  buf.tick = savedTick_;
}

}  // namespace sherlock::trace
