// Cooperative cancellation and deadlines for long-running work.
//
// A CancelToken carries an optional deadline (steady-clock) and an
// explicit cancel flag. Work that wants to be cancellable calls
// checkpoint("phase") at its phase boundaries; an expired or cancelled
// token makes the checkpoint throw DeadlineExceeded, which the owner
// turns into a structured error response. There is no preemption — a
// phase that never checkpoints runs to completion — so checkpoints
// must bracket every potentially slow step.
//
// Tokens are written by one thread (the admitting serve loop, which may
// later tighten the deadline for a graceful drain) and read by another
// (the worker running the request); both sides go through one relaxed
// atomic, so no lock is needed.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <string>

#include "support/diagnostics.h"

namespace sherlock {

/// Thrown by CancelToken::checkpoint when the deadline has passed (or
/// the token was cancelled). Carries the phase name that noticed.
class DeadlineExceeded : public Error {
 public:
  explicit DeadlineExceeded(const std::string& phase)
      : Error(strCat("deadline exceeded in ", phase)), phase_(phase) {}

  const std::string& phase() const { return phase_; }

 private:
  std::string phase_;
};

class CancelToken {
 public:
  using Clock = std::chrono::steady_clock;

  static constexpr int64_t kNoDeadline =
      std::numeric_limits<int64_t>::max();

  /// Tightens the deadline to `t` (keeps the earlier of the two; a
  /// token's deadline only ever moves closer).
  void tighten(Clock::time_point t) {
    int64_t ns = t.time_since_epoch().count();
    int64_t cur = deadlineNs_.load(std::memory_order_relaxed);
    while (ns < cur && !deadlineNs_.compare_exchange_weak(
                           cur, ns, std::memory_order_relaxed)) {
    }
  }

  /// Tightens the deadline to now + `ms`.
  void tightenAfterMs(double ms) {
    tighten(Clock::now() + std::chrono::nanoseconds(
                               static_cast<int64_t>(ms * 1e6)));
  }

  /// Marks the token cancelled outright (checkpoints throw from now on).
  void cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  bool hasDeadline() const {
    return deadlineNs_.load(std::memory_order_relaxed) != kNoDeadline;
  }

  Clock::time_point deadline() const {
    return Clock::time_point(std::chrono::nanoseconds(
        deadlineNs_.load(std::memory_order_relaxed)));
  }

  bool expired() const {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    int64_t ns = deadlineNs_.load(std::memory_order_relaxed);
    return ns != kNoDeadline &&
           Clock::now().time_since_epoch().count() >= ns;
  }

  /// Throws DeadlineExceeded (naming `phase`) if expired or cancelled;
  /// otherwise a no-op.
  void checkpoint(const char* phase) const {
    if (expired()) throw DeadlineExceeded(phase);
  }

 private:
  std::atomic<int64_t> deadlineNs_{kNoDeadline};
  std::atomic<bool> cancelled_{false};
};

}  // namespace sherlock
