// Deterministic fault-injection points ("failpoints") for chaos
// testing the serving stack.
//
// A failpoint is a named site in the code (`failpoint::check("parse")`)
// that normally costs one relaxed atomic load and does nothing. When
// the registry is configured — from the SHERLOCK_FAILPOINTS environment
// variable or `sherlockc --failpoints` — matching sites take one of
// three actions per the spec:
//
//   SHERLOCK_FAILPOINTS="parse:0.1,compile:err,io:delay50ms"
//
//   <name>:<p>          throw InjectedFault with probability p in [0,1]
//   <name>:err          throw InjectedFault on every evaluation
//   <name>:delay<N>ms   sleep N milliseconds, then continue
//
// Probabilistic points draw from a per-point splitmix64 stream seeded
// from (global seed, point name), so a fixed seed produces the same
// trigger sequence per point on every run — the chaos suite's
// determinism contract. Draw order across *threads* is serialized per
// point by the registry lock, so per-point sequences are stable even
// when the points themselves race.
//
// InjectedFault derives from Error: injection surfaces through the same
// structured error paths real failures use (which is the point — the
// chaos harness asserts those paths stay airtight under fire).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "support/diagnostics.h"

namespace sherlock::failpoint {

/// An artificially injected failure (never thrown unless a failpoint
/// spec is active).
class InjectedFault : public Error {
 public:
  using Error::Error;
};

class FailPoints {
 public:
  static FailPoints& instance();

  /// Replaces the active configuration with `spec` (the comma-separated
  /// grammar above; empty string deactivates everything). Throws Error
  /// on a malformed spec. `seed` derives every probabilistic point's
  /// draw stream.
  void configure(const std::string& spec, uint64_t seed = 1);

  /// configure() from SHERLOCK_FAILPOINTS / SHERLOCK_FAILPOINT_SEED if
  /// set; no-op otherwise. Returns true when a spec was applied.
  bool configureFromEnv();

  /// Deactivates all points (check() returns to the one-load fast path).
  void reset();

  bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Evaluates the point `name`: sleeps, throws InjectedFault, or does
  /// nothing, per the active spec. Unknown names are no-ops.
  void evaluate(const char* name);

  /// Times `name` was evaluated / actually fired since configure().
  uint64_t evaluations(const std::string& name) const;
  uint64_t triggers(const std::string& name) const;

  /// (name, trigger count) for every configured point, name-sorted.
  std::vector<std::pair<std::string, uint64_t>> allTriggers() const;

 private:
  enum class Action { Error, Delay, Probability };

  struct Point {
    Action action = Action::Error;
    double probability = 0;
    int delayMs = 0;
    uint64_t rngState = 0;  ///< per-point splitmix64 stream
    uint64_t evaluations = 0;
    uint64_t triggers = 0;
  };

  FailPoints() = default;
  static Point parseAction(const std::string& name,
                           const std::string& action, uint64_t seed);

  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::map<std::string, Point> points_;
};

/// The zero-cost-when-disabled emission site: one relaxed atomic load,
/// then (only when a spec is active) the full evaluation.
inline void check(const char* name) {
  FailPoints& fp = FailPoints::instance();
  if (fp.enabled()) fp.evaluate(name);
}

}  // namespace sherlock::failpoint
