#include "support/failpoint.h"

#include <chrono>
#include <cstdlib>
#include <thread>

#include "support/parallel.h"  // splitmix64

namespace sherlock::failpoint {

FailPoints& FailPoints::instance() {
  static FailPoints fp;
  return fp;
}

FailPoints::Point FailPoints::parseAction(const std::string& name,
                                          const std::string& action,
                                          uint64_t seed) {
  Point p;
  // Seed the per-point stream from (global seed, name) so each point's
  // trigger sequence is independent and reproducible.
  uint64_t nameHash = 1469598103934665603ULL;
  for (unsigned char c : name) {
    nameHash ^= c;
    nameHash *= 1099511628211ULL;
  }
  p.rngState = deriveSeed(seed, nameHash);

  if (action == "err") {
    p.action = Action::Error;
    return p;
  }
  if (action.size() > 7 && action.compare(0, 5, "delay") == 0 &&
      action.compare(action.size() - 2, 2, "ms") == 0) {
    try {
      size_t pos = 0;
      std::string digits = action.substr(5, action.size() - 7);
      int ms = std::stoi(digits, &pos);
      if (pos == digits.size() && ms >= 0) {
        p.action = Action::Delay;
        p.delayMs = ms;
        return p;
      }
    } catch (const std::exception&) {
    }
    throw Error(strCat("failpoint '", name, "': bad delay '", action,
                       "' (want delay<N>ms)"));
  }
  try {
    size_t pos = 0;
    double prob = std::stod(action, &pos);
    if (pos == action.size() && prob >= 0.0 && prob <= 1.0) {
      p.action = Action::Probability;
      p.probability = prob;
      return p;
    }
  } catch (const std::exception&) {
  }
  throw Error(strCat("failpoint '", name, "': bad action '", action,
                     "' (want a probability in [0,1], 'err', or "
                     "'delay<N>ms')"));
}

void FailPoints::configure(const std::string& spec, uint64_t seed) {
  std::map<std::string, Point> points;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    std::string entry = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (entry.empty()) continue;
    size_t colon = entry.find(':');
    checkArg(colon != std::string::npos && colon > 0,
             strCat("failpoint entry '", entry, "' wants <name>:<action>"));
    std::string name = entry.substr(0, colon);
    points[name] = parseAction(name, entry.substr(colon + 1), seed);
  }
  std::lock_guard<std::mutex> lock(mu_);
  points_ = std::move(points);
  enabled_.store(!points_.empty(), std::memory_order_relaxed);
}

bool FailPoints::configureFromEnv() {
  const char* spec = std::getenv("SHERLOCK_FAILPOINTS");
  if (spec == nullptr || *spec == '\0') return false;
  uint64_t seed = 1;
  if (const char* s = std::getenv("SHERLOCK_FAILPOINT_SEED")) {
    try {
      seed = std::stoull(s);
    } catch (const std::exception&) {
      throw Error(strCat("SHERLOCK_FAILPOINT_SEED: bad seed '", s, "'"));
    }
  }
  configure(spec, seed);
  return true;
}

void FailPoints::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  points_.clear();
  enabled_.store(false, std::memory_order_relaxed);
}

void FailPoints::evaluate(const char* name) {
  int delayMs = -1;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = points_.find(name);
    if (it == points_.end()) return;
    Point& p = it->second;
    ++p.evaluations;
    switch (p.action) {
      case Action::Error:
        ++p.triggers;
        throw InjectedFault(strCat("injected fault at '", name, "'"));
      case Action::Probability: {
        // One splitmix64 draw per evaluation; the high 53 bits make a
        // uniform double in [0, 1).
        p.rngState = splitmix64(p.rngState);
        double u = static_cast<double>(p.rngState >> 11) * 0x1.0p-53;
        if (u < p.probability) {
          ++p.triggers;
          throw InjectedFault(strCat("injected fault at '", name, "'"));
        }
        return;
      }
      case Action::Delay:
        ++p.triggers;
        delayMs = p.delayMs;
        break;
    }
  }
  // Sleep outside the lock so a delay point doesn't serialize every
  // other point behind it.
  if (delayMs > 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(delayMs));
}

uint64_t FailPoints::evaluations(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(name);
  return it == points_.end() ? 0 : it->second.evaluations;
}

uint64_t FailPoints::triggers(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(name);
  return it == points_.end() ? 0 : it->second.triggers;
}

std::vector<std::pair<std::string, uint64_t>> FailPoints::allTriggers()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, uint64_t>> out;
  out.reserve(points_.size());
  for (const auto& [name, point] : points_)
    out.emplace_back(name, point.triggers);
  return out;
}

}  // namespace sherlock::failpoint
