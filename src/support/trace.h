// Process-wide span tracer for the compile pipeline, the serve daemon,
// and the simulator.
//
// Design:
//  * Near-zero cost when disabled: every emission site checks one
//    relaxed atomic load and returns. The tracer ships disabled; the
//    entry points that want traces (sherlockc --trace-out, --serve)
//    enable it explicitly.
//  * Thread-safe via per-thread buffers: each thread appends to its own
//    buffer under an uncontended mutex; snapshot()/exportJson() drain
//    all buffers under the registry lock and merge them into one stably
//    ordered stream. Buffers are bounded (kMaxEventsPerThread); events
//    beyond the cap are counted in droppedEvents() instead of growing
//    without bound in a long-running daemon.
//  * Two clocks. The real clock is steady_clock nanoseconds since
//    enable(). Under SHERLOCK_TRACE_DETERMINISTIC=1 a virtual clock is
//    used instead: each (thread, track) keeps a tick counter and every
//    event stamps the next tick, so a trace is a pure function of the
//    work performed per track — byte-stable across runs and across
//    thread counts (the CI determinism diff compares --jobs 1 vs 8).
//  * Logical tracks. Work items that migrate across pool threads
//    (sherlockc batch files, serve requests) enter a ScopedTrack; all
//    events emitted inside it carry that track id, which becomes the
//    Chrome-trace tid. Events outside any track land on an implicit
//    per-thread track. Deterministic traces require every parallel
//    region to run inside explicit tracks (per-thread implicit ids
//    depend on scheduling).
//
// Exported as Chrome trace_event JSON ("traceEvents" array of B/E/i/C/M
// phases), loadable in Perfetto or chrome://tracing.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace sherlock::trace {

struct TraceEvent {
  enum class Phase : uint8_t { Begin, End, Instant, Counter };
  Phase phase = Phase::Instant;
  const char* category = "";  ///< static-storage string (span category)
  std::string name;           ///< empty for End events (pairs by nesting)
  double ts = 0;              ///< ns since enable(), or virtual ticks
  uint32_t track = 0;         ///< Chrome-trace tid
  double value = 0;           ///< Counter events: the sampled value
  std::string args;           ///< extra JSON object fields, pre-escaped
};

class Tracer {
 public:
  static Tracer& instance();

  /// Starts recording. Reads SHERLOCK_TRACE_DETERMINISTIC (=1 switches
  /// to the virtual clock) at this point. Idempotent.
  void enable();
  void disable();
  bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }
  bool deterministic() const { return deterministic_; }

  /// Span boundaries. A Begin/End pair must be emitted by one thread in
  /// one track (use the RAII Span). No-ops while disabled.
  void begin(const char* category, std::string name,
             std::string args = {});
  void end();

  /// A point event (Chrome "i" phase). `args` is an optional list of
  /// extra JSON object members, e.g. "\"instruction\": 12".
  void instant(const char* category, std::string name,
               std::string args = {});

  /// A counter sample (Chrome "C" phase), plotted as a time series.
  void counter(const char* category, std::string name, double value);

  /// Names a logical track (exported as thread_name metadata).
  void setTrackName(uint32_t track, const std::string& name);

  /// All recorded events, merged across threads and stably ordered:
  /// by (track, ts) under the deterministic clock, by ts otherwise.
  std::vector<TraceEvent> snapshot() const;

  /// Chrome trace_event JSON ({"traceEvents": [...]}).
  std::string exportJson() const;
  void writeJson(const std::string& path) const;

  /// Events discarded because a thread buffer hit its cap.
  uint64_t droppedEvents() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Discards all recorded events and resets the clocks. Callers must
  /// ensure no thread is concurrently emitting.
  void clear();

  struct ThreadBuffer;

 private:
  Tracer() = default;
  ThreadBuffer& buffer();
  void record(TraceEvent event);

  std::atomic<bool> enabled_{false};
  bool deterministic_ = false;
  std::atomic<uint64_t> dropped_{0};
  double startNs_ = 0;  ///< steady_clock origin of the real clock

  mutable std::mutex mu_;  ///< guards buffers_, trackNames_
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
  std::vector<std::pair<uint32_t, std::string>> trackNames_;

  friend class ScopedTrack;
};

/// RAII span: begin on construction, end on destruction. Inactive (and
/// free apart from one atomic load) while the tracer is disabled.
class Span {
 public:
  Span(const char* category, std::string name, std::string args = {})
      : active_(Tracer::instance().enabled()) {
    if (active_)
      Tracer::instance().begin(category, std::move(name),
                               std::move(args));
  }
  ~Span() {
    if (active_) Tracer::instance().end();
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  bool active_;
};

/// Enters a logical track for the current thread (restores the previous
/// track on destruction). Under the deterministic clock the track's
/// tick counter starts at zero, so the events of one work item are
/// identical no matter which pool thread runs it. Track ids must be
/// unique per work item (they are the Chrome-trace tid); ids >= 2^30
/// are reserved for implicit per-thread tracks.
class ScopedTrack {
 public:
  ScopedTrack(uint32_t track, const std::string& name = {});
  ~ScopedTrack();
  ScopedTrack(const ScopedTrack&) = delete;
  ScopedTrack& operator=(const ScopedTrack&) = delete;

 private:
  bool active_ = false;
  uint32_t savedTrack_ = 0;
  uint64_t savedTick_ = 0;
};

}  // namespace sherlock::trace
