// Bounded thread pool and data-parallel helpers for the benchmark
// harnesses and tools.
//
// Design goals (in priority order):
//  * Determinism: parallelFor/parallelMap only choose *when* an index is
//    processed, never *what* it computes. Callers must derive all
//    stochastic state from the iteration index (see splitmix64 /
//    deriveSeed below) so an 8-thread run is bit-identical to a serial
//    one.
//  * Simplicity: a fixed set of workers pulls indices from one atomic
//    counter — no task queue, no work stealing. Sweep jobs are coarse
//    (milliseconds to seconds of compile + simulate), so contention on
//    the counter is irrelevant.
//  * Safety: the first exception thrown by any iteration cancels the
//    remaining ones and is rethrown on the calling thread. Nested
//    parallelFor calls are flattened — the inner loop runs serially on
//    the worker it lands on, so the pool can never deadlock on itself.
//
// The worker count of the shared pool comes from the SHERLOCK_THREADS
// environment variable when set (a positive integer; 1 disables
// parallelism entirely), otherwise from std::thread::hardware_concurrency.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace sherlock {

/// splitmix64 mixing step (Steele, Lea & Flood). Statistically strong
/// enough to decorrelate adjacent counters, which is exactly the
/// counter-based seeding scheme the Monte-Carlo benches rely on.
inline uint64_t splitmix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Derives the seed for trial/job `index` from a base seed. Pure function
/// of (base, index): any execution order — serial, parallel, resumed —
/// yields the same per-trial RNG streams, and distinct indices yield
/// statistically independent streams.
inline uint64_t deriveSeed(uint64_t base, uint64_t index) {
  return splitmix64(base ^ splitmix64(index));
}

/// A bounded, work-stealing-free thread pool. `threads` is the total
/// degree of parallelism including the calling thread: a pool of size N
/// keeps N - 1 workers and the caller participates in every parallelFor,
/// so size 1 means strictly serial execution with zero spawned threads.
class ThreadPool {
 public:
  /// `threads` <= 0 selects the default (SHERLOCK_THREADS or hardware).
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total parallelism (workers + calling thread), always >= 1.
  int threadCount() const { return static_cast<int>(workers_.size()) + 1; }

  /// Runs body(0) .. body(n - 1), distributing indices over the pool.
  /// Blocks until every iteration finished or an iteration threw; in the
  /// latter case the remaining indices are cancelled and the first
  /// exception (in completion order) is rethrown here. Reentrant calls
  /// from inside a body are flattened to serial execution.
  void parallelFor(int64_t n, const std::function<void(int64_t)>& body);

  /// Resolved default worker count: SHERLOCK_THREADS if set and valid,
  /// else std::thread::hardware_concurrency (at least 1).
  static int defaultThreads();

  /// The process-wide shared pool, created on first use with
  /// defaultThreads() workers.
  static ThreadPool& global();

 private:
  struct Batch {
    int64_t n = 0;
    const std::function<void(int64_t)>* body = nullptr;
    std::atomic<int64_t> next{0};
    int64_t active = 0;  // workers currently in the batch; guarded by mu_
    std::exception_ptr error;  // guarded by mu_
  };

  void workerLoop();
  void runIterations(Batch& batch);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable workReady_;
  std::condition_variable workDone_;
  Batch* batch_ = nullptr;  // guarded by mu_
  uint64_t generation_ = 0;  // guarded by mu_; bumped per batch
  bool shutdown_ = false;  // guarded by mu_
};

/// parallelFor on the shared global pool.
inline void parallelFor(int64_t n, const std::function<void(int64_t)>& body) {
  ThreadPool::global().parallelFor(n, body);
}

/// Maps `fn` over `items` on `pool`, returning results in input order
/// regardless of completion order. `fn` must be safe to invoke
/// concurrently; results are moved into place, so the result type only
/// needs to be movable.
template <typename T, typename F>
auto parallelMap(ThreadPool& pool, const std::vector<T>& items, F&& fn)
    -> std::vector<std::decay_t<std::invoke_result_t<F&, const T&>>> {
  using R = std::decay_t<std::invoke_result_t<F&, const T&>>;
  std::vector<std::optional<R>> slots(items.size());
  pool.parallelFor(static_cast<int64_t>(items.size()), [&](int64_t i) {
    slots[static_cast<size_t>(i)].emplace(
        fn(items[static_cast<size_t>(i)]));
  });
  std::vector<R> out;
  out.reserve(items.size());
  for (auto& slot : slots) out.push_back(std::move(*slot));
  return out;
}

/// parallelMap on the shared global pool.
template <typename T, typename F>
auto parallelMap(const std::vector<T>& items, F&& fn) {
  return parallelMap(ThreadPool::global(), items, std::forward<F>(fn));
}

}  // namespace sherlock
