// Bounded least-recently-used cache, the storage behind the compile
// service's content-addressed program cache (ROADMAP "never compile the
// same kernel twice"). Same idiom as the request-serving simulators'
// LRUCache (SNIPPETS 1–2): an intrusive recency list plus a key index,
// O(1) get/put, with eviction accounting surfaced for metrics.
//
// Not thread-safe: callers serialize access (the compile service holds
// its own mutex around lookups and keeps compiles outside the lock).
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>
#include <utility>
#include <vector>

namespace sherlock {

template <typename K, typename V, typename Hash = std::hash<K>>
class LruCache {
 public:
  /// `capacity` bounds the entry count; 0 disables caching entirely
  /// (every put is dropped, every get misses).
  explicit LruCache(size_t capacity) : capacity_(capacity) {}

  /// Returns the cached value and promotes the entry to most-recently
  /// used, or nullptr on miss. The pointer stays valid until the next
  /// put() or clear().
  V* get(const K& key) {
    auto it = index_.find(key);
    if (it == index_.end()) return nullptr;
    items_.splice(items_.begin(), items_, it->second);
    return &it->second->second;
  }

  /// Inserts or overwrites; the entry becomes most-recently used. When
  /// the cache is over capacity the least-recently-used entry is
  /// dropped and counted in evictions().
  void put(const K& key, V value) {
    if (capacity_ == 0) return;
    auto it = index_.find(key);
    if (it != index_.end()) {
      it->second->second = std::move(value);
      items_.splice(items_.begin(), items_, it->second);
      return;
    }
    items_.emplace_front(key, std::move(value));
    index_.emplace(key, items_.begin());
    if (items_.size() > capacity_) {
      index_.erase(items_.back().first);
      items_.pop_back();
      ++evictions_;
    }
  }

  /// Lookup without a recency update (tests inspect eviction order
  /// through this without perturbing it).
  bool contains(const K& key) const { return index_.count(key) != 0; }

  /// Value lookup without a recency update, or nullptr on miss — the
  /// cache-snapshot writer walks every entry through this so that
  /// persisting the cache doesn't scramble its eviction order.
  const V* peek(const K& key) const {
    auto it = index_.find(key);
    return it == index_.end() ? nullptr : &it->second->second;
  }

  /// Keys from most- to least-recently used.
  std::vector<K> keysMruToLru() const {
    std::vector<K> keys;
    keys.reserve(items_.size());
    for (const auto& item : items_) keys.push_back(item.first);
    return keys;
  }

  void clear() {
    items_.clear();
    index_.clear();
  }

  size_t size() const { return items_.size(); }
  size_t capacity() const { return capacity_; }
  uint64_t evictions() const { return evictions_; }

 private:
  size_t capacity_;
  uint64_t evictions_ = 0;
  std::list<std::pair<K, V>> items_;  // front = most recently used
  std::unordered_map<K, typename std::list<std::pair<K, V>>::iterator,
                     Hash>
      index_;
};

}  // namespace sherlock
