// Error reporting and invariant checking for the Sherlock libraries.
//
// Conventions:
//  * `Error` (an exception) reports violations of API contracts and invalid
//    user input (bad programs, infeasible mappings, malformed instructions).
//  * `SHERLOCK_ASSERT` guards internal invariants; it throws `InternalError`
//    so that tests can observe violations without aborting the process.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace sherlock {

/// Concatenates all arguments into one string using operator<<.
template <typename... Args>
std::string strCat(const Args&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}

/// Base class of all exceptions thrown by Sherlock libraries.
class Error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Violation of an internal invariant (a bug in Sherlock itself).
class InternalError : public Error {
 public:
  using Error::Error;
};

/// Invalid input program or malformed IR.
class IRError : public Error {
 public:
  using Error::Error;
};

/// Front-end syntax/semantic error. Carries source line/column.
class ParseError : public Error {
 public:
  ParseError(std::string message, int line, int column)
      : Error(strCat("line ", line, ":", column, ": ", message)),
        line_(line),
        column_(column) {}

  int line() const { return line_; }
  int column() const { return column_; }

 private:
  int line_;
  int column_;
};

/// Mapping/scheduling failure (e.g. DAG does not fit the target array).
class MappingError : public Error {
 public:
  using Error::Error;
};

/// Simulator-detected inconsistency (bad instruction stream, OOB access).
class SimulationError : public Error {
 public:
  using Error::Error;
};

/// Static program verification failure (src/verify): a compiled program
/// violates an ISA/array constraint or disagrees with its source DAG.
/// Carries the violated rule name and, when the violation anchors to one
/// instruction, its index in the program (kNoInstruction otherwise).
class VerificationError : public Error {
 public:
  static constexpr long kNoInstruction = -1;

  VerificationError(const std::string& message, std::string rule,
                    long instructionIndex = kNoInstruction)
      : Error(message),
        rule_(std::move(rule)),
        instructionIndex_(instructionIndex) {}

  const std::string& rule() const { return rule_; }
  long instructionIndex() const { return instructionIndex_; }

 private:
  std::string rule_;
  long instructionIndex_;
};

/// Throws `Error` with `message` unless `condition` holds.
inline void checkArg(bool condition, const std::string& message) {
  if (!condition) throw Error(message);
}

namespace detail {
[[noreturn]] inline void assertFail(const char* expr, const char* file,
                                    int line, const std::string& message) {
  throw InternalError(strCat(file, ":", line, ": assertion `", expr,
                             "` failed", message.empty() ? "" : ": ",
                             message));
}
}  // namespace detail

}  // namespace sherlock

#define SHERLOCK_ASSERT(cond, ...)                                   \
  do {                                                               \
    if (!(cond))                                                     \
      ::sherlock::detail::assertFail(#cond, __FILE__, __LINE__,      \
                                     ::sherlock::strCat(__VA_ARGS__)); \
  } while (false)
