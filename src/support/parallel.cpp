#include "support/parallel.h"

#include <cstdlib>
#include <exception>
#include <string>

namespace sherlock {

namespace {

// Set while a thread is executing parallelFor iterations; nested
// parallelFor calls observe it and degrade to serial inline execution.
thread_local bool tlsInParallelRegion = false;

class ScopedParallelRegion {
 public:
  ScopedParallelRegion() { tlsInParallelRegion = true; }
  ~ScopedParallelRegion() { tlsInParallelRegion = false; }
};

}  // namespace

int ThreadPool::defaultThreads() {
  if (const char* env = std::getenv("SHERLOCK_THREADS")) {
    char* end = nullptr;
    long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1 && v <= 1024)
      return static_cast<int>(v);
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? static_cast<int>(hw) : 1;
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(0);
  return pool;
}

ThreadPool::ThreadPool(int threads) {
  if (threads <= 0) threads = defaultThreads();
  workers_.reserve(static_cast<size_t>(threads - 1));
  for (int i = 0; i + 1 < threads; ++i)
    workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    shutdown_ = true;
  }
  workReady_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::runIterations(Batch& batch) {
  ScopedParallelRegion region;
  for (;;) {
    int64_t i = batch.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= batch.n) return;
    try {
      (*batch.body)(i);
    } catch (...) {
      std::lock_guard<std::mutex> lk(mu_);
      if (!batch.error) batch.error = std::current_exception();
      // Cancel iterations nobody claimed yet; in-flight ones finish.
      batch.next.store(batch.n, std::memory_order_relaxed);
    }
  }
}

void ThreadPool::workerLoop() {
  uint64_t seenGeneration = 0;
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    workReady_.wait(lk, [&] {
      return shutdown_ || generation_ != seenGeneration;
    });
    if (shutdown_) return;
    seenGeneration = generation_;
    Batch* batch = batch_;
    if (batch == nullptr) continue;  // batch already retired
    ++batch->active;
    lk.unlock();
    runIterations(*batch);
    lk.lock();
    if (--batch->active == 0) workDone_.notify_all();
  }
}

void ThreadPool::parallelFor(int64_t n,
                             const std::function<void(int64_t)>& body) {
  if (n <= 0) return;
  if (tlsInParallelRegion || workers_.empty() || n == 1) {
    // Flattened / serial execution on the calling thread. Exceptions
    // propagate directly.
    ScopedParallelRegion region;
    for (int64_t i = 0; i < n; ++i) body(i);
    return;
  }

  Batch batch;
  batch.n = n;
  batch.body = &body;
  {
    std::lock_guard<std::mutex> lk(mu_);
    batch_ = &batch;
    ++generation_;
  }
  workReady_.notify_all();

  runIterations(batch);  // the caller is one of the pool's lanes

  std::unique_lock<std::mutex> lk(mu_);
  // The index counter is exhausted (our runIterations returned), so the
  // batch is complete once every participating worker has left it.
  workDone_.wait(lk, [&] { return batch.active == 0; });
  batch_ = nullptr;
  lk.unlock();

  if (batch.error) std::rethrow_exception(batch.error);
}

}  // namespace sherlock
