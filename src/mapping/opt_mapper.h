// Sherlock's optimizing mapper (paper Algorithm 2): clusters the DAG's op
// nodes (clustering.h), assigns each cluster to one CIM column, and derives
// the placement plan the code generator consumes. Leaf operands are
// pre-loaded into every cluster column that consumes them (duplication at
// load time is one write; fetching across columns at run time would cost a
// read + shift + write round trip).
#pragma once

#include "ir/graph.h"
#include "isa/target.h"
#include "mapping/clustering.h"
#include "mapping/layout.h"
#include "mapping/partition.h"
#include "mapping/placement.h"

namespace sherlock::mapping {

struct OptMapperOptions {
  /// Eq. 1 constants (see clustering.h).
  double alpha = 1.0;
  double beta = -0.5;
  uint64_t seed = 1;
  /// Post-merge local refinement sweeps (see clustering.h).
  int refinePasses = 2;
  /// Fraction of a column's rows the clusterer may budget. The remainder
  /// absorbs run-time allocations (movement targets, flushed buffers).
  double capacityFraction = 0.85;
  /// Columns of each array the mapper may occupy (0 = every column).
  /// Shrinking the cap forces kernels across arrays — the fuzz harness
  /// uses it to exercise inter-array codegen on small DAGs.
  int maxColumnsPerArray = 0;
};

struct OptMapping {
  PlacementPlan plan;
  ClusteringResult clustering;
  /// Cluster-to-array assignment and its implied transfers/makespans.
  PartitionResult partition;
};

/// Produces the Algorithm 2 placement plan. With a fault policy, clusters
/// are budgeted against the worst usable column and assigned only to
/// columns that can actually hold one (dead columns are skipped). Throws
/// MappingError when the clusters cannot fit the target's columns.
OptMapping mapOptimized(const ir::Graph& g, const isa::TargetSpec& target,
                        const OptMapperOptions& options = {},
                        const FaultPolicy& faults = {});

}  // namespace sherlock::mapping
