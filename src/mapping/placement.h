// Placement plan: the output of a mapping algorithm (naive or optimized),
// consumed by the common code generator. It pins every operation node to
// the column where it will execute (its operands must be brought into that
// column) and lists, for every leaf operand (input/const), the columns it
// must be pre-loaded into.
#pragma once

#include <vector>

#include "ir/graph.h"
#include "mapping/layout.h"

namespace sherlock::mapping {

struct PlacementPlan {
  /// Execution column of each op node, indexed by NodeId. Entries for
  /// non-op nodes are unused.
  std::vector<ColumnRef> opLocation;

  /// For each leaf (Input/Const) node id: columns the value is pre-loaded
  /// into. Entries for non-leaf nodes are empty.
  std::vector<std::vector<ColumnRef>> leafColumns;

  /// Number of distinct columns used across all arrays.
  int usedColumns = 0;

  /// Number of clusters the optimizing mapper formed (0 for naive).
  int clusterCount = 0;
};

}  // namespace sherlock::mapping
