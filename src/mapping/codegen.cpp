#include "mapping/codegen.h"

#include <algorithm>
#include <map>
#include <numeric>
#include <set>

#include "ir/analysis.h"

namespace sherlock::mapping {

using ir::Graph;
using ir::Node;
using ir::NodeId;
using isa::InstKind;
using isa::Instruction;

namespace {

class CodeGenerator {
 public:
  CodeGenerator(const Graph& g, const isa::TargetSpec& target,
                const PlacementPlan& plan, const CodegenOptions& options)
      : g_(g),
        target_(target),
        plan_(plan),
        options_(options),
        layout_(target, options.faults),
        buffer_(static_cast<size_t>(target.numArrays)) {}

  Program run() {
    initState();
    preloadLeaves();
    emitWaves();
    flushOutputs();
    finalize();
    return std::move(prog_);
  }

 private:
  // ---------------------------------------------------------------- state
  void initState() {
    usesLeft_.assign(g_.numNodes(), 0);
    lastLanding_.assign(g_.numNodes(), -1);
    isOutput_.assign(g_.numNodes(), false);
    for (NodeId i = g_.firstId(); i < g_.endId(); ++i)
      for (NodeId o : g_.node(i).operands)
        usesLeft_[static_cast<size_t>(o)]++;
    for (NodeId out : g_.outputs())
      isOutput_[static_cast<size_t>(out)] = true;
  }

  /// A value must not be lost from the row buffer if it still has pending
  /// consumers or is an unmaterialized graph output.
  bool needsFlush(NodeId v) const {
    if (layout_.isPlaced(v)) return false;
    return usesLeft_[static_cast<size_t>(v)] > 0 ||
           isOutput_[static_cast<size_t>(v)];
  }

  /// Column of array `arrayId`'s row buffer currently latching `v`, or -1.
  int findInBuffer(int arrayId, NodeId v) const {
    for (const auto& [col, val] : buffer_[static_cast<size_t>(arrayId)])
      if (val == v) return col;
    return -1;
  }

  // ----------------------------------------------------------- emission
  /// Appends `inst`, folding it into the previous instruction when the
  /// adjacent-merge legality conditions hold.
  void emit(Instruction inst, std::vector<NodeId> hostValues = {}) {
    isa::validateInstruction(inst, target_.numArrays, target_.rows(),
                             target_.cols());
    if (options_.mergeInstructions && tryMerge(inst, hostValues)) {
      prog_.stats.mergedInstructions++;
      return;
    }
    prog_.instructions.push_back(std::move(inst));
    if (!hostValues.empty())
      prog_.hostWriteValues[prog_.instructions.size() - 1] =
          std::move(hostValues);
  }

  /// Attempts to fold `inst` into the last emitted instruction. Only
  /// adjacent pairs on the same array with identical activated rows
  /// (reads) or the same destination row (writes) and disjoint columns are
  /// folded — with no instruction in between, buffer and cell effects of
  /// such pairs commute, so this is always legal.
  bool tryMerge(const Instruction& inst, std::vector<NodeId>& hostValues) {
    if (prog_.instructions.empty()) return false;
    Instruction& prev = prog_.instructions.back();
    if (prev.kind != inst.kind || prev.arrayId != inst.arrayId) return false;
    if (inst.kind == InstKind::Shift || inst.kind == InstKind::Move ||
        inst.kind == InstKind::Xfer)
      return false;
    if (prev.rows != inst.rows) return false;
    bool prevIsCim = !prev.colOps.empty();
    bool instIsCim = !inst.colOps.empty();
    if (prevIsCim != instIsCim) return false;

    size_t prevIdx = prog_.instructions.size() - 1;
    bool prevIsHost = prog_.hostWriteValues.contains(prevIdx);
    bool instIsHost = !hostValues.empty();
    if (prevIsHost != instIsHost) return false;

    // Columns must be disjoint.
    for (int c : inst.columns)
      if (std::binary_search(prev.columns.begin(), prev.columns.end(), c))
        return false;

    // Without per-column op multiplexers all merged ops must be equal.
    if (instIsCim && !target_.perColumnOps) {
      for (ir::OpKind op : inst.colOps)
        if (op != prev.colOps.front()) return false;
    }

    // Fold: rebuild the column-sorted parallel vectors.
    struct Entry {
      int col;
      ir::OpKind op;
      bool chain;
      NodeId host;
    };
    std::vector<Entry> entries;
    auto gather = [&](const Instruction& src, const std::vector<NodeId>* hv) {
      for (size_t i = 0; i < src.columns.size(); ++i) {
        Entry e;
        e.col = src.columns[i];
        e.op = src.colOps.empty() ? ir::OpKind::And : src.colOps[i];
        e.chain = src.chainsBuffer.empty() ? false : src.chainsBuffer[i];
        e.host = hv ? (*hv)[i] : ir::kInvalidNode;
        entries.push_back(e);
      }
    };
    const std::vector<NodeId>* prevHost =
        prevIsHost ? &prog_.hostWriteValues[prevIdx] : nullptr;
    gather(prev, prevHost);
    gather(inst, instIsHost ? &hostValues : nullptr);
    std::sort(entries.begin(), entries.end(),
              [](const Entry& a, const Entry& b) { return a.col < b.col; });

    prev.columns.clear();
    prev.colOps.clear();
    prev.chainsBuffer.clear();
    std::vector<NodeId> mergedHost;
    for (const Entry& e : entries) {
      prev.columns.push_back(e.col);
      if (instIsCim) {
        prev.colOps.push_back(e.op);
        prev.chainsBuffer.push_back(e.chain);
      }
      mergedHost.push_back(e.host);
    }
    if (prevIsHost) prog_.hostWriteValues[prevIdx] = std::move(mergedHost);
    return true;
  }

  // ------------------------------------------------------ buffer upkeep
  /// Frees one cell of a full column by dropping a redundant replica (a
  /// value that also has a cell elsewhere). Returns false if the column
  /// has no replica to drop.
  bool tryDropReplica(ColumnRef where) {
    for (NodeId v : layout_.valuesIn(where)) {
      if (pinned_.contains(v)) continue;
      if (layout_.placementCount(v) >= 2) {
        layout_.releaseCellIn(v, where);
        return true;
      }
    }
    return false;
  }

  /// Writes the buffer bit of (arrayId, col) into a freshly allocated cell
  /// of that column (dropping a replica if the column is full).
  void flushAt(int arrayId, int col) {
    NodeId v = buffer_[static_cast<size_t>(arrayId)].at(col);
    ColumnRef where{arrayId, col};
    if (layout_.freeCells(where) == 0 && !tryDropReplica(where))
      throw MappingError(
          strCat("cannot flush value ", v, ": column ", col, " of array ",
                 arrayId, " is full and holds no droppable replica"));
    CellAddress cell = layout_.allocate(v, where);
    emit(isa::makeWrite(arrayId, {col}, cell.row));
    prog_.stats.spillWrites++;
    noteLanding(v);
    touch(arrayId, col);
  }

  /// Guarantees at least `needed` free cells in `where`, evicting
  /// replicas first and, failing that, relocating single-copy victims to
  /// the emptiest other column of the same array.
  void reserveSpace(ColumnRef where, int needed) {
    while (layout_.freeCells(where) < needed) {
      if (tryDropReplica(where)) continue;
      evictVictim(where);
    }
  }

  /// Moves one non-pinned single-copy value out of `where` to make room.
  void evictVictim(ColumnRef where) {
    NodeId victim = ir::kInvalidNode;
    for (NodeId v : layout_.valuesIn(where)) {
      if (pinned_.contains(v)) continue;
      victim = v;
      break;
    }
    if (victim == ir::kInvalidNode)
      throw MappingError(strCat("column ", where.col, " of array ",
                                where.arrayId,
                                " is full of pinned values; the DAG does "
                                "not fit this target"));
    // Pick the emptiest other column of the same array as the new home.
    int bestCol = -1, bestFree = 0;
    for (int c = 0; c < target_.cols(); ++c) {
      if (c == where.col) continue;
      int freeCells = layout_.freeCells({where.arrayId, c});
      if (freeCells > bestFree) {
        bestFree = freeCells;
        bestCol = c;
      }
    }
    if (bestCol < 0)
      throw MappingError(strCat("array ", where.arrayId,
                                " has no free column to evict into"));
    // Relocate: plain read -> shift -> write, then drop the old cell.
    CellAddress src = *layout_.placementIn(victim, where);
    if (buffer_[static_cast<size_t>(where.arrayId)].count(where.col) &&
        buffer_[static_cast<size_t>(where.arrayId)][where.col] != victim)
      flushIfNeeded(where);
    emit(isa::makePlainRead(where.arrayId, {where.col}, src.row));
    prog_.stats.plainReads++;
    buffer_[static_cast<size_t>(where.arrayId)][where.col] = victim;
    shiftBuffer(where.arrayId, where.col, bestCol, victim);
    CellAddress cell = layout_.allocate(victim, {where.arrayId, bestCol});
    emit(isa::makeWrite(where.arrayId, {bestCol}, cell.row));
    prog_.stats.spillWrites++;
    noteLanding(victim);
    touch(where.arrayId, bestCol);
    layout_.releaseCellIn(victim, where);
  }

  /// Flushes the buffer slot of `where` if losing it would drop a value.
  void flushIfNeeded(ColumnRef where) {
    auto& buf = buffer_[static_cast<size_t>(where.arrayId)];
    auto it = buf.find(where.col);
    if (it == buf.end()) return;
    if (needsFlush(it->second)) flushAt(where.arrayId, where.col);
  }

  /// Rotates array `arrayId`'s row buffer so the bit at `from` lands on
  /// `to`. All other latched values are flushed first (the rotation
  /// invalidates their column alignment) and dropped from tracking.
  void shiftBuffer(int arrayId, int from, int to, NodeId moved) {
    auto& buf = buffer_[static_cast<size_t>(arrayId)];
    for (const auto& [col, val] : buf)
      if (val != moved && needsFlush(val)) flushAt(arrayId, col);

    int n = target_.cols();
    int left = ((to - from) % n + n) % n;
    int right = n - left;
    if (left <= right)
      emit(isa::makeShift(arrayId, isa::ShiftDirection::Left, left));
    else
      emit(isa::makeShift(arrayId, isa::ShiftDirection::Right, right));
    prog_.stats.shifts++;
    buf.clear();
    buf[to] = moved;
  }

  // ----------------------------------------------------------- movement
  /// Makes sure `v` has a cell in column `xc`; returns its row. May emit
  /// plain reads, shifts, inter-array moves and spill writes.
  int ensureInColumn(NodeId v, ColumnRef xc) {
    if (auto cell = layout_.placementIn(v, xc)) return cell->row;

    // The movement below needs a cell for v plus possible flush targets;
    // make room up front (movement may flush one dirty buffer value here).
    reserveSpace(xc, 2);

    // Stage 1: get the bit into some row buffer of the target array.
    int bufCol = findInBuffer(xc.arrayId, v);
    if (bufCol < 0) {
      int srcArray = -1, srcCol = -1;
      for (int a = 0; a < target_.numArrays && srcArray < 0; ++a) {
        if (a == xc.arrayId) continue;
        int c = findInBuffer(a, v);
        if (c >= 0) {
          srcArray = a;
          srcCol = c;
        }
      }
      if (srcArray < 0) {
        // Load from a cell; prefer a copy in the target array.
        auto cells = layout_.placements(v);
        SHERLOCK_ASSERT(!cells.empty(), "value ", v,
                        " demanded but neither buffered nor placed");
        const CellAddress* src = &cells.front();
        for (const CellAddress& c : cells)
          if (c.arrayId == xc.arrayId) {
            src = &c;
            break;
          }
        if (src->arrayId != xc.arrayId) {
          // Cross-array cell source: one cell-to-cell transfer replaces
          // the buffered plain-read + move + write round trip and leaves
          // both row buffers undisturbed. The only destination the
          // transfer engine may not program is the spare-reserved repair
          // region — if the allocation was repaired there, release it
          // and fall through to the buffered path (whose write goes
          // through the normal repair machinery).
          CellAddress dstCell = layout_.allocate(v, xc);
          if (dstCell.row < layout_.mainRowLimit()) {
            emit(isa::makeXfer(src->arrayId, src->col, src->row,
                               xc.arrayId, xc.col, dstCell.row));
            prog_.stats.xfers++;
            noteLanding(v);
            touch(xc.arrayId, xc.col);
            if (!options_.reuseMovedCopies && options_.eagerWriteback)
              tempCopies_.insert({v, xc});
            return dstCell.row;
          }
          layout_.releaseCellIn(v, xc);
        }
        // The plain read clobbers the source column's buffer slot.
        if (buffer_[static_cast<size_t>(src->arrayId)].count(src->col) &&
            buffer_[static_cast<size_t>(src->arrayId)][src->col] != v)
          flushIfNeeded({src->arrayId, src->col});
        emit(isa::makePlainRead(src->arrayId, {src->col}, src->row));
        prog_.stats.plainReads++;
        buffer_[static_cast<size_t>(src->arrayId)][src->col] = v;
        srcArray = src->arrayId;
        srcCol = src->col;
      }
      if (srcArray == xc.arrayId) {
        bufCol = srcCol;
      } else {
        // Bus transfer into the target array's buffer at the target column.
        if (buffer_[static_cast<size_t>(xc.arrayId)].count(xc.col) &&
            buffer_[static_cast<size_t>(xc.arrayId)][xc.col] != v)
          flushIfNeeded(xc);
        emit(isa::makeMove(srcArray, srcCol, xc.arrayId, xc.col));
        prog_.stats.moves++;
        buffer_[static_cast<size_t>(xc.arrayId)][xc.col] = v;
        bufCol = xc.col;
      }
    }

    // Stage 2: align within the array and materialize.
    if (bufCol != xc.col) shiftBuffer(xc.arrayId, bufCol, xc.col, v);
    CellAddress cell = layout_.allocate(v, xc);
    emit(isa::makeWrite(xc.arrayId, {xc.col}, cell.row));
    prog_.stats.spillWrites++;
    noteLanding(v);
    touch(xc.arrayId, xc.col);
    // Scratch-copy tracking only applies to the single-pass (eager) flow;
    // the two-pass flow prepares a whole wave before reading.
    if (!options_.reuseMovedCopies && options_.eagerWriteback)
      tempCopies_.insert({v, xc});
    return cell.row;
  }

  /// Drops the scratch copies a no-reuse (naive) flow created for the op
  /// that was just emitted. Values that already died were fully released.
  void dropTempCopies() {
    for (const auto& [value, where] : tempCopies_)
      if (usesLeft_[static_cast<size_t>(value)] > 0 &&
          layout_.placementIn(value, where))
        layout_.releaseCellIn(value, where);
    tempCopies_.clear();
  }

  /// Producer-side transfer push, deferred by one wave: results with
  /// remote consumers are queued when produced and transferred at the
  /// start of the NEXT wave. The deferral is what makes the movement
  /// free: the producer's flush write has a wave of slack before the
  /// transfer senses it, and the transfer's bus leg plus posted landing
  /// write complete while the new wave computes — consumer reads (a
  /// wave later at the earliest) then find the row ready. This is the
  /// compute/movement overlap the inter-array schedule is built around.
  void pushToRemoteConsumers(NodeId v, ColumnRef xc) {
    for (NodeId u : g_.node(v).users)
      if (plan_.opLocation[static_cast<size_t>(u)].arrayId != xc.arrayId) {
        pendingPushes_.push_back({v, xc});
        return;
      }
  }

  /// Emits the transfers queued by pushToRemoteConsumers during the
  /// previous wave. Entries whose value died, was evicted from the
  /// source column, or whose remote column is full (or repaired into
  /// the XFER-illegal spare region) are dropped — the consumer falls
  /// back to an on-demand fetch.
  void drainTransferPushes() {
    for (const auto& [v, xc] : pendingPushes_) {
      if (usesLeft_[static_cast<size_t>(v)] == 0) continue;
      auto src = layout_.placementIn(v, xc);
      if (!src) continue;
      std::vector<ColumnRef> remote;
      for (NodeId u : g_.node(v).users) {
        ColumnRef uc = plan_.opLocation[static_cast<size_t>(u)];
        if (uc.arrayId == xc.arrayId) continue;
        if (std::find(remote.begin(), remote.end(), uc) == remote.end())
          remote.push_back(uc);
      }
      for (ColumnRef rc : remote) {
        if (layout_.placementIn(v, rc)) continue;
        if (layout_.freeCells(rc) == 0) continue;
        CellAddress dst = layout_.allocate(v, rc);
        if (dst.row >= layout_.mainRowLimit()) {
          layout_.releaseCellIn(v, rc);  // spare region is XFER-illegal
          continue;
        }
        emit(isa::makeXfer(src->arrayId, src->col, src->row, rc.arrayId,
                           rc.col, dst.row));
        prog_.stats.xfers++;
        noteLanding(v);
        touch(rc.arrayId, rc.col);
      }
    }
    pendingPushes_.clear();
  }

  /// True when `v`'s nearest copy is a cell on a different array — no
  /// buffer or cell copy exists in `xc`'s array, so movement crosses the
  /// mesh. ensureInColumn serves that case with a background XFER;
  /// chaining it through a synchronous bus Move would be slower.
  bool crossArrayCellSource(NodeId v, ColumnRef xc) const {
    if (findInBuffer(xc.arrayId, v) >= 0) return false;
    auto cells = layout_.placements(v);
    if (cells.empty()) return false;
    for (const CellAddress& c : cells)
      if (c.arrayId == xc.arrayId) return false;
    return true;
  }

  /// Brings `v` into the row buffer of `xc` WITHOUT materializing a cell —
  /// used to chain a moved operand directly into the consuming CIM read,
  /// avoiding the write + read-after-write stall of a full movement.
  /// The caller guarantees the value is not lost (a cell copy exists
  /// elsewhere, or this is its last use).
  void bringToBuffer(NodeId v, ColumnRef xc) {
    int bufCol = findInBuffer(xc.arrayId, v);
    if (bufCol < 0) {
      // Cross-array buffer source?
      for (int a = 0; a < target_.numArrays; ++a) {
        if (a == xc.arrayId) continue;
        int c = findInBuffer(a, v);
        if (c >= 0) {
          flushIfNeeded(xc);
          emit(isa::makeMove(a, c, xc.arrayId, xc.col));
          prog_.stats.moves++;
          buffer_[static_cast<size_t>(xc.arrayId)][xc.col] = v;
          return;
        }
      }
      // Load from a cell, preferring the target array.
      auto cells = layout_.placements(v);
      SHERLOCK_ASSERT(!cells.empty(), "value ", v,
                      " neither buffered nor placed");
      const CellAddress* src = &cells.front();
      for (const CellAddress& c : cells)
        if (c.arrayId == xc.arrayId) {
          src = &c;
          break;
        }
      if (buffer_[static_cast<size_t>(src->arrayId)].count(src->col) &&
          buffer_[static_cast<size_t>(src->arrayId)][src->col] != v)
        flushIfNeeded({src->arrayId, src->col});
      emit(isa::makePlainRead(src->arrayId, {src->col}, src->row));
      prog_.stats.plainReads++;
      buffer_[static_cast<size_t>(src->arrayId)][src->col] = v;
      if (src->arrayId != xc.arrayId) {
        flushIfNeeded(xc);
        emit(isa::makeMove(src->arrayId, src->col, xc.arrayId, xc.col));
        prog_.stats.moves++;
        buffer_[static_cast<size_t>(xc.arrayId)][xc.col] = v;
        return;
      }
      bufCol = src->col;
    }
    if (bufCol != xc.col) shiftBuffer(xc.arrayId, bufCol, xc.col, v);
  }

  // ------------------------------------------------------------- phases
  void preloadLeaves() {
    for (NodeId i = g_.firstId(); i < g_.endId(); ++i) {
      const Node& n = g_.node(i);
      if (n.isOp()) continue;
      for (ColumnRef where : plan_.leafColumns[static_cast<size_t>(i)]) {
        CellAddress cell = layout_.allocate(i, where);
        Instruction w = isa::makeWrite(where.arrayId, {where.col}, cell.row);
        emit(std::move(w), {i});
        prog_.stats.hostWrites++;
        noteLanding(i);
        touch(where.arrayId, where.col);
      }
    }
  }

  void emitWaves() {
    // Both priority schemes group ops into dependence-free waves: b-level
    // waves run from the highest priority down (deepest remaining work
    // first), t-level (ASAP) waves in increasing depth. Either way an
    // op's producers always sit in earlier-emitted waves.
    bool useTLevel =
        options_.waveOrder == CodegenOptions::WaveOrder::TLevel;
    auto levels = useTLevel ? ir::tLevels(g_) : ir::bLevels(g_);
    int maxLevel = 0;
    for (NodeId op : g_.opNodes())
      maxLevel = std::max(maxLevel, levels[static_cast<size_t>(op)]);

    std::vector<std::vector<NodeId>> waves(
        static_cast<size_t>(maxLevel) + 1);
    for (NodeId op : g_.opNodes())
      waves[static_cast<size_t>(levels[static_cast<size_t>(op)])].push_back(
          op);

    for (int step = 0; step < maxLevel; ++step) {
      int level = useTLevel ? step + 1 : maxLevel - step;
      auto& wave = waves[static_cast<size_t>(level)];
      std::sort(wave.begin(), wave.end(), [&](NodeId a, NodeId b) {
        const ColumnRef& ca = plan_.opLocation[static_cast<size_t>(a)];
        const ColumnRef& cb = plan_.opLocation[static_cast<size_t>(b)];
        if (ca != cb) return ca < cb;
        return a < b;
      });
      if (options_.eagerWriteback) {
        // Naive flow: straightforward per-node emission (Algorithm 1).
        for (NodeId op : wave) emitOp(op);
      } else {
        // Optimized flow: transfers queued by the previous wave go out
        // first (their landing writes ride under this wave's compute),
        // then the wave's full movements (cell materializations), then
        // the CIM reads. The movement writes gain a wave's worth of
        // slack before any read activates their rows, so the
        // posted-write model can hide them.
        drainTransferPushes();
        for (NodeId op : wave) prepareOperands(op);
        // Read pass, oldest operands first: an op whose operand cell was
        // written or transferred moments ago (by the drain or the
        // movement pass above) goes last, so the posted landing write
        // completes under the other ops' compute instead of stalling the
        // activating read.
        std::stable_sort(wave.begin(), wave.end(), [&](NodeId a, NodeId b) {
          return operandFreshness(a) < operandFreshness(b);
        });
        for (NodeId op : wave) emitOp(op);
      }
    }
  }

  /// Wave pass 1 (optimized flow): materializes every operand that will be
  /// consumed from a cell, leaving at most one non-resident operand per op
  /// for row-buffer chaining in pass 2.
  void prepareOperands(NodeId v) {
    const Node& n = g_.node(v);
    ColumnRef xc = plan_.opLocation[static_cast<size_t>(v)];
    pinned_.clear();
    pinned_.insert(v);
    for (NodeId o : n.operands) pinned_.insert(o);

    std::vector<NodeId> unique;
    for (NodeId o : n.operands)
      if (std::find(unique.begin(), unique.end(), o) == unique.end())
        unique.push_back(o);

    // Skip one chainable non-resident operand (pass 2 brings it into the
    // buffer right before the read); materialize the rest.
    NodeId skipped = ir::kInvalidNode;
    if (target_.bufferChaining) {
      for (NodeId o : unique) {
        if (layout_.placementIn(o, xc)) continue;
        if (std::count(n.operands.begin(), n.operands.end(), o) != 1)
          continue;
        if (crossArrayCellSource(o, xc)) continue;
        bool lastUse = usesLeft_[static_cast<size_t>(o)] == 1 &&
                       !isOutput_[static_cast<size_t>(o)];
        if (layout_.isPlaced(o) || lastUse) skipped = o;
      }
    }
    for (NodeId o : unique)
      if (o != skipped) ensureInColumn(o, xc);
  }

  void emitOp(NodeId v) {
    const Node& n = g_.node(v);
    ColumnRef xc = plan_.opLocation[static_cast<size_t>(v)];

    // Pin the op's values against eviction while it is being emitted.
    pinned_.clear();
    pinned_.insert(v);
    for (NodeId o : n.operands) pinned_.insert(o);

    // Deduplicate operand occurrences; a cell's row is activated once.
    // For Xor-based ops deduplication would change semantics — such DAGs
    // must be folded first (see transforms::canonicalize).
    std::vector<NodeId> unique;
    for (NodeId o : n.operands)
      if (std::find(unique.begin(), unique.end(), o) == unique.end())
        unique.push_back(o);
    if (unique.size() != n.operands.size()) {
      bool xorBase = n.op == ir::OpKind::Xor || n.op == ir::OpKind::Xnor;
      checkArg(!xorBase,
               strCat("op node ", v,
                      ": XOR with duplicate operands cannot be mapped; "
                      "run foldConstants/canonicalize first"));
    }

    // Chaining decision: one operand may be consumed from the execution
    // column's row buffer instead of a cell. Preferred candidate: an
    // operand that is NOT resident in this column anyway — its movement
    // then ends in the buffer (read + shift + chain), skipping the write
    // and the read-after-write stall of a full materialization. Fallback:
    // the bit already latched in the buffer. Either way, consuming the
    // bit must not lose the value (a cell copy exists, or last use).
    NodeId chainVal = ir::kInvalidNode;
    bool chainViaMove = false;
    if (target_.bufferChaining && !options_.eagerWriteback) {
      auto safeToConsume = [&](NodeId b) {
        bool lastUse = usesLeft_[static_cast<size_t>(b)] == 1 &&
                       !isOutput_[static_cast<size_t>(b)];
        return layout_.isPlaced(b) || lastUse;
      };
      // Moved-operand candidate (must be the only occurrence). Operands
      // whose nearest copy is a cell on another array are better served
      // by ensureInColumn's background XFER than by a chain move.
      for (NodeId o : unique) {
        if (layout_.placementIn(o, xc)) continue;
        if (std::count(n.operands.begin(), n.operands.end(), o) != 1)
          continue;
        if (crossArrayCellSource(o, xc)) continue;
        if (safeToConsume(o)) {
          chainVal = o;
          chainViaMove = true;
        }
      }
      if (chainVal == ir::kInvalidNode) {
        // Buffer-resident candidate; only valid if no other operand needs
        // movement (movement shifts would rotate the bit away).
        auto& buf = buffer_[static_cast<size_t>(xc.arrayId)];
        auto it = buf.find(xc.col);
        if (it != buf.end()) {
          NodeId b = it->second;
          long occurrences =
              std::count(n.operands.begin(), n.operands.end(), b);
          bool othersResident = true;
          for (NodeId o : unique)
            if (o != b && !layout_.placementIn(o, xc))
              othersResident = false;
          if (occurrences == 1 && safeToConsume(b) && othersResident &&
              std::find(unique.begin(), unique.end(), b) != unique.end())
            chainVal = b;
        }
      }
    }

    // Materialize the cell operands (movement happens here), then bring a
    // moved chain operand into the buffer last (its shift would disturb
    // nothing any more).
    std::vector<int> rows;
    for (NodeId o : unique) {
      if (o == chainVal) continue;
      rows.push_back(ensureInColumn(o, xc));
    }
    if (chainViaMove) bringToBuffer(chainVal, xc);
    std::sort(rows.begin(), rows.end());
    SHERLOCK_ASSERT(std::adjacent_find(rows.begin(), rows.end()) ==
                        rows.end(),
                    "duplicate operand rows for op ", v);
    SHERLOCK_ASSERT(static_cast<int>(rows.size()) <= target_.mraLimit(),
                    "op ", v, " activates ", rows.size(),
                    " rows, exceeding the MRA limit ", target_.mraLimit());

    // The CIM read overwrites the execution column's buffer slot.
    if (chainVal == ir::kInvalidNode) flushIfNeeded(xc);

    // Binary ops whose operands collapsed to a single bit (duplicate
    // operands after upstream rewrites) degenerate to Copy/Not.
    ir::OpKind opToEmit = n.op;
    int operandBits = static_cast<int>(rows.size()) +
                      (chainVal != ir::kInvalidNode ? 1 : 0);
    if (operandBits == 1 && !ir::isUnary(n.op)) {
      switch (n.op) {
        case ir::OpKind::And:
        case ir::OpKind::Or:
          opToEmit = ir::OpKind::Copy;
          break;
        case ir::OpKind::Nand:
        case ir::OpKind::Nor:
          opToEmit = ir::OpKind::Not;
          break;
        default:
          throw MappingError(strCat(
              "op node ", v, ": XOR collapsed to one operand; run "
              "foldConstants/canonicalize first"));
      }
    }

    emit(isa::makeCimRead(xc.arrayId, {xc.col}, std::move(rows), {opToEmit},
                          {chainVal != ir::kInvalidNode}));
    prog_.stats.cimReads++;
    if (chainVal != ir::kInvalidNode) prog_.stats.chainedOperands++;
    buffer_[static_cast<size_t>(xc.arrayId)][xc.col] = v;
    touch(xc.arrayId, xc.col);

    if (options_.eagerWriteback && needsFlush(v)) {
      flushAt(xc.arrayId, xc.col);
    } else if (needsFlush(v)) {
      // Lazy flow, but the result has consumers on other arrays: flush it
      // to a cell now. The posted write completes during the rest of the
      // wave, and remote consumers then fetch it with a background
      // cell-to-cell XFER instead of a remote-buffer Move that would
      // serialize on the shared bus.
      for (NodeId u : n.users)
        if (plan_.opLocation[static_cast<size_t>(u)].arrayId !=
            xc.arrayId) {
          flushAt(xc.arrayId, xc.col);
          break;
        }
    }
    if (!options_.eagerWriteback) pushToRemoteConsumers(v, xc);

    // Consume operands; dead values release their cells for reuse.
    for (NodeId o : n.operands) {
      int& left = usesLeft_[static_cast<size_t>(o)];
      SHERLOCK_ASSERT(left > 0, "operand ", o, " over-consumed");
      --left;
      if (left == 0 && !isOutput_[static_cast<size_t>(o)])
        layout_.release(o);
    }
    if (!tempCopies_.empty()) dropTempCopies();
  }

  void flushOutputs() {
    for (NodeId out : g_.outputs()) {
      if (!layout_.isPlaced(out)) {
        bool flushed = false;
        for (int a = 0; a < target_.numArrays && !flushed; ++a) {
          int c = findInBuffer(a, out);
          if (c >= 0) {
            flushAt(a, c);
            flushed = true;
          }
        }
        SHERLOCK_ASSERT(flushed, "output ", out,
                        " neither placed nor buffered at program end");
      }
      prog_.outputCells[out] = *layout_.anyPlacement(out);
    }
  }

  void finalize() {
    prog_.usedColumns = static_cast<int>(touched_.size());
    prog_.peakLiveCells = layout_.peakLiveCells();
    prog_.stats.spareRowAllocations = layout_.spareAllocations();
  }

  void touch(int arrayId, int col) {
    touched_.insert(arrayId * target_.cols() + col);
  }

  /// Records that `v`'s most recent cell-landing instruction (posted
  /// write or transfer) is the one just emitted. Consumers use this to
  /// order each wave's reads oldest-operand-first, giving fresh rows
  /// the most compute slack before their activating read.
  void noteLanding(NodeId v) {
    lastLanding_[static_cast<size_t>(v)] =
        static_cast<long>(prog_.instructions.size()) - 1;
  }

  /// Emission index of `op`'s most recently landed operand (-1 when all
  /// operands have been resident since before tracking).
  long operandFreshness(NodeId op) const {
    long f = -1;
    for (NodeId o : g_.node(op).operands)
      f = std::max(f, lastLanding_[static_cast<size_t>(o)]);
    return f;
  }

  const Graph& g_;
  const isa::TargetSpec& target_;
  const PlacementPlan& plan_;
  CodegenOptions options_;

  Layout layout_;
  Program prog_;
  std::vector<int> usesLeft_;
  std::vector<bool> isOutput_;
  /// Per array: column -> value currently latched in the row buffer.
  std::vector<std::map<int, NodeId>> buffer_;
  std::set<int> touched_;
  /// Values of the op being emitted; exempt from eviction.
  std::set<NodeId> pinned_;
  /// Movement scratch copies of the op being emitted (no-reuse flow).
  std::set<std::pair<NodeId, ColumnRef>> tempCopies_;
  /// Results with remote consumers, queued for the next wave's
  /// transfer-push drain (lazy flow only).
  std::vector<std::pair<NodeId, ColumnRef>> pendingPushes_;
  /// Per value: emission index of its latest cell-landing instruction.
  std::vector<long> lastLanding_;
};

}  // namespace

Program generateCode(const Graph& g, const isa::TargetSpec& target,
                     const PlacementPlan& plan,
                     const CodegenOptions& options) {
  checkArg(plan.opLocation.size() == g.numNodes(),
           "placement plan does not match the graph");
  return CodeGenerator(g, target, plan, options).run();
}

}  // namespace sherlock::mapping
