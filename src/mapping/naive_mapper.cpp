#include "mapping/naive_mapper.h"

#include "ir/analysis.h"
#include "mapping/layout.h"

namespace sherlock::mapping {

PlacementPlan mapNaive(const ir::Graph& g, const isa::TargetSpec& target,
                       const FaultPolicy& faults) {
  PlacementPlan plan;
  plan.opLocation.resize(g.numNodes());
  plan.leafColumns.resize(g.numNodes());

  const int m = target.rows();
  const int totalColumns = target.cols() * target.numArrays;

  int cursor = 0;  // global column index = arrayId * cols + col
  int index = 0;   // cells reserved in the current column

  auto columnOf = [&](int globalCol) {
    return ColumnRef{globalCol / target.cols(), globalCol % target.cols()};
  };
  // Per-column packing budget: with faults, only usable cells below the
  // spare-row boundary count (the spare region is the repair reserve).
  auto capacityOf = [&](int globalCol) {
    ColumnRef c = columnOf(globalCol);
    return usablePlanningCells(target, faults, c.arrayId, c.col);
  };
  int capacity = capacityOf(0);
  auto reserveCell = [&] {
    while (index >= capacity) {  // skips fully-faulty columns too
      ++cursor;
      index = 0;
      if (cursor >= totalColumns)
        throw MappingError(
            strCat("naive mapping needs more than ", totalColumns,
                   " columns (", target.numArrays, " arrays of ",
                   target.cols(), "x", m, ")",
                   faults.active() ? strCat("; fault policy reserves ",
                                            faults.spareRows,
                                            " spare rows per column")
                                   : ""));
      capacity = capacityOf(cursor);
    }
    ++index;
    return columnOf(cursor);
  };

  std::vector<bool> mapped(g.numNodes(), false);
  for (ir::NodeId node : ir::bLevelSortedOps(g)) {
    // Map the operands that are not in the array yet (leaf operands seen
    // for the first time; op operands were mapped when their producer was
    // processed — producers always have higher b-level).
    for (ir::NodeId o : g.node(node).operands) {
      if (mapped[static_cast<size_t>(o)] || g.node(o).isOp()) continue;
      plan.leafColumns[static_cast<size_t>(o)].push_back(reserveCell());
      mapped[static_cast<size_t>(o)] = true;
    }
    // Reserve the result slot; the op executes in that column.
    plan.opLocation[static_cast<size_t>(node)] = reserveCell();
    mapped[static_cast<size_t>(node)] = true;
  }

  // Leaves that are graph outputs but never consumed still need a home.
  for (ir::NodeId out : g.outputs()) {
    if (g.node(out).isOp() || mapped[static_cast<size_t>(out)]) continue;
    plan.leafColumns[static_cast<size_t>(out)].push_back(reserveCell());
    mapped[static_cast<size_t>(out)] = true;
  }

  plan.usedColumns = cursor + (index > 0 ? 1 : 0);
  plan.clusterCount = 0;
  return plan;
}

}  // namespace sherlock::mapping
