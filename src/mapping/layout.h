// Memory layout: the assignment of DAG values (operands and intermediate
// results) to cells of the CIM arrays. Tracks per-column occupancy,
// supports value replication (the same value materialized in several
// columns) and liveness-based cell recycling (a dead value's cells return
// to the free pool so long programs fit small arrays).
#pragma once

#include <map>
#include <optional>
#include <set>
#include <vector>

#include "device/faultmap.h"
#include "ir/graph.h"
#include "isa/target.h"

namespace sherlock::mapping {

/// Fault-aware placement policy. With a fault map, placement never hands
/// out stuck or weak cells (weak cells would silently inflate P_app, so
/// they are treated as unusable at placement time too). `spareRows`
/// reserves the top rows of every column as a repair region: normal
/// allocation fills the main region only, and a column whose main region
/// is exhausted — typically because faults punched holes in it — repairs
/// the collision by remapping the value into a spare row of the same
/// column. Repairs are counted so tooling can report spare utilization.
struct FaultPolicy {
  const device::FaultMap* map = nullptr;
  int spareRows = 0;

  bool active() const { return map != nullptr || spareRows > 0; }
};

/// Physical location of one value bit-slice.
struct CellAddress {
  int arrayId = 0;
  int col = 0;
  int row = 0;

  bool operator==(const CellAddress&) const = default;
  auto operator<=>(const CellAddress&) const = default;
};

/// Column coordinate (array + column) without a row.
struct ColumnRef {
  int arrayId = 0;
  int col = 0;

  bool operator==(const ColumnRef&) const = default;
  auto operator<=>(const ColumnRef&) const = default;
};

/// Cells of a column that planning may count on: usable (non-faulty)
/// cells below the spare-row boundary. Used by the mappers to size
/// per-column packing budgets consistently with Layout's free lists.
int usablePlanningCells(const isa::TargetSpec& target,
                        const FaultPolicy& faults, int arrayId, int col);

class Layout {
 public:
  explicit Layout(const isa::TargetSpec& target,
                  const FaultPolicy& faults = {});

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  int numArrays() const { return numArrays_; }

  /// Allocates a free cell in the given column for `value` and records
  /// the placement. The main region is preferred; when faults exhausted
  /// it the allocation is repaired into a spare row. Throws MappingError
  /// when both regions are full.
  CellAddress allocate(ir::NodeId value, ColumnRef where);

  /// Repair allocations served from the spare-row region so far.
  long spareAllocations() const { return spareAllocations_; }

  /// Spare rows reserved per column (clamped to the array height).
  int spareRows() const { return spareRows_; }

  /// First spare-region row: rows [0, mainRowLimit()) form the main
  /// region, [mainRowLimit(), rows()) the repair region. The code
  /// generator consults this before emitting an XFER — the transfer
  /// engine may not program spare-reserved cells (verifier
  /// TransferLegality), so a repaired destination falls back to the
  /// buffered move path.
  int mainRowLimit() const { return mainRowLimit_; }

  /// Free cells remaining in a column.
  int freeCells(ColumnRef where) const;

  /// True if `value` is materialized anywhere.
  bool isPlaced(ir::NodeId value) const;

  /// Placement of `value` in a specific column, if any.
  std::optional<CellAddress> placementIn(ir::NodeId value,
                                         ColumnRef where) const;

  /// Any placement of `value` (the first recorded one), if any.
  std::optional<CellAddress> anyPlacement(ir::NodeId value) const;

  /// All placements of `value`.
  std::vector<CellAddress> placements(ir::NodeId value) const;

  /// Releases every cell held by `value` (the value died).
  void release(ir::NodeId value);

  /// Releases only the replica of `value` in the given column (the value
  /// must be placed there). Used by the code generator to evict redundant
  /// copies from a full column.
  void releaseCellIn(ir::NodeId value, ColumnRef where);

  /// Values currently holding at least one cell in the given column.
  std::vector<ir::NodeId> valuesIn(ColumnRef where) const;

  /// Number of cells `value` currently holds.
  int placementCount(ir::NodeId value) const;

  /// Total cells currently in use.
  int liveCells() const { return liveCells_; }

  /// Highest count of simultaneously live cells seen so far.
  int peakLiveCells() const { return peakLiveCells_; }

 private:
  int columnIndex(ColumnRef where) const;

  int rows_;
  int cols_;
  int numArrays_;
  FaultPolicy faults_;
  int spareRows_ = 0;      // clamped copy of faults_.spareRows
  int mainRowLimit_ = 0;   // rows [0, mainRowLimit_) form the main region
  long spareAllocations_ = 0;

  void freeCell(const CellAddress& cell);

  // Per column: free row indices (kept descending so the lowest row is
  // handed out first). Rows at or above mainRowLimit_ live in spareFree_
  // instead; faulty rows appear in neither list.
  std::vector<std::vector<int>> freeRows_;
  std::vector<std::vector<int>> spareFree_;
  // value -> its placements.
  std::map<ir::NodeId, std::vector<CellAddress>> placements_;
  // column index -> values resident there (eviction support).
  std::vector<std::set<ir::NodeId>> residents_;
  int liveCells_ = 0;
  int peakLiveCells_ = 0;
};

}  // namespace sherlock::mapping
