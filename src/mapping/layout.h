// Memory layout: the assignment of DAG values (operands and intermediate
// results) to cells of the CIM arrays. Tracks per-column occupancy,
// supports value replication (the same value materialized in several
// columns) and liveness-based cell recycling (a dead value's cells return
// to the free pool so long programs fit small arrays).
#pragma once

#include <map>
#include <optional>
#include <set>
#include <vector>

#include "ir/graph.h"
#include "isa/target.h"

namespace sherlock::mapping {

/// Physical location of one value bit-slice.
struct CellAddress {
  int arrayId = 0;
  int col = 0;
  int row = 0;

  bool operator==(const CellAddress&) const = default;
  auto operator<=>(const CellAddress&) const = default;
};

/// Column coordinate (array + column) without a row.
struct ColumnRef {
  int arrayId = 0;
  int col = 0;

  bool operator==(const ColumnRef&) const = default;
  auto operator<=>(const ColumnRef&) const = default;
};

class Layout {
 public:
  explicit Layout(const isa::TargetSpec& target);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  int numArrays() const { return numArrays_; }

  /// Allocates a free cell in the given column for `value` and records the
  /// placement. Throws MappingError when the column is full.
  CellAddress allocate(ir::NodeId value, ColumnRef where);

  /// Free cells remaining in a column.
  int freeCells(ColumnRef where) const;

  /// True if `value` is materialized anywhere.
  bool isPlaced(ir::NodeId value) const;

  /// Placement of `value` in a specific column, if any.
  std::optional<CellAddress> placementIn(ir::NodeId value,
                                         ColumnRef where) const;

  /// Any placement of `value` (the first recorded one), if any.
  std::optional<CellAddress> anyPlacement(ir::NodeId value) const;

  /// All placements of `value`.
  std::vector<CellAddress> placements(ir::NodeId value) const;

  /// Releases every cell held by `value` (the value died).
  void release(ir::NodeId value);

  /// Releases only the replica of `value` in the given column (the value
  /// must be placed there). Used by the code generator to evict redundant
  /// copies from a full column.
  void releaseCellIn(ir::NodeId value, ColumnRef where);

  /// Values currently holding at least one cell in the given column.
  std::vector<ir::NodeId> valuesIn(ColumnRef where) const;

  /// Number of cells `value` currently holds.
  int placementCount(ir::NodeId value) const;

  /// Total cells currently in use.
  int liveCells() const { return liveCells_; }

  /// Highest count of simultaneously live cells seen so far.
  int peakLiveCells() const { return peakLiveCells_; }

 private:
  int columnIndex(ColumnRef where) const;

  int rows_;
  int cols_;
  int numArrays_;

  void freeCell(const CellAddress& cell);

  // Per column: free row indices (kept descending so the lowest row is
  // handed out first).
  std::vector<std::vector<int>> freeRows_;
  // value -> its placements.
  std::map<ir::NodeId, std::vector<CellAddress>> placements_;
  // column index -> values resident there (eviction support).
  std::vector<std::set<ir::NodeId>> residents_;
  int liveCells_ = 0;
  int peakLiveCells_ = 0;
};

}  // namespace sherlock::mapping
