// One-call compilation facade: DAG + target -> CIM program, selecting the
// mapping strategy. This is the entry point examples and benches use; the
// individual stages (mapNaive / mapOptimized / generateCode) remain public
// for finer control.
#pragma once

#include <optional>

#include "ir/graph.h"
#include "isa/target.h"
#include "mapping/codegen.h"
#include "mapping/naive_mapper.h"
#include "mapping/opt_mapper.h"
#include "mapping/program.h"
#include "support/trace.h"
#include "verify/verifier.h"

namespace sherlock::mapping {

enum class Strategy { Naive, Optimized };

struct CompileOptions {
  Strategy strategy = Strategy::Optimized;
  /// Cross-cluster instruction merging. Defaults to the paper's pairing:
  /// enabled for the optimized mapper, disabled for the naive baseline.
  /// Set explicitly to override (ablation A2).
  std::optional<bool> mergeInstructions;
  /// Eager per-op result write-back (Algorithm 1's straightforward
  /// codegen). Defaults to the paper's pairing: naive eager, optimized
  /// lazy. Set explicitly to override (ablation).
  std::optional<bool> eagerWriteback;
  /// Scheduler wave ordering (ablation; default b-level).
  CodegenOptions::WaveOrder waveOrder = CodegenOptions::WaveOrder::BLevel;
  /// Statically verify the generated program (src/verify) before
  /// returning it. Defaults to verify::verifyCompiledByDefault():
  /// SHERLOCK_VERIFY env override, else on in debug / off in release.
  /// The test suite runs with SHERLOCK_VERIFY=1, so every compilation
  /// under ctest is verified.
  std::optional<bool> verify;
  /// Eq. 1 clustering constants (optimized strategy only).
  OptMapperOptions optimizer;
  /// Fault-aware placement: consult the map, avoid faulty cells, repair
  /// collisions into spare rows (see mapping/layout.h). The verifier run
  /// (when enabled) proves the program touches no stuck cell.
  FaultPolicy faults;
};

struct CompileResult {
  Program program;
  PlacementPlan plan;
  /// Clustering details (optimized strategy only).
  ClusteringResult clustering;
  /// Cluster-to-array sharding and its schedule estimates (optimized
  /// strategy only; singleArray=true whenever the kernel fit one array).
  PartitionResult partition;
};

inline CompileResult compile(const ir::Graph& g,
                             const isa::TargetSpec& target,
                             const CompileOptions& options = {}) {
  CompileResult result;
  bool optimized = options.strategy == Strategy::Optimized;
  {
    trace::Span span("mapping", "map");
    if (optimized) {
      OptMapping m = mapOptimized(g, target, options.optimizer,
                                  options.faults);
      result.plan = std::move(m.plan);
      result.clustering = std::move(m.clustering);
      result.partition = std::move(m.partition);
    } else {
      result.plan = mapNaive(g, target, options.faults);
    }
  }
  CodegenOptions cg;
  cg.mergeInstructions = options.mergeInstructions.value_or(optimized);
  cg.eagerWriteback = options.eagerWriteback.value_or(!optimized);
  cg.reuseMovedCopies = optimized;
  cg.waveOrder = options.waveOrder;
  cg.faults = options.faults;
  {
    trace::Span span("mapping", "codegen");
    result.program = generateCode(g, target, result.plan, cg);
  }
  if (options.verify.value_or(verify::verifyCompiledByDefault())) {
    trace::Span span("mapping", "verify");
    verify::VerifyOptions vopts;
    vopts.faultMap = options.faults.map;
    vopts.spareRows = options.faults.spareRows;
    verify::checkProgram(g, target, result.program, vopts);
  }
  return result;
}

}  // namespace sherlock::mapping
