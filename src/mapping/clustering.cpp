#include "mapping/clustering.h"

#include <algorithm>
#include <limits>
#include <map>

#include "ir/analysis.h"

namespace sherlock::mapping {

using ir::Graph;
using ir::NodeId;

namespace {

/// Cells the cluster would occupy if `node` joined: current cells plus the
/// node's operands and its own result.
int cellsIfAdded(const Cluster& c, const Graph& g, NodeId node) {
  int extra = c.cells.contains(node) ? 0 : 1;
  for (NodeId o : g.node(node).operands)
    if (!c.cells.contains(o)) ++extra;
  // Operand duplicates in the node's list are rare; the set-based count
  // above already ignores them.
  return c.cellCount() + extra;
}

void addToCluster(Cluster& c, const Graph& g, NodeId node,
                  std::vector<int>& clusterOf, int clusterIdx) {
  c.nodes.push_back(node);
  c.cells.insert(node);
  for (NodeId o : g.node(node).operands) c.cells.insert(o);
  clusterOf[static_cast<size_t>(node)] = clusterIdx;
}

}  // namespace

long countCrossClusterEdges(const Graph& g,
                            const std::vector<int>& clusterOf) {
  long edges = 0;
  for (NodeId i = g.firstId(); i < g.endId(); ++i) {
    const ir::Node& n = g.node(i);
    if (!n.isOp()) continue;
    for (NodeId o : n.operands) {
      if (!g.node(o).isOp()) continue;
      if (clusterOf[static_cast<size_t>(o)] !=
          clusterOf[static_cast<size_t>(i)])
        ++edges;
    }
  }
  return edges;
}

ClusteringResult findClusters(const Graph& g,
                              const ClusteringOptions& options) {
  checkArg(options.columnCapacity > 0, "columnCapacity must be positive");
  auto levels = ir::bLevels(g);
  Rng rng(options.seed);

  ClusteringResult result;
  result.clusterOf.assign(g.numNodes(), -1);
  auto& clusters = result.clusters;
  auto& clusterOf = result.clusterOf;

  auto fits = [&](const Cluster& c, NodeId node) {
    return cellsIfAdded(c, g, node) <= options.columnCapacity;
  };
  auto newCluster = [&](NodeId node) {
    clusters.emplace_back();
    addToCluster(clusters.back(), g, node, clusterOf,
                 static_cast<int>(clusters.size()) - 1);
  };

  for (NodeId node : ir::bLevelSortedOps(g)) {
    // Distinct clusters of the already-assigned op predecessors.
    std::vector<int> predClusters;
    std::vector<NodeId> opPreds;
    for (NodeId o : g.node(node).operands) {
      if (!g.node(o).isOp()) continue;
      opPreds.push_back(o);
      int c = clusterOf[static_cast<size_t>(o)];
      SHERLOCK_ASSERT(c >= 0, "predecessor ", o, " not yet clustered");
      if (std::find(predClusters.begin(), predClusters.end(), c) ==
          predClusters.end())
        predClusters.push_back(c);
    }

    if (predClusters.empty()) {
      // No predecessors: open a new cluster (Algorithm 2 line 23).
      newCluster(node);
      continue;
    }

    if (predClusters.size() == 1) {
      // Case 1: single predecessor cluster; join it if it still fits.
      Cluster& c = clusters[static_cast<size_t>(predClusters[0])];
      if (fits(c, node))
        addToCluster(c, g, node, clusterOf, predClusters[0]);
      else
        newCluster(node);
      continue;
    }

    // Case 2: clusters with identical properties (same size, identical
    // predecessor priorities) are merged wholesale.
    bool sameSize = true;
    for (int ci : predClusters)
      sameSize &= clusters[static_cast<size_t>(ci)].size() ==
                  clusters[static_cast<size_t>(predClusters[0])].size();
    bool samePriorities = true;
    for (NodeId q : opPreds)
      samePriorities &= levels[static_cast<size_t>(q)] ==
                        levels[static_cast<size_t>(opPreds[0])];
    if (sameSize && samePriorities) {
      // Check capacity of the union plus the node.
      std::set<NodeId> unionCells;
      for (int ci : predClusters) {
        const auto& cc = clusters[static_cast<size_t>(ci)].cells;
        unionCells.insert(cc.begin(), cc.end());
      }
      unionCells.insert(node);
      for (NodeId o : g.node(node).operands) unionCells.insert(o);
      if (static_cast<int>(unionCells.size()) <= options.columnCapacity) {
        // Merge everything into the first predecessor's cluster.
        int dst = predClusters[0];
        Cluster& cd = clusters[static_cast<size_t>(dst)];
        for (size_t k = 1; k < predClusters.size(); ++k) {
          Cluster& cs = clusters[static_cast<size_t>(predClusters[k])];
          for (NodeId nMoved : cs.nodes) {
            cd.nodes.push_back(nMoved);
            clusterOf[static_cast<size_t>(nMoved)] = dst;
          }
          cd.cells.insert(cs.cells.begin(), cs.cells.end());
          cs.nodes.clear();
          cs.cells.clear();
        }
        addToCluster(cd, g, node, clusterOf, dst);
      } else {
        // Random assignment among the predecessors' clusters that fit.
        std::vector<int> feasible;
        for (int ci : predClusters)
          if (fits(clusters[static_cast<size_t>(ci)], node))
            feasible.push_back(ci);
        if (feasible.empty()) {
          newCluster(node);
        } else {
          int pick = feasible[static_cast<size_t>(
              rng.below(feasible.size()))];
          addToCluster(clusters[static_cast<size_t>(pick)], g, node,
                       clusterOf, pick);
        }
      }
      continue;
    }

    // Cases 3-5: Eq. 1 scoring over the predecessors' clusters.
    int best = -1;
    double bestScore = -std::numeric_limits<double>::infinity();
    for (int ci : predClusters) {
      Cluster& c = clusters[static_cast<size_t>(ci)];
      if (!fits(c, node)) continue;
      double affinity = 0.0;
      for (NodeId q : opPreds) {
        if (clusterOf[static_cast<size_t>(q)] != ci) continue;
        int gap = levels[static_cast<size_t>(q)] -
                  levels[static_cast<size_t>(node)];
        SHERLOCK_ASSERT(gap >= 1, "predecessor priority must exceed node's");
        affinity += 1.0 / static_cast<double>(gap);
      }
      double score = options.beta * c.size() + options.alpha * affinity;
      if (score > bestScore) {
        bestScore = score;
        best = ci;
      }
    }
    if (best < 0)
      newCluster(node);
    else
      addToCluster(clusters[static_cast<size_t>(best)], g, node, clusterOf,
                   best);
  }

  // Drop clusters emptied by Case 2 merges and renumber.
  {
    std::vector<Cluster> compact;
    std::vector<int> remap(clusters.size(), -1);
    for (size_t i = 0; i < clusters.size(); ++i) {
      if (clusters[i].nodes.empty()) continue;
      remap[i] = static_cast<int>(compact.size());
      compact.push_back(std::move(clusters[i]));
    }
    for (auto& c : clusterOf)
      if (c >= 0) c = remap[static_cast<size_t>(c)];
    clusters = std::move(compact);
  }

  mergeClusters(g, options, clusters, clusterOf);
  refineClusters(g, options, clusters, clusterOf);

  result.crossClusterEdges = countCrossClusterEdges(g, clusterOf);
  return result;
}

void refineClusters(const Graph& g, const ClusteringOptions& options,
                    std::vector<Cluster>& clusters,
                    std::vector<int>& clusterOf) {
  if (options.refinePasses <= 0 || clusters.size() < 2) return;

  // Reference counts per cluster: how many member nodes contribute each
  // cell value (producer membership + operand occurrences). A cluster's
  // cell set is the keys of its map.
  std::vector<std::map<NodeId, int>> refs(clusters.size());
  for (size_t ci = 0; ci < clusters.size(); ++ci)
    for (NodeId v : clusters[ci].nodes) {
      refs[ci][v]++;
      for (NodeId o : g.node(v).operands) refs[ci][o]++;
    }

  auto addNode = [&](int c, NodeId v) {
    auto& r = refs[static_cast<size_t>(c)];
    r[v]++;
    for (NodeId o : g.node(v).operands) r[o]++;
    clusterOf[static_cast<size_t>(v)] = c;
  };
  auto removeNode = [&](int c, NodeId v) {
    auto& r = refs[static_cast<size_t>(c)];
    auto drop = [&](NodeId x) {
      auto it = r.find(x);
      SHERLOCK_ASSERT(it != r.end(), "refcount underflow");
      if (--it->second == 0) r.erase(it);
    };
    drop(v);
    for (NodeId o : g.node(v).operands) drop(o);
  };
  auto cellsIfMoved = [&](int c, NodeId v) {
    const auto& r = refs[static_cast<size_t>(c)];
    int extra = r.contains(v) ? 0 : 1;
    std::set<NodeId> fresh;
    for (NodeId o : g.node(v).operands)
      if (!r.contains(o)) fresh.insert(o);
    fresh.erase(v);
    return static_cast<int>(r.size()) + extra +
           static_cast<int>(fresh.size());
  };

  for (int pass = 0; pass < options.refinePasses; ++pass) {
    bool changed = false;
    for (NodeId v = g.firstId(); v < g.endId(); ++v) {
      const ir::Node& n = g.node(v);
      if (!n.isOp()) continue;
      int cur = clusterOf[static_cast<size_t>(v)];
      // Count op-neighbor edges per cluster.
      std::map<int, int> neighborCount;
      for (NodeId o : n.operands)
        if (g.node(o).isOp())
          neighborCount[clusterOf[static_cast<size_t>(o)]]++;
      for (NodeId u : n.users)
        neighborCount[clusterOf[static_cast<size_t>(u)]]++;
      int curCount = neighborCount.contains(cur) ? neighborCount[cur] : 0;
      // Strictly better destination, ties broken by lowest cluster index.
      int best = cur, bestCount = curCount;
      for (const auto& [c, count] : neighborCount) {
        if (c == cur) continue;
        if (count > bestCount ||
            (count == bestCount && best != cur && c < best)) {
          best = c;
          bestCount = count;
        }
      }
      if (best == cur) continue;
      if (cellsIfMoved(best, v) > options.columnCapacity) continue;
      removeNode(cur, v);
      addNode(best, v);
      changed = true;
    }
    if (!changed) break;
  }

  // Rebuild the cluster structures from the final assignment.
  std::vector<Cluster> rebuilt(clusters.size());
  for (NodeId v = g.firstId(); v < g.endId(); ++v) {
    if (!g.node(v).isOp()) continue;
    int c = clusterOf[static_cast<size_t>(v)];
    rebuilt[static_cast<size_t>(c)].nodes.push_back(v);
    rebuilt[static_cast<size_t>(c)].cells.insert(v);
    for (NodeId o : g.node(v).operands)
      rebuilt[static_cast<size_t>(c)].cells.insert(o);
  }
  // Drop emptied clusters, renumber.
  std::vector<Cluster> compact;
  std::vector<int> remap(rebuilt.size(), -1);
  for (size_t i = 0; i < rebuilt.size(); ++i) {
    if (rebuilt[i].nodes.empty()) continue;
    remap[i] = static_cast<int>(compact.size());
    compact.push_back(std::move(rebuilt[i]));
  }
  for (auto& c : clusterOf)
    if (c >= 0) c = remap[static_cast<size_t>(c)];
  clusters = std::move(compact);
}

void mergeClusters(const Graph& g, const ClusteringOptions& options,
                   std::vector<Cluster>& clusters,
                   std::vector<int>& clusterOf) {
  if (clusters.empty()) return;

  // Incremental inter-cluster dependency counts (adjacency with edge
  // multiplicities), maintained across merges.
  std::vector<std::map<int, long>> adj(clusters.size());
  for (NodeId i = g.firstId(); i < g.endId(); ++i) {
    const ir::Node& n = g.node(i);
    if (!n.isOp()) continue;
    int ci = clusterOf[static_cast<size_t>(i)];
    for (NodeId o : n.operands) {
      if (!g.node(o).isOp()) continue;
      int co = clusterOf[static_cast<size_t>(o)];
      if (co == ci) continue;
      adj[static_cast<size_t>(ci)][co]++;
      adj[static_cast<size_t>(co)][ci]++;
    }
  }

  std::vector<bool> alive(clusters.size(), true);
  int liveCount = static_cast<int>(clusters.size());

  // Pairs proven infeasible stay infeasible: cluster contents only grow.
  std::set<std::pair<int, int>> blocked;
  auto feasiblePair = [&](int a, int b) {
    const Cluster& ca = clusters[static_cast<size_t>(a)];
    const Cluster& cb = clusters[static_cast<size_t>(b)];
    // Cheap bound: disjoint-union size fits -> feasible without a union.
    if (ca.cellCount() + cb.cellCount() <= options.columnCapacity)
      return true;
    auto key = std::minmax(a, b);
    if (blocked.contains({key.first, key.second})) return false;
    std::set<NodeId> u = ca.cells;
    u.insert(cb.cells.begin(), cb.cells.end());
    bool ok = static_cast<int>(u.size()) <= options.columnCapacity;
    if (!ok) blocked.insert({key.first, key.second});
    return ok;
  };
  auto mergeInto = [&](int dst, int src) {
    Cluster& cd = clusters[static_cast<size_t>(dst)];
    Cluster& cs = clusters[static_cast<size_t>(src)];
    for (NodeId nMoved : cs.nodes) {
      cd.nodes.push_back(nMoved);
      clusterOf[static_cast<size_t>(nMoved)] = dst;
    }
    cd.cells.insert(cs.cells.begin(), cs.cells.end());
    cs.nodes.clear();
    cs.cells.clear();
    for (const auto& [other, count] : adj[static_cast<size_t>(src)]) {
      adj[static_cast<size_t>(other)].erase(src);
      if (other == dst) continue;
      adj[static_cast<size_t>(dst)][other] += count;
      adj[static_cast<size_t>(other)][dst] += count;
    }
    adj[static_cast<size_t>(src)].clear();
    alive[static_cast<size_t>(src)] = false;
    --liveCount;
  };

  // Phase 1 (Algorithm 2 line 30): merge the most inter-dependent
  // feasible pair while more than k clusters remain. Independent clusters
  // are never merged here.
  while (options.targetClusters > 0 && liveCount > options.targetClusters) {
    int bestA = -1, bestB = -1;
    long bestDeps = 0;
    for (size_t a = 0; a < adj.size(); ++a) {
      if (!alive[a]) continue;
      for (const auto& [b, count] : adj[a]) {
        if (static_cast<int>(a) >= b) continue;
        if (count > bestDeps && feasiblePair(static_cast<int>(a), b)) {
          bestDeps = count;
          bestA = static_cast<int>(a);
          bestB = b;
        }
      }
    }
    if (bestA < 0) break;  // no dependent feasible pair remains
    mergeInto(bestA, bestB);
  }

  // Phase 2: enforce the physical column budget, merging the smallest
  // feasible pairs even when independent.
  while (options.maxClusters > 0 && liveCount > options.maxClusters) {
    std::vector<int> order;
    for (size_t i = 0; i < clusters.size(); ++i)
      if (alive[i]) order.push_back(static_cast<int>(i));
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      return clusters[static_cast<size_t>(a)].cellCount() <
             clusters[static_cast<size_t>(b)].cellCount();
    });
    int bestA = -1, bestB = -1;
    for (size_t x = 0; x < order.size() && bestA < 0; ++x)
      for (size_t y = x + 1; y < order.size(); ++y)
        if (feasiblePair(order[x], order[y])) {
          bestA = order[x];
          bestB = order[y];
          break;
        }
    if (bestA < 0)
      throw MappingError(strCat(
          "clusters do not fit the target: ", liveCount,
          " clusters needed but only ", options.maxClusters,
          " columns available and no pair fits a column"));
    mergeInto(bestA, bestB);
  }

  // Compact away the emptied clusters and renumber.
  std::vector<Cluster> compact;
  std::vector<int> remap(clusters.size(), -1);
  for (size_t i = 0; i < clusters.size(); ++i) {
    if (!alive[i]) continue;
    remap[i] = static_cast<int>(compact.size());
    compact.push_back(std::move(clusters[i]));
  }
  for (auto& c : clusterOf)
    if (c >= 0) c = remap[static_cast<size_t>(c)];
  clusters = std::move(compact);
}

}  // namespace sherlock::mapping
