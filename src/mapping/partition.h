// Inter-array partitioner: assigns DAG clusters (clustering.h) to arrays
// of the target mesh, minimizing the hop-weighted cut — the operand edges
// whose producer and consumer clusters land on different arrays, each of
// which the code generator must serve with an XFER. The assignment is a
// min-cut-flavored two-step: a greedy pass places clusters in priority
// order on the array where their already-placed neighbors live, then
// Kernighan-Lin-style sweeps migrate clusters whenever that lowers the
// weighted cut. Cut edges sharing a (value, destination array) pair are
// served by one transfer (the moved copy is reused), so transfers are
// deduplicated accordingly.
//
// The partitioner also list-schedules the clustered DAG onto the mesh to
// estimate makespans: `overlapped` lets compute on one array proceed while
// the bus carries a transfer to another (transfers are posted; only their
// consumers wait), `serialized` charges every op and transfer end to end.
// Overlapped never exceeds serialized — bench_multi_array reports both to
// show what inter-array scheduling buys.
#pragma once

#include <vector>

#include "ir/graph.h"
#include "isa/target.h"
#include "mapping/clustering.h"

namespace sherlock::mapping {

struct PartitionOptions {
  /// Columns of each array the partitioner may occupy (0 = every
  /// column). Small caps force multi-array placement on kernels that
  /// would otherwise fit one array (partially-occupied meshes, fuzzing).
  int maxColumnsPerArray = 0;

  /// Per-array column budgets overriding the uniform cap (fault-aware
  /// callers pass usable-column counts). Empty = uniform from target
  /// geometry and maxColumnsPerArray. Size must equal target.numArrays.
  std::vector<int> arrayColumnBudget;

  /// Kernighan-Lin-style refinement sweeps over the greedy assignment.
  int refinePasses = 2;
};

/// One inter-array movement the schedule performs: `value` (produced by
/// an op of `producerCluster`) crosses the mesh once into `dstArray`,
/// where every consumer cluster placed there reads the landed copy.
struct Transfer {
  ir::NodeId value = ir::kInvalidNode;
  int producerCluster = -1;
  int srcArray = -1;
  int dstArray = -1;
  int hops = 1;
};

struct PartitionResult {
  /// Array id of each cluster (parallel to clustering.clusters).
  std::vector<int> arrayOf;

  /// Deduplicated inter-array movements implied by the cut, one per
  /// (value, dstArray) pair with at least one crossing operand edge.
  std::vector<Transfer> transfers;

  /// Operand edges crossing array boundaries, and the same weighted by
  /// hop distance (the objective refinement minimizes).
  long cutEdges = 0;
  long weightedCutHops = 0;

  /// True when every cluster fit one array (transfers is empty and
  /// arrayOf is uniform) — the single-array fallback.
  bool singleArray = false;

  /// List-schedule makespan estimates (header comment); overlapped
  /// never exceeds serialized.
  double overlappedMakespanNs = 0;
  double serializedMakespanNs = 0;
};

/// Assigns `clustering`'s clusters to the target's arrays. Requires the
/// total column budget to cover the cluster count; throws MappingError
/// otherwise (the clusterer's maxClusters should already enforce this).
PartitionResult partitionClusters(const ir::Graph& g,
                                  const ClusteringResult& clustering,
                                  const isa::TargetSpec& target,
                                  const PartitionOptions& options = {});

}  // namespace sherlock::mapping
