// A compiled CIM program: the instruction stream plus the metadata the
// simulator needs (which writes carry host data for which input values,
// and where the graph outputs live when the program finishes).
#pragma once

#include <map>
#include <vector>

#include "ir/graph.h"
#include "isa/instruction.h"
#include "mapping/layout.h"

namespace sherlock::mapping {

/// Code generation statistics, used by the evaluation harnesses.
struct CodegenStats {
  long hostWrites = 0;       ///< input/const pre-load writes
  long cimReads = 0;         ///< scouting-logic operations
  long plainReads = 0;       ///< movement loads
  long spillWrites = 0;      ///< intermediate materializations
  long shifts = 0;           ///< row-buffer rotations (movement)
  long moves = 0;            ///< inter-array buffer-bit bus transfers
  long xfers = 0;            ///< inter-array cell-to-cell transfers
  long mergedInstructions = 0;  ///< instructions saved by merging
  long chainedOperands = 0;  ///< operands consumed from the row buffer
  /// Allocations repaired into the spare-row region (fault-aware
  /// placement only; not an instruction count).
  long spareRowAllocations = 0;

  long totalInstructions() const {
    return hostWrites + cimReads + plainReads + spillWrites + shifts +
           moves + xfers;
  }
};

struct Program {
  std::vector<isa::Instruction> instructions;

  /// For host-data writes: instruction index -> the leaf value (NodeId)
  /// behind each written column, parallel to that instruction's `columns`.
  std::map<size_t, std::vector<ir::NodeId>> hostWriteValues;

  /// Where each graph output is materialized when the program ends.
  std::map<ir::NodeId, CellAddress> outputCells;

  CodegenStats stats;

  /// Columns actually touched (occupancy metric).
  int usedColumns = 0;
  /// Peak simultaneously live cells (capacity metric).
  int peakLiveCells = 0;
};

}  // namespace sherlock::mapping
