// DAG op-node clustering (paper Algorithm 2, FindClusters): groups
// operation nodes into clusters that each fit one CIM column, minimizing
// dependencies that cross cluster boundaries (each crossing dependency
// costs a read/shift/write movement at code generation time).
//
// Assignment of a node with already-clustered predecessors follows the
// paper's Cases 1-5, all captured by the score of Eq. 1:
//
//   score(d, C) = beta * |C| + alpha * sum_{q in pred(d) /\ C} rho(d, q)
//
// with beta < 0 (prefer smaller clusters, Case 5) and rho(d, q) the
// affinity of d to predecessor q. The paper describes rho as derived from
// the priority difference such that *lower* differences score *higher*
// (Case 3: the node lies on the critical path of the nearer cluster) and
// more in-cluster predecessors score higher (Case 4); we therefore use
// rho(d, q) = 1 / (blevel(q) - blevel(d)), the inverse priority gap, which
// realizes exactly that ordering.
#pragma once

#include <set>
#include <vector>

#include "ir/graph.h"
#include "support/rng.h"

namespace sherlock::mapping {

struct ClusteringOptions {
  /// Cells one column offers; bounds C_maxSize through the in/out-degrees
  /// of the member nodes (every distinct operand and result of the cluster
  /// occupies a cell).
  int columnCapacity = 0;

  /// Target number of clusters k (columns the DAG's operands require).
  /// MergeClusters only merges *dependent* cluster pairs toward this
  /// target — merging independent clusters would destroy column-level
  /// parallelism without saving any movement.
  int targetClusters = 0;

  /// Hard cap (columns physically available); 0 = unlimited. Above the
  /// cap, even independent clusters are force-merged.
  int maxClusters = 0;

  /// Eq. 1 constants.
  double alpha = 1.0;
  double beta = -0.5;

  /// Local refinement sweeps after merging: each op node migrates to the
  /// cluster holding most of its DAG neighbors when that reduces crossing
  /// dependencies and fits the capacity (a Kernighan-Lin-style cleanup of
  /// the greedy assignment).
  int refinePasses = 2;

  /// Seed for the paper's "randomly assign to one of the predecessor's
  /// clusters" tie-break in Case 2.
  uint64_t seed = 1;
};

struct Cluster {
  std::vector<ir::NodeId> nodes;       ///< op nodes, in assignment order
  std::set<ir::NodeId> cells;          ///< distinct values the column holds
  int size() const { return static_cast<int>(nodes.size()); }
  int cellCount() const { return static_cast<int>(cells.size()); }
};

struct ClusteringResult {
  std::vector<Cluster> clusters;
  /// cluster index of each op node (indexed by NodeId; -1 for non-ops).
  std::vector<int> clusterOf;
  /// Dependencies crossing cluster boundaries (movement proxies).
  long crossClusterEdges = 0;
};

/// Runs FindClusters followed by the greedy MergeClusters step.
ClusteringResult findClusters(const ir::Graph& g,
                              const ClusteringOptions& options);

/// The MergeClusters step alone (exposed for testing): greedily merges the
/// most inter-dependent feasible pairs down to targetClusters, then
/// force-merges the smallest pairs down to maxClusters. Updates `clusters`
/// and `clusterOf` in place.
void mergeClusters(const ir::Graph& g, const ClusteringOptions& options,
                   std::vector<Cluster>& clusters,
                   std::vector<int>& clusterOf);

/// The local-refinement step alone (exposed for testing): see
/// ClusteringOptions::refinePasses. Updates `clusters` and `clusterOf` in
/// place; emptied clusters are removed.
void refineClusters(const ir::Graph& g, const ClusteringOptions& options,
                    std::vector<Cluster>& clusters,
                    std::vector<int>& clusterOf);

/// Counts operand edges between op nodes in different clusters.
long countCrossClusterEdges(const ir::Graph& g,
                            const std::vector<int>& clusterOf);

}  // namespace sherlock::mapping
