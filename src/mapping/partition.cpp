#include "mapping/partition.h"

#include <algorithm>
#include <map>
#include <numeric>
#include <utility>

#include "arraymodel/array_model.h"
#include "ir/analysis.h"
#include "support/diagnostics.h"

namespace sherlock::mapping {

namespace {

// Undirected cluster-affinity weights: operand edges between op nodes of
// two different clusters, symmetrized (the cut cost of separating the
// pair does not depend on edge direction).
std::map<std::pair<int, int>, long> clusterAffinity(
    const ir::Graph& g, const std::vector<int>& clusterOf) {
  std::map<std::pair<int, int>, long> w;
  for (ir::NodeId v = g.firstId(); v < g.endId(); ++v) {
    const ir::Node& n = g.node(v);
    if (!n.isOp()) continue;
    int cv = clusterOf[static_cast<size_t>(v)];
    for (ir::NodeId user : n.users) {
      int cu = clusterOf[static_cast<size_t>(user)];
      if (cu == cv) continue;
      w[{std::min(cv, cu), std::max(cv, cu)}]++;
    }
  }
  return w;
}

// Hop-weighted cut cost of placing `cluster` on `array`, given the
// neighbors already assigned (arrayOf entries < 0 are unplaced).
long placementCost(int cluster, int array,
                   const std::map<std::pair<int, int>, long>& affinity,
                   const std::vector<int>& arrayOf,
                   const isa::TargetSpec& target) {
  long cost = 0;
  for (const auto& [edge, weight] : affinity) {
    int other = -1;
    if (edge.first == cluster) other = edge.second;
    else if (edge.second == cluster) other = edge.first;
    else continue;
    int otherArray = arrayOf[static_cast<size_t>(other)];
    if (otherArray < 0) continue;
    cost += weight * target.hopsBetween(array, otherArray);
  }
  return cost;
}

// List-schedule makespan estimation (see header). Op latency is one
// dispatch + one sense; transfer latency is one sense plus the bus hops
// plus the posted destination write. Leaf operands are host-loaded ahead
// of time and cost nothing in either model.
void estimateMakespans(const ir::Graph& g,
                       const std::vector<int>& clusterOf,
                       const isa::TargetSpec& target,
                       PartitionResult& out) {
  arraymodel::ArrayCostModel cost(target.geometry, target.tech);
  const double opNs = cost.dispatchLatencyNs() + cost.readLatencyNs();
  const double senseNs = cost.dispatchLatencyNs() + cost.readLatencyNs();
  const double writeNs = cost.writeCompletionNs();
  const double hopNs = target.grid.hopLatencyNs;

  std::vector<double> arrayFree(
      static_cast<size_t>(std::max(1, target.numArrays)), 0.0);
  double busFree = 0.0;
  std::vector<double> finish(g.numNodes(), 0.0);
  // Arrival time of each deduplicated (value, dstArray) transfer.
  std::map<std::pair<ir::NodeId, int>, double> landed;
  double serialized = 0.0;
  double makespan = 0.0;

  for (ir::NodeId v = g.firstId(); v < g.endId(); ++v) {
    const ir::Node& n = g.node(v);
    if (!n.isOp()) continue;
    int array = out.arrayOf[static_cast<size_t>(clusterOf[v])];
    double ready = 0.0;
    for (ir::NodeId q : n.operands) {
      if (!g.node(q).isOp()) continue;
      int srcArray = out.arrayOf[static_cast<size_t>(clusterOf[q])];
      if (srcArray == array) {
        ready = std::max(ready, finish[static_cast<size_t>(q)]);
        continue;
      }
      auto key = std::make_pair(q, array);
      auto it = landed.find(key);
      if (it == landed.end()) {
        // Schedule the transfer the first time a consumer needs it:
        // sense on the source array, bus leg, posted landing write.
        double xferNs = senseNs +
                        target.hopsBetween(srcArray, array) * hopNs +
                        writeNs;
        double start = std::max({finish[static_cast<size_t>(q)], busFree,
                                 arrayFree[static_cast<size_t>(srcArray)]});
        busFree = start + xferNs - writeNs;
        it = landed.emplace(key, start + xferNs).first;
        serialized += xferNs;
      }
      ready = std::max(ready, it->second);
    }
    double start =
        std::max(ready, arrayFree[static_cast<size_t>(array)]);
    finish[static_cast<size_t>(v)] = start + opNs;
    arrayFree[static_cast<size_t>(array)] = finish[static_cast<size_t>(v)];
    makespan = std::max(makespan, finish[static_cast<size_t>(v)]);
    serialized += opNs;
  }

  out.overlappedMakespanNs = makespan;
  out.serializedMakespanNs = serialized;
}

}  // namespace

PartitionResult partitionClusters(const ir::Graph& g,
                                  const ClusteringResult& clustering,
                                  const isa::TargetSpec& target,
                                  const PartitionOptions& options) {
  const int nClusters = static_cast<int>(clustering.clusters.size());
  const int numArrays = std::max(1, target.numArrays);

  std::vector<int> budget = options.arrayColumnBudget;
  if (budget.empty()) {
    int cap = target.cols();
    if (options.maxColumnsPerArray > 0)
      cap = std::min(cap, options.maxColumnsPerArray);
    budget.assign(static_cast<size_t>(numArrays), cap);
  }
  checkArg(static_cast<int>(budget.size()) == numArrays,
           "arrayColumnBudget size must equal the target's array count");
  long total = std::accumulate(budget.begin(), budget.end(), 0L);
  if (total < nClusters)
    throw MappingError(
        strCat("partitioner: ", nClusters, " clusters exceed the ", total,
               "-column budget across ", numArrays, " arrays"));

  PartitionResult out;
  out.arrayOf.assign(static_cast<size_t>(nClusters), -1);

  // Single-array fallback: the whole kernel fits the first array with
  // room, so no transfer is ever needed and mapping degenerates to the
  // flat single-array plan.
  for (int a = 0; a < numArrays; ++a) {
    if (budget[static_cast<size_t>(a)] < nClusters) continue;
    std::fill(out.arrayOf.begin(), out.arrayOf.end(), a);
    out.singleArray = true;
    estimateMakespans(g, clustering.clusterOf, target, out);
    return out;
  }

  auto affinity = clusterAffinity(g, clustering.clusterOf);

  // Greedy pass: place clusters in t-level priority order (earliest work
  // first, so producers are placed before most of their consumers) on
  // the array minimizing the hop-weighted cut to already-placed
  // neighbors; ties break toward the lightest-loaded, lowest-id array.
  std::vector<int> tl = ir::tLevels(g);
  std::vector<double> priority(static_cast<size_t>(nClusters), 0.0);
  for (int c = 0; c < nClusters; ++c) {
    const auto& nodes = clustering.clusters[static_cast<size_t>(c)].nodes;
    long sum = 0;
    for (ir::NodeId v : nodes) sum += tl[static_cast<size_t>(v)];
    priority[static_cast<size_t>(c)] =
        nodes.empty() ? 0.0
                      : static_cast<double>(sum) /
                            static_cast<double>(nodes.size());
  }
  std::vector<int> order(static_cast<size_t>(nClusters));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    if (priority[static_cast<size_t>(a)] != priority[static_cast<size_t>(b)])
      return priority[static_cast<size_t>(a)] <
             priority[static_cast<size_t>(b)];
    return a < b;
  });

  std::vector<int> load(static_cast<size_t>(numArrays), 0);
  for (int c : order) {
    int best = -1;
    long bestCost = 0;
    for (int a = 0; a < numArrays; ++a) {
      if (load[static_cast<size_t>(a)] >= budget[static_cast<size_t>(a)])
        continue;
      long cost = placementCost(c, a, affinity, out.arrayOf, target);
      if (best < 0 || cost < bestCost ||
          (cost == bestCost &&
           load[static_cast<size_t>(a)] < load[static_cast<size_t>(best)])) {
        best = a;
        bestCost = cost;
      }
    }
    out.arrayOf[static_cast<size_t>(c)] = best;
    load[static_cast<size_t>(best)]++;
  }

  // Kernighan-Lin-style sweeps: migrate any cluster whose weighted cut
  // strictly improves on another array with budget headroom.
  for (int pass = 0; pass < options.refinePasses; ++pass) {
    bool moved = false;
    for (int c = 0; c < nClusters; ++c) {
      int cur = out.arrayOf[static_cast<size_t>(c)];
      long curCost = placementCost(c, cur, affinity, out.arrayOf, target);
      int best = cur;
      long bestCost = curCost;
      for (int a = 0; a < numArrays; ++a) {
        if (a == cur ||
            load[static_cast<size_t>(a)] >= budget[static_cast<size_t>(a)])
          continue;
        long cost = placementCost(c, a, affinity, out.arrayOf, target);
        if (cost < bestCost) {
          best = a;
          bestCost = cost;
        }
      }
      if (best != cur) {
        out.arrayOf[static_cast<size_t>(c)] = best;
        load[static_cast<size_t>(cur)]--;
        load[static_cast<size_t>(best)]++;
        moved = true;
      }
    }
    if (!moved) break;
  }

  // Derive the cut and its transfers, one per (value, dstArray).
  std::map<std::pair<ir::NodeId, int>, size_t> seen;
  for (ir::NodeId v = g.firstId(); v < g.endId(); ++v) {
    const ir::Node& n = g.node(v);
    if (!n.isOp()) continue;
    int cv = clustering.clusterOf[static_cast<size_t>(v)];
    int srcArray = out.arrayOf[static_cast<size_t>(cv)];
    for (ir::NodeId user : n.users) {
      int dstArray = out.arrayOf[static_cast<size_t>(
          clustering.clusterOf[static_cast<size_t>(user)])];
      if (dstArray == srcArray) continue;
      int hops = target.hopsBetween(srcArray, dstArray);
      out.cutEdges++;
      out.weightedCutHops += hops;
      auto key = std::make_pair(v, dstArray);
      if (seen.emplace(key, out.transfers.size()).second)
        out.transfers.push_back(
            Transfer{v, cv, srcArray, dstArray, hops});
    }
  }

  estimateMakespans(g, clustering.clusterOf, target, out);
  return out;
}

}  // namespace sherlock::mapping
