#include "mapping/opt_mapper.h"

#include <algorithm>
#include <numeric>

#include "support/trace.h"

namespace sherlock::mapping {

OptMapping mapOptimized(const ir::Graph& g, const isa::TargetSpec& target,
                        const OptMapperOptions& options,
                        const FaultPolicy& faults) {
  const int totalColumns = target.cols() * target.numArrays;
  const int numArrays = std::max(1, target.numArrays);

  // Columns a cluster may land on, grouped per array. With faults,
  // columns too damaged to hold even a minimal cluster are skipped and
  // the cluster budget is sized to the worst surviving column so any
  // cluster fits any assigned column. maxColumnsPerArray caps how many
  // of each array's columns the mapper occupies.
  std::vector<std::vector<int>> arrayColumns(
      static_cast<size_t>(numArrays));
  int planningRows = usablePlanningCells(target, faults, 0, 0);
  if (faults.map) planningRows = 0;
  for (int globalCol = 0; globalCol < totalColumns; ++globalCol) {
    int arrayId = globalCol / target.cols();
    auto& cols = arrayColumns[static_cast<size_t>(arrayId)];
    if (options.maxColumnsPerArray > 0 &&
        static_cast<int>(cols.size()) >= options.maxColumnsPerArray)
      continue;
    if (faults.map) {
      int u = usablePlanningCells(target, faults, arrayId,
                                  globalCol % target.cols());
      if (u < 2) continue;
      planningRows = planningRows == 0 ? u : std::min(planningRows, u);
    }
    cols.push_back(globalCol);
  }
  std::vector<int> budget(static_cast<size_t>(numArrays), 0);
  for (int a = 0; a < numArrays; ++a)
    budget[static_cast<size_t>(a)] =
        static_cast<int>(arrayColumns[static_cast<size_t>(a)].size());
  long usableTotal = std::accumulate(budget.begin(), budget.end(), 0L);
  if (usableTotal == 0)
    throw MappingError(
        "fault map leaves no usable columns for optimized mapping");

  const int capacity = std::max(
      2, static_cast<int>(planningRows * options.capacityFraction));

  ClusteringOptions copt;
  copt.columnCapacity = capacity;
  // k = number of columns the DAG's operands require (Algorithm 2 line 3).
  copt.targetClusters = static_cast<int>(
      (g.valueCount() + static_cast<size_t>(capacity) - 1) /
      static_cast<size_t>(capacity));
  copt.maxClusters = static_cast<int>(usableTotal);
  copt.alpha = options.alpha;
  copt.beta = options.beta;
  copt.seed = options.seed;
  copt.refinePasses = options.refinePasses;

  OptMapping out;
  {
    trace::Span span("mapping", "cluster");
    out.clustering = findClusters(g, copt);
  }
  const auto& clusters = out.clustering.clusters;

  // Shard the clustered DAG across the mesh (single-array fallback when
  // one array has room for everything).
  PartitionOptions popt;
  popt.arrayColumnBudget = budget;
  popt.refinePasses = options.refinePasses;
  {
    trace::Span span("mapping", "partition");
    out.partition = partitionClusters(g, out.clustering, target, popt);
  }

  PlacementPlan& plan = out.plan;
  plan.opLocation.resize(g.numNodes());
  plan.leafColumns.resize(g.numNodes());
  plan.clusterCount = static_cast<int>(clusters.size());
  plan.usedColumns = static_cast<int>(clusters.size());

  // Hand each cluster the next free column of its assigned array.
  std::vector<size_t> cursor(static_cast<size_t>(numArrays), 0);
  std::vector<ColumnRef> clusterColumn(clusters.size());
  for (size_t ci = 0; ci < clusters.size(); ++ci) {
    int arrayId = out.partition.arrayOf[ci];
    int globalCol = arrayColumns[static_cast<size_t>(
        arrayId)][cursor[static_cast<size_t>(arrayId)]++];
    clusterColumn[ci] = ColumnRef{arrayId, globalCol % target.cols()};
  }

  for (size_t ci = 0; ci < clusters.size(); ++ci)
    for (ir::NodeId node : clusters[ci].nodes)
      plan.opLocation[static_cast<size_t>(node)] = clusterColumn[ci];

  // Pre-load each leaf operand into every consuming cluster's column.
  for (ir::NodeId i = g.firstId(); i < g.endId(); ++i) {
    const ir::Node& n = g.node(i);
    if (n.isOp()) continue;
    std::vector<ColumnRef> cols;
    for (ir::NodeId user : n.users) {
      ColumnRef c = plan.opLocation[static_cast<size_t>(user)];
      if (std::find(cols.begin(), cols.end(), c) == cols.end())
        cols.push_back(c);
    }
    if (cols.empty() && std::find(g.outputs().begin(), g.outputs().end(),
                                  i) != g.outputs().end()) {
      // Unconsumed output leaf: park it on the first usable column.
      if (!clusterColumn.empty()) {
        cols.push_back(clusterColumn[0]);
      } else {
        for (const auto& ac : arrayColumns)
          if (!ac.empty()) {
            cols.push_back(
                ColumnRef{ac[0] / target.cols(), ac[0] % target.cols()});
            break;
          }
      }
    }
    std::sort(cols.begin(), cols.end());
    plan.leafColumns[static_cast<size_t>(i)] = std::move(cols);
  }

  return out;
}

}  // namespace sherlock::mapping
