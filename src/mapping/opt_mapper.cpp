#include "mapping/opt_mapper.h"

#include <algorithm>

namespace sherlock::mapping {

OptMapping mapOptimized(const ir::Graph& g, const isa::TargetSpec& target,
                        const OptMapperOptions& options,
                        const FaultPolicy& faults) {
  const int totalColumns = target.cols() * target.numArrays;

  // Columns a cluster may land on, in global order. With faults, columns
  // too damaged to hold even a minimal cluster are skipped and the
  // cluster budget is sized to the worst surviving column so any cluster
  // fits any assigned column.
  std::vector<int> usableColumns;
  int planningRows = usablePlanningCells(target, faults, 0, 0);
  if (faults.map) {
    planningRows = 0;
    for (int globalCol = 0; globalCol < totalColumns; ++globalCol) {
      int u = usablePlanningCells(target, faults,
                                  globalCol / target.cols(),
                                  globalCol % target.cols());
      if (u < 2) continue;
      usableColumns.push_back(globalCol);
      planningRows = planningRows == 0 ? u : std::min(planningRows, u);
    }
    if (usableColumns.empty())
      throw MappingError(
          "fault map leaves no usable columns for optimized mapping");
  } else {
    for (int globalCol = 0; globalCol < totalColumns; ++globalCol)
      usableColumns.push_back(globalCol);
  }

  const int capacity = std::max(
      2, static_cast<int>(planningRows * options.capacityFraction));

  ClusteringOptions copt;
  copt.columnCapacity = capacity;
  // k = number of columns the DAG's operands require (Algorithm 2 line 3).
  copt.targetClusters = static_cast<int>(
      (g.valueCount() + static_cast<size_t>(capacity) - 1) /
      static_cast<size_t>(capacity));
  copt.maxClusters = static_cast<int>(usableColumns.size());
  copt.alpha = options.alpha;
  copt.beta = options.beta;
  copt.seed = options.seed;
  copt.refinePasses = options.refinePasses;

  OptMapping out;
  out.clustering = findClusters(g, copt);
  const auto& clusters = out.clustering.clusters;

  PlacementPlan& plan = out.plan;
  plan.opLocation.resize(g.numNodes());
  plan.leafColumns.resize(g.numNodes());
  plan.clusterCount = static_cast<int>(clusters.size());
  plan.usedColumns = static_cast<int>(clusters.size());

  auto columnOf = [&](int clusterIdx) {
    int globalCol = usableColumns[static_cast<size_t>(clusterIdx)];
    return ColumnRef{globalCol / target.cols(),
                     globalCol % target.cols()};
  };

  for (size_t ci = 0; ci < clusters.size(); ++ci) {
    ColumnRef col = columnOf(static_cast<int>(ci));
    for (ir::NodeId node : clusters[ci].nodes)
      plan.opLocation[static_cast<size_t>(node)] = col;
  }

  // Pre-load each leaf operand into every consuming cluster's column.
  for (ir::NodeId i = g.firstId(); i < g.endId(); ++i) {
    const ir::Node& n = g.node(i);
    if (n.isOp()) continue;
    std::vector<ColumnRef> cols;
    for (ir::NodeId user : n.users) {
      ColumnRef c = plan.opLocation[static_cast<size_t>(user)];
      if (std::find(cols.begin(), cols.end(), c) == cols.end())
        cols.push_back(c);
    }
    if (cols.empty() && std::find(g.outputs().begin(), g.outputs().end(),
                                  i) != g.outputs().end())
      cols.push_back(columnOf(0));  // unconsumed output leaf
    std::sort(cols.begin(), cols.end());
    plan.leafColumns[static_cast<size_t>(i)] = std::move(cols);
  }

  return out;
}

}  // namespace sherlock::mapping
