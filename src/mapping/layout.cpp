#include "mapping/layout.h"

#include <algorithm>

namespace sherlock::mapping {

Layout::Layout(const isa::TargetSpec& target)
    : rows_(target.rows()),
      cols_(target.cols()),
      numArrays_(target.numArrays) {
  checkArg(rows_ > 0 && cols_ > 0 && numArrays_ > 0,
           "target must have positive dimensions");
  freeRows_.resize(static_cast<size_t>(cols_) * numArrays_);
  residents_.resize(static_cast<size_t>(cols_) * numArrays_);
  for (auto& freeList : freeRows_) {
    freeList.resize(static_cast<size_t>(rows_));
    // Descending so pop_back hands out the lowest row first.
    for (int r = 0; r < rows_; ++r)
      freeList[static_cast<size_t>(r)] = rows_ - 1 - r;
  }
}

int Layout::columnIndex(ColumnRef where) const {
  checkArg(where.arrayId >= 0 && where.arrayId < numArrays_,
           strCat("array ", where.arrayId, " out of range"));
  checkArg(where.col >= 0 && where.col < cols_,
           strCat("column ", where.col, " out of range"));
  return where.arrayId * cols_ + where.col;
}

CellAddress Layout::allocate(ir::NodeId value, ColumnRef where) {
  auto& freeList = freeRows_[static_cast<size_t>(columnIndex(where))];
  if (freeList.empty())
    throw MappingError(strCat("column ", where.col, " of array ",
                              where.arrayId,
                              " is full (value ", value, ")"));
  int row = freeList.back();
  freeList.pop_back();
  CellAddress cell{where.arrayId, where.col, row};
  placements_[value].push_back(cell);
  residents_[static_cast<size_t>(columnIndex(where))].insert(value);
  ++liveCells_;
  peakLiveCells_ = std::max(peakLiveCells_, liveCells_);
  return cell;
}

int Layout::freeCells(ColumnRef where) const {
  return static_cast<int>(
      freeRows_[static_cast<size_t>(columnIndex(where))].size());
}

bool Layout::isPlaced(ir::NodeId value) const {
  auto it = placements_.find(value);
  return it != placements_.end() && !it->second.empty();
}

std::optional<CellAddress> Layout::placementIn(ir::NodeId value,
                                               ColumnRef where) const {
  auto it = placements_.find(value);
  if (it == placements_.end()) return std::nullopt;
  for (const CellAddress& cell : it->second)
    if (cell.arrayId == where.arrayId && cell.col == where.col) return cell;
  return std::nullopt;
}

std::optional<CellAddress> Layout::anyPlacement(ir::NodeId value) const {
  auto it = placements_.find(value);
  if (it == placements_.end() || it->second.empty()) return std::nullopt;
  return it->second.front();
}

std::vector<CellAddress> Layout::placements(ir::NodeId value) const {
  auto it = placements_.find(value);
  return it == placements_.end() ? std::vector<CellAddress>{} : it->second;
}

void Layout::freeCell(const CellAddress& cell) {
  auto& freeList =
      freeRows_[static_cast<size_t>(columnIndex({cell.arrayId, cell.col}))];
  // Keep descending order so the lowest row is reused first.
  auto pos = std::lower_bound(freeList.begin(), freeList.end(), cell.row,
                              std::greater<int>{});
  freeList.insert(pos, cell.row);
  --liveCells_;
}

void Layout::release(ir::NodeId value) {
  auto it = placements_.find(value);
  if (it == placements_.end()) return;
  for (const CellAddress& cell : it->second) {
    freeCell(cell);
    residents_[static_cast<size_t>(columnIndex({cell.arrayId, cell.col}))]
        .erase(value);
  }
  placements_.erase(it);
}

void Layout::releaseCellIn(ir::NodeId value, ColumnRef where) {
  auto it = placements_.find(value);
  checkArg(it != placements_.end(),
           strCat("value ", value, " has no placements"));
  auto& cells = it->second;
  auto pos = std::find_if(cells.begin(), cells.end(),
                          [&](const CellAddress& c) {
                            return c.arrayId == where.arrayId &&
                                   c.col == where.col;
                          });
  checkArg(pos != cells.end(),
           strCat("value ", value, " not placed in the given column"));
  freeCell(*pos);
  cells.erase(pos);
  residents_[static_cast<size_t>(columnIndex(where))].erase(value);
  if (cells.empty()) placements_.erase(it);
}

std::vector<ir::NodeId> Layout::valuesIn(ColumnRef where) const {
  const auto& set = residents_[static_cast<size_t>(columnIndex(where))];
  return {set.begin(), set.end()};
}

int Layout::placementCount(ir::NodeId value) const {
  auto it = placements_.find(value);
  return it == placements_.end() ? 0 : static_cast<int>(it->second.size());
}

}  // namespace sherlock::mapping
