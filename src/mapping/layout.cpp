#include "mapping/layout.h"

#include <algorithm>

namespace sherlock::mapping {

int usablePlanningCells(const isa::TargetSpec& target,
                        const FaultPolicy& faults, int arrayId, int col) {
  int mainLimit = target.rows() - std::min(faults.spareRows, target.rows());
  if (!faults.map) return mainLimit;
  return faults.map->usableCellsInColumn(arrayId, col, mainLimit);
}

Layout::Layout(const isa::TargetSpec& target, const FaultPolicy& faults)
    : rows_(target.rows()),
      cols_(target.cols()),
      numArrays_(target.numArrays),
      faults_(faults) {
  checkArg(rows_ > 0 && cols_ > 0 && numArrays_ > 0,
           "target must have positive dimensions");
  checkArg(faults.spareRows >= 0, "spare row count must be >= 0");
  if (faults.map) {
    checkArg(faults.map->numArrays() == numArrays_ &&
                 faults.map->rows() == rows_ && faults.map->cols() == cols_,
             strCat("fault map dimensions (", faults.map->numArrays(), "x",
                    faults.map->rows(), "x", faults.map->cols(),
                    ") do not match the target (", numArrays_, "x", rows_,
                    "x", cols_, ")"));
  }
  spareRows_ = std::min(faults.spareRows, rows_);
  mainRowLimit_ = rows_ - spareRows_;
  freeRows_.resize(static_cast<size_t>(cols_) * numArrays_);
  spareFree_.resize(static_cast<size_t>(cols_) * numArrays_);
  residents_.resize(static_cast<size_t>(cols_) * numArrays_);
  for (int a = 0; a < numArrays_; ++a)
    for (int c = 0; c < cols_; ++c) {
      size_t idx = static_cast<size_t>(a) * cols_ + c;
      // Descending so pop_back hands out the lowest row first.
      for (int r = rows_ - 1; r >= 0; --r) {
        if (faults_.map && !faults_.map->isUsable(a, r, c)) continue;
        (r < mainRowLimit_ ? freeRows_ : spareFree_)[idx].push_back(r);
      }
    }
}

int Layout::columnIndex(ColumnRef where) const {
  checkArg(where.arrayId >= 0 && where.arrayId < numArrays_,
           strCat("array ", where.arrayId, " out of range"));
  checkArg(where.col >= 0 && where.col < cols_,
           strCat("column ", where.col, " out of range"));
  return where.arrayId * cols_ + where.col;
}

CellAddress Layout::allocate(ir::NodeId value, ColumnRef where) {
  size_t idx = static_cast<size_t>(columnIndex(where));
  auto* freeList = &freeRows_[idx];
  if (freeList->empty() && !spareFree_[idx].empty()) {
    // Repair: the main region is exhausted (faults punched holes in it or
    // the program is simply dense); remap into the spare-row region.
    freeList = &spareFree_[idx];
    ++spareAllocations_;
  }
  if (freeList->empty()) {
    std::string detail;
    if (faults_.active()) {
      int unusable = rows_ - (faults_.map ? faults_.map->usableCellsInColumn(
                                                where.arrayId, where.col,
                                                rows_)
                                          : rows_);
      detail = strCat("; ", unusable, " of ", rows_,
                      " rows unusable due to faults, ", spareRows_,
                      " spare rows all in use");
    }
    throw MappingError(strCat("column ", where.col, " of array ",
                              where.arrayId, " is full (value ", value, ")",
                              detail));
  }
  int row = freeList->back();
  freeList->pop_back();
  CellAddress cell{where.arrayId, where.col, row};
  placements_[value].push_back(cell);
  residents_[static_cast<size_t>(columnIndex(where))].insert(value);
  ++liveCells_;
  peakLiveCells_ = std::max(peakLiveCells_, liveCells_);
  return cell;
}

int Layout::freeCells(ColumnRef where) const {
  size_t idx = static_cast<size_t>(columnIndex(where));
  return static_cast<int>(freeRows_[idx].size() + spareFree_[idx].size());
}

bool Layout::isPlaced(ir::NodeId value) const {
  auto it = placements_.find(value);
  return it != placements_.end() && !it->second.empty();
}

std::optional<CellAddress> Layout::placementIn(ir::NodeId value,
                                               ColumnRef where) const {
  auto it = placements_.find(value);
  if (it == placements_.end()) return std::nullopt;
  for (const CellAddress& cell : it->second)
    if (cell.arrayId == where.arrayId && cell.col == where.col) return cell;
  return std::nullopt;
}

std::optional<CellAddress> Layout::anyPlacement(ir::NodeId value) const {
  auto it = placements_.find(value);
  if (it == placements_.end() || it->second.empty()) return std::nullopt;
  return it->second.front();
}

std::vector<CellAddress> Layout::placements(ir::NodeId value) const {
  auto it = placements_.find(value);
  return it == placements_.end() ? std::vector<CellAddress>{} : it->second;
}

void Layout::freeCell(const CellAddress& cell) {
  size_t idx =
      static_cast<size_t>(columnIndex({cell.arrayId, cell.col}));
  auto& freeList =
      (cell.row < mainRowLimit_ ? freeRows_ : spareFree_)[idx];
  // Keep descending order so the lowest row is reused first.
  auto pos = std::lower_bound(freeList.begin(), freeList.end(), cell.row,
                              std::greater<int>{});
  freeList.insert(pos, cell.row);
  --liveCells_;
}

void Layout::release(ir::NodeId value) {
  auto it = placements_.find(value);
  if (it == placements_.end()) return;
  for (const CellAddress& cell : it->second) {
    freeCell(cell);
    residents_[static_cast<size_t>(columnIndex({cell.arrayId, cell.col}))]
        .erase(value);
  }
  placements_.erase(it);
}

void Layout::releaseCellIn(ir::NodeId value, ColumnRef where) {
  auto it = placements_.find(value);
  checkArg(it != placements_.end(),
           strCat("value ", value, " has no placements"));
  auto& cells = it->second;
  auto pos = std::find_if(cells.begin(), cells.end(),
                          [&](const CellAddress& c) {
                            return c.arrayId == where.arrayId &&
                                   c.col == where.col;
                          });
  checkArg(pos != cells.end(),
           strCat("value ", value, " not placed in the given column"));
  freeCell(*pos);
  cells.erase(pos);
  residents_[static_cast<size_t>(columnIndex(where))].erase(value);
  if (cells.empty()) placements_.erase(it);
}

std::vector<ir::NodeId> Layout::valuesIn(ColumnRef where) const {
  const auto& set = residents_[static_cast<size_t>(columnIndex(where))];
  return {set.begin(), set.end()};
}

int Layout::placementCount(ir::NodeId value) const {
  auto it = placements_.find(value);
  return it == placements_.end() ? 0 : static_cast<int>(it->second.size());
}

}  // namespace sherlock::mapping
