// Naive mapping (paper Algorithm 1): walk the op nodes in b-level priority
// order and pack their yet-unmapped operands into array columns in
// column-major order, moving to the next column when one fills up. The
// operation executes in the column holding its result slot; operands that
// ended up in earlier columns are fetched by the code generator through
// read/shift/write movement — the data movement and duplication this
// baseline is known for.
#pragma once

#include "ir/graph.h"
#include "isa/target.h"
#include "mapping/layout.h"
#include "mapping/placement.h"

namespace sherlock::mapping {

/// Produces the Algorithm 1 placement plan. With a fault policy, packing
/// only counts usable cells below the spare-row boundary, so placement
/// steps over faulty cells and fully-faulty columns. Throws MappingError
/// when the DAG cannot fit the target's arrays.
PlacementPlan mapNaive(const ir::Graph& g, const isa::TargetSpec& target,
                       const FaultPolicy& faults = {});

}  // namespace sherlock::mapping
