// Code generation (paper Sec. 3.2.1 / 3.3.2): turns a DAG plus a placement
// plan into the CIM instruction stream.
//
// Scheduling walks the op nodes wave by wave in descending b-level order
// (nodes of equal b-level are provably independent), which interleaves
// independent chains — this is what lets the posted-write timing model hide
// programming latency — and emits, per op:
//
//   1. movement: operands not present in the op's execution column are
//      fetched (plain read -> shift -> write, or an inter-array move),
//   2. the scouting CIM read (multi-row activation over the operand rows,
//      optionally chaining the column's latched row-buffer bit), and
//   3. lazy materialization: results stay in the row buffer and are only
//      written to a cell when the buffer slot is about to be reused (or
//      the value is needed elsewhere / is a graph output).
//
// Cross-cluster instruction merging (Sec. 3.3.3) is performed inline:
// an emitted instruction is folded into its immediate predecessor whenever
// the two are a same-array read pair with identical activated rows (or a
// same-row write pair) on disjoint columns — exactly the legality the
// paper's dependency check enforces, restricted to adjacent instructions,
// where it is trivially safe.
#pragma once

#include "ir/graph.h"
#include "isa/target.h"
#include "mapping/placement.h"
#include "mapping/program.h"

namespace sherlock::mapping {

struct CodegenOptions {
  /// Fold compatible adjacent instructions (the optimized flow's merging;
  /// disabled for the naive baseline and the A2 ablation).
  bool mergeInstructions = true;

  /// Write every operation result to its cell immediately (paper
  /// Algorithm 1's straightforward per-node instruction generation). The
  /// optimized flow instead keeps results in the row buffer and writes
  /// lazily — a large share of its read/write reduction. Eager mode also
  /// disables row-buffer operand chaining.
  bool eagerWriteback = false;

  /// Keep movement-created operand copies for later consumers in the same
  /// column. Algorithm 1's layout only records each value's home, so the
  /// naive baseline re-fetches an out-of-column operand on every use —
  /// the paper's "significant data duplication and/or movement".
  bool reuseMovedCopies = true;

  /// Wave ordering of the scheduler: BLevel (default, Kwok & Ahmad
  /// priorities — deepest remaining work first) or TLevel (ASAP depth).
  /// Both orders respect dependencies; the ablation bench compares them.
  enum class WaveOrder { BLevel, TLevel };
  WaveOrder waveOrder = WaveOrder::BLevel;

  /// Fault-aware cell allocation (see mapping/layout.h): every Layout
  /// allocation — preloads, spills, movement targets — avoids faulty
  /// cells and falls back to the spare-row repair region.
  FaultPolicy faults;
};

/// Generates the instruction stream for `g` mapped per `plan` onto
/// `target`. Throws MappingError if the program cannot be laid out.
Program generateCode(const ir::Graph& g, const isa::TargetSpec& target,
                     const PlacementPlan& plan,
                     const CodegenOptions& options = {});

}  // namespace sherlock::mapping
