#include "mapping/program_analysis.h"

#include <sstream>

#include "support/diagnostics.h"

namespace sherlock::mapping {

double ProgramAnalysis::meanColumnsPerAccess() const {
  long accesses = 0, columns = 0;
  for (size_t k = 0; k < columnWidthHistogram.size(); ++k) {
    accesses += columnWidthHistogram[k];
    columns += static_cast<long>(k) * columnWidthHistogram[k];
  }
  return accesses == 0 ? 0.0
                       : static_cast<double>(columns) /
                             static_cast<double>(accesses);
}

std::string ProgramAnalysis::toString() const {
  std::ostringstream os;
  os << "instructions: " << instructions << " (reads " << reads << " ["
     << cimReads << " CIM, " << plainReads << " plain], writes " << writes
     << ", shifts " << shifts << ", moves " << moves << ", xfers " << xfers
     << ")\n";
  os << "activated rows:";
  for (size_t k = 0; k < activatedRowsHistogram.size(); ++k)
    if (activatedRowsHistogram[k])
      os << " " << k << "r x" << activatedRowsHistogram[k];
  os << "\nmerge width:";
  for (size_t k = 0; k < columnWidthHistogram.size(); ++k)
    if (columnWidthHistogram[k])
      os << " " << k << "c x" << columnWidthHistogram[k];
  os << "\nop mix:";
  for (const auto& [name, count] : opMix) os << " " << name << " x" << count;
  os << "\nchained operands: " << chainedOperands
     << ", total shift distance: " << totalShiftDistance << "\n";
  os << "per array:";
  for (const auto& [array, count] : perArray)
    os << " [" << array << "] x" << count;
  os << "\nmean columns/access: " << meanColumnsPerAccess() << "\n";
  return os.str();
}

ProgramAnalysis analyzeProgram(const Program& program) {
  ProgramAnalysis a;
  auto bump = [](std::vector<long>& hist, size_t k) {
    if (hist.size() <= k) hist.resize(k + 1, 0);
    hist[k]++;
  };

  for (const auto& inst : program.instructions) {
    a.instructions++;
    a.perArray[inst.arrayId]++;
    switch (inst.kind) {
      case isa::InstKind::Read: {
        a.reads++;
        if (inst.colOps.empty())
          a.plainReads++;
        else
          a.cimReads++;
        bump(a.activatedRowsHistogram, inst.rows.size());
        bump(a.columnWidthHistogram, inst.columns.size());
        for (size_t i = 0; i < inst.colOps.size(); ++i) {
          a.opMix[ir::opName(inst.colOps[i])]++;
          if (i < inst.chainsBuffer.size() && inst.chainsBuffer[i])
            a.chainedOperands++;
        }
        break;
      }
      case isa::InstKind::Write:
        a.writes++;
        bump(a.columnWidthHistogram, inst.columns.size());
        break;
      case isa::InstKind::Shift:
        a.shifts++;
        a.totalShiftDistance += inst.shiftDistance;
        break;
      case isa::InstKind::Move:
        a.moves++;
        break;
      case isa::InstKind::Xfer:
        a.xfers++;
        // Transfers land on the destination array's port as well.
        a.perArray[inst.dstArray]++;
        break;
    }
  }
  return a;
}

}  // namespace sherlock::mapping
