// Post-compilation analysis of CIM programs: instruction mix, merging
// width and multi-row-activation histograms, and per-array utilization.
// Used by the sherlockc driver and the evaluation harnesses to explain
// where a mapping's cost comes from.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "mapping/program.h"

namespace sherlock::mapping {

struct ProgramAnalysis {
  long instructions = 0;
  long reads = 0;        ///< all read forms
  long cimReads = 0;     ///< reads carrying column ops
  long plainReads = 0;
  long writes = 0;
  long shifts = 0;
  long moves = 0;
  long xfers = 0;

  /// histogram[k] = reads activating exactly k rows (k = 0 for pure
  /// row-buffer ops).
  std::vector<long> activatedRowsHistogram;

  /// histogram[k] = instructions touching exactly k columns (merge width).
  std::vector<long> columnWidthHistogram;

  /// Per op mnemonic: how many column-ops use it.
  std::map<std::string, long> opMix;

  long chainedOperands = 0;
  long totalShiftDistance = 0;

  /// Instructions per array id.
  std::map<int, long> perArray;

  /// Mean columns per read/write (the merging payoff).
  double meanColumnsPerAccess() const;

  /// Renders a multi-line human-readable report.
  std::string toString() const;
};

/// Analyzes a compiled program's instruction stream.
ProgramAnalysis analyzeProgram(const Program& program);

}  // namespace sherlock::mapping
