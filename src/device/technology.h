// NVM technology models.
//
// The paper characterizes cells with SPICE (STT-MRAM: SPITT compact model,
// 20 nm radius, RA = 7.5 Ohm um^2, TMR 150%; ReRAM: JART VCM v1b read
// variability). We substitute analytic models: nominal LRS/HRS resistances
// derived from those parameters with relative process-variation sigmas in
// the published range. The derived conductance distributions drive the
// scouting-logic decision-failure model (reliability.h) and cell-level
// latency/energy constants drive the array model.
#pragma once

#include <string>

namespace sherlock::device {

enum class Technology { SttMram, ReRam, Pcm };

/// Returns "STT-MRAM", "ReRAM" or "PCM".
std::string technologyName(Technology tech);

/// Cell-level electrical and timing/energy parameters of one technology.
struct TechnologyParams {
  Technology tech = Technology::ReRam;
  std::string name;

  // --- Resistive states (process-variation statistics) -------------------
  double lrsOhm = 0;     ///< nominal low-resistance state ('0' per paper)
  double lrsSigma = 0;   ///< relative sigma of the LRS distribution
  double hrsOhm = 0;     ///< nominal high-resistance state ('1' per paper)
  double hrsSigma = 0;   ///< relative sigma of the HRS distribution
  /// Reference/comparator imperfection, expressed as a fraction of the
  /// single-cell sense gap (G_LRS - G_HRS).
  double referenceSigmaFrac = 0;

  // --- Cell timing & energy ---------------------------------------------
  double readLatencyNs = 0;    ///< cell sensing time (scouting read)
  double writeLatencyNs = 0;   ///< cell programming (SET/RESET or STT switch)
  double readEnergyPj = 0;     ///< per activated cell per read
  double writeEnergyPj = 0;    ///< per written cell

  /// Maximum simultaneously activatable rows the sensing scheme supports.
  int maxActivatedRows = 8;

  /// Cell footprint in F^2 (F = feature size); crossbar ReRAM/PCM reach
  /// 4F^2, 1T1MTJ STT-MRAM needs a larger access transistor.
  double cellAreaF2 = 4.0;

  double lrsConductance() const { return 1.0 / lrsOhm; }
  double hrsConductance() const { return 1.0 / hrsOhm; }
  /// Single-cell sense gap in conductance.
  double senseGap() const { return lrsConductance() - hrsConductance(); }
  /// HRS/LRS resistance ratio (2.5 for TMR 150%).
  double resistanceRatio() const { return hrsOhm / lrsOhm; }

  /// STT-MRAM per Table 1: 20 nm radius, RA = 7.5 Ohm um^2 -> R_LRS =
  /// RA / (pi r^2) ~ 5.97 kOhm; TMR 150% -> R_HRS = 2.5 R_LRS. Fast,
  /// low-energy writes; small sense gap.
  static TechnologyParams sttMram();

  /// ReRAM per JART VCM-style filamentary cell: R_LRS ~ 10 kOhm with the
  /// high read variability the model family reports, R_HRS ~ 500 kOhm.
  /// Slow, energy-hungry SET/RESET; wide sense gap.
  static TechnologyParams reRam();

  /// PCM (extension beyond the paper's two technologies): very wide gap,
  /// slowest writes.
  static TechnologyParams pcm();

  static TechnologyParams forTechnology(Technology tech);

  /// Derates this model to an operating temperature (nominal models are
  /// characterized at 27 C, Table 1). Thermal fluctuation widens the
  /// resistance distributions and the reference noise roughly linearly in
  /// absolute temperature; the nominal resistances stay (first-order
  /// calibrated references track the mean shift).
  TechnologyParams atTemperature(double celsius) const;
};

}  // namespace sherlock::device
