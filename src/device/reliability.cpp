#include "device/reliability.h"

#include <algorithm>
#include <cmath>

#include "support/diagnostics.h"
#include "support/stats.h"

namespace sherlock::device {

SenseKind senseKindOf(ir::OpKind op) {
  switch (op) {
    case ir::OpKind::And:
    case ir::OpKind::Nand:
      return SenseKind::And;
    case ir::OpKind::Or:
    case ir::OpKind::Nor:
      return SenseKind::Or;
    case ir::OpKind::Xor:
    case ir::OpKind::Xnor:
      return SenseKind::Xor;
    case ir::OpKind::Not:
    case ir::OpKind::Copy:
      return SenseKind::PlainRead;
  }
  throw InternalError("senseKindOf: invalid OpKind");
}

namespace {

/// Conductance sigma of the state with k LRS cells out of r, including the
/// reference/comparator noise term.
double stateSigma(const TechnologyParams& t, int k, int r) {
  double sL = t.lrsSigma * t.lrsConductance();
  double sH = t.hrsSigma * t.hrsConductance();
  double sRef = t.referenceSigmaFrac * t.senseGap();
  return std::sqrt(k * sL * sL + (r - k) * sH * sH + sRef * sRef);
}

/// Misdecision probability of the boundary between states k and k+1. The
/// reference is placed optimally between the two Gaussians (equalizing the
/// two error tails), giving P = Q(dG / (sigma_k + sigma_{k+1})) — the
/// standard two-distribution discrimination bound.
double boundaryFailure(const TechnologyParams& t, int k, int r) {
  double gap = t.senseGap();
  return normalTail(gap / (stateSigma(t, k, r) + stateSigma(t, k + 1, r)));
}

}  // namespace

double decisionFailureProbability(const TechnologyParams& tech,
                                  SenseKind kind, int rows) {
  checkArg(rows >= 1, "rows must be >= 1");
  checkArg(rows <= tech.maxActivatedRows,
           strCat(rows, " activated rows exceed the technology cap of ",
                  tech.maxActivatedRows));
  if (kind != SenseKind::PlainRead)
    checkArg(rows >= 2, "logic sensing requires >= 2 rows");

  double p = 0.0;
  switch (kind) {
    case SenseKind::PlainRead:
      // Distinguish one LRS cell from one HRS cell (full gap, midway ref).
      p = boundaryFailure(tech, 0, 1);
      break;
    case SenseKind::And:
      // Output flips only across the boundary all-HRS (k=0) vs k=1.
      p = boundaryFailure(tech, 0, rows);
      break;
    case SenseKind::Or:
      // Output flips only across the boundary k=r-1 vs all-LRS (k=r).
      p = boundaryFailure(tech, rows - 1, rows);
      break;
    case SenseKind::Xor:
      // Parity flips across every adjacent boundary; multi-level sensing
      // must resolve all of them.
      for (int k = 0; k < rows; ++k) p += boundaryFailure(tech, k, rows);
      break;
  }
  return std::clamp(p, 0.0, 0.5);
}

double decisionFailureProbability(const TechnologyParams& tech,
                                  ir::OpKind op, int rows) {
  return decisionFailureProbability(tech, senseKindOf(op), rows);
}

void AppFailureAccumulator::add(double pdf) { addMany(pdf, 1); }

void AppFailureAccumulator::addMany(double pdf, long count) {
  checkArg(pdf >= 0.0 && pdf <= 1.0, "P_DF must be in [0, 1]");
  checkArg(count >= 0, "count must be non-negative");
  if (count == 0) return;
  // log1p keeps precision for pdf down to ~1e-300.
  logSurvival_ += static_cast<double>(count) * std::log1p(-pdf);
  count_ += count;
}

double AppFailureAccumulator::probability() const {
  return -std::expm1(logSurvival_);
}

}  // namespace sherlock::device
