#include "device/faultmap.h"

#include <iomanip>
#include <sstream>

#include "support/diagnostics.h"
#include "support/parallel.h"

namespace sherlock::device {

namespace {

/// [0, 1) uniform from one splitmix64 draw: 53 high bits -> double.
double uniformDraw(uint64_t seed, uint64_t cell) {
  return static_cast<double>(deriveSeed(seed, cell) >> 11) * 0x1.0p-53;
}

void checkDims(int numArrays, int rows, int cols) {
  checkArg(numArrays > 0, "fault map needs at least one array");
  checkArg(rows > 0 && cols > 0, "fault map needs positive dimensions");
}

void checkOptions(const FaultMapOptions& o) {
  checkArg(o.stuckDensity >= 0.0 && o.stuckDensity <= 1.0,
           "stuck-cell density must be in [0, 1]");
  checkArg(o.weakDensity >= 0.0 && o.weakDensity <= 1.0,
           "weak-cell density must be in [0, 1]");
  checkArg(o.stuckDensity + o.weakDensity <= 1.0,
           "stuck + weak density must not exceed 1");
  checkArg(o.weakPdfMultiplier >= 1.0,
           "weak-cell P_DF multiplier must be >= 1");
  checkArg(o.rowWriteBudget >= 0, "row write budget must be >= 0");
}

}  // namespace

const char* cellFaultName(CellFault fault) {
  switch (fault) {
    case CellFault::None: return "none";
    case CellFault::StuckAtLrs: return "stuck-lrs";
    case CellFault::StuckAtHrs: return "stuck-hrs";
    case CellFault::Weak: return "weak";
  }
  throw InternalError("unknown CellFault");
}

FaultMap::FaultMap(int numArrays, int rows, int cols, FaultMapOptions options)
    : numArrays_(numArrays), rows_(rows), cols_(cols), options_(options) {
  checkDims(numArrays, rows, cols);
  checkOptions(options);
  faults_.assign(static_cast<size_t>(totalCells()), 0);
  rowWrites_.assign(static_cast<size_t>(numArrays_) * rows_, 0);
}

FaultMap FaultMap::generate(int numArrays, int rows, int cols,
                            const FaultMapOptions& options) {
  FaultMap map(numArrays, rows, cols, options);
  const double stuck = options.stuckDensity;
  const double weak = options.weakDensity;
  if (stuck <= 0.0 && weak <= 0.0) return map;
  const long total = map.totalCells();
  for (long cell = 0; cell < total; ++cell) {
    double u = uniformDraw(options.seed, static_cast<uint64_t>(cell));
    CellFault fault = CellFault::None;
    if (u < stuck * 0.5) fault = CellFault::StuckAtLrs;
    else if (u < stuck) fault = CellFault::StuckAtHrs;
    else if (u < stuck + weak) fault = CellFault::Weak;
    map.faults_[static_cast<size_t>(cell)] = static_cast<uint8_t>(fault);
  }
  return map;
}

size_t FaultMap::cellIndex(int arrayId, int row, int col) const {
  SHERLOCK_ASSERT(arrayId >= 0 && arrayId < numArrays_ && row >= 0 &&
                      row < rows_ && col >= 0 && col < cols_,
                  "fault map cell (", arrayId, ", ", row, ", ", col,
                  ") out of bounds");
  return (static_cast<size_t>(arrayId) * rows_ + row) * cols_ + col;
}

size_t FaultMap::rowIndex(int arrayId, int row) const {
  SHERLOCK_ASSERT(arrayId >= 0 && arrayId < numArrays_ && row >= 0 &&
                      row < rows_,
                  "fault map row (", arrayId, ", ", row, ") out of bounds");
  return static_cast<size_t>(arrayId) * rows_ + row;
}

CellFault FaultMap::faultAt(int arrayId, int row, int col) const {
  return static_cast<CellFault>(faults_[cellIndex(arrayId, row, col)]);
}

bool FaultMap::isStuck(int arrayId, int row, int col) const {
  CellFault f = faultAt(arrayId, row, col);
  return f == CellFault::StuckAtLrs || f == CellFault::StuckAtHrs;
}

bool FaultMap::isWeak(int arrayId, int row, int col) const {
  return faultAt(arrayId, row, col) == CellFault::Weak;
}

bool FaultMap::isUsable(int arrayId, int row, int col) const {
  return faultAt(arrayId, row, col) == CellFault::None;
}

bool FaultMap::stuckBit(int arrayId, int row, int col) const {
  CellFault f = faultAt(arrayId, row, col);
  SHERLOCK_ASSERT(f == CellFault::StuckAtLrs || f == CellFault::StuckAtHrs,
                  "stuckBit on non-stuck cell (", arrayId, ", ", row, ", ",
                  col, ")");
  return f == CellFault::StuckAtHrs;
}

void FaultMap::setFault(int arrayId, int row, int col, CellFault fault) {
  faults_[cellIndex(arrayId, row, col)] = static_cast<uint8_t>(fault);
}

void FaultMap::packRowMasks(int arrayId, int row, uint64_t* stuck,
                            uint64_t* stuckHrs, uint64_t* weak) const {
  const size_t colWords = (static_cast<size_t>(cols_) + 63) / 64;
  for (size_t w = 0; w < colWords; ++w) stuck[w] = stuckHrs[w] = weak[w] = 0;
  const uint8_t* rowFaults = &faults_[cellIndex(arrayId, row, 0)];
  for (int c = 0; c < cols_; ++c) {
    auto f = static_cast<CellFault>(rowFaults[c]);
    if (f == CellFault::None) continue;
    uint64_t bit = uint64_t{1} << (c & 63);
    if (f == CellFault::Weak) {
      weak[c >> 6] |= bit;
    } else {
      stuck[c >> 6] |= bit;
      if (f == CellFault::StuckAtHrs) stuckHrs[c >> 6] |= bit;
    }
  }
}

long FaultMap::noteRowWrite(int arrayId, int row) {
  long& count = rowWrites_[rowIndex(arrayId, row)];
  ++count;
  if (options_.rowWriteBudget > 0 && count == options_.rowWriteBudget + 1) {
    for (int col = 0; col < cols_; ++col) {
      size_t ci = cellIndex(arrayId, row, col);
      CellFault f = static_cast<CellFault>(faults_[ci]);
      if (f == CellFault::None || f == CellFault::Weak)
        faults_[ci] = static_cast<uint8_t>(CellFault::StuckAtLrs);
    }
  }
  return count;
}

long FaultMap::rowWrites(int arrayId, int row) const {
  return rowWrites_[rowIndex(arrayId, row)];
}

bool FaultMap::rowWornOut(int arrayId, int row) const {
  return options_.rowWriteBudget > 0 &&
         rowWrites_[rowIndex(arrayId, row)] > options_.rowWriteBudget;
}

int FaultMap::usableCellsInColumn(int arrayId, int col, int rowLimit) const {
  checkArg(rowLimit >= 0 && rowLimit <= rows_,
           "usableCellsInColumn row limit out of range");
  int usable = 0;
  for (int row = 0; row < rowLimit; ++row)
    if (isUsable(arrayId, row, col)) ++usable;
  return usable;
}

long FaultMap::stuckCellCount() const {
  long count = 0;
  for (uint8_t f : faults_) {
    CellFault fault = static_cast<CellFault>(f);
    if (fault == CellFault::StuckAtLrs || fault == CellFault::StuckAtHrs)
      ++count;
  }
  return count;
}

long FaultMap::weakCellCount() const {
  long count = 0;
  for (uint8_t f : faults_)
    if (static_cast<CellFault>(f) == CellFault::Weak) ++count;
  return count;
}

std::string FaultMap::toText() const {
  std::ostringstream out;
  out << "sherlock-faultmap v1\n"
      << "arrays " << numArrays_ << " rows " << rows_ << " cols " << cols_
      << "\n";
  out << std::setprecision(17)  // lossless double round-trip
      << "seed " << options_.seed << " stuck-density " << options_.stuckDensity
      << " weak-density " << options_.weakDensity << " weak-mult "
      << options_.weakPdfMultiplier << " row-write-budget "
      << options_.rowWriteBudget << "\n";
  out << "# stuck " << stuckCellCount() << " weak " << weakCellCount()
      << " of " << totalCells() << " cells\n";
  for (int a = 0; a < numArrays_; ++a)
    for (int r = 0; r < rows_; ++r)
      for (int c = 0; c < cols_; ++c) {
        CellFault f = faultAt(a, r, c);
        if (f == CellFault::None) continue;
        out << cellFaultName(f) << " " << a << " " << r << " " << c << "\n";
      }
  for (int a = 0; a < numArrays_; ++a)
    for (int r = 0; r < rows_; ++r)
      if (rowWrites_[rowIndex(a, r)] > 0)
        out << "wear " << a << " " << r << " " << rowWrites_[rowIndex(a, r)]
            << "\n";
  out << "end\n";
  return out.str();
}

FaultMap FaultMap::fromText(const std::string& text) {
  std::istringstream in(text);
  auto fail = [](const std::string& why) -> void {
    throw Error(strCat("malformed fault map: ", why));
  };

  std::string line;
  if (!std::getline(in, line) || line != "sherlock-faultmap v1")
    fail("missing 'sherlock-faultmap v1' header");

  auto expect = [&](std::istream& is, const std::string& token) {
    std::string word;
    if (!(is >> word) || word != token)
      fail(strCat("expected '", token, "', got '", word, "'"));
  };

  int numArrays = 0, rows = 0, cols = 0;
  {
    if (!std::getline(in, line)) fail("missing dimensions line");
    std::istringstream ls(line);
    expect(ls, "arrays");
    ls >> numArrays;
    expect(ls, "rows");
    ls >> rows;
    expect(ls, "cols");
    if (!(ls >> cols)) fail("bad dimensions line");
  }

  FaultMapOptions options;
  {
    if (!std::getline(in, line)) fail("missing options line");
    std::istringstream ls(line);
    expect(ls, "seed");
    ls >> options.seed;
    expect(ls, "stuck-density");
    ls >> options.stuckDensity;
    expect(ls, "weak-density");
    ls >> options.weakDensity;
    expect(ls, "weak-mult");
    ls >> options.weakPdfMultiplier;
    expect(ls, "row-write-budget");
    if (!(ls >> options.rowWriteBudget)) fail("bad options line");
  }

  FaultMap map(numArrays, rows, cols, options);
  bool sawEnd = false;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    if (line == "end") {
      sawEnd = true;
      break;
    }
    std::istringstream ls(line);
    std::string kind;
    ls >> kind;
    if (kind == "wear") {
      int a = 0, r = 0;
      long count = 0;
      if (!(ls >> a >> r >> count) || a < 0 || a >= numArrays || r < 0 ||
          r >= rows || count < 0)
        fail(strCat("bad wear line '", line, "'"));
      map.rowWrites_[map.rowIndex(a, r)] = count;
      continue;
    }
    CellFault fault;
    if (kind == cellFaultName(CellFault::StuckAtLrs))
      fault = CellFault::StuckAtLrs;
    else if (kind == cellFaultName(CellFault::StuckAtHrs))
      fault = CellFault::StuckAtHrs;
    else if (kind == cellFaultName(CellFault::Weak))
      fault = CellFault::Weak;
    else {
      fail(strCat("unknown fault kind '", kind, "'"));
      break;  // unreachable; silences -Wmaybe-uninitialized
    }
    int a = 0, r = 0, c = 0;
    if (!(ls >> a >> r >> c) || a < 0 || a >= numArrays || r < 0 ||
        r >= rows || c < 0 || c >= cols)
      fail(strCat("bad fault line '", line, "'"));
    map.setFault(a, r, c, fault);
  }
  if (!sawEnd) fail("missing 'end' terminator");
  return map;
}

}  // namespace sherlock::device
