#include "device/technology.h"

#include <cmath>
#include <utility>

#include "support/diagnostics.h"

namespace sherlock::device {

std::string technologyName(Technology tech) {
  switch (tech) {
    case Technology::SttMram: return "STT-MRAM";
    case Technology::ReRam: return "ReRAM";
    case Technology::Pcm: return "PCM";
  }
  throw InternalError("technologyName: invalid Technology");
}

TechnologyParams TechnologyParams::sttMram() {
  TechnologyParams p;
  p.tech = Technology::SttMram;
  p.name = technologyName(p.tech);
  // RA = 7.5 Ohm um^2 over a pi * (20 nm)^2 junction.
  double areaUm2 = M_PI * 0.020 * 0.020;
  p.lrsOhm = 7.5 / areaUm2;       // ~5.97 kOhm
  p.hrsOhm = p.lrsOhm * 2.5;      // TMR 150%
  p.lrsSigma = 0.068;             // MTJ resistance process variation
  p.hrsSigma = 0.068;
  p.referenceSigmaFrac = 0.02;
  p.readLatencyNs = 3.0;
  p.writeLatencyNs = 10.0;        // STT switching pulse
  p.readEnergyPj = 0.03;
  p.writeEnergyPj = 0.6;
  p.maxActivatedRows = 8;
  p.cellAreaF2 = 36.0;            // 1T1MTJ with a sized access transistor
  return p;
}

TechnologyParams TechnologyParams::reRam() {
  TechnologyParams p;
  p.tech = Technology::ReRam;
  p.name = technologyName(p.tech);
  p.lrsOhm = 10e3;
  p.hrsOhm = 500e3;               // filamentary HRS, wide gap
  p.lrsSigma = 0.05;              // JART VCM read variability (LRS)
  p.hrsSigma = 0.35;              // HRS far more variable (HRS instability)
  p.referenceSigmaFrac = 0.02;
  p.readLatencyNs = 3.0;
  p.writeLatencyNs = 100.0;       // SET/RESET pulse
  p.readEnergyPj = 0.04;
  p.writeEnergyPj = 4.0;
  p.maxActivatedRows = 8;
  p.cellAreaF2 = 4.0;             // crossbar
  return p;
}

TechnologyParams TechnologyParams::pcm() {
  TechnologyParams p;
  p.tech = Technology::Pcm;
  p.name = technologyName(p.tech);
  p.lrsOhm = 20e3;
  p.hrsOhm = 2e6;
  p.lrsSigma = 0.10;
  p.hrsSigma = 0.40;
  p.referenceSigmaFrac = 0.03;
  p.readLatencyNs = 5.0;
  p.writeLatencyNs = 150.0;       // RESET (melt-quench) dominated
  p.readEnergyPj = 0.05;
  p.writeEnergyPj = 8.0;
  p.maxActivatedRows = 8;
  p.cellAreaF2 = 6.0;
  return p;
}

TechnologyParams TechnologyParams::atTemperature(double celsius) const {
  checkArg(celsius > -273.15 && celsius <= 400.0,
           "temperature out of the modeled range");
  constexpr double kNominalK = 273.15 + 27.0;
  double scale = std::sqrt((273.15 + celsius) / kNominalK);
  TechnologyParams p = *this;
  p.lrsSigma *= scale;
  p.hrsSigma *= scale;
  p.referenceSigmaFrac *= scale;
  p.name = strCat(name, " @", celsius, "C");
  return p;
}

TechnologyParams TechnologyParams::forTechnology(Technology tech) {
  switch (tech) {
    case Technology::SttMram: return sttMram();
    case Technology::ReRam: return reRam();
    case Technology::Pcm: return pcm();
  }
  throw InternalError("forTechnology: invalid Technology");
}

}  // namespace sherlock::device
