// Persistent cell-fault model for NVM arrays.
//
// The reliability model (reliability.h) covers *transient* scouting-logic
// decision failures; real ReRAM/STT-MRAM arrays additionally suffer
// *persistent* defects that no retry can fix at the faulty cell:
//
//  * stuck-at cells — a forming failure or a broken access device pins the
//    cell in LRS (reads as logic '0') or HRS (reads as logic '1'); writes
//    have no effect,
//  * weak cells — marginal filaments / low-TMR junctions whose resistance
//    distributions are degraded: reads still work, but every scouting
//    operation sensing the cell sees its decision-failure probability
//    inflated by a per-map multiplier,
//  * endurance wear-out — SET/RESET cycling budgets are finite; a per-row
//    write counter converts the row's cells to stuck faults once the
//    budget is exhausted.
//
// A FaultMap is generated deterministically from (seed, densities): every
// cell's fate is a pure function of the seed and its global index, so the
// same options always produce byte-identical maps regardless of who
// generates them (compiler, simulator, bench worker). Maps serialize to a
// line-oriented text format for tooling (sherlockc --emit faultmap) and
// round-trip losslessly.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sherlock::device {

enum class CellFault : uint8_t {
  None = 0,
  StuckAtLrs,  ///< pinned low-resistance: reads as logic '0'
  StuckAtHrs,  ///< pinned high-resistance: reads as logic '1'
  Weak,        ///< functional but with inflated decision-failure rate
};

/// Stable name used by the text serialization ("stuck-lrs", ...).
const char* cellFaultName(CellFault fault);

struct FaultMapOptions {
  uint64_t seed = 1;
  /// Fraction of cells stuck at a fixed state (split evenly LRS/HRS).
  double stuckDensity = 0.0;
  /// Fraction of cells that are weak (elevated per-op P_DF).
  double weakDensity = 0.0;
  /// P_DF multiplier applied per weak cell sensed by a scouting read.
  double weakPdfMultiplier = 8.0;
  /// Writes a row survives before wearing out; 0 = unlimited endurance.
  long rowWriteBudget = 0;

  bool operator==(const FaultMapOptions&) const = default;
};

class FaultMap {
 public:
  /// Fault-free map of the given dimensions (faults can be hand-placed
  /// with setFault; options record provenance for serialization).
  FaultMap(int numArrays, int rows, int cols, FaultMapOptions options = {});

  /// Deterministic generation: cell (a, r, c) draws its fate from
  /// splitmix64(seed, globalCellIndex), so equal (dimensions, options)
  /// yield byte-identical maps in any generation order.
  static FaultMap generate(int numArrays, int rows, int cols,
                           const FaultMapOptions& options);

  int numArrays() const { return numArrays_; }
  int rows() const { return rows_; }
  int cols() const { return cols_; }
  const FaultMapOptions& options() const { return options_; }

  CellFault faultAt(int arrayId, int row, int col) const;
  bool isStuck(int arrayId, int row, int col) const;
  bool isWeak(int arrayId, int row, int col) const;
  bool isUsable(int arrayId, int row, int col) const;
  /// Forced logical bit of a stuck cell: LRS reads as '0', HRS as '1'
  /// (the paper's state/logic convention). Requires isStuck.
  bool stuckBit(int arrayId, int row, int col) const;

  /// Hand-places a fault (tests, wear modeling, field calibration data).
  void setFault(int arrayId, int row, int col, CellFault fault);

  /// Fills packed column masks for one row, `ceil(cols / 64)` words each:
  /// bit c of `stuck` / `weak` is set when cell (arrayId, row, c) carries
  /// that fault; bit c of `stuckHrs` is set when the cell is stuck-at-HRS
  /// (reads as logic '1'). The simulator precomputes these per touched
  /// row so its read loop tests a bit instead of re-deriving a cell index
  /// and switching on the fault byte for every (row, column, lane-word).
  void packRowMasks(int arrayId, int row, uint64_t* stuck,
                    uint64_t* stuckHrs, uint64_t* weak) const;

  // --- Endurance -------------------------------------------------------
  /// Records one programming pulse on a row and returns the new count.
  /// With a positive rowWriteBudget, the write that exceeds the budget
  /// converts every still-functional cell of the row to StuckAtLrs
  /// (wear-out in filamentary cells typically ends SET-stuck).
  long noteRowWrite(int arrayId, int row);
  long rowWrites(int arrayId, int row) const;
  bool rowWornOut(int arrayId, int row) const;

  // --- Aggregates ------------------------------------------------------
  /// Cells of the column that placement can use: rows below `rowLimit`
  /// whose cell carries no fault.
  int usableCellsInColumn(int arrayId, int col, int rowLimit) const;
  long stuckCellCount() const;
  long weakCellCount() const;
  long totalCells() const {
    return static_cast<long>(numArrays_) * rows_ * cols_;
  }

  // --- Serialization ---------------------------------------------------
  /// Line-oriented text form: a header with dimensions and generation
  /// options, one line per fault, one line per worn row counter.
  std::string toText() const;
  /// Inverse of toText; throws Error on malformed input.
  static FaultMap fromText(const std::string& text);

  bool operator==(const FaultMap&) const = default;

 private:
  size_t cellIndex(int arrayId, int row, int col) const;
  size_t rowIndex(int arrayId, int row) const;

  int numArrays_ = 0;
  int rows_ = 0;
  int cols_ = 0;
  FaultMapOptions options_;
  std::vector<uint8_t> faults_;
  std::vector<long> rowWrites_;
};

}  // namespace sherlock::device
