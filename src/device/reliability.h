// Scouting-logic decision-failure model (paper Sec. 2.2 and Fig. 2).
//
// A scouting read activates r rows of one column; the sensed quantity is
// the combined conductance of the r cells, compared against one or more
// reference levels. With k cells in LRS the nominal conductance is
//   mu_k = k * G_LRS + (r - k) * G_HRS,
// and process variation gives it variance
//   sigma_k^2 = k * s_LRS^2 + (r - k) * s_HRS^2 (+ reference noise).
// Adjacent states are separated by the fixed gap dG = G_LRS - G_HRS while
// their sigmas grow with the number of activated rows — this is exactly the
// sense-margin erosion of Fig. 2(b).
//
// Which state boundaries the comparator must resolve depends on the logic
// op: AND only separates the all-HRS state from its neighbor (low absolute
// conductance, small sigmas -> robust); OR separates the all-LRS state
// (largest sigmas -> weaker); XOR needs every adjacent pair (multi-level
// parity sensing -> weakest, especially on low-TMR STT-MRAM).
//
// P_DF of one operation sums, over the required boundaries, the Gaussian
// discrimination bound Q(dG / (sigma_k + sigma_{k+1})) with the reference
// placed optimally between the adjacent state distributions.
#pragma once

#include "device/technology.h"
#include "ir/ops.h"

namespace sherlock::device {

/// Sensing class of an operation. Inverted variants (NAND/NOR/XNOR) share
/// the sensing of their base op — the output inverter is digital and
/// error-free.
enum class SenseKind { And, Or, Xor, PlainRead };

/// Sensing class used by a DAG op. Not/Copy are plain single-row reads.
SenseKind senseKindOf(ir::OpKind op);

/// Probability that a scouting read of `rows` activated rows with sensing
/// class `kind` produces a wrong output bit (per bit-slice decision).
/// `rows` must be >= 1 (PlainRead) or >= 2 (logic ops) and is capped by the
/// technology's maxActivatedRows. Result is clamped to [0, 0.5].
double decisionFailureProbability(const TechnologyParams& tech,
                                  SenseKind kind, int rows);

/// Convenience overload dispatching on the IR op kind.
double decisionFailureProbability(const TechnologyParams& tech,
                                  ir::OpKind op, int rows);

/// Probability of at least one failure across an application:
/// P_app = 1 - prod_i (1 - P_DF_i). Accumulate in log space via this
/// helper to stay accurate for tiny probabilities.
class AppFailureAccumulator {
 public:
  /// Registers one executed operation with failure probability `pdf`.
  void add(double pdf);

  /// Registers `count` operations of identical failure probability.
  void addMany(double pdf, long count);

  /// Current P_app.
  double probability() const;

  /// Number of registered operations.
  long operationCount() const { return count_; }

 private:
  double logSurvival_ = 0.0;  // sum of log(1 - P_DF_i)
  long count_ = 0;
};

}  // namespace sherlock::device
