#include "arraymodel/grid.h"

#include <cstdlib>

#include "support/diagnostics.h"

namespace sherlock::arraymodel {

int GridConfig::hopDistance(int a, int b) const {
  checkArg(configured(), "hop distance on an unconfigured grid");
  checkArg(a >= 0 && a < cells() && b >= 0 && b < cells(),
           strCat("array ids (", a, ", ", b, ") outside the ", toString(),
                  " grid"));
  int dr = a / cols - b / cols;
  int dc = a % cols - b % cols;
  return std::abs(dr) + std::abs(dc);
}

GridConfig GridConfig::parse(const std::string& text) {
  size_t x = text.find_first_of("xX");
  checkArg(x != std::string::npos && x > 0 && x + 1 < text.size(),
           strCat("grid '", text, "' is not of the form RxC"));
  GridConfig g;
  size_t pos = 0;
  g.rows = std::stoi(text.substr(0, x), &pos);
  checkArg(pos == x, strCat("grid rows '", text.substr(0, x),
                            "' is not a number"));
  std::string colsText = text.substr(x + 1);
  g.cols = std::stoi(colsText, &pos);
  checkArg(pos == colsText.size(),
           strCat("grid cols '", colsText, "' is not a number"));
  checkArg(g.rows > 0 && g.cols > 0,
           strCat("grid '", text, "' must have positive dimensions"));
  return g;
}

std::string GridConfig::toString() const {
  if (!configured()) return "unconfigured";
  return strCat(rows, "x", cols);
}

}  // namespace sherlock::arraymodel
