#include "arraymodel/array_model.h"

#include <cmath>

#include "support/diagnostics.h"

namespace sherlock::arraymodel {

namespace {
// Interconnect constants, loosely calibrated against NVSim trends for
// 22 nm-class peripheral CMOS.
constexpr double kDecodeBaseNs = 0.20;
constexpr double kDecodePerBitNs = 0.05;
constexpr double kWordlinePerCellNs = 0.0005;
constexpr double kBitlinePerCellNs = 0.0010;
constexpr double kShiftBaseNs = 0.50;
// Serial row-buffer rotation: one pipeline step per position (the
// instruction carries an explicit distance operand).
constexpr double kShiftPerStepNs = 0.20;

constexpr double kWordlineEnergyPerCellPj = 0.0001;  // per slice
constexpr double kBitlineEnergyPerCellPj = 0.0002;   // per slice
constexpr double kSenseAmpEnergyPj = 0.02;           // per column per slice
constexpr double kShiftEnergyPerStepPj = 0.001;      // per slice
}  // namespace

ArrayCostModel::ArrayCostModel(ArrayGeometry geometry,
                               device::TechnologyParams tech)
    : geometry_(geometry), tech_(std::move(tech)) {
  checkArg(geometry_.rows > 0 && geometry_.cols > 0,
           "array dimensions must be positive");
  checkArg(geometry_.dataWidthBits > 0, "data width must be positive");
}

double ArrayCostModel::decodeLatencyNs() const {
  return kDecodeBaseNs +
         kDecodePerBitNs * std::log2(static_cast<double>(geometry_.rows));
}

double ArrayCostModel::wordlineLatencyNs() const {
  return kWordlinePerCellNs * geometry_.cols;
}

double ArrayCostModel::bitlineLatencyNs() const {
  return kBitlinePerCellNs * geometry_.rows;
}

double ArrayCostModel::readLatencyNs() const {
  return decodeLatencyNs() + wordlineLatencyNs() + bitlineLatencyNs() +
         tech_.readLatencyNs;
}

double ArrayCostModel::writeIssueLatencyNs() const {
  return decodeLatencyNs() + wordlineLatencyNs();
}

double ArrayCostModel::writeCompletionNs() const {
  return writeIssueLatencyNs() + tech_.writeLatencyNs;
}

double ArrayCostModel::shiftLatencyNs(int distance) const {
  return kShiftBaseNs + kShiftPerStepNs * std::abs(distance);
}

double ArrayCostModel::readEnergyPj(int rowCount, int colCount) const {
  double perSlice =
      rowCount * kWordlineEnergyPerCellPj * geometry_.cols +
      colCount * (kBitlineEnergyPerCellPj * geometry_.rows +
                  kSenseAmpEnergyPj + rowCount * tech_.readEnergyPj);
  return perSlice * geometry_.dataWidthBits;
}

double ArrayCostModel::writeEnergyPj(int colCount) const {
  double perSlice = kWordlineEnergyPerCellPj * geometry_.cols +
                    colCount * (kBitlineEnergyPerCellPj * geometry_.rows +
                                tech_.writeEnergyPj);
  return perSlice * geometry_.dataWidthBits;
}

double ArrayCostModel::shiftEnergyPj(int distance) const {
  return kShiftEnergyPerStepPj * std::abs(distance) *
         geometry_.dataWidthBits;
}

namespace {
constexpr double kFeatureNm = 22.0;
// Peripheral block sizes in F^2 per unit (decoder per row, sense amp +
// op mux + buffer latch + write driver per column).
constexpr double kDecoderPerRowF2 = 60.0;
constexpr double kColumnPeripheryF2 = 900.0;
}  // namespace

double ArrayCostModel::cellAreaMm2() const {
  double f2Mm2 = kFeatureNm * kFeatureNm * 1e-12;  // one F^2 in mm^2
  return static_cast<double>(geometry_.rows) * geometry_.cols *
         tech_.cellAreaF2 * f2Mm2;
}

double ArrayCostModel::peripheryAreaMm2() const {
  double f2Mm2 = kFeatureNm * kFeatureNm * 1e-12;
  return (geometry_.rows * kDecoderPerRowF2 +
          geometry_.cols * kColumnPeripheryF2) *
         f2Mm2;
}

double ArrayCostModel::totalAreaMm2() const {
  return (cellAreaMm2() + peripheryAreaMm2()) *
         (static_cast<double>(geometry_.dataWidthBits));
}

}  // namespace sherlock::arraymodel
