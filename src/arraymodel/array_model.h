// Analytic array-level latency/energy model (NVSim stand-in).
//
// The paper derives array-level numbers from NVSim for square arrays of
// 128/256/512/1024 with data widths 512/1024/2048/4096 bits. We model the
// same hierarchy analytically: address decoding grows with log2(N),
// wordline/bitline RC and switching energy grow linearly with N, and the
// cell-level sensing/programming terms come from the technology model.
// The bulk data width multiplies per-cell energies (all slices switch in
// lockstep) but not latency (slices are parallel).
#pragma once

#include "device/technology.h"

namespace sherlock::arraymodel {

/// Geometry of one CIM array (plus the lockstepped bulk dimension).
struct ArrayGeometry {
  int rows = 0;
  int cols = 0;
  int dataWidthBits = 0;  ///< bulk slices operating in lockstep

  /// Paper Table 1 pairing: square N x N array with data width 4N.
  static ArrayGeometry square(int n) { return {n, n, 4 * n}; }
};

/// Per-instruction latency (ns) and energy (pJ) for one array.
class ArrayCostModel {
 public:
  ArrayCostModel(ArrayGeometry geometry, device::TechnologyParams tech);

  const ArrayGeometry& geometry() const { return geometry_; }
  const device::TechnologyParams& technology() const { return tech_; }

  // --- Latency (ns) -------------------------------------------------------

  /// CPU-side dispatch of one CIM instruction (1 GHz in-order core).
  double dispatchLatencyNs() const { return 1.0; }

  /// Scouting/plain read: decode + wordline + bitline development + sense.
  /// Latency is independent of the number of sensed columns (parallel
  /// sense amps) and of the activated-row count (parallel wordlines).
  double readLatencyNs() const;

  /// Issue latency of a (posted) write: decode + wordline. The cell
  /// programming time is exposed only on read-after-write, see
  /// writeCompletionNs.
  double writeIssueLatencyNs() const;

  /// Time from write issue until the written cells can be sensed again.
  double writeCompletionNs() const;

  /// Row-buffer rotation by `distance` positions.
  double shiftLatencyNs(int distance) const;

  // --- Energy (pJ), aggregated over all bulk slices -----------------------

  /// CIM/plain read activating `rowCount` rows and sensing `colCount`
  /// columns.
  double readEnergyPj(int rowCount, int colCount) const;

  /// Write of `colCount` cells in one row.
  double writeEnergyPj(int colCount) const;

  double shiftEnergyPj(int distance) const;

  /// CPU-side issue energy per instruction.
  double dispatchEnergyPj() const { return 5.0; }

  // --- Area (mm^2) --------------------------------------------------------

  /// Cell-array footprint of one slice (rows x cols cells at the
  /// technology's F^2 cell size, 22 nm feature size).
  double cellAreaMm2() const;

  /// Peripheral footprint of one slice: row decoder, per-column sense
  /// amplifiers with op multiplexers, row-buffer logic and write drivers.
  double peripheryAreaMm2() const;

  /// Total footprint including all bulk slices.
  double totalAreaMm2() const;

 private:
  double decodeLatencyNs() const;
  double wordlineLatencyNs() const;
  double bitlineLatencyNs() const;

  ArrayGeometry geometry_;
  device::TechnologyParams tech_;
};

}  // namespace sherlock::arraymodel
