// Physical arrangement of the arrays a multi-array target exposes: an
// R x C mesh with a shared inter-array bus whose transfer cost scales
// with the Manhattan hop distance between the two endpoint arrays.
//
// An unconfigured grid (rows == 0) preserves the historical flat-bus
// model: every inter-array transfer costs exactly one hop at the default
// per-hop latency/energy, regardless of the array ids involved. This is
// what keeps single-array and legacy multi-array programs bit- and
// cost-identical when no --grid is given.
#pragma once

#include <string>

namespace sherlock::arraymodel {

struct GridConfig {
  /// Mesh dimensions. rows == 0 means "unconfigured": the target's
  /// arrays sit on a flat bus (every transfer is one hop).
  int rows = 0;
  int cols = 0;

  /// Per-hop bus cost. The defaults reproduce the pre-grid flat bus
  /// (10 ns / 0.5 pJ-per-bit per transfer).
  double hopLatencyNs = 10.0;
  double hopEnergyPerBitPj = 0.5;

  bool configured() const { return rows > 0 && cols > 0; }

  /// Arrays the mesh addresses (0 when unconfigured).
  int cells() const { return configured() ? rows * cols : 0; }

  /// Manhattan distance between two array ids laid out row-major on the
  /// mesh; 0 for a == b. Throws Error when either id is outside the
  /// mesh or the grid is unconfigured.
  int hopDistance(int a, int b) const;

  /// Parses "RxC" (e.g. "2x4"). Throws Error on malformed input.
  static GridConfig parse(const std::string& text);

  /// "RxC" rendering ("unconfigured" when rows == 0).
  std::string toString() const;

  bool operator==(const GridConfig& other) const = default;
};

}  // namespace sherlock::arraymodel
