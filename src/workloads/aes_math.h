// Host-side AES-128 reference arithmetic: GF(2^8) field operations, the
// S-box, key expansion, and block encryption. Used (a) as ground truth for
// the bit-sliced circuit and (b) to precompute round keys, which enter the
// CIM kernel as bit-sliced inputs (key expansion runs on the host, as is
// standard for in-memory AES accelerators).
#pragma once

#include <array>
#include <cstdint>

namespace sherlock::workloads::aes {

/// Multiplication in GF(2^8) modulo the AES polynomial x^8+x^4+x^3+x+1.
uint8_t gfMul(uint8_t a, uint8_t b);

/// Multiplicative inverse in the AES field; gfInv(0) == 0 by convention.
uint8_t gfInv(uint8_t a);

/// The AES S-box: affine(gfInv(x)).
uint8_t sbox(uint8_t x);

/// The inverse S-box: gfInv(invAffine(x)).
uint8_t invSbox(uint8_t x);

/// AES-128 key expansion: 11 round keys of 16 bytes.
std::array<std::array<uint8_t, 16>, 11> expandKey(
    const std::array<uint8_t, 16>& key);

/// Reference AES-128 block encryption (optionally reduced rounds, for
/// circuit tests; rounds in [1, 10], 10 = full AES).
std::array<uint8_t, 16> encryptBlock(const std::array<uint8_t, 16>& plain,
                                     const std::array<uint8_t, 16>& key,
                                     int rounds = 10);

/// Reference AES-128 block decryption (inverse cipher, matching
/// encryptBlock's reduced-round semantics).
std::array<uint8_t, 16> decryptBlock(const std::array<uint8_t, 16>& cipher,
                                     const std::array<uint8_t, 16>& key,
                                     int rounds = 10);

}  // namespace sherlock::workloads::aes
