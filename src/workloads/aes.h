// Bit-sliced AES-128 encryption kernel (paper Sec. 4 "Encryption",
// Usuba-style bitslicing): every bulk element is one 16-byte block; the
// 128 state bits arrive as slices, round keys are expanded on the host and
// fed as bit-sliced inputs, and the whole cipher becomes a bulk-bitwise
// DAG.
//
// SubBytes uses a composite-field (tower) implementation derived at graph
// construction time: GF(2^8) is decomposed as GF((2^4)^2), the isomorphism
// is found by root search against the AES polynomial, and inversion in the
// tower costs a handful of bit-sliced GF(2^4) multiplications. The
// resulting circuit is verified against the table S-box in the test suite.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "ir/graph.h"

namespace sherlock::workloads {

struct AesSpec {
  /// Cipher rounds; 10 is full AES-128, smaller values give reduced-round
  /// variants for fast tests.
  int rounds = 10;
};

/// Builds the bit-sliced AES DAG. Inputs: "pt.k" (k in [0,128), plaintext
/// bit k = bit (k%8) of state byte (k/8), bytes in FIPS column-major
/// order) and "rk<r>.k" for r in [0, rounds]. Outputs: the 128 ciphertext
/// slices, in bit order.
ir::Graph buildAes(const AesSpec& spec = {});

/// Builds the bit-sliced AES inverse cipher (decryption). Inputs: "ct.k"
/// plus the same "rk<r>.k" round keys as buildAes. Outputs: the 128
/// plaintext slices.
ir::Graph buildAesDecrypt(const AesSpec& spec = {});

/// Packs up to 64 blocks into bit-sliced input words for the "pt.*"
/// inputs (block b occupies bulk lane b).
std::map<std::string, uint64_t> packPlaintext(
    const std::vector<std::array<uint8_t, 16>>& blocks);

/// Same layout for the inverse cipher's "ct.*" inputs.
std::map<std::string, uint64_t> packCiphertext(
    const std::vector<std::array<uint8_t, 16>>& blocks);

/// Packs the expanded round keys of `key` into "rk<r>.*" input words
/// (every bulk lane uses the same key).
std::map<std::string, uint64_t> packRoundKeys(
    const std::array<uint8_t, 16>& key, int rounds);

/// Extracts block `lane` from 128 output slice words (inverse of
/// packPlaintext's layout).
std::array<uint8_t, 16> unpackState(const std::vector<uint64_t>& slices,
                                    int lane);

}  // namespace sherlock::workloads
