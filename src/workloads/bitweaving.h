// BitWeaving-V column-scan kernel (paper Sec. 3.1 running example and
// Sec. 4 "Database" benchmark): evaluates the predicate
// `value BETWEEN c1 AND c2` over a vertically bit-sliced column. Each
// slice v.i carries bit i of every value in the processed segment; the
// predicate constants are delivered bit-sliced as well (the paper's
// cut1[]/cut2[] arrays), so the kernel is pure bulk-bitwise logic.
#pragma once

#include "ir/graph.h"

namespace sherlock::workloads {

struct BitweavingSpec {
  /// Bits per column value (the loop trip count of Fig. 3a).
  int bits = 16;
  /// Independent column segments scanned by one kernel instance. A real
  /// scan covers the whole column: segment s contributes its own value
  /// slices while the predicate constants c1/c2 are shared across all
  /// segments (the data-reuse/duplication tension the mappers face).
  int segments = 1;
};

/// Builds the BETWEEN kernel DAG. Inputs: "v<s>.i" per segment s plus the
/// shared "c1.i", "c2.i" for i in [0, bits); segment 0 uses plain "v.i".
/// Outputs: one slice per segment, 1 where c1 <= v <= c2.
ir::Graph buildBitweaving(const BitweavingSpec& spec = {});

/// Reference predicate on plain integers (for tests).
bool bitweavingReference(uint64_t v, uint64_t c1, uint64_t c2, int bits);

/// Column-scan comparison predicates beyond BETWEEN (all bit-serial,
/// BitWeaving-V style).
enum class Predicate { Lt, Le, Gt, Ge, Eq, Ne, Between };

std::string predicateName(Predicate p);

struct PredicateScanSpec {
  Predicate predicate = Predicate::Lt;
  int bits = 16;
  int segments = 1;
};

/// Builds a single-constant predicate scan `v <op> c1` (BETWEEN also uses
/// "c2.*"). Inputs follow buildBitweaving's naming; one output slice per
/// segment.
ir::Graph buildPredicateScan(const PredicateScanSpec& spec);

/// Reference for buildPredicateScan on plain integers.
bool predicateReference(Predicate p, uint64_t v, uint64_t c1, uint64_t c2,
                        int bits);

}  // namespace sherlock::workloads
