#include "workloads/bitslice_builder.h"

#include <algorithm>

#include "support/diagnostics.h"

namespace sherlock::workloads {

using ir::NodeId;
using ir::OpKind;

NodeId BitsliceBuilder::zero() {
  if (zero_ == ir::kInvalidNode) zero_ = g_.addConst(false);
  return zero_;
}

NodeId BitsliceBuilder::one() {
  if (one_ == ir::kInvalidNode) one_ = g_.addConst(true);
  return one_;
}

Word BitsliceBuilder::input(const std::string& name, int bits) {
  checkArg(bits > 0, "input width must be positive");
  Word w;
  w.reserve(static_cast<size_t>(bits));
  for (int i = 0; i < bits; ++i)
    w.push_back(g_.addInput(strCat(name, ".", i)));
  return w;
}

Word BitsliceBuilder::constant(uint64_t value, int bits) {
  checkArg(bits > 0 && bits <= 64, "constant width must be in [1, 64]");
  Word w;
  for (int i = 0; i < bits; ++i)
    w.push_back(((value >> i) & 1) ? one() : zero());
  return w;
}

std::pair<Word, Word> BitsliceBuilder::aligned(const Word& a,
                                               const Word& b) {
  size_t width = std::max(a.size(), b.size());
  Word pa = a, pb = b;
  while (pa.size() < width) pa.push_back(zero());
  while (pb.size() < width) pb.push_back(zero());
  return {std::move(pa), std::move(pb)};
}

Word BitsliceBuilder::bitwiseAnd(const Word& a, const Word& b) {
  auto [pa, pb] = aligned(a, b);
  Word r;
  for (size_t i = 0; i < pa.size(); ++i)
    r.push_back(g_.addOp(OpKind::And, {pa[i], pb[i]}));
  return r;
}

Word BitsliceBuilder::bitwiseOr(const Word& a, const Word& b) {
  auto [pa, pb] = aligned(a, b);
  Word r;
  for (size_t i = 0; i < pa.size(); ++i)
    r.push_back(g_.addOp(OpKind::Or, {pa[i], pb[i]}));
  return r;
}

Word BitsliceBuilder::bitwiseXor(const Word& a, const Word& b) {
  auto [pa, pb] = aligned(a, b);
  Word r;
  for (size_t i = 0; i < pa.size(); ++i)
    r.push_back(g_.addOp(OpKind::Xor, {pa[i], pb[i]}));
  return r;
}

Word BitsliceBuilder::bitwiseNot(const Word& a) {
  Word r;
  for (NodeId s : a) r.push_back(g_.addOp(OpKind::Not, {s}));
  return r;
}

Word BitsliceBuilder::add(const Word& a, const Word& b) {
  auto [pa, pb] = aligned(a, b);
  Word sum;
  NodeId carry = zero();
  for (size_t i = 0; i < pa.size(); ++i) {
    NodeId axb = g_.addOp(OpKind::Xor, {pa[i], pb[i]});
    sum.push_back(g_.addOp(OpKind::Xor, {axb, carry}));
    NodeId gen = g_.addOp(OpKind::And, {pa[i], pb[i]});
    NodeId prop = g_.addOp(OpKind::And, {axb, carry});
    carry = g_.addOp(OpKind::Or, {gen, prop});
  }
  sum.push_back(carry);
  return sum;
}

Word BitsliceBuilder::sub(const Word& a, const Word& b) {
  // a - b = a + ~b + 1 over width max+1, keeping the sign slice on top.
  size_t width = std::max(a.size(), b.size()) + 1;
  Word pa = zeroExtend(a, static_cast<int>(width));
  Word pb = zeroExtend(b, static_cast<int>(width));
  Word diff;
  NodeId carry = one();
  for (size_t i = 0; i < width; ++i) {
    NodeId nb = g_.addOp(OpKind::Not, {pb[i]});
    NodeId axb = g_.addOp(OpKind::Xor, {pa[i], nb});
    diff.push_back(g_.addOp(OpKind::Xor, {axb, carry}));
    NodeId gen = g_.addOp(OpKind::And, {pa[i], nb});
    NodeId prop = g_.addOp(OpKind::And, {axb, carry});
    carry = g_.addOp(OpKind::Or, {gen, prop});
  }
  return diff;
}

Word BitsliceBuilder::abs(const Word& a) {
  checkArg(!a.empty(), "abs of empty word");
  NodeId sign = a.back();
  // |a| = (a XOR sign) + sign  (conditional two's-complement negation).
  // The sign slice XORs with itself, which is constant zero — emit the
  // constant directly (XOR nodes with duplicate operands are unmappable).
  Word flipped;
  for (size_t i = 0; i + 1 < a.size(); ++i)
    flipped.push_back(g_.addOp(OpKind::Xor, {a[i], sign}));
  flipped.push_back(zero());
  Word signWord{sign};
  Word r = add(flipped, signWord);
  r.resize(a.size());  // |a| of an n-bit signed value fits n bits
  return r;
}

Word BitsliceBuilder::shiftLeft(const Word& a, int amount) {
  checkArg(amount >= 0, "negative shift");
  Word r;
  for (int i = 0; i < amount; ++i) r.push_back(zero());
  for (NodeId s : a) r.push_back(s);
  return r;
}

Word BitsliceBuilder::zeroExtend(const Word& a, int bits) {
  checkArg(static_cast<size_t>(bits) >= a.size(), "cannot shrink word");
  Word r = a;
  while (r.size() < static_cast<size_t>(bits)) r.push_back(zero());
  return r;
}

Word BitsliceBuilder::signExtend(const Word& a, int bits) {
  checkArg(!a.empty(), "sign extend of empty word");
  checkArg(static_cast<size_t>(bits) >= a.size(), "cannot shrink word");
  Word r = a;
  while (r.size() < static_cast<size_t>(bits)) r.push_back(a.back());
  return r;
}

NodeId BitsliceBuilder::greaterEqual(const Word& a, const Word& b) {
  auto [pa, pb] = aligned(a, b);
  // MSB-first serial compare: gt accumulates "already greater", eq tracks
  // "still equal".
  NodeId gt = zero();
  NodeId eq = one();
  for (size_t i = pa.size(); i-- > 0;) {
    NodeId nb = g_.addOp(OpKind::Not, {pb[i]});
    NodeId here = g_.addOp(OpKind::And, {pa[i], nb});
    NodeId gated = g_.addOp(OpKind::And, {eq, here});
    gt = g_.addOp(OpKind::Or, {gt, gated});
    NodeId same = g_.addOp(OpKind::Xnor, {pa[i], pb[i]});
    eq = g_.addOp(OpKind::And, {eq, same});
  }
  return g_.addOp(OpKind::Or, {gt, eq});
}

NodeId BitsliceBuilder::lessEqual(const Word& a, const Word& b) {
  return greaterEqual(b, a);
}

NodeId BitsliceBuilder::equal(const Word& a, const Word& b) {
  auto [pa, pb] = aligned(a, b);
  NodeId eq = one();
  for (size_t i = 0; i < pa.size(); ++i) {
    NodeId same = g_.addOp(OpKind::Xnor, {pa[i], pb[i]});
    eq = g_.addOp(OpKind::And, {eq, same});
  }
  return eq;
}

}  // namespace sherlock::workloads
