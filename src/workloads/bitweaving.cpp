#include "workloads/bitweaving.h"

#include "support/diagnostics.h"
#include "workloads/bitslice_builder.h"

namespace sherlock::workloads {

ir::Graph buildBitweaving(const BitweavingSpec& spec) {
  checkArg(spec.bits >= 1 && spec.bits <= 64, "bits must be in [1, 64]");
  checkArg(spec.segments >= 1, "segments must be >= 1");
  ir::Graph g;
  BitsliceBuilder b(g);

  Word c1 = b.input("c1", spec.bits);
  Word c2 = b.input("c2", spec.bits);
  for (int s = 0; s < spec.segments; ++s) {
    Word v = b.input(s == 0 ? "v" : strCat("v", s), spec.bits);
    // v >= c1 and v <= c2, both as MSB-first bit-serial scans (Fig. 3a).
    ir::NodeId ge = b.greaterEqual(v, c1);
    ir::NodeId le = b.lessEqual(v, c2);
    g.markOutput(g.addOp(ir::OpKind::And, {ge, le},
                         strCat("between", s)));
  }
  return g;
}

std::string predicateName(Predicate p) {
  switch (p) {
    case Predicate::Lt: return "LT";
    case Predicate::Le: return "LE";
    case Predicate::Gt: return "GT";
    case Predicate::Ge: return "GE";
    case Predicate::Eq: return "EQ";
    case Predicate::Ne: return "NE";
    case Predicate::Between: return "BETWEEN";
  }
  throw InternalError("predicateName: invalid Predicate");
}

ir::Graph buildPredicateScan(const PredicateScanSpec& spec) {
  checkArg(spec.bits >= 1 && spec.bits <= 64, "bits must be in [1, 64]");
  checkArg(spec.segments >= 1, "segments must be >= 1");
  if (spec.predicate == Predicate::Between) {
    BitweavingSpec bw;
    bw.bits = spec.bits;
    bw.segments = spec.segments;
    return buildBitweaving(bw);
  }

  ir::Graph g;
  BitsliceBuilder b(g);
  Word c1 = b.input("c1", spec.bits);
  for (int s = 0; s < spec.segments; ++s) {
    Word v = b.input(s == 0 ? "v" : strCat("v", s), spec.bits);
    ir::NodeId result;
    switch (spec.predicate) {
      case Predicate::Lt:
        result = g.addOp(ir::OpKind::Not, {b.greaterEqual(v, c1)});
        break;
      case Predicate::Le:
        result = b.lessEqual(v, c1);
        break;
      case Predicate::Gt:
        result = g.addOp(ir::OpKind::Not, {b.lessEqual(v, c1)});
        break;
      case Predicate::Ge:
        result = b.greaterEqual(v, c1);
        break;
      case Predicate::Eq:
        result = b.equal(v, c1);
        break;
      case Predicate::Ne:
        result = g.addOp(ir::OpKind::Not, {b.equal(v, c1)});
        break;
      case Predicate::Between:
        throw InternalError("handled above");
    }
    g.markOutput(result);
  }
  return g;
}

bool predicateReference(Predicate p, uint64_t v, uint64_t c1, uint64_t c2,
                        int bits) {
  uint64_t mask = bits >= 64 ? ~uint64_t{0} : ((uint64_t{1} << bits) - 1);
  v &= mask;
  c1 &= mask;
  c2 &= mask;
  switch (p) {
    case Predicate::Lt: return v < c1;
    case Predicate::Le: return v <= c1;
    case Predicate::Gt: return v > c1;
    case Predicate::Ge: return v >= c1;
    case Predicate::Eq: return v == c1;
    case Predicate::Ne: return v != c1;
    case Predicate::Between: return c1 <= v && v <= c2;
  }
  throw InternalError("predicateReference: invalid Predicate");
}

bool bitweavingReference(uint64_t v, uint64_t c1, uint64_t c2, int bits) {
  uint64_t mask = bits >= 64 ? ~uint64_t{0} : ((uint64_t{1} << bits) - 1);
  v &= mask;
  c1 &= mask;
  c2 &= mask;
  return c1 <= v && v <= c2;
}

}  // namespace sherlock::workloads
