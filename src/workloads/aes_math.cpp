#include "workloads/aes_math.h"

#include "support/diagnostics.h"

namespace sherlock::workloads::aes {

uint8_t gfMul(uint8_t a, uint8_t b) {
  uint8_t r = 0;
  while (b) {
    if (b & 1) r ^= a;
    bool carry = a & 0x80;
    a = static_cast<uint8_t>(a << 1);
    if (carry) a ^= 0x1b;
    b >>= 1;
  }
  return r;
}

uint8_t gfInv(uint8_t a) {
  if (a == 0) return 0;
  // a^254 via square-and-multiply.
  uint8_t result = 1;
  uint8_t base = a;
  int e = 254;
  while (e) {
    if (e & 1) result = gfMul(result, base);
    base = gfMul(base, base);
    e >>= 1;
  }
  return result;
}

uint8_t sbox(uint8_t x) {
  uint8_t v = gfInv(x);
  uint8_t r = 0;
  for (int i = 0; i < 8; ++i) {
    int bit = ((v >> i) ^ (v >> ((i + 4) % 8)) ^ (v >> ((i + 5) % 8)) ^
               (v >> ((i + 6) % 8)) ^ (v >> ((i + 7) % 8))) &
              1;
    r |= static_cast<uint8_t>(bit << i);
  }
  return r ^ 0x63;
}

uint8_t invSbox(uint8_t x) {
  // Inverse affine layer: bit i of t = x_{i+2} ^ x_{i+5} ^ x_{i+7} ^ c
  // with constant 0x05, then field inversion.
  uint8_t t = 0;
  for (int i = 0; i < 8; ++i) {
    int bit = ((x >> ((i + 2) % 8)) ^ (x >> ((i + 5) % 8)) ^
               (x >> ((i + 7) % 8))) &
              1;
    t |= static_cast<uint8_t>(bit << i);
  }
  return gfInv(t ^ 0x05);
}

std::array<std::array<uint8_t, 16>, 11> expandKey(
    const std::array<uint8_t, 16>& key) {
  std::array<std::array<uint8_t, 16>, 11> roundKeys;
  // Words w[0..43], 4 bytes each.
  uint8_t w[44][4];
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 4; ++j)
      w[i][j] = key[static_cast<size_t>(4 * i + j)];
  uint8_t rcon = 1;
  for (int i = 4; i < 44; ++i) {
    uint8_t temp[4];
    for (int j = 0; j < 4; ++j) temp[j] = w[i - 1][j];
    if (i % 4 == 0) {
      // RotWord + SubWord + Rcon.
      uint8_t t0 = temp[0];
      temp[0] = static_cast<uint8_t>(sbox(temp[1]) ^ rcon);
      temp[1] = sbox(temp[2]);
      temp[2] = sbox(temp[3]);
      temp[3] = sbox(t0);
      rcon = gfMul(rcon, 2);
    }
    for (int j = 0; j < 4; ++j)
      w[i][j] = static_cast<uint8_t>(w[i - 4][j] ^ temp[j]);
  }
  for (int r = 0; r < 11; ++r)
    for (int i = 0; i < 4; ++i)
      for (int j = 0; j < 4; ++j)
        roundKeys[static_cast<size_t>(r)][static_cast<size_t>(4 * i + j)] =
            w[4 * r + i][j];
  return roundKeys;
}

namespace {

void addRoundKey(std::array<uint8_t, 16>& s,
                 const std::array<uint8_t, 16>& rk) {
  for (size_t i = 0; i < 16; ++i) s[i] ^= rk[i];
}

void subBytes(std::array<uint8_t, 16>& s) {
  for (auto& b : s) b = sbox(b);
}

void shiftRows(std::array<uint8_t, 16>& s) {
  // State layout: s[4*col + row] (column-major FIPS-197 order).
  std::array<uint8_t, 16> t = s;
  for (int row = 0; row < 4; ++row)
    for (int col = 0; col < 4; ++col)
      s[static_cast<size_t>(4 * col + row)] =
          t[static_cast<size_t>(4 * ((col + row) % 4) + row)];
}

void mixColumns(std::array<uint8_t, 16>& s) {
  for (int col = 0; col < 4; ++col) {
    uint8_t* c = &s[static_cast<size_t>(4 * col)];
    uint8_t a0 = c[0], a1 = c[1], a2 = c[2], a3 = c[3];
    c[0] = static_cast<uint8_t>(gfMul(a0, 2) ^ gfMul(a1, 3) ^ a2 ^ a3);
    c[1] = static_cast<uint8_t>(a0 ^ gfMul(a1, 2) ^ gfMul(a2, 3) ^ a3);
    c[2] = static_cast<uint8_t>(a0 ^ a1 ^ gfMul(a2, 2) ^ gfMul(a3, 3));
    c[3] = static_cast<uint8_t>(gfMul(a0, 3) ^ a1 ^ a2 ^ gfMul(a3, 2));
  }
}

void invSubBytes(std::array<uint8_t, 16>& s) {
  for (auto& b : s) b = invSbox(b);
}

void invShiftRows(std::array<uint8_t, 16>& s) {
  std::array<uint8_t, 16> t = s;
  for (int row = 0; row < 4; ++row)
    for (int col = 0; col < 4; ++col)
      s[static_cast<size_t>(4 * ((col + row) % 4) + row)] =
          t[static_cast<size_t>(4 * col + row)];
}

void invMixColumns(std::array<uint8_t, 16>& s) {
  for (int col = 0; col < 4; ++col) {
    uint8_t* c = &s[static_cast<size_t>(4 * col)];
    uint8_t a0 = c[0], a1 = c[1], a2 = c[2], a3 = c[3];
    c[0] = static_cast<uint8_t>(gfMul(a0, 14) ^ gfMul(a1, 11) ^
                                gfMul(a2, 13) ^ gfMul(a3, 9));
    c[1] = static_cast<uint8_t>(gfMul(a0, 9) ^ gfMul(a1, 14) ^
                                gfMul(a2, 11) ^ gfMul(a3, 13));
    c[2] = static_cast<uint8_t>(gfMul(a0, 13) ^ gfMul(a1, 9) ^
                                gfMul(a2, 14) ^ gfMul(a3, 11));
    c[3] = static_cast<uint8_t>(gfMul(a0, 11) ^ gfMul(a1, 13) ^
                                gfMul(a2, 9) ^ gfMul(a3, 14));
  }
}

}  // namespace

std::array<uint8_t, 16> decryptBlock(const std::array<uint8_t, 16>& cipher,
                                     const std::array<uint8_t, 16>& key,
                                     int rounds) {
  checkArg(rounds >= 1 && rounds <= 10, "rounds must be in [1, 10]");
  auto rk = expandKey(key);
  std::array<uint8_t, 16> s = cipher;
  addRoundKey(s, rk[static_cast<size_t>(rounds)]);
  invShiftRows(s);
  invSubBytes(s);
  for (int r = rounds - 1; r >= 1; --r) {
    addRoundKey(s, rk[static_cast<size_t>(r)]);
    invMixColumns(s);
    invShiftRows(s);
    invSubBytes(s);
  }
  addRoundKey(s, rk[0]);
  return s;
}

std::array<uint8_t, 16> encryptBlock(const std::array<uint8_t, 16>& plain,
                                     const std::array<uint8_t, 16>& key,
                                     int rounds) {
  checkArg(rounds >= 1 && rounds <= 10, "rounds must be in [1, 10]");
  auto rk = expandKey(key);
  std::array<uint8_t, 16> s = plain;
  addRoundKey(s, rk[0]);
  for (int r = 1; r < rounds; ++r) {
    subBytes(s);
    shiftRows(s);
    mixColumns(s);
    addRoundKey(s, rk[static_cast<size_t>(r)]);
  }
  subBytes(s);
  shiftRows(s);
  addRoundKey(s, rk[static_cast<size_t>(rounds)]);
  return s;
}

}  // namespace sherlock::workloads::aes
