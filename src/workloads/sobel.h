// Bit-sliced Sobel edge detection (paper Sec. 4 "Image processing",
// following the bit-sliced near-memory formulation of Joshi et al.):
// every bulk element is one pixel position; the nine 8-bit neighborhood
// pixels arrive as bit-sliced inputs, the kernel computes
// |Gx| + |Gy| >= threshold with ripple-carry bit-serial arithmetic, and
// emits one edge-mask slice.
//
//   Gx = (nw + 2w + sw) - (ne + 2e + se)
//   Gy = (nw + 2n + ne) - (sw + 2s + se)
#pragma once

#include <cstdint>

#include "ir/graph.h"

namespace sherlock::workloads {

struct SobelSpec {
  int pixelBits = 8;
  uint64_t threshold = 128;
  /// Output pixels computed per kernel instance: a horizontal strip of
  /// `width` sliding 3x3 windows over a 3 x (width + 2) pixel patch.
  /// Adjacent windows share six of their nine neighbors — the data reuse
  /// the optimized mapping exploits.
  int width = 1;
};

/// Builds the Sobel kernel DAG. Inputs: "p<r>_<c>.i" for rows r in [0, 3),
/// columns c in [0, width + 2), bit i in [0, pixelBits). Outputs: one
/// edge-mask slice per window position.
ir::Graph buildSobel(const SobelSpec& spec = {});

/// Reference on plain pixel values (for tests). Neighbor order:
/// nw, n, ne, w, e, sw, s, se.
bool sobelReference(const uint64_t neighbors[8], const SobelSpec& spec);

/// Input name of the patch pixel at (row, col): "p<row>_<col>".
std::string sobelPixelName(int row, int col);

}  // namespace sherlock::workloads
