// Bit-sliced arithmetic builder: constructs DAG circuits for multi-bit
// values represented as vectors of bulk slices (slice i = bit i of every
// element in the bulk dimension). Provides the word-level operators the
// workload kernels need — ripple-carry addition, two's-complement
// subtraction, absolute value, comparisons — all expanded into the bulk
// bitwise ops the CIM arrays execute.
#pragma once

#include <string>
#include <vector>

#include "ir/graph.h"

namespace sherlock::workloads {

/// A multi-bit bit-sliced value: slice(0) is the least significant bit.
using Word = std::vector<ir::NodeId>;

class BitsliceBuilder {
 public:
  explicit BitsliceBuilder(ir::Graph& g) : g_(g) {}

  ir::Graph& graph() { return g_; }

  /// Declares a `bits`-wide input word; slices are named
  /// "<name>.0" .. "<name>.<bits-1>".
  Word input(const std::string& name, int bits);

  /// A word holding the constant `value` in every bulk element.
  Word constant(uint64_t value, int bits);

  // --- slice-wise logic ---------------------------------------------------
  Word bitwiseAnd(const Word& a, const Word& b);
  Word bitwiseOr(const Word& a, const Word& b);
  Word bitwiseXor(const Word& a, const Word& b);
  Word bitwiseNot(const Word& a);

  // --- arithmetic (ripple carry) -------------------------------------------
  /// a + b, result width = max(width) + 1 (no overflow loss).
  Word add(const Word& a, const Word& b);

  /// a - b in two's complement; result width = max(width) + 1 with the top
  /// slice acting as the sign.
  Word sub(const Word& a, const Word& b);

  /// Absolute value of a two's-complement word (same width).
  Word abs(const Word& a);

  /// Doubles a word: logical shift left by one slice position (free —
  /// slices are renamed, matching the bit-sliced "2*p" idiom).
  Word shiftLeft(const Word& a, int amount);

  /// Zero/sign extension helpers.
  Word zeroExtend(const Word& a, int bits);
  Word signExtend(const Word& a, int bits);

  // --- comparisons (bit-serial, MSB first) ---------------------------------
  /// One slice: a >= b, unsigned.
  ir::NodeId greaterEqual(const Word& a, const Word& b);
  /// One slice: a <= b, unsigned.
  ir::NodeId lessEqual(const Word& a, const Word& b);
  /// One slice: a == b.
  ir::NodeId equal(const Word& a, const Word& b);

 private:
  ir::NodeId zero();
  ir::NodeId one();
  /// Pads both words to equal width with zero slices.
  std::pair<Word, Word> aligned(const Word& a, const Word& b);

  ir::Graph& g_;
  ir::NodeId zero_ = ir::kInvalidNode;
  ir::NodeId one_ = ir::kInvalidNode;
};

}  // namespace sherlock::workloads
