#include "workloads/sobel.h"

#include <cstdlib>

#include "support/diagnostics.h"
#include "workloads/bitslice_builder.h"

namespace sherlock::workloads {

std::string sobelPixelName(int row, int col) {
  return strCat("p", row, "_", col);
}

ir::Graph buildSobel(const SobelSpec& spec) {
  checkArg(spec.pixelBits >= 2 && spec.pixelBits <= 16,
           "pixelBits must be in [2, 16]");
  checkArg(spec.width >= 1, "width must be >= 1");
  ir::Graph g;
  BitsliceBuilder b(g);

  // The 3 x (width + 2) pixel patch; adjacent windows share pixels.
  std::vector<std::vector<Word>> patch(3);
  for (int r = 0; r < 3; ++r)
    for (int c = 0; c < spec.width + 2; ++c)
      patch[static_cast<size_t>(r)].push_back(
          b.input(sobelPixelName(r, c), spec.pixelBits));

  // Column/row sums; 2*mid is a free slice shift.
  auto sum3 = [&](const Word& a, const Word& mid, const Word& c) {
    return b.add(b.add(a, b.shiftLeft(mid, 1)), c);
  };

  for (int x = 0; x < spec.width; ++x) {
    const Word& nw = patch[0][static_cast<size_t>(x)];
    const Word& n = patch[0][static_cast<size_t>(x + 1)];
    const Word& ne = patch[0][static_cast<size_t>(x + 2)];
    const Word& w = patch[1][static_cast<size_t>(x)];
    const Word& e = patch[1][static_cast<size_t>(x + 2)];
    const Word& sw = patch[2][static_cast<size_t>(x)];
    const Word& s = patch[2][static_cast<size_t>(x + 1)];
    const Word& se = patch[2][static_cast<size_t>(x + 2)];

    Word left = sum3(nw, w, sw);
    Word right = sum3(ne, e, se);
    Word top = sum3(nw, n, ne);
    Word bottom = sum3(sw, s, se);

    Word gx = b.sub(left, right);
    Word gy = b.sub(top, bottom);
    Word mag = b.add(b.abs(gx), b.abs(gy));

    Word threshold =
        b.constant(spec.threshold, static_cast<int>(mag.size()));
    g.markOutput(b.greaterEqual(mag, threshold));
  }
  return g;
}

bool sobelReference(const uint64_t neighbors[8], const SobelSpec& spec) {
  int64_t nw = static_cast<int64_t>(neighbors[0]);
  int64_t n = static_cast<int64_t>(neighbors[1]);
  int64_t ne = static_cast<int64_t>(neighbors[2]);
  int64_t w = static_cast<int64_t>(neighbors[3]);
  int64_t e = static_cast<int64_t>(neighbors[4]);
  int64_t sw = static_cast<int64_t>(neighbors[5]);
  int64_t s = static_cast<int64_t>(neighbors[6]);
  int64_t se = static_cast<int64_t>(neighbors[7]);
  int64_t gx = (nw + 2 * w + sw) - (ne + 2 * e + se);
  int64_t gy = (nw + 2 * n + ne) - (sw + 2 * s + se);
  return std::abs(gx) + std::abs(gy) >=
         static_cast<int64_t>(spec.threshold);
}

}  // namespace sherlock::workloads
