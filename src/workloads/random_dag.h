// Parameterized random DAG generator for property-based testing and mapper
// scalability benchmarks: produces valid bulk-bitwise DAGs with a
// controllable size, operand fan-in, depth bias, and operation mix.
#pragma once

#include <cstdint>

#include "ir/graph.h"

namespace sherlock::workloads {

struct RandomDagSpec {
  int inputs = 8;
  int ops = 64;
  /// Maximum operands per op (>= 2); actual arity is sampled in
  /// [2, maxArity] (unary Not nodes are sampled separately).
  int maxArity = 2;
  /// Probability that an op is a unary NOT.
  double notProbability = 0.1;
  /// Locality bias in (0, 1]: operands are sampled from the most recent
  /// `locality` fraction of existing nodes, giving chain-like DAGs for
  /// small values and wide reuse-heavy DAGs for 1.0.
  double locality = 1.0;
  /// Include XOR ops (disable for graphs that must stay XOR-free).
  bool useXor = true;
  uint64_t seed = 7;
};

/// Builds a random DAG; every sink op node is marked as an output.
ir::Graph buildRandomDag(const RandomDagSpec& spec);

}  // namespace sherlock::workloads
