#include "workloads/aes.h"

#include <algorithm>

#include "support/diagnostics.h"
#include "workloads/aes_math.h"

namespace sherlock::workloads {

using ir::Graph;
using ir::NodeId;
using ir::OpKind;

namespace {

// ------------------------------------------------------------------------
// Host-side tower-field derivation: GF(2^8) ~= GF((2^4)^2).
// GF(2^4) = GF(2)[x]/(x^4 + x + 1); tower elements a*y + b are encoded as
// the byte (a << 4) | b with y^2 = y + lambda.
// ------------------------------------------------------------------------

uint8_t g16Mul(uint8_t a, uint8_t b) {
  uint8_t r = 0;
  for (int i = 0; i < 4; ++i) {
    if (b & 1) r ^= a;
    bool carry = a & 0x8;
    a = static_cast<uint8_t>((a << 1) & 0xf);
    if (carry) a ^= 0x3;  // x^4 = x + 1
    b >>= 1;
  }
  return r;
}

/// The tower structure: lambda, root of the AES polynomial, and the GF(2)
/// basis-change matrices (row i gives output bit i as an XOR of inputs).
struct Tower {
  uint8_t lambda = 0;
  std::array<uint8_t, 8> toTower{};    // AES bits -> tower bits
  std::array<uint8_t, 8> fromTower{};  // tower bits -> AES bits
  std::array<uint8_t, 8> fromTowerAffine{};  // tower bits -> S-box bits
  // Inverse S-box support: y -> tower(invAffine(y)) plus the constant
  // already folded through the matrix.
  std::array<uint8_t, 8> invAffineToTower{};
  uint8_t invAffineToTowerConst = 0;
};

/// Applies a GF(2) 8x8 row-mask matrix to a byte.
uint8_t applyMatrixByte(const std::array<uint8_t, 8>& m, uint8_t v) {
  uint8_t r = 0;
  for (int i = 0; i < 8; ++i)
    if (__builtin_parity(m[static_cast<size_t>(i)] & v))
      r |= static_cast<uint8_t>(1 << i);
  return r;
}

/// Row-mask matrix product: (a . b)(x) == a(b(x)).
std::array<uint8_t, 8> composeMatrices(const std::array<uint8_t, 8>& a,
                                       const std::array<uint8_t, 8>& b) {
  std::array<uint8_t, 8> out{};
  for (int i = 0; i < 8; ++i) {
    uint8_t row = 0;
    for (int k = 0; k < 8; ++k)
      if (a[static_cast<size_t>(i)] & (1 << k))
        row ^= b[static_cast<size_t>(k)];
    out[static_cast<size_t>(i)] = row;
  }
  return out;
}

uint8_t towerMul(uint8_t p, uint8_t q, uint8_t lambda) {
  uint8_t a = p >> 4, b = p & 0xf, c = q >> 4, d = q & 0xf;
  uint8_t ac = g16Mul(a, c);
  uint8_t hi = static_cast<uint8_t>(g16Mul(a, d) ^ g16Mul(b, c) ^ ac);
  uint8_t lo = static_cast<uint8_t>(g16Mul(b, d) ^ g16Mul(ac, lambda));
  return static_cast<uint8_t>((hi << 4) | lo);
}

uint8_t towerPow(uint8_t p, int e, uint8_t lambda) {
  uint8_t r = 1;
  while (e) {
    if (e & 1) r = towerMul(r, p, lambda);
    p = towerMul(p, p, lambda);
    e >>= 1;
  }
  return r;
}

/// Inverts a GF(2) 8x8 matrix via Gauss-Jordan elimination.
std::array<uint8_t, 8> invertMatrix(std::array<uint8_t, 8> m) {
  std::array<uint8_t, 8> inv{};
  for (int i = 0; i < 8; ++i) inv[static_cast<size_t>(i)] =
      static_cast<uint8_t>(1 << i);
  for (int col = 0; col < 8; ++col) {
    int pivot = -1;
    for (int row = col; row < 8 && pivot < 0; ++row)
      if (m[static_cast<size_t>(row)] & (1 << col)) pivot = row;
    checkArg(pivot >= 0, "singular basis-change matrix");
    std::swap(m[static_cast<size_t>(pivot)], m[static_cast<size_t>(col)]);
    std::swap(inv[static_cast<size_t>(pivot)],
              inv[static_cast<size_t>(col)]);
    for (int row = 0; row < 8; ++row) {
      if (row == col) continue;
      if (m[static_cast<size_t>(row)] & (1 << col)) {
        m[static_cast<size_t>(row)] ^= m[static_cast<size_t>(col)];
        inv[static_cast<size_t>(row)] ^= inv[static_cast<size_t>(col)];
      }
    }
  }
  return inv;
}

Tower deriveTower() {
  Tower t;
  // Lambda such that y^2 + y + lambda is irreducible over GF(2^4).
  for (uint8_t cand = 1; cand < 16 && t.lambda == 0; ++cand) {
    bool hasRoot = false;
    for (uint8_t v = 0; v < 16; ++v)
      if (static_cast<uint8_t>(g16Mul(v, v) ^ v ^ cand) == 0) hasRoot = true;
    if (!hasRoot) t.lambda = cand;
  }
  checkArg(t.lambda != 0, "no irreducible quadratic found");

  // Root of the AES polynomial x^8+x^4+x^3+x+1 in the tower field.
  uint8_t root = 0;
  for (int r = 2; r < 256 && root == 0; ++r) {
    uint8_t rv = static_cast<uint8_t>(r);
    uint8_t val = static_cast<uint8_t>(
        towerPow(rv, 8, t.lambda) ^ towerPow(rv, 4, t.lambda) ^
        towerPow(rv, 3, t.lambda) ^ rv ^ 1);
    if (val == 0) root = rv;
  }
  checkArg(root != 0, "AES polynomial has no root in the tower field");

  // Basis change: column i of the AES->tower matrix is root^i. Convert to
  // row-mask form (row j collects the j-th bit of each column).
  std::array<uint8_t, 8> columns{};
  for (int i = 0; i < 8; ++i)
    columns[static_cast<size_t>(i)] = towerPow(root, i, t.lambda);
  for (int rowBit = 0; rowBit < 8; ++rowBit) {
    uint8_t mask = 0;
    for (int colIdx = 0; colIdx < 8; ++colIdx)
      if (columns[static_cast<size_t>(colIdx)] & (1 << rowBit))
        mask |= static_cast<uint8_t>(1 << colIdx);
    t.toTower[static_cast<size_t>(rowBit)] = mask;
  }

  // Post matrix: AES affine layer composed with tower->AES basis change.
  t.fromTower = invertMatrix(t.toTower);
  std::array<uint8_t, 8> affine{};
  for (int i = 0; i < 8; ++i) {
    uint8_t mask = 0;
    for (int off : {0, 4, 5, 6, 7})
      mask |= static_cast<uint8_t>(1 << ((i + off) % 8));
    affine[static_cast<size_t>(i)] = mask;
  }
  t.fromTowerAffine = composeMatrices(affine, t.fromTower);

  // Inverse S-box entry: tower(A^-1 y) with the constant A^-1(0x63)
  // folded through the tower basis change.
  std::array<uint8_t, 8> invAffine = invertMatrix(affine);
  t.invAffineToTower = composeMatrices(t.toTower, invAffine);
  t.invAffineToTowerConst =
      applyMatrixByte(t.toTower, applyMatrixByte(invAffine, 0x63));
  return t;
}

// ------------------------------------------------------------------------
// Bit-sliced circuit emission.
// ------------------------------------------------------------------------

using Nib = std::array<NodeId, 4>;

class AesCircuit {
 public:
  AesCircuit(Graph& g, const Tower& tower) : g_(g), tower_(tower) {}

  NodeId zero() {
    if (zero_ == ir::kInvalidNode) zero_ = g_.addConst(false);
    return zero_;
  }

  NodeId x2(NodeId a, NodeId b) {
    if (a == zero_ || a == ir::kInvalidNode) return b;
    if (b == zero_) return a;
    return g_.addOp(OpKind::Xor, {a, b});
  }

  /// out bit i = XOR over inputs j selected by rows[i].
  std::array<NodeId, 8> applyMatrix(const std::array<uint8_t, 8>& rows,
                                    const std::array<NodeId, 8>& in) {
    std::array<NodeId, 8> out{};
    for (int i = 0; i < 8; ++i) {
      NodeId acc = ir::kInvalidNode;
      for (int j = 0; j < 8; ++j)
        if (rows[static_cast<size_t>(i)] & (1 << j))
          acc = acc == ir::kInvalidNode
                    ? in[static_cast<size_t>(j)]
                    : g_.addOp(OpKind::Xor, {acc, in[static_cast<size_t>(j)]});
      out[static_cast<size_t>(i)] = acc == ir::kInvalidNode ? zero() : acc;
    }
    return out;
  }

  /// Bit-sliced GF(2^4) multiply: 16 ANDs + XOR reduction mod x^4+x+1.
  Nib g16MulSlices(const Nib& a, const Nib& b) {
    NodeId p[7];
    for (int k = 0; k < 7; ++k) {
      NodeId acc = ir::kInvalidNode;
      for (int i = 0; i < 4; ++i) {
        int j = k - i;
        if (j < 0 || j > 3) continue;
        NodeId prod = g_.addOp(OpKind::And, {a[static_cast<size_t>(i)],
                                             b[static_cast<size_t>(j)]});
        acc = acc == ir::kInvalidNode ? prod
                                      : g_.addOp(OpKind::Xor, {acc, prod});
      }
      p[k] = acc;
    }
    // x^4 = x+1, x^5 = x^2+x, x^6 = x^3+x^2.
    return Nib{x2(p[0], p[4]), x2(x2(p[1], p[4]), p[5]),
               x2(x2(p[2], p[5]), p[6]), x2(p[3], p[6])};
  }

  /// Bit-sliced GF(2^4) square (linear).
  Nib g16SquareSlices(const Nib& a) {
    return Nib{x2(a[0], a[2]), a[2], x2(a[1], a[3]), a[3]};
  }

  /// Bit-sliced multiply by the constant lambda (linear).
  Nib g16MulLambdaSlices(const Nib& a) {
    Nib out{};
    for (int i = 0; i < 4; ++i) {
      NodeId acc = ir::kInvalidNode;
      for (int j = 0; j < 4; ++j) {
        uint8_t img = g16Mul(tower_.lambda, static_cast<uint8_t>(1 << j));
        if (img & (1 << i))
          acc = acc == ir::kInvalidNode
                    ? a[static_cast<size_t>(j)]
                    : g_.addOp(OpKind::Xor, {acc, a[static_cast<size_t>(j)]});
      }
      out[static_cast<size_t>(i)] = acc == ir::kInvalidNode ? zero() : acc;
    }
    return out;
  }

  /// GF(2^4) inversion: x^14 = x^8 * x^4 * x^2.
  Nib g16InvSlices(const Nib& a) {
    Nib s2 = g16SquareSlices(a);
    Nib s4 = g16SquareSlices(s2);
    Nib s8 = g16SquareSlices(s4);
    return g16MulSlices(g16MulSlices(s8, s4), s2);
  }

  Nib nibXor(const Nib& a, const Nib& b) {
    Nib out{};
    for (int i = 0; i < 4; ++i)
      out[static_cast<size_t>(i)] =
          x2(a[static_cast<size_t>(i)], b[static_cast<size_t>(i)]);
    return out;
  }

  /// GF(2^8) inversion in the tower basis (input and output are tower
  /// bits; 0 maps to 0).
  std::array<NodeId, 8> towerInverse(const std::array<NodeId, 8>& t) {
    Nib b{t[0], t[1], t[2], t[3]};  // low tower nibble
    Nib a{t[4], t[5], t[6], t[7]};  // high tower nibble

    // (a y + b)^-1 = (a N^-1) y + (a + b) N^-1 with
    // N = lambda a^2 + a b + b^2.
    Nib asq = g16SquareSlices(a);
    Nib bsq = g16SquareSlices(b);
    Nib ab = g16MulSlices(a, b);
    Nib n = nibXor(nibXor(g16MulLambdaSlices(asq), ab), bsq);
    Nib ninv = g16InvSlices(n);
    Nib hi = g16MulSlices(a, ninv);
    Nib lo = g16MulSlices(nibXor(a, b), ninv);
    return {lo[0], lo[1], lo[2], lo[3], hi[0], hi[1], hi[2], hi[3]};
  }

  /// The bit-sliced S-box on one byte worth of slices.
  std::array<NodeId, 8> sboxSlices(const std::array<NodeId, 8>& in) {
    auto inv = towerInverse(applyMatrix(tower_.toTower, in));
    auto out = applyMatrix(tower_.fromTowerAffine, inv);
    for (int i = 0; i < 8; ++i)
      if (0x63 & (1 << i))
        out[static_cast<size_t>(i)] =
            g_.addOp(OpKind::Not, {out[static_cast<size_t>(i)]});
    return out;
  }

  /// The bit-sliced inverse S-box: invAffine (with its constant folded
  /// into the tower entry matrix), tower inversion, then the plain
  /// tower->AES basis change.
  std::array<NodeId, 8> invSboxSlices(const std::array<NodeId, 8>& in) {
    auto t = applyMatrix(tower_.invAffineToTower, in);
    for (int i = 0; i < 8; ++i)
      if (tower_.invAffineToTowerConst & (1 << i))
        t[static_cast<size_t>(i)] =
            g_.addOp(OpKind::Not, {t[static_cast<size_t>(i)]});
    return applyMatrix(tower_.fromTower, towerInverse(t));
  }

  /// Multiplies a byte's slices by a GF(2^8) constant (a linear map; the
  /// matrix is derived on the host). Used by InvMixColumns' 9/11/13/14
  /// coefficients.
  std::array<NodeId, 8> mulConstSlices(uint8_t constant,
                                       const std::array<NodeId, 8>& in) {
    std::array<uint8_t, 8> m{};
    for (int rowBit = 0; rowBit < 8; ++rowBit) {
      uint8_t mask = 0;
      for (int colIdx = 0; colIdx < 8; ++colIdx) {
        uint8_t image = aes::gfMul(constant,
                                   static_cast<uint8_t>(1 << colIdx));
        if (image & (1 << rowBit))
          mask |= static_cast<uint8_t>(1 << colIdx);
      }
      m[static_cast<size_t>(rowBit)] = mask;
    }
    return applyMatrix(m, in);
  }

 private:
  Graph& g_;
  const Tower& tower_;
  NodeId zero_ = ir::kInvalidNode;
};

/// State as 128 slices: index = byte * 8 + bit, bytes column-major.
using State = std::vector<NodeId>;

std::array<NodeId, 8> byteOf(const State& s, int byteIdx) {
  std::array<NodeId, 8> b{};
  for (int i = 0; i < 8; ++i)
    b[static_cast<size_t>(i)] = s[static_cast<size_t>(byteIdx * 8 + i)];
  return b;
}

void setByte(State& s, int byteIdx, const std::array<NodeId, 8>& b) {
  for (int i = 0; i < 8; ++i)
    s[static_cast<size_t>(byteIdx * 8 + i)] = b[static_cast<size_t>(i)];
}

}  // namespace

Graph buildAes(const AesSpec& spec) {
  checkArg(spec.rounds >= 1 && spec.rounds <= 10,
           "rounds must be in [1, 10]");
  Graph g;
  Tower tower = deriveTower();
  AesCircuit circuit(g, tower);

  State state(128);
  for (int k = 0; k < 128; ++k)
    state[static_cast<size_t>(k)] = g.addInput(strCat("pt.", k));

  auto roundKey = [&](int r) {
    State rk(128);
    for (int k = 0; k < 128; ++k)
      rk[static_cast<size_t>(k)] = g.addInput(strCat("rk", r, ".", k));
    return rk;
  };
  auto addRoundKey = [&](State& s, const State& rk) {
    for (int k = 0; k < 128; ++k)
      s[static_cast<size_t>(k)] = g.addOp(
          OpKind::Xor, {s[static_cast<size_t>(k)],
                        rk[static_cast<size_t>(k)]});
  };
  auto subBytes = [&](State& s) {
    for (int byteIdx = 0; byteIdx < 16; ++byteIdx)
      setByte(s, byteIdx, circuit.sboxSlices(byteOf(s, byteIdx)));
  };
  auto shiftRows = [&](State& s) {
    State t = s;
    for (int row = 0; row < 4; ++row)
      for (int col = 0; col < 4; ++col)
        setByte(s, 4 * col + row, byteOf(t, 4 * ((col + row) % 4) + row));
  };
  // xtime: multiply a byte's slices by 2 in the AES field.
  auto xtime = [&](const std::array<NodeId, 8>& b) {
    std::array<NodeId, 8> out{};
    NodeId msb = b[7];
    out[0] = msb;
    out[1] = circuit.x2(b[0], msb);
    out[2] = b[1];
    out[3] = circuit.x2(b[2], msb);
    out[4] = circuit.x2(b[3], msb);
    out[5] = b[4];
    out[6] = b[5];
    out[7] = b[6];
    return out;
  };
  auto xorBytes = [&](const std::array<NodeId, 8>& a,
                      const std::array<NodeId, 8>& b) {
    std::array<NodeId, 8> out{};
    for (int i = 0; i < 8; ++i)
      out[static_cast<size_t>(i)] =
          circuit.x2(a[static_cast<size_t>(i)], b[static_cast<size_t>(i)]);
    return out;
  };
  auto mixColumns = [&](State& s) {
    for (int col = 0; col < 4; ++col) {
      auto a0 = byteOf(s, 4 * col + 0);
      auto a1 = byteOf(s, 4 * col + 1);
      auto a2 = byteOf(s, 4 * col + 2);
      auto a3 = byteOf(s, 4 * col + 3);
      auto all = xorBytes(xorBytes(a0, a1), xorBytes(a2, a3));
      setByte(s, 4 * col + 0,
              xorBytes(a0, xorBytes(all, xtime(xorBytes(a0, a1)))));
      setByte(s, 4 * col + 1,
              xorBytes(a1, xorBytes(all, xtime(xorBytes(a1, a2)))));
      setByte(s, 4 * col + 2,
              xorBytes(a2, xorBytes(all, xtime(xorBytes(a2, a3)))));
      setByte(s, 4 * col + 3,
              xorBytes(a3, xorBytes(all, xtime(xorBytes(a3, a0)))));
    }
  };

  addRoundKey(state, roundKey(0));
  for (int r = 1; r < spec.rounds; ++r) {
    subBytes(state);
    shiftRows(state);
    mixColumns(state);
    addRoundKey(state, roundKey(r));
  }
  subBytes(state);
  shiftRows(state);
  addRoundKey(state, roundKey(spec.rounds));

  for (NodeId s : state) g.markOutput(s);
  return g;
}

Graph buildAesDecrypt(const AesSpec& spec) {
  checkArg(spec.rounds >= 1 && spec.rounds <= 10,
           "rounds must be in [1, 10]");
  Graph g;
  Tower tower = deriveTower();
  AesCircuit circuit(g, tower);

  State state(128);
  for (int k = 0; k < 128; ++k)
    state[static_cast<size_t>(k)] = g.addInput(strCat("ct.", k));

  auto roundKey = [&](int r) {
    State rk(128);
    for (int k = 0; k < 128; ++k)
      rk[static_cast<size_t>(k)] = g.addInput(strCat("rk", r, ".", k));
    return rk;
  };
  auto addRoundKey = [&](State& s, const State& rk) {
    for (int k = 0; k < 128; ++k)
      s[static_cast<size_t>(k)] = g.addOp(
          OpKind::Xor,
          {s[static_cast<size_t>(k)], rk[static_cast<size_t>(k)]});
  };
  auto invSubBytes = [&](State& s) {
    for (int byteIdx = 0; byteIdx < 16; ++byteIdx)
      setByte(s, byteIdx, circuit.invSboxSlices(byteOf(s, byteIdx)));
  };
  auto invShiftRows = [&](State& s) {
    State t = s;
    for (int row = 0; row < 4; ++row)
      for (int col = 0; col < 4; ++col)
        setByte(s, 4 * ((col + row) % 4) + row, byteOf(t, 4 * col + row));
  };
  auto xorBytes = [&](const std::array<NodeId, 8>& a,
                      const std::array<NodeId, 8>& b) {
    std::array<NodeId, 8> out{};
    for (int i = 0; i < 8; ++i)
      out[static_cast<size_t>(i)] =
          circuit.x2(a[static_cast<size_t>(i)], b[static_cast<size_t>(i)]);
    return out;
  };
  auto invMixColumns = [&](State& s) {
    // InvMixColumns coefficients rotate through {14, 11, 13, 9}.
    const uint8_t coef[4] = {14, 11, 13, 9};
    for (int col = 0; col < 4; ++col) {
      std::array<std::array<NodeId, 8>, 4> in;
      for (int rowIdx = 0; rowIdx < 4; ++rowIdx)
        in[static_cast<size_t>(rowIdx)] = byteOf(s, 4 * col + rowIdx);
      for (int rowIdx = 0; rowIdx < 4; ++rowIdx) {
        std::array<NodeId, 8> acc = circuit.mulConstSlices(
            coef[(4 - rowIdx) % 4], in[0]);
        for (int k = 1; k < 4; ++k)
          acc = xorBytes(acc, circuit.mulConstSlices(
                                  coef[(k + 4 - rowIdx) % 4],
                                  in[static_cast<size_t>(k)]));
        setByte(s, 4 * col + rowIdx, acc);
      }
    }
  };

  addRoundKey(state, roundKey(spec.rounds));
  invShiftRows(state);
  invSubBytes(state);
  for (int r = spec.rounds - 1; r >= 1; --r) {
    addRoundKey(state, roundKey(r));
    invMixColumns(state);
    invShiftRows(state);
    invSubBytes(state);
  }
  addRoundKey(state, roundKey(0));

  for (NodeId s : state) g.markOutput(s);
  return g;
}

namespace {

std::map<std::string, uint64_t> packBlocks(
    const char* prefix,
    const std::vector<std::array<uint8_t, 16>>& blocks) {
  checkArg(blocks.size() <= 64, "at most 64 blocks per bulk word");
  std::map<std::string, uint64_t> inputs;
  for (int k = 0; k < 128; ++k) {
    uint64_t word = 0;
    for (size_t lane = 0; lane < blocks.size(); ++lane) {
      uint8_t byte = blocks[lane][static_cast<size_t>(k / 8)];
      if ((byte >> (k % 8)) & 1) word |= uint64_t{1} << lane;
    }
    inputs[strCat(prefix, ".", k)] = word;
  }
  return inputs;
}

}  // namespace

std::map<std::string, uint64_t> packPlaintext(
    const std::vector<std::array<uint8_t, 16>>& blocks) {
  return packBlocks("pt", blocks);
}

std::map<std::string, uint64_t> packCiphertext(
    const std::vector<std::array<uint8_t, 16>>& blocks) {
  return packBlocks("ct", blocks);
}

std::map<std::string, uint64_t> packRoundKeys(
    const std::array<uint8_t, 16>& key, int rounds) {
  auto rks = aes::expandKey(key);
  std::map<std::string, uint64_t> inputs;
  for (int r = 0; r <= rounds; ++r)
    for (int k = 0; k < 128; ++k) {
      uint8_t byte = rks[static_cast<size_t>(r)][static_cast<size_t>(k / 8)];
      inputs[strCat("rk", r, ".", k)] =
          ((byte >> (k % 8)) & 1) ? ~uint64_t{0} : 0;
    }
  return inputs;
}

std::array<uint8_t, 16> unpackState(const std::vector<uint64_t>& slices,
                                    int lane) {
  checkArg(slices.size() == 128, "expected 128 slices");
  std::array<uint8_t, 16> out{};
  for (int k = 0; k < 128; ++k)
    if ((slices[static_cast<size_t>(k)] >> lane) & 1)
      out[static_cast<size_t>(k / 8)] |=
          static_cast<uint8_t>(1 << (k % 8));
  return out;
}

}  // namespace sherlock::workloads
