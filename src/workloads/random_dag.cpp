#include "workloads/random_dag.h"

#include <algorithm>
#include <vector>

#include "support/diagnostics.h"
#include "support/rng.h"

namespace sherlock::workloads {

using ir::NodeId;
using ir::OpKind;

ir::Graph buildRandomDag(const RandomDagSpec& spec) {
  checkArg(spec.inputs >= 1, "need at least one input");
  checkArg(spec.ops >= 1, "need at least one op");
  checkArg(spec.maxArity >= 2, "maxArity must be >= 2");
  checkArg(spec.locality > 0.0 && spec.locality <= 1.0,
           "locality must be in (0, 1]");

  Rng rng(spec.seed);
  ir::Graph g;
  std::vector<NodeId> pool;
  for (int i = 0; i < spec.inputs; ++i)
    pool.push_back(g.addInput(strCat("in", i)));

  std::vector<OpKind> mix{OpKind::And, OpKind::Or, OpKind::Nand,
                          OpKind::Nor};
  if (spec.useXor) {
    mix.push_back(OpKind::Xor);
    mix.push_back(OpKind::Xnor);
  }

  auto pick = [&]() {
    size_t window = std::max<size_t>(
        2, static_cast<size_t>(spec.locality *
                               static_cast<double>(pool.size())));
    size_t lo = pool.size() - window;
    return pool[lo + static_cast<size_t>(rng.below(window))];
  };

  for (int i = 0; i < spec.ops; ++i) {
    if (rng.chance(spec.notProbability)) {
      pool.push_back(g.addOp(OpKind::Not, {pick()}));
      continue;
    }
    int arity = static_cast<int>(rng.range(2, spec.maxArity));
    std::vector<NodeId> operands;
    // The locality window may hold fewer distinct nodes than the sampled
    // arity; bound the attempts and keep whatever was collected.
    for (int attempt = 0;
         attempt < 8 * arity && static_cast<int>(operands.size()) < arity;
         ++attempt) {
      NodeId cand = pick();
      if (std::find(operands.begin(), operands.end(), cand) ==
          operands.end())
        operands.push_back(cand);
    }
    if (static_cast<int>(operands.size()) < 2) continue;
    OpKind op = mix[static_cast<size_t>(rng.below(mix.size()))];
    pool.push_back(g.addOp(op, std::move(operands)));
  }

  // Every sink becomes an output (keeps the whole DAG live).
  for (NodeId i = g.firstId(); i < g.endId(); ++i)
    if (g.node(i).isOp() && g.node(i).users.empty()) g.markOutput(i);
  return g;
}

}  // namespace sherlock::workloads
