// Description of the CIM target the mapper/scheduler compiles for:
// technology, array geometry, and the architectural feature set of
// Sec. 2.1 (per-column operation control, row-buffer operand chaining).
#pragma once

#include "arraymodel/array_model.h"
#include "arraymodel/grid.h"
#include "device/technology.h"

namespace sherlock::isa {

struct TargetSpec {
  device::TechnologyParams tech;
  arraymodel::ArrayGeometry geometry;

  /// Arrays available to the mapper (layouts spill to additional arrays
  /// when one array's columns are exhausted).
  int numArrays = 16;

  /// Physical arrangement of those arrays. Unconfigured (the default)
  /// keeps the flat-bus model: every inter-array transfer is one hop.
  /// When configured, grid.cells() arrays are mesh-addressable and
  /// transfer cost scales with Manhattan distance; arrays beyond the
  /// mesh (numArrays > cells()) may hold data but XFER may not reach
  /// them (verifier TransferLegality).
  arraymodel::GridConfig grid{};

  /// Maximum rows a single CIM read may activate. 2 restricts every
  /// operation to two operands (paper's "MRA = 2" configurations); larger
  /// values enable the Sec. 3.3.3 node-substitution transformation
  /// ("MRA >= 2"). Always capped by tech.maxActivatedRows.
  int maxActivatedRows = 2;

  /// Per-column operation multiplexers (Sec. 2.1). When false, one CIM
  /// read performs the same operation on every sensed column, restricting
  /// cross-cluster instruction merging to same-op groups.
  bool perColumnOps = true;

  /// Row-buffer operand chaining: a CIM read may combine the latched
  /// row-buffer bit of a column with the newly sensed cells, letting
  /// accumulation chains avoid materializing intermediates.
  bool bufferChaining = true;

  int rows() const { return geometry.rows; }
  int cols() const { return geometry.cols; }

  /// Effective multi-row-activation cap.
  int mraLimit() const {
    return maxActivatedRows < tech.maxActivatedRows ? maxActivatedRows
                                                    : tech.maxActivatedRows;
  }

  /// Bus hops between two arrays: 0 for a == b, the grid's Manhattan
  /// distance when both arrays sit on a configured mesh, and 1 (flat
  /// bus) otherwise.
  int hopsBetween(int a, int b) const {
    if (a == b) return 0;
    if (!grid.configured() || a >= grid.cells() || b >= grid.cells() ||
        a < 0 || b < 0)
      return 1;
    return grid.hopDistance(a, b);
  }

  /// Square N x N target with the paper's data-width pairing.
  static TargetSpec square(int n, device::TechnologyParams tech,
                           int maxActivatedRows = 2) {
    TargetSpec t;
    t.tech = std::move(tech);
    t.geometry = arraymodel::ArrayGeometry::square(n);
    t.maxActivatedRows = maxActivatedRows;
    return t;
  }

  /// Copy of this target with the given mesh; numArrays follows the
  /// mesh size so every grid array is mapper-addressable.
  TargetSpec withGrid(arraymodel::GridConfig g) const {
    TargetSpec t = *this;
    t.grid = g;
    if (g.configured()) t.numArrays = g.cells();
    return t;
  }
};

}  // namespace sherlock::isa
