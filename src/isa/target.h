// Description of the CIM target the mapper/scheduler compiles for:
// technology, array geometry, and the architectural feature set of
// Sec. 2.1 (per-column operation control, row-buffer operand chaining).
#pragma once

#include "arraymodel/array_model.h"
#include "device/technology.h"

namespace sherlock::isa {

struct TargetSpec {
  device::TechnologyParams tech;
  arraymodel::ArrayGeometry geometry;

  /// Arrays available to the mapper (layouts spill to additional arrays
  /// when one array's columns are exhausted).
  int numArrays = 16;

  /// Maximum rows a single CIM read may activate. 2 restricts every
  /// operation to two operands (paper's "MRA = 2" configurations); larger
  /// values enable the Sec. 3.3.3 node-substitution transformation
  /// ("MRA >= 2"). Always capped by tech.maxActivatedRows.
  int maxActivatedRows = 2;

  /// Per-column operation multiplexers (Sec. 2.1). When false, one CIM
  /// read performs the same operation on every sensed column, restricting
  /// cross-cluster instruction merging to same-op groups.
  bool perColumnOps = true;

  /// Row-buffer operand chaining: a CIM read may combine the latched
  /// row-buffer bit of a column with the newly sensed cells, letting
  /// accumulation chains avoid materializing intermediates.
  bool bufferChaining = true;

  int rows() const { return geometry.rows; }
  int cols() const { return geometry.cols; }

  /// Effective multi-row-activation cap.
  int mraLimit() const {
    return maxActivatedRows < tech.maxActivatedRows ? maxActivatedRows
                                                    : tech.maxActivatedRows;
  }

  /// Square N x N target with the paper's data-width pairing.
  static TargetSpec square(int n, device::TechnologyParams tech,
                           int maxActivatedRows = 2) {
    TargetSpec t;
    t.tech = std::move(tech);
    t.geometry = arraymodel::ArrayGeometry::square(n);
    t.maxActivatedRows = maxActivatedRows;
    return t;
  }
};

}  // namespace sherlock::isa
