#include "isa/instruction.h"

#include <algorithm>
#include <sstream>

#include "support/diagnostics.h"

namespace sherlock::isa {

namespace {

std::string joinInts(const std::vector<int>& xs) {
  std::string s;
  for (size_t i = 0; i < xs.size(); ++i) {
    if (i) s += ',';
    s += std::to_string(xs[i]);
  }
  return s;
}

/// Parses "a,b,c" into integers.
std::vector<int> splitInts(const std::string& text) {
  checkArg(text.empty() || text.back() != ',',
           strCat("trailing comma in list '", text, "'"));
  std::vector<int> out;
  std::string cur;
  std::istringstream is(text);
  while (std::getline(is, cur, ',')) {
    checkArg(!cur.empty(), strCat("empty element in list '", text, "'"));
    size_t pos = 0;
    int v = std::stoi(cur, &pos);
    checkArg(pos == cur.size(), strCat("trailing junk in number '", cur, "'"));
    out.push_back(v);
  }
  return out;
}

/// Extracts the next "[...]" group starting at or after `pos`; advances
/// `pos` past it.
std::string nextBracketGroup(const std::string& line, size_t& pos) {
  size_t open = line.find('[', pos);
  checkArg(open != std::string::npos, strCat("expected '[' in: ", line));
  size_t close = line.find(']', open);
  checkArg(close != std::string::npos, strCat("unterminated '[' in: ", line));
  pos = close + 1;
  return line.substr(open + 1, close - open - 1);
}

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

}  // namespace

std::string Instruction::toString() const {
  std::ostringstream os;
  switch (kind) {
    case InstKind::Read: {
      os << "read [" << arrayId << "][" << joinInts(columns) << "]["
         << joinInts(rows) << "]";
      if (!colOps.empty()) {
        os << " [";
        for (size_t i = 0; i < colOps.size(); ++i) {
          if (i) os << ',';
          os << ir::opName(colOps[i]);
          if (i < chainsBuffer.size() && chainsBuffer[i]) os << "+B";
        }
        os << "]";
      }
      break;
    }
    case InstKind::Write:
      os << "write [" << arrayId << "][" << joinInts(columns) << "]["
         << joinInts(rows) << "]";
      break;
    case InstKind::Shift:
      os << "shift [" << arrayId << "] "
         << (shiftDirection == ShiftDirection::Right ? 'R' : 'L') << "["
         << shiftDistance << "]";
      break;
    case InstKind::Move:
      os << "move [" << arrayId << "][" << joinInts(columns) << "] -> ["
         << dstArray << "][" << dstCol << "]";
      break;
    case InstKind::Xfer:
      os << "xfer [" << arrayId << "][" << joinInts(columns) << "]["
         << joinInts(rows) << "] -> [" << dstArray << "][" << dstCol << "]["
         << dstRow << "]";
      break;
  }
  return os.str();
}

Instruction Instruction::parse(const std::string& line) {
  std::istringstream is(line);
  std::string mnemonic;
  is >> mnemonic;
  mnemonic = lower(mnemonic);

  Instruction inst;
  size_t pos = 0;
  if (mnemonic == "shift") {
    inst.kind = InstKind::Shift;
    std::string arr = nextBracketGroup(line, pos);
    inst.arrayId = std::stoi(arr);
    size_t dirPos = line.find_first_of("LRlr", pos);
    checkArg(dirPos != std::string::npos,
             strCat("missing shift direction in: ", line));
    inst.shiftDirection = (line[dirPos] == 'R' || line[dirPos] == 'r')
                              ? ShiftDirection::Right
                              : ShiftDirection::Left;
    pos = dirPos;
    inst.shiftDistance = std::stoi(nextBracketGroup(line, pos));
    return inst;
  }

  if (mnemonic == "move") {
    inst.kind = InstKind::Move;
    inst.arrayId = std::stoi(nextBracketGroup(line, pos));
    inst.columns = splitInts(nextBracketGroup(line, pos));
    checkArg(inst.columns.size() == 1, "move takes one source column");
    inst.dstArray = std::stoi(nextBracketGroup(line, pos));
    inst.dstCol = std::stoi(nextBracketGroup(line, pos));
    return inst;
  }

  if (mnemonic == "xfer") {
    inst.kind = InstKind::Xfer;
    inst.arrayId = std::stoi(nextBracketGroup(line, pos));
    inst.columns = splitInts(nextBracketGroup(line, pos));
    checkArg(inst.columns.size() == 1, "xfer takes one source column");
    inst.rows = splitInts(nextBracketGroup(line, pos));
    checkArg(inst.rows.size() == 1, "xfer takes one source row");
    inst.dstArray = std::stoi(nextBracketGroup(line, pos));
    inst.dstCol = std::stoi(nextBracketGroup(line, pos));
    inst.dstRow = std::stoi(nextBracketGroup(line, pos));
    return inst;
  }

  checkArg(mnemonic == "read" || mnemonic == "write",
           strCat("unknown mnemonic in: ", line));
  inst.kind = mnemonic == "read" ? InstKind::Read : InstKind::Write;
  inst.arrayId = std::stoi(nextBracketGroup(line, pos));
  inst.columns = splitInts(nextBracketGroup(line, pos));
  inst.rows = splitInts(nextBracketGroup(line, pos));

  // Optional CIM op group.
  size_t open = line.find('[', pos);
  if (inst.kind == InstKind::Read && open != std::string::npos) {
    std::string group = nextBracketGroup(line, pos);
    std::istringstream gs(group);
    std::string tok;
    while (std::getline(gs, tok, ',')) {
      bool chain = false;
      if (tok.size() > 2 && tok.substr(tok.size() - 2) == "+B") {
        chain = true;
        tok.resize(tok.size() - 2);
      }
      inst.colOps.push_back(ir::opFromName(tok));
      inst.chainsBuffer.push_back(chain);
    }
  }
  return inst;
}

Instruction makePlainRead(int arrayId, std::vector<int> columns, int row) {
  Instruction i;
  i.kind = InstKind::Read;
  i.arrayId = arrayId;
  i.columns = std::move(columns);
  i.rows = {row};
  return i;
}

Instruction makeCimRead(int arrayId, std::vector<int> columns,
                        std::vector<int> rows, std::vector<ir::OpKind> ops,
                        std::vector<bool> chains) {
  Instruction i;
  i.kind = InstKind::Read;
  i.arrayId = arrayId;
  i.columns = std::move(columns);
  i.rows = std::move(rows);
  i.colOps = std::move(ops);
  i.chainsBuffer = std::move(chains);
  if (i.chainsBuffer.empty())
    i.chainsBuffer.assign(i.colOps.size(), false);
  return i;
}

Instruction makeWrite(int arrayId, std::vector<int> columns, int row) {
  Instruction i;
  i.kind = InstKind::Write;
  i.arrayId = arrayId;
  i.columns = std::move(columns);
  i.rows = {row};
  return i;
}

Instruction makeShift(int arrayId, ShiftDirection dir, int distance) {
  Instruction i;
  i.kind = InstKind::Shift;
  i.arrayId = arrayId;
  i.shiftDirection = dir;
  i.shiftDistance = distance;
  return i;
}

Instruction makeMove(int srcArray, int srcCol, int dstArray, int dstCol) {
  Instruction i;
  i.kind = InstKind::Move;
  i.arrayId = srcArray;
  i.columns = {srcCol};
  i.dstArray = dstArray;
  i.dstCol = dstCol;
  return i;
}

Instruction makeXfer(int srcArray, int srcCol, int srcRow, int dstArray,
                     int dstCol, int dstRow) {
  Instruction i;
  i.kind = InstKind::Xfer;
  i.arrayId = srcArray;
  i.columns = {srcCol};
  i.rows = {srcRow};
  i.dstArray = dstArray;
  i.dstCol = dstCol;
  i.dstRow = dstRow;
  return i;
}

std::string toAssembly(const std::vector<Instruction>& program) {
  std::string out;
  for (const auto& inst : program) {
    out += inst.toString();
    out += '\n';
  }
  return out;
}

std::vector<Instruction> parseAssembly(const std::string& text) {
  std::vector<Instruction> program;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    program.push_back(Instruction::parse(line));
  }
  return program;
}

void validateInstruction(const Instruction& inst, int numArrays, int rows,
                         int cols) {
  checkArg(inst.arrayId >= 0 && inst.arrayId < numArrays,
           strCat("array id ", inst.arrayId, " out of range"));
  if (inst.kind == InstKind::Shift) {
    checkArg(inst.shiftDistance >= 0, "negative shift distance");
    return;
  }
  if (inst.kind == InstKind::Move) {
    checkArg(inst.columns.size() == 1, "move takes one source column");
    checkArg(inst.columns[0] >= 0 && inst.columns[0] < cols,
             "move source column out of range");
    checkArg(inst.dstArray >= 0 && inst.dstArray < numArrays,
             "move destination array out of range");
    checkArg(inst.dstCol >= 0 && inst.dstCol < cols,
             "move destination column out of range");
    return;
  }
  if (inst.kind == InstKind::Xfer) {
    checkArg(inst.columns.size() == 1, "xfer takes one source column");
    checkArg(inst.rows.size() == 1, "xfer takes one source row");
    checkArg(inst.columns[0] >= 0 && inst.columns[0] < cols,
             "xfer source column out of range");
    checkArg(inst.rows[0] >= 0 && inst.rows[0] < rows,
             "xfer source row out of range");
    checkArg(inst.dstArray >= 0 && inst.dstArray < numArrays,
             "xfer destination array out of range");
    checkArg(inst.dstCol >= 0 && inst.dstCol < cols,
             "xfer destination column out of range");
    checkArg(inst.dstRow >= 0 && inst.dstRow < rows,
             "xfer destination row out of range");
    return;
  }
  checkArg(!inst.columns.empty(), "read/write needs columns");
  if (inst.rows.empty()) {
    // A read with no activated rows is a pure row-buffer operation; it is
    // only meaningful when every column chains its latched bit.
    checkArg(inst.kind == InstKind::Read && !inst.colOps.empty(),
             "only CIM reads may omit rows");
    for (bool chain : inst.chainsBuffer)
      checkArg(chain, "rowless read requires all columns to chain");
  }
  for (int c : inst.columns)
    checkArg(c >= 0 && c < cols, strCat("column ", c, " out of range"));
  for (int r : inst.rows)
    checkArg(r >= 0 && r < rows, strCat("row ", r, " out of range"));
  checkArg(std::is_sorted(inst.columns.begin(), inst.columns.end()) &&
               std::adjacent_find(inst.columns.begin(), inst.columns.end()) ==
                   inst.columns.end(),
           "columns must be ascending and unique");
  checkArg(std::is_sorted(inst.rows.begin(), inst.rows.end()) &&
               std::adjacent_find(inst.rows.begin(), inst.rows.end()) ==
                   inst.rows.end(),
           "rows must be ascending and unique");
  if (inst.kind == InstKind::Write)
    checkArg(inst.rows.size() == 1, "write takes exactly one row");
  if (!inst.colOps.empty()) {
    checkArg(inst.kind == InstKind::Read, "ops only valid on reads");
    checkArg(inst.colOps.size() == inst.columns.size(),
             "one op per column required");
    checkArg(inst.chainsBuffer.size() == inst.colOps.size(),
             "chain flags must parallel ops");
  }
}

}  // namespace sherlock::isa
