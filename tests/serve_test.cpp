// Compile-service tests: LRU eviction order, cache-key config
// separation, hit/miss byte-identity, single-flight deduplication under
// the thread pool, the newline-delimited batch protocol, and the
// fd-backed socket plumbing.
#include "serve/service.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <gtest/gtest.h>
#include <chrono>
#include <cstring>
#include <sstream>
#include <thread>

#include "ir/serialize.h"
#include "serve/protocol.h"
#include "serve/socket.h"
#include "support/lru_cache.h"
#include "support/parallel.h"

using namespace sherlock;
using namespace sherlock::serve;

namespace {

/// A small three-input kernel in sherlock-dag text, parameterized on
/// input names and operand order so tests can exercise equivalence.
std::string dagText(const std::string& a, const std::string& b,
                    const std::string& c, bool commuted = false) {
  std::ostringstream os;
  os << "input " << a << "\ninput " << b << "\ninput " << c << "\n";
  os << (commuted ? "op AND 1 0\n" : "op AND 0 1\n");
  os << "op XOR 3 2\noutput 4\n";
  return os.str();
}

/// The cacheable body: everything after the per-request binding header.
std::string bodyOf(const std::string& payload) {
  size_t pos = payload.find("# sherlock-serve");
  EXPECT_NE(pos, std::string::npos) << payload;
  return payload.substr(pos);
}

RequestOptions smallTarget() {
  RequestOptions o;
  o.targetDim = 64;
  return o;
}

}  // namespace

TEST(LruCache, EvictionFollowsRecencyOrder) {
  LruCache<std::string, int> cache(3);
  cache.put("a", 1);
  cache.put("b", 2);
  cache.put("c", 3);
  ASSERT_NE(cache.get("a"), nullptr);  // promote a over b, c
  cache.put("d", 4);                   // evicts b (least recent)
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_FALSE(cache.contains("b"));
  EXPECT_EQ(cache.keysMruToLru(),
            (std::vector<std::string>{"d", "a", "c"}));
  cache.put("e", 5);  // evicts c
  EXPECT_FALSE(cache.contains("c"));
  EXPECT_EQ(cache.keysMruToLru(),
            (std::vector<std::string>{"e", "d", "a"}));
  EXPECT_EQ(cache.evictions(), 2u);
}

TEST(LruCache, OverwriteRefreshesWithoutEviction) {
  LruCache<std::string, int> cache(2);
  cache.put("a", 1);
  cache.put("b", 2);
  cache.put("a", 10);  // refresh, no growth
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 0u);
  EXPECT_EQ(*cache.get("a"), 10);
  EXPECT_EQ(cache.keysMruToLru(), (std::vector<std::string>{"a", "b"}));
}

TEST(LruCache, PeekReadsWithoutPromoting) {
  LruCache<std::string, int> cache(2);
  cache.put("a", 1);
  cache.put("b", 2);
  const int* peeked = cache.peek("a");
  ASSERT_NE(peeked, nullptr);
  EXPECT_EQ(*peeked, 1);
  // peek must not refresh recency: "a" is still the eviction victim
  // (the persistence snapshot relies on this to walk the cache without
  // reshuffling it).
  EXPECT_EQ(cache.keysMruToLru(), (std::vector<std::string>{"b", "a"}));
  cache.put("c", 3);
  EXPECT_FALSE(cache.contains("a"));
  EXPECT_EQ(cache.peek("missing"), nullptr);
}

TEST(LruCache, ZeroCapacityDisablesCaching) {
  LruCache<std::string, int> cache(0);
  cache.put("a", 1);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.get("a"), nullptr);
}

TEST(CacheKey, EveryConfigDimensionSeparatesKeys) {
  const std::string fp = "feedfacefeedface.deadbeefdeadbeef";
  RequestOptions base = smallTarget();
  std::string baseKey = CompileService::cacheKey(fp, base);
  EXPECT_EQ(baseKey, CompileService::cacheKey(fp, base));

  auto differs = [&](auto mutate, const char* what) {
    RequestOptions o = base;
    mutate(o);
    EXPECT_NE(CompileService::cacheKey(fp, o), baseKey) << what;
  };
  differs([](RequestOptions& o) { o.strategy = "naive"; }, "strategy");
  differs([](RequestOptions& o) { o.targetDim = 128; }, "dim");
  differs([](RequestOptions& o) { o.tech = "stt"; }, "tech");
  differs([](RequestOptions& o) { o.mra = 4; }, "mra");
  differs([](RequestOptions& o) { o.grid = "2x2"; }, "grid");
  differs([](RequestOptions& o) { o.hopCost = 25; }, "hop cost");
  differs([](RequestOptions& o) { o.faultDensity = 0.01; },
          "fault density");
  differs([](RequestOptions& o) { o.faultSeed = 9; }, "fault seed");
  differs([](RequestOptions& o) { o.spareRows = 4; }, "spare rows");
  differs([](RequestOptions& o) { o.nandLower = true; }, "nand");
  differs([](RequestOptions& o) { o.aggressive = true; }, "-O");
  differs([](RequestOptions& o) { o.emit = "stats"; }, "emit");
  // Different fingerprints never collide whatever the config.
  EXPECT_NE(CompileService::cacheKey("0000000000000000.0000000000000001",
                                     base),
            baseKey);
  // lang is a transport detail, not a key dimension.
  RequestOptions kernelLang = base;
  kernelLang.lang = "kernel";
  EXPECT_EQ(CompileService::cacheKey(fp, kernelLang), baseKey);
}

TEST(CompileService, RepeatServesByteIdenticalFromCache) {
  CompileService service;
  CompileResponse cold = service.handle(dagText("a", "b", "c"),
                                        smallTarget());
  ASSERT_TRUE(cold.ok) << cold.payload;
  EXPECT_FALSE(cold.cacheHit);
  CompileResponse hit = service.handle(dagText("a", "b", "c"),
                                       smallTarget());
  ASSERT_TRUE(hit.ok);
  EXPECT_TRUE(hit.cacheHit);
  EXPECT_EQ(cold.payload, hit.payload);
  EXPECT_EQ(hit.compileUs, 0.0);
  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.counters.hits, 1u);
  EXPECT_EQ(stats.counters.misses, 1u);
}

TEST(CompileService, EquivalentVariantsHitWithRebindingHeader) {
  CompileService service;
  CompileResponse cold = service.handle(dagText("a", "b", "c"),
                                        smallTarget());
  ASSERT_TRUE(cold.ok) << cold.payload;
  // Alpha-renamed and operand-commuted variants hit the same entry…
  CompileResponse renamed = service.handle(
      dagText("x", "y", "z", /*commuted=*/true), smallTarget());
  ASSERT_TRUE(renamed.ok) << renamed.payload;
  EXPECT_TRUE(renamed.cacheHit);
  EXPECT_EQ(renamed.key, cold.key);
  // …the cached body is byte-identical, only the binding header maps
  // the caller's names.
  EXPECT_EQ(bodyOf(cold.payload), bodyOf(renamed.payload));
  EXPECT_NE(cold.payload, renamed.payload);
  EXPECT_NE(renamed.payload.find("x->i"), std::string::npos);
}

TEST(CompileService, DirectModeShortCircuitsExactRepeats) {
  CompileService service;
  CompileResponse cold = service.handle(dagText("a", "b", "c"),
                                        smallTarget());
  ASSERT_TRUE(cold.ok) << cold.payload;
  EXPECT_FALSE(cold.direct);
  // Byte-identical repeat: served by the exact-source memo.
  CompileResponse repeat = service.handle(dagText("a", "b", "c"),
                                          smallTarget());
  ASSERT_TRUE(repeat.ok);
  EXPECT_TRUE(repeat.direct);
  EXPECT_TRUE(repeat.cacheHit);
  EXPECT_EQ(repeat.key, cold.key);
  EXPECT_EQ(repeat.payload, cold.payload);
  // Alpha-renamed variant: different bytes miss the memo but hit the
  // canonical cache.
  CompileResponse renamed = service.handle(dagText("p", "q", "r"),
                                           smallTarget());
  ASSERT_TRUE(renamed.ok);
  EXPECT_FALSE(renamed.direct);
  EXPECT_TRUE(renamed.cacheHit);
  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.counters.hits, 2u);
  EXPECT_EQ(stats.counters.directHits, 1u);
  EXPECT_EQ(stats.counters.misses, 1u);
}

TEST(CompileService, ConfigVariantsCompileSeparately) {
  CompileService service;
  RequestOptions reram = smallTarget();
  RequestOptions stt = smallTarget();
  stt.tech = "stt";
  ASSERT_TRUE(service.handle(dagText("a", "b", "c"), reram).ok);
  CompileResponse second = service.handle(dagText("a", "b", "c"), stt);
  ASSERT_TRUE(second.ok) << second.payload;
  EXPECT_FALSE(second.cacheHit);
  EXPECT_EQ(service.stats().counters.misses, 2u);
}

TEST(CompileService, SingleFlightCompilesOnceUnderThreadPool) {
  // Eight identical concurrent requests must perform exactly one
  // compile: whoever loses the in-flight race either waits on the
  // builder's future (coalesced) or finds the cache populated (hit) —
  // both orderings are legal, a second compile is not. The hook holds
  // the builder until most requests entered the service (or a timeout,
  // under pathological scheduling), maximizing the overlap actually
  // exercised.
  ServiceOptions options;
  CompileService* svc = nullptr;
  options.onColdCompile = [&](const std::string&) {
    for (int spin = 0; spin < 2000; ++spin) {
      if (svc->stats().counters.requests >= 6) return;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  };
  CompileService service(options);
  svc = &service;

  const std::string source = dagText("a", "b", "c");
  ThreadPool pool(8);
  std::vector<CompileResponse> responses(8);
  pool.parallelFor(8, [&](int64_t i) {
    responses[static_cast<size_t>(i)] =
        service.handle(source, smallTarget());
  });
  for (const CompileResponse& r : responses)
    ASSERT_TRUE(r.ok) << r.payload;
  for (size_t i = 1; i < responses.size(); ++i)
    EXPECT_EQ(responses[0].payload, responses[i].payload);
  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.counters.misses, 1u) << "single-flight violated";
  EXPECT_EQ(stats.counters.hits + stats.counters.coalesced, 7u);
}

TEST(CompileService, ErrorsAreReportedAndNotCached) {
  CompileService service;
  CompileResponse bad =
      service.handle("op AND 0 1\n", smallTarget());  // undeclared ids
  EXPECT_FALSE(bad.ok);
  EXPECT_NE(bad.payload.find("error:"), std::string::npos);
  EXPECT_EQ(service.stats().counters.errors, 1u);
  EXPECT_EQ(service.stats().counters.misses, 0u);
  // Unknown options fail loudly too.
  RequestOptions weird = smallTarget();
  weird.emit = "hologram";
  EXPECT_FALSE(service.handle(dagText("a", "b", "c"), weird).ok);
}

TEST(CompileService, CapacityZeroAlwaysColdCompiles) {
  ServiceOptions options;
  options.cacheCapacity = 0;
  CompileService service(options);
  CompileResponse first = service.handle(dagText("a", "b", "c"),
                                         smallTarget());
  CompileResponse second = service.handle(dagText("a", "b", "c"),
                                          smallTarget());
  ASSERT_TRUE(first.ok && second.ok);
  EXPECT_FALSE(second.cacheHit);
  EXPECT_EQ(first.payload, second.payload);  // still byte-identical
  EXPECT_EQ(service.stats().counters.misses, 2u);
}

namespace {

/// Runs one protocol session over stringstreams and returns the output.
std::string runSession(const std::string& script,
                       CompileService& service) {
  std::istringstream in(script);
  std::ostringstream out;
  ServeLoopOptions options;
  options.defaults = smallTarget();
  options.threads = 2;
  runServeLoop(in, out, service, options);
  return out.str();
}

/// Extracts the payload of `RESP <id> ...` using its bytes= field.
std::string payloadOf(const std::string& output, const std::string& id) {
  std::string marker = "RESP " + id + " ";
  size_t pos = output.find(marker);
  EXPECT_NE(pos, std::string::npos) << output;
  size_t bytesPos = output.find("bytes=", pos);
  size_t lineEnd = output.find('\n', pos);
  EXPECT_LT(bytesPos, lineEnd);
  size_t n = std::stoul(output.substr(bytesPos + 6));
  return output.substr(lineEnd + 1, n);
}

}  // namespace

TEST(ServeProtocol, BatchSessionHitsAndByteIdenticalPayloads) {
  CompileService service;
  std::string script = "REQ one\n" + dagText("a", "b", "c") +
                       "END\nFLUSH\nREQ two\n" + dagText("a", "b", "c") +
                       "END\nSTATS\nQUIT\n";
  std::string out = runSession(script, service);
  EXPECT_NE(out.find("RESP one ok hit=0"), std::string::npos) << out;
  EXPECT_NE(out.find("RESP two ok hit=1"), std::string::npos) << out;
  EXPECT_EQ(payloadOf(out, "one"), payloadOf(out, "two"));
  EXPECT_NE(out.find("STATS-RESP bytes="), std::string::npos);
  // STATS speaks the unified MetricsRegistry schema.
  EXPECT_NE(out.find("\"schema_version\": 1"), std::string::npos) << out;
  EXPECT_NE(out.find("\"serve.hits\": 1"), std::string::npos) << out;
}

TEST(ServeProtocol, PerRequestOptionsAndErrors) {
  CompileService service;
  std::string script =
      // Unknown option: request-level error, session continues.
      "REQ bad mystery=1\n" + dagText("a", "b", "c") + "END\n" +
      // Valid per-request override.
      "REQ stt tech=stt\n" + dagText("a", "b", "c") + "END\n" +
      "BOGUS-DIRECTIVE\n"
      "FLUSH\nQUIT\n";
  std::string out = runSession(script, service);
  EXPECT_NE(out.find("RESP bad error"), std::string::npos) << out;
  EXPECT_NE(out.find("unknown option 'mystery'"), std::string::npos);
  EXPECT_NE(out.find("RESP stt ok"), std::string::npos) << out;
  EXPECT_NE(out.find("tech=stt"), std::string::npos);
  EXPECT_NE(out.find("PROTOCOL-ERROR unknown directive"),
            std::string::npos);
}

TEST(ServeProtocol, TruncatedRequestReportsInsteadOfCompiling) {
  CompileService service;
  std::string out =
      runSession("REQ cut\ninput a\n", service);  // EOF before END
  EXPECT_NE(out.find("RESP cut error"), std::string::npos) << out;
  EXPECT_NE(out.find("truncated request"), std::string::npos);
  EXPECT_EQ(service.stats().counters.misses, 0u);
}

TEST(ServeProtocol, EofFlushesPendingBatch) {
  CompileService service;
  // No FLUSH/QUIT: EOF must still compile and respond.
  std::string out =
      runSession("REQ tail\n" + dagText("a", "b", "c") + "END\n", service);
  EXPECT_NE(out.find("RESP tail ok"), std::string::npos) << out;
}

TEST(ServeSocket, SessionOverSocketpair) {
  int fds[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  CompileService service;
  ServeLoopOptions options;
  options.defaults = smallTarget();
  options.threads = 1;

  std::thread server([&] { serveFd(fds[0], service, options); });

  std::string script =
      "REQ s1\n" + dagText("a", "b", "c") + "END\nQUIT\n";
  ASSERT_EQ(::write(fds[1], script.data(), script.size()),
            static_cast<ssize_t>(script.size()));
  // Read until the server closes its side of the session (QUIT).
  std::string out;
  char buf[4096];
  ssize_t n;
  server.join();  // session is done; the data waits in the socket buffer
  ::shutdown(fds[0], SHUT_WR);
  while ((n = ::read(fds[1], buf, sizeof(buf))) > 0)
    out.append(buf, static_cast<size_t>(n));
  ::close(fds[0]);
  ::close(fds[1]);
  EXPECT_NE(out.find("RESP s1 ok"), std::string::npos) << out;
  EXPECT_EQ(service.stats().counters.requests, 1u);
}

namespace {

/// Connects a unix stream socket to `path`; -1 on failure.
int connectUnix(const std::string& path) {
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

}  // namespace

TEST(ServeSocket, ClientDisconnectMidRequestDoesNotKillTheServer) {
  std::string path = ::testing::TempDir() + "sherlock_serve_sock_" +
                     std::to_string(::getpid());
  ::unlink(path.c_str());
  CompileService service;
  ServeLoopOptions options;
  options.defaults = smallTarget();
  options.threads = 1;
  std::thread server(
      [&] { runUnixSocketServer(path, service, options); });

  // Wait for the listener to come up.
  int victim = -1;
  for (int spin = 0; spin < 2000 && victim < 0; ++spin) {
    victim = connectUnix(path);
    if (victim < 0)
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GE(victim, 0) << "server never bound " << path;

  // Session 1: start a request, then vanish before END. The daemon
  // sees EOF mid-body (a truncated request) and its response write
  // lands in a dead socket — neither may take the server down.
  std::string partial = "REQ dead\ninput a\n";
  ASSERT_EQ(::write(victim, partial.data(), partial.size()),
            static_cast<ssize_t>(partial.size()));
  ::close(victim);

  // Session 2: a well-formed request must still be served, proving the
  // accept loop recovered.
  int client = -1;
  for (int spin = 0; spin < 2000 && client < 0; ++spin) {
    client = connectUnix(path);
    if (client < 0)
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GE(client, 0);
  std::string script =
      "REQ alive\n" + dagText("a", "b", "c") + "END\nSHUTDOWN\n";
  ASSERT_EQ(::write(client, script.data(), script.size()),
            static_cast<ssize_t>(script.size()));
  ::shutdown(client, SHUT_WR);
  std::string out;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(client, buf, sizeof(buf))) > 0)
    out.append(buf, static_cast<size_t>(n));
  ::close(client);
  server.join();
  EXPECT_NE(out.find("RESP alive ok"), std::string::npos) << out;
}
