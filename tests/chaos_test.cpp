// Chaos suite for the resilient serving stack (Issue 10): the
// deterministic failpoint registry itself, structured error codes under
// injected faults, deadline enforcement at and between compile phases,
// bounded-admission load shedding, request size caps, and crash-safe
// cache snapshot round-trips with every corruption class the loader
// must survive.
//
// Everything here is deterministic: probabilistic failpoints draw from
// seeded per-point streams, timing-sensitive scenarios are anchored on
// delay failpoints orders of magnitude beyond scheduler noise, and
// corruption is byte-targeted, not random.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "serve/persist.h"
#include "serve/protocol.h"
#include "serve/service.h"
#include "support/cancel.h"
#include "support/failpoint.h"

using namespace sherlock;
using namespace sherlock::serve;

namespace {

/// The failpoint registry is process-global; every test scopes its
/// configuration so suites stay independent.
struct FailpointGuard {
  FailpointGuard(const std::string& spec, uint64_t seed = 1) {
    failpoint::FailPoints::instance().configure(spec, seed);
  }
  ~FailpointGuard() { failpoint::FailPoints::instance().reset(); }
};

std::string dagText(const std::string& a, const std::string& b) {
  return strCat("input ", a, "\ninput ", b, "\nop AND 0 1\noutput 2\n");
}

RequestOptions smallTarget() {
  RequestOptions o;
  o.targetDim = 64;
  return o;
}

/// A unique temp path per test; removed on destruction.
struct TempFile {
  explicit TempFile(const std::string& tag)
      : path(strCat(::testing::TempDir(), "sherlock_chaos_", tag, "_",
                    ::getpid())) {}
  ~TempFile() { std::remove(path.c_str()); }
  std::string path;
};

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

void spit(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << bytes;
}

}  // namespace

TEST(FailPoints, SpecGrammarAndMalformedSpecsRejected) {
  auto& fp = failpoint::FailPoints::instance();
  fp.configure("parse:0.5,compile:err,io:delay5ms", 7);
  EXPECT_TRUE(fp.enabled());
  fp.reset();
  EXPECT_FALSE(fp.enabled());
  EXPECT_THROW(fp.configure("parse"), Error);          // no action
  EXPECT_THROW(fp.configure("parse:"), Error);         // empty action
  EXPECT_THROW(fp.configure(":0.5"), Error);           // empty name
  EXPECT_THROW(fp.configure("parse:1.5"), Error);      // p out of range
  EXPECT_THROW(fp.configure("parse:delayms"), Error);  // no digits
  EXPECT_THROW(fp.configure("parse:banana"), Error);   // junk action
  fp.reset();
}

TEST(FailPoints, DisabledCheckIsANoOp) {
  failpoint::FailPoints::instance().reset();
  for (int i = 0; i < 1000; ++i)
    EXPECT_NO_THROW(failpoint::check("anything"));
  EXPECT_EQ(failpoint::FailPoints::instance().evaluations("anything"),
            0u);
}

TEST(FailPoints, ErrActionAlwaysFiresAndUnknownNamesNever) {
  FailpointGuard guard("boom:err");
  EXPECT_THROW(failpoint::check("boom"), failpoint::InjectedFault);
  EXPECT_NO_THROW(failpoint::check("other"));
  auto& fp = failpoint::FailPoints::instance();
  EXPECT_EQ(fp.triggers("boom"), 1u);
  EXPECT_EQ(fp.evaluations("boom"), 1u);
  EXPECT_EQ(fp.triggers("other"), 0u);
}

TEST(FailPoints, ProbabilisticStreamIsSeedDeterministic) {
  auto pattern = [](uint64_t seed) {
    FailpointGuard guard("flaky:0.5", seed);
    std::string fired;
    for (int i = 0; i < 64; ++i) {
      try {
        failpoint::check("flaky");
        fired += '.';
      } catch (const failpoint::InjectedFault&) {
        fired += 'X';
      }
    }
    return fired;
  };
  std::string a = pattern(42);
  EXPECT_EQ(a, pattern(42));  // same seed, same trigger sequence
  EXPECT_NE(a, pattern(43));  // different seed, different sequence
  EXPECT_NE(a.find('X'), std::string::npos);
  EXPECT_NE(a.find('.'), std::string::npos);
}

TEST(ChaosService, InjectedCompileFaultIsStructuredAndNotCached) {
  CompileService service;
  {
    FailpointGuard guard("compile:err");
    CompileResponse fail =
        service.handle(dagText("a", "b"), smallTarget());
    EXPECT_FALSE(fail.ok);
    EXPECT_EQ(fail.code, "injected_fault");
    EXPECT_NE(fail.payload.find("error:"), std::string::npos);
  }
  // The failure must not have poisoned the cache: the same request now
  // compiles cold and succeeds.
  CompileResponse ok = service.handle(dagText("a", "b"), smallTarget());
  ASSERT_TRUE(ok.ok) << ok.payload;
  EXPECT_FALSE(ok.cacheHit);
  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.counters.errors, 1u);
  EXPECT_EQ(stats.counters.misses, 1u);
  EXPECT_NE(service.metricsJson().find("\"serve.injected_faults\": 1"),
            std::string::npos);
}

TEST(ChaosService, ParseFaultSurfacesBeforeAnyCompile) {
  CompileService service;
  FailpointGuard guard("parse:err");
  CompileResponse fail = service.handle(dagText("a", "b"), smallTarget());
  EXPECT_FALSE(fail.ok);
  EXPECT_EQ(fail.code, "injected_fault");
  EXPECT_EQ(service.stats().counters.misses, 0u);
}

TEST(ChaosService, ExpiredDeadlineRejectedAtAdmission) {
  CompileService service;
  CancelToken cancel;
  cancel.tightenAfterMs(0);  // already expired
  CompileResponse resp =
      service.handle(dagText("a", "b"), smallTarget(), &cancel);
  EXPECT_FALSE(resp.ok);
  EXPECT_EQ(resp.code, "deadline_exceeded");
  EXPECT_NE(resp.payload.find("admission"), std::string::npos)
      << resp.payload;
  // No work was admitted: neither a parse nor a compile happened.
  EXPECT_EQ(service.stats().counters.misses, 0u);
  EXPECT_NE(service.metricsJson().find("\"serve.deadline_exceeded\": 1"),
            std::string::npos);
}

TEST(ChaosService, DeadlineExpiringMidPipelineAbortsBetweenPhases) {
  CompileService service;
  // The parse phase is slowed far beyond the deadline, so the
  // post-parse checkpoint must observe expiry — deterministically.
  FailpointGuard guard("parse:delay50ms");
  CancelToken cancel;
  cancel.tightenAfterMs(5);
  CompileResponse resp =
      service.handle(dagText("a", "b"), smallTarget(), &cancel);
  EXPECT_FALSE(resp.ok);
  EXPECT_EQ(resp.code, "deadline_exceeded");
  EXPECT_NE(resp.payload.find("parse"), std::string::npos)
      << resp.payload;
  EXPECT_EQ(service.stats().counters.misses, 0u);
}

TEST(ChaosService, CancelledTokenAbortsRegardlessOfDeadline) {
  CompileService service;
  CancelToken cancel;
  cancel.cancel();
  CompileResponse resp =
      service.handle(dagText("a", "b"), smallTarget(), &cancel);
  EXPECT_FALSE(resp.ok);
  EXPECT_EQ(resp.code, "deadline_exceeded");
}

namespace {

std::string runSession(const std::string& script, CompileService& service,
                       ServeLoopOptions options,
                       ServeLoopResult* result = nullptr) {
  std::istringstream in(script);
  std::ostringstream out;
  ServeLoopResult r = runServeLoop(in, out, service, options);
  if (result) *result = r;
  return out.str();
}

ServeLoopOptions sessionOptions() {
  ServeLoopOptions options;
  options.defaults = smallTarget();
  options.threads = 2;
  return options;
}

}  // namespace

TEST(ChaosProtocol, DeadlineOptionAnswersStructuredError) {
  CompileService service;
  // 1 ns deadline: expired long before any worker reaches the
  // admission checkpoint.
  std::string script = "REQ late deadline-ms=0.000001\n" +
                       dagText("a", "b") + "END\nFLUSH\nQUIT\n";
  std::string out = runSession(script, service, sessionOptions());
  EXPECT_NE(out.find("RESP late error code=deadline_exceeded"),
            std::string::npos)
      << out;
}

TEST(ChaosProtocol, NegativeDeadlineIsABadOption) {
  CompileService service;
  std::string script = "REQ neg deadline-ms=-5\n" + dagText("a", "b") +
                       "END\nFLUSH\nQUIT\n";
  std::string out = runSession(script, service, sessionOptions());
  EXPECT_NE(out.find("RESP neg error code=bad_option"),
            std::string::npos)
      << out;
}

TEST(ChaosProtocol, SaturatedQueueShedsWithBusyImmediately) {
  CompileService service;
  // One worker, zero queue: while the first (artificially slow)
  // request is outstanding, every further request must shed. The
  // 500 ms delay dwarfs the microseconds the loop needs to parse the
  // following REQ lines, so the scenario is deterministic.
  FailpointGuard guard("compile:delay500ms");
  ServeLoopOptions options = sessionOptions();
  options.maxInflight = 1;
  options.maxQueue = 0;
  options.retryAfterMs = 15;
  ServeLoopResult result;
  std::string script = "REQ slow\n" + dagText("a", "b") + "END\n" +
                       "REQ shed1\n" + dagText("a", "c") + "END\n" +
                       "REQ shed2\n" + dagText("a", "d") + "END\n" +
                       "FLUSH\nQUIT\n";
  std::string out = runSession(script, service, options, &result);
  EXPECT_NE(out.find("RESP slow ok"), std::string::npos) << out;
  EXPECT_NE(out.find("BUSY shed1 retry_after_ms=15"), std::string::npos)
      << out;
  EXPECT_NE(out.find("BUSY shed2 retry_after_ms=15"), std::string::npos)
      << out;
  // Shed requests never produce a RESP record.
  EXPECT_EQ(out.find("RESP shed1"), std::string::npos);
  EXPECT_EQ(result.shed, 2u);
  EXPECT_EQ(result.requests, 1u);
  // The BUSY lines precede the slow RESP in the byte stream: shedding
  // did not wait for the batch to drain.
  EXPECT_LT(out.find("BUSY shed1"), out.find("RESP slow"));
  EXPECT_NE(service.metricsJson().find("\"serve.shed\": 2"),
            std::string::npos);
}

TEST(ChaosProtocol, QueuedRequestsBeyondInflightStillComplete) {
  CompileService service;
  ServeLoopOptions options = sessionOptions();
  options.maxInflight = 1;
  options.maxQueue = 8;  // roomy queue: nothing sheds
  std::string script;
  for (int i = 0; i < 4; ++i)
    script += strCat("REQ q", i, "\n", dagText("a", strCat("b", i)),
                     "END\n");
  script += "FLUSH\nQUIT\n";
  ServeLoopResult result;
  std::string out = runSession(script, service, options, &result);
  for (int i = 0; i < 4; ++i)
    EXPECT_NE(out.find(strCat("RESP q", i, " ok")), std::string::npos)
        << out;
  EXPECT_EQ(result.shed, 0u);
  EXPECT_EQ(result.requests, 4u);
}

TEST(ChaosProtocol, OversizedBodyAnswersRequestTooLarge) {
  CompileService service;
  ServeLoopOptions options = sessionOptions();
  options.maxRequestBytes = 128;
  std::string big(4096, 'x');  // consumed but never buffered
  std::string script = "REQ big\n# " + big + "\n" + dagText("a", "b") +
                       "END\n" +
                       "REQ fine\n" + dagText("a", "b") +
                       "END\nFLUSH\nQUIT\n";
  std::string out = runSession(script, service, options);
  EXPECT_NE(out.find("RESP big error code=request_too_large"),
            std::string::npos)
      << out;
  // The oversized request did not desynchronize the session.
  EXPECT_NE(out.find("RESP fine ok"), std::string::npos) << out;
  EXPECT_EQ(service.stats().counters.misses, 1u);
}

TEST(ChaosProtocol, OversizedRequestLineAnswersRequestTooLarge) {
  CompileService service;
  ServeLoopOptions options = sessionOptions();
  options.maxRequestBytes = 64;
  std::string script = "REQ huge " + std::string(256, 'z') + "\n" +
                       dagText("a", "b") + "END\nFLUSH\nQUIT\n";
  std::string out = runSession(script, service, options);
  EXPECT_NE(out.find("RESP huge error code=request_too_large"),
            std::string::npos)
      << out;
}

TEST(ChaosProtocol, StopFlagDrainsInsteadOfReading) {
  CompileService service;
  std::atomic<bool> stop{true};
  ServeLoopOptions options = sessionOptions();
  options.stop = &stop;
  // The script would compile fine — but the drain flag is already up,
  // so the session must end without reading a single directive.
  ServeLoopResult result;
  std::string out = runSession(
      "REQ x\n" + dagText("a", "b") + "END\nFLUSH\nQUIT\n", service,
      options, &result);
  EXPECT_EQ(result.requests, 0u);
  EXPECT_EQ(out.find("RESP"), std::string::npos) << out;
  EXPECT_EQ(service.stats().counters.requests, 0u);
}

TEST(ChaosPersist, SnapshotRoundTripsEntriesInOrder) {
  TempFile file("roundtrip");
  std::vector<std::pair<std::string, std::string>> entries = {
      {"key-one", "body one\nwith two lines\n"},
      {"key-two", ""},  // empty body is legal
      {"key three with spaces", std::string("binary\0bytes", 12)},
  };
  SnapshotStats saved = saveCacheSnapshot(file.path, entries);
  ASSERT_TRUE(saved.ok);
  EXPECT_EQ(saved.written, 3u);

  std::vector<std::pair<std::string, std::string>> loaded;
  SnapshotStats in = loadCacheSnapshot(
      file.path, [&](std::string key, std::string body) {
        loaded.emplace_back(std::move(key), std::move(body));
      });
  EXPECT_TRUE(in.ok);
  EXPECT_EQ(in.loaded, 3u);
  EXPECT_EQ(in.dropped, 0u);
  EXPECT_EQ(loaded, entries);
}

TEST(ChaosPersist, MissingFileIsAnEmptyColdBoot) {
  size_t calls = 0;
  SnapshotStats in = loadCacheSnapshot(
      "/nonexistent/sherlock/snapshot",
      [&](std::string, std::string) { ++calls; });
  EXPECT_FALSE(in.ok);
  EXPECT_EQ(in.loaded, 0u);
  EXPECT_EQ(calls, 0u);
}

TEST(ChaosPersist, CorruptEntryIsDroppedOthersSurvive) {
  TempFile file("corrupt");
  ASSERT_TRUE(saveCacheSnapshot(file.path, {{"ka", "alpha-body"},
                                            {"kb", "beta-body"},
                                            {"kc", "gamma-body"}})
                  .ok);
  std::string bytes = slurp(file.path);
  size_t at = bytes.find("beta-body");
  ASSERT_NE(at, std::string::npos);
  bytes[at] = 'X';  // flip one payload byte of the middle entry
  spit(file.path, bytes);

  std::vector<std::string> keys;
  SnapshotStats in = loadCacheSnapshot(
      file.path,
      [&](std::string key, std::string) { keys.push_back(std::move(key)); });
  EXPECT_EQ(in.loaded, 2u);
  EXPECT_EQ(in.dropped, 1u);
  EXPECT_EQ(keys, (std::vector<std::string>{"ka", "kc"}));
}

TEST(ChaosPersist, TruncatedSnapshotDropsTheTailNeverThrows) {
  TempFile file("truncated");
  ASSERT_TRUE(saveCacheSnapshot(file.path, {{"ka", "alpha-body"},
                                            {"kb", "beta-body"}})
                  .ok);
  std::string bytes = slurp(file.path);
  // Cut mid-way through the second entry: a crash during a non-atomic
  // writer would look like this (ours renames, but the loader must not
  // care how the file got mangled).
  spit(file.path, bytes.substr(0, bytes.find("beta-body") + 3));

  std::vector<std::string> keys;
  SnapshotStats in = loadCacheSnapshot(
      file.path,
      [&](std::string key, std::string) { keys.push_back(std::move(key)); });
  EXPECT_EQ(keys, std::vector<std::string>{"ka"});
  EXPECT_EQ(in.loaded, 1u);
  EXPECT_EQ(in.dropped, 1u);
}

TEST(ChaosPersist, VersionMismatchDropsSnapshotWhole) {
  TempFile file("version");
  ASSERT_TRUE(saveCacheSnapshot(file.path, {{"ka", "alpha-body"}}).ok);
  std::string bytes = slurp(file.path);
  size_t at = bytes.find(" v");
  ASSERT_NE(at, std::string::npos);
  bytes.replace(at, 3, " v9");  // pretend a future schema wrote it
  spit(file.path, bytes);

  size_t calls = 0;
  SnapshotStats in = loadCacheSnapshot(
      file.path, [&](std::string, std::string) { ++calls; });
  EXPECT_EQ(calls, 0u);
  EXPECT_EQ(in.loaded, 0u);
  EXPECT_GE(in.dropped, 1u);
}

TEST(ChaosPersist, GarbageFileLoadsNothingAndNeverThrows) {
  TempFile file("garbage");
  spit(file.path, "not a snapshot at all\n\x01\x02\x03 bytes\n");
  size_t calls = 0;
  EXPECT_NO_THROW(loadCacheSnapshot(
      file.path, [&](std::string, std::string) { ++calls; }));
  EXPECT_EQ(calls, 0u);
}

TEST(ChaosPersist, ServiceWarmRestartServesCanonicalHits) {
  TempFile file("warm");
  std::string coldPayload;
  {
    CompileService first;
    CompileResponse cold = first.handle(dagText("a", "b"), smallTarget());
    ASSERT_TRUE(cold.ok) << cold.payload;
    coldPayload = cold.payload;
    ASSERT_TRUE(first.cacheDirty());
    PersistResult saved = first.saveCache(file.path);
    ASSERT_TRUE(saved.ok);
    EXPECT_EQ(saved.entries, 1u);
    EXPECT_FALSE(first.cacheDirty());
  }  // "crash": the first daemon is gone

  CompileService second;
  PersistResult warm = second.loadCache(file.path);
  ASSERT_TRUE(warm.ok);
  EXPECT_EQ(warm.entries, 1u);
  EXPECT_EQ(warm.dropped, 0u);
  EXPECT_FALSE(second.cacheDirty());
  // The rehydrated daemon serves the same request as a canonical hit
  // (source bytes re-parse, the fingerprint matches the warmed entry)
  // with a byte-identical payload.
  CompileResponse hit = second.handle(dagText("a", "b"), smallTarget());
  ASSERT_TRUE(hit.ok) << hit.payload;
  EXPECT_TRUE(hit.cacheHit);
  EXPECT_FALSE(hit.direct);
  EXPECT_EQ(hit.payload, coldPayload);
  EXPECT_EQ(second.stats().counters.misses, 0u);
}

TEST(ChaosPersist, SaveFailpointSurfacesAsPersistError) {
  TempFile file("persistfault");
  CompileService service;
  ASSERT_TRUE(service.handle(dagText("a", "b"), smallTarget()).ok);
  FailpointGuard guard("persist:err");
  PersistResult saved = service.saveCache(file.path);
  EXPECT_FALSE(saved.ok);
  EXPECT_TRUE(service.cacheDirty());  // nothing durable yet
  EXPECT_NE(service.metricsJson().find("\"serve.persist_errors\": 1"),
            std::string::npos);
}

TEST(ChaosMetrics, ResilienceCountersPresentFromTheFirstDump) {
  CompileService service;
  std::string json = service.metricsJson();
  for (const char* name :
       {"\"serve.shed\": 0", "\"serve.deadline_exceeded\": 0",
        "\"serve.injected_faults\": 0", "\"serve.inflight\": 0",
        "\"serve.queue_depth\": 0"})
    EXPECT_NE(json.find(name), std::string::npos) << name << "\n" << json;
}
