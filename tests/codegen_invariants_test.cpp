// Cross-cutting structural invariants of generated programs, swept over a
// grid of random DAGs, mapping strategies, targets and codegen options.
// Complements pipeline_test's functional verification with checks on the
// instruction stream itself.
#include <gtest/gtest.h>

#include <set>

#include "mapping/compiler.h"
#include "sim/simulator.h"
#include "transforms/passes.h"
#include "workloads/bitweaving.h"
#include "workloads/random_dag.h"

namespace sherlock::mapping {
namespace {

struct GridCase {
  uint64_t seed;
  int ops;
  int maxArity;
  int dim;
  Strategy strategy;
  bool merge;
  bool eager;
};

std::string gridName(const testing::TestParamInfo<GridCase>& info) {
  const GridCase& c = info.param;
  return strCat("s", c.seed, "_ops", c.ops, "_a", c.maxArity, "_d", c.dim,
                "_", c.strategy == Strategy::Naive ? "naive" : "opt",
                c.merge ? "_mg" : "", c.eager ? "_eager" : "");
}

class ProgramInvariants : public testing::TestWithParam<GridCase> {};

TEST_P(ProgramInvariants, Hold) {
  const GridCase& c = GetParam();
  workloads::RandomDagSpec spec;
  spec.seed = c.seed;
  spec.ops = c.ops;
  spec.maxArity = c.maxArity;
  spec.inputs = 10;
  ir::Graph g =
      transforms::canonicalize(workloads::buildRandomDag(spec));

  isa::TargetSpec target = isa::TargetSpec::square(
      c.dim, device::TechnologyParams::reRam(), c.maxArity);
  CompileOptions opts;
  opts.strategy = c.strategy;
  opts.mergeInstructions = c.merge;
  opts.eagerWriteback = c.eager;
  auto compiled = compile(g, target, opts);
  const Program& p = compiled.program;

  // (1) Every instruction validates against the target bounds.
  for (const auto& inst : p.instructions)
    ASSERT_NO_THROW(isa::validateInstruction(inst, target.numArrays,
                                             target.rows(), target.cols()));

  // (2) The MRA cap holds on every read.
  for (const auto& inst : p.instructions)
    if (inst.kind == isa::InstKind::Read)
      EXPECT_LE(static_cast<int>(inst.rows.size()), target.mraLimit());

  // (3) Exactly one CIM column-op per DAG op (merging moves, never
  // duplicates or drops them).
  long colOps = 0;
  for (const auto& inst : p.instructions)
    colOps += static_cast<long>(inst.colOps.size());
  EXPECT_EQ(colOps, static_cast<long>(g.opCount()));

  // (4) Every output has a recorded cell, and host-write annotations are
  // well-formed.
  EXPECT_EQ(p.outputCells.size(),
            std::set<ir::NodeId>(g.outputs().begin(), g.outputs().end())
                .size());
  for (const auto& [idx, values] : p.hostWriteValues) {
    ASSERT_LT(idx, p.instructions.size());
    EXPECT_EQ(p.instructions[idx].kind, isa::InstKind::Write);
    EXPECT_EQ(values.size(), p.instructions[idx].columns.size());
  }

  // (5) Logical stats are consistent with the physical stream.
  EXPECT_EQ(p.stats.totalInstructions(),
            static_cast<long>(p.instructions.size()) +
                p.stats.mergedInstructions);

  // (6) The program verifies functionally.
  auto result = sim::simulate(g, target, p);
  EXPECT_TRUE(result.verified);

  // (7) Peak cell usage never exceeds the target capacity.
  EXPECT_LE(p.peakLiveCells,
            target.rows() * target.cols() * target.numArrays);
}

std::vector<GridCase> grid() {
  std::vector<GridCase> cases;
  uint64_t seed = 500;
  for (int dim : {64, 256})
    for (auto strategy : {Strategy::Naive, Strategy::Optimized})
      for (bool merge : {false, true})
        for (bool eager : {false, true})
          cases.push_back(
              {seed++, 180 + dim / 2, 2 + static_cast<int>(seed % 3), dim,
               strategy, merge, eager});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Grid, ProgramInvariants, testing::ValuesIn(grid()),
                         gridName);

}  // namespace
}  // namespace sherlock::mapping

namespace sherlock::mapping {
namespace {

TEST(WaveOrder, TLevelSchedulingVerifies) {
  for (uint64_t seed = 900; seed < 906; ++seed) {
    workloads::RandomDagSpec spec;
    spec.seed = seed;
    spec.ops = 250;
    spec.maxArity = 3;
    ir::Graph g =
        transforms::canonicalize(workloads::buildRandomDag(spec));
    isa::TargetSpec target =
        isa::TargetSpec::square(128, device::TechnologyParams::reRam(), 3);
    for (auto order : {CodegenOptions::WaveOrder::BLevel,
                       CodegenOptions::WaveOrder::TLevel}) {
      PlacementPlan plan = mapOptimized(g, target).plan;
      CodegenOptions cg;
      cg.waveOrder = order;
      auto program = generateCode(g, target, plan, cg);
      auto result = sim::simulate(g, target, program);
      EXPECT_TRUE(result.verified) << "seed " << seed;
    }
  }
}

TEST(MultiArray, SmallArraysExerciseMoves) {
  // 6k values on 64x64 arrays (4096 cells each) force a multi-array
  // layout; the inter-array move path must stay functionally correct.
  workloads::BitweavingSpec spec;
  spec.bits = 16;
  spec.segments = 32;
  ir::Graph g =
      transforms::canonicalize(workloads::buildBitweaving(spec));
  isa::TargetSpec target =
      isa::TargetSpec::square(64, device::TechnologyParams::reRam(), 2);
  target.numArrays = 16;
  for (auto strategy : {Strategy::Naive, Strategy::Optimized}) {
    CompileOptions opts;
    opts.strategy = strategy;
    auto compiled = compile(g, target, opts);
    EXPECT_GT(compiled.program.usedColumns, 64);  // spans arrays
    auto result = sim::simulate(g, target, compiled.program);
    EXPECT_TRUE(result.verified);
  }
}

}  // namespace
}  // namespace sherlock::mapping

namespace sherlock::mapping {
namespace {

TEST(NoReuseBaseline, RefetchesSharedOperands) {
  // A value consumed from another column by several ops: the no-reuse
  // (naive) flow re-fetches it per use, the optimized flow keeps the
  // replica. Both must verify.
  ir::Graph g;
  auto a = g.addInput("a");
  auto b = g.addInput("b");
  auto shared = g.addOp(ir::OpKind::Xor, {a, b});
  ir::NodeId acc = shared;
  for (int i = 0; i < 12; ++i)
    acc = g.addOp(ir::OpKind::And, {acc, shared});  // heavy reuse
  g.markOutput(acc);
  g.markOutput(shared);

  isa::TargetSpec target =
      isa::TargetSpec::square(64, device::TechnologyParams::reRam(), 2);
  CompileOptions naive, opt;
  naive.strategy = Strategy::Naive;
  opt.strategy = Strategy::Optimized;
  auto pn = compile(g, target, naive);
  auto po = compile(g, target, opt);
  EXPECT_TRUE(sim::simulate(g, target, pn.program).verified);
  EXPECT_TRUE(sim::simulate(g, target, po.program).verified);
}

TEST(Eviction, FullColumnsForceRelocation) {
  // Wide fan-in onto one column with tiny arrays stresses the eviction /
  // replica-drop fallbacks; correctness must survive.
  workloads::RandomDagSpec spec;
  spec.inputs = 20;
  spec.ops = 400;
  spec.maxArity = 4;
  spec.locality = 1.0;  // maximal reuse, values stay live
  for (uint64_t seed = 70; seed < 76; ++seed) {
    spec.seed = seed;
    ir::Graph g =
        transforms::canonicalize(workloads::buildRandomDag(spec));
    isa::TargetSpec target = isa::TargetSpec::square(
        32, device::TechnologyParams::reRam(), 4);
    target.numArrays = 8;
    for (auto strategy : {Strategy::Naive, Strategy::Optimized}) {
      CompileOptions opts;
      opts.strategy = strategy;
      auto compiled = compile(g, target, opts);
      EXPECT_TRUE(sim::simulate(g, target, compiled.program).verified)
          << "seed " << seed;
    }
  }
}

}  // namespace
}  // namespace sherlock::mapping
