// Unit tests for the kernel-language front-end: lexer, parser, and
// AST-to-DAG lowering (loop unrolling, integer evaluation, diagnostics).
#include <gtest/gtest.h>

#include "frontend/lexer.h"
#include "frontend/lowering.h"
#include "ir/analysis.h"
#include "ir/evaluator.h"
#include "workloads/bitweaving.h"

namespace sherlock::frontend {
namespace {

TEST(Lexer, TokenizesOperatorsAndKeywords) {
  auto toks = tokenize("input x; bit y = x & ~x | 1 ^ 0;");
  ASSERT_GE(toks.size(), 5u);
  EXPECT_EQ(toks[0].kind, TokenKind::KwInput);
  EXPECT_EQ(toks[1].kind, TokenKind::Identifier);
  EXPECT_EQ(toks[1].text, "x");
  EXPECT_EQ(toks.back().kind, TokenKind::EndOfFile);
}

TEST(Lexer, CommentsAndPositions) {
  auto toks = tokenize("// comment\n/* block\n */ input x;");
  EXPECT_EQ(toks[0].kind, TokenKind::KwInput);
  EXPECT_EQ(toks[0].line, 3);
  EXPECT_THROW(tokenize("/* unterminated"), ParseError);
  EXPECT_THROW(tokenize("input $x;"), ParseError);
}

TEST(Lexer, RelationalOperators) {
  auto toks = tokenize("< <= > >=");
  EXPECT_EQ(toks[0].kind, TokenKind::Less);
  EXPECT_EQ(toks[1].kind, TokenKind::LessEq);
  EXPECT_EQ(toks[2].kind, TokenKind::Greater);
  EXPECT_EQ(toks[3].kind, TokenKind::GreaterEq);
}

TEST(Lowering, SimpleKernel) {
  ir::Graph g = compileKernel(R"(
    input a;
    input b;
    output r;
    r = a & ~b;
  )");
  g.validate();
  EXPECT_EQ(g.inputCount(), 2u);
  EXPECT_EQ(g.opCount(), 2u);
  std::map<std::string, uint64_t> in{{"a", 0b1100}, {"b", 0b1010}};
  auto words = ir::evaluateAllWords(g, in);
  EXPECT_EQ(words[static_cast<size_t>(g.outputs()[0])] & 0xf, 0b0100u);
}

TEST(Lowering, OperatorPrecedence) {
  // a | b & c ^ d  parses as  a | ((b & c) ^ d).
  ir::Graph g = compileKernel(R"(
    input a; input b; input c; input d;
    output r;
    r = a | b & c ^ d;
  )");
  std::map<std::string, uint64_t> in{
      {"a", 0b0000}, {"b", 0b1100}, {"c", 0b1010}, {"d", 0b0001}};
  auto words = ir::evaluateAllWords(g, in);
  EXPECT_EQ(words[static_cast<size_t>(g.outputs()[0])] & 0xf,
            ((0b1100 & 0b1010) ^ 0b0001) | 0b0000u);
}

TEST(Lowering, ArraysAndLoops) {
  ir::Graph g = compileKernel(R"(
    input x[4];
    output r;
    bit acc = 0;
    for (i = 0; i < 4; i = i + 1) {
      acc = acc | x[i];
    }
    r = acc;
  )");
  // acc starts as const 0; OR chain over 4 slices.
  EXPECT_EQ(g.inputCount(), 4u);
  std::map<std::string, uint64_t> in{
      {"x.0", 1}, {"x.1", 0}, {"x.2", 4}, {"x.3", 0}};
  auto words = ir::evaluateAllWords(g, in);
  EXPECT_EQ(words[static_cast<size_t>(g.outputs()[0])], 5u);
}

TEST(Lowering, CountingDownLoopAndIntegerArithmetic) {
  ir::Graph g = compileKernel(R"(
    input x[6];
    output r;
    bit acc = 0;
    for (i = 5; i >= 2; i = i - 1) {
      acc = acc ^ x[i - 1];
    }
    r = acc;
  )");
  // Touches x[4], x[3], x[2], x[1].
  std::map<std::string, uint64_t> in{{"x.0", 1}, {"x.1", 2}, {"x.2", 4},
                                     {"x.3", 8}, {"x.4", 16}, {"x.5", 32}};
  auto words = ir::evaluateAllWords(g, in);
  EXPECT_EQ(words[static_cast<size_t>(g.outputs()[0])], 2u ^ 4u ^ 8u ^ 16u);
}

TEST(Lowering, OutputArray) {
  ir::Graph g = compileKernel(R"(
    input a; input b;
    output r[2];
    r[0] = a & b;
    r[1] = a | b;
  )");
  EXPECT_EQ(g.outputs().size(), 2u);
}

TEST(Lowering, BitweavingKernelMatchesBuilder) {
  // The paper's Fig. 3(a) BETWEEN kernel written in the language; must be
  // semantically identical to the programmatic builder.
  const int bits = 6;
  ir::Graph fromSource = compileKernel(R"(
    input v[6]; input c1[6]; input c2[6];
    output r;
    bit gt = 0; bit eqh = 1;
    bit lt = 0; bit eql = 1;
    for (i = 5; i >= 0; i = i - 1) {
      gt = gt | (eqh & v[i] & ~c1[i]);
      eqh = eqh & ~(v[i] ^ c1[i]);
      lt = lt | (eql & ~v[i] & c2[i]);
      eql = eql & ~(v[i] ^ c2[i]);
    }
    r = (gt | eqh) & (lt | eql);
  )");
  fromSource.validate();
  for (uint64_t v = 0; v < 64; v += 7) {
    std::map<std::string, uint64_t> in;
    for (int b = 0; b < bits; ++b) {
      in[strCat("v.", b)] = (v >> b) & 1 ? ~uint64_t{0} : 0;
      in[strCat("c1.", b)] = (20 >> b) & 1 ? ~uint64_t{0} : 0;
      in[strCat("c2.", b)] = (45 >> b) & 1 ? ~uint64_t{0} : 0;
    }
    auto words = ir::evaluateAllWords(fromSource, in);
    bool got = words[static_cast<size_t>(fromSource.outputs()[0])] & 1;
    EXPECT_EQ(got, workloads::bitweavingReference(v, 20, 45, bits))
        << "v = " << v;
  }
}

TEST(Lowering, Diagnostics) {
  EXPECT_THROW(compileKernel("output r; r = x;"), ParseError);   // undeclared
  EXPECT_THROW(compileKernel("input a; input a;"), ParseError);  // redecl
  EXPECT_THROW(compileKernel("bit x; output r; r = x;"),
               ParseError);  // use before assignment
  EXPECT_THROW(compileKernel("input a; bit b = a & 2;"),
               ParseError);  // bad bit constant
  EXPECT_THROW(compileKernel("input a[2]; output r; r = a;"),
               ParseError);  // array without index
  EXPECT_THROW(compileKernel("input a[2]; output r; r = a[5];"),
               ParseError);  // out of bounds
  EXPECT_THROW(compileKernel("output r;"), ParseError);  // never assigned
  EXPECT_THROW(compileKernel("input a; bit b = a +"),
               ParseError);  // syntax
  EXPECT_THROW(compileKernel(R"(
    input a; output r;
    for (i = 0; i >= 0; i = i + 1) { r = a; }
  )"),
               ParseError);  // unbounded loop hits the unroll limit
}

TEST(Lowering, LoopVarScoping) {
  // Nested loops and reuse of the loop variable after the loop ends.
  ir::Graph g = compileKernel(R"(
    input x[4];
    output r;
    bit acc = 0;
    for (i = 0; i < 2; i = i + 1) {
      for (j = 0; j < 2; j = j + 1) {
        acc = acc ^ x[2 * i + j];
      }
    }
    for (i = 0; i < 1; i = i + 1) { acc = acc ^ x[0]; }
    r = acc;
  )");
  std::map<std::string, uint64_t> in{
      {"x.0", 1}, {"x.1", 2}, {"x.2", 4}, {"x.3", 8}};
  auto words = ir::evaluateAllWords(g, in);
  EXPECT_EQ(words[static_cast<size_t>(g.outputs()[0])],
            (1u ^ 2u ^ 4u ^ 8u) ^ 1u);
}

}  // namespace
}  // namespace sherlock::frontend
