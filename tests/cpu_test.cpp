// Unit tests for the CPU baseline cost model (Fig. 7 comparator).
#include <gtest/gtest.h>

#include "cpu/cpu_model.h"
#include "workloads/aes.h"
#include "workloads/bitweaving.h"
#include "workloads/sobel.h"

namespace sherlock::cpu {
namespace {

TEST(CpuModel, ScalesWithBulkWidth) {
  ir::Graph g = workloads::buildBitweaving({16});
  auto narrow = estimateCpu(g, 512);
  auto wide = estimateCpu(g, 4096);
  EXPECT_NEAR(wide.latencyNs / narrow.latencyNs, 8.0, 2.0);
  EXPECT_GT(wide.energyPj, narrow.energyPj);
}

TEST(CpuModel, ScalesWithGraphSize) {
  auto small = estimateCpu(workloads::buildBitweaving({8}), 1024);
  auto large = estimateCpu(workloads::buildBitweaving({16}), 1024);
  EXPECT_GT(large.latencyNs, small.latencyNs);
  EXPECT_GT(large.wordOps, small.wordOps);
}

TEST(CpuModel, WorkingSetDrivesMemoryLevel) {
  // Same op count, wider bulk -> larger working set -> worse per-op cost
  // once it spills the caches.
  ir::Graph g = workloads::buildSobel({});
  auto fits = estimateCpu(g, 64);
  auto spills = estimateCpu(g, 4096);
  double perOpFits = fits.latencyNs / fits.wordOps;
  double perOpSpills = spills.latencyNs / spills.wordOps;
  EXPECT_GT(perOpSpills, perOpFits);
  EXPECT_GT(spills.workingSetBytes, fits.workingSetBytes);
}

TEST(CpuModel, MultiOperandCountsWordOps) {
  ir::Graph g;
  auto a = g.addInput("a");
  auto b = g.addInput("b");
  auto c = g.addInput("c");
  auto d = g.addInput("d");
  g.markOutput(g.addOp(ir::OpKind::And, {a, b, c, d}));
  auto r = estimateCpu(g, 64);
  // 4-operand AND = 3 two-input word ops at width 1 word.
  EXPECT_EQ(r.wordOps, 3);
}

TEST(CpuModel, RejectsBadWidth) {
  ir::Graph g = workloads::buildBitweaving({8});
  EXPECT_THROW(estimateCpu(g, 0), Error);
}

TEST(CpuModel, EdpUnitsConsistent) {
  ir::Graph g = workloads::buildBitweaving({16});
  auto r = estimateCpu(g, 2048);
  EXPECT_NEAR(r.edp(), r.energyUj() * r.latencyUs(), 1e-9);
}

}  // namespace
}  // namespace sherlock::cpu
