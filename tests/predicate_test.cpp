// Parameterized property sweep over the column-scan predicate kernels:
// every predicate x bit-width combination is built, evaluated across 64
// random lanes plus hand-picked boundary lanes, and checked against the
// plain-integer reference — then compiled and run end to end on the CIM
// pipeline.
#include <gtest/gtest.h>

#include "ir/evaluator.h"
#include "mapping/compiler.h"
#include "sim/simulator.h"
#include "support/rng.h"
#include "transforms/passes.h"
#include "workloads/bitweaving.h"

namespace sherlock::workloads {
namespace {

struct PredicateCase {
  Predicate predicate;
  int bits;
};

std::string caseName(const testing::TestParamInfo<PredicateCase>& info) {
  return strCat(predicateName(info.param.predicate), "_",
                info.param.bits, "b");
}

class PredicateScanTest : public testing::TestWithParam<PredicateCase> {
 protected:
  static std::map<std::string, uint64_t> makeInputs(
      const std::vector<uint64_t>& values, uint64_t c1, uint64_t c2,
      int bits) {
    std::map<std::string, uint64_t> in;
    for (int b = 0; b < bits; ++b) {
      uint64_t slice = 0;
      for (size_t lane = 0; lane < values.size(); ++lane)
        if ((values[lane] >> b) & 1) slice |= uint64_t{1} << lane;
      in[strCat("v.", b)] = slice;
      in[strCat("c1.", b)] = ((c1 >> b) & 1) ? ~uint64_t{0} : 0;
      in[strCat("c2.", b)] = ((c2 >> b) & 1) ? ~uint64_t{0} : 0;
    }
    return in;
  }
};

TEST_P(PredicateScanTest, MatchesIntegerReference) {
  const PredicateCase& pc = GetParam();
  PredicateScanSpec spec;
  spec.predicate = pc.predicate;
  spec.bits = pc.bits;
  ir::Graph g = buildPredicateScan(spec);
  g.validate();

  uint64_t maxVal = (uint64_t{1} << pc.bits) - 1;
  uint64_t c1 = maxVal / 3;
  uint64_t c2 = 2 * (maxVal / 3);

  Rng rng(pc.bits * 31 + static_cast<int>(pc.predicate));
  std::vector<uint64_t> values;
  // Boundary lanes first, then random fill.
  for (uint64_t v : {uint64_t{0}, c1, c1 + 1, c1 - 1, c2, c2 + 1, maxVal})
    values.push_back(v & maxVal);
  while (values.size() < 64) values.push_back(rng.below(maxVal + 1));

  auto words = ir::evaluateAllWords(
      g, makeInputs(values, c1, c2, pc.bits));
  uint64_t result = words[static_cast<size_t>(g.outputs()[0])];
  for (int lane = 0; lane < 64; ++lane) {
    bool expected = predicateReference(
        pc.predicate, values[static_cast<size_t>(lane)], c1, c2, pc.bits);
    EXPECT_EQ(((result >> lane) & 1) != 0, expected)
        << "lane " << lane << " value " << values[static_cast<size_t>(lane)];
  }
}

TEST_P(PredicateScanTest, CompilesAndVerifiesOnCim) {
  const PredicateCase& pc = GetParam();
  PredicateScanSpec spec;
  spec.predicate = pc.predicate;
  spec.bits = pc.bits;
  spec.segments = 2;
  ir::Graph g = transforms::canonicalize(buildPredicateScan(spec));

  isa::TargetSpec target =
      isa::TargetSpec::square(128, device::TechnologyParams::reRam());
  for (auto strategy :
       {mapping::Strategy::Naive, mapping::Strategy::Optimized}) {
    mapping::CompileOptions opts;
    opts.strategy = strategy;
    auto compiled = mapping::compile(g, target, opts);
    auto result = sim::simulate(g, target, compiled.program);
    EXPECT_TRUE(result.verified);
  }
}

std::vector<PredicateCase> allCases() {
  std::vector<PredicateCase> cases;
  for (Predicate p : {Predicate::Lt, Predicate::Le, Predicate::Gt,
                      Predicate::Ge, Predicate::Eq, Predicate::Ne,
                      Predicate::Between})
    for (int bits : {4, 8, 13})
      cases.push_back({p, bits});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllPredicates, PredicateScanTest,
                         testing::ValuesIn(allCases()), caseName);

}  // namespace
}  // namespace sherlock::workloads
