// Unit tests for the support library: bit vectors, RNG, statistics,
// tables, and the thread pool.
#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <cmath>
#include <cstdlib>
#include <numeric>
#include <thread>
#include <vector>

#include "support/bitvector.h"
#include "support/parallel.h"
#include "support/rng.h"
#include "support/stats.h"
#include "support/table.h"

namespace sherlock {
namespace {

TEST(BitVector, ConstructionAndAccess) {
  BitVector v(70);
  EXPECT_EQ(v.size(), 70u);
  EXPECT_FALSE(v.any());
  v.set(0, true);
  v.set(69, true);
  EXPECT_TRUE(v.get(0));
  EXPECT_TRUE(v.get(69));
  EXPECT_FALSE(v.get(35));
  EXPECT_EQ(v.popcount(), 2u);
}

TEST(BitVector, AllOnesRespectsPadding) {
  BitVector v(70, true);
  EXPECT_TRUE(v.all());
  EXPECT_EQ(v.popcount(), 70u);
  // Complement of all-ones must be all-zeros, including the padded word.
  EXPECT_FALSE((~v).any());
}

TEST(BitVector, BitwiseOps) {
  auto a = BitVector::fromString("1100");
  auto b = BitVector::fromString("1010");
  EXPECT_EQ((a & b).toString(), "1000");
  EXPECT_EQ((a | b).toString(), "1110");
  EXPECT_EQ((a ^ b).toString(), "0110");
  EXPECT_EQ((~a).toString(), "0011");
}

TEST(BitVector, SizeMismatchThrows) {
  BitVector a(8), b(9);
  EXPECT_THROW(a & b, InternalError);
}

TEST(BitVector, Shifts) {
  auto a = BitVector::fromString("0011");
  EXPECT_EQ(a.shiftedLeft(1).toString(), "0110");
  EXPECT_EQ(a.shiftedRight(1).toString(), "0001");
  EXPECT_EQ(a.shiftedLeft(4).toString(), "0000");
}

TEST(BitVector, SliceAndRoundTrip) {
  auto a = BitVector::fromUint64(0xdeadbeef, 32);
  EXPECT_EQ(a.toUint64(), 0xdeadbeefu);
  EXPECT_EQ(a.slice(0, 16).toUint64(), 0xbeefu);
  EXPECT_EQ(a.slice(16, 16).toUint64(), 0xdeadu);
  EXPECT_EQ(BitVector::fromString(a.toString()), a);
}

TEST(BitVector, FromStringRejectsBadChars) {
  EXPECT_THROW(BitVector::fromString("10x1"), Error);
}

TEST(Rng, DeterministicAndDistinctSeeds) {
  Rng a(1), b(1), c(2);
  EXPECT_EQ(a(), b());
  Rng a2(1);
  EXPECT_NE(a2(), c());
}

TEST(Rng, UniformBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    EXPECT_LT(rng.below(17), 17u);
    int64_t r = rng.range(-5, 5);
    EXPECT_GE(r, -5);
    EXPECT_LE(r, 5);
  }
}

TEST(Rng, BelowIsUnbiasedAtLargeBounds) {
  // bound = 3 * 2^62: reducing a uniform 64-bit draw with naive modulo
  // gives every value below 2^62 two preimages (x and x + bound) and
  // every other value one, so P(result < 2^62) would be 1/2 instead of
  // the unbiased 1/3. Lemire rejection sampling must keep it at 1/3.
  Rng rng(123);
  const uint64_t bound = uint64_t{3} << 62;
  const int kDraws = 30000;
  int low = 0;
  for (int i = 0; i < kDraws; ++i) {
    uint64_t v = rng.below(bound);
    ASSERT_LT(v, bound);
    if (v < (uint64_t{1} << 62)) ++low;
  }
  double frac = static_cast<double>(low) / kDraws;
  // 1/3 +- ~5.5 sigma (sigma = sqrt(p(1-p)/n) ~ 0.0027); the modulo bias
  // would land at ~0.5, ~60 sigma away.
  EXPECT_NEAR(frac, 1.0 / 3.0, 0.015);
}

TEST(Rng, BelowIsDeterministic) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.below(999983), b.below(999983));
}

TEST(Rng, SampleBernoulliBitsMatchesBernoulliRate) {
  // The batched geometric sampler must reproduce the per-lane Bernoulli
  // flip rate it replaces: over N lanes, flips ~ Binomial(N, p).
  constexpr size_t kWords = 64;          // 4096 lanes per call
  constexpr int kCalls = 50;             // 204800 lanes total
  const double ps[] = {0.001, 0.05, 0.3};
  Rng rng(2024);
  for (double p : ps) {
    long flips = 0;
    for (int c = 0; c < kCalls; ++c) {
      std::vector<uint64_t> words(kWords, 0);
      long n = sampleBernoulliBits(rng, p, words.data(), kWords);
      // The return value is the number of toggles; from a zero buffer
      // each toggle sets a distinct bit.
      long pop = 0;
      for (uint64_t w : words) pop += std::popcount(w);
      ASSERT_EQ(n, pop);
      flips += n;
    }
    const double lanes = 64.0 * kWords * kCalls;
    double expected = p * lanes;
    double sigma = std::sqrt(lanes * p * (1.0 - p));
    EXPECT_NEAR(static_cast<double>(flips), expected, 5.0 * sigma)
        << "flip rate off for p = " << p;
  }
}

TEST(Rng, SampleBernoulliBitsEdgeCases) {
  std::vector<uint64_t> words(4, 0xdeadbeefdeadbeefULL);
  Rng rng(1);
  // p = 0: no toggles.
  EXPECT_EQ(sampleBernoulliBits(rng, 0.0, words.data(), words.size()), 0);
  EXPECT_EQ(words[0], 0xdeadbeefdeadbeefULL);
  // p = 1: every lane toggles (XOR semantics, not set).
  EXPECT_EQ(sampleBernoulliBits(rng, 1.0, words.data(), words.size()),
            static_cast<long>(64 * words.size()));
  EXPECT_EQ(words[0], ~0xdeadbeefdeadbeefULL);
  // Empty buffer.
  EXPECT_EQ(sampleBernoulliBits(rng, 0.5, nullptr, 0), 0);
}

TEST(Rng, SampleBernoulliBitsIsDeterministic) {
  std::vector<uint64_t> a(8, 0), b(8, 0);
  Rng ra(99), rb(99);
  long na = sampleBernoulliBits(ra, 0.07, a.data(), a.size());
  long nb = sampleBernoulliBits(rb, 0.07, b.data(), b.size());
  EXPECT_EQ(na, nb);
  EXPECT_EQ(a, b);
  EXPECT_GT(na, 0);  // 512 lanes at p = 0.07: zero flips is implausible
}

TEST(Stats, MeanGeomeanStddev) {
  std::vector<double> xs{1.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 7.0 / 3.0);
  EXPECT_NEAR(geomean(xs), 2.0, 1e-12);
  EXPECT_NEAR(stddev(xs), 1.5275252316519468, 1e-9);
  EXPECT_THROW(geomean({1.0, -1.0}), Error);
}

TEST(Stats, GeomeanEdgeCases) {
  EXPECT_DOUBLE_EQ(geomean({}), 0.0);
  EXPECT_DOUBLE_EQ(geomean({3.5}), 3.5);
  EXPECT_THROW(geomean({0.0}), Error);
  EXPECT_THROW(geomean({2.0, 0.0, 4.0}), Error);
}

TEST(Stats, GeomeanSafeFloorsNonPositiveInputs) {
  // Strictly positive inputs match geomean exactly.
  std::vector<double> xs{1.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(geomeanSafe(xs), geomean(xs));
  // Zero and negative entries are floored instead of throwing.
  EXPECT_NEAR(geomeanSafe({4.0, 0.0}, 0.25), 1.0, 1e-12);
  EXPECT_NEAR(geomeanSafe({4.0, -7.0}, 0.25), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(geomeanSafe({}), 0.0);
  EXPECT_GT(geomeanSafe({1.0, 0.0}), 0.0);
  EXPECT_THROW(geomeanSafe({1.0}, 0.0), Error);
  EXPECT_THROW(geomeanSafe({1.0}, -1.0), Error);
}

TEST(Stats, Quantile) {
  std::vector<double> xs{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 2.5);
}

TEST(Stats, QuantileEdgeCases) {
  EXPECT_DOUBLE_EQ(quantile({42.0}, 0.0), 42.0);
  EXPECT_DOUBLE_EQ(quantile({42.0}, 0.5), 42.0);
  EXPECT_DOUBLE_EQ(quantile({42.0}, 1.0), 42.0);
  EXPECT_THROW(quantile({}, 0.5), Error);
  EXPECT_THROW(quantile({1.0, 2.0}, -0.1), Error);
  EXPECT_THROW(quantile({1.0, 2.0}, 1.1), Error);
}

TEST(Parallel, SplitMixDeterministicAndDecorrelated) {
  EXPECT_EQ(splitmix64(42), splitmix64(42));
  EXPECT_NE(splitmix64(42), splitmix64(43));
  EXPECT_EQ(deriveSeed(7, 0), deriveSeed(7, 0));
  // Adjacent trial indices and adjacent base seeds both give distinct
  // streams.
  EXPECT_NE(deriveSeed(7, 0), deriveSeed(7, 1));
  EXPECT_NE(deriveSeed(7, 0), deriveSeed(8, 0));
}

TEST(Parallel, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr int64_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallelFor(kN, [&](int64_t i) { hits[i].fetch_add(1); });
  for (int64_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(Parallel, SerialPoolRunsInOrderOnCallingThread) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.threadCount(), 1);
  std::vector<int64_t> order;
  const std::thread::id self = std::this_thread::get_id();
  pool.parallelFor(16, [&](int64_t i) {
    EXPECT_EQ(std::this_thread::get_id(), self);
    order.push_back(i);
  });
  std::vector<int64_t> expected(16);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(Parallel, ExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallelFor(100,
                       [&](int64_t i) {
                         if (i == 37) throw Error("iteration 37 failed");
                       }),
      Error);
  // The pool survives a failed batch and keeps scheduling new ones.
  std::atomic<int64_t> sum{0};
  pool.parallelFor(10, [&](int64_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 45);
}

TEST(Parallel, ExceptionCancelsUnclaimedIterations) {
  ThreadPool pool(2);
  std::atomic<int> executed{0};
  EXPECT_THROW(pool.parallelFor(100000,
                                [&](int64_t) {
                                  executed.fetch_add(1);
                                  throw Error("fail fast");
                                }),
               Error);
  // At most one claim per pool lane can still be in flight when the
  // cancellation lands.
  EXPECT_LE(executed.load(), pool.threadCount());
}

TEST(Parallel, NestedParallelForFlattensWithoutDeadlock) {
  ThreadPool pool(4);
  constexpr int64_t kOuter = 8, kInner = 8;
  std::vector<std::atomic<int>> hits(kOuter * kInner);
  pool.parallelFor(kOuter, [&](int64_t i) {
    const std::thread::id outerThread = std::this_thread::get_id();
    pool.parallelFor(kInner, [&](int64_t j) {
      // The flattened inner loop must stay on the worker it landed on.
      EXPECT_EQ(std::this_thread::get_id(), outerThread);
      hits[i * kInner + j].fetch_add(1);
    });
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Parallel, ParallelMapPreservesInputOrder) {
  ThreadPool pool(8);
  std::vector<int> items(257);
  std::iota(items.begin(), items.end(), 0);
  auto squares =
      parallelMap(pool, items, [](const int& x) { return x * x; });
  ASSERT_EQ(squares.size(), items.size());
  for (size_t i = 0; i < items.size(); ++i)
    EXPECT_EQ(squares[i], static_cast<int>(i * i));
}

TEST(Parallel, ParallelMapMatchesSerialBitExactly) {
  // The determinism contract: identical results for any thread count.
  std::vector<uint64_t> trials(128);
  std::iota(trials.begin(), trials.end(), 0);
  auto run = [&](int threads) {
    ThreadPool pool(threads);
    return parallelMap(pool, trials, [](const uint64_t& t) {
      Rng rng(deriveSeed(0xabcdef, t));
      uint64_t acc = 0;
      for (int i = 0; i < 100; ++i) acc ^= rng();
      return acc;
    });
  };
  EXPECT_EQ(run(1), run(8));
}

TEST(Parallel, DefaultThreadsHonorsEnvOverride) {
  ::setenv("SHERLOCK_THREADS", "3", 1);
  EXPECT_EQ(ThreadPool::defaultThreads(), 3);
  ThreadPool pool;  // picks up the override
  EXPECT_EQ(pool.threadCount(), 3);
  ::setenv("SHERLOCK_THREADS", "garbage", 1);
  EXPECT_GE(ThreadPool::defaultThreads(), 1);
  ::setenv("SHERLOCK_THREADS", "0", 1);
  EXPECT_GE(ThreadPool::defaultThreads(), 1);
  ::unsetenv("SHERLOCK_THREADS");
  EXPECT_GE(ThreadPool::defaultThreads(), 1);
}

TEST(Stats, NormalTailAccuracy) {
  EXPECT_NEAR(normalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normalTail(0.0), 0.5, 1e-12);
  // Far tail stays positive and decreasing (the reliability model lives
  // out here).
  double p6 = normalTail(6.0);
  double p8 = normalTail(8.0);
  EXPECT_GT(p6, 0.0);
  EXPECT_GT(p8, 0.0);
  EXPECT_LT(p8, p6);
  EXPECT_NEAR(p6, 9.8659e-10, 1e-13);
}

TEST(Table, RendersAlignedCells) {
  Table t("demo");
  t.setHeader({"name", "value"});
  t.addRow({"alpha", "1"});
  t.addSeparator();
  t.addRow({"b", "22"});
  std::string s = t.toString();
  EXPECT_NE(s.find("demo"), std::string::npos);
  EXPECT_NE(s.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(s.find("| b     | 22    |"), std::string::npos);
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::sci(0.000123, 1), "1.2e-04");
}

}  // namespace
}  // namespace sherlock
