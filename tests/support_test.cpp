// Unit tests for the support library: bit vectors, RNG, statistics, tables.
#include <gtest/gtest.h>

#include "support/bitvector.h"
#include "support/rng.h"
#include "support/stats.h"
#include "support/table.h"

namespace sherlock {
namespace {

TEST(BitVector, ConstructionAndAccess) {
  BitVector v(70);
  EXPECT_EQ(v.size(), 70u);
  EXPECT_FALSE(v.any());
  v.set(0, true);
  v.set(69, true);
  EXPECT_TRUE(v.get(0));
  EXPECT_TRUE(v.get(69));
  EXPECT_FALSE(v.get(35));
  EXPECT_EQ(v.popcount(), 2u);
}

TEST(BitVector, AllOnesRespectsPadding) {
  BitVector v(70, true);
  EXPECT_TRUE(v.all());
  EXPECT_EQ(v.popcount(), 70u);
  // Complement of all-ones must be all-zeros, including the padded word.
  EXPECT_FALSE((~v).any());
}

TEST(BitVector, BitwiseOps) {
  auto a = BitVector::fromString("1100");
  auto b = BitVector::fromString("1010");
  EXPECT_EQ((a & b).toString(), "1000");
  EXPECT_EQ((a | b).toString(), "1110");
  EXPECT_EQ((a ^ b).toString(), "0110");
  EXPECT_EQ((~a).toString(), "0011");
}

TEST(BitVector, SizeMismatchThrows) {
  BitVector a(8), b(9);
  EXPECT_THROW(a & b, InternalError);
}

TEST(BitVector, Shifts) {
  auto a = BitVector::fromString("0011");
  EXPECT_EQ(a.shiftedLeft(1).toString(), "0110");
  EXPECT_EQ(a.shiftedRight(1).toString(), "0001");
  EXPECT_EQ(a.shiftedLeft(4).toString(), "0000");
}

TEST(BitVector, SliceAndRoundTrip) {
  auto a = BitVector::fromUint64(0xdeadbeef, 32);
  EXPECT_EQ(a.toUint64(), 0xdeadbeefu);
  EXPECT_EQ(a.slice(0, 16).toUint64(), 0xbeefu);
  EXPECT_EQ(a.slice(16, 16).toUint64(), 0xdeadu);
  EXPECT_EQ(BitVector::fromString(a.toString()), a);
}

TEST(BitVector, FromStringRejectsBadChars) {
  EXPECT_THROW(BitVector::fromString("10x1"), Error);
}

TEST(Rng, DeterministicAndDistinctSeeds) {
  Rng a(1), b(1), c(2);
  EXPECT_EQ(a(), b());
  Rng a2(1);
  EXPECT_NE(a2(), c());
}

TEST(Rng, UniformBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    EXPECT_LT(rng.below(17), 17u);
    int64_t r = rng.range(-5, 5);
    EXPECT_GE(r, -5);
    EXPECT_LE(r, 5);
  }
}

TEST(Stats, MeanGeomeanStddev) {
  std::vector<double> xs{1.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 7.0 / 3.0);
  EXPECT_NEAR(geomean(xs), 2.0, 1e-12);
  EXPECT_NEAR(stddev(xs), 1.5275252316519468, 1e-9);
  EXPECT_THROW(geomean({1.0, -1.0}), Error);
}

TEST(Stats, Quantile) {
  std::vector<double> xs{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 2.5);
}

TEST(Stats, NormalTailAccuracy) {
  EXPECT_NEAR(normalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normalTail(0.0), 0.5, 1e-12);
  // Far tail stays positive and decreasing (the reliability model lives
  // out here).
  double p6 = normalTail(6.0);
  double p8 = normalTail(8.0);
  EXPECT_GT(p6, 0.0);
  EXPECT_GT(p8, 0.0);
  EXPECT_LT(p8, p6);
  EXPECT_NEAR(p6, 9.8659e-10, 1e-13);
}

TEST(Table, RendersAlignedCells) {
  Table t("demo");
  t.setHeader({"name", "value"});
  t.addRow({"alpha", "1"});
  t.addSeparator();
  t.addRow({"b", "22"});
  std::string s = t.toString();
  EXPECT_NE(s.find("demo"), std::string::npos);
  EXPECT_NE(s.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(s.find("| b     | 22    |"), std::string::npos);
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::sci(0.000123, 1), "1.2e-04");
}

}  // namespace
}  // namespace sherlock
