// Unit tests for the static program verifier (src/verify): every rule is
// exercised with a hand-crafted illegal program and pinned to its
// instruction; valid programs — hand-written micro programs and the three
// paper workloads under both mappers — must verify cleanly.
#include <gtest/gtest.h>

#include "device/faultmap.h"
#include "mapping/compiler.h"
#include "sim/simulator.h"
#include "transforms/passes.h"
#include "verify/verifier.h"
#include "workloads/aes.h"
#include "workloads/bitweaving.h"
#include "workloads/random_dag.h"
#include "workloads/sobel.h"

namespace sherlock::verify {
namespace {

using isa::Instruction;
using isa::ShiftDirection;

isa::TargetSpec target64(int mra = 4) {
  return isa::TargetSpec::square(64, device::TechnologyParams::reRam(), mra);
}

/// The same known-good micro program the simulator tests use:
/// y = Xor(And(a, b), c), outputs at (0, 0, 3).
struct MicroProgram {
  ir::Graph g;
  mapping::Program prog;
  ir::NodeId a, b, c, x, y;
};

MicroProgram makeMicro() {
  MicroProgram m;
  m.a = m.g.addInput("a");
  m.b = m.g.addInput("b");
  m.c = m.g.addInput("c");
  m.x = m.g.addOp(ir::OpKind::And, {m.a, m.b});
  m.y = m.g.addOp(ir::OpKind::Xor, {m.x, m.c});
  m.g.markOutput(m.y);

  auto& p = m.prog;
  p.instructions.push_back(isa::makeWrite(0, {0}, 0));
  p.hostWriteValues[0] = {m.a};
  p.instructions.push_back(isa::makeWrite(0, {0}, 1));
  p.hostWriteValues[1] = {m.b};
  p.instructions.push_back(isa::makeWrite(0, {0}, 2));
  p.hostWriteValues[2] = {m.c};
  p.instructions.push_back(
      isa::makeCimRead(0, {0}, {0, 1}, {ir::OpKind::And}));
  p.instructions.push_back(
      isa::makeCimRead(0, {0}, {2}, {ir::OpKind::Xor}, {true}));
  p.instructions.push_back(isa::makeWrite(0, {0}, 3));
  p.outputCells[m.y] = {0, 0, 3};
  return m;
}

/// First violation of the micro program after `mutate` corrupted it.
Violation firstViolation(MicroProgram m) {
  VerifyResult r = verifyProgram(m.g, target64(), m.prog);
  EXPECT_FALSE(r.ok()) << "expected a violation";
  if (r.ok()) return {};
  return r.violations.front();
}

TEST(Verifier, AcceptsMicroProgram) {
  MicroProgram m = makeMicro();
  VerifyResult r = verifyProgram(m.g, target64(), m.prog);
  EXPECT_TRUE(r.ok()) << r.summary();
  EXPECT_EQ(r.checkedInstructions, 6);
}

TEST(Verifier, RejectsOutOfBoundsColumn) {
  MicroProgram m = makeMicro();
  m.prog.instructions[3].columns = {64};
  Violation v = firstViolation(std::move(m));
  EXPECT_EQ(v.rule, Rule::AddressBounds);
  EXPECT_EQ(v.instructionIndex, 3u);
}

TEST(Verifier, RejectsOutOfBoundsArray) {
  MicroProgram m = makeMicro();
  m.prog.instructions[0].arrayId = 99;
  Violation v = firstViolation(std::move(m));
  EXPECT_EQ(v.rule, Rule::AddressBounds);
  EXPECT_EQ(v.instructionIndex, 0u);
}

TEST(Verifier, RejectsMraOverflow) {
  MicroProgram m = makeMicro();
  // Activate 3 rows on an MRA-2 target.
  m.prog.instructions[3].rows = {0, 1, 2};
  isa::TargetSpec t = target64(/*mra=*/2);
  VerifyResult r = verifyProgram(m.g, t, m.prog);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.violations.front().rule, Rule::MraExceeded);
  EXPECT_EQ(r.violations.front().instructionIndex, 3u);
}

TEST(Verifier, RejectsMismatchedRowSetEncoding) {
  // Column-op vectors that do not parallel the column list model a
  // malformed "per-column rows" encoding: two ops for one column.
  MicroProgram m = makeMicro();
  m.prog.instructions[3].colOps = {ir::OpKind::And, ir::OpKind::Or};
  Violation v = firstViolation(std::move(m));
  EXPECT_EQ(v.rule, Rule::InstructionShape);
  EXPECT_EQ(v.instructionIndex, 3u);
}

TEST(Verifier, RejectsUnsortedRows) {
  MicroProgram m = makeMicro();
  m.prog.instructions[3].rows = {1, 0};
  Violation v = firstViolation(std::move(m));
  EXPECT_EQ(v.rule, Rule::InstructionShape);
}

TEST(Verifier, RejectsReadBeforeWrite) {
  MicroProgram m = makeMicro();
  m.prog.instructions[3].rows = {0, 5};  // row 5 never written
  Violation v = firstViolation(std::move(m));
  EXPECT_EQ(v.rule, Rule::ReadBeforeWrite);
  EXPECT_EQ(v.instructionIndex, 3u);
  EXPECT_EQ(v.arrayId, 0);
  EXPECT_EQ(v.row, 5);
  EXPECT_EQ(v.col, 0);
}

TEST(Verifier, RejectsChainedReadOfInvalidBuffer) {
  MicroProgram m = makeMicro();
  // Chained XOR first: its buffer operand was never produced.
  std::swap(m.prog.instructions[3], m.prog.instructions[4]);
  Violation v = firstViolation(std::move(m));
  EXPECT_EQ(v.rule, Rule::BufferLiveness);
  EXPECT_EQ(v.instructionIndex, 3u);
}

TEST(Verifier, RejectsWriteFromInvalidBuffer) {
  MicroProgram m = makeMicro();
  // Drop the host payload of the first write: it becomes a buffered
  // write, but nothing was read into the buffer yet.
  m.prog.hostWriteValues.erase(0);
  Violation v = firstViolation(std::move(m));
  EXPECT_EQ(v.rule, Rule::BufferLiveness);
  EXPECT_EQ(v.instructionIndex, 0u);
}

TEST(Verifier, RejectsShiftOfEmptyBuffer) {
  MicroProgram m = makeMicro();
  m.prog.instructions.insert(m.prog.instructions.begin(),
                             isa::makeShift(0, ShiftDirection::Left, 1));
  // Reindex the host write metadata and leave the rest untouched.
  std::map<size_t, std::vector<ir::NodeId>> shifted;
  for (auto& [idx, leaves] : m.prog.hostWriteValues)
    shifted[idx + 1] = std::move(leaves);
  m.prog.hostWriteValues = std::move(shifted);
  Violation v = firstViolation(std::move(m));
  EXPECT_EQ(v.rule, Rule::BufferLiveness);
  EXPECT_EQ(v.instructionIndex, 0u);
}

TEST(Verifier, RejectsMoveFromInvalidBuffer) {
  MicroProgram m = makeMicro();
  m.prog.instructions.push_back(isa::makeMove(1, 0, 0, 5));
  Violation v = firstViolation(std::move(m));
  EXPECT_EQ(v.rule, Rule::BufferLiveness);
  EXPECT_EQ(v.instructionIndex, 6u);
}

TEST(Verifier, RejectsPerColumnOpsWhenUnsupported) {
  // A two-column read with different ops on a target without per-column
  // multiplexers.
  ir::Graph g;
  ir::NodeId a = g.addInput("a"), b = g.addInput("b");
  ir::NodeId x = g.addOp(ir::OpKind::And, {a, b});
  ir::NodeId y = g.addOp(ir::OpKind::Or, {a, b});
  g.markOutput(x);
  g.markOutput(y);
  mapping::Program p;
  p.instructions.push_back(isa::makeWrite(0, {0, 1}, 0));
  p.hostWriteValues[0] = {a, a};
  p.instructions.push_back(isa::makeWrite(0, {0, 1}, 1));
  p.hostWriteValues[1] = {b, b};
  p.instructions.push_back(isa::makeCimRead(
      0, {0, 1}, {0, 1}, {ir::OpKind::And, ir::OpKind::Or}));
  p.instructions.push_back(isa::makeWrite(0, {0, 1}, 2));
  p.outputCells[x] = {0, 0, 2};
  p.outputCells[y] = {0, 1, 2};

  isa::TargetSpec uniform = target64();
  uniform.perColumnOps = false;
  VerifyResult r = verifyProgram(g, uniform, p);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.violations.front().rule, Rule::PerColumnOps);

  // The same program is legal on the default feature set.
  EXPECT_TRUE(verifyProgram(g, target64(), p).ok());
}

TEST(Verifier, RejectsChainingWhenUnsupported) {
  MicroProgram m = makeMicro();
  isa::TargetSpec t = target64();
  t.bufferChaining = false;
  VerifyResult r = verifyProgram(m.g, t, m.prog);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.violations.front().rule, Rule::BufferChaining);
  EXPECT_EQ(r.violations.front().instructionIndex, 4u);
}

TEST(Verifier, RejectsUnaryArityViolation) {
  MicroProgram m = makeMicro();
  m.prog.instructions[3].colOps = {ir::OpKind::Not};  // 2 rows for a NOT
  Violation v = firstViolation(std::move(m));
  EXPECT_EQ(v.rule, Rule::OperandArity);
}

TEST(Verifier, RejectsHostWriteArityMismatch) {
  MicroProgram m = makeMicro();
  m.prog.hostWriteValues[0] = {m.a, m.b};  // 2 values for 1 column
  Violation v = firstViolation(std::move(m));
  EXPECT_EQ(v.rule, Rule::HostWriteMetadata);
}

TEST(Verifier, RejectsHostWriteOfOpNode) {
  MicroProgram m = makeMicro();
  m.prog.hostWriteValues[0] = {m.x};
  Violation v = firstViolation(std::move(m));
  EXPECT_EQ(v.rule, Rule::HostWriteMetadata);
}

TEST(Verifier, RejectsMissingOutputCell) {
  MicroProgram m = makeMicro();
  m.prog.outputCells.clear();
  Violation v = firstViolation(std::move(m));
  EXPECT_EQ(v.rule, Rule::OutputPlacement);
}

TEST(Verifier, RejectsUnwrittenOutputCell) {
  MicroProgram m = makeMicro();
  m.prog.outputCells[m.y] = {0, 9, 9};
  Violation v = firstViolation(std::move(m));
  EXPECT_EQ(v.rule, Rule::OutputPlacement);
  EXPECT_EQ(v.row, 9);
  EXPECT_EQ(v.col, 9);
}

TEST(Verifier, EquivalenceCatchesWrongOperand) {
  // Load `a` where `b` belongs: every instruction stays individually
  // legal, only the computed value is wrong — the case execution-free
  // structural checks cannot see and value numbering must.
  MicroProgram m = makeMicro();
  m.prog.hostWriteValues[1] = {m.a};
  Violation v = firstViolation(std::move(m));
  EXPECT_EQ(v.rule, Rule::ValueEquivalence);
}

TEST(Verifier, EquivalenceCatchesWrongOp) {
  MicroProgram m = makeMicro();
  m.prog.instructions[3].colOps[0] = ir::OpKind::Or;
  Violation v = firstViolation(std::move(m));
  EXPECT_EQ(v.rule, Rule::ValueEquivalence);
}

TEST(Verifier, EquivalenceCatchesClobberedLiveCell) {
  // Spill the AND result over `c`, which is still live: the chained XOR
  // then combines x with x instead of with c.
  MicroProgram m = makeMicro();
  m.prog.instructions[4] = isa::makeWrite(0, {0}, 2);  // x clobbers c
  m.prog.instructions.push_back(
      isa::makeCimRead(0, {0}, {2}, {ir::OpKind::Xor}, {true}));
  m.prog.instructions.push_back(isa::makeWrite(0, {0}, 3));
  Violation v = firstViolation(std::move(m));
  EXPECT_EQ(v.rule, Rule::ValueEquivalence);
}

TEST(Verifier, CatchesMisalignedShift) {
  // A value routed through the row buffer with the wrong shift distance
  // lands in a different column; the output write then consumes a buffer
  // bit the program never produced.
  ir::Graph g;
  ir::NodeId a = g.addInput("a");
  g.markOutput(a);
  mapping::Program p;
  p.instructions.push_back(isa::makeWrite(0, {0}, 0));
  p.hostWriteValues[0] = {a};
  p.instructions.push_back(isa::makePlainRead(0, {0}, 0));
  p.instructions.push_back(isa::makeShift(0, ShiftDirection::Left, 2));
  p.instructions.push_back(isa::makeWrite(0, {3}, 1));  // expects dist 3
  p.outputCells[a] = {0, 3, 1};
  VerifyResult r = verifyProgram(g, target64(), p);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.violations.front().rule, Rule::BufferLiveness);
}

TEST(Verifier, CheckProgramThrowsStructuredError) {
  MicroProgram m = makeMicro();
  m.prog.instructions[3].rows = {0, 5};
  try {
    checkProgram(m.g, target64(), m.prog);
    FAIL() << "expected VerificationError";
  } catch (const VerificationError& e) {
    EXPECT_EQ(e.instructionIndex(), 3);
    EXPECT_STREQ(e.rule().c_str(), "read-before-write");
  }
}

TEST(Verifier, FaultAvoidanceRejectsStuckCellRead) {
  // The micro program is clean on a perfect array; pin one operand cell
  // (array 0, row 1, col 0 — operand b) to stuck-at-HRS and the
  // FaultAvoidance rule must flag both the write that programs it
  // (instruction 1) and the CIM read that senses it (instruction 3).
  MicroProgram m = makeMicro();
  isa::TargetSpec t = target64();
  device::FaultMap map(t.numArrays, t.rows(), t.cols());
  map.setFault(0, 1, 0, device::CellFault::StuckAtHrs);
  VerifyOptions vopts;
  vopts.faultMap = &map;
  VerifyResult r = verifyProgram(m.g, t, m.prog, vopts);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.violations.front().rule, Rule::FaultAvoidance);
  EXPECT_EQ(r.violations.front().instructionIndex, 1u);
  bool readFlagged = false;
  for (const Violation& v : r.violations)
    readFlagged |=
        v.rule == Rule::FaultAvoidance && v.instructionIndex == 3;
  EXPECT_TRUE(readFlagged) << r.summary();
}

TEST(Verifier, FaultAvoidanceRejectsStuckCellWrite) {
  MicroProgram m = makeMicro();
  isa::TargetSpec t = target64();
  device::FaultMap map(t.numArrays, t.rows(), t.cols());
  map.setFault(0, 3, 0, device::CellFault::StuckAtLrs);  // the output cell
  VerifyOptions vopts;
  vopts.faultMap = &map;
  VerifyResult r = verifyProgram(m.g, t, m.prog, vopts);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.violations.front().rule, Rule::FaultAvoidance);
  EXPECT_EQ(r.violations.front().instructionIndex, 5u);
}

TEST(Verifier, FaultAvoidanceAcceptsUntouchedFaults) {
  // Stuck cells the program never senses or programs are fine.
  MicroProgram m = makeMicro();
  isa::TargetSpec t = target64();
  device::FaultMap map(t.numArrays, t.rows(), t.cols());
  map.setFault(0, 60, 60, device::CellFault::StuckAtHrs);
  map.setFault(0, 0, 1, device::CellFault::StuckAtLrs);  // col 1 unused
  VerifyOptions vopts;
  vopts.faultMap = &map;
  VerifyResult r = verifyProgram(m.g, t, m.prog, vopts);
  EXPECT_TRUE(r.ok()) << r.summary();
}

TEST(Verifier, FaultAvoidanceRejectsMismatchedMapDimensions) {
  MicroProgram m = makeMicro();
  device::FaultMap map(1, 32, 32);
  VerifyOptions vopts;
  vopts.faultMap = &map;
  EXPECT_THROW(verifyProgram(m.g, target64(), m.prog, vopts), Error);
}

/// Acceptance: both mappers' output on their own compile-time fault maps
/// passes the FaultAvoidance rule (and everything else) for the paper
/// workloads — placement provably routed around every stuck cell.
TEST(Verifier, FaultAvoidanceAcceptsFaultAwarePlacements) {
  ir::Graph g =
      transforms::canonicalize(workloads::buildBitweaving({8}));
  isa::TargetSpec target = target64();
  device::FaultMapOptions fo;
  fo.seed = 21;
  fo.stuckDensity = 0.05;
  fo.weakDensity = 0.02;
  device::FaultMap map = device::FaultMap::generate(
      target.numArrays, target.rows(), target.cols(), fo);
  for (mapping::Strategy strategy :
       {mapping::Strategy::Naive, mapping::Strategy::Optimized}) {
    mapping::CompileOptions copts;
    copts.strategy = strategy;
    copts.verify = false;  // verified explicitly with the map below
    copts.faults.map = &map;
    copts.faults.spareRows = 4;
    auto compiled = mapping::compile(g, target, copts);
    VerifyOptions vopts;
    vopts.faultMap = &map;
    VerifyResult r = verifyProgram(g, target, compiled.program, vopts);
    EXPECT_TRUE(r.ok())
        << (strategy == mapping::Strategy::Naive ? "naive: " : "opt: ")
        << r.summary();
  }
}

/// Two-array micro program for the transfer rules: `a` is host-written
/// into array 0 and XFERred to array 1, where it is the output.
struct GridMicro {
  ir::Graph g;
  mapping::Program prog;
  isa::TargetSpec target;
  ir::NodeId a;
};

GridMicro makeGridMicro() {
  GridMicro m;
  m.target = target64().withGrid(arraymodel::GridConfig{1, 2});
  m.a = m.g.addInput("a");
  m.g.markOutput(m.a);
  auto& p = m.prog;
  p.instructions.push_back(isa::makeWrite(0, {0}, 0));
  p.hostWriteValues[0] = {m.a};
  p.instructions.push_back(isa::makeXfer(0, 0, 0, 1, 0, 0));
  p.outputCells[m.a] = {1, 0, 0};
  return m;
}

TEST(Verifier, AcceptsCrossArrayTransfer) {
  GridMicro m = makeGridMicro();
  VerifyResult r = verifyProgram(m.g, m.target, m.prog);
  EXPECT_TRUE(r.ok()) << r.summary();
}

TEST(Verifier, TransferLegalityRejectsSameArrayTransfer) {
  GridMicro m = makeGridMicro();
  m.prog.instructions[1] = isa::makeXfer(0, 0, 0, 0, 1, 5);
  VerifyResult r = verifyProgram(m.g, m.target, m.prog);
  ASSERT_FALSE(r.ok());
  const Violation& v = r.violations.front();
  EXPECT_EQ(v.rule, Rule::TransferLegality);
  EXPECT_EQ(v.instructionIndex, 1u);
  EXPECT_EQ(v.row, 5);
  EXPECT_EQ(v.col, 1);
}

TEST(Verifier, TransferLegalityRejectsOutOfGridEndpoint) {
  GridMicro m = makeGridMicro();
  // A third array exists beyond the 1x2 mesh (spare/legacy array): it is
  // addressable by every instruction except XFER, whose bus only reaches
  // mesh members.
  m.target.numArrays = 3;
  m.prog.instructions[1] = isa::makeXfer(0, 0, 0, 2, 0, 0);
  m.prog.outputCells[m.a] = {2, 0, 0};
  VerifyResult r = verifyProgram(m.g, m.target, m.prog);
  ASSERT_FALSE(r.ok());
  const Violation& v = r.violations.front();
  EXPECT_EQ(v.rule, Rule::TransferLegality);
  EXPECT_EQ(v.instructionIndex, 1u);
  EXPECT_EQ(v.arrayId, 2);
}

TEST(Verifier, TransferLegalityRejectsSpareRegionDestination) {
  GridMicro m = makeGridMicro();
  m.prog.instructions[1] = isa::makeXfer(0, 0, 0, 1, 0, 62);
  m.prog.outputCells[m.a] = {1, 0, 62};
  VerifyOptions vopts;
  vopts.spareRows = 4;  // rows [60, 64) are repair-reserved
  VerifyResult r = verifyProgram(m.g, m.target, m.prog, vopts);
  ASSERT_FALSE(r.ok());
  const Violation& v = r.violations.front();
  EXPECT_EQ(v.rule, Rule::TransferLegality);
  EXPECT_EQ(v.instructionIndex, 1u);
  EXPECT_EQ(v.arrayId, 1);
  EXPECT_EQ(v.row, 62);
  // The same destination row is legal without reserved spare rows.
  VerifyResult clean = verifyProgram(m.g, m.target, m.prog);
  EXPECT_TRUE(clean.ok()) << clean.summary();
}

TEST(Verifier, ReadBeforeWriteOnUnwrittenTransferSource) {
  GridMicro m = makeGridMicro();
  m.prog.instructions[1] = isa::makeXfer(0, 0, 7, 1, 0, 0);  // row 7 empty
  VerifyResult r = verifyProgram(m.g, m.target, m.prog);
  ASSERT_FALSE(r.ok());
  const Violation& v = r.violations.front();
  EXPECT_EQ(v.rule, Rule::ReadBeforeWrite);
  EXPECT_EQ(v.instructionIndex, 1u);
  EXPECT_EQ(v.arrayId, 0);
  EXPECT_EQ(v.row, 7);
  EXPECT_EQ(v.col, 0);
}

TEST(Verifier, FaultAvoidanceRejectsStuckTransferDestination) {
  GridMicro m = makeGridMicro();
  device::FaultMap map(m.target.numArrays, m.target.rows(),
                       m.target.cols());
  map.setFault(1, 0, 0, device::CellFault::StuckAtLrs);
  VerifyOptions vopts;
  vopts.faultMap = &map;
  VerifyResult r = verifyProgram(m.g, m.target, m.prog, vopts);
  ASSERT_FALSE(r.ok());
  const Violation& v = r.violations.front();
  EXPECT_EQ(v.rule, Rule::FaultAvoidance);
  EXPECT_EQ(v.instructionIndex, 1u);
  EXPECT_EQ(v.arrayId, 1);
  EXPECT_EQ(v.row, 0);
  EXPECT_EQ(v.col, 0);
}

TEST(Verifier, FaultAvoidanceRejectsStuckTransferSource) {
  GridMicro m = makeGridMicro();
  device::FaultMap map(m.target.numArrays, m.target.rows(),
                       m.target.cols());
  map.setFault(0, 0, 0, device::CellFault::StuckAtHrs);
  VerifyOptions vopts;
  vopts.faultMap = &map;
  VerifyResult r = verifyProgram(m.g, m.target, m.prog, vopts);
  ASSERT_FALSE(r.ok());
  // The host write programming the stuck cell fires first; the transfer
  // sensing it must be flagged too, anchored to the source coordinates.
  bool senseFlagged = false;
  for (const Violation& v : r.violations)
    senseFlagged |= v.rule == Rule::FaultAvoidance &&
                    v.instructionIndex == 1 && v.arrayId == 0 &&
                    v.row == 0 && v.col == 0;
  EXPECT_TRUE(senseFlagged) << r.summary();
}

TEST(Verifier, CompileFacadeVerifiesWhenRequested) {
  workloads::RandomDagSpec spec;
  spec.seed = 11;
  ir::Graph g =
      transforms::canonicalize(workloads::buildRandomDag(spec));
  mapping::CompileOptions copts;
  copts.verify = true;
  EXPECT_NO_THROW(mapping::compile(g, target64(), copts));
}

/// Acceptance: every program both mappers emit for the paper workloads
/// verifies cleanly, including symbolic DAG equivalence.
class PaperWorkloads : public ::testing::TestWithParam<mapping::Strategy> {};

void expectWorkloadVerifies(const ir::Graph& g, mapping::Strategy strategy) {
  isa::TargetSpec target =
      isa::TargetSpec::square(512, device::TechnologyParams::reRam(), 2);
  mapping::CompileOptions copts;
  copts.strategy = strategy;
  copts.verify = false;  // verified explicitly for the full report
  auto compiled = mapping::compile(g, target, copts);
  VerifyResult r = verifyProgram(g, target, compiled.program);
  EXPECT_TRUE(r.ok()) << r.summary();
  EXPECT_EQ(r.checkedInstructions,
            static_cast<long>(compiled.program.instructions.size()));
}

TEST_P(PaperWorkloads, Bitweaving) {
  expectWorkloadVerifies(
      transforms::canonicalize(workloads::buildBitweaving({16})),
      GetParam());
}

TEST_P(PaperWorkloads, Sobel) {
  expectWorkloadVerifies(
      transforms::canonicalize(workloads::buildSobel({})), GetParam());
}

TEST_P(PaperWorkloads, AesOneRound) {
  expectWorkloadVerifies(
      transforms::canonicalize(workloads::buildAes({1})), GetParam());
}

INSTANTIATE_TEST_SUITE_P(BothMappers, PaperWorkloads,
                         ::testing::Values(mapping::Strategy::Naive,
                                           mapping::Strategy::Optimized),
                         [](const auto& info) {
                           return info.param == mapping::Strategy::Naive
                                      ? "Naive"
                                      : "Optimized";
                         });

}  // namespace
}  // namespace sherlock::verify
