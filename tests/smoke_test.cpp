// End-to-end smoke test: builds a small DAG, compiles it with both mapping
// strategies, and runs the verifying simulator.
#include <gtest/gtest.h>

#include "ir/graph.h"
#include "mapping/compiler.h"
#include "sim/simulator.h"

namespace sherlock {
namespace {

ir::Graph tinyGraph() {
  ir::Graph g;
  auto a = g.addInput("a");
  auto b = g.addInput("b");
  auto c = g.addInput("c");
  auto x = g.addOp(ir::OpKind::And, {a, b});
  auto y = g.addOp(ir::OpKind::Xor, {x, c});
  auto z = g.addOp(ir::OpKind::Or, {y, a});
  g.markOutput(z);
  g.validate();
  return g;
}

TEST(Smoke, NaiveEndToEnd) {
  ir::Graph g = tinyGraph();
  isa::TargetSpec target =
      isa::TargetSpec::square(128, device::TechnologyParams::reRam());
  mapping::CompileOptions opts;
  opts.strategy = mapping::Strategy::Naive;
  auto compiled = mapping::compile(g, target, opts);
  auto result = sim::simulate(g, target, compiled.program);
  EXPECT_TRUE(result.verified);
  EXPECT_GT(result.latencyNs, 0.0);
  EXPECT_GT(result.energyPj, 0.0);
}

TEST(Smoke, OptimizedEndToEnd) {
  ir::Graph g = tinyGraph();
  isa::TargetSpec target =
      isa::TargetSpec::square(128, device::TechnologyParams::sttMram());
  auto compiled = mapping::compile(g, target);
  auto result = sim::simulate(g, target, compiled.program);
  EXPECT_TRUE(result.verified);
}

}  // namespace
}  // namespace sherlock
