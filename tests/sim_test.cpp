// Unit tests for the simulator: functional semantics of each instruction
// kind (via hand-written micro programs), timing properties of the posted
// write model, energy accounting, and reliability accumulation.
#include <gtest/gtest.h>

#include "mapping/compiler.h"
#include "sim/simulator.h"
#include "transforms/substitution.h"
#include "workloads/bitweaving.h"
#include "workloads/random_dag.h"

namespace sherlock::sim {
namespace {

using isa::Instruction;
using isa::ShiftDirection;

isa::TargetSpec target64(device::TechnologyParams tech =
                             device::TechnologyParams::reRam(),
                         int mra = 4) {
  return isa::TargetSpec::square(64, std::move(tech), mra);
}

/// Builds a two-op graph and a hand-written program computing it, to pin
/// down the exact functional semantics of the ISA.
struct MicroProgram {
  ir::Graph g;
  mapping::Program prog;
  ir::NodeId a, b, c, x, y;
};

MicroProgram makeMicro() {
  MicroProgram m;
  m.a = m.g.addInput("a");
  m.b = m.g.addInput("b");
  m.c = m.g.addInput("c");
  m.x = m.g.addOp(ir::OpKind::And, {m.a, m.b});
  m.y = m.g.addOp(ir::OpKind::Xor, {m.x, m.c});
  m.g.markOutput(m.y);

  auto& p = m.prog;
  // Host loads: a->(0,0,0), b->(0,0,1), c->(0,0,2).
  p.instructions.push_back(isa::makeWrite(0, {0}, 0));
  p.hostWriteValues[0] = {m.a};
  p.instructions.push_back(isa::makeWrite(0, {0}, 1));
  p.hostWriteValues[1] = {m.b};
  p.instructions.push_back(isa::makeWrite(0, {0}, 2));
  p.hostWriteValues[2] = {m.c};
  // x = AND rows 0,1; buffer chains into the XOR with row 2.
  p.instructions.push_back(
      isa::makeCimRead(0, {0}, {0, 1}, {ir::OpKind::And}));
  p.instructions.push_back(
      isa::makeCimRead(0, {0}, {2}, {ir::OpKind::Xor}, {true}));
  // Materialize the output at row 3.
  p.instructions.push_back(isa::makeWrite(0, {0}, 3));
  p.outputCells[m.y] = {0, 0, 3};
  return m;
}

TEST(Simulator, MicroProgramVerifies) {
  MicroProgram m = makeMicro();
  auto t = target64();
  SimOptions opts;
  opts.inputs = {{"a", 0b1100}, {"b", 0b1010}, {"c", 0b0110}};
  auto res = simulate(m.g, t, m.prog, opts);
  EXPECT_TRUE(res.verified);
  EXPECT_EQ(res.instructionCount, 6);
  EXPECT_EQ(res.readCount, 2);
  EXPECT_EQ(res.writeCount, 4);
  EXPECT_EQ(res.cimColumnOps, 2);
}

TEST(Simulator, DetectsWrongProgram) {
  MicroProgram m = makeMicro();
  // Corrupt the CIM op: OR instead of AND.
  m.prog.instructions[3].colOps[0] = ir::OpKind::Or;
  auto t = target64();
  SimOptions opts;
  opts.inputs = {{"a", 0b1100}, {"b", 0b1010}, {"c", 0b0110}};
  EXPECT_THROW(simulate(m.g, t, m.prog, opts), SimulationError);
}

TEST(Simulator, ReadOfUnwrittenCellThrows) {
  MicroProgram m = makeMicro();
  m.prog.instructions[3].rows = {0, 5};  // row 5 never written
  // The static pre-verification pins the violation to the instruction.
  try {
    simulate(m.g, target64(), m.prog);
    FAIL() << "expected VerificationError";
  } catch (const VerificationError& e) {
    EXPECT_EQ(e.instructionIndex(), 3);
    EXPECT_STREQ(e.rule().c_str(), "read-before-write");
  }
  // The dynamic execution guard still catches it when static
  // verification is off.
  SimOptions raw;
  raw.staticVerify = false;
  EXPECT_THROW(simulate(m.g, target64(), m.prog, raw), SimulationError);
}

TEST(Simulator, ChainOfInvalidBufferThrows) {
  MicroProgram m = makeMicro();
  // Make the chained XOR the first read: buffer invalid.
  std::swap(m.prog.instructions[3], m.prog.instructions[4]);
  try {
    simulate(m.g, target64(), m.prog);
    FAIL() << "expected VerificationError";
  } catch (const VerificationError& e) {
    EXPECT_EQ(e.instructionIndex(), 3);
    EXPECT_STREQ(e.rule().c_str(), "buffer-liveness");
  }
  SimOptions raw;
  raw.staticVerify = false;
  EXPECT_THROW(simulate(m.g, target64(), m.prog, raw), SimulationError);
}

TEST(Simulator, ShiftMovesBufferBits) {
  // One value read into column 0, shifted to column 3, written there.
  ir::Graph g;
  ir::NodeId a = g.addInput("a");
  g.markOutput(a);
  mapping::Program p;
  p.instructions.push_back(isa::makeWrite(0, {0}, 0));
  p.hostWriteValues[0] = {a};
  p.instructions.push_back(isa::makePlainRead(0, {0}, 0));
  p.instructions.push_back(isa::makeShift(0, ShiftDirection::Left, 3));
  p.instructions.push_back(isa::makeWrite(0, {3}, 1));
  p.outputCells[a] = {0, 3, 1};
  auto res = simulate(g, target64(), p);
  EXPECT_TRUE(res.verified);
  EXPECT_EQ(res.shiftCount, 1);
}

TEST(Simulator, RightShiftWrapsAround) {
  ir::Graph g;
  ir::NodeId a = g.addInput("a");
  g.markOutput(a);
  mapping::Program p;
  p.instructions.push_back(isa::makeWrite(0, {2}, 0));
  p.hostWriteValues[0] = {a};
  p.instructions.push_back(isa::makePlainRead(0, {2}, 0));
  // Right by 5 from column 2 wraps to column (2 - 5 + 64) % 64 = 61.
  p.instructions.push_back(isa::makeShift(0, ShiftDirection::Right, 5));
  p.instructions.push_back(isa::makeWrite(0, {61}, 1));
  p.outputCells[a] = {0, 61, 1};
  EXPECT_TRUE(simulate(g, target64(), p).verified);
}

TEST(Simulator, MoveTransfersAcrossArrays) {
  ir::Graph g;
  ir::NodeId a = g.addInput("a");
  g.markOutput(a);
  mapping::Program p;
  p.instructions.push_back(isa::makeWrite(0, {1}, 0));
  p.hostWriteValues[0] = {a};
  p.instructions.push_back(isa::makePlainRead(0, {1}, 0));
  p.instructions.push_back(isa::makeMove(0, 1, 1, 7));
  p.instructions.push_back(isa::makeWrite(1, {7}, 0));
  p.outputCells[a] = {1, 7, 0};
  auto res = simulate(g, target64(), p);
  EXPECT_TRUE(res.verified);
  EXPECT_EQ(res.moveCount, 1);
}

TEST(Simulator, MergedReadComputesPerColumnOps) {
  // Two columns, same rows, different ops in one instruction.
  ir::Graph g;
  ir::NodeId a = g.addInput("a");
  ir::NodeId b = g.addInput("b");
  ir::NodeId x = g.addOp(ir::OpKind::And, {a, b});
  ir::NodeId y = g.addOp(ir::OpKind::Or, {a, b});
  g.markOutput(x);
  g.markOutput(y);
  mapping::Program p;
  p.instructions.push_back(isa::makeWrite(0, {0, 1}, 0));
  p.hostWriteValues[0] = {a, a};
  p.instructions.push_back(isa::makeWrite(0, {0, 1}, 1));
  p.hostWriteValues[1] = {b, b};
  p.instructions.push_back(isa::makeCimRead(
      0, {0, 1}, {0, 1}, {ir::OpKind::And, ir::OpKind::Or}));
  p.instructions.push_back(isa::makeWrite(0, {0, 1}, 2));
  p.outputCells[x] = {0, 0, 2};
  p.outputCells[y] = {0, 1, 2};
  auto res = simulate(g, target64(), p);
  EXPECT_TRUE(res.verified);
  EXPECT_EQ(res.cimColumnOps, 2);
}

// ------------------------------------------------------------ timing

TEST(Timing, ReadAfterWriteStalls) {
  // write row 0 then immediately read it -> the read must stall for the
  // programming latency; with an unrelated row in between, no stall.
  ir::Graph g;
  ir::NodeId a = g.addInput("a");
  ir::NodeId x = g.addOp(ir::OpKind::Not, {a});
  g.markOutput(x);
  mapping::Program p;
  p.instructions.push_back(isa::makeWrite(0, {0}, 0));
  p.hostWriteValues[0] = {a};
  p.instructions.push_back(
      isa::makeCimRead(0, {0}, {0}, {ir::OpKind::Not}));
  p.instructions.push_back(isa::makeWrite(0, {0}, 1));
  p.outputCells[x] = {0, 0, 1};
  auto res = simulate(g, target64(), p);
  EXPECT_TRUE(res.verified);
  EXPECT_GT(res.stallNs, 0.0);
  // The stall should be roughly the technology write latency.
  EXPECT_GT(res.stallNs, target64().tech.writeLatencyNs * 0.5);
}

TEST(Timing, SttWritesCheaperThanReRam) {
  // Same write-heavy micro program on both technologies.
  auto makeProg = [](const ir::Graph& g, ir::NodeId a, ir::NodeId x) {
    mapping::Program p;
    p.instructions.push_back(isa::makeWrite(0, {0}, 0));
    p.hostWriteValues[0] = {a};
    for (int i = 0; i < 8; ++i) {
      p.instructions.push_back(
          isa::makeCimRead(0, {0}, {i}, {ir::OpKind::Not}));
      p.instructions.push_back(isa::makeWrite(0, {0}, i + 1));
    }
    p.outputCells[x] = {0, 0, 8};
    return p;
  };
  ir::Graph g;
  ir::NodeId a = g.addInput("a");
  ir::NodeId x = a;
  for (int i = 0; i < 8; ++i) x = g.addOp(ir::OpKind::Not, {x});
  g.markOutput(x);
  auto prog = makeProg(g, a, x);
  auto reram = simulate(g, target64(device::TechnologyParams::reRam()), prog);
  auto stt = simulate(g, target64(device::TechnologyParams::sttMram()), prog);
  EXPECT_GT(reram.latencyNs, stt.latencyNs * 2);
}

TEST(Timing, EnergyAndEdpPositive) {
  ir::Graph g = workloads::buildBitweaving({8});
  auto t = target64();
  auto compiled = mapping::compile(g, t);
  auto res = simulate(g, t, compiled.program);
  EXPECT_GT(res.energyUj(), 0.0);
  EXPECT_GT(res.edp(), 0.0);
  EXPECT_NEAR(res.edp(), res.energyUj() * res.latencyUs(), 1e-12);
}

// -------------------------------------------------------- reliability

TEST(Reliability, WiderMraRaisesPapp) {
  ir::Graph base = workloads::buildBitweaving({16});
  auto t2 = isa::TargetSpec::square(512,
                                    device::TechnologyParams::reRam(), 2);
  auto t6 = isa::TargetSpec::square(512,
                                    device::TechnologyParams::reRam(), 6);
  auto c2 = mapping::compile(base, t2);
  auto r2 = simulate(base, t2, c2.program);

  transforms::SubstitutionOptions sopt;
  sopt.maxOperands = 6;
  auto merged = transforms::substituteNodes(base, sopt);
  auto c6 = mapping::compile(merged.graph, t6);
  auto r6 = simulate(merged.graph, t6, c6.program);

  EXPECT_GT(r6.pApp, r2.pApp);        // wider ops, higher failure odds
  EXPECT_LT(r6.cimColumnOps, r2.cimColumnOps);  // but fewer operations
}

TEST(Reliability, SttLessReliableThanReRam) {
  ir::Graph g = workloads::buildBitweaving({16});
  auto tr = isa::TargetSpec::square(512,
                                    device::TechnologyParams::reRam(), 2);
  auto ts = isa::TargetSpec::square(512,
                                    device::TechnologyParams::sttMram(), 2);
  auto cr = mapping::compile(g, tr);
  auto cs = mapping::compile(g, ts);
  double pReram = simulate(g, tr, cr.program).pApp;
  double pStt = simulate(g, ts, cs.program).pApp;
  EXPECT_GT(pStt, pReram * 10);
}

TEST(Simulator, DefaultInputWordsDeterministic) {
  EXPECT_EQ(defaultInputWord("x", 1), defaultInputWord("x", 1));
  EXPECT_NE(defaultInputWord("x", 1), defaultInputWord("y", 1));
  EXPECT_NE(defaultInputWord("x", 1), defaultInputWord("x", 2));
}

TEST(Simulator, DefaultInputWordsDistinctPerLaneWord) {
  // Lane words of one input are consecutive draws of one stream: all
  // distinct, and word 0 reproduces the historical 2-argument form.
  EXPECT_EQ(defaultInputWord("x", 1, 0), defaultInputWord("x", 1));
  EXPECT_NE(defaultInputWord("x", 1, 0), defaultInputWord("x", 1, 1));
  EXPECT_NE(defaultInputWord("x", 1, 1), defaultInputWord("x", 1, 2));
  EXPECT_EQ(defaultInputWord("x", 1, 3), defaultInputWord("x", 1, 3));
}

TEST(PackedLanes, MicroProgramVerifiesAtLaneWords4) {
  MicroProgram m = makeMicro();
  auto t = target64();
  SimOptions opts;
  opts.laneWords = 4;
  opts.wideInputs = {
      {"a", {0b1100, ~uint64_t{0}, 0, 0x0f0f0f0f0f0f0f0fULL}},
      {"b", {0b1010, 0x5555555555555555ULL, ~uint64_t{0}, 1}},
      {"c", {0b0110, 7, 0xffff0000ffff0000ULL, 0}}};
  auto res = simulate(m.g, t, m.prog, opts);
  // Internal verification compares all 256 lanes against the packed
  // reference evaluator; counters stay per-instruction, not per-lane.
  EXPECT_TRUE(res.verified);
  EXPECT_EQ(res.instructionCount, 6);
  EXPECT_EQ(res.cimColumnOps, 2);
  EXPECT_EQ(res.corruptedLaneWords.size(), 4u);
}

TEST(PackedLanes, ScalarInputsFillLaneWordZero) {
  // The scalar `inputs` map seeds lane word 0 while words 1.. synthesize
  // from defaultInputWord — the mixed resolution path must verify. (The
  // differential fuzz pins the actual word-0 values against the packed
  // evaluator fed explicit per-word inputs.)
  MicroProgram m = makeMicro();
  auto t = target64();
  SimOptions opts;
  opts.laneWords = 2;
  opts.inputs = {{"a", 0b1100}, {"b", 0b1010}, {"c", 0b0110}};
  EXPECT_TRUE(simulate(m.g, t, m.prog, opts).verified);
}

TEST(PackedLanes, WideInputSizeMismatchThrows) {
  MicroProgram m = makeMicro();
  auto t = target64();
  SimOptions opts;
  opts.laneWords = 4;
  opts.wideInputs = {{"a", {1, 2, 3}}};  // 3 words, laneWords = 4
  EXPECT_THROW(simulate(m.g, t, m.prog, opts), Error);
}

TEST(PackedLanes, LaneWordsMustBePositive) {
  MicroProgram m = makeMicro();
  SimOptions opts;
  opts.laneWords = 0;
  EXPECT_THROW(simulate(m.g, target64(), m.prog, opts), Error);
}

}  // namespace
}  // namespace sherlock::sim

namespace sherlock::sim {
namespace {

TEST(FaultInjection, ZeroProbabilityInjectsNothing) {
  // ReRAM 2-operand AND ops have negligible P_DF; injection should almost
  // surely leave the program intact.
  ir::Graph g = workloads::buildBitweaving({8});
  auto t = isa::TargetSpec::square(128,
                                   device::TechnologyParams::reRam(), 2);
  auto compiled = mapping::compile(g, t);
  SimOptions opts;
  opts.injectFaults = true;
  auto r = simulate(g, t, compiled.program, opts);
  EXPECT_EQ(r.injectedFaults, 0);
  EXPECT_EQ(r.corruptedLanes(), 0);
}

TEST(FaultInjection, HighProbabilityCorruptsOutputs) {
  // STT-MRAM native XOR at 2 rows is unreliable enough that a kernel full
  // of XORs gets corrupted lanes across a few seeds.
  ir::Graph g = workloads::buildBitweaving({16});
  auto t = isa::TargetSpec::square(
      512, device::TechnologyParams::sttMram(), 2);
  auto compiled = mapping::compile(g, t);
  long faults = 0;
  uint64_t corrupted = 0;
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    SimOptions opts;
    opts.injectFaults = true;
    opts.faultSeed = seed;
    auto r = simulate(g, t, compiled.program, opts);
    faults += r.injectedFaults;
    corrupted |= r.corruptedLaneWords[0];
  }
  EXPECT_GT(faults, 0);
  EXPECT_NE(corrupted, 0u);
}

TEST(FaultInjection, DeterministicPerSeed) {
  ir::Graph g = workloads::buildBitweaving({16});
  auto t = isa::TargetSpec::square(
      512, device::TechnologyParams::sttMram(), 2);
  auto compiled = mapping::compile(g, t);
  SimOptions opts;
  opts.injectFaults = true;
  opts.faultSeed = 7;
  auto r1 = simulate(g, t, compiled.program, opts);
  auto r2 = simulate(g, t, compiled.program, opts);
  EXPECT_EQ(r1.injectedFaults, r2.injectedFaults);
  EXPECT_EQ(r1.corruptedLaneWords, r2.corruptedLaneWords);
}

TEST(FaultInjection, StuckOperandSurvivesDegradedSensingUnflipped) {
  // Regression: degraded sensing re-samples every operand as a single-row
  // plain read and injects plain-read decision failures into each sample.
  // An operand sensed from a stuck cell is physically pinned — no sense
  // margin, however degraded, can flip it — so it must be exempt from
  // injection. The old code injected it like a live cell.
  //
  // Setup: x = And(a, b) with a's cell stuck-at-LRS (pinned '0') and
  // input a = 0 so the pinned behavior matches the reference. Crank the
  // plain-read P_DF to ~0.3 via reference noise and force every scouting
  // op to degrade (degradePdfThreshold = 0). Injected flips in b are
  // masked by the AND with the all-zero a; the output can only corrupt
  // if the pinned operand itself is (wrongly) injected — with ~0.21
  // corruption probability per lane under the old behavior, 256 clean
  // lanes across 10 seeds refute it at astronomical confidence.
  device::TechnologyParams tech = device::TechnologyParams::sttMram();
  tech.referenceSigmaFrac = 1.0;  // P_DF(PlainRead, 1) ~ Q(0.5) ~ 0.31
  auto t = isa::TargetSpec::square(64, tech, 2);

  ir::Graph g;
  ir::NodeId a = g.addInput("a");
  ir::NodeId b = g.addInput("b");
  ir::NodeId x = g.addOp(ir::OpKind::And, {a, b});
  g.markOutput(x);

  mapping::Program prog;
  prog.instructions.push_back(isa::makeWrite(0, {0}, 0));
  prog.hostWriteValues[0] = {a};
  prog.instructions.push_back(isa::makeWrite(0, {0}, 1));
  prog.hostWriteValues[1] = {b};
  prog.instructions.push_back(
      isa::makeCimRead(0, {0}, {0, 1}, {ir::OpKind::And}));
  prog.instructions.push_back(isa::makeWrite(0, {0}, 2));
  prog.outputCells[x] = {0, 0, 2};

  device::FaultMap map(t.numArrays, t.rows(), t.cols());
  map.setFault(0, 0, 0, device::CellFault::StuckAtLrs);  // a's cell

  long injected = 0;
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    SimOptions opts;
    opts.laneWords = 4;
    opts.wideInputs = {{"a", {0, 0, 0, 0}},
                       {"b", std::vector<uint64_t>(4, ~uint64_t{0})}};
    opts.faultMap = &map;
    opts.injectFaults = true;
    opts.faultSeed = seed;
    opts.guardedExecution = true;
    opts.degradePdfThreshold = 0.0;  // degrade every scouting op
    auto r = simulate(g, t, prog, opts);
    EXPECT_GT(r.stuckCellReads, 0);
    EXPECT_GT(r.degradedOps, 0);
    EXPECT_EQ(r.corruptedLanes(), 0)
        << "stuck-LRS operand was flipped by injection (seed " << seed
        << ")";
    injected += r.injectedFaults;
  }
  // The live operand b does get injected (that is what the AND masks):
  // the exemption is specific to the stuck cell, not injection generally.
  EXPECT_GT(injected, 0);
}

TEST(FaultInjection, DoesNotPerturbTimingOrEnergy) {
  ir::Graph g = workloads::buildBitweaving({12});
  auto t = isa::TargetSpec::square(
      256, device::TechnologyParams::sttMram(), 2);
  auto compiled = mapping::compile(g, t);
  auto clean = simulate(g, t, compiled.program);
  SimOptions opts;
  opts.injectFaults = true;
  auto faulty = simulate(g, t, compiled.program, opts);
  EXPECT_DOUBLE_EQ(clean.latencyNs, faulty.latencyNs);
  EXPECT_DOUBLE_EQ(clean.energyPj, faulty.energyPj);
  EXPECT_DOUBLE_EQ(clean.pApp, faulty.pApp);
}

}  // namespace
}  // namespace sherlock::sim
