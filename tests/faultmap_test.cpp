// Unit and property tests for the persistent cell-fault model: seeded
// generation is deterministic and byte-reproducible, the text format
// round-trips losslessly, endurance wear converts rows to stuck faults,
// and — the placement contract — compiled programs never read or write
// a faulty cell on either mapper.
#include <gtest/gtest.h>

#include "dag_fuzz.h"
#include "device/faultmap.h"
#include "mapping/compiler.h"
#include "support/diagnostics.h"
#include "transforms/passes.h"
#include "workloads/random_dag.h"

namespace sherlock::device {
namespace {

FaultMapOptions denseOptions() {
  FaultMapOptions o;
  o.seed = 42;
  o.stuckDensity = 0.05;
  o.weakDensity = 0.03;
  return o;
}

TEST(FaultMap, GenerationIsDeterministic) {
  FaultMap a = FaultMap::generate(4, 64, 64, denseOptions());
  FaultMap b = FaultMap::generate(4, 64, 64, denseOptions());
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.toText(), b.toText());

  FaultMapOptions other = denseOptions();
  other.seed = 43;
  FaultMap c = FaultMap::generate(4, 64, 64, other);
  EXPECT_NE(a, c);
}

TEST(FaultMap, DensitiesMatchRequested) {
  FaultMap m = FaultMap::generate(8, 128, 128, denseOptions());
  double stuck = static_cast<double>(m.stuckCellCount()) / m.totalCells();
  double weak = static_cast<double>(m.weakCellCount()) / m.totalCells();
  // 131072 cells: binomial deviation is well under 20% relative.
  EXPECT_NEAR(stuck, 0.05, 0.01);
  EXPECT_NEAR(weak, 0.03, 0.006);
  // Stuck cells split between LRS and HRS polarities.
  long lrs = 0, hrs = 0;
  for (int a = 0; a < m.numArrays(); ++a)
    for (int r = 0; r < m.rows(); ++r)
      for (int c = 0; c < m.cols(); ++c) {
        if (m.faultAt(a, r, c) == CellFault::StuckAtLrs) ++lrs;
        if (m.faultAt(a, r, c) == CellFault::StuckAtHrs) ++hrs;
      }
  EXPECT_GT(lrs, 0);
  EXPECT_GT(hrs, 0);
  EXPECT_EQ(lrs + hrs, m.stuckCellCount());
}

TEST(FaultMap, StuckBitFollowsStateConvention) {
  FaultMap m(1, 8, 8);
  m.setFault(0, 1, 2, CellFault::StuckAtLrs);
  m.setFault(0, 3, 4, CellFault::StuckAtHrs);
  // LRS is logic '0', HRS is logic '1' (paper Sec. 2.1 convention).
  EXPECT_FALSE(m.stuckBit(0, 1, 2));
  EXPECT_TRUE(m.stuckBit(0, 3, 4));
  EXPECT_TRUE(m.isStuck(0, 1, 2));
  EXPECT_FALSE(m.isUsable(0, 1, 2));
  EXPECT_FALSE(m.isWeak(0, 1, 2));

  m.setFault(0, 5, 6, CellFault::Weak);
  EXPECT_TRUE(m.isWeak(0, 5, 6));
  EXPECT_FALSE(m.isStuck(0, 5, 6));
  EXPECT_FALSE(m.isUsable(0, 5, 6));  // placement treats weak as unusable
}

TEST(FaultMap, UsableCellsInColumnHonorsRowLimit) {
  FaultMap m(1, 16, 4);
  EXPECT_EQ(m.usableCellsInColumn(0, 0, 16), 16);
  EXPECT_EQ(m.usableCellsInColumn(0, 0, 10), 10);
  m.setFault(0, 2, 0, CellFault::StuckAtHrs);
  m.setFault(0, 12, 0, CellFault::Weak);
  EXPECT_EQ(m.usableCellsInColumn(0, 0, 16), 14);
  EXPECT_EQ(m.usableCellsInColumn(0, 0, 10), 9);  // row 12 is past the limit
  EXPECT_EQ(m.usableCellsInColumn(0, 1, 16), 16);
}

TEST(FaultMap, EnduranceWearConvertsRowToStuck) {
  FaultMapOptions o;
  o.rowWriteBudget = 3;
  FaultMap m(1, 8, 4, o);
  m.setFault(0, 5, 1, CellFault::Weak);
  m.setFault(0, 5, 2, CellFault::StuckAtHrs);

  EXPECT_EQ(m.noteRowWrite(0, 5), 1);
  EXPECT_EQ(m.noteRowWrite(0, 5), 2);
  EXPECT_EQ(m.noteRowWrite(0, 5), 3);
  EXPECT_FALSE(m.rowWornOut(0, 5));
  EXPECT_EQ(m.faultAt(0, 5, 0), CellFault::None);

  // The write that exceeds the budget wears the row out: every cell that
  // still functioned (including the weak one) ends SET-stuck, while the
  // already-stuck HRS cell keeps its polarity.
  EXPECT_EQ(m.noteRowWrite(0, 5), 4);
  EXPECT_TRUE(m.rowWornOut(0, 5));
  EXPECT_EQ(m.rowWrites(0, 5), 4);
  EXPECT_EQ(m.faultAt(0, 5, 0), CellFault::StuckAtLrs);
  EXPECT_EQ(m.faultAt(0, 5, 1), CellFault::StuckAtLrs);
  EXPECT_EQ(m.faultAt(0, 5, 2), CellFault::StuckAtHrs);
  // Other rows are untouched.
  EXPECT_EQ(m.rowWrites(0, 4), 0);
  EXPECT_EQ(m.faultAt(0, 4, 0), CellFault::None);

  // Unlimited endurance (budget 0) never wears out.
  FaultMap eternal(1, 8, 4);
  for (int i = 0; i < 100; ++i) eternal.noteRowWrite(0, 0);
  EXPECT_FALSE(eternal.rowWornOut(0, 0));
  EXPECT_EQ(eternal.faultAt(0, 0, 0), CellFault::None);
}

TEST(FaultMap, TextRoundTripPreservesEveryFault) {
  FaultMapOptions o = denseOptions();
  o.rowWriteBudget = 100;
  FaultMap m = FaultMap::generate(3, 48, 32, o);
  m.noteRowWrite(1, 7);
  m.noteRowWrite(1, 7);
  m.noteRowWrite(2, 0);

  std::string text = m.toText();
  FaultMap back = FaultMap::fromText(text);
  EXPECT_EQ(back, m);
  EXPECT_EQ(back.toText(), text);  // serialization is a fixed point
  EXPECT_EQ(back.rowWrites(1, 7), 2);
  EXPECT_EQ(back.options(), o);
}

TEST(FaultMap, FromTextRejectsMalformedInput) {
  EXPECT_THROW(FaultMap::fromText(""), Error);
  EXPECT_THROW(FaultMap::fromText("not a fault map\n"), Error);

  FaultMap m = FaultMap::generate(1, 8, 8, denseOptions());
  std::string text = m.toText();
  // Truncating the trailing "end" marker must be detected.
  std::string truncated = text.substr(0, text.rfind("end"));
  EXPECT_THROW(FaultMap::fromText(truncated), Error);
  // Out-of-bounds fault coordinates must be detected.
  std::string oob = truncated + "stuck-lrs 0 900 0\nend\n";
  EXPECT_THROW(FaultMap::fromText(oob), Error);
}

TEST(FaultMap, RejectsNonPhysicalOptions) {
  FaultMapOptions o;
  o.stuckDensity = -0.1;
  EXPECT_THROW(FaultMap::generate(1, 8, 8, o), Error);
  o.stuckDensity = 0.7;
  o.weakDensity = 0.7;  // sum > 1
  EXPECT_THROW(FaultMap::generate(1, 8, 8, o), Error);
  o = {};
  o.weakPdfMultiplier = 0.5;  // a multiplier < 1 would *improve* weak cells
  EXPECT_THROW(FaultMap::generate(1, 8, 8, o), Error);
  o = {};
  o.rowWriteBudget = -1;
  EXPECT_THROW(FaultMap::generate(1, 8, 8, o), Error);
}

// Placement contract (property over fuzzed DAGs): with a fault map in
// effect, no instruction of the compiled program senses or programs a
// faulty cell — stuck *or* weak — on either mapper. This is the
// load-bearing guarantee behind spare-row repair: everything else
// (guarded execution, P_app accounting) assumes placed cells function.
TEST(FaultMap, PlacementNeverTouchesFaultyCells) {
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    SCOPED_TRACE(strCat("seed ", seed));
    workloads::RandomDagSpec spec = sherlock::testing::sampleDagSpec(seed);
    ir::Graph g = transforms::canonicalize(workloads::buildRandomDag(spec));

    isa::TargetSpec target = isa::TargetSpec::square(
        64, TechnologyParams::reRam(), spec.maxArity);
    FaultMapOptions o;
    o.seed = seed * 977;
    o.stuckDensity = 0.04;
    o.weakDensity = 0.02;
    FaultMap map = FaultMap::generate(target.numArrays, target.rows(),
                                      target.cols(), o);

    for (mapping::Strategy strategy :
         {mapping::Strategy::Naive, mapping::Strategy::Optimized}) {
      SCOPED_TRACE(strategy == mapping::Strategy::Naive ? "naive" : "opt");
      mapping::CompileOptions copts;
      copts.strategy = strategy;
      copts.faults.map = &map;
      copts.faults.spareRows = 4;
      mapping::CompileResult compiled = mapping::compile(g, target, copts);

      for (const isa::Instruction& inst : compiled.program.instructions) {
        if (inst.kind != isa::InstKind::Read &&
            inst.kind != isa::InstKind::Write)
          continue;
        for (int col : inst.columns)
          for (int row : inst.rows)
            ASSERT_TRUE(map.isUsable(inst.arrayId, row, col))
                << cellFaultName(map.faultAt(inst.arrayId, row, col))
                << " cell touched at array " << inst.arrayId << " row "
                << row << " col " << col << " by: " << inst.toString();
      }
    }
  }
}

}  // namespace
}  // namespace sherlock::device
