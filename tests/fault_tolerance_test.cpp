// End-to-end tests for fault-tolerant execution: fault-aware compilation
// plus guarded detect-and-retry simulation recover reference-correct
// outputs on persistently faulty arrays, with deterministic counters; the
// degrade path, weak-cell P_DF inflation, endurance wear-out, and the
// honesty of SimResult::verified under injection are each pinned down.
#include <gtest/gtest.h>

#include "device/faultmap.h"
#include "device/reliability.h"
#include "mapping/compiler.h"
#include "sim/simulator.h"
#include "transforms/passes.h"
#include "workloads/aes.h"
#include "workloads/bitweaving.h"
#include "workloads/sobel.h"

namespace sherlock {
namespace {

ir::Graph smallWorkload(const std::string& name) {
  if (name == "Bitweaving") {
    workloads::BitweavingSpec s;
    s.bits = 8;
    s.segments = 4;
    return transforms::canonicalize(workloads::buildBitweaving(s));
  }
  if (name == "Sobel") {
    workloads::SobelSpec s;
    s.width = 4;
    return transforms::canonicalize(workloads::buildSobel(s));
  }
  // Reduced-round AES keeps the test fast while exercising the full
  // round structure (SubBytes/MixColumns XOR trees).
  return transforms::canonicalize(workloads::buildAes({3}));
}

struct FaultyRun {
  sim::SimResult sim;
  long spareRepairs = 0;
};

FaultyRun runFaulty(const ir::Graph& g, device::Technology tech,
                    double stuckDensity, uint64_t faultSeed, int spareRows,
                    bool guarded, int retryBudget = 3) {
  isa::TargetSpec target = isa::TargetSpec::square(
      128, device::TechnologyParams::forTechnology(tech), 2);
  device::FaultMapOptions fo;
  fo.seed = faultSeed;
  fo.stuckDensity = stuckDensity;
  fo.weakDensity = stuckDensity * 0.5;
  device::FaultMap map = device::FaultMap::generate(
      target.numArrays, target.rows(), target.cols(), fo);

  mapping::CompileOptions copts;
  copts.faults.map = &map;
  copts.faults.spareRows = spareRows;
  mapping::CompileResult compiled = mapping::compile(g, target, copts);

  sim::SimOptions sopts;
  sopts.faultMap = &map;
  sopts.guardedExecution = guarded;
  sopts.injectFaults = true;
  sopts.faultSeed = faultSeed;
  sopts.retryBudget = retryBudget;
  FaultyRun out;
  out.sim = sim::simulate(g, target, compiled.program, sopts);
  out.spareRepairs = compiled.program.stats.spareRowAllocations;
  return out;
}

// The acceptance bar: at >= 1% stuck density (plus weak cells) with
// spare rows available, guarded execution reproduces the reference
// outputs for all three paper workloads on both technologies. ReRAM
// barely needs the guard; STT-MRAM XOR ops fail at ~1e-4 per lane and
// without the guard these seeds lose lanes (asserted separately below).
TEST(FaultTolerance, GuardedMatchesReferenceOnPaperWorkloads) {
  for (const char* name : {"Bitweaving", "Sobel", "AES"}) {
    ir::Graph g = smallWorkload(name);
    for (device::Technology tech :
         {device::Technology::ReRam, device::Technology::SttMram}) {
      SCOPED_TRACE(strCat(name, " on ", device::technologyName(tech)));
      FaultyRun r = runFaulty(g, tech, /*stuckDensity=*/0.01,
                              /*faultSeed=*/11, /*spareRows=*/8,
                              /*guarded=*/true);
      EXPECT_TRUE(r.sim.verified);
      EXPECT_EQ(r.sim.corruptedLanes(), 0);
      if (tech == device::Technology::SttMram) {
        // XOR-heavy workloads on low-TMR STT must actually engage the
        // guard — otherwise this test proves nothing.
        EXPECT_GT(r.sim.guardedOps, 0);
      }
    }
  }
}

// The contrast making the guard worthwhile: the same Bitweaving seeds
// that verify under guarding lose output lanes unguarded on STT-MRAM.
TEST(FaultTolerance, UnguardedSttLosesLanesWhereGuardedSurvives) {
  ir::Graph g = smallWorkload("Bitweaving");
  bool anyCorrupt = false;
  for (uint64_t seed : {11u, 12u, 13u}) {
    FaultyRun guarded = runFaulty(g, device::Technology::SttMram, 0.01,
                                  seed, 8, /*guarded=*/true);
    EXPECT_TRUE(guarded.sim.verified) << "seed " << seed;
    FaultyRun raw = runFaulty(g, device::Technology::SttMram, 0.01, seed, 8,
                              /*guarded=*/false);
    // Satellite bugfix regression: verified must report the actual
    // comparison outcome under injection, not a hardwired false.
    EXPECT_EQ(raw.sim.verified, raw.sim.corruptedLanes() == 0)
        << "seed " << seed;
    anyCorrupt |= raw.sim.corruptedLanes() != 0;
  }
  EXPECT_TRUE(anyCorrupt)
      << "expected at least one unguarded STT run to corrupt a lane";
}

// verified is an honest comparison outcome in the clean direction too:
// ReRAM injection at these sizes practically never flips a lane, and the
// flag must come back true (pre-fix it was unconditionally false
// whenever injectFaults was on).
TEST(FaultTolerance, VerifiedReportsComparisonOutcomeUnderInjection) {
  ir::Graph g = smallWorkload("Bitweaving");
  isa::TargetSpec target = isa::TargetSpec::square(
      128, device::TechnologyParams::reRam(), 2);
  mapping::CompileResult compiled = mapping::compile(g, target, {});
  sim::SimOptions sopts;
  sopts.injectFaults = true;
  sopts.faultSeed = 5;
  sim::SimResult res = sim::simulate(g, target, compiled.program, sopts);
  EXPECT_EQ(res.corruptedLanes(), 0);
  EXPECT_TRUE(res.verified);
}

// Same graph, same options, same seed: every counter and the full
// timing/energy/reliability outcome must be bit-identical. Retry
// decisions are driven by the deterministic injection RNG, so guarded
// execution stays reproducible.
TEST(FaultTolerance, GuardedExecutionIsDeterministic) {
  ir::Graph g = smallWorkload("Sobel");
  auto once = [&] {
    return runFaulty(g, device::Technology::SttMram, 0.02, 29, 8,
                     /*guarded=*/true);
  };
  FaultyRun a = once();
  FaultyRun b = once();
  EXPECT_EQ(a.sim.guardedOps, b.sim.guardedOps);
  EXPECT_EQ(a.sim.retriedOps, b.sim.retriedOps);
  EXPECT_EQ(a.sim.degradedOps, b.sim.degradedOps);
  EXPECT_EQ(a.sim.stuckCellReads, b.sim.stuckCellReads);
  EXPECT_EQ(a.sim.injectedFaults, b.sim.injectedFaults);
  EXPECT_EQ(a.sim.corruptedLaneWords, b.sim.corruptedLaneWords);
  EXPECT_DOUBLE_EQ(a.sim.latencyNs, b.sim.latencyNs);
  EXPECT_DOUBLE_EQ(a.sim.energyPj, b.sim.energyPj);
  EXPECT_DOUBLE_EQ(a.sim.pApp, b.sim.pApp);
  EXPECT_EQ(a.spareRepairs, b.spareRepairs);
}

// Retrying costs time: the guard's check reads and re-senses must show
// up in the latency accounting whenever any op was guarded.
TEST(FaultTolerance, GuardingCostsLatencyWhenEngaged) {
  ir::Graph g = smallWorkload("Bitweaving");
  FaultyRun guarded = runFaulty(g, device::Technology::SttMram, 0.01, 11, 8,
                                /*guarded=*/true);
  FaultyRun raw = runFaulty(g, device::Technology::SttMram, 0.01, 11, 8,
                            /*guarded=*/false);
  ASSERT_GT(guarded.sim.guardedOps, 0);
  EXPECT_GT(guarded.sim.latencyNs, raw.sim.latencyNs);
  EXPECT_GT(guarded.sim.energyPj, raw.sim.energyPj);
}

// With a zero retry budget every detected mismatch degrades immediately
// to single-row plain reads — the lowest-risk sensing mode — and the run
// still verifies (plain reads are orders of magnitude more reliable than
// the multi-level XOR senses they replace).
TEST(FaultTolerance, ExhaustedRetryBudgetDegradesGracefully) {
  ir::Graph g = smallWorkload("Bitweaving");
  FaultyRun r = runFaulty(g, device::Technology::SttMram, 0.02, 17, 8,
                          /*guarded=*/true, /*retryBudget=*/0);
  EXPECT_GT(r.sim.degradedOps, 0);
  EXPECT_EQ(r.sim.retriedOps, 0);
  EXPECT_TRUE(r.sim.verified);
}

// Weak cells inflate the analytic P_app: the same program simulated on a
// map whose cells are all weak must report a strictly higher failure
// probability than on a perfect array. (Placement would avoid weak
// cells, so the map is applied at simulation time only.)
TEST(FaultTolerance, WeakCellsInflateAnalyticPApp) {
  ir::Graph g = smallWorkload("Bitweaving");
  isa::TargetSpec target = isa::TargetSpec::square(
      128, device::TechnologyParams::sttMram(), 2);
  mapping::CompileResult compiled = mapping::compile(g, target, {});

  sim::SimOptions clean;
  sim::SimResult base = sim::simulate(g, target, compiled.program, clean);

  device::FaultMapOptions fo;
  fo.weakPdfMultiplier = 16.0;
  device::FaultMap allWeak(target.numArrays, target.rows(), target.cols(),
                           fo);
  for (int a = 0; a < allWeak.numArrays(); ++a)
    for (int r = 0; r < allWeak.rows(); ++r)
      for (int c = 0; c < allWeak.cols(); ++c)
        allWeak.setFault(a, r, c, device::CellFault::Weak);
  sim::SimOptions weak;
  weak.faultMap = &allWeak;
  sim::SimResult inflated =
      sim::simulate(g, target, compiled.program, weak);

  EXPECT_GT(inflated.pApp, base.pApp);
  EXPECT_EQ(inflated.cimColumnOps, base.cimColumnOps);
}

// Stuck cells pin sensed bits: executing a program compiled for a
// perfect array on a stuck-ridden map corrupts outputs (placement never
// saw the faults), and the forced reads are counted.
TEST(FaultTolerance, ForeignStuckMapCorruptsUnawarePlacement) {
  ir::Graph g = smallWorkload("Bitweaving");
  isa::TargetSpec target = isa::TargetSpec::square(
      128, device::TechnologyParams::reRam(), 2);
  mapping::CompileResult compiled = mapping::compile(g, target, {});

  device::FaultMapOptions fo;
  fo.seed = 3;
  fo.stuckDensity = 0.2;
  device::FaultMap map = device::FaultMap::generate(
      target.numArrays, target.rows(), target.cols(), fo);
  sim::SimOptions sopts;
  sopts.faultMap = &map;
  sim::SimResult res = sim::simulate(g, target, compiled.program, sopts);
  EXPECT_GT(res.stuckCellReads, 0);
  EXPECT_FALSE(res.verified);
  EXPECT_NE(res.corruptedLanes(), 0);
}

// Endurance: a tiny row write budget wears rows out mid-run, the worn
// rows are counted, and — crucially — the caller's map is not mutated
// (the simulator tracks wear on a private copy, keeping simulate pure).
TEST(FaultTolerance, EnduranceWearIsCountedWithoutMutatingCallerMap) {
  ir::Graph g = smallWorkload("Bitweaving");
  isa::TargetSpec target = isa::TargetSpec::square(
      128, device::TechnologyParams::reRam(), 2);
  device::FaultMapOptions fo;
  fo.rowWriteBudget = 1;
  device::FaultMap map(target.numArrays, target.rows(), target.cols(), fo);
  device::FaultMap pristine = map;

  mapping::CompileOptions copts;
  copts.faults.map = &map;
  mapping::CompileResult compiled = mapping::compile(g, target, copts);
  sim::SimOptions sopts;
  sopts.faultMap = &map;
  sim::SimResult res = sim::simulate(g, target, compiled.program, sopts);

  EXPECT_GT(res.wornRows, 0);
  EXPECT_EQ(map, pristine);

  // Unlimited budget: nothing wears out.
  device::FaultMap eternal(target.numArrays, target.rows(), target.cols());
  sim::SimOptions e;
  e.faultMap = &eternal;
  sim::SimResult ok = sim::simulate(g, target, compiled.program, e);
  EXPECT_EQ(ok.wornRows, 0);
  EXPECT_TRUE(ok.verified);
}

// Spare-row repair is visible to callers through CodegenStats: squeezing
// a workload into small arrays with a dense map forces allocations into
// the spare region, while a perfect map at comfortable size uses none.
TEST(FaultTolerance, SpareRepairsSurfaceInCodegenStats) {
  ir::Graph g = smallWorkload("Bitweaving");
  FaultyRun comfy = runFaulty(g, device::Technology::ReRam, 0.01, 7, 8,
                              /*guarded=*/false);
  EXPECT_EQ(comfy.spareRepairs, 0);

  isa::TargetSpec target =
      isa::TargetSpec::square(32, device::TechnologyParams::reRam(), 2);
  device::FaultMapOptions fo;
  fo.seed = 7;
  fo.stuckDensity = 0.3;
  fo.weakDensity = 0.15;
  device::FaultMap map = device::FaultMap::generate(
      target.numArrays, target.rows(), target.cols(), fo);
  mapping::CompileOptions copts;
  copts.strategy = mapping::Strategy::Naive;
  copts.faults.map = &map;
  copts.faults.spareRows = 8;
  mapping::CompileResult compiled = mapping::compile(g, target, copts);
  EXPECT_GT(compiled.program.stats.spareRowAllocations, 0);

  sim::SimOptions sopts;
  sopts.faultMap = &map;
  sim::SimResult res = sim::simulate(g, target, compiled.program, sopts);
  EXPECT_TRUE(res.verified);
}

// An over-dense map that placement cannot route around must fail with a
// MappingError naming the fault pressure, not crash or mis-place.
TEST(FaultTolerance, UnrepairableDensityFailsWithDiagnostic) {
  ir::Graph g = smallWorkload("Bitweaving");
  isa::TargetSpec target =
      isa::TargetSpec::square(32, device::TechnologyParams::reRam(), 2);
  device::FaultMapOptions fo;
  fo.seed = 1;
  fo.stuckDensity = 0.6;
  fo.weakDensity = 0.35;
  device::FaultMap map = device::FaultMap::generate(
      target.numArrays, target.rows(), target.cols(), fo);
  mapping::CompileOptions copts;
  copts.strategy = mapping::Strategy::Naive;
  copts.faults.map = &map;
  copts.faults.spareRows = 2;
  EXPECT_THROW(mapping::compile(g, target, copts), MappingError);
}

}  // namespace
}  // namespace sherlock
