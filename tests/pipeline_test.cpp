// Integration tests: the full Sherlock pipeline (workload DAG -> transforms
// -> mapping -> codegen -> verifying simulation) across mappers,
// technologies, array sizes and MRA configurations. Every run is checked
// bit-exactly against the reference evaluator by the simulator.
#include <gtest/gtest.h>

#include "ir/analysis.h"
#include "mapping/compiler.h"
#include "sim/simulator.h"
#include "transforms/nand_lowering.h"
#include "transforms/passes.h"
#include "transforms/substitution.h"
#include "workloads/aes.h"
#include "workloads/bitweaving.h"
#include "workloads/random_dag.h"
#include "workloads/sobel.h"

namespace sherlock {
namespace {

struct PipelineCase {
  const char* name;
  mapping::Strategy strategy;
  device::Technology tech;
  int arrayDim;
  int mra;  // max activated rows
};

std::string caseName(const testing::TestParamInfo<PipelineCase>& info) {
  const PipelineCase& c = info.param;
  return strCat(c.name, "_",
                c.strategy == mapping::Strategy::Naive ? "naive" : "opt",
                "_", c.tech == device::Technology::ReRam ? "reram" : "stt",
                "_", c.arrayDim, "_mra", c.mra);
}

class PipelineTest : public testing::TestWithParam<PipelineCase> {
 protected:
  void runPipeline(const ir::Graph& raw) {
    const PipelineCase& c = GetParam();
    isa::TargetSpec target = isa::TargetSpec::square(
        c.arrayDim, device::TechnologyParams::forTechnology(c.tech), c.mra);

    ir::Graph g = transforms::canonicalize(raw);
    if (c.mra > 2) {
      transforms::SubstitutionOptions sopt;
      sopt.maxOperands = c.mra;
      g = transforms::substituteNodes(g, sopt).graph;
    }

    mapping::CompileOptions opts;
    opts.strategy = c.strategy;
    auto compiled = mapping::compile(g, target, opts);
    auto result = sim::simulate(g, target, compiled.program);
    EXPECT_TRUE(result.verified);
    EXPECT_GT(result.latencyNs, 0.0);
    EXPECT_GT(result.energyPj, 0.0);
    EXPECT_GT(result.pApp, 0.0);
    EXPECT_LT(result.pApp, 1.0);
  }
};

TEST_P(PipelineTest, Bitweaving) {
  runPipeline(workloads::buildBitweaving({16}));
}

TEST_P(PipelineTest, Sobel) { runPipeline(workloads::buildSobel({})); }

TEST_P(PipelineTest, AesOneRound) {
  runPipeline(workloads::buildAes({1}));
}

INSTANTIATE_TEST_SUITE_P(
    Configs, PipelineTest,
    testing::Values(
        PipelineCase{"p", mapping::Strategy::Naive,
                     device::Technology::ReRam, 512, 2},
        PipelineCase{"p", mapping::Strategy::Naive,
                     device::Technology::ReRam, 512, 4},
        PipelineCase{"p", mapping::Strategy::Naive,
                     device::Technology::SttMram, 1024, 2},
        PipelineCase{"p", mapping::Strategy::Optimized,
                     device::Technology::ReRam, 512, 2},
        PipelineCase{"p", mapping::Strategy::Optimized,
                     device::Technology::ReRam, 512, 4},
        PipelineCase{"p", mapping::Strategy::Optimized,
                     device::Technology::SttMram, 1024, 2},
        PipelineCase{"p", mapping::Strategy::Optimized,
                     device::Technology::SttMram, 256, 4}),
    caseName);

// Property sweep: random DAGs of assorted shapes must compile and verify
// under both mappers.
struct RandomCase {
  uint64_t seed;
  int ops;
  int maxArity;
  double locality;
};

class RandomPipelineTest : public testing::TestWithParam<RandomCase> {};

TEST_P(RandomPipelineTest, BothMappersVerify) {
  const RandomCase& rc = GetParam();
  workloads::RandomDagSpec spec;
  spec.seed = rc.seed;
  spec.ops = rc.ops;
  spec.maxArity = rc.maxArity;
  spec.locality = rc.locality;
  spec.inputs = 12;
  ir::Graph g = workloads::buildRandomDag(spec);

  isa::TargetSpec target = isa::TargetSpec::square(
      128, device::TechnologyParams::reRam(), spec.maxArity);

  for (auto strategy :
       {mapping::Strategy::Naive, mapping::Strategy::Optimized}) {
    mapping::CompileOptions opts;
    opts.strategy = strategy;
    auto compiled = mapping::compile(g, target, opts);
    auto result = sim::simulate(g, target, compiled.program);
    EXPECT_TRUE(result.verified)
        << "seed=" << rc.seed << " strategy="
        << (strategy == mapping::Strategy::Naive ? "naive" : "opt");
  }
}

std::vector<RandomCase> randomCases() {
  std::vector<RandomCase> cases;
  for (uint64_t seed = 1; seed <= 12; ++seed)
    cases.push_back({seed, 150 + static_cast<int>(seed) * 37,
                     2 + static_cast<int>(seed % 3),
                     seed % 2 ? 1.0 : 0.3});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPipelineTest,
                         testing::ValuesIn(randomCases()));

// The NAND lowering flow (STT-MRAM) must also run end to end.
TEST(PipelineNand, BitweavingLoweredVerifies) {
  ir::Graph g = transforms::canonicalize(
      transforms::lowerToNand(workloads::buildBitweaving({12})));
  EXPECT_TRUE(transforms::isNandOnly(g));
  isa::TargetSpec target =
      isa::TargetSpec::square(512, device::TechnologyParams::sttMram(), 2);
  auto compiled = mapping::compile(g, target);
  auto result = sim::simulate(g, target, compiled.program);
  EXPECT_TRUE(result.verified);
}

// MRA substitution sweep on the full pipeline: every budget must verify.
TEST(PipelineMra, SubstitutionBudgetSweepVerifies) {
  ir::Graph base = transforms::canonicalize(workloads::buildSobel({}));
  isa::TargetSpec target =
      isa::TargetSpec::square(512, device::TechnologyParams::reRam(), 6);
  for (double fraction : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    transforms::SubstitutionOptions sopt;
    sopt.maxOperands = 6;
    sopt.fraction = fraction;
    auto sub = transforms::substituteNodes(base, sopt);
    auto compiled = mapping::compile(sub.graph, target);
    auto result = sim::simulate(sub.graph, target, compiled.program);
    EXPECT_TRUE(result.verified) << "fraction " << fraction;
  }
}

}  // namespace
}  // namespace sherlock
