// Cache-key canonicalization tests (ir/canonical.h): alpha-renamed,
// renumbered, and commuted-operand DAGs must share a fingerprint;
// structurally different DAGs must not; and the canonical graph must
// compute the same function as the original under the input-name
// remapping — the property the compile service's content-addressed
// cache stands on.
#include "ir/canonical.h"

#include <algorithm>
#include <gtest/gtest.h>

#include "ir/evaluator.h"
#include "ir/serialize.h"
#include "support/rng.h"
#include "transforms/passes.h"
#include "workloads/random_dag.h"

using namespace sherlock;
using namespace sherlock::ir;

namespace {

std::string canonicalText(const Graph& g) {
  return graphToText(canonicalForm(g).graph);
}

std::string fp(const Graph& g) { return canonicalForm(g).fingerprint(); }

/// a & b, (a & b) ^ c, output the xor.
Graph smallGraph(const std::string& a, const std::string& b,
                 const std::string& c, bool commuteAnd = false) {
  Graph g;
  NodeId na = g.addInput(a);
  NodeId nb = g.addInput(b);
  NodeId nc = g.addInput(c);
  NodeId nand_ = commuteAnd ? g.addOp(OpKind::And, {nb, na})
                            : g.addOp(OpKind::And, {na, nb});
  NodeId nxor = g.addOp(OpKind::Xor, {nand_, nc});
  g.markOutput(nxor);
  return g;
}

}  // namespace

TEST(Canonical, AlphaRenamedGraphsShareFingerprint) {
  Graph g1 = smallGraph("a", "b", "c");
  Graph g2 = smallGraph("x", "y", "z");
  EXPECT_EQ(fp(g1), fp(g2));
  EXPECT_EQ(canonicalText(g1), canonicalText(g2));
}

TEST(Canonical, CommutedOperandsShareFingerprint) {
  Graph g1 = smallGraph("a", "b", "c", /*commuteAnd=*/false);
  Graph g2 = smallGraph("a", "b", "c", /*commuteAnd=*/true);
  EXPECT_EQ(fp(g1), fp(g2));
}

TEST(Canonical, RenumberedGraphShareFingerprint) {
  // Same DAG, nodes declared in a different order.
  Graph g1 = smallGraph("a", "b", "c");
  Graph g2;
  NodeId nc = g2.addInput("c");
  NodeId nb = g2.addInput("b");
  NodeId na = g2.addInput("a");
  NodeId nand_ = g2.addOp(OpKind::And, {na, nb});
  NodeId nxor = g2.addOp(OpKind::Xor, {nc, nand_});
  g2.markOutput(nxor);
  EXPECT_EQ(fp(g1), fp(g2));
}

TEST(Canonical, DifferentOpKindsDiffer) {
  Graph g1, g2;
  {
    NodeId a = g1.addInput("a"), b = g1.addInput("b");
    g1.markOutput(g1.addOp(OpKind::And, {a, b}));
  }
  {
    NodeId a = g2.addInput("a"), b = g2.addInput("b");
    g2.markOutput(g2.addOp(OpKind::Or, {a, b}));
  }
  EXPECT_NE(fp(g1), fp(g2));
}

TEST(Canonical, SharedOperandDistinguishedFromDistinctOperands) {
  // And(a, b) vs And(a, a): alpha-blind input hashing must not conflate
  // two distinct inputs with a doubly-used one.
  Graph g1, g2;
  {
    NodeId a = g1.addInput("a"), b = g1.addInput("b");
    g1.markOutput(g1.addOp(OpKind::And, {a, b}));
  }
  {
    NodeId a = g2.addInput("a"), b = g2.addInput("b");
    (void)b;  // same interface, different wiring
    g2.markOutput(g2.addOp(OpKind::And, {a, a}));
  }
  EXPECT_NE(fp(g1), fp(g2));
}

TEST(Canonical, ConstValueMatters) {
  Graph g1, g2;
  {
    NodeId a = g1.addInput("a"), k = g1.addConst(false);
    g1.markOutput(g1.addOp(OpKind::Xor, {a, k}));
  }
  {
    NodeId a = g2.addInput("a"), k = g2.addConst(true);
    g2.markOutput(g2.addOp(OpKind::Xor, {a, k}));
  }
  EXPECT_NE(fp(g1), fp(g2));
}

TEST(Canonical, OutputOrderAndMultiplicityMatter) {
  auto build = [](bool swapped, bool doubled) {
    Graph g;
    NodeId a = g.addInput("a"), b = g.addInput("b");
    NodeId x = g.addOp(OpKind::And, {a, b});
    NodeId y = g.addOp(OpKind::Or, {a, b});
    if (swapped) {
      g.markOutput(y);
      g.markOutput(x);
    } else {
      g.markOutput(x);
      g.markOutput(y);
    }
    if (doubled) g.markOutput(x);
    return g;
  };
  EXPECT_NE(fp(build(false, false)), fp(build(true, false)));
  EXPECT_NE(fp(build(false, false)), fp(build(false, true)));
}

TEST(Canonical, IdempotentFixedPoint) {
  Graph g = smallGraph("p", "q", "r");
  CanonicalForm once = canonicalForm(g);
  CanonicalForm twice = canonicalForm(once.graph);
  EXPECT_EQ(once.fingerprint(), twice.fingerprint());
  EXPECT_EQ(graphToText(once.graph), graphToText(twice.graph));
}

TEST(Canonical, InputNamesMapCanonicalPositions) {
  Graph g = smallGraph("left", "right", "carry");
  CanonicalForm cf = canonicalForm(g);
  ASSERT_EQ(cf.inputNames.size(), 3u);
  std::vector<std::string> names = cf.inputNames;
  std::sort(names.begin(), names.end());
  EXPECT_EQ(names, (std::vector<std::string>{"carry", "left", "right"}));
  // Canonical inputs are positional.
  for (size_t k = 0, seen = 0; k < cf.graph.numNodes(); ++k) {
    const Node& n = cf.graph.node(static_cast<NodeId>(k));
    if (n.isInput()) {
      EXPECT_EQ(n.name, strCat("i", seen++));
    }
  }
}

namespace {

/// Rebuilds `g` under a random topological re-declaration order, with
/// inputs renamed and commutative operand lists shuffled — an
/// isomorphic graph that shares no incidental byte with the original.
Graph scramble(const Graph& g, Rng& rng) {
  size_t n = g.numNodes();
  std::vector<int> pending(n, 0);
  std::vector<NodeId> ready;
  for (NodeId id = g.firstId(); id < g.endId(); ++id) {
    std::vector<NodeId> distinct = g.node(id).operands;
    std::sort(distinct.begin(), distinct.end());
    distinct.erase(std::unique(distinct.begin(), distinct.end()),
                   distinct.end());
    pending[static_cast<size_t>(id)] = static_cast<int>(distinct.size());
    if (distinct.empty()) ready.push_back(id);
  }
  Graph out;
  std::vector<NodeId> remap(n, kInvalidNode);
  int inputs = 0;
  while (!ready.empty()) {
    size_t pick = rng.below(ready.size());
    NodeId id = ready[pick];
    ready.erase(ready.begin() + static_cast<long>(pick));
    const Node& node = g.node(id);
    NodeId mapped;
    if (node.isInput()) {
      mapped = out.addInput(strCat("renamed_", inputs++));
    } else if (node.isConst()) {
      mapped = out.addConst(node.constValue);
    } else {
      std::vector<NodeId> operands;
      for (NodeId o : node.operands)
        operands.push_back(remap[static_cast<size_t>(o)]);
      if (!isUnary(node.op))
        std::shuffle(operands.begin(), operands.end(), rng);
      mapped = out.addOp(node.op, std::move(operands));
    }
    remap[static_cast<size_t>(id)] = mapped;
    for (NodeId u : node.users)
      if (--pending[static_cast<size_t>(u)] == 0) ready.push_back(u);
  }
  for (NodeId o : g.outputs()) out.markOutput(remap[static_cast<size_t>(o)]);
  out.validate();
  return out;
}

}  // namespace

TEST(Canonical, FuzzScrambledGraphsShareFingerprintAndFunction) {
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    workloads::RandomDagSpec spec;
    spec.seed = seed;
    spec.inputs = 3 + static_cast<int>(seed % 7);
    spec.ops = 10 + static_cast<int>(seed * 7 % 90);
    spec.maxArity = 2 + static_cast<int>(seed % 3);
    spec.notProbability = 0.2;
    spec.locality = 0.3 + 0.1 * static_cast<double>(seed % 7);
    Graph g = transforms::canonicalize(workloads::buildRandomDag(spec));

    Rng rng(seed * 77 + 5);
    Graph shuffled = scramble(g, rng);
    CanonicalForm a = canonicalForm(g);
    CanonicalForm b = canonicalForm(shuffled);
    ASSERT_EQ(a.fingerprint(), b.fingerprint()) << "seed " << seed;
    ASSERT_EQ(graphToText(a.graph), graphToText(b.graph))
        << "seed " << seed;

    // Soundness: the canonical graph computes the original function
    // under the inputNames remapping.
    std::map<std::string, uint64_t> inputs, canonicalInputs;
    for (NodeId id = g.firstId(); id < g.endId(); ++id)
      if (g.node(id).isInput()) inputs[g.node(id).name] = rng();
    for (size_t k = 0; k < a.inputNames.size(); ++k)
      canonicalInputs[strCat("i", k)] = inputs.at(a.inputNames[k]);
    std::vector<uint64_t> ref = evaluateAllWords(g, inputs);
    std::vector<uint64_t> can =
        evaluateAllWords(a.graph, canonicalInputs);
    ASSERT_EQ(g.outputs().size(), a.graph.outputs().size());
    for (size_t i = 0; i < g.outputs().size(); ++i)
      ASSERT_EQ(ref[static_cast<size_t>(g.outputs()[i])],
                can[static_cast<size_t>(a.graph.outputs()[i])])
          << "seed " << seed << " output " << i;
  }
}
