// Property tests for the inter-array partitioner (src/mapping/partition):
// on 50 seeded random DAGs clustered with a deliberately small column
// capacity and placed on a 2x2 mesh with tight per-array budgets, the
// assignment must respect every budget, serve each cut (value,
// destination-array) pair with exactly one transfer, and produce a
// list-schedule estimate where the overlapped makespan never exceeds the
// serialized one. Degenerate cases (kernel fits one array, budget too
// small for the cluster count) are pinned separately.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "dag_fuzz.h"
#include "mapping/partition.h"
#include "support/diagnostics.h"
#include "transforms/passes.h"
#include "workloads/random_dag.h"

namespace sherlock::mapping {
namespace {

isa::TargetSpec meshTarget(int rows, int cols) {
  isa::TargetSpec t = isa::TargetSpec::square(
      64, device::TechnologyParams::reRam(), 2);
  return t.withGrid(arraymodel::GridConfig{rows, cols});
}

ClusteringResult clusterSmall(const ir::Graph& g, int capacity,
                              int maxClusters) {
  ClusteringOptions co;
  co.columnCapacity = capacity;
  co.targetClusters = maxClusters;
  co.maxClusters = maxClusters;
  return findClusters(g, co);
}

/// Independently derives the cut implied by (clusterOf, arrayOf): every
/// operand edge whose producer and consumer op land on different arrays,
/// plus the deduplicated (value, dstArray) transfer set.
struct ExpectedCut {
  long cutEdges = 0;
  std::set<std::pair<ir::NodeId, int>> transfers;
};

ExpectedCut deriveCut(const ir::Graph& g, const ClusteringResult& clustering,
                      const PartitionResult& part) {
  ExpectedCut cut;
  for (ir::NodeId v = g.firstId(); v < g.endId(); ++v) {
    const ir::Node& n = g.node(v);
    if (!n.isOp()) continue;
    int srcArray = part.arrayOf[static_cast<size_t>(
        clustering.clusterOf[static_cast<size_t>(v)])];
    for (ir::NodeId user : n.users) {
      int dstArray = part.arrayOf[static_cast<size_t>(
          clustering.clusterOf[static_cast<size_t>(user)])];
      if (dstArray == srcArray) continue;
      cut.cutEdges++;
      cut.transfers.insert({v, dstArray});
    }
  }
  return cut;
}

TEST(Partition, PropertiesHoldOnRandomDags) {
  const isa::TargetSpec target = meshTarget(2, 2);
  long shardedSeeds = 0;

  for (uint64_t seed = 1; seed <= 50; ++seed) {
    SCOPED_TRACE(strCat("seed ", seed));
    ir::Graph g = transforms::canonicalize(
        workloads::buildRandomDag(testing::sampleDagSpec(seed)));
    ClusteringResult clustering = clusterSmall(g, 12, 0);
    const int n = static_cast<int>(clustering.clusters.size());
    // The tightest uniform budget that still fits: forces the placement
    // to spread across arrays whenever there is more than one cluster.
    PartitionOptions popts;
    popts.maxColumnsPerArray = std::max(1, (n + 3) / 4);
    PartitionResult part = partitionClusters(g, clustering, target, popts);

    // Assignment shape: one in-range array per cluster.
    ASSERT_EQ(part.arrayOf.size(), clustering.clusters.size());
    std::vector<int> load(static_cast<size_t>(target.numArrays), 0);
    for (int a : part.arrayOf) {
      ASSERT_GE(a, 0);
      ASSERT_LT(a, target.numArrays);
      load[static_cast<size_t>(a)]++;
    }
    // Capacity: no array exceeds its column budget.
    for (int a = 0; a < target.numArrays; ++a)
      EXPECT_LE(load[static_cast<size_t>(a)], popts.maxColumnsPerArray)
          << "array " << a << " over budget";

    // Cut accounting matches an independent derivation, with exactly one
    // transfer per cut (value, dstArray) pair.
    ExpectedCut expected = deriveCut(g, clustering, part);
    EXPECT_EQ(part.cutEdges, expected.cutEdges);
    std::set<std::pair<ir::NodeId, int>> actual;
    for (const Transfer& t : part.transfers) {
      EXPECT_TRUE(actual.insert({t.value, t.dstArray}).second)
          << "duplicate transfer for value " << t.value << " into array "
          << t.dstArray;
      EXPECT_NE(t.srcArray, t.dstArray);
      EXPECT_EQ(t.srcArray,
                part.arrayOf[static_cast<size_t>(t.producerCluster)]);
      EXPECT_EQ(t.hops, target.hopsBetween(t.srcArray, t.dstArray));
      EXPECT_EQ(clustering.clusterOf[static_cast<size_t>(t.value)],
                t.producerCluster);
    }
    EXPECT_EQ(actual, expected.transfers);

    // Schedule estimate: overlapping compute with movement can only help.
    EXPECT_GT(part.serializedMakespanNs, 0.0);
    EXPECT_GT(part.overlappedMakespanNs, 0.0);
    EXPECT_LE(part.overlappedMakespanNs,
              part.serializedMakespanNs * (1 + 1e-9));

    if (!part.singleArray) shardedSeeds++;
    if (part.singleArray) EXPECT_TRUE(part.transfers.empty());
  }
  // The suite is only meaningful if the tight budgets actually force
  // multi-array placements on a healthy fraction of the seeds.
  EXPECT_GT(shardedSeeds, 10) << "budgets too loose: sharding not exercised";
}

TEST(Partition, SingleArrayFallbackWhenKernelFits) {
  const isa::TargetSpec target = meshTarget(2, 2);
  ir::Graph g = transforms::canonicalize(
      workloads::buildRandomDag(testing::sampleDagSpec(3)));
  // Full 64-column budget per array: everything fits array 0.
  ClusteringResult clustering = clusterSmall(g, 12, 32);
  PartitionResult part = partitionClusters(g, clustering, target, {});
  EXPECT_TRUE(part.singleArray);
  EXPECT_TRUE(part.transfers.empty());
  EXPECT_EQ(part.cutEdges, 0);
  for (int a : part.arrayOf) EXPECT_EQ(a, part.arrayOf.front());
  EXPECT_LE(part.overlappedMakespanNs,
            part.serializedMakespanNs * (1 + 1e-9));
}

TEST(Partition, ThrowsWhenBudgetBelowClusterCount) {
  const isa::TargetSpec target = meshTarget(2, 2);
  workloads::RandomDagSpec spec;
  spec.seed = 7;
  spec.inputs = 8;
  spec.ops = 120;
  ir::Graph g = transforms::canonicalize(workloads::buildRandomDag(spec));
  ClusteringResult clustering = clusterSmall(g, 8, 0);
  ASSERT_GT(clustering.clusters.size(), 4u);
  PartitionOptions popts;
  popts.maxColumnsPerArray = 1;  // 4 columns total < cluster count
  EXPECT_THROW(partitionClusters(g, clustering, target, popts),
               MappingError);
}

TEST(Partition, PerArrayBudgetOverrideRespected) {
  const isa::TargetSpec target = meshTarget(1, 2);
  ir::Graph g = transforms::canonicalize(
      workloads::buildRandomDag(testing::sampleDagSpec(5)));
  ClusteringResult clustering = clusterSmall(g, 10, 0);
  const int n = static_cast<int>(clustering.clusters.size());
  ASSERT_GE(n, 2);
  // Lopsided budgets: array 0 takes one cluster, array 1 the rest.
  PartitionOptions popts;
  popts.arrayColumnBudget = {1, n};
  PartitionResult part = partitionClusters(g, clustering, target, popts);
  int inZero = 0;
  for (int a : part.arrayOf) inZero += a == 0 ? 1 : 0;
  EXPECT_LE(inZero, 1);
}

}  // namespace
}  // namespace sherlock::mapping
