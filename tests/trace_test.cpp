// Observability-layer tests: span tracer (support/trace.h) and unified
// metrics (support/metrics.h).
//
// The tracer is process-global, so every test enables it, drains with
// clear(), and disables on exit (TraceFixture). The deterministic-clock
// test asserts the contract CI leans on: with SHERLOCK_TRACE_DETERMINISTIC
// set, a trace is a pure function of per-track work — byte-identical
// across thread-pool widths.
#include "support/trace.h"

#include <cstdlib>
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "support/metrics.h"
#include "support/parallel.h"

using namespace sherlock;
using namespace sherlock::trace;

namespace {

/// Enables the tracer for one test and restores a clean disabled state
/// afterwards (events drained, determinism env unset).
class TraceFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::instance().disable();
    Tracer::instance().clear();
  }
  void TearDown() override {
    Tracer::instance().disable();
    Tracer::instance().clear();
    unsetenv("SHERLOCK_TRACE_DETERMINISTIC");
  }
  void enablePlain() {
    unsetenv("SHERLOCK_TRACE_DETERMINISTIC");
    Tracer::instance().enable();
  }
  void enableDeterministic() {
    setenv("SHERLOCK_TRACE_DETERMINISTIC", "1", 1);
    Tracer::instance().enable();
  }
};

using TraceTest = TraceFixture;

TEST_F(TraceTest, DisabledTracerRecordsNothing) {
  {
    Span outer("test", "outer");
    Tracer::instance().instant("test", "point");
    Tracer::instance().counter("test", "count", 7);
  }
  EXPECT_TRUE(Tracer::instance().snapshot().empty());
  EXPECT_FALSE(Tracer::instance().enabled());
}

TEST_F(TraceTest, SpanNestingAndOrdering) {
  enablePlain();
  {
    Span outer("test", "outer");
    { Span inner("test", "inner"); }
    Tracer::instance().instant("test", "point", "\"k\": 1");
  }
  std::vector<TraceEvent> events = Tracer::instance().snapshot();
  ASSERT_EQ(events.size(), 5u);
  // B outer, B inner, E, i, E — emission order, one track.
  EXPECT_EQ(events[0].phase, TraceEvent::Phase::Begin);
  EXPECT_EQ(events[0].name, "outer");
  EXPECT_EQ(events[1].phase, TraceEvent::Phase::Begin);
  EXPECT_EQ(events[1].name, "inner");
  EXPECT_EQ(events[2].phase, TraceEvent::Phase::End);
  EXPECT_EQ(events[3].phase, TraceEvent::Phase::Instant);
  EXPECT_EQ(events[4].phase, TraceEvent::Phase::End);
  // Timestamps are monotonic in emission order on one thread.
  for (size_t i = 1; i < events.size(); ++i)
    EXPECT_GE(events[i].ts, events[i - 1].ts) << i;
  // All on the same (implicit) track.
  for (const TraceEvent& e : events)
    EXPECT_EQ(e.track, events[0].track);
}

TEST_F(TraceTest, PerThreadBuffersMergeUnderThreadPool) {
  enablePlain();
  constexpr int kItems = 32;
  ThreadPool pool(4);
  pool.parallelFor(kItems, [&](int64_t i) {
    ScopedTrack track(static_cast<uint32_t>(i) + 1,
                      "item " + std::to_string(i));
    Span span("test", "work");
    Tracer::instance().instant("test", "mid");
  });
  std::vector<TraceEvent> events = Tracer::instance().snapshot();
  ASSERT_EQ(events.size(), 3u * kItems);
  // Every track carries exactly its B/i/E triple regardless of which
  // pool thread ran it.
  std::vector<int> perTrack(kItems + 1, 0);
  for (const TraceEvent& e : events) {
    ASSERT_GE(e.track, 1u);
    ASSERT_LE(e.track, static_cast<uint32_t>(kItems));
    perTrack[e.track]++;
  }
  for (int t = 1; t <= kItems; ++t) EXPECT_EQ(perTrack[t], 3) << t;
}

TEST_F(TraceTest, DeterministicTraceIsByteStableAcrossThreadCounts) {
  enableDeterministic();
  auto run = [&](int threads) {
    Tracer::instance().clear();
    ThreadPool pool(threads);
    pool.parallelFor(16, [&](int64_t i) {
      ScopedTrack track(static_cast<uint32_t>(i) + 1,
                        "item " + std::to_string(i));
      Span span("test", "work " + std::to_string(i));
      Tracer::instance().counter("test", "progress",
                                 static_cast<double>(i));
    });
    return Tracer::instance().exportJson();
  };
  std::string serial = run(1);
  std::string wide = run(8);
  EXPECT_EQ(serial, wide);
  // Virtual ticks restart per track: the first event of every track
  // stamps tick 0.
  std::vector<TraceEvent> events = Tracer::instance().snapshot();
  uint32_t lastTrack = 0;
  for (const TraceEvent& e : events) {
    if (e.track != lastTrack) {
      EXPECT_EQ(e.ts, 0.0) << "track " << e.track;
      lastTrack = e.track;
    }
  }
}

TEST_F(TraceTest, ExportJsonIsWellFormedChromeTrace) {
  enablePlain();
  Tracer::instance().setTrackName(1, "main \"track\"");
  {
    ScopedTrack track(1);
    Span span("cat", "span");
    Tracer::instance().instant("cat", "point", "\"inst\": 3");
    Tracer::instance().counter("cat", "gauge", 2.5);
  }
  std::string json = Tracer::instance().exportJson();
  EXPECT_EQ(json.rfind("{\"displayTimeUnit\": \"ns\", \"traceEvents\": [",
                       0),
            0u)
      << json;
  EXPECT_NE(json.find("\"ph\": \"B\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"E\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"C\""), std::string::npos);
  // Metadata row names the track, with quotes escaped.
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("main \\\"track\\\""), std::string::npos);
  // Instant args and counter value survive as JSON object members.
  EXPECT_NE(json.find("\"args\": {\"inst\": 3}"), std::string::npos);
  EXPECT_NE(json.find("\"args\": {\"value\": 2.5}"), std::string::npos);
  EXPECT_EQ(json.substr(json.size() - 4), "\n]}\n");
}

TEST_F(TraceTest, ScopedTrackRestoresPreviousTrack) {
  enablePlain();
  Tracer::instance().instant("test", "before");
  {
    ScopedTrack track(42, "nested");
    Tracer::instance().instant("test", "inside");
  }
  Tracer::instance().instant("test", "after");
  std::vector<TraceEvent> events = Tracer::instance().snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].track, events[2].track);
  EXPECT_EQ(events[1].track, 42u);
  EXPECT_NE(events[0].track, 42u);
}

TEST(MetricsTest, PercentileTrackerLazySortStaysCorrect) {
  PercentileTracker t;
  // Interleave records and queries: the cached sort must invalidate on
  // every record and re-answer correctly.
  t.record(30);
  t.record(10);
  EXPECT_EQ(t.percentile(0), 10);
  EXPECT_EQ(t.percentile(100), 30);
  t.record(20);
  EXPECT_EQ(t.percentile(50), 20);
  EXPECT_EQ(t.min(), 10);
  EXPECT_EQ(t.max(), 30);
  t.record(5);
  EXPECT_EQ(t.percentile(0), 5);
  EXPECT_EQ(t.count(), 4u);
  EXPECT_DOUBLE_EQ(t.mean(), 65.0 / 4.0);
  t.clear();
  EXPECT_EQ(t.percentile(50), 0);
}

TEST(MetricsTest, RegistryCountersGaugesHistograms) {
  MetricsRegistry reg;
  reg.add("reqs");
  reg.add("reqs", 2);
  reg.setGauge("rate", 0.5);
  reg.observe("lat_us", 10);
  reg.observe("lat_us", 20);
  EXPECT_EQ(reg.counterValue("reqs"), 3u);
  EXPECT_DOUBLE_EQ(reg.gaugeValue("rate"), 0.5);
  MetricsRegistry::HistogramSnapshot h = reg.histogram("lat_us");
  EXPECT_EQ(h.count, 2u);
  EXPECT_DOUBLE_EQ(h.mean, 15.0);
  EXPECT_DOUBLE_EQ(h.min, 10.0);
  EXPECT_DOUBLE_EQ(h.max, 20.0);
  // Unknown names answer zero values, not errors.
  EXPECT_EQ(reg.counterValue("nope"), 0u);
  EXPECT_EQ(reg.histogram("nope").count, 0u);
}

TEST(MetricsTest, RegistryJsonSchema) {
  MetricsRegistry reg;
  reg.add("b.count");
  reg.add("a.count", 4);
  reg.setGauge("g", 1.25);
  reg.observe("h", 3);
  std::string json = reg.toJson();
  EXPECT_NE(json.find("\"schema_version\": 1"), std::string::npos);
  // std::map members emit keys in sorted order for clean diffs.
  EXPECT_LT(json.find("\"a.count\": 4"), json.find("\"b.count\": 1"));
  EXPECT_NE(json.find("\"g\": 1.25"), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

}  // namespace
