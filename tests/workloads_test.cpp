// Functional correctness of the workload DAG generators against their
// plain-integer references, checked through the IR evaluator.
#include <gtest/gtest.h>

#include "ir/analysis.h"
#include "ir/evaluator.h"
#include "support/rng.h"
#include "workloads/aes.h"
#include "workloads/aes_math.h"
#include "workloads/bitweaving.h"
#include "workloads/random_dag.h"
#include "mapping/compiler.h"
#include "sim/simulator.h"
#include "transforms/passes.h"
#include "workloads/sobel.h"

namespace sherlock {
namespace {

using workloads::BitweavingSpec;
using workloads::RandomDagSpec;
using workloads::SobelSpec;

std::map<std::string, uint64_t> packWord(const std::string& prefix,
                                         const std::vector<uint64_t>& lanes,
                                         int bits) {
  std::map<std::string, uint64_t> out;
  for (int b = 0; b < bits; ++b) {
    uint64_t word = 0;
    for (size_t lane = 0; lane < lanes.size(); ++lane)
      if ((lanes[lane] >> b) & 1) word |= uint64_t{1} << lane;
    out[strCat(prefix, ".", b)] = word;
  }
  return out;
}

TEST(Bitweaving, MatchesReferenceAcrossLanes) {
  const int bits = 12;
  ir::Graph g = workloads::buildBitweaving({bits});
  g.validate();

  Rng rng(11);
  std::vector<uint64_t> values(64), c1s(64), c2s(64);
  uint64_t c1 = rng.below(1 << bits);
  uint64_t c2 = c1 + rng.below((1 << bits) - c1);
  for (int lane = 0; lane < 64; ++lane) {
    values[static_cast<size_t>(lane)] = rng.below(1 << bits);
    c1s[static_cast<size_t>(lane)] = c1;
    c2s[static_cast<size_t>(lane)] = c2;
  }

  std::map<std::string, uint64_t> inputs = packWord("v", values, bits);
  auto ci1 = packWord("c1", c1s, bits);
  auto ci2 = packWord("c2", c2s, bits);
  inputs.insert(ci1.begin(), ci1.end());
  inputs.insert(ci2.begin(), ci2.end());

  auto words = ir::evaluateAllWords(g, inputs);
  uint64_t result = words[static_cast<size_t>(g.outputs()[0])];
  for (int lane = 0; lane < 64; ++lane) {
    bool expected = workloads::bitweavingReference(
        values[static_cast<size_t>(lane)], c1, c2, bits);
    EXPECT_EQ(((result >> lane) & 1) != 0, expected) << "lane " << lane;
  }
}

TEST(Bitweaving, EdgeValues) {
  const int bits = 8;
  ir::Graph g = workloads::buildBitweaving({bits});
  // Lanes exercise the boundary cases v == c1, v == c2, v just outside.
  std::vector<uint64_t> values{10, 20, 9, 21, 0, 255, 10, 20};
  std::vector<uint64_t> c1s(values.size(), 10), c2s(values.size(), 20);
  auto inputs = packWord("v", values, bits);
  auto a = packWord("c1", c1s, bits);
  auto b = packWord("c2", c2s, bits);
  inputs.insert(a.begin(), a.end());
  inputs.insert(b.begin(), b.end());
  auto words = ir::evaluateAllWords(g, inputs);
  uint64_t result = words[static_cast<size_t>(g.outputs()[0])];
  std::vector<bool> expected{true, true, false, false,
                             false, false, true, true};
  for (size_t lane = 0; lane < values.size(); ++lane)
    EXPECT_EQ(((result >> lane) & 1) != 0, expected[lane]) << lane;
}

TEST(Sobel, MatchesReferenceAcrossLanesAndWindows) {
  SobelSpec spec;
  spec.width = 4;
  ir::Graph g = workloads::buildSobel(spec);
  g.validate();
  ASSERT_EQ(g.outputs().size(), 4u);

  Rng rng(17);
  // patch[r][c][lane]
  std::vector<std::vector<std::vector<uint64_t>>> patch(
      3, std::vector<std::vector<uint64_t>>(
             static_cast<size_t>(spec.width + 2),
             std::vector<uint64_t>(64)));
  std::map<std::string, uint64_t> inputs;
  for (int r = 0; r < 3; ++r)
    for (int c = 0; c < spec.width + 2; ++c) {
      for (auto& p : patch[static_cast<size_t>(r)][static_cast<size_t>(c)])
        p = rng.below(256);
      auto packed = packWord(
          workloads::sobelPixelName(r, c),
          patch[static_cast<size_t>(r)][static_cast<size_t>(c)],
          spec.pixelBits);
      inputs.insert(packed.begin(), packed.end());
    }
  auto words = ir::evaluateAllWords(g, inputs);
  for (int x = 0; x < spec.width; ++x) {
    uint64_t result =
        words[static_cast<size_t>(g.outputs()[static_cast<size_t>(x)])];
    for (int lane = 0; lane < 64; ++lane) {
      auto px = [&](int r, int c) {
        return patch[static_cast<size_t>(r)][static_cast<size_t>(c)]
                    [static_cast<size_t>(lane)];
      };
      uint64_t neigh[8] = {px(0, x),     px(0, x + 1), px(0, x + 2),
                           px(1, x),     px(1, x + 2), px(2, x),
                           px(2, x + 1), px(2, x + 2)};
      EXPECT_EQ(((result >> lane) & 1) != 0,
                workloads::sobelReference(neigh, spec))
          << "window " << x << " lane " << lane;
    }
  }
}

TEST(Bitweaving, MultiSegmentSharesConstants) {
  workloads::BitweavingSpec spec;
  spec.bits = 8;
  spec.segments = 3;
  ir::Graph g = workloads::buildBitweaving(spec);
  g.validate();
  EXPECT_EQ(g.outputs().size(), 3u);
  // Inputs: shared c1/c2 plus one value word per segment.
  EXPECT_EQ(g.inputCount(), static_cast<size_t>(8 * (2 + 3)));
  std::map<std::string, uint64_t> in;
  for (int b = 0; b < 8; ++b) {
    in[strCat("c1.", b)] = (10 >> b) & 1 ? ~uint64_t{0} : 0;
    in[strCat("c2.", b)] = (20 >> b) & 1 ? ~uint64_t{0} : 0;
    in[strCat("v.", b)] = (15 >> b) & 1 ? ~uint64_t{0} : 0;   // inside
    in[strCat("v1.", b)] = (5 >> b) & 1 ? ~uint64_t{0} : 0;   // below
    in[strCat("v2.", b)] = (20 >> b) & 1 ? ~uint64_t{0} : 0;  // boundary
  }
  auto words = ir::evaluateAllWords(g, in);
  EXPECT_EQ(words[static_cast<size_t>(g.outputs()[0])] & 1, 1u);
  EXPECT_EQ(words[static_cast<size_t>(g.outputs()[1])] & 1, 0u);
  EXPECT_EQ(words[static_cast<size_t>(g.outputs()[2])] & 1, 1u);
}

TEST(AesMath, SboxKnownValues) {
  // FIPS-197 reference values.
  EXPECT_EQ(workloads::aes::sbox(0x00), 0x63);
  EXPECT_EQ(workloads::aes::sbox(0x01), 0x7c);
  EXPECT_EQ(workloads::aes::sbox(0x53), 0xed);
  EXPECT_EQ(workloads::aes::sbox(0xff), 0x16);
}

TEST(AesMath, GfInverseRoundTrips) {
  for (int v = 1; v < 256; ++v) {
    uint8_t b = static_cast<uint8_t>(v);
    EXPECT_EQ(workloads::aes::gfMul(b, workloads::aes::gfInv(b)), 1)
        << "value " << v;
  }
}

TEST(AesMath, Fips197KnownAnswer) {
  // FIPS-197 Appendix B example.
  std::array<uint8_t, 16> plain{0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a,
                                0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2,
                                0xe0, 0x37, 0x07, 0x34};
  std::array<uint8_t, 16> key{0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae,
                              0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88,
                              0x09, 0xcf, 0x4f, 0x3c};
  std::array<uint8_t, 16> expected{0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc,
                                   0x09, 0xfb, 0xdc, 0x11, 0x85, 0x97,
                                   0x19, 0x6a, 0x0b, 0x32};
  EXPECT_EQ(workloads::aes::encryptBlock(plain, key), expected);
}

TEST(AesCircuit, OneRoundMatchesReference) {
  ir::Graph g = workloads::buildAes({1});
  g.validate();

  Rng rng(23);
  std::vector<std::array<uint8_t, 16>> blocks(8);
  for (auto& blk : blocks)
    for (auto& byte : blk) byte = static_cast<uint8_t>(rng.below(256));
  std::array<uint8_t, 16> key{};
  for (auto& byte : key) byte = static_cast<uint8_t>(rng.below(256));

  auto inputs = workloads::packPlaintext(blocks);
  auto rk = workloads::packRoundKeys(key, 1);
  inputs.insert(rk.begin(), rk.end());

  auto words = ir::evaluateAllWords(g, inputs);
  std::vector<uint64_t> outSlices;
  for (ir::NodeId out : g.outputs())
    outSlices.push_back(words[static_cast<size_t>(out)]);

  for (size_t lane = 0; lane < blocks.size(); ++lane) {
    auto expected = workloads::aes::encryptBlock(blocks[lane], key, 1);
    auto actual =
        workloads::unpackState(outSlices, static_cast<int>(lane));
    EXPECT_EQ(actual, expected) << "lane " << lane;
  }
}

TEST(AesCircuit, FullAesMatchesFips197) {
  ir::Graph g = workloads::buildAes({10});
  std::array<uint8_t, 16> plain{0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a,
                                0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2,
                                0xe0, 0x37, 0x07, 0x34};
  std::array<uint8_t, 16> key{0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae,
                              0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88,
                              0x09, 0xcf, 0x4f, 0x3c};
  auto inputs = workloads::packPlaintext({plain});
  auto rk = workloads::packRoundKeys(key, 10);
  inputs.insert(rk.begin(), rk.end());
  auto words = ir::evaluateAllWords(g, inputs);
  std::vector<uint64_t> outSlices;
  for (ir::NodeId out : g.outputs())
    outSlices.push_back(words[static_cast<size_t>(out)]);
  auto actual = workloads::unpackState(outSlices, 0);
  std::array<uint8_t, 16> expected{0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc,
                                   0x09, 0xfb, 0xdc, 0x11, 0x85, 0x97,
                                   0x19, 0x6a, 0x0b, 0x32};
  EXPECT_EQ(actual, expected);
}

TEST(RandomDag, GeneratesValidGraphs) {
  for (uint64_t seed = 0; seed < 20; ++seed) {
    RandomDagSpec spec;
    spec.seed = seed;
    spec.ops = 200;
    spec.maxArity = 4;
    ir::Graph g = workloads::buildRandomDag(spec);
    EXPECT_NO_THROW(g.validate()) << "seed " << seed;
    EXPECT_FALSE(g.outputs().empty());
    EXPECT_GE(g.opCount(), 1u);
  }
}

TEST(RandomDag, DeterministicForSeed) {
  RandomDagSpec spec;
  spec.seed = 99;
  ir::Graph a = workloads::buildRandomDag(spec);
  ir::Graph b = workloads::buildRandomDag(spec);
  ASSERT_EQ(a.numNodes(), b.numNodes());
  for (ir::NodeId i = a.firstId(); i < a.endId(); ++i) {
    EXPECT_EQ(a.node(i).kind, b.node(i).kind);
    EXPECT_EQ(a.node(i).operands, b.node(i).operands);
  }
}

}  // namespace
}  // namespace sherlock

namespace sherlock {
namespace {

TEST(AesMath, InverseSboxRoundTrips) {
  for (int v = 0; v < 256; ++v) {
    uint8_t b = static_cast<uint8_t>(v);
    EXPECT_EQ(workloads::aes::invSbox(workloads::aes::sbox(b)), b);
    EXPECT_EQ(workloads::aes::sbox(workloads::aes::invSbox(b)), b);
  }
}

TEST(AesMath, DecryptInvertsEncrypt) {
  Rng rng(77);
  for (int trial = 0; trial < 8; ++trial) {
    std::array<uint8_t, 16> plain{}, key{};
    for (auto& b : plain) b = static_cast<uint8_t>(rng.below(256));
    for (auto& b : key) b = static_cast<uint8_t>(rng.below(256));
    for (int rounds : {1, 3, 10}) {
      auto ct = workloads::aes::encryptBlock(plain, key, rounds);
      EXPECT_EQ(workloads::aes::decryptBlock(ct, key, rounds), plain)
          << "trial " << trial << " rounds " << rounds;
    }
  }
}

TEST(AesCircuit, DecryptOneRoundMatchesReference) {
  ir::Graph g = workloads::buildAesDecrypt({1});
  g.validate();
  Rng rng(31);
  std::vector<std::array<uint8_t, 16>> blocks(8);
  for (auto& blk : blocks)
    for (auto& byte : blk) byte = static_cast<uint8_t>(rng.below(256));
  std::array<uint8_t, 16> key{};
  for (auto& byte : key) byte = static_cast<uint8_t>(rng.below(256));

  auto inputs = workloads::packCiphertext(blocks);
  auto rk = workloads::packRoundKeys(key, 1);
  inputs.insert(rk.begin(), rk.end());

  auto words = ir::evaluateAllWords(g, inputs);
  std::vector<uint64_t> outSlices;
  for (ir::NodeId out : g.outputs())
    outSlices.push_back(words[static_cast<size_t>(out)]);
  for (size_t lane = 0; lane < blocks.size(); ++lane) {
    auto expected = workloads::aes::decryptBlock(blocks[lane], key, 1);
    auto actual =
        workloads::unpackState(outSlices, static_cast<int>(lane));
    EXPECT_EQ(actual, expected) << "lane " << lane;
  }
}

TEST(AesCircuit, FullDecryptInvertsFullEncrypt) {
  // End-to-end: the decryption circuit applied to the encryption
  // circuit's output recovers the plaintext (both evaluated bit-sliced).
  ir::Graph enc = workloads::buildAes({10});
  ir::Graph dec = workloads::buildAesDecrypt({10});

  Rng rng(51);
  std::vector<std::array<uint8_t, 16>> blocks(4);
  for (auto& blk : blocks)
    for (auto& byte : blk) byte = static_cast<uint8_t>(rng.below(256));
  std::array<uint8_t, 16> key{};
  for (auto& byte : key) byte = static_cast<uint8_t>(rng.below(256));
  auto rk = workloads::packRoundKeys(key, 10);

  auto encIn = workloads::packPlaintext(blocks);
  encIn.insert(rk.begin(), rk.end());
  auto encWords = ir::evaluateAllWords(enc, encIn);

  std::map<std::string, uint64_t> decIn = rk;
  for (int k = 0; k < 128; ++k)
    decIn[strCat("ct.", k)] =
        encWords[static_cast<size_t>(enc.outputs()[static_cast<size_t>(k)])];
  auto decWords = ir::evaluateAllWords(dec, decIn);

  std::vector<uint64_t> outSlices;
  for (ir::NodeId out : dec.outputs())
    outSlices.push_back(decWords[static_cast<size_t>(out)]);
  for (size_t lane = 0; lane < blocks.size(); ++lane)
    EXPECT_EQ(workloads::unpackState(outSlices, static_cast<int>(lane)),
              blocks[lane])
        << "lane " << lane;
}

TEST(AesCircuit, DecryptCompilesAndVerifiesOnCim) {
  ir::Graph g = transforms::canonicalize(workloads::buildAesDecrypt({1}));
  isa::TargetSpec target =
      isa::TargetSpec::square(512, device::TechnologyParams::reRam());
  auto compiled = mapping::compile(g, target);
  auto result = sim::simulate(g, target, compiled.program);
  EXPECT_TRUE(result.verified);
}

}  // namespace
}  // namespace sherlock
