// Focused tests for the Algorithm 2 clustering engine: the paper's
// Fig. 5 assignment cases, the MergeClusters step, and the refinement
// pass — each exercised on hand-built DAGs where the expected grouping is
// known.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "ir/analysis.h"
#include "isa/instruction.h"
#include "mapping/clustering.h"
#include "verify/verifier.h"
#include "workloads/random_dag.h"

namespace sherlock::mapping {
namespace {

using ir::Graph;
using ir::NodeId;
using ir::OpKind;

ClusteringOptions opts(int capacity, int target = 0, int maxC = 0) {
  ClusteringOptions o;
  o.columnCapacity = capacity;
  o.targetClusters = target;
  o.maxClusters = maxC;
  return o;
}

// Case 1: a node with a single predecessor joins its cluster while it
// fits, and opens a new cluster when it does not.
TEST(AlgorithmCases, Case1JoinsPredecessorCluster) {
  Graph g;
  NodeId a = g.addInput("a"), b = g.addInput("b");
  NodeId x = g.addOp(OpKind::And, {a, b});
  NodeId y = g.addOp(OpKind::Or, {x, a});
  g.markOutput(y);
  auto res = findClusters(g, opts(64));
  EXPECT_EQ(res.clusterOf[static_cast<size_t>(x)],
            res.clusterOf[static_cast<size_t>(y)]);
}

TEST(AlgorithmCases, Case1OverflowOpensNewCluster) {
  Graph g;
  NodeId a = g.addInput("a"), b = g.addInput("b");
  NodeId acc = g.addOp(OpKind::And, {a, b});
  std::vector<NodeId> chainNodes{acc};
  for (int i = 0; i < 6; ++i) {
    acc = g.addOp(OpKind::And, {acc, a});
    chainNodes.push_back(acc);
  }
  g.markOutput(acc);
  // Capacity 5 cells: {a, b} + results fill quickly; the chain must split.
  auto res = findClusters(g, opts(5));
  std::set<int> used;
  for (NodeId n : chainNodes)
    used.insert(res.clusterOf[static_cast<size_t>(n)]);
  EXPECT_GT(used.size(), 1u);
  for (const Cluster& c : res.clusters) EXPECT_LE(c.cellCount(), 5);
}

// Case 2 (paper Fig. 5a): a join node whose predecessor clusters have
// identical size and priorities merges them.
TEST(AlgorithmCases, Case2MergesSymmetricClusters) {
  Graph g;
  NodeId a = g.addInput("a"), b = g.addInput("b");
  NodeId c = g.addInput("c"), d = g.addInput("d");
  NodeId l = g.addOp(OpKind::And, {a, b});   // left cluster
  NodeId r = g.addOp(OpKind::And, {c, d});   // right cluster, same shape
  NodeId join = g.addOp(OpKind::Xor, {l, r});
  g.markOutput(join);
  auto res = findClusters(g, opts(64));
  EXPECT_EQ(res.clusterOf[static_cast<size_t>(l)],
            res.clusterOf[static_cast<size_t>(r)]);
  EXPECT_EQ(res.clusterOf[static_cast<size_t>(l)],
            res.clusterOf[static_cast<size_t>(join)]);
  EXPECT_EQ(res.crossClusterEdges, 0);
}

// Case 4 (paper Fig. 5c): greater dependence on one cluster wins.
TEST(AlgorithmCases, Case4FollowsStrongerDependence) {
  Graph g;
  NodeId a = g.addInput("a"), b = g.addInput("b"), c = g.addInput("c");
  NodeId d = g.addInput("d"), e = g.addInput("e");
  // Left cluster: one producer; right cluster: two producers, deeper.
  NodeId l1 = g.addOp(OpKind::And, {a, b});
  NodeId r1 = g.addOp(OpKind::And, {c, d});
  NodeId r2 = g.addOp(OpKind::Or, {r1, e});
  NodeId r3 = g.addOp(OpKind::And, {r1, c});
  // Join depends once on the left cluster, twice on the right one.
  NodeId join = g.addOp(OpKind::Xor, {l1, r2, r3});
  g.markOutput(join);
  auto res = findClusters(g, opts(64));
  EXPECT_EQ(res.clusterOf[static_cast<size_t>(join)],
            res.clusterOf[static_cast<size_t>(r2)]);
}

// Case 5 (paper Fig. 5d): under equal dependence, the smaller cluster
// wins (beta < 0).
TEST(AlgorithmCases, Case5PrefersSmallerCluster) {
  Graph g;
  NodeId a = g.addInput("a"), b = g.addInput("b"), c = g.addInput("c");
  NodeId d = g.addInput("d"), e = g.addInput("e");
  // Big cluster: chain of three; small cluster: single node. Level the
  // priorities so the join sees equal gaps.
  NodeId big1 = g.addOp(OpKind::And, {a, b});
  NodeId big2 = g.addOp(OpKind::And, {big1, c});
  NodeId big3 = g.addOp(OpKind::And, {big2, d});
  NodeId small1 = g.addOp(OpKind::Or, {d, e});
  NodeId join = g.addOp(OpKind::Xor, {big3, small1});
  g.markOutput(join);
  auto res = findClusters(g, opts(64));
  // big3 and small1 share the b-level (both feed only the join), so the
  // affinity terms tie and the size term must decide.
  auto levels = ir::bLevels(g);
  ASSERT_EQ(levels[static_cast<size_t>(big3)],
            levels[static_cast<size_t>(small1)]);
  EXPECT_EQ(res.clusterOf[static_cast<size_t>(join)],
            res.clusterOf[static_cast<size_t>(small1)]);
}

// MergeClusters: dependent clusters merge toward k; independent ones are
// left alone by phase 1.
TEST(MergeClusters, DependentPairsMergeFirst) {
  Graph g;
  // Two dependent chains (A feeds B) plus an unrelated chain C.
  NodeId a = g.addInput("a"), b = g.addInput("b");
  NodeId c = g.addInput("c"), d = g.addInput("d");
  NodeId chainA = g.addOp(OpKind::And, {a, b});
  NodeId chainB = g.addOp(OpKind::Or, {chainA, a});
  NodeId chainC = g.addOp(OpKind::Xor, {c, d});
  g.markOutput(chainB);
  g.markOutput(chainC);

  // Force three singleton clusters, then merge toward 2.
  std::vector<Cluster> clusters(3);
  std::vector<int> clusterOf(g.numNodes(), -1);
  int idx = 0;
  for (NodeId n : {chainA, chainB, chainC}) {
    clusters[static_cast<size_t>(idx)].nodes.push_back(n);
    clusters[static_cast<size_t>(idx)].cells.insert(n);
    for (NodeId o : g.node(n).operands)
      clusters[static_cast<size_t>(idx)].cells.insert(o);
    clusterOf[static_cast<size_t>(n)] = idx;
    ++idx;
  }
  mergeClusters(g, opts(64, 2), clusters, clusterOf);
  ASSERT_EQ(clusters.size(), 2u);
  EXPECT_EQ(clusterOf[static_cast<size_t>(chainA)],
            clusterOf[static_cast<size_t>(chainB)]);
  EXPECT_NE(clusterOf[static_cast<size_t>(chainA)],
            clusterOf[static_cast<size_t>(chainC)]);
}

TEST(MergeClusters, IndependentClustersStaySeparate) {
  Graph g;
  std::vector<NodeId> sinks;
  for (int i = 0; i < 4; ++i) {
    NodeId x = g.addInput(strCat("x", i));
    NodeId y = g.addInput(strCat("y", i));
    sinks.push_back(g.addOp(OpKind::And, {x, y}));
    g.markOutput(sinks.back());
  }
  auto res = findClusters(g, opts(64, /*target=*/1));
  // Phase 1 refuses to merge independent clusters even though k = 1.
  EXPECT_EQ(res.clusters.size(), 4u);
}

TEST(MergeClusters, HardCapForcesIndependentMerges) {
  Graph g;
  for (int i = 0; i < 4; ++i) {
    NodeId x = g.addInput(strCat("x", i));
    NodeId y = g.addInput(strCat("y", i));
    g.markOutput(g.addOp(OpKind::And, {x, y}));
  }
  auto res = findClusters(g, opts(64, 1, /*maxClusters=*/2));
  EXPECT_EQ(res.clusters.size(), 2u);
}

TEST(MergeClusters, ThrowsWhenNothingFits) {
  Graph g;
  for (int i = 0; i < 3; ++i) {
    NodeId x = g.addInput(strCat("x", i));
    NodeId y = g.addInput(strCat("y", i));
    g.markOutput(g.addOp(OpKind::And, {x, y}));
  }
  // Capacity 3 holds exactly one op (2 operands + result): merging any two
  // clusters is infeasible, but the cap demands one cluster.
  EXPECT_THROW(findClusters(g, opts(3, 1, 1)), MappingError);
}

// Refinement: a node seeded into the wrong cluster migrates to its
// neighbors.
TEST(Refinement, MovesNodeToNeighborCluster) {
  Graph g;
  NodeId a = g.addInput("a"), b = g.addInput("b");
  NodeId c = g.addInput("c"), d = g.addInput("d");
  NodeId t1 = g.addOp(OpKind::And, {a, b});
  NodeId t2 = g.addOp(OpKind::Or, {t1, a});
  NodeId u1 = g.addOp(OpKind::Xor, {c, d});
  g.markOutput(t2);
  g.markOutput(u1);

  // Deliberately bad seed: t2 grouped with the unrelated u1.
  std::vector<Cluster> clusters(2);
  std::vector<int> clusterOf(g.numNodes(), -1);
  auto seed = [&](int ci, NodeId n) {
    clusters[static_cast<size_t>(ci)].nodes.push_back(n);
    clusters[static_cast<size_t>(ci)].cells.insert(n);
    for (NodeId o : g.node(n).operands)
      clusters[static_cast<size_t>(ci)].cells.insert(o);
    clusterOf[static_cast<size_t>(n)] = ci;
  };
  seed(0, t1);
  seed(1, t2);
  seed(1, u1);
  ASSERT_EQ(countCrossClusterEdges(g, clusterOf), 1);

  ClusteringOptions o = opts(64);
  refineClusters(g, o, clusters, clusterOf);
  EXPECT_EQ(countCrossClusterEdges(g, clusterOf), 0);
  EXPECT_EQ(clusterOf[static_cast<size_t>(t1)],
            clusterOf[static_cast<size_t>(t2)]);
}

TEST(Refinement, NeverExceedsCapacity) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    workloads::RandomDagSpec spec;
    spec.seed = seed;
    spec.ops = 200;
    spec.maxArity = 3;
    Graph g = workloads::buildRandomDag(spec);
    auto res = findClusters(g, opts(20));
    for (const Cluster& c : res.clusters)
      EXPECT_LE(c.cellCount(), 20) << "seed " << seed;
  }
}

TEST(Refinement, NeverIncreasesCrossEdges) {
  for (uint64_t seed = 10; seed <= 15; ++seed) {
    workloads::RandomDagSpec spec;
    spec.seed = seed;
    spec.ops = 300;
    spec.maxArity = 3;
    Graph g = workloads::buildRandomDag(spec);

    ClusteringOptions noRefine = opts(30);
    noRefine.refinePasses = 0;
    ClusteringOptions withRefine = opts(30);
    withRefine.refinePasses = 3;
    auto before = findClusters(g, noRefine);
    auto after = findClusters(g, withRefine);
    EXPECT_LE(after.crossClusterEdges, before.crossClusterEdges)
        << "seed " << seed;
  }
}

// Property (checked with the static verifier's per-instruction rules):
// every cluster the engine emits is encodable under the scouting-logic
// ISA — each member op's operands live in the same column (so one shared
// activated-row set covers them) and its fan-in respects the technology's
// MRA bound when the DAG's arity matches the target MRA.
TEST(ClusterProperties, ClustersEncodableUnderIsaRules) {
  for (uint64_t seed = 21; seed <= 26; ++seed) {
    for (int mra : {2, 3, 4}) {
      workloads::RandomDagSpec spec;
      spec.seed = seed;
      spec.ops = 150;
      spec.maxArity = mra;
      Graph g = workloads::buildRandomDag(spec);
      isa::TargetSpec target = isa::TargetSpec::square(
          64, device::TechnologyParams::reRam(), mra);
      auto res = findClusters(g, opts(target.rows()));

      for (size_t ci = 0; ci < res.clusters.size(); ++ci) {
        const Cluster& c = res.clusters[ci];
        ASSERT_LE(c.cellCount(), target.rows())
            << "seed " << seed << " cluster " << ci;
        // One row per value the column holds.
        std::map<NodeId, int> rowOf;
        for (NodeId cell : c.cells)
          rowOf.emplace(cell, static_cast<int>(rowOf.size()));
        int col = static_cast<int>(ci) % target.cols();

        for (NodeId n : c.nodes) {
          const ir::Node& node = g.node(n);
          std::vector<int> rows;
          for (NodeId o : node.operands) {
            auto it = rowOf.find(o);
            // Shared-activated-row constraint: every operand occupies a
            // cell of this cluster's column.
            ASSERT_NE(it, rowOf.end())
                << "seed " << seed << " cluster " << ci << ": operand " << o
                << " of node " << n << " has no cell in the cluster";
            rows.push_back(it->second);
          }
          std::sort(rows.begin(), rows.end());
          auto inst = isa::makeCimRead(0, {col}, rows, {node.op});
          auto violation = verify::checkInstructionRules(inst, target);
          EXPECT_FALSE(violation.has_value())
              << "seed " << seed << " cluster " << ci << " node " << n
              << ": " << violation->toString();
        }
      }
    }
  }
}

}  // namespace
}  // namespace sherlock::mapping
