// Robustness tests for the kernel-language frontend: truncated, garbage
// and adversarially nested sources must fail with a structured ParseError
// (position included) — never a crash, a stack overflow, or an uncaught
// non-Sherlock exception (the std::stoll out-of-range class of bug).
#include <gtest/gtest.h>

#include <string>

#include "frontend/lexer.h"
#include "frontend/lowering.h"
#include "frontend/parser.h"
#include "support/diagnostics.h"
#include "support/rng.h"

namespace sherlock::frontend {
namespace {

const char kValidKernel[] =
    "input w[16];\n"
    "input p;\n"
    "output error;\n"
    "bit acc = 0;\n"
    "for (i = 0; i < 16; i = i + 1) {\n"
    "  acc = acc ^ w[i];\n"
    "}\n"
    "error = acc ^ p;\n";

/// The frontend contract under test: compile either succeeds or throws a
/// sherlock::Error. Anything else (std:: exceptions, crashes) escapes and
/// fails the test.
void compileTolerantly(const std::string& source) {
  try {
    compileKernel(source);
  } catch (const Error&) {
    // Structured failure: acceptable for malformed input.
  }
}

TEST(Robustness, ValidKernelCompiles) {
  EXPECT_NO_THROW(compileKernel(kValidKernel));
}

TEST(Robustness, EveryTruncationFailsStructurally) {
  const std::string full = kValidKernel;
  for (size_t len = 0; len < full.size(); ++len)
    compileTolerantly(full.substr(0, len));
}

TEST(Robustness, GarbageSourcesFailStructurally) {
  // Random byte soup, biased toward the language's alphabet so token-level
  // and grammar-level paths are both exercised.
  const std::string alphabet =
      "abcxyz0123456789 \t\n()[]{};,=&|^~+-*<>/_ inputoutputbitfor\x01\xff";
  for (uint64_t seed = 1; seed <= 200; ++seed) {
    Rng rng(seed);
    std::string source;
    size_t length = rng.below(200);
    for (size_t i = 0; i < length; ++i)
      source.push_back(alphabet[rng.below(alphabet.size())]);
    compileTolerantly(source);
  }
}

TEST(Robustness, DeeplyNestedParensRejected) {
  std::string source = "input a;\noutput y;\ny = ";
  for (int i = 0; i < 20000; ++i) source.push_back('(');
  source += "a";
  for (int i = 0; i < 20000; ++i) source.push_back(')');
  source += ";\n";
  EXPECT_THROW(compileKernel(source), ParseError);
}

TEST(Robustness, DeepUnaryChainRejected) {
  std::string source = "input a;\noutput y;\ny = ";
  source.append(20000, '~');
  source += "a;\n";
  EXPECT_THROW(compileKernel(source), ParseError);
}

TEST(Robustness, OverlongOperatorChainRejected) {
  std::string source = "input a;\noutput y;\ny = a";
  for (int i = 0; i < 20000; ++i) source += " ^ a";
  source += ";\n";
  EXPECT_THROW(compileKernel(source), ParseError);
}

TEST(Robustness, DeeplyNestedForLoopsRejected) {
  std::string source = "input a;\noutput y;\n";
  for (int i = 0; i < 2000; ++i)
    source += strCat("for (i", i, " = 0; i", i, " < 1; i", i, " = i", i,
                     " + 1) {\n");
  source += "y = a;\n";
  source.append(2000, '}');
  EXPECT_THROW(compileKernel(source), ParseError);
}

TEST(Robustness, HugeIntegerLiteralRejected) {
  // Would previously escape as std::out_of_range from std::stoll.
  EXPECT_THROW(compileKernel("input a;\noutput y;\n"
                             "y = a ^ 99999999999999999999999999;\n"),
               ParseError);
  try {
    tokenize("99999999999999999999999999");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 1);
    EXPECT_EQ(e.column(), 1);
  }
}

TEST(Robustness, HugeArraySizeRejected) {
  EXPECT_THROW(compileKernel("input a[999999999];\noutput y;\ny = a;\n"),
               ParseError);
}

TEST(Robustness, NonPositiveArraySizeRejectedWithPosition) {
  try {
    compileKernel("input a[0];\noutput y;\ny = a;\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 1);
    EXPECT_GT(e.column(), 1);
  }
}

TEST(Robustness, UnterminatedBlockCommentRejected) {
  EXPECT_THROW(compileKernel("input a;\n/* no end"), ParseError);
}

TEST(Robustness, UnexpectedCharacterRejected) {
  EXPECT_THROW(compileKernel("input a;\noutput y;\ny = a @ a;\n"),
               ParseError);
}

TEST(Robustness, UnboundedLoopHitsUnrollingLimit) {
  EXPECT_THROW(compileKernel("input a;\noutput y;\n"
                             "bit acc = 0;\n"
                             "for (i = 0; i < 100000000; i = i + 1) {\n"
                             "  acc = acc ^ a;\n"
                             "}\n"
                             "y = acc;\n"),
               ParseError);
}

}  // namespace
}  // namespace sherlock::frontend
