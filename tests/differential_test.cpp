// Differential fuzz harness (the paper's correctness net, level 2): for a
// few hundred seeded random DAGs, compile with both mappers x both
// technologies x both array sizes, statically verify every program, and
// cross-check three independent executions of each DAG:
//
//   1. CIM simulator     — bit-accurate array/row-buffer execution
//   2. word evaluator    — 64-bit-slice reference (evaluateAllWords)
//   3. bulk evaluator    — BitVector lane-wise CPU software model
//
// The simulator itself enforces (1) == (2) when SimOptions::verify is on;
// this harness additionally checks (2) == (3) per lane and that the CPU
// baseline cost model accepts every DAG. Seed count and start are
// environment-tunable (see tests/dag_fuzz.h) so CI failures reproduce
// locally from the printed seed range.
#include <gtest/gtest.h>

#include <iostream>
#include <map>

#include "cpu/cpu_model.h"
#include "dag_fuzz.h"
#include "support/bitvector.h"
#include "ir/evaluator.h"
#include "sim/simulator.h"
#include "transforms/passes.h"
#include "verify/verifier.h"
#include "workloads/random_dag.h"

namespace sherlock::testing {
namespace {

constexpr int kFuzzLaneWidths[] = {1, 4};

void runSeed(uint64_t seed) {
  workloads::RandomDagSpec spec = sampleDagSpec(seed);
  ir::Graph g = transforms::canonicalize(workloads::buildRandomDag(spec));

  // Deterministic inputs, shared across all executions and lane widths:
  // lane word w of input `name` is defaultInputWord(name, seed, w), so
  // the laneWords=1 run's lanes are exactly the first 64 lanes of the
  // laneWords=4 run.
  constexpr int kMaxW = 4;
  std::map<std::string, uint64_t> words;                 // scalar path
  std::map<std::string, std::vector<uint64_t>> wide;     // packed path
  for (ir::NodeId id : g.inputNodes()) {
    const std::string& name = g.node(id).name;
    auto& v = wide[name];
    for (int w = 0; w < kMaxW; ++w)
      v.push_back(sim::defaultInputWord(name, seed, w));
    words[name] = v[0];
  }

  // Level 2b at each width: packed word evaluator vs lane-wise BitVector
  // evaluator on all 64 * W lanes.
  for (int W : kFuzzLaneWidths) {
    SCOPED_TRACE(strCat("evaluators, laneWords ", W));
    std::map<std::string, std::vector<uint64_t>> inputsW;
    ir::InputValues lanes;
    for (const auto& [name, v] : wide) {
      inputsW[name].assign(v.begin(), v.begin() + W);
      lanes[name] = BitVector::fromWords(v.data(), 64 * W);
    }
    std::vector<uint64_t> packed = ir::evaluateAllWordsPacked(g, inputsW, W);
    std::vector<BitVector> bulk = ir::evaluateOutputs(g, lanes);
    ASSERT_EQ(bulk.size(), g.outputs().size());
    for (size_t i = 0; i < g.outputs().size(); ++i) {
      const uint64_t* w =
          packed.data() + static_cast<size_t>(g.outputs()[i]) * W;
      for (size_t b = 0; b < static_cast<size_t>(64 * W); ++b)
        ASSERT_EQ(bulk[i].get(b), ((w[b / 64] >> (b % 64)) & 1) != 0)
            << "evaluator disagreement on output " << g.outputs()[i]
            << " lane " << b;
    }
  }

  // The legacy single-word evaluator must agree with lane word 0 of the
  // packed one (it is the scalar slice of the same reference).
  {
    std::vector<uint64_t> wordValues = ir::evaluateAllWords(g, words);
    std::map<std::string, std::vector<uint64_t>> inputs1;
    for (const auto& [name, v] : wide) inputs1[name].assign(v.begin(),
                                                            v.begin() + 1);
    std::vector<uint64_t> packed1 = ir::evaluateAllWordsPacked(g, inputs1, 1);
    ASSERT_EQ(wordValues, packed1);
  }

  // CPU baseline cost model accepts the DAG.
  cpu::CpuResult cpuCost = cpu::estimateCpu(g, 64);
  ASSERT_GT(cpuCost.latencyNs, 0.0);
  ASSERT_GT(cpuCost.energyPj, 0.0);
  ASSERT_GT(cpuCost.wordOps, 0);

  for (const FuzzConfig& config : fuzzConfigs()) {
    SCOPED_TRACE(config.name());
    isa::TargetSpec target = fuzzTarget(config, spec.maxArity);
    mapping::CompileOptions copts;
    copts.strategy = config.strategy;
    // Verified explicitly below so a failure carries the full violation
    // report instead of the facade's first-violation exception.
    copts.verify = false;
    mapping::CompileResult compiled = mapping::compile(g, target, copts);

    // Level 1: static verification, including DAG equivalence.
    verify::VerifyResult vr = verify::verifyProgram(g, target,
                                                    compiled.program);
    ASSERT_TRUE(vr.ok()) << vr.summary();

    // Level 2a at each width: simulator vs packed word evaluator
    // (enforced inside simulate when verify is on). laneWords=1 feeds
    // the scalar `inputs` map, laneWords=4 the `wideInputs` map, so both
    // input-resolution paths stay covered.
    for (int W : kFuzzLaneWidths) {
      SCOPED_TRACE(strCat("laneWords ", W));
      sim::SimOptions sopts;
      sopts.laneWords = W;
      if (W == 1) {
        sopts.inputs = words;
      } else {
        for (const auto& [name, v] : wide)
          sopts.wideInputs[name].assign(v.begin(), v.begin() + W);
      }
      sopts.staticVerify = false;  // already verified above
      sim::SimResult res = sim::simulate(g, target, compiled.program, sopts);
      ASSERT_TRUE(res.verified);
      ASSERT_GT(res.latencyNs, 0.0);
    }
  }
}

// Fault-injection differential level: the same fuzzed DAGs compiled
// fault-aware against a dense persistent fault map (stuck + weak cells,
// spare-row repair) must still verify statically — including the
// FaultAvoidance rule — and reproduce the reference outputs under
// guarded Monte-Carlo execution on every config. Seed count comes from
// SHERLOCK_FAULT_FUZZ_SEEDS (total across 4 shards, default 60) with
// SHERLOCK_FAULT_FUZZ_FIRST_SEED as the range start, mirroring the
// fault-free harness's reproduction contract.
void runFaultSeed(uint64_t seed) {
  workloads::RandomDagSpec spec = sampleDagSpec(seed);
  ir::Graph g = transforms::canonicalize(workloads::buildRandomDag(spec));

  std::map<std::string, uint64_t> words;
  for (ir::NodeId id : g.inputNodes()) {
    const std::string& name = g.node(id).name;
    words[name] = sim::defaultInputWord(name, seed);
  }

  for (const FuzzConfig& config : fuzzConfigs()) {
    SCOPED_TRACE(config.name());
    isa::TargetSpec target = fuzzTarget(config, spec.maxArity);

    device::FaultMapOptions fo;
    fo.seed = seed * 0x9e3779b9ULL + config.dim;
    fo.stuckDensity = 0.02;
    fo.weakDensity = 0.01;
    device::FaultMap map = device::FaultMap::generate(
        target.numArrays, target.rows(), target.cols(), fo);

    mapping::CompileOptions copts;
    copts.strategy = config.strategy;
    copts.verify = false;  // verified explicitly with the map below
    copts.faults.map = &map;
    copts.faults.spareRows = 4;
    mapping::CompileResult compiled = mapping::compile(g, target, copts);

    verify::VerifyOptions vopts;
    vopts.faultMap = &map;
    verify::VerifyResult vr =
        verify::verifyProgram(g, target, compiled.program, vopts);
    ASSERT_TRUE(vr.ok()) << vr.summary();

    sim::SimOptions sopts;
    sopts.inputs = words;
    sopts.staticVerify = false;  // already verified above
    sopts.faultMap = &map;
    sopts.injectFaults = true;
    sopts.guardedExecution = true;
    sopts.faultSeed = seed;
    sim::SimResult res = sim::simulate(g, target, compiled.program, sopts);
    ASSERT_EQ(res.corruptedLanes(), 0)
        << "guarded execution corrupted lanes (injected "
        << res.injectedFaults << " faults, " << res.retriedOps
        << " retries, " << res.degradedOps << " degraded ops)";
    ASSERT_TRUE(res.verified);
    ASSERT_EQ(res.stuckCellReads, 0)
        << "fault-aware placement let a stuck cell be sensed";
  }
}

// Multi-array differential level: the same fuzzed DAGs compiled onto
// 1x1, 1x2 and 2x2 meshes with per-array column caps tight enough to
// force genuine sharding (transfers at the cut edges), then statically
// verified — including TransferLegality and cross-array ValueEquivalence
// — and simulated at both lane widths against the packed reference. A
// second pass per grid repeats the compile fault-aware against a dense
// fault map and checks guarded execution still reproduces the reference.
// Seed count: SHERLOCK_GRID_FUZZ_SEEDS (total across 4 shards, default
// 200), range start SHERLOCK_GRID_FUZZ_FIRST_SEED.
struct GridFuzzPoint {
  int rows;
  int cols;
  int maxColumnsPerArray;  // 0 = whole array
};

constexpr GridFuzzPoint kFuzzGrids[] = {{1, 1, 0}, {1, 2, 2}, {2, 2, 1}};

void runGridSeed(uint64_t seed, long& shardedRuns) {
  workloads::RandomDagSpec spec = sampleDagSpec(seed);
  ir::Graph g = transforms::canonicalize(workloads::buildRandomDag(spec));

  constexpr int kMaxW = 4;
  std::map<std::string, uint64_t> words;
  std::map<std::string, std::vector<uint64_t>> wide;
  for (ir::NodeId id : g.inputNodes()) {
    const std::string& name = g.node(id).name;
    auto& v = wide[name];
    for (int w = 0; w < kMaxW; ++w)
      v.push_back(sim::defaultInputWord(name, seed, w));
    words[name] = v[0];
  }

  for (const GridFuzzPoint& gp : kFuzzGrids) {
    SCOPED_TRACE(strCat("grid ", gp.rows, "x", gp.cols, " cap ",
                        gp.maxColumnsPerArray));
    isa::TargetSpec target = isa::TargetSpec::square(
        64, device::TechnologyParams::reRam(), spec.maxArity);
    if (gp.rows * gp.cols > 1)
      target = target.withGrid(arraymodel::GridConfig{gp.rows, gp.cols});

    mapping::CompileOptions copts;
    copts.strategy = mapping::Strategy::Optimized;
    copts.verify = false;  // verified explicitly below
    copts.optimizer.maxColumnsPerArray = gp.maxColumnsPerArray;
    mapping::CompileResult compiled;
    try {
      compiled = mapping::compile(g, target, copts);
    } catch (const MappingError&) {
      // The tight cap left fewer columns than the DAG needs clusters;
      // that seed/grid point is genuinely infeasible, not a bug.
      continue;
    }
    if (!compiled.partition.singleArray) {
      shardedRuns++;
      // Independent clusters can shard without any cut; only a real cut
      // obliges the code generator to move values across the mesh.
      if (!compiled.partition.transfers.empty())
        EXPECT_GT(
            compiled.program.stats.xfers + compiled.program.stats.moves, 0u)
            << "cut placement emitted no inter-array movement";
    }

    verify::VerifyResult vr =
        verify::verifyProgram(g, target, compiled.program);
    ASSERT_TRUE(vr.ok()) << vr.summary();

    for (int W : kFuzzLaneWidths) {
      SCOPED_TRACE(strCat("laneWords ", W));
      sim::SimOptions sopts;
      sopts.laneWords = W;
      if (W == 1) {
        sopts.inputs = words;
      } else {
        for (const auto& [name, v] : wide)
          sopts.wideInputs[name].assign(v.begin(), v.begin() + W);
      }
      sopts.staticVerify = false;  // already verified above
      sim::SimResult res = sim::simulate(g, target, compiled.program, sopts);
      ASSERT_TRUE(res.verified);
      ASSERT_GT(res.latencyNs, 0.0);
    }

    // Fault-injected variant: dense persistent faults, spare-row repair,
    // guarded Monte-Carlo execution. XFER endpoints must avoid every
    // stuck cell (the verifier proves it; the simulator re-checks).
    device::FaultMapOptions fo;
    fo.seed = seed * 0x9e3779b9ULL + gp.rows * 16 + gp.cols;
    fo.stuckDensity = 0.02;
    fo.weakDensity = 0.01;
    device::FaultMap map = device::FaultMap::generate(
        target.numArrays, target.rows(), target.cols(), fo);
    mapping::CompileOptions fcopts = copts;
    fcopts.faults.map = &map;
    fcopts.faults.spareRows = 4;
    mapping::CompileResult faulted;
    try {
      faulted = mapping::compile(g, target, fcopts);
    } catch (const MappingError&) {
      continue;  // fault filtering shrank the budget below feasibility
    }
    verify::VerifyOptions vopts;
    vopts.faultMap = &map;
    vopts.spareRows = 4;
    verify::VerifyResult fvr =
        verify::verifyProgram(g, target, faulted.program, vopts);
    ASSERT_TRUE(fvr.ok()) << fvr.summary();

    sim::SimOptions sopts;
    sopts.inputs = words;
    sopts.staticVerify = false;
    sopts.faultMap = &map;
    sopts.injectFaults = true;
    sopts.guardedExecution = true;
    sopts.faultSeed = seed;
    sim::SimResult res = sim::simulate(g, target, faulted.program, sopts);
    ASSERT_EQ(res.corruptedLanes(), 0)
        << "guarded multi-array execution corrupted lanes (injected "
        << res.injectedFaults << " faults)";
    ASSERT_TRUE(res.verified);
    ASSERT_EQ(res.stuckCellReads, 0)
        << "fault-aware placement let a stuck cell be sensed";
  }
}

class DifferentialShard : public ::testing::TestWithParam<int> {};

TEST_P(DifferentialShard, RandomDagsAgreeAcrossBackends) {
  const long perShard = fuzzSeedsPerShard();
  const long first = fuzzFirstSeed() + GetParam() * perShard;
  const long last = first + perShard - 1;
  std::cout << "[fuzz] shard " << GetParam() << ": seeds " << first << ".."
            << last
            << " (reproduce one: SHERLOCK_FUZZ_SEEDS=1 "
               "SHERLOCK_FUZZ_FIRST_SEED=<seed> ./differential_test)\n";
  for (long seed = first; seed <= last; ++seed) {
    SCOPED_TRACE(strCat("seed ", seed));
    runSeed(static_cast<uint64_t>(seed));
    if (::testing::Test::HasFatalFailure()) return;
  }
}

INSTANTIATE_TEST_SUITE_P(Fuzz, DifferentialShard, ::testing::Range(0, 4));

class FaultShard : public ::testing::TestWithParam<int> {};

TEST_P(FaultShard, GuardedExecutionSurvivesFaultyArrays) {
  const long perShard = (envLong("SHERLOCK_FAULT_FUZZ_SEEDS", 60) + 3) / 4;
  const long first = envLong("SHERLOCK_FAULT_FUZZ_FIRST_SEED", 1) +
                     GetParam() * perShard;
  const long last = first + perShard - 1;
  std::cout << "[fault-fuzz] shard " << GetParam() << ": seeds " << first
            << ".." << last
            << " (reproduce one: SHERLOCK_FAULT_FUZZ_SEEDS=1 "
               "SHERLOCK_FAULT_FUZZ_FIRST_SEED=<seed> ./differential_test "
               "--gtest_filter='*FaultShard*')\n";
  for (long seed = first; seed <= last; ++seed) {
    SCOPED_TRACE(strCat("seed ", seed));
    runFaultSeed(static_cast<uint64_t>(seed));
    if (::testing::Test::HasFatalFailure()) return;
  }
}

INSTANTIATE_TEST_SUITE_P(FaultFuzz, FaultShard, ::testing::Range(0, 4));

class GridShard : public ::testing::TestWithParam<int> {};

TEST_P(GridShard, ShardedProgramsAgreeAcrossGrids) {
  const long perShard = (envLong("SHERLOCK_GRID_FUZZ_SEEDS", 200) + 3) / 4;
  const long first = envLong("SHERLOCK_GRID_FUZZ_FIRST_SEED", 1) +
                     GetParam() * perShard;
  const long last = first + perShard - 1;
  std::cout << "[grid-fuzz] shard " << GetParam() << ": seeds " << first
            << ".." << last
            << " (reproduce one: SHERLOCK_GRID_FUZZ_SEEDS=1 "
               "SHERLOCK_GRID_FUZZ_FIRST_SEED=<seed> ./differential_test "
               "--gtest_filter='*GridShard*')\n";
  long shardedRuns = 0;
  for (long seed = first; seed <= last; ++seed) {
    SCOPED_TRACE(strCat("seed ", seed));
    runGridSeed(static_cast<uint64_t>(seed), shardedRuns);
    if (::testing::Test::HasFatalFailure()) return;
  }
  // The caps must force real multi-array placements, or the shard tested
  // nothing beyond the flat path.
  EXPECT_GT(shardedRuns, 0) << "no seed sharded across arrays";
}

INSTANTIATE_TEST_SUITE_P(GridFuzz, GridShard, ::testing::Range(0, 4));

}  // namespace
}  // namespace sherlock::testing
